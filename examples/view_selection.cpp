// View selection: given a query workload, pick the handful of views whose
// materialisation serves the largest share of the workload — the
// "which views should we materialise?" question the paper's index makes
// tractable (each candidate's benefit = frequency-weighted number of
// workload queries it contains, one index probe per distinct query).
//
// The demo selects views for a DBpedia-alike workload, registers them in a
// ViewExecutor over a synthetic graph, and replays the workload to show the
// realised view-hit share.

#include <cstdio>

#include "rewriting/rewriter.h"
#include "rewriting/view_selection.h"
#include "util/rng.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;
  const auto workload = workload::GenerateDbpedia(&dict, 8000, 77);

  // --- 1. Choose views under a budget of 12. -------------------------------
  rewriting::ViewSelectionOptions options;
  options.max_views = 12;
  auto selection = rewriting::SelectViews(workload, &dict, options);
  if (!selection.ok()) {
    std::fprintf(stderr, "selection failed: %s\n",
                 selection.status().ToString().c_str());
    return 1;
  }
  std::printf("selected %zu views covering %.1f%% of %zu workload queries:\n",
              selection->views.size(), 100.0 * selection->coverage_rate(),
              selection->workload_size);
  for (std::size_t i = 0; i < selection->views.size(); ++i) {
    const auto& view = selection->views[i];
    std::printf("  view %zu: %zu patterns, marginal benefit %zu queries\n", i,
                view.definition.size(), view.marginal_benefit);
  }

  // --- 2. Materialise them over a synthetic graph. -------------------------
  rdf::Graph graph;
  util::Rng rng(78);
  for (const auto& q : workload) {
    if (!rng.Chance(0.05)) continue;  // freeze a sample into data
    for (const rdf::Triple& t : q.patterns()) {
      if (dict.IsVariable(t.p)) continue;
      auto freeze = [&](rdf::TermId term) {
        return dict.IsVariable(term)
                   ? dict.MakeIri("urn:n" + std::to_string(rng.Uniform(0, 300)))
                   : term;
      };
      graph.Add(freeze(t.s), t.p, freeze(t.o));
    }
  }
  std::printf("\nsynthetic graph: %zu triples\n", graph.size());

  rewriting::ViewExecutor executor(&graph, &dict);
  for (const auto& view : selection->views) {
    auto id = executor.AddView(view.definition);
    if (!id.ok()) return 1;
  }

  // --- 3. Replay the workload and report the realised hit share. -----------
  std::size_t via_view = 0, via_base = 0;
  for (const auto& q : workload) {
    const rewriting::ExecutionReport report = executor.Answer(q);
    if (report.strategy ==
        rewriting::ExecutionReport::Strategy::kBaseEvaluation) {
      ++via_base;
    } else {
      ++via_view;
    }
  }
  std::printf("replay: %zu queries answered from views (%.1f%%), %zu from "
              "the base graph\n",
              via_view,
              100.0 * static_cast<double>(via_view) /
                  static_cast<double>(workload.size()),
              via_base);
  std::printf("(predicted coverage from selection: %.1f%%)\n",
              100.0 * selection->coverage_rate());
  return 0;
}
