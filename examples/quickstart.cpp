// Quickstart: parse SPARQL views, index them in an MvIndex, and find every
// view that contains an incoming query — the paper's running example
// (Examples 2.1, 3.2, 3.4) end to end.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "index/mv_index.h"
#include "query/serialisation.h"
#include "sparql/parser.h"
#include "sparql/writer.h"

using namespace rdfc;  // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;
  sparql::ParserOptions parse_options;
  parse_options.default_prefixes["m"] = "http://music.example/";

  // --- 1. Index a few views (stored queries). -----------------------------
  index::MvIndex index(&dict);
  const char* views[] = {
      // The paper's view W (Formula 2): songs with their album names.
      R"(SELECT ?y ?w WHERE { ?x m:name ?y . ?x m:fromAlbum ?z . ?z m:name ?w . })",
      // Songs on any album.
      R"(SELECT ?x WHERE { ?x m:fromAlbum ?z . })",
      // Artists that are both composers and musical artists (Example 4.1).
      R"(SELECT ?x1 WHERE { ?x1 m:artist ?x2 . ?x2 a m:Composer . ?x2 a m:MusicalArtist . })",
      // Anything with a name.
      R"(SELECT ?x ?n WHERE { ?x m:name ?n . })",
  };
  for (const char* text : views) {
    auto parsed = sparql::ParseQuery(text, &dict, parse_options);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    auto inserted = index.Insert(*parsed);
    if (!inserted.ok()) {
      std::fprintf(stderr, "insert error: %s\n",
                   inserted.status().ToString().c_str());
      return 1;
    }
    std::printf("indexed view #%u%s\n", inserted->stored_id,
                inserted->was_new ? "" : " (duplicate)");
  }

  // --- 2. Probe with the paper's query Q (Formula 1). ---------------------
  const char* query_text = R"(SELECT ?sN ?aN WHERE {
      ?sng m:name ?sN .
      ?sng m:fromAlbum ?alb .
      ?alb m:name ?aN .
      ?alb m:artist ?art .
      ?art a m:MusicalArtist .
  })";
  auto q = sparql::ParseQuery(query_text, &dict, parse_options);
  if (!q.ok()) return 1;

  // Peek at the machinery: the serialised form of Q (Section 3.2).
  query::CanonicalMap canonical(&dict);
  auto serialised = query::SerialiseQuery(*q, &dict, &canonical);
  if (serialised.ok()) {
    std::printf("\nserialised form of Q:\n  %s\n",
                query::TokensToString(serialised->tokens, dict).c_str());
  }

  // --- 3. Every indexed view W with Q ⊑ W, with its containment mapping. --
  index::ProbeOptions probe_options;
  probe_options.max_mappings = 1;
  const index::ProbeResult result = index.FindContaining(*q, probe_options);

  std::printf("\nQ is contained in %zu of %zu views:\n",
              result.contained.size(), index.num_entries());
  for (const auto& match : result.contained) {
    const auto& entry = index.entry(match.stored_id);
    std::printf("\n-- view #%u --\n%s", match.stored_id,
                sparql::WriteQuery(entry.canonical, dict).c_str());
    if (!match.outcome.mappings.empty()) {
      std::printf("containment mapping:\n");
      for (const auto& [var, term] : match.outcome.mappings[0]) {
        std::printf("  σ(%s) = %s\n", dict.ToString(var).c_str(),
                    dict.ToString(term).c_str());
      }
    }
  }
  return 0;
}
