// End-to-end LUBM: generate a univ-bench instance graph, materialise it
// under the ontology, register the 14 benchmark queries as views, then
// answer RDFS-extended variants through the view executor — the complete
// loop the paper motivates: schema-aware containment steering execution
// onto materialised results.

#include <cstdio>

#include "rdfs/extension.h"
#include "rdfs/materialise.h"
#include "rewriting/rewriter.h"
#include "util/timer.h"
#include "workload/lubm_data.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;

  // --- 1. Data: one university at modest scale, saturated under RDFS. ----
  workload::LubmDataOptions data_options;
  data_options.scale = 0.2;
  rdf::Graph graph = workload::GenerateLubmData(&dict, data_options);
  const rdfs::RdfsSchema schema = workload::LubmSchema(&dict);
  const std::size_t asserted = graph.size();
  const std::size_t inferred =
      rdfs::MaterialiseGraph(schema, &dict, &graph);
  std::printf("data: %zu asserted + %zu inferred = %zu triples\n", asserted,
              inferred, graph.size());

  // --- 2. Views: the 14 LUBM queries, materialised. -----------------------
  auto queries = workload::LubmQueries(&dict);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }
  rewriting::ExecutorOptions exec_options;
  exec_options.cost_factor = 1000.0;  // demo: always exercise the views
  rewriting::ViewExecutor executor(&graph, &dict, exec_options);
  for (std::size_t i = 0; i < queries->size(); ++i) {
    auto id = executor.AddView((*queries)[i]);
    if (!id.ok()) return 1;
    std::printf("  Q%-2zu materialised: %zu rows\n", i + 1,
                executor.view(*id).rows.size());
  }

  // --- 3. Probe with RDFS-extended variants of the workload. --------------
  auto extended = workload::GenerateLubmExtended(&dict, 200, 99);
  if (!extended.ok()) return 1;
  std::size_t via_view = 0, via_base = 0, answers = 0;
  util::Timer timer;
  for (const query::BgpQuery& q : *extended) {
    const query::BgpQuery probe = rdfs::ExtendQuery(q, schema, &dict);
    const rewriting::ExecutionReport report = executor.Answer(probe);
    answers += report.answers.size();
    if (report.strategy ==
        rewriting::ExecutionReport::Strategy::kBaseEvaluation) {
      ++via_base;
    } else {
      ++via_view;
    }
  }
  std::printf("\nreplayed %zu RDFS-extended queries in %.1f ms:\n",
              extended->size(), timer.ElapsedMillis());
  std::printf("  answered from materialised views: %zu\n", via_view);
  std::printf("  answered from the base graph:     %zu\n", via_base);
  std::printf("  total answers produced:           %zu\n", answers);
  std::printf("\nWithout the Section 6 extension, view hits drop:\n");
  std::size_t plain_view = 0;
  for (const query::BgpQuery& q : *extended) {
    const rewriting::ExecutionReport report = executor.Answer(q);
    plain_view += report.strategy !=
                  rewriting::ExecutionReport::Strategy::kBaseEvaluation;
  }
  std::printf("  view hits with extension:    %zu / %zu\n", via_view,
              extended->size());
  std::printf("  view hits without extension: %zu / %zu\n", plain_view,
              extended->size());
  return 0;
}
