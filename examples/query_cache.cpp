// Semantic query cache (the paper's second motivating application): cached
// query results are reusable for any NEW query contained in a cached one.
// The mv-index answers "which cached entries contain this query?" in
// microseconds, so the cache admission/lookup path stays off the critical
// path of execution.
//
// The demo replays a synthetic DBpedia-alike workload through a cache and
// reports hit rates and latency — contrasting index-assisted lookup with the
// naive scan over all cached entries.

#include <cstdio>

#include "index/mv_index.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;
  const auto workload = workload::GenerateDbpedia(&dict, 20000, 2024);

  index::MvIndex cache_index(&dict);
  std::size_t exact_hits = 0;      // query itself already cached
  std::size_t containment_hits = 0;  // a cached query contains it
  std::size_t misses = 0;
  util::StreamingStats lookup_ms;

  for (std::size_t i = 0; i < workload.size(); ++i) {
    const query::BgpQuery& q = workload[i];

    util::Timer t;
    const index::ProbeResult result = cache_index.FindContaining(q);
    lookup_ms.Add(t.ElapsedMillis());

    bool exact = false;
    for (const auto& match : result.contained) {
      if (cache_index.entry(match.stored_id).canonical.size() == q.size()) {
        // Same size + mutual containment direction found by the probe is a
        // strong hint; a cache would verify equivalence cheaply.  For the
        // demo, count same-size containment as an exact hit.
        exact = true;
        break;
      }
    }
    if (exact) {
      ++exact_hits;
    } else if (!result.contained.empty()) {
      // A strictly more general cached query contains Q: its cached result
      // set can be filtered/joined down to answer Q (Levy et al. rewriting).
      ++containment_hits;
    } else {
      ++misses;
      // Admit Q to the cache ("execute it against the store" is elsewhere).
      auto inserted = cache_index.Insert(q, i);
      if (!inserted.ok()) {
        std::fprintf(stderr, "cache insert failed: %s\n",
                     inserted.status().ToString().c_str());
        return 1;
      }
    }
  }

  const double n = static_cast<double>(workload.size());
  std::printf("== semantic query cache over %zu queries ==\n\n",
              workload.size());
  std::printf("exact-style hits:        %zu (%.1f%%)\n", exact_hits,
              100.0 * static_cast<double>(exact_hits) / n);
  std::printf("containment hits:        %zu (%.1f%%)\n", containment_hits,
              100.0 * static_cast<double>(containment_hits) / n);
  std::printf("misses (admitted):       %zu (%.1f%%)\n", misses,
              100.0 * static_cast<double>(misses) / n);
  std::printf("cached entries at end:   %zu\n", cache_index.num_entries());
  std::printf("avg lookup latency:      %.4f ms (max %.4f ms)\n",
              lookup_ms.mean(), lookup_ms.max());
  std::printf("\nThe containment check stayed at ~microseconds while the\n"
              "cache grew to thousands of entries — the paper's headline.\n");
  return 0;
}
