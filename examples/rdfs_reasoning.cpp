// RDFS-aware containment (Section 6): without schema knowledge, a cache or
// view index misses rewritings that are only valid under the ontology.  The
// demo uses the genuine LUBM univ-bench hierarchy: a view over ub:Person
// serves a query about ub:FullProfessor once the query-extension step runs.

#include <cstdio>

#include "index/mv_index.h"
#include "rdfs/extension.h"
#include "sparql/parser.h"
#include "sparql/writer.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;
  const rdfs::RdfsSchema schema = workload::LubmSchema(&dict);

  sparql::ParserOptions po;
  po.default_prefixes["ub"] = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

  // Views an administrator materialised, phrased over general classes.
  const char* view_texts[] = {
      R"(SELECT ?x WHERE { ?x a ub:Person . ?x ub:memberOf ?d . })",
      R"(SELECT ?x WHERE { ?x a ub:Employee . ?x ub:emailAddress ?m . })",
      R"(SELECT ?x ?y WHERE { ?x ub:memberOf ?y . })",
  };
  index::MvIndex index(&dict);
  for (const char* text : view_texts) {
    auto parsed = sparql::ParseQuery(text, &dict, po);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    if (auto ins = index.Insert(*parsed); !ins.ok()) return 1;
  }

  // A user asks about full professors working for a department: under
  // univ-bench, FullProfessor ⊑ ... ⊑ Person and worksFor ⊑ memberOf.
  const char* query_text = R"(SELECT ?x WHERE {
      ?x a ub:FullProfessor .
      ?x ub:worksFor ?dept .
      ?x ub:emailAddress ?mail .
  })";
  auto q = sparql::ParseQuery(query_text, &dict, po);
  if (!q.ok()) return 1;

  std::printf("query:\n%s\n", sparql::WriteQuery(*q, dict).c_str());

  const auto plain = index.FindContaining(*q);
  std::printf("without RDFS extension: contained in %zu view(s)\n",
              plain.contained.size());

  const query::BgpQuery extended = rdfs::ExtendQuery(*q, schema, &dict);
  std::printf("\nextended query (%zu -> %zu patterns):\n%s\n", q->size(),
              extended.size(), sparql::WriteQuery(extended, dict).c_str());

  const auto with_schema = index.FindContaining(extended);
  std::printf("with RDFS extension:    contained in %zu view(s)\n",
              with_schema.contained.size());
  for (const auto& match : with_schema.contained) {
    std::printf("\n-- usable view #%u --\n%s", match.stored_id,
                sparql::WriteQuery(index.entry(match.stored_id).canonical,
                                   dict)
                    .c_str());
  }
  return 0;
}
