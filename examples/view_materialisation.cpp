// View materialisation (the paper's motivating application, Section 2):
// a set of views is materialised over an RDF graph; an incoming query is
// answered from a materialised view when the mv-index proves containment,
// and the containment mapping drives the rewriting.
//
// The demo loads a small music graph (the paper's Example 2.1 data plus a
// few more albums), materialises three views, then answers queries — showing
// which view served each query and validating against direct evaluation.

#include <cstdio>

#include "eval/evaluator.h"
#include "index/mv_index.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"
#include "sparql/writer.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

constexpr char kData[] = R"(
@prefix m: <http://music.example/> .
m:s1 m:name "Masquerade" .
m:s1 m:fromAlbum m:al1 .
m:al1 m:name "The Phantom of the Opera" .
m:al1 m:artist m:ar3 .
m:ar3 m:name "Andrew L. Webber" .
m:ar3 m:type m:MusicalArtist .

m:s2 m:name "Paint It Black" .
m:s2 m:fromAlbum m:al2 .
m:al2 m:name "Aftermath" .
m:al2 m:artist m:ar1 .
m:ar1 m:name "The Rolling Stones" .
m:ar1 m:type m:MusicalArtist .

m:s3 m:name "Demo Tape" .
m:s3 m:fromAlbum m:al3 .
m:al3 m:name "Unreleased" .
)";

struct MaterialisedView {
  query::BgpQuery definition;
  std::vector<std::vector<rdf::TermId>> rows;  // projected answers
};

}  // namespace

int main() {
  rdf::TermDictionary dict;
  rdf::Graph graph;
  if (auto st = rdf::ParseTurtle(kData, &dict, &graph); !st.ok()) {
    std::fprintf(stderr, "data parse error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("graph loaded: %zu triples\n", graph.size());

  sparql::ParserOptions po;
  po.default_prefixes["m"] = "http://music.example/";

  // --- Materialise views and index their definitions. ---------------------
  const char* view_texts[] = {
      R"(SELECT ?x ?y ?w WHERE { ?x m:name ?y . ?x m:fromAlbum ?z . ?z m:name ?w . })",
      R"(SELECT ?x ?n WHERE { ?x m:name ?n . })",
      R"(SELECT ?alb WHERE { ?alb m:artist ?a . ?a m:type m:MusicalArtist . })",
  };
  index::MvIndex index(&dict);
  std::vector<MaterialisedView> views;
  for (const char* text : view_texts) {
    auto parsed = sparql::ParseQuery(text, &dict, po);
    if (!parsed.ok()) return 1;
    MaterialisedView view;
    view.definition = *parsed;
    view.rows = eval::ProjectedAnswers(view.definition, graph, dict);
    auto inserted = index.Insert(view.definition, views.size());
    if (!inserted.ok()) return 1;
    std::printf("materialised view #%u: %zu rows\n", inserted->stored_id,
                view.rows.size());
    views.push_back(std::move(view));
  }

  // --- Answer incoming queries, preferring materialised views. ------------
  const char* incoming[] = {
      // The paper's Q: answerable from view 0 (and trivially from view 1).
      R"(SELECT ?sN ?aN WHERE {
          ?sng m:name ?sN . ?sng m:fromAlbum ?alb . ?alb m:name ?aN .
          ?alb m:artist ?art . ?art m:type m:MusicalArtist . })",
      // Names only: view 1.
      R"(SELECT ?n WHERE { ?s m:name ?n . })",
      // No view contains this (no predicate m:composer anywhere).
      R"(SELECT ?s WHERE { ?s m:composer ?c . })",
  };

  for (const char* text : incoming) {
    auto q = sparql::ParseQuery(text, &dict, po);
    if (!q.ok()) return 1;
    std::printf("\n=== incoming query ===\n%s",
                sparql::WriteQuery(*q, dict).c_str());

    const index::ProbeResult result = index.FindContaining(*q);
    if (result.contained.empty()) {
      std::printf("-> no containing view; evaluating against the base graph\n");
      const auto rows = eval::ProjectedAnswers(*q, graph, dict);
      std::printf("   %zu answer(s) from base evaluation\n", rows.size());
      continue;
    }
    // Pick the smallest containing view result set as the cheapest source
    // (a stand-in for the paper's cost-based rewriting choice).
    const MaterialisedView* best = nullptr;
    std::uint32_t best_id = 0;
    for (const auto& match : result.contained) {
      const auto& ids = index.external_ids(match.stored_id);
      const MaterialisedView& view = views[ids.front()];
      if (best == nullptr || view.rows.size() < best->rows.size()) {
        best = &view;
        best_id = match.stored_id;
      }
    }
    std::printf("-> contained in %zu view(s); rewriting over view #%u (%zu rows"
                " instead of %zu triples)\n",
                result.contained.size(), best_id, best->rows.size(),
                graph.size());

    // Validate: evaluating Q directly must yield a subset of the Boolean
    // promise — here we simply evaluate both ways and report.
    const auto direct = eval::ProjectedAnswers(*q, graph, dict);
    std::printf("   direct evaluation: %zu answer(s)", direct.size());
    if (!direct.empty()) {
      std::printf("  e.g. (");
      for (std::size_t i = 0; i < direct[0].size(); ++i) {
        std::printf("%s%s", i ? ", " : "",
                    dict.ToString(direct[0][i]).c_str());
      }
      std::printf(")");
    }
    std::printf("\n");
  }
  return 0;
}
