// Cache experiment (ours): replay a DBpedia-alike workload through the
// semantic cache over a synthetic graph, sweeping the row budget and the
// eviction policy.  Reports hit rate, resident footprint, and lookup
// latency — demonstrating the paper's claim that containment-based cache
// lookup stays at microseconds while hit rates climb with capacity.

#include <cstdio>

#include "cache/semantic_cache.h"
#include "harness.h"
#include "util/rng.h"

using namespace rdfc;         // NOLINT(build/namespaces)
using namespace rdfc::bench;  // NOLINT(build/namespaces)

namespace {

/// A graph the DBpedia-alike queries can actually match: freeze a sample of
/// workload queries plus random vocabulary triples.
rdf::Graph BuildGraph(rdf::TermDictionary* dict, std::uint64_t seed) {
  rdf::Graph graph;
  util::Rng rng(seed);
  const auto sample = workload::GenerateDbpedia(dict, 800, seed);
  std::size_t frozen = 0;
  for (const auto& q : sample) {
    for (const rdf::Triple& t : q.patterns()) {
      if (dict->IsVariable(t.p)) continue;
      auto freeze = [&](rdf::TermId term) {
        if (!dict->IsVariable(term)) return term;
        // A small frozen-node pool makes joins succeed across queries.
        return dict->MakeIri("urn:node" + std::to_string(rng.Uniform(0, 400)));
      };
      graph.Add(freeze(t.s), t.p, freeze(t.o));
      ++frozen;
    }
  }
  std::fprintf(stderr, "[harness] graph: %zu triples from %zu patterns\n",
               graph.size(), frozen);
  return graph;
}

const char* PolicyName(cache::EvictionPolicy policy) {
  switch (policy) {
    case cache::EvictionPolicy::kLru: return "LRU";
    case cache::EvictionPolicy::kLargest: return "largest-first";
    case cache::EvictionPolicy::kLeastHits: return "least-hits";
  }
  return "?";
}

}  // namespace

int main() {
  rdf::TermDictionary dict;
  const rdf::Graph graph = BuildGraph(&dict, 404);
  const auto workload = workload::GenerateDbpedia(&dict, 20'000, 405);

  std::printf("== Semantic cache: hit rate & latency vs budget/policy ==\n");
  std::printf("(workload: %zu DBpedia-alike queries)\n\n", workload.size());

  Table table({"policy", "row budget", "hit rate", "entries", "rows",
               "evictions", "avg lookup (ms)", "avg base eval (ms)"});

  // Base-evaluation latency reference (no cache).
  util::StreamingStats base_ms;
  {
    std::size_t i = 0;
    for (const auto& q : workload) {
      if (i++ % 20 != 0) continue;  // sample
      util::Timer t;
      (void)rewriting::AnswerFromGraph(q, graph, dict);
      base_ms.Add(t.ElapsedMillis());
    }
  }

  for (const cache::EvictionPolicy policy :
       {cache::EvictionPolicy::kLru, cache::EvictionPolicy::kLargest,
        cache::EvictionPolicy::kLeastHits}) {
    for (const std::size_t budget : {std::size_t{500}, std::size_t{5000},
                                     std::size_t{50000}}) {
      cache::CacheOptions options;
      options.capacity_rows = budget;
      options.eviction = policy;
      cache::SemanticCache cache(&graph, &dict, options);
      util::StreamingStats lookup_ms;
      for (const auto& q : workload) {
        util::Timer t;
        (void)cache.Answer(q);
        lookup_ms.Add(t.ElapsedMillis());
      }
      const cache::CacheStats& stats = cache.stats();
      table.AddRow({PolicyName(policy), util::WithThousands(budget),
                    util::FormatDouble(100.0 * stats.hit_rate(), 1) + "%",
                    util::WithThousands(cache.num_entries()),
                    util::WithThousands(stats.rows_resident),
                    util::WithThousands(stats.evictions),
                    Ms(lookup_ms.mean()), Ms(base_ms.mean())});
    }
  }
  table.Print();
  return 0;
}
