// Section 7.2 "Containment Cost":
//   - Text table: avg containment-probe time per workload against the full
//     combined index.  (Paper: DBPedia 0.0092 ms, WatDiv 0.0127 ms,
//     BSBM 0.0166 ms, LDBC 0.0409 ms, LUBM 0.0103 ms; index with 397,507
//     distinct queries.)
//   - Figure 4: avg time (with 95% CI) vs query size, in four panels:
//     {f-graph, non-f-graph} x {acyclic, cyclic}, per workload.  Expected
//     shape: grows with size; non-f-graph > f-graph at equal size; cyclic >
//     acyclic.
//
// Probes can be capped with RDFC_PROBES=<n> (uniform sample); default probes
// every workload query once, like the paper.

#include <cstdio>
#include <cstdlib>
#include <map>

#include "harness.h"
#include "index/mv_index.h"

using namespace rdfc;         // NOLINT(build/namespaces)
using namespace rdfc::bench;  // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;
  const workload::WorkloadOptions options = OptionsFromEnv();
  auto queries = BuildWorkload(&dict, options);

  index::MvIndex index(&dict);
  for (const auto& wq : queries) {
    auto outcome = index.Insert(wq.query, wq.seq);
    if (!outcome.ok()) {
      std::fprintf(stderr, "insert failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "[harness] index ready: %s distinct queries, %s nodes\n",
               util::WithThousands(index.num_entries()).c_str(),
               util::WithThousands(index.num_nodes()).c_str());

  std::size_t stride = 1;
  if (const char* env = std::getenv("RDFC_PROBES")) {
    const std::size_t cap = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    if (cap > 0 && cap < queries.size()) stride = queries.size() / cap;
  }

  util::StreamingStats per_workload[workload::kNumWorkloads];
  // Figure 4: (class, workload) -> size buckets.
  std::map<std::pair<int, std::size_t>, util::BucketedStats> fig4;
  util::StreamingStats hits;       // containments found per probe
  util::StreamingStats candidates; // filter survivors per probe
  util::StreamingStats np_checks;  // NP verifications per probe
  util::StreamingStats states;     // matcher steps per probe

  std::size_t probes = 0;
  util::Timer wall;
  for (std::size_t i = 0; i < queries.size(); i += stride) {
    const auto& wq = queries[i];
    const query::QueryShape shape = query::AnalyzeShape(wq.query, dict);
    util::Timer t;
    const index::ProbeResult result = index.FindContaining(wq.query);
    const double ms = t.ElapsedMillis();
    ++probes;
    per_workload[static_cast<std::size_t>(wq.source)].Add(ms);
    hits.Add(static_cast<double>(result.contained.size()));
    candidates.Add(static_cast<double>(result.candidates));
    np_checks.Add(static_cast<double>(result.np_checks));
    states.Add(static_cast<double>(result.states_explored));
    auto key = std::make_pair(static_cast<int>(Classify(shape)),
                              static_cast<std::size_t>(wq.source));
    auto it = fig4.find(key);
    if (it == fig4.end()) {
      it = fig4.emplace(key, util::BucketedStats(5, 1)).first;
    }
    it->second.Add(shape.num_triples, ms);
  }
  const double wall_ms = wall.ElapsedMillis();

  std::printf("== Section 7.2: containment probes against the full index ==\n\n");
  std::printf("index size:      %s distinct queries (paper: 397,507)\n",
              util::WithThousands(index.num_entries()).c_str());
  std::printf("probes:          %s (stride %zu)\n",
              util::WithThousands(probes).c_str(), stride);
  std::printf("total wall time: %s ms\n",
              util::FormatDouble(wall_ms, 1).c_str());
  std::printf("avg containments found per probe: %s\n",
              util::FormatDouble(hits.mean(), 2).c_str());
  std::printf("avg filter candidates per probe:  %s\n",
              util::FormatDouble(candidates.mean(), 2).c_str());
  std::printf("avg NP verifications per probe:   %s\n",
              util::FormatDouble(np_checks.mean(), 2).c_str());
  std::printf("avg matcher steps per probe:      %s\n\n",
              util::FormatDouble(states.mean(), 1).c_str());

  Table per_wl({"workload", "probes", "avg containment (ms)", "paper (ms)"});
  const char* paper_avgs[] = {"0.0092", "0.0127", "0.0166", "0.0103",
                              "0.0409"};
  for (std::size_t i = 0; i < workload::kNumWorkloads; ++i) {
    per_wl.AddRow({workload::WorkloadName(static_cast<workload::WorkloadId>(i)),
                   util::WithThousands(per_workload[i].count()),
                   Ms(per_workload[i].mean()), paper_avgs[i]});
  }
  per_wl.Print();

  std::printf("\n== Figure 4: containment cost vs query size, by class ==\n");
  std::printf("(mean ±95%% CI, milliseconds)\n\n");
  for (int cls = 0; cls < 4; ++cls) {
    std::printf("-- %s --\n", QueryClassName(static_cast<QueryClass>(cls)));
    Table panel({"workload", "query size", "probes", "avg ±CI95 (ms)"});
    for (const auto& [key, buckets] : fig4) {
      if (key.first != cls) continue;
      for (const auto& bucket : buckets.NonEmptyBuckets()) {
        panel.AddRow(
            {workload::WorkloadName(
                 static_cast<workload::WorkloadId>(key.second)),
             std::to_string(bucket.lo) + "-" + std::to_string(bucket.hi),
             util::WithThousands(bucket.stats.count()),
             MeanCi(bucket.stats)});
      }
    }
    panel.Print();
    std::printf("\n");
  }
  return 0;
}
