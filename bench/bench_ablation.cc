// Ablation study (DESIGN.md "ours"):
//   1. mv-index walk vs pairwise scan ("inefficient to make each and every
//      comparison", Section 4) at growing index sizes — the walk should be
//      orders of magnitude faster and scale sublinearly thanks to shared
//      prefixes.
//   2. Witness filter + NP verification vs raw NP homomorphism search on
//      non-f-graph probes — the PTime filter should discard most candidates
//      before any NP work ("we pay a PTime budget to solve specific
//      instances of a NP-complete problem", Section 5.1).

#include <cstdio>

#include "containment/homomorphism.h"
#include "harness.h"
#include "index/mv_index.h"

using namespace rdfc;         // NOLINT(build/namespaces)
using namespace rdfc::bench;  // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;
  // A lighter corpus: the scan baseline is quadratic-ish, so cap sizes.
  workload::WorkloadOptions options = OptionsFromEnv();
  options.dbpedia = std::min<std::size_t>(options.dbpedia, 16000);
  options.watdiv = std::min<std::size_t>(options.watdiv, 4000);
  options.bsbm = std::min<std::size_t>(options.bsbm, 3000);
  auto queries = BuildWorkload(&dict, options);

  std::printf("== Ablation 1: mv-index walk vs pairwise scan ==\n\n");
  Table t1({"index entries", "walk avg (ms)", "scan avg (ms)", "speedup",
            "walk states/probe"});
  const std::size_t kProbes = 60;
  for (const std::size_t target :
       {std::size_t{1000}, std::size_t{4000}, std::size_t{16000},
        queries.size()}) {
    index::MvIndex index(&dict);
    for (std::size_t i = 0; i < std::min(target, queries.size()); ++i) {
      auto outcome = index.Insert(queries[i].query, i);
      if (!outcome.ok()) return 1;
    }
    util::StreamingStats walk_ms, scan_ms, states;
    const std::size_t stride = std::max<std::size_t>(1, queries.size() / kProbes);
    for (std::size_t i = 0; i < queries.size(); i += stride) {
      const auto& q = queries[i].query;
      util::Timer tw;
      const auto walk = index.FindContaining(q);
      walk_ms.Add(tw.ElapsedMillis());
      states.Add(static_cast<double>(walk.states_explored));
      util::Timer ts;
      const auto scan = index.ScanContaining(q);
      scan_ms.Add(ts.ElapsedMillis());
      if (walk.contained.size() != scan.contained.size()) {
        std::fprintf(stderr, "MISMATCH walk=%zu scan=%zu at probe %zu\n",
                     walk.contained.size(), scan.contained.size(), i);
        return 1;
      }
    }
    t1.AddRow({util::WithThousands(index.num_entries()),
               Ms(walk_ms.mean()), Ms(scan_ms.mean()),
               util::FormatDouble(scan_ms.mean() / walk_ms.mean(), 1) + "x",
               util::FormatDouble(states.mean(), 0)});
  }
  t1.Print();

  std::printf(
      "\n== Ablation 2: witness filter + NP verify vs raw NP search ==\n"
      "(non-f-graph probes against every indexed entry individually)\n\n");
  index::MvIndex index(&dict);
  const std::size_t kEntries = std::min<std::size_t>(4000, queries.size());
  for (std::size_t i = 0; i < kEntries; ++i) {
    auto outcome = index.Insert(queries[i].query, i);
    if (!outcome.ok()) return 1;
  }
  util::StreamingStats pipeline_ms, raw_np_ms;
  std::size_t probes_used = 0, verdict_mismatches = 0;
  for (std::size_t i = 0; i < queries.size() && probes_used < 60; ++i) {
    const auto& q = queries[i].query;
    const query::QueryShape shape = query::AnalyzeShape(q, dict);
    if (shape.is_fgraph) continue;  // ablation targets the NP-risk probes
    ++probes_used;
    util::Timer tp;
    const auto walk = index.FindContaining(q);
    pipeline_ms.Add(tp.ElapsedMillis());
    std::size_t raw_hits = 0;
    util::Timer tr;
    for (std::uint32_t id = 0; id < index.num_entries(); ++id) {
      raw_hits += containment::IsContainedIn(q, index.entry(id).canonical,
                                             dict)
                      ? 1
                      : 0;
    }
    raw_np_ms.Add(tr.ElapsedMillis());
    if (raw_hits != walk.contained.size()) ++verdict_mismatches;
  }
  Table t2({"probes", "pipeline avg (ms)", "raw NP avg (ms)", "speedup",
            "verdict mismatches"});
  t2.AddRow({util::WithThousands(probes_used), Ms(pipeline_ms.mean()),
             Ms(raw_np_ms.mean()),
             util::FormatDouble(raw_np_ms.mean() / pipeline_ms.mean(), 1) +
                 "x",
             std::to_string(verdict_mismatches)});
  t2.Print();
  return verdict_mismatches == 0 ? 0 : 1;
}
