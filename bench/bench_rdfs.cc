// Figure 6: containment cost under RDFS reasoning (Section 6).
// The LUBM workload is extended to 1,000 queries per the paper's recipe;
// the index stores the extended workload; each query is probed twice:
//   (a) as-is ("Lubm" series — incomplete: misses implicit containments),
//   (b) after the RDFS query-extension step ("Lubm_extended").
// Figure 6a reports overall avg time by query size; Figure 6b the amortised
// cost per containment found — the paper measures ~2.553 vs ~29.513 answers
// per probe, so the amortised cost *drops* for the extended form.

#include <cstdio>
#include <map>

#include "harness.h"
#include "index/mv_index.h"
#include "rdfs/extension.h"

using namespace rdfc;         // NOLINT(build/namespaces)
using namespace rdfc::bench;  // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;
  const rdfs::RdfsSchema schema = workload::LubmSchema(&dict);
  auto extended_workload = workload::GenerateLubmExtended(&dict, 1000, 1234);
  if (!extended_workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 extended_workload.status().ToString().c_str());
    return 1;
  }
  const auto& queries = *extended_workload;

  index::MvIndex index(&dict);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto outcome = index.Insert(queries[i], i);
    if (!outcome.ok()) {
      std::fprintf(stderr, "insert failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("== Figure 6: RDFS-aware containment on extended LUBM ==\n\n");
  std::printf("workload: %zu queries grown from the 14 LUBM seeds\n",
              queries.size());
  std::printf("index:    %s distinct queries\n\n",
              util::WithThousands(index.num_entries()).c_str());

  struct Series {
    util::BucketedStats time_by_size{1, 1};   // per exact query size
    util::BucketedStats amortised_by_size{1, 1};
    util::StreamingStats answers;
    util::StreamingStats time;
  };
  Series plain, extended;

  for (const auto& q : queries) {
    const auto size = static_cast<std::int64_t>(q.size());
    {
      util::Timer t;
      const auto result = index.FindContaining(q);
      const double ms = t.ElapsedMillis();
      plain.time_by_size.Add(size, ms);
      plain.time.Add(ms);
      plain.answers.Add(static_cast<double>(result.contained.size()));
      if (!result.contained.empty()) {
        plain.amortised_by_size.Add(
            size, ms / static_cast<double>(result.contained.size()));
      }
    }
    {
      util::Timer t;
      const query::BgpQuery ext = rdfs::ExtendQuery(q, schema, &dict);
      const auto result = index.FindContaining(ext);
      const double ms = t.ElapsedMillis();  // includes the extension step
      extended.time_by_size.Add(size, ms);
      extended.time.Add(ms);
      extended.answers.Add(static_cast<double>(result.contained.size()));
      if (!result.contained.empty()) {
        extended.amortised_by_size.Add(
            size, ms / static_cast<double>(result.contained.size()));
      }
    }
  }

  std::printf("avg containments found per probe:  Lubm %s, Lubm_extended %s\n",
              util::FormatDouble(plain.answers.mean(), 3).c_str(),
              util::FormatDouble(extended.answers.mean(), 3).c_str());
  std::printf("    (paper: 2.553 vs 29.513)\n");
  std::printf("avg probe time:                    Lubm %s ms, Lubm_extended %s ms\n\n",
              util::FormatDouble(plain.time.mean(), 4).c_str(),
              util::FormatDouble(extended.time.mean(), 4).c_str());

  std::printf("-- Figure 6a: overall cost vs query size (of the base query) --\n");
  Table fig6a({"query size", "Lubm avg (ms)", "Lubm_extended avg (ms)"});
  {
    auto p = plain.time_by_size.NonEmptyBuckets();
    auto e = extended.time_by_size.NonEmptyBuckets();
    std::map<std::int64_t, std::pair<std::string, std::string>> rows;
    for (const auto& b : p) rows[b.lo].first = Ms(b.stats.mean());
    for (const auto& b : e) rows[b.lo].second = Ms(b.stats.mean());
    for (const auto& [size, pair] : rows) {
      fig6a.AddRow({std::to_string(size),
                    pair.first.empty() ? "-" : pair.first,
                    pair.second.empty() ? "-" : pair.second});
    }
  }
  fig6a.Print();

  std::printf("\n-- Figure 6b: amortised cost per containment found --\n");
  Table fig6b({"query size", "Lubm (ms/answer)", "Lubm_extended (ms/answer)"});
  {
    auto p = plain.amortised_by_size.NonEmptyBuckets();
    auto e = extended.amortised_by_size.NonEmptyBuckets();
    std::map<std::int64_t, std::pair<std::string, std::string>> rows;
    for (const auto& b : p) rows[b.lo].first = Ms(b.stats.mean());
    for (const auto& b : e) rows[b.lo].second = Ms(b.stats.mean());
    for (const auto& [size, pair] : rows) {
      fig6b.AddRow({std::to_string(size),
                    pair.first.empty() ? "-" : pair.first,
                    pair.second.empty() ? "-" : pair.second});
    }
  }
  fig6b.Print();
  return 0;
}
