// Reproduces the workload-analysis numbers quoted in the paper's text:
//   - Section 3 (DBpedia): 99.707 % of BGP queries have only IRIs in the
//     predicate position; 73.158 % are f-graphs.
//   - Section 7 (Benchmarks): corpus composition by class — the paper
//     reports 1,071,826 f-graph & acyclic, 378,884 acyclic only,
//     67,340 f-graph & cyclic, 18,658 neither, out of 1,536,708.
// Shapes, not absolute counts, are the reproduction target: the generated
// corpus is paper-proportional at RDFC_SCALE.

#include <cstdio>

#include "harness.h"

using namespace rdfc;           // NOLINT(build/namespaces)
using namespace rdfc::bench;    // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;
  const workload::WorkloadOptions options = OptionsFromEnv();
  const auto queries = BuildWorkload(&dict, options);

  std::printf("== Workload analysis (Section 3 & Section 7 text) ==\n\n");

  // Per-workload breakdown.
  struct Bucket {
    std::size_t total = 0;
    std::size_t iri_only = 0;
    std::size_t fgraph = 0;
    std::size_t fgraph_acyclic = 0;
    std::size_t acyclic_only = 0;
    std::size_t fgraph_cyclic = 0;
    std::size_t neither = 0;
    util::StreamingStats size;
  };
  Bucket per[workload::kNumWorkloads];
  Bucket all;

  for (const auto& wq : queries) {
    const query::QueryShape shape = query::AnalyzeShape(wq.query, dict);
    for (Bucket* b : {&per[static_cast<std::size_t>(wq.source)], &all}) {
      ++b->total;
      b->iri_only += shape.only_iri_predicates ? 1 : 0;
      b->fgraph += shape.is_fgraph ? 1 : 0;
      b->size.Add(static_cast<double>(shape.num_triples));
      if (shape.is_fgraph && shape.is_acyclic) {
        ++b->fgraph_acyclic;
      } else if (shape.is_acyclic) {
        ++b->acyclic_only;
      } else if (shape.is_fgraph) {
        ++b->fgraph_cyclic;
      } else {
        ++b->neither;
      }
    }
  }

  auto pct = [](std::size_t part, std::size_t whole) {
    return whole == 0
               ? std::string("-")
               : util::FormatDouble(100.0 * static_cast<double>(part) /
                                        static_cast<double>(whole),
                                    3) +
                     "%";
  };

  Table table({"workload", "queries", "IRI-only preds", "f-graph",
               "f-graph&acyclic", "acyclic-only", "f-graph&cyclic", "neither",
               "avg size"});
  for (std::size_t i = 0; i < workload::kNumWorkloads; ++i) {
    const Bucket& b = per[i];
    table.AddRow({workload::WorkloadName(static_cast<workload::WorkloadId>(i)),
                  util::WithThousands(b.total), pct(b.iri_only, b.total),
                  pct(b.fgraph, b.total),
                  util::WithThousands(b.fgraph_acyclic),
                  util::WithThousands(b.acyclic_only),
                  util::WithThousands(b.fgraph_cyclic),
                  util::WithThousands(b.neither),
                  util::FormatDouble(b.size.mean(), 2)});
  }
  table.AddRow({"TOTAL", util::WithThousands(all.total),
                pct(all.iri_only, all.total), pct(all.fgraph, all.total),
                util::WithThousands(all.fgraph_acyclic),
                util::WithThousands(all.acyclic_only),
                util::WithThousands(all.fgraph_cyclic),
                util::WithThousands(all.neither),
                util::FormatDouble(all.size.mean(), 2)});
  table.Print();

  const Bucket& db = per[static_cast<std::size_t>(workload::WorkloadId::kDbpedia)];
  std::printf(
      "\nSection 3 reference points (paper): DBpedia IRI-only predicates "
      "99.707%%, f-graph 73.158%%\n");
  std::printf("Measured on generated DBpedia workload: IRI-only %s, f-graph %s\n",
              pct(db.iri_only, db.total).c_str(),
              pct(db.fgraph, db.total).c_str());
  std::printf(
      "\nSection 7 reference composition (paper, full scale): "
      "1,071,826 f-graph&acyclic / 378,884 acyclic-only / 67,340 "
      "f-graph&cyclic / 18,658 neither\n");
  return 0;
}
