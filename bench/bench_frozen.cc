// Frozen-index probe latency: the pointer Radix tree vs its frozen (flat,
// cache-friendly) compilation, on LUBM-derived and WatDiv view sets.
//
//   bench_frozen [out.json] [--smoke]
//
// For each workload the harness builds one MvIndex from the view set,
// freezes it, prepares every probe once (preparation is the shared per-probe
// fixed cost), then times FindContaining per probe on both layouts over
// RDFC_REPS interleaved passes.  Before any timing it asserts the frozen
// equivalence invariant — identical contained stored-id sets per probe —
// and exits 1 on the first divergence, so `--smoke` doubles as the CI
// correctness gate (perf numbers are informational there).
//
// Output: a JSON document (stdout, or the file given as argv[1]) with
// p50/p95/mean per layout, the p50 speedup, and the structure footprint
// (frozen bytes are exact; pointer-tree bytes are an allocation-model
// estimate documented inline) — committed as BENCH_frozen.json.
//
// Env knobs: RDFC_VIEWS (default 3000), RDFC_PROBES (default 1500),
// RDFC_REPS (default 5); --smoke shrinks the defaults to a seconds-long run.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "containment/pipeline.h"
#include "index/frozen_index.h"
#include "index/mv_index.h"
#include "util/macros.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const auto v = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    if (v > 0) return v;
  }
  return fallback;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(rank, v.size() - 1)];
}

double Mean(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
}

std::vector<std::uint32_t> ContainedIds(const index::ProbeResult& result) {
  std::vector<std::uint32_t> ids;
  ids.reserve(result.contained.size());
  for (const index::ProbeMatch& m : result.contained) ids.push_back(m.stored_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Allocation-model estimate of the pointer tree's probe-relevant footprint,
/// the counterpart of FrozenMvIndex::StructureBytes (entry table excluded on
/// both sides — the layouts share it).  Per node: the struct itself plus the
/// stored-id vector; per edge: the unordered_map slot (key token + Edge value
/// + ~2 words of hash-node/bucket overhead, libstdc++'s layout) and the
/// heap-allocated label vector.
std::size_t PointerStructureBytes(const index::RadixNode& root) {
  std::size_t bytes = 0;
  std::vector<const index::RadixNode*> stack = {&root};
  while (!stack.empty()) {
    const index::RadixNode* node = stack.back();
    stack.pop_back();
    bytes += sizeof(index::RadixNode);
    bytes += node->stored_ids.size() * sizeof(std::uint32_t);
    for (const auto& [first, edge] : node->edges) {
      (void)first;
      bytes += sizeof(query::Token) + sizeof(index::RadixNode::Edge);
      bytes += 2 * sizeof(void*);  // hash node links + bucket share
      bytes += edge.label.size() * sizeof(query::Token);
      stack.push_back(edge.child.get());
    }
  }
  return bytes;
}

struct LayoutTiming {
  std::vector<double> micros;  // one sample per (probe, rep)
  double filter_micros = 0.0;  // Σ time in the radix walk (PTime filter)
  double verify_micros = 0.0;  // Σ time deciding candidates (incl. NP)
};

struct WorkloadReport {
  std::string name;
  std::size_t views = 0;
  std::size_t live_entries = 0;
  std::size_t probes = 0;
  std::size_t contained_pairs = 0;  // Σ per-probe |contained|, sanity anchor
  LayoutTiming pointer, frozen;
  std::size_t frozen_bytes = 0;
  std::size_t pointer_bytes = 0;
};

/// Builds the index, checks per-probe equivalence (exits on divergence),
/// then times both layouts with interleaved passes so neither gets a cache
/// or frequency-scaling advantage.
WorkloadReport RunWorkload(const std::string& name,
                           const std::vector<query::BgpQuery>& views,
                           const std::vector<query::BgpQuery>& probe_queries,
                           const rdf::TermDictionary& dict,
                           index::MvIndex* index, std::size_t reps) {
  for (std::size_t i = 0; i < views.size(); ++i) {
    (void)index->Insert(views[i], i);  // degenerate generated views skipped
  }
  const index::FrozenMvIndex frozen(*index);

  std::vector<containment::PreparedProbe> probes;
  probes.reserve(probe_queries.size());
  for (const query::BgpQuery& q : probe_queries) {
    probes.push_back(containment::PrepareProbe(q, dict));
  }

  WorkloadReport report;
  report.name = name;
  report.views = views.size();
  report.live_entries = index->num_live_entries();
  report.probes = probes.size();
  report.frozen_bytes = frozen.StructureBytes();
  report.pointer_bytes = PointerStructureBytes(index->root());

  // Equivalence gate (doubles as warmup for both layouts).
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto tree_ids = ContainedIds(index->FindContaining(probes[i]));
    const auto flat_ids = ContainedIds(frozen.FindContaining(probes[i]));
    report.contained_pairs += tree_ids.size();
    if (tree_ids != flat_ids) {
      std::fprintf(stderr,
                   "EQUIVALENCE MISMATCH (%s, probe %zu): pointer=%zu ids, "
                   "frozen=%zu ids\n",
                   name.c_str(), i, tree_ids.size(), flat_ids.size());
      std::exit(1);
    }
  }

  util::Timer timer;
  std::size_t sink = 0;  // keeps the results observable
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (const containment::PreparedProbe& probe : probes) {
      timer.Restart();
      const index::ProbeResult r = index->FindContaining(probe);
      report.pointer.micros.push_back(timer.ElapsedMicros());
      sink += r.contained.size();
      report.pointer.filter_micros += r.filter_micros;
      report.pointer.verify_micros += r.verify_micros;
    }
    for (const containment::PreparedProbe& probe : probes) {
      timer.Restart();
      const index::ProbeResult r = frozen.FindContaining(probe);
      report.frozen.micros.push_back(timer.ElapsedMicros());
      sink += r.contained.size();
      report.frozen.filter_micros += r.filter_micros;
      report.frozen.verify_micros += r.verify_micros;
    }
  }
  if (sink != 2 * reps * report.contained_pairs) {
    std::fprintf(stderr, "non-deterministic contained counts on %s\n",
                 name.c_str());
    std::exit(1);
  }
  return report;
}

void AppendLayout(std::string* json, const char* key, const LayoutTiming& t) {
  const double n = std::max<double>(1.0, static_cast<double>(t.micros.size()));
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"p50_us\": %.3f, \"p95_us\": %.3f, "
                "\"mean_us\": %.3f, \"mean_filter_us\": %.3f, "
                "\"mean_verify_us\": %.3f}",
                key, Percentile(t.micros, 50), Percentile(t.micros, 95),
                Mean(t.micros), t.filter_micros / n, t.verify_micros / n);
  *json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  const std::size_t num_views = EnvSize("RDFC_VIEWS", smoke ? 400 : 3000);
  const std::size_t num_probes = EnvSize("RDFC_PROBES", smoke ? 200 : 1500);
  const std::size_t reps = EnvSize("RDFC_REPS", smoke ? 2 : 5);
  std::fprintf(stderr, "[bench_frozen] views=%zu probes=%zu reps=%zu%s\n",
               num_views, num_probes, reps, smoke ? " (smoke)" : "");

  std::vector<WorkloadReport> reports;
  {
    rdf::TermDictionary dict;
    auto views = workload::GenerateLubmExtended(&dict, num_views, 42);
    auto probes = workload::GenerateLubmExtended(&dict, num_probes, 1042);
    RDFC_CHECK(views.ok() && probes.ok());
    index::MvIndex index(&dict);
    reports.push_back(
        RunWorkload("lubm_extended", *views, *probes, dict, &index, reps));
  }
  {
    rdf::TermDictionary dict;
    const auto views = workload::GenerateWatdiv(&dict, num_views, 42);
    const auto probes = workload::GenerateWatdiv(&dict, num_probes, 1042);
    index::MvIndex index(&dict);
    reports.push_back(
        RunWorkload("watdiv", views, probes, dict, &index, reps));
  }

  std::string json = "{\n  \"bench\": \"frozen_vs_pointer_probe\",\n";
  json += "  \"views\": " + std::to_string(num_views) + ",\n";
  json += "  \"probes\": " + std::to_string(num_probes) + ",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json +=
      "  \"note\": \"probe preparation excluded (shared fixed cost); "
      "frozen bytes are exact, pointer bytes an allocation-model estimate; "
      "equivalence of contained id sets is asserted before timing\",\n";
  json += "  \"workloads\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const WorkloadReport& r = reports[i];
    const double p50_speedup = Percentile(r.frozen.micros, 50) > 0.0
                                   ? Percentile(r.pointer.micros, 50) /
                                         Percentile(r.frozen.micros, 50)
                                   : 0.0;
    std::fprintf(stderr,
                 "[%s] pointer p50=%.2fus p95=%.2fus | frozen p50=%.2fus "
                 "p95=%.2fus | p50 speedup %.2fx | %zu B vs %zu B\n",
                 r.name.c_str(), Percentile(r.pointer.micros, 50),
                 Percentile(r.pointer.micros, 95),
                 Percentile(r.frozen.micros, 50),
                 Percentile(r.frozen.micros, 95), p50_speedup, r.pointer_bytes,
                 r.frozen_bytes);
    char buf[256];
    json += "    {\n";
    std::snprintf(buf, sizeof(buf),
                  "      \"workload\": \"%s\",\n      \"views\": %zu,\n"
                  "      \"live_entries\": %zu,\n      \"probes\": %zu,\n"
                  "      \"contained_pairs\": %zu,\n",
                  r.name.c_str(), r.views, r.live_entries, r.probes,
                  r.contained_pairs);
    json += buf;
    AppendLayout(&json, "pointer", r.pointer);
    json += ",\n";
    AppendLayout(&json, "frozen", r.frozen);
    json += ",\n";
    std::snprintf(
        buf, sizeof(buf),
        "      \"p50_speedup\": %.2f,\n"
        "      \"pointer_structure_bytes\": %zu,\n"
        "      \"frozen_structure_bytes\": %zu,\n"
        "      \"pointer_bytes_per_stored_query\": %.1f,\n"
        "      \"frozen_bytes_per_stored_query\": %.1f\n",
        p50_speedup, r.pointer_bytes, r.frozen_bytes,
        static_cast<double>(r.pointer_bytes) /
            static_cast<double>(std::max<std::size_t>(1, r.live_entries)),
        static_cast<double>(r.frozen_bytes) /
            static_cast<double>(std::max<std::size_t>(1, r.live_entries)));
    json += buf;
    json += i + 1 < reports.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n}\n";

  if (!out_path.empty()) {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  } else {
    std::fputs(json.c_str(), stdout);
  }
  if (smoke) std::fprintf(stderr, "[bench_frozen] smoke OK\n");
  return 0;
}
