// Related-work baseline comparison (ours; operationalises the paper's
// Section 8 argument): on the same workload, how many probe queries can be
// served by
//   (a) exact canonical-form matching  (SPARQL result caches, [56]),
//   (b) subgraph-isomorphism matching  (graph caches, [69-71]),
//   (c) containment via the mv-index   (this paper)?
// Containment subsumes both (every exact and iso hit is a containment hit),
// and the measured deltas quantify what the weaker notions leave on the
// table.  Also reports lookup latency per strategy.

#include <cstdio>

#include "baselines/canonical_cache.h"
#include "baselines/subgraph_iso.h"
#include "harness.h"
#include "index/mv_index.h"

using namespace rdfc;         // NOLINT(build/namespaces)
using namespace rdfc::bench;  // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;
  workload::WorkloadOptions options = OptionsFromEnv();
  options.dbpedia = std::min<std::size_t>(options.dbpedia, 30000);
  options.watdiv = std::min<std::size_t>(options.watdiv, 6000);
  options.bsbm = std::min<std::size_t>(options.bsbm, 4000);
  auto queries = BuildWorkload(&dict, options);

  // Split the log: first 70% is "cached/indexed", last 30% probes.
  const std::size_t split = queries.size() * 7 / 10;

  index::MvIndex mv(&dict);
  baselines::CanonicalCache exact(&dict);
  for (std::size_t i = 0; i < split; ++i) {
    if (!mv.Insert(queries[i].query, i).ok()) return 1;
    if (!exact.Insert(queries[i].query, i).ok()) return 1;
  }
  std::fprintf(stderr, "[harness] stored %s queries (%s distinct)\n",
               util::WithThousands(split).c_str(),
               util::WithThousands(mv.num_entries()).c_str());

  std::size_t exact_hits = 0, iso_hits = 0, containment_hits = 0;
  std::size_t iso_checked = 0, containment_hits_on_sample = 0;
  util::StreamingStats exact_ms, iso_ms, containment_ms;

  for (std::size_t i = split; i < queries.size(); ++i) {
    const query::BgpQuery& q = queries[i].query;

    util::Timer te;
    const bool e = exact.Lookup(q).found;
    exact_ms.Add(te.ElapsedMillis());
    exact_hits += e ? 1 : 0;

    util::Timer tc;
    const auto probe = mv.FindContaining(q);
    containment_ms.Add(tc.ElapsedMillis());
    containment_hits += probe.contained.empty() ? 0 : 1;

    // Subgraph isomorphism "filter-then-verify": use the mv-index's
    // candidates as the filter (generous to the baseline), verify each by
    // isomorphism.  Sampled 1-in-4 to keep the quadratic verify affordable.
    if (i % 4 == 0) {
      ++iso_checked;
      util::Timer ti;
      bool hit = false;
      for (const auto& match : probe.contained) {
        if (baselines::IsSubgraphIsomorphic(mv.entry(match.stored_id).canonical,
                                            q, dict)) {
          hit = true;
          break;
        }
      }
      iso_ms.Add(ti.ElapsedMillis());
      iso_hits += hit ? 1 : 0;
      // Same-sample containment counter: per probe, iso hits are a strict
      // subset of containment hits, so these two rows are comparable.
      containment_hits_on_sample += probe.contained.empty() ? 0 : 1;
    }
  }

  const auto probes = queries.size() - split;
  auto pct = [](std::size_t part, std::size_t whole) {
    return util::FormatDouble(
               100.0 * static_cast<double>(part) / static_cast<double>(whole),
               1) +
           "%";
  };

  std::printf("== Baseline comparison: what each matching notion serves ==\n\n");
  Table table({"strategy", "probes", "hit rate", "avg lookup (ms)"});
  table.AddRow({"exact canonical match [56]", util::WithThousands(probes),
                pct(exact_hits, probes), Ms(exact_ms.mean())});
  table.AddRow({"subgraph isomorphism [69-71]",
                util::WithThousands(iso_checked), pct(iso_hits, iso_checked),
                Ms(iso_ms.mean())});
  table.AddRow({"containment (same sample)", util::WithThousands(iso_checked),
                pct(containment_hits_on_sample, iso_checked), "-"});
  table.AddRow({"containment (mv-index)", util::WithThousands(probes),
                pct(containment_hits, probes), Ms(containment_ms.mean())});
  table.Print();
  std::printf(
      "\nContainment subsumes both baselines; the gap to the exact-match row"
      "\nis the value of containment-aware caching (Section 8's argument).\n");
  return 0;
}
