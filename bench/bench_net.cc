// Network front-end serving benchmark (DESIGN.md "Network front end"): an
// in-process ContainmentService + NetServer on an ephemeral loopback port,
// driven by the two canonical load-generation disciplines from src/net/:
//
//   - closed loop: a concurrency sweep of blocking round-trip clients.
//     Arrivals self-throttle to the service rate, so the sweep's peak is the
//     server's CAPACITY; the committed numbers are requests/second.
//   - open loop: requests injected at a FIXED rate over pipelined
//     nonblocking connections — arrivals never slow down when the server
//     does.  Run at 0.5x capacity (healthy) and 2x capacity (overload), the
//     committed numbers are the tail (p99/p999) and the shed rate: under
//     overload the bounded queue sheds with RESOURCE_EXHAUSTED instead of
//     letting the tail grow without bound.
//   - batching A/B: anchor-sharing bursts (burst=8 identical probes) against
//     a server with the batching window armed vs disabled.  Grouped
//     admission pins ONE snapshot per group and answers duplicate probes
//     from the intra-group dedup cache, so the armed run shows fewer
//     executed probes (batch_dedup_hits) and higher throughput.
//
// Probes carry simulated downstream io (RDFC_NET_IO_US, default 1000us) so
// capacity is latency-bound and stable across host core counts — the same
// regime bench_concurrent's io mode measures.
//
// Output: JSON to stdout or argv[1]; committed as BENCH_net.json.
// Env knobs: RDFC_NET_VIEWS (300), RDFC_NET_REQUESTS (1200),
// RDFC_NET_DURATION_MS (1500), RDFC_NET_IO_US (1000), RDFC_NET_THREADS (2).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/loadgen.h"
#include "net/server.h"
#include "service/containment_service.h"
#include "sparql/writer.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const auto v = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    if (v > 0) return v;
  }
  return fallback;
}

struct Fixture {
  std::vector<std::string> views;
  std::vector<std::string> probes;
};

/// LUBM-extended texts: the first `num_views` generated queries are
/// published as views, the rest probe them (same family, so containment
/// hits are non-trivial).
Fixture MakeFixture(std::size_t num_views, std::size_t num_probes) {
  rdf::TermDictionary dict;
  auto generated =
      workload::GenerateLubmExtended(&dict, num_views + num_probes, 42);
  if (!generated.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 generated.status().ToString().c_str());
    std::exit(1);
  }
  Fixture fixture;
  for (std::size_t i = 0; i < generated.value().size(); ++i) {
    const query::BgpQuery& q = generated.value()[i];
    if (q.empty()) continue;
    std::string text = sparql::WriteQuery(q, dict);
    if (fixture.views.size() < num_views) {
      fixture.views.push_back(std::move(text));
    } else {
      fixture.probes.push_back(std::move(text));
    }
  }
  return fixture;
}

struct Server {
  explicit Server(const Fixture& fixture, std::size_t threads,
                  double batch_window_micros) {
    service::ServiceOptions service_options;
    service_options.num_threads = threads;
    service_options.queue_capacity = 64;
    svc = std::make_unique<service::ContainmentService>(service_options);
    auto published = svc->PublishViews(fixture.views);
    if (!published.ok()) {
      std::fprintf(stderr, "publish failed: %s\n",
                   published.status().ToString().c_str());
      std::exit(1);
    }
    net::ServerOptions server_options;
    server_options.batch_window_micros = batch_window_micros;
    server_options.max_batch = 64;
    server = std::make_unique<net::NetServer>(svc.get(), server_options);
    const util::Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      std::exit(1);
    }
  }

  std::unique_ptr<service::ContainmentService> svc;
  std::unique_ptr<net::NetServer> server;
};

net::LoadReport MustRun(util::Result<net::LoadReport> report,
                        const char* what) {
  if (!report.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(report).value();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_views = EnvSize("RDFC_NET_VIEWS", 300);
  const std::size_t requests = EnvSize("RDFC_NET_REQUESTS", 1200);
  const std::size_t duration_ms = EnvSize("RDFC_NET_DURATION_MS", 1500);
  const std::size_t io_us = EnvSize("RDFC_NET_IO_US", 1000);
  const std::size_t threads = EnvSize("RDFC_NET_THREADS", 2);

  const Fixture fixture = MakeFixture(num_views, 200);

  std::string out = "{\n";
  out += "  \"bench\": \"net_front_end\",\n";
  out += "  \"workload\": \"lubm_extended\",\n";
  out += "  \"views\": " + std::to_string(num_views) + ",\n";
  out += "  \"service_threads\": " + std::to_string(threads) + ",\n";
  out += "  \"queue_capacity\": 64,\n";
  out += "  \"simulated_io_us\": " + std::to_string(io_us) + ",\n";
  const unsigned hw = std::thread::hardware_concurrency();  // NOLINT(raw-concurrency): introspection, no thread spawned
  out += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";

  // ---- closed loop: concurrency sweep -> capacity --------------------
  double capacity_rps = 0.0;
  {
    Server server(fixture, threads, /*batch_window_micros=*/200.0);
    out += "  \"closed_loop\": {\n    \"note\": \"blocking round trips; "
           "arrivals self-throttle, peak achieved_rps is capacity\",\n"
           "    \"runs\": [\n";
    const std::size_t sweep[] = {1, 2, 4, 8, 16};
    bool first = true;
    for (std::size_t concurrency : sweep) {
      net::LoadOptions load;
      load.port = server.server->port();
      load.queries = fixture.probes;
      load.concurrency = concurrency;
      load.total_requests = requests;
      load.simulated_io_micros = static_cast<std::uint32_t>(io_us);
      const net::LoadReport report =
          MustRun(net::RunClosedLoop(load), "closed loop");
      capacity_rps = std::max(capacity_rps, report.achieved_rps);
      if (!first) out += ",\n";
      first = false;
      out += "      {\"concurrency\": " + std::to_string(concurrency) +
             ", \"report\": " + report.ToJson() + "}";
    }
    out += "\n    ],\n";
    out += "    \"capacity_rps\": " + std::to_string(capacity_rps) + "\n  },\n";
  }

  // ---- open loop: fixed arrival rate at 0.5x and 2x capacity ---------
  {
    out += "  \"open_loop\": {\n    \"note\": \"fixed-rate arrivals over "
           "pipelined connections; arrivals do not slow under backpressure, "
           "so 2x capacity is genuine overload — the tail is bounded by "
           "shedding (RESOURCE_EXHAUSTED), not by waiting\",\n"
           "    \"runs\": [\n";
    const double rates[] = {0.5 * capacity_rps, 2.0 * capacity_rps};
    const char* labels[] = {"0.5x_capacity", "2x_capacity"};
    bool first = true;
    for (int i = 0; i < 2; ++i) {
      Server server(fixture, threads, /*batch_window_micros=*/200.0);
      net::LoadOptions load;
      load.port = server.server->port();
      load.queries = fixture.probes;
      load.rate_per_sec = rates[i];
      load.duration_ms = static_cast<double>(duration_ms);
      load.connections = 4;
      load.simulated_io_micros = static_cast<std::uint32_t>(io_us);
      const net::LoadReport report =
          MustRun(net::RunOpenLoop(load), "open loop");
      if (!first) out += ",\n";
      first = false;
      out += "      {\"label\": \"" + std::string(labels[i]) +
             "\", \"report\": " + report.ToJson() + "}";
    }
    out += "\n    ]\n  },\n";
  }

  // ---- batching A/B: anchor-sharing bursts, window armed vs off ------
  {
    out += "  \"batch_admission_ab\": {\n    \"note\": \"burst=8 identical "
           "probes per window; armed batching groups them into one queue "
           "slot + one pinned snapshot and answers duplicates from the "
           "intra-group dedup cache\",\n    \"runs\": [\n";
    const double windows[] = {0.0, 500.0};
    const char* labels[] = {"batching_off", "batching_500us"};
    bool first = true;
    for (int i = 0; i < 2; ++i) {
      Server server(fixture, threads, windows[i]);
      net::LoadOptions load;
      load.port = server.server->port();
      load.queries = fixture.probes;
      load.burst = 8;
      load.concurrency = 8;
      load.total_requests = requests;
      load.simulated_io_micros = static_cast<std::uint32_t>(io_us);
      const net::LoadReport report =
          MustRun(net::RunClosedLoop(load), "batch A/B");
      const service::MetricsSnapshot metrics = server.svc->Metrics();
      const std::uint64_t executed =
          metrics.batch_requests > metrics.batch_dedup_hits
              ? metrics.batch_requests - metrics.batch_dedup_hits
              : 0;
      if (!first) out += ",\n";
      first = false;
      out += "      {\"label\": \"" + std::string(labels[i]) +
             "\", \"window_us\": " + std::to_string(windows[i]) +
             ", \"batches\": " + std::to_string(metrics.batches) +
             ", \"batched_requests\": " + std::to_string(metrics.batch_requests) +
             ", \"dedup_hits\": " + std::to_string(metrics.batch_dedup_hits) +
             ", \"probes_executed\": " + std::to_string(executed) +
             ", \"report\": " + report.ToJson() + "}";
    }
    out += "\n    ]\n  }\n}\n";
  }

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::fputs(out.c_str(), f);
    std::fclose(f);
  } else {
    std::fputs(out.c_str(), stdout);
  }
  return 0;
}
