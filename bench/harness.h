#pragma once

// Shared scaffolding for the figure/table harnesses: workload construction
// at the RDFC_SCALE-selected size, fixed-width table printing, and the query
// classification used by Figures 4 and 5.

#include <cstdio>
#include <string>
#include <vector>

#include "query/analysis.h"
#include "query/witness.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "workload/workload.h"

namespace rdfc {
namespace bench {

inline workload::WorkloadOptions OptionsFromEnv() {
  const double scale = workload::ScaleFromEnv(0.1);
  return workload::ScaledWorkloadOptions(scale);
}

inline std::vector<workload::WorkloadQuery> BuildWorkload(
    rdf::TermDictionary* dict, const workload::WorkloadOptions& options) {
  std::fprintf(stderr,
               "[harness] generating combined workload: %s queries "
               "(DBPedia %zu, WatDiv %zu, BSBM %zu, LUBM %zu, LDBC %zu)\n",
               util::WithThousands(options.total()).c_str(), options.dbpedia,
               options.watdiv, options.bsbm, options.lubm, options.ldbc);
  return workload::GenerateCombined(dict, options);
}

/// Figure 4/5 panel classification.
enum class QueryClass {
  kFGraphAcyclic = 0,
  kFGraphCyclic = 1,
  kNonFGraphAcyclic = 2,
  kNonFGraphCyclic = 3,
};

inline QueryClass Classify(const query::QueryShape& shape) {
  if (shape.is_fgraph) {
    return shape.is_acyclic ? QueryClass::kFGraphAcyclic
                            : QueryClass::kFGraphCyclic;
  }
  return shape.is_acyclic ? QueryClass::kNonFGraphAcyclic
                          : QueryClass::kNonFGraphCyclic;
}

inline const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kFGraphAcyclic: return "F-Graph & Acyclic";
    case QueryClass::kFGraphCyclic: return "F-Graph & Cyclic";
    case QueryClass::kNonFGraphAcyclic: return "Non-F-Graph & Acyclic";
    case QueryClass::kNonFGraphCyclic: return "Non-F-Graph & Cyclic";
  }
  return "?";
}

/// Minimal fixed-width table printer for the harness outputs.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
      for (const auto& row : rows_) {
        if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Ms(double v, int precision = 4) {
  return util::FormatDouble(v, precision);
}

inline std::string MeanCi(const util::StreamingStats& stats, int precision = 4) {
  if (stats.count() == 0) return "-";
  return util::FormatDouble(stats.mean(), precision) + " ±" +
         util::FormatDouble(stats.ci95_halfwidth(), precision);
}

}  // namespace bench
}  // namespace rdfc
