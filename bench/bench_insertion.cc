// Section 7.1 "Insertion Cost":
//   - Text table: total bulk-insert time, resulting index size (vertices)
//     and distinct-query count, and avg insertion time per workload.
//     (Paper: 7.425 s total, 466,576 vertices, 397,507 distinct queries;
//      avg 0.0028/0.0098/0.0065/0.0070/0.0072 ms for
//      DBPedia/LDBC/WatDiv/BSBM/LUBM.)
//   - Figure 3a: avg & min insertion time bucketed by mv-index size
//     (per 5,000 vertices) — expected flat, with a slower initial phase.
//   - Figure 3b: avg insertion time by query size (1-5, 6-10, ...) per
//     workload, split acyclic/cyclic — expected near-linear in size.

#include <cstdio>
#include <map>

#include "harness.h"
#include "index/mv_index.h"

using namespace rdfc;         // NOLINT(build/namespaces)
using namespace rdfc::bench;  // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;
  const workload::WorkloadOptions options = OptionsFromEnv();
  auto queries = BuildWorkload(&dict, options);

  // Pre-compute shapes outside the timed region (the paper excludes parsing
  // and bookkeeping from the measured insertion time).
  std::vector<query::QueryShape> shapes;
  shapes.reserve(queries.size());
  for (const auto& wq : queries) {
    shapes.push_back(query::AnalyzeShape(wq.query, dict));
  }

  index::MvIndex index(&dict);
  util::StreamingStats per_workload[workload::kNumWorkloads];
  // Figure 3a: bucket by index size at insertion time, per 5,000 vertices.
  util::BucketedStats by_index_size(5000);
  // Figure 3b: per (workload, cyclic?) -> size-bucketed stats.
  std::map<std::pair<std::size_t, bool>, util::BucketedStats> by_query_size;

  util::Timer total_timer;
  double total_ms = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& wq = queries[i];
    const std::size_t vertices_before = index.num_nodes();
    util::Timer t;
    auto outcome = index.Insert(wq.query, wq.seq);
    const double ms = t.ElapsedMillis();
    if (!outcome.ok()) {
      std::fprintf(stderr, "insert failed: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    total_ms += ms;
    per_workload[static_cast<std::size_t>(wq.source)].Add(ms);
    by_index_size.Add(static_cast<std::int64_t>(vertices_before), ms);
    auto key = std::make_pair(static_cast<std::size_t>(wq.source),
                              !shapes[i].is_acyclic);
    auto it = by_query_size.find(key);
    if (it == by_query_size.end()) {
      it = by_query_size.emplace(key, util::BucketedStats(5, 1)).first;
    }
    it->second.Add(shapes[i].num_triples, ms);
  }
  const double wall_ms = total_timer.ElapsedMillis();

  const index::RadixStats stats = index.ComputeStats();
  std::printf("== Section 7.1: bulk insertion of the combined workload ==\n\n");
  std::printf("queries inserted:        %s\n",
              util::WithThousands(queries.size()).c_str());
  std::printf("distinct queries:        %s   (paper: 397,507 of 1,536,378)\n",
              util::WithThousands(index.num_entries()).c_str());
  std::printf("mv-index vertices:       %s   (paper: 466,576)\n",
              util::WithThousands(stats.num_nodes).c_str());
  std::printf("mv-index edges:          %s\n",
              util::WithThousands(stats.num_edges).c_str());
  std::printf("max radix depth:         %zu\n", stats.max_depth);
  std::printf("total insert time:       %s ms   (paper: 7,425 ms at 10x scale)\n",
              util::FormatDouble(total_ms, 1).c_str());
  std::printf("wall time incl. stats:   %s ms\n\n",
              util::FormatDouble(wall_ms, 1).c_str());

  Table per_wl({"workload", "insertions", "avg insert (ms)", "paper (ms)"});
  const char* paper_avgs[] = {"0.0028", "0.0065", "0.0070", "0.0072",
                              "0.0098"};
  for (std::size_t i = 0; i < workload::kNumWorkloads; ++i) {
    per_wl.AddRow({workload::WorkloadName(static_cast<workload::WorkloadId>(i)),
                   util::WithThousands(per_workload[i].count()),
                   Ms(per_workload[i].mean()), paper_avgs[i]});
  }
  per_wl.Print();

  std::printf("\n== Figure 3a: insertion time vs mv-index size ==\n");
  std::printf("(avg and min per bucket of 5,000 index vertices)\n\n");
  Table fig3a({"index vertices", "insertions", "avg (ms)", "min (ms)"});
  for (const auto& bucket : by_index_size.NonEmptyBuckets()) {
    fig3a.AddRow({std::to_string(bucket.lo) + "-" + std::to_string(bucket.hi),
                  util::WithThousands(bucket.stats.count()),
                  Ms(bucket.stats.mean()), Ms(bucket.stats.min())});
  }
  fig3a.Print();

  std::printf("\n== Figure 3b: insertion time vs query size ==\n\n");
  Table fig3b({"workload", "class", "query size", "insertions", "avg (ms)"});
  for (const auto& [key, buckets] : by_query_size) {
    for (const auto& bucket : buckets.NonEmptyBuckets()) {
      fig3b.AddRow(
          {workload::WorkloadName(static_cast<workload::WorkloadId>(key.first)),
           key.second ? "cyclic" : "acyclic",
           std::to_string(bucket.lo) + "-" + std::to_string(bucket.hi),
           util::WithThousands(bucket.stats.count()),
           Ms(bucket.stats.mean())});
    }
  }
  fig3b.Print();
  return 0;
}
