// Google-benchmark microbenchmarks for the core operations: structural
// analysis, serialisation, witness construction, radix insertion, and index
// probing at several index sizes.

#include <benchmark/benchmark.h>

#include "baselines/subgraph_iso.h"
#include "containment/pipeline.h"
#include "index/mv_index.h"
#include "query/analysis.h"
#include "query/serialisation.h"
#include "query/canonical_label.h"
#include "query/witness.h"
#include "rdfs/extension.h"
#include "workload/workload.h"

namespace {

using namespace rdfc;  // NOLINT(build/namespaces)

/// Shared fixture state: one dictionary + a DBpedia-alike workload.
struct Corpus {
  rdf::TermDictionary dict;
  std::vector<query::BgpQuery> queries;

  explicit Corpus(std::size_t n) {
    queries = workload::GenerateDbpedia(&dict, n, 77);
  }
};

Corpus& SharedCorpus() {
  static auto* corpus = new Corpus(50000);  // NOLINT(raw-new): leaked singleton
  return *corpus;
}

void BM_AnalyzeShape(benchmark::State& state) {
  Corpus& c = SharedCorpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::AnalyzeShape(c.queries[i % c.queries.size()], c.dict));
    ++i;
  }
}
BENCHMARK(BM_AnalyzeShape);

void BM_Serialise(benchmark::State& state) {
  Corpus& c = SharedCorpus();
  std::size_t i = 0;
  std::size_t skipped = 0;
  for (auto _ : state) {
    const query::BgpQuery& q = c.queries[i % c.queries.size()];
    ++i;
    query::CanonicalMap canonical(&c.dict);
    auto result = query::SerialiseQuery(q, &c.dict, &canonical);
    if (result.ok()) {
      benchmark::DoNotOptimize(result.value().tokens.size());
    } else {
      ++skipped;  // var-predicate queries are not serialisable
    }
  }
  state.counters["skipped"] = static_cast<double>(skipped);
}
BENCHMARK(BM_Serialise);

void BM_BuildWitness(benchmark::State& state) {
  Corpus& c = SharedCorpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::BuildWitness(c.queries[i % c.queries.size()]).nd_degree);
    ++i;
  }
}
BENCHMARK(BM_BuildWitness);

void BM_PrepareStored(benchmark::State& state) {
  Corpus& c = SharedCorpus();
  std::size_t i = 0;
  for (auto _ : state) {
    auto result =
        containment::PrepareStored(c.queries[i % c.queries.size()], &c.dict);
    benchmark::DoNotOptimize(result.ok());
    ++i;
  }
}
BENCHMARK(BM_PrepareStored);

void BM_IndexInsert(benchmark::State& state) {
  Corpus& c = SharedCorpus();
  std::size_t i = 0;
  index::MvIndex index(&c.dict);
  for (auto _ : state) {
    auto result = index.Insert(c.queries[i % c.queries.size()], i);
    benchmark::DoNotOptimize(result.ok());
    ++i;
  }
  state.counters["entries"] = static_cast<double>(index.num_entries());
}
BENCHMARK(BM_IndexInsert);

void BM_IndexProbe(benchmark::State& state) {
  Corpus& c = SharedCorpus();
  const auto target = static_cast<std::size_t>(state.range(0));
  index::MvIndex index(&c.dict);
  for (std::size_t i = 0; i < target && i < c.queries.size(); ++i) {
    auto result = index.Insert(c.queries[i], i);
    if (!result.ok()) state.SkipWithError("insert failed");
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto result =
        index.FindContaining(c.queries[i % c.queries.size()]);
    benchmark::DoNotOptimize(result.contained.size());
    ++i;
  }
  state.counters["entries"] = static_cast<double>(index.num_entries());
}
BENCHMARK(BM_IndexProbe)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_CanonicalLabel(benchmark::State& state) {
  Corpus& c = SharedCorpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::CanonicalLabel(c.queries[i % c.queries.size()], &c.dict).hash);
    ++i;
  }
}
BENCHMARK(BM_CanonicalLabel);

void BM_RdfsExtendQuery(benchmark::State& state) {
  rdf::TermDictionary dict;
  const rdfs::RdfsSchema schema = workload::LubmSchema(&dict);
  auto queries = workload::GenerateLubmExtended(&dict, 500, 31);
  if (!queries.ok()) {
    state.SkipWithError("workload generation failed");
    return;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rdfs::ExtendQuery((*queries)[i % queries->size()], schema, &dict)
            .size());
    ++i;
  }
}
BENCHMARK(BM_RdfsExtendQuery);

void BM_SubgraphIso(benchmark::State& state) {
  Corpus& c = SharedCorpus();
  std::size_t i = 0;
  for (auto _ : state) {
    const query::BgpQuery& w = c.queries[i % c.queries.size()];
    const query::BgpQuery& q = c.queries[(i * 17 + 3) % c.queries.size()];
    benchmark::DoNotOptimize(baselines::IsSubgraphIsomorphic(w, q, c.dict));
    ++i;
  }
}
BENCHMARK(BM_SubgraphIso);

void BM_PairwiseCheck(benchmark::State& state) {
  Corpus& c = SharedCorpus();
  std::size_t i = 0;
  for (auto _ : state) {
    const query::BgpQuery& q = c.queries[i % c.queries.size()];
    const query::BgpQuery& w = c.queries[(i * 31 + 7) % c.queries.size()];
    benchmark::DoNotOptimize(containment::Contains(q, w, &c.dict));
    ++i;
  }
}
BENCHMARK(BM_PairwiseCheck);

}  // namespace

BENCHMARK_MAIN();
