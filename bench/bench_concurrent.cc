// Concurrent-service throughput: probe a published LUBM-derived index
// through the containment service at 1/2/4/8 worker threads, in two serving
// regimes, against a no-service serial baseline.
//
//   - cpu mode:   probes are pure containment checks.  Scaling follows the
//     machine's core count (a 1-core container serialises everything).
//   - io mode:    each probe carries simulated downstream work
//     (ProbeRequest::simulated_io_micros — result materialisation / client
//     I/O).  Latency-bound serving is where the pool's overlap shows even on
//     few cores, because workers sleep, not spin.
//   - mixed mode: 1% of probes are adversarially pathological (high-nd-degree
//     star whose verification explores ~k^(m+1) matcher states) and every
//     probe runs under a per-probe budget (ServiceOptions::
//     probe_timeout_micros).  The point of the resilience work: tail latency
//     stays bounded by the budget instead of by the worst probe, with the
//     truncated probes reported as a degraded rate rather than as hangs.
//
// Output: a JSON document (stdout, or the file given as argv[1]) recording
// hardware_concurrency honestly next to every scaling number — committed as
// BENCH_concurrent.json.
//
//   - write_churn mode: the tiered-write-path acceptance run.  Bake N views
//     into the frozen base (Publish + Refreeze), then interleave fixed-size
//     stage/publish batches with a concurrent probe load and record publish
//     latency percentiles.  Publish builds only the delta tier, so its p50
//     should be a function of the batch size, not of N — the committed JSON
//     pairs a small and a large baked count to show that.
//
// Env knobs: RDFC_VIEWS (default 2000), RDFC_PROBES (default 2000),
// RDFC_IO_US (default 200), RDFC_CHURN_BAKED_SMALL (default 1000),
// RDFC_CHURN_BAKED_LARGE (default 50000), RDFC_CHURN_BATCHES (default 32),
// RDFC_CHURN_BATCH (default 16).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "index/mv_index.h"
#include "service/containment_service.h"
#include "sparql/writer.h"
#include "util/stats.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const auto v =
        static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    if (v > 0) return v;
  }
  return fallback;
}

struct RunResult {
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double probes_per_sec = 0.0;
  std::size_t completed = 0;
  std::size_t contained = 0;
  std::size_t degraded = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  // Per-probe containment work (filter + verify), excluding queue wait —
  // the quantity the per-probe budget bounds.
  double work_p99_us = 0.0;
  double degraded_work_p99_us = 0.0;
};

/// One service run: fresh service, publish the views, push all probes.
/// `timeout_us` > 0 arms the per-probe budget (the mixed-mode regime).
RunResult RunService(const std::vector<std::string>& view_texts,
                     const std::vector<std::string>& probe_texts,
                     std::size_t threads, double io_us,
                     double timeout_us = 0.0) {
  service::ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = probe_texts.size() + 1;
  options.probe_timeout_micros = timeout_us;
  // Measure raw budget-bounded latency: with the breaker on, repeat
  // offenders would short-circuit and the degraded percentile would mix
  // ~free short-circuits with real truncations.
  options.quarantine_threshold = 0;
  service::ContainmentService svc(options);
  for (const std::string& text : view_texts) {
    (void)svc.AddView(text);  // degenerate generated views are skipped
  }
  auto version = svc.Publish();
  RDFC_CHECK(version.ok());

  std::vector<service::ProbeRequest> batch;
  batch.reserve(probe_texts.size());
  for (const std::string& text : probe_texts) {
    auto parsed = svc.Parse(text);
    if (!parsed.ok()) continue;
    service::ProbeRequest request;
    request.query = std::move(parsed).value();
    request.simulated_io_micros = io_us;
    batch.push_back(std::move(request));
  }

  util::Timer wall;
  const auto responses = svc.SubmitBatch(std::move(batch));
  RunResult out;
  out.threads = threads;
  out.wall_ms = wall.ElapsedMillis();
  util::LatencyHistogram work, degraded_work;
  for (const auto& response : responses) {
    if (!response.ok() || !response->status.ok()) continue;
    ++out.completed;
    const double work_us = response->filter_micros + response->verify_micros;
    work.Add(work_us);
    if (response->degraded) {
      ++out.degraded;
      degraded_work.Add(work_us);
    }
    if (!response->containing_views.empty()) ++out.contained;
  }
  out.probes_per_sec =
      1000.0 * static_cast<double>(out.completed) / out.wall_ms;
  const service::MetricsSnapshot metrics = svc.Metrics();
  out.p50_us = metrics.total_micros.Percentile(50);
  out.p99_us = metrics.total_micros.Percentile(99);
  out.work_p99_us = work.Percentile(99);
  out.degraded_work_p99_us = degraded_work.Percentile(99);
  return out;
}

/// No-service baseline: one thread, direct FindContaining calls, no queue,
/// no futures — what the service's 1-thread run pays overhead against.
double SerialBaselineMs(const std::vector<std::string>& view_texts,
                        const std::vector<std::string>& probe_texts) {
  rdf::TermDictionary dict;
  index::MvIndex index(&dict);
  for (const std::string& text : view_texts) {
    auto parsed = sparql::ParseQuery(text, &dict);
    if (!parsed.ok()) continue;
    (void)index.Insert(*parsed, 0);
  }
  std::vector<query::BgpQuery> probes;
  probes.reserve(probe_texts.size());
  for (const std::string& text : probe_texts) {
    auto parsed = sparql::ParseQuery(text, &dict);
    if (parsed.ok()) probes.push_back(std::move(parsed).value());
  }
  util::Timer wall;
  std::size_t contained = 0;
  for (const query::BgpQuery& q : probes) {
    if (!index.FindContaining(q).contained.empty()) ++contained;
  }
  const double ms = wall.ElapsedMillis();
  std::fprintf(stderr, "[serial] %zu probes, %zu contained, %.1f ms\n",
               probes.size(), contained, ms);
  return ms;
}

void AppendRun(std::string* json, const RunResult& r, bool first) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s\n      {\"threads\":%zu,\"wall_ms\":%.2f,"
                "\"probes_per_sec\":%.0f,\"completed\":%zu,"
                "\"contained\":%zu,\"p50_us\":%.1f,\"p99_us\":%.1f}",
                first ? "" : ",", r.threads, r.wall_ms, r.probes_per_sec,
                r.completed, r.contained, r.p50_us, r.p99_us);
  *json += buf;
}

void AppendMixedRun(std::string* json, const RunResult& r, bool first) {
  char buf[320];
  const double rate = r.completed == 0
                          ? 0.0
                          : static_cast<double>(r.degraded) /
                                static_cast<double>(r.completed);
  std::snprintf(buf, sizeof(buf),
                "%s\n      {\"threads\":%zu,\"wall_ms\":%.2f,"
                "\"probes_per_sec\":%.0f,\"completed\":%zu,"
                "\"degraded\":%zu,\"degraded_rate\":%.4f,"
                "\"work_p99_us\":%.1f,"
                "\"degraded_work_p99_us\":%.1f}",
                first ? "" : ",", r.threads, r.wall_ms, r.probes_per_sec,
                r.completed, r.degraded, rate, r.work_p99_us,
                r.degraded_work_p99_us);
  *json += buf;
}

struct ChurnResult {
  std::size_t baked = 0;
  std::size_t batches = 0;
  std::size_t batch_size = 0;
  double bake_ms = 0.0;
  double publish_p50_us = 0.0;
  double publish_p99_us = 0.0;
  double probe_p50_us = 0.0;
  double probe_p99_us = 0.0;
  std::size_t probes_completed = 0;
  std::size_t compactions = 0;
  std::size_t final_base_views = 0;
  std::size_t final_delta_views = 0;
};

/// Write-churn regime: bake `baked` views into the frozen base, then run
/// `batches` publishes of `batch_size` staged adds (plus a few removals)
/// while a background thread keeps probe traffic flowing.  The measured
/// quantity is publish latency — with the tiered write path it tracks the
/// delta batch, not the baked corpus.
ChurnResult RunWriteChurn(std::size_t baked, std::size_t batches,
                          std::size_t batch_size,
                          const std::vector<std::string>& probe_texts) {
  service::ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 4096;
  service::ContainmentService svc(options);

  ChurnResult out;
  out.baked = baked;
  out.batches = batches;
  out.batch_size = batch_size;

  // Bake phase: one big publish, then refreeze so the corpus lives in the
  // frozen base before churn starts.
  {
    rdf::TermDictionary gen_dict;
    auto views = workload::GenerateLubmExtended(&gen_dict, baked, 42);
    RDFC_CHECK(views.ok());
    util::Timer bake;
    for (const auto& q : *views) {
      (void)svc.AddView(sparql::WriteQuery(q, gen_dict));
    }
    RDFC_CHECK(svc.Publish().ok());
    RDFC_CHECK(svc.Refreeze().ok());
    out.bake_ms = bake.ElapsedMillis();
  }

  // Churn corpus: fresh views disjoint from the baked ones.
  std::vector<std::string> churn_texts;
  {
    rdf::TermDictionary gen_dict;
    auto views =
        workload::GenerateLubmExtended(&gen_dict, batches * batch_size, 9042);
    RDFC_CHECK(views.ok());
    for (const auto& q : *views) {
      churn_texts.push_back(sparql::WriteQuery(q, gen_dict));
    }
  }

  // Probe load: parse once, then keep small batches in flight until the
  // writer finishes.
  std::vector<query::BgpQuery> probes;
  for (const std::string& text : probe_texts) {
    auto parsed = svc.Parse(text);
    if (parsed.ok()) probes.push_back(std::move(parsed).value());
  }
  std::atomic<bool> done{false};
  std::atomic<std::size_t> probes_completed{0};
  std::thread prober([&] {  // NOLINT(raw-concurrency): bench load generator, joined below
    std::size_t next = 0;
    while (!done.load(std::memory_order_relaxed)) {
      std::vector<service::ProbeRequest> batch;
      batch.reserve(16);
      for (std::size_t i = 0; i < 16 && !probes.empty(); ++i) {
        service::ProbeRequest request;
        request.query = probes[next++ % probes.size()];
        batch.push_back(std::move(request));
      }
      for (const auto& response : svc.SubmitBatch(std::move(batch))) {
        if (response.ok() && response->status.ok()) {
          probes_completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  // Writer: fixed-size stage/publish batches; every other batch also
  // removes a handful of recently churned views to exercise tombstones.
  util::LatencyHistogram publish_hist;
  std::vector<std::uint64_t> churned_ids;
  std::size_t next_text = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t i = 0; i < batch_size; ++i) {
      auto id = svc.AddView(churn_texts[next_text++]);
      if (id.ok()) churned_ids.push_back(*id);
    }
    if (b % 2 == 1 && churned_ids.size() > 4) {
      for (std::size_t i = 0; i < 2; ++i) {
        (void)svc.RemoveView(churned_ids[churned_ids.size() - 3 - i]);
      }
      churned_ids.resize(churned_ids.size() - 4);
    }
    util::Timer publish;
    RDFC_CHECK(svc.Publish().ok());
    publish_hist.Add(publish.ElapsedMicros());
  }
  done.store(true, std::memory_order_relaxed);
  prober.join();

  out.publish_p50_us = publish_hist.Percentile(50);
  out.publish_p99_us = publish_hist.Percentile(99);
  const service::MetricsSnapshot metrics = svc.Metrics();
  out.probe_p50_us = metrics.total_micros.Percentile(50);
  out.probe_p99_us = metrics.total_micros.Percentile(99);
  out.probes_completed = probes_completed.load();
  out.compactions = metrics.compactions;
  out.final_base_views = metrics.base_views;
  out.final_delta_views = metrics.delta_views;
  return out;
}

void AppendChurnRun(std::string* json, const ChurnResult& r, bool first) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "%s\n      {\"baked_views\":%zu,\"bake_ms\":%.1f,"
                "\"batches\":%zu,\"batch_size\":%zu,"
                "\"publish_p50_us\":%.1f,\"publish_p99_us\":%.1f,"
                "\"probe_p50_us\":%.1f,\"probe_p99_us\":%.1f,"
                "\"probes_completed\":%zu,\"compactions\":%zu,"
                "\"final_base_views\":%zu,\"final_delta_views\":%zu}",
                first ? "" : ",", r.baked, r.bake_ms, r.batches, r.batch_size,
                r.publish_p50_us, r.publish_p99_us, r.probe_p50_us,
                r.probe_p99_us, r.probes_completed, r.compactions,
                r.final_base_views, r.final_delta_views);
  *json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_views = EnvSize("RDFC_VIEWS", 2000);
  const std::size_t num_probes = EnvSize("RDFC_PROBES", 2000);
  const double io_us = static_cast<double>(EnvSize("RDFC_IO_US", 200));
  const unsigned hw = std::thread::hardware_concurrency();  // NOLINT(raw-concurrency): introspection, no thread spawned

  // Generate both query sets once as SPARQL text, so every run (each with
  // its own service + dictionary) sees the identical workload.
  std::vector<std::string> view_texts, probe_texts;
  {
    rdf::TermDictionary dict;
    auto views = workload::GenerateLubmExtended(&dict, num_views, 42);
    auto probes = workload::GenerateLubmExtended(&dict, num_probes, 1042);
    RDFC_CHECK(views.ok() && probes.ok());
    for (const auto& q : *views) {
      view_texts.push_back(sparql::WriteQuery(q, dict));
    }
    for (const auto& q : *probes) {
      probe_texts.push_back(sparql::WriteQuery(q, dict));
    }
  }
  std::fprintf(stderr,
               "[bench_concurrent] %zu LUBM-derived views, %zu probes, "
               "hardware_concurrency=%u\n",
               view_texts.size(), probe_texts.size(), hw);

  const double serial_ms = SerialBaselineMs(view_texts, probe_texts);
  const std::size_t thread_counts[] = {1, 2, 4, 8};

  std::string json = "{\n";
  json += "  \"bench\": \"concurrent_containment_service\",\n";
  json += "  \"workload\": \"lubm_extended\",\n";
  json += "  \"views\": " + std::to_string(view_texts.size()) + ",\n";
  json += "  \"probes\": " + std::to_string(probe_texts.size()) + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"io_us\": " + std::to_string(static_cast<int>(io_us)) + ",\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  \"serial_baseline_ms\": %.2f,\n",
                serial_ms);
  json += buf;
  json +=
      "  \"note\": \"cpu-mode scaling is bounded by hardware_concurrency; "
      "io-mode overlaps simulated downstream latency and shows pipeline "
      "scaling even on one core\",\n";

  for (const char* mode : {"cpu", "io"}) {
    const bool io = std::string(mode) == "io";
    json += std::string("  \"") + mode + "_mode\": {\n    \"runs\": [";
    double base_rate = 0.0;
    std::string speedups;
    bool first = true;
    for (std::size_t threads : thread_counts) {
      const RunResult r =
          RunService(view_texts, probe_texts, threads, io ? io_us : 0.0);
      std::fprintf(stderr,
                   "[%s] threads=%zu wall=%.1fms rate=%.0f/s p50=%.0fus\n",
                   mode, threads, r.wall_ms, r.probes_per_sec, r.p50_us);
      AppendRun(&json, r, first);
      if (first) base_rate = r.probes_per_sec;
      std::snprintf(buf, sizeof(buf), "%s%.2f", first ? "" : ", ",
                    r.probes_per_sec / base_rate);
      speedups += buf;
      first = false;
    }
    json += "\n    ],\n    \"speedup_vs_1_thread\": [" + speedups + "]\n  }";
    json += ",\n";
  }

  // Mixed-degraded regime: the resilience acceptance run.  1% of probes are
  // the adversarial star (absolute IRIs — this service parses without
  // default prefixes); every probe runs under the per-probe budget.
  const double timeout_us =
      static_cast<double>(EnvSize("RDFC_TIMEOUT_US", 5000));
  std::string trap_view = "ASK { ?x <urn:adv:p> ?y . ";
  for (int j = 0; j < 5; ++j) {
    trap_view += "?x <urn:adv:p> ?z" + std::to_string(j) + " . ";
  }
  trap_view += "?y <urn:adv:r> ?w0 . ?y <urn:adv:rp> ?w1 . }";
  std::string trap_probe = "ASK { ";
  for (int i = 0; i < 12; ++i) {
    trap_probe += "?a <urn:adv:p> ?b" + std::to_string(i) + " . ";
  }
  trap_probe += "?b0 <urn:adv:r> ?e0 . ?b1 <urn:adv:rp> ?e1 . }";
  std::vector<std::string> mixed_views = view_texts;
  mixed_views.push_back(trap_view);
  std::vector<std::string> mixed_probes = probe_texts;
  for (std::size_t i = 0; i < mixed_probes.size(); i += 100) {
    mixed_probes[i] = trap_probe;
  }

  std::snprintf(buf, sizeof(buf),
                "  \"mixed_degraded_mode\": {\n"
                "    \"timeout_us\": %.0f,\n"
                "    \"pathological_fraction\": 0.01,\n"
                "    \"runs\": [",
                timeout_us);
  json += buf;
  bool first = true;
  for (std::size_t threads : thread_counts) {
    const RunResult r =
        RunService(mixed_views, mixed_probes, threads, 0.0, timeout_us);
    std::fprintf(stderr,
                 "[mixed] threads=%zu wall=%.1fms degraded=%zu/%zu "
                 "work_p99=%.0fus degraded_work_p99=%.0fus\n",
                 threads, r.wall_ms, r.degraded, r.completed, r.work_p99_us,
                 r.degraded_work_p99_us);
    AppendMixedRun(&json, r, first);
    first = false;
  }
  json +=
      "\n    ],\n"
      "    \"note\": \"work_p99_us is per-probe containment work (filter + "
      "verify, excluding queue wait) — the quantity the budget bounds; "
      "pathological probes are cut at the timeout and reported degraded "
      "instead of running their full multi-hundred-ms refutation\"\n  },\n";

  // Write-churn regime: publish latency as a function of the baked corpus.
  const std::size_t baked_counts[] = {
      EnvSize("RDFC_CHURN_BAKED_SMALL", 1000),
      EnvSize("RDFC_CHURN_BAKED_LARGE", 50000)};
  const std::size_t churn_batches = EnvSize("RDFC_CHURN_BATCHES", 32);
  const std::size_t churn_batch = EnvSize("RDFC_CHURN_BATCH", 16);
  json += "  \"write_churn_mode\": {\n    \"runs\": [";
  std::vector<ChurnResult> churn_results;
  first = true;
  for (std::size_t baked : baked_counts) {
    const ChurnResult r =
        RunWriteChurn(baked, churn_batches, churn_batch, probe_texts);
    std::fprintf(stderr,
                 "[churn] baked=%zu bake=%.0fms publish_p50=%.0fus "
                 "publish_p99=%.0fus probe_p99=%.0fus probes=%zu "
                 "compactions=%zu\n",
                 r.baked, r.bake_ms, r.publish_p50_us, r.publish_p99_us,
                 r.probe_p99_us, r.probes_completed, r.compactions);
    AppendChurnRun(&json, r, first);
    churn_results.push_back(r);
    first = false;
  }
  const double ratio =
      churn_results.front().publish_p50_us > 0.0
          ? churn_results.back().publish_p50_us /
                churn_results.front().publish_p50_us
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "\n    ],\n    \"publish_p50_ratio_large_vs_small\": %.2f,\n",
                ratio);
  json += buf;
  json +=
      "    \"note\": \"publish builds only the delta tier, so its p50 "
      "tracks the stage batch size, not the baked corpus; background "
      "compaction folds the delta into the frozen base off the write "
      "path\"\n  }\n";
  json += "}\n";

  if (argc > 1) {
    std::FILE* out = std::fopen(argv[1], "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 1;
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::fprintf(stderr, "wrote %s\n", argv[1]);
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return 0;
}
