// Concurrent-service throughput: probe a published LUBM-derived index
// through the containment service at 1/2/4/8 worker threads, in two serving
// regimes, against a no-service serial baseline.
//
//   - cpu mode:   probes are pure containment checks.  Scaling follows the
//     machine's core count (a 1-core container serialises everything).
//   - io mode:    each probe carries simulated downstream work
//     (ProbeRequest::simulated_io_micros — result materialisation / client
//     I/O).  Latency-bound serving is where the pool's overlap shows even on
//     few cores, because workers sleep, not spin.
//   - mixed mode: 1% of probes are adversarially pathological (high-nd-degree
//     star whose verification explores ~k^(m+1) matcher states) and every
//     probe runs under a per-probe budget (ServiceOptions::
//     probe_timeout_micros).  The point of the resilience work: tail latency
//     stays bounded by the budget instead of by the worst probe, with the
//     truncated probes reported as a degraded rate rather than as hangs.
//
// Output: a JSON document (stdout, or the file given as argv[1]) recording
// hardware_concurrency honestly next to every scaling number — committed as
// BENCH_concurrent.json.
//
//   - write_churn mode: the tiered-write-path acceptance run.  Bake N views
//     into the frozen base (Publish + Refreeze), then interleave fixed-size
//     stage/publish batches with a concurrent probe load and record publish
//     latency percentiles.  Publish builds only the delta tier, so its p50
//     should be a function of the batch size, not of N — the committed JSON
//     pairs a small and a large baked count to show that.
//
//   - shard_scale mode: the sharded-index acceptance run (DESIGN.md
//     "Sharded index").  Bake V synthetic views into an IndexManager at
//     N ∈ {1,4,8,16} shards, then run homogeneous-signature write batches
//     (each dirties exactly one shard) and measure the publish+refreeze
//     cycle — at N=1 every cycle refreezes the whole corpus, at N>1 only
//     the dirty shard — plus fan-out probe latency against the same index.
//
// With --smoke only a miniature shard_scale sweep runs (RDFC_SHARDS picks
// the sharded point, default 4) — the CI sanitizer step uses it to drive
// the fan-out and per-shard refreeze machinery under instrumentation.
//
// Env knobs: RDFC_VIEWS (default 2000), RDFC_PROBES (default 2000),
// RDFC_IO_US (default 200), RDFC_CHURN_BAKED_SMALL (default 1000),
// RDFC_CHURN_BAKED_LARGE (default 50000), RDFC_CHURN_BATCHES (default 32),
// RDFC_CHURN_BATCH (default 16), RDFC_SHARD_VIEWS_MAX (default 1000000),
// RDFC_SHARDS (smoke-mode shard count, default 4).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "containment/pipeline.h"
#include "index/journal.h"
#include "index/mv_index.h"
#include "service/containment_service.h"
#include "service/index_manager.h"
#include "sparql/writer.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

std::size_t EnvSize(const char* name, std::size_t fallback) {
  if (const char* env = std::getenv(name)) {
    const auto v =
        static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    if (v > 0) return v;
  }
  return fallback;
}

struct RunResult {
  std::size_t threads = 0;
  double wall_ms = 0.0;
  double probes_per_sec = 0.0;
  std::size_t completed = 0;
  std::size_t contained = 0;
  std::size_t degraded = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  // Per-probe containment work (filter + verify), excluding queue wait —
  // the quantity the per-probe budget bounds.
  double work_p99_us = 0.0;
  double degraded_work_p99_us = 0.0;
};

/// One service run: fresh service, publish the views, push all probes.
/// `timeout_us` > 0 arms the per-probe budget (the mixed-mode regime).
RunResult RunService(const std::vector<std::string>& view_texts,
                     const std::vector<std::string>& probe_texts,
                     std::size_t threads, double io_us,
                     double timeout_us = 0.0) {
  service::ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = probe_texts.size() + 1;
  options.probe_timeout_micros = timeout_us;
  // Measure raw budget-bounded latency: with the breaker on, repeat
  // offenders would short-circuit and the degraded percentile would mix
  // ~free short-circuits with real truncations.
  options.quarantine_threshold = 0;
  service::ContainmentService svc(options);
  for (const std::string& text : view_texts) {
    (void)svc.AddView(text);  // degenerate generated views are skipped
  }
  auto version = svc.Publish();
  RDFC_CHECK(version.ok());

  std::vector<service::ProbeRequest> batch;
  batch.reserve(probe_texts.size());
  for (const std::string& text : probe_texts) {
    auto parsed = svc.Parse(text);
    if (!parsed.ok()) continue;
    service::ProbeRequest request;
    request.query = std::move(parsed).value();
    request.simulated_io_micros = io_us;
    batch.push_back(std::move(request));
  }

  util::Timer wall;
  const auto responses = svc.SubmitBatch(std::move(batch));
  RunResult out;
  out.threads = threads;
  out.wall_ms = wall.ElapsedMillis();
  util::LatencyHistogram work, degraded_work;
  for (const auto& response : responses) {
    if (!response.ok() || !response->status.ok()) continue;
    ++out.completed;
    const double work_us = response->filter_micros + response->verify_micros;
    work.Add(work_us);
    if (response->degraded) {
      ++out.degraded;
      degraded_work.Add(work_us);
    }
    if (!response->containing_views.empty()) ++out.contained;
  }
  out.probes_per_sec =
      1000.0 * static_cast<double>(out.completed) / out.wall_ms;
  const service::MetricsSnapshot metrics = svc.Metrics();
  out.p50_us = metrics.total_micros.Percentile(50);
  out.p99_us = metrics.total_micros.Percentile(99);
  out.work_p99_us = work.Percentile(99);
  out.degraded_work_p99_us = degraded_work.Percentile(99);
  return out;
}

/// No-service baseline: one thread, direct FindContaining calls, no queue,
/// no futures — what the service's 1-thread run pays overhead against.
double SerialBaselineMs(const std::vector<std::string>& view_texts,
                        const std::vector<std::string>& probe_texts) {
  rdf::TermDictionary dict;
  index::MvIndex index(&dict);
  for (const std::string& text : view_texts) {
    auto parsed = sparql::ParseQuery(text, &dict);
    if (!parsed.ok()) continue;
    (void)index.Insert(*parsed, 0);
  }
  std::vector<query::BgpQuery> probes;
  probes.reserve(probe_texts.size());
  for (const std::string& text : probe_texts) {
    auto parsed = sparql::ParseQuery(text, &dict);
    if (parsed.ok()) probes.push_back(std::move(parsed).value());
  }
  util::Timer wall;
  std::size_t contained = 0;
  for (const query::BgpQuery& q : probes) {
    if (!index.FindContaining(q).contained.empty()) ++contained;
  }
  const double ms = wall.ElapsedMillis();
  std::fprintf(stderr, "[serial] %zu probes, %zu contained, %.1f ms\n",
               probes.size(), contained, ms);
  return ms;
}

void AppendRun(std::string* json, const RunResult& r, bool first) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s\n      {\"threads\":%zu,\"wall_ms\":%.2f,"
                "\"probes_per_sec\":%.0f,\"completed\":%zu,"
                "\"contained\":%zu,\"p50_us\":%.1f,\"p99_us\":%.1f}",
                first ? "" : ",", r.threads, r.wall_ms, r.probes_per_sec,
                r.completed, r.contained, r.p50_us, r.p99_us);
  *json += buf;
}

void AppendMixedRun(std::string* json, const RunResult& r, bool first) {
  char buf[320];
  const double rate = r.completed == 0
                          ? 0.0
                          : static_cast<double>(r.degraded) /
                                static_cast<double>(r.completed);
  std::snprintf(buf, sizeof(buf),
                "%s\n      {\"threads\":%zu,\"wall_ms\":%.2f,"
                "\"probes_per_sec\":%.0f,\"completed\":%zu,"
                "\"degraded\":%zu,\"degraded_rate\":%.4f,"
                "\"work_p99_us\":%.1f,"
                "\"degraded_work_p99_us\":%.1f}",
                first ? "" : ",", r.threads, r.wall_ms, r.probes_per_sec,
                r.completed, r.degraded, rate, r.work_p99_us,
                r.degraded_work_p99_us);
  *json += buf;
}

struct ChurnResult {
  std::size_t baked = 0;
  std::size_t batches = 0;
  std::size_t batch_size = 0;
  double bake_ms = 0.0;
  double publish_p50_us = 0.0;
  double publish_p99_us = 0.0;
  double probe_p50_us = 0.0;
  double probe_p99_us = 0.0;
  std::size_t probes_completed = 0;
  std::size_t compactions = 0;
  std::size_t final_base_views = 0;
  std::size_t final_delta_views = 0;
};

/// Exact percentile over raw samples — the acceptance ratios need better
/// resolution than the power-of-two histogram buckets give.
double ExactPercentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[rank];
}

/// Write-churn regime: bake `baked` views into the frozen base, then run
/// `batches` publishes of `batch_size` staged adds (plus a few removals)
/// while a background thread keeps probe traffic flowing.  The measured
/// quantity is publish latency — with the tiered write path it tracks the
/// delta batch, not the baked corpus.
ChurnResult RunWriteChurn(std::size_t baked, std::size_t batches,
                          std::size_t batch_size,
                          const std::vector<std::string>& probe_texts,
                          const std::string& journal_path = "") {
  service::ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 4096;
  service::ContainmentService svc(options);

  // Durability A/B: with a journal path, every publish below also appends
  // one checksummed record (group-commit fsync) before the snapshot swing.
  if (!journal_path.empty()) {
    std::remove(journal_path.c_str());
    index::JournalOptions jopts;
    jopts.path = journal_path;
    jopts.fsync = index::JournalFsync::kGroup;
    RDFC_CHECK(svc.EnableJournal(jopts).ok());
  }

  ChurnResult out;
  out.baked = baked;
  out.batches = batches;
  out.batch_size = batch_size;

  // Bake phase: one big publish, then refreeze so the corpus lives in the
  // frozen base before churn starts.
  {
    rdf::TermDictionary gen_dict;
    auto views = workload::GenerateLubmExtended(&gen_dict, baked, 42);
    RDFC_CHECK(views.ok());
    util::Timer bake;
    for (const auto& q : *views) {
      (void)svc.AddView(sparql::WriteQuery(q, gen_dict));
    }
    RDFC_CHECK(svc.Publish().ok());
    RDFC_CHECK(svc.Refreeze().ok());
    out.bake_ms = bake.ElapsedMillis();
  }

  // Churn corpus: fresh views disjoint from the baked ones.
  std::vector<std::string> churn_texts;
  {
    rdf::TermDictionary gen_dict;
    auto views =
        workload::GenerateLubmExtended(&gen_dict, batches * batch_size, 9042);
    RDFC_CHECK(views.ok());
    for (const auto& q : *views) {
      churn_texts.push_back(sparql::WriteQuery(q, gen_dict));
    }
  }

  // Probe load: parse once, then keep small batches in flight until the
  // writer finishes.
  std::vector<query::BgpQuery> probes;
  for (const std::string& text : probe_texts) {
    auto parsed = svc.Parse(text);
    if (parsed.ok()) probes.push_back(std::move(parsed).value());
  }
  std::atomic<bool> done{false};
  std::atomic<std::size_t> probes_completed{0};
  std::thread prober([&] {  // NOLINT(raw-concurrency): bench load generator, joined below
    std::size_t next = 0;
    while (!done.load(std::memory_order_relaxed)) {
      std::vector<service::ProbeRequest> batch;
      batch.reserve(16);
      for (std::size_t i = 0; i < 16 && !probes.empty(); ++i) {
        service::ProbeRequest request;
        request.query = probes[next++ % probes.size()];
        batch.push_back(std::move(request));
      }
      for (const auto& response : svc.SubmitBatch(std::move(batch))) {
        if (response.ok() && response->status.ok()) {
          probes_completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  // Writer: fixed-size stage/publish batches; every other batch also
  // removes a handful of recently churned views to exercise tombstones.
  std::vector<double> publish_samples;
  publish_samples.reserve(batches);
  std::vector<std::uint64_t> churned_ids;
  std::size_t next_text = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t i = 0; i < batch_size; ++i) {
      auto id = svc.AddView(churn_texts[next_text++]);
      if (id.ok()) churned_ids.push_back(*id);
    }
    if (b % 2 == 1 && churned_ids.size() > 4) {
      for (std::size_t i = 0; i < 2; ++i) {
        (void)svc.RemoveView(churned_ids[churned_ids.size() - 3 - i]);
      }
      churned_ids.resize(churned_ids.size() - 4);
    }
    util::Timer publish;
    RDFC_CHECK(svc.Publish().ok());
    publish_samples.push_back(static_cast<double>(publish.ElapsedMicros()));
  }
  done.store(true, std::memory_order_relaxed);
  prober.join();

  out.publish_p50_us = ExactPercentile(publish_samples, 50);
  out.publish_p99_us = ExactPercentile(publish_samples, 99);
  const service::MetricsSnapshot metrics = svc.Metrics();
  out.probe_p50_us = metrics.total_micros.Percentile(50);
  out.probe_p99_us = metrics.total_micros.Percentile(99);
  out.probes_completed = probes_completed.load();
  out.compactions = metrics.compactions;
  out.final_base_views = metrics.base_views;
  out.final_delta_views = metrics.delta_views;
  return out;
}

struct ShardScaleResult {
  std::size_t views = 0;
  std::size_t shards = 0;
  double bake_ms = 0.0;
  std::size_t batches = 0;
  std::size_t batch_size = 0;
  double publish_p50_us = 0.0;  // Publish() alone (delta build + swing)
  double cycle_p50_us = 0.0;    // Publish() + Refreeze() — write visibility
  double cycle_p99_us = 0.0;    //   through to a re-frozen base
  double probe_p50_us = 0.0;    // FindParallel over all populated shards
  double probe_p99_us = 0.0;
  std::uint64_t refreezes = 0;  // sum of the per-shard refreeze counters
  std::uint32_t max_fanout = 0;
};

/// Synthetic view for the shard sweep: anchor predicate p<k> (k in [0,32) —
/// the shard routing key, so a fixed-k write batch stays signature-
/// homogeneous), a 256-way chain predicate q<c> shared across many views
/// (so probe walks collect V/(32*256) candidates and probe cost scales with
/// the corpus), and a unique tail constant u<uniq> keeping every view
/// distinct.
query::BgpQuery ShardView(rdf::TermDictionary* dict, std::size_t k,
                          std::size_t c, std::size_t uniq) {
  query::BgpQuery q;
  q.set_form(query::QueryForm::kAsk);
  const rdf::TermId x = dict->MakeVariable("x");
  const rdf::TermId y = dict->MakeVariable("y");
  const rdf::TermId z = dict->MakeVariable("z");
  q.AddPattern(x, dict->MakeIri("urn:b:p" + std::to_string(k % 32)), y);
  q.AddPattern(y, dict->MakeIri("urn:b:q" + std::to_string(c % 256)), z);
  q.AddPattern(z, dict->MakeIri("urn:b:r"),
               dict->MakeIri("urn:b:u" + std::to_string(uniq)));
  return q;
}

/// Matching probe: same (p<k>, q<c>) spine with an open tail, so it is
/// contained in every view sharing the spine and the walk + verification
/// touch all of them.
query::BgpQuery ShardProbe(rdf::TermDictionary* dict, std::size_t k,
                           std::size_t c) {
  query::BgpQuery q;
  q.set_form(query::QueryForm::kAsk);
  const rdf::TermId a = dict->MakeVariable("a");
  const rdf::TermId b = dict->MakeVariable("b");
  const rdf::TermId d = dict->MakeVariable("d");
  const rdf::TermId e = dict->MakeVariable("e");
  q.AddPattern(a, dict->MakeIri("urn:b:p" + std::to_string(k % 32)), b);
  q.AddPattern(b, dict->MakeIri("urn:b:q" + std::to_string(c % 256)), d);
  q.AddPattern(d, dict->MakeIri("urn:b:r"), e);
  return q;
}

/// Shard-sweep run: bake `num_views`, then measure homogeneous-signature
/// publish+refreeze cycles and fan-out probe latency at `num_shards`.
/// `force_walkers` > 0 overrides FindParallel's host-derived width cap —
/// the smoke path uses it so sanitizer CI drives the parallel machinery
/// even on single-core runners; the measured sweep keeps the default
/// (0 = auto), because the default path is what production serves with.
ShardScaleResult RunShardScale(std::size_t num_views, std::size_t num_shards,
                               std::size_t batches, std::size_t batch_size,
                               std::uint32_t force_walkers) {
  rdf::TermDictionary dict;
  service::TierOptions tier;
  tier.background_compaction = false;  // cycles are measured synchronously
  tier.num_shards = num_shards;
  service::IndexManager manager(&dict, {}, tier);

  ShardScaleResult out;
  out.views = num_views;
  out.shards = num_shards;
  out.batches = batches;
  out.batch_size = batch_size;

  util::Timer bake;
  for (std::size_t i = 0; i < num_views; ++i) {
    (void)manager.StageAdd(ShardView(&dict, i % 32, i, i));
  }
  RDFC_CHECK(manager.Publish().ok());
  RDFC_CHECK(manager.Refreeze().ok());
  out.bake_ms = bake.ElapsedMillis();

  // Write churn: every view in batch b shares the (p<b%32>, q<b%256>) spine
  // and differs only in the tail constant, which AnchorSignature ignores for
  // non-rdf:type edges — so the whole batch lands on ONE shard, exactly one
  // delta grows, and the refreeze re-freezes exactly that shard's base+delta
  // (at N=1, "that shard" is the whole corpus — the contrast the sweep
  // exists to show). Raw samples, not histogram buckets: the acceptance
  // ratio needs finer resolution than power-of-two buckets give.
  std::vector<double> publish_samples, cycle_samples;
  std::size_t next_uniq = num_views;  // disjoint from the baked tail ids
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t j = 0; j < batch_size; ++j) {
      (void)manager.StageAdd(ShardView(&dict, b % 32, b, next_uniq++));
    }
    util::Timer cycle;
    RDFC_CHECK(manager.Publish().ok());
    publish_samples.push_back(static_cast<double>(cycle.ElapsedMicros()));
    RDFC_CHECK(manager.Refreeze().ok());
    cycle_samples.push_back(static_cast<double>(cycle.ElapsedMicros()));
  }
  out.publish_p50_us = ExactPercentile(publish_samples, 50);
  out.cycle_p50_us = ExactPercentile(cycle_samples, 50);
  out.cycle_p99_us = ExactPercentile(cycle_samples, 99);

  // Probe load: each probe shares its (p_k, q_c) spine with ~V/(32*256) baked
  // views, so walk + verification cost scales with the corpus and the fan-out
  // has real work to split; FindParallel fans the walk over the pool.
  std::vector<containment::PreparedProbe> probes;
  for (std::size_t i = 0; i < 64; ++i) {
    const query::BgpQuery q = ShardProbe(&dict, i % 32, (i * 7) % 256);
    probes.push_back(containment::PrepareProbe(q, dict));
  }
  util::ThreadPool pool({/*num_threads=*/4, /*queue_capacity=*/1024});
  const std::size_t slot = manager.RegisterReader();
  std::vector<double> probe_samples;
  // Round 0 is a discarded warmup (first touch faults the frozen arrays
  // in); p99 is then the tail of 512 warm samples, not of cold misses.
  for (std::size_t round = 0; round < 9; ++round) {
    service::IndexManager::ReadGuard guard = manager.Acquire(slot);
    for (const containment::PreparedProbe& probe : probes) {
      service::ProbeFanout fanout;
      util::Timer t;
      const index::ProbeResult result =
          guard->FindParallel(probe, {}, &pool, /*preferred_shard=*/0,
                              &fanout, force_walkers);
      if (round > 0) {
        probe_samples.push_back(static_cast<double>(t.ElapsedMicros()));
      }
      RDFC_CHECK(result.filter_complete);
      if (fanout.parallel_walkers > out.max_fanout) {
        out.max_fanout = fanout.parallel_walkers;
      }
    }
  }
  out.probe_p50_us = ExactPercentile(probe_samples, 50);
  out.probe_p99_us = ExactPercentile(probe_samples, 99);
  const service::IndexManager::TierStats stats = manager.tier_stats();
  for (const service::IndexManager::ShardStats& s : stats.shards) {
    out.refreezes += s.refreezes;
  }
  return out;
}

void AppendShardRun(std::string* json, const ShardScaleResult& r,
                    bool first) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "%s\n      {\"views\":%zu,\"shards\":%zu,\"bake_ms\":%.1f,"
                "\"batches\":%zu,\"batch_size\":%zu,"
                "\"publish_p50_us\":%.1f,\"cycle_p50_us\":%.1f,"
                "\"cycle_p99_us\":%.1f,\"probe_p50_us\":%.1f,"
                "\"probe_p99_us\":%.1f,\"refreezes\":%llu,"
                "\"max_fanout\":%u}",
                first ? "" : ",", r.views, r.shards, r.bake_ms, r.batches,
                r.batch_size, r.publish_p50_us, r.cycle_p50_us,
                r.cycle_p99_us, r.probe_p50_us, r.probe_p99_us,
                static_cast<unsigned long long>(r.refreezes), r.max_fanout);
  *json += buf;
}

void AppendChurnRun(std::string* json, const ChurnResult& r, bool first) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "%s\n      {\"baked_views\":%zu,\"bake_ms\":%.1f,"
                "\"batches\":%zu,\"batch_size\":%zu,"
                "\"publish_p50_us\":%.1f,\"publish_p99_us\":%.1f,"
                "\"probe_p50_us\":%.1f,\"probe_p99_us\":%.1f,"
                "\"probes_completed\":%zu,\"compactions\":%zu,"
                "\"final_base_views\":%zu,\"final_delta_views\":%zu}",
                first ? "" : ",", r.baked, r.bake_ms, r.batches, r.batch_size,
                r.publish_p50_us, r.publish_p99_us, r.probe_p50_us,
                r.probe_p99_us, r.probes_completed, r.compactions,
                r.final_base_views, r.final_delta_views);
  *json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  // Smoke: a miniature shard_scale sweep (1 shard vs RDFC_SHARDS) that the
  // sanitizer CI step runs to drive the fan-out claim loop, the shared
  // budget, and per-shard refreezes under instrumentation.  Fast by
  // construction; numbers are not meant to be meaningful.
  if (smoke) {
    const std::size_t smoke_views = EnvSize("RDFC_VIEWS", 2000);
    const std::size_t smoke_shards = EnvSize("RDFC_SHARDS", 4);
    std::string json = "{\n  \"bench\": \"shard_scale_smoke\",\n  \"runs\": [";
    bool first = true;
    for (const std::size_t shards : {std::size_t{1}, smoke_shards}) {
      const ShardScaleResult r = RunShardScale(
          smoke_views, shards, /*batches=*/6, /*batch_size=*/16,
          /*force_walkers=*/static_cast<std::uint32_t>(smoke_shards));
      std::fprintf(stderr,
                   "[shard-smoke] views=%zu shards=%zu cycle_p50=%.0fus "
                   "probe_p99=%.0fus fanout=%u\n",
                   r.views, r.shards, r.cycle_p50_us, r.probe_p99_us,
                   r.max_fanout);
      AppendShardRun(&json, r, first);
      first = false;
    }
    json += "\n  ]\n}\n";
    std::fputs(json.c_str(), stdout);
    return 0;
  }

  const std::size_t num_views = EnvSize("RDFC_VIEWS", 2000);
  const std::size_t num_probes = EnvSize("RDFC_PROBES", 2000);
  const double io_us = static_cast<double>(EnvSize("RDFC_IO_US", 200));
  const unsigned hw = std::thread::hardware_concurrency();  // NOLINT(raw-concurrency): introspection, no thread spawned

  // Generate both query sets once as SPARQL text, so every run (each with
  // its own service + dictionary) sees the identical workload.
  std::vector<std::string> view_texts, probe_texts;
  {
    rdf::TermDictionary dict;
    auto views = workload::GenerateLubmExtended(&dict, num_views, 42);
    auto probes = workload::GenerateLubmExtended(&dict, num_probes, 1042);
    RDFC_CHECK(views.ok() && probes.ok());
    for (const auto& q : *views) {
      view_texts.push_back(sparql::WriteQuery(q, dict));
    }
    for (const auto& q : *probes) {
      probe_texts.push_back(sparql::WriteQuery(q, dict));
    }
  }
  std::fprintf(stderr,
               "[bench_concurrent] %zu LUBM-derived views, %zu probes, "
               "hardware_concurrency=%u\n",
               view_texts.size(), probe_texts.size(), hw);

  const double serial_ms = SerialBaselineMs(view_texts, probe_texts);
  const std::size_t thread_counts[] = {1, 2, 4, 8};

  std::string json = "{\n";
  json += "  \"bench\": \"concurrent_containment_service\",\n";
  json += "  \"workload\": \"lubm_extended\",\n";
  json += "  \"views\": " + std::to_string(view_texts.size()) + ",\n";
  json += "  \"probes\": " + std::to_string(probe_texts.size()) + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"io_us\": " + std::to_string(static_cast<int>(io_us)) + ",\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  \"serial_baseline_ms\": %.2f,\n",
                serial_ms);
  json += buf;
  json +=
      "  \"note\": \"cpu-mode scaling is bounded by hardware_concurrency; "
      "io-mode overlaps simulated downstream latency and shows pipeline "
      "scaling even on one core\",\n";

  for (const char* mode : {"cpu", "io"}) {
    const bool io = std::string(mode) == "io";
    json += std::string("  \"") + mode + "_mode\": {\n    \"runs\": [";
    double base_rate = 0.0;
    std::string speedups;
    bool first = true;
    for (std::size_t threads : thread_counts) {
      const RunResult r =
          RunService(view_texts, probe_texts, threads, io ? io_us : 0.0);
      std::fprintf(stderr,
                   "[%s] threads=%zu wall=%.1fms rate=%.0f/s p50=%.0fus\n",
                   mode, threads, r.wall_ms, r.probes_per_sec, r.p50_us);
      AppendRun(&json, r, first);
      if (first) base_rate = r.probes_per_sec;
      std::snprintf(buf, sizeof(buf), "%s%.2f", first ? "" : ", ",
                    r.probes_per_sec / base_rate);
      speedups += buf;
      first = false;
    }
    json += "\n    ],\n    \"speedup_vs_1_thread\": [" + speedups + "]\n  }";
    json += ",\n";
  }

  // Mixed-degraded regime: the resilience acceptance run.  1% of probes are
  // the adversarial star (absolute IRIs — this service parses without
  // default prefixes); every probe runs under the per-probe budget.
  const double timeout_us =
      static_cast<double>(EnvSize("RDFC_TIMEOUT_US", 5000));
  std::string trap_view = "ASK { ?x <urn:adv:p> ?y . ";
  for (int j = 0; j < 5; ++j) {
    trap_view += "?x <urn:adv:p> ?z" + std::to_string(j) + " . ";
  }
  trap_view += "?y <urn:adv:r> ?w0 . ?y <urn:adv:rp> ?w1 . }";
  std::string trap_probe = "ASK { ";
  for (int i = 0; i < 12; ++i) {
    trap_probe += "?a <urn:adv:p> ?b" + std::to_string(i) + " . ";
  }
  trap_probe += "?b0 <urn:adv:r> ?e0 . ?b1 <urn:adv:rp> ?e1 . }";
  std::vector<std::string> mixed_views = view_texts;
  mixed_views.push_back(trap_view);
  std::vector<std::string> mixed_probes = probe_texts;
  for (std::size_t i = 0; i < mixed_probes.size(); i += 100) {
    mixed_probes[i] = trap_probe;
  }

  std::snprintf(buf, sizeof(buf),
                "  \"mixed_degraded_mode\": {\n"
                "    \"timeout_us\": %.0f,\n"
                "    \"pathological_fraction\": 0.01,\n"
                "    \"runs\": [",
                timeout_us);
  json += buf;
  bool first = true;
  for (std::size_t threads : thread_counts) {
    const RunResult r =
        RunService(mixed_views, mixed_probes, threads, 0.0, timeout_us);
    std::fprintf(stderr,
                 "[mixed] threads=%zu wall=%.1fms degraded=%zu/%zu "
                 "work_p99=%.0fus degraded_work_p99=%.0fus\n",
                 threads, r.wall_ms, r.degraded, r.completed, r.work_p99_us,
                 r.degraded_work_p99_us);
    AppendMixedRun(&json, r, first);
    first = false;
  }
  json +=
      "\n    ],\n"
      "    \"note\": \"work_p99_us is per-probe containment work (filter + "
      "verify, excluding queue wait) — the quantity the budget bounds; "
      "pathological probes are cut at the timeout and reported degraded "
      "instead of running their full multi-hundred-ms refutation\"\n  },\n";

  // Write-churn regime: publish latency as a function of the baked corpus.
  const std::size_t baked_counts[] = {
      EnvSize("RDFC_CHURN_BAKED_SMALL", 1000),
      EnvSize("RDFC_CHURN_BAKED_LARGE", 50000)};
  const std::size_t churn_batches = EnvSize("RDFC_CHURN_BATCHES", 32);
  const std::size_t churn_batch = EnvSize("RDFC_CHURN_BATCH", 16);
  json += "  \"write_churn_mode\": {\n    \"runs\": [";
  std::vector<ChurnResult> churn_results;
  first = true;
  for (std::size_t baked : baked_counts) {
    const ChurnResult r =
        RunWriteChurn(baked, churn_batches, churn_batch, probe_texts);
    std::fprintf(stderr,
                 "[churn] baked=%zu bake=%.0fms publish_p50=%.0fus "
                 "publish_p99=%.0fus probe_p99=%.0fus probes=%zu "
                 "compactions=%zu\n",
                 r.baked, r.bake_ms, r.publish_p50_us, r.publish_p99_us,
                 r.probe_p99_us, r.probes_completed, r.compactions);
    AppendChurnRun(&json, r, first);
    churn_results.push_back(r);
    first = false;
  }
  const double ratio =
      churn_results.front().publish_p50_us > 0.0
          ? churn_results.back().publish_p50_us /
                churn_results.front().publish_p50_us
          : 0.0;
  std::snprintf(buf, sizeof(buf),
                "\n    ],\n    \"publish_p50_ratio_large_vs_small\": %.2f,\n",
                ratio);
  json += buf;
  json +=
      "    \"note\": \"publish builds only the delta tier, so its p50 "
      "tracks the stage batch size, not the baked corpus; background "
      "compaction folds the delta into the frozen base off the write "
      "path\"\n  },\n";

  // Durability A/B (DESIGN.md "Durability"): the small-bake churn regime
  // with the write-ahead journal in group-commit mode against a no-journal
  // control.  The arms alternate back-to-back across paired trials so
  // allocator and page-cache drift lands on both sides, and each arm keeps
  // its fastest p50 — one interference spike would otherwise dominate the
  // ratio.  Acceptance: journalled publish p50 <= 1.5x.
  {
    const std::string wal = "/tmp/rdfc_bench_journal.wal";
    const std::size_t journal_trials = EnvSize("RDFC_JOURNAL_TRIALS", 3);
    ChurnResult without, with_journal;
    for (std::size_t t = 0; t < journal_trials; ++t) {
      const ChurnResult control = RunWriteChurn(baked_counts[0],
                                                churn_batches, churn_batch,
                                                probe_texts);
      const ChurnResult armed = RunWriteChurn(baked_counts[0], churn_batches,
                                              churn_batch, probe_texts, wal);
      if (t == 0 || control.publish_p50_us < without.publish_p50_us) {
        without = control;
      }
      if (t == 0 || armed.publish_p50_us < with_journal.publish_p50_us) {
        with_journal = armed;
      }
    }
    std::remove(wal.c_str());
    const double jratio =
        without.publish_p50_us > 0.0
            ? with_journal.publish_p50_us / without.publish_p50_us
            : 0.0;
    std::fprintf(stderr,
                 "[churn-journal] baked=%zu publish_p50=%.0fus "
                 "(no journal %.0fus, ratio %.2fx) publish_p99=%.0fus\n",
                 with_journal.baked, with_journal.publish_p50_us,
                 without.publish_p50_us, jratio,
                 with_journal.publish_p99_us);
    char jbuf[768];
    std::snprintf(
        jbuf, sizeof(jbuf),
        "  \"journal_overhead\": {\n"
        "    \"fsync\": \"group\",\n"
        "    \"baked\": %zu,\n"
        "    \"publish_p50_us\": %.1f,\n"
        "    \"publish_p99_us\": %.1f,\n"
        "    \"no_journal_publish_p50_us\": %.1f,\n"
        "    \"p50_ratio_vs_no_journal\": %.2f,\n"
        "    \"note\": \"write-ahead journal armed on the same churn "
        "regime: every publish serializes its batch into one checksummed "
        "record (group-commit fsync) before the snapshot swing; both arms "
        "are min-of-3 paired back-to-back trials\"\n  },\n",
        with_journal.baked, with_journal.publish_p50_us,
        with_journal.publish_p99_us, without.publish_p50_us, jratio);
    json += jbuf;
  }

  // Shard-scale regime: publish+refreeze cycle and fan-out probe latency as
  // a function of (view count, shard count).
  const std::size_t shard_views_max =
      EnvSize("RDFC_SHARD_VIEWS_MAX", 1000000);
  const std::size_t view_ladder[] = {100000, 300000, 1000000};
  const std::size_t shard_counts[] = {1, 4, 8, 16};
  json += "  \"shard_scale_mode\": {\n    \"runs\": [";
  std::vector<ShardScaleResult> shard_results;
  first = true;
  for (const std::size_t v : view_ladder) {
    if (v > shard_views_max) continue;
    for (const std::size_t n : shard_counts) {
      // Every cycle at N=1 re-freezes the whole corpus: fewer measured
      // batches keep the 1M x 1-shard cell affordable.
      const std::size_t shard_batches =
          v >= 1000000 ? (n == 1 ? 4 : 8) : 12;
      const ShardScaleResult r =
          RunShardScale(v, n, shard_batches, /*batch_size=*/64,
                        /*force_walkers=*/0);
      std::fprintf(stderr,
                   "[shard] views=%zu shards=%zu bake=%.0fms "
                   "publish_p50=%.0fus cycle_p50=%.0fus probe_p50=%.0fus "
                   "probe_p99=%.0fus fanout=%u refreezes=%llu\n",
                   r.views, r.shards, r.bake_ms, r.publish_p50_us,
                   r.cycle_p50_us, r.probe_p50_us, r.probe_p99_us,
                   r.max_fanout,
                   static_cast<unsigned long long>(r.refreezes));
      AppendShardRun(&json, r, first);
      shard_results.push_back(r);
      first = false;
    }
  }
  // Acceptance ratios: per view count, the N=8 publish+refreeze cycle p50
  // against N=1 (the per-shard refreeze saving), and the N=8 probe p99
  // against N=1 (the fan-out overhead bound).
  json += "\n    ],\n    \"cycle_p50_ratio_n8_vs_n1\": {";
  bool first_ratio = true;
  for (const std::size_t v : view_ladder) {
    if (v > shard_views_max) continue;
    const ShardScaleResult* n1 = nullptr;
    const ShardScaleResult* n8 = nullptr;
    for (const ShardScaleResult& r : shard_results) {
      if (r.views != v) continue;
      if (r.shards == 1) n1 = &r;
      if (r.shards == 8) n8 = &r;
    }
    if (n1 == nullptr || n8 == nullptr || n1->cycle_p50_us <= 0.0) continue;
    std::snprintf(buf, sizeof(buf), "%s\"%zu\": %.3f",
                  first_ratio ? "" : ", ", v,
                  n8->cycle_p50_us / n1->cycle_p50_us);
    json += buf;
    first_ratio = false;
  }
  json += "},\n    \"probe_p99_ratio_n8_vs_n1\": {";
  first_ratio = true;
  for (const std::size_t v : view_ladder) {
    if (v > shard_views_max) continue;
    const ShardScaleResult* n1 = nullptr;
    const ShardScaleResult* n8 = nullptr;
    for (const ShardScaleResult& r : shard_results) {
      if (r.views != v) continue;
      if (r.shards == 1) n1 = &r;
      if (r.shards == 8) n8 = &r;
    }
    if (n1 == nullptr || n8 == nullptr || n1->probe_p99_us <= 0.0) continue;
    std::snprintf(buf, sizeof(buf), "%s\"%zu\": %.3f",
                  first_ratio ? "" : ", ", v,
                  n8->probe_p99_us / n1->probe_p99_us);
    json += buf;
    first_ratio = false;
  }
  json += "},\n";
  json +=
      "    \"note\": \"cycle = Publish + Refreeze, the write-visibility "
      "path; batches are signature-homogeneous so each dirties one shard "
      "and the refreeze re-freezes only that shard's base+delta — at N=1 "
      "that is the whole corpus.  probe latency is FindParallel walking "
      "every populated shard under one shared budget, with fan-out width "
      "auto-capped at the host's hardware threads (max_fanout reports the "
      "width actually used; 1 = inline walk, e.g. on a single-core "
      "host)\"\n  }\n";
  json += "}\n";

  if (out_path != nullptr) {
    std::FILE* out = std::fopen(out_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::fprintf(stderr, "wrote %s\n", out_path);
  } else {
    std::fputs(json.c_str(), stdout);
  }
  return 0;
}
