// Figure 5: containment cost vs ND-degree, split into acyclic and cyclic
// panels, per workload.  ND-degree 1 queries are f-graphs (pure PTime path);
// higher ND-degrees pay the Section 5.1 NP verification, so cost should grow
// with the ND-degree.

#include <cstdio>
#include <map>

#include "harness.h"
#include "index/mv_index.h"

using namespace rdfc;         // NOLINT(build/namespaces)
using namespace rdfc::bench;  // NOLINT(build/namespaces)

int main() {
  rdf::TermDictionary dict;
  const workload::WorkloadOptions options = OptionsFromEnv();
  auto queries = BuildWorkload(&dict, options);

  index::MvIndex index(&dict);
  for (const auto& wq : queries) {
    auto outcome = index.Insert(wq.query, wq.seq);
    if (!outcome.ok()) return 1;
  }
  std::fprintf(stderr, "[harness] index ready: %s distinct queries\n",
               util::WithThousands(index.num_entries()).c_str());

  // (acyclic?, workload, nd-degree) -> stats.  ND-degrees are reported
  // exactly (the paper's x-axis shows the observed values 1, 2, 3, 4, 9, 12).
  std::map<std::tuple<bool, std::size_t, std::uint64_t>, util::StreamingStats>
      cells;

  for (const auto& wq : queries) {
    const query::QueryShape shape = query::AnalyzeShape(wq.query, dict);
    const std::uint64_t nd = query::NdDegree(wq.query);
    util::Timer t;
    (void)index.FindContaining(wq.query);
    const double ms = t.ElapsedMillis();
    cells[{shape.is_acyclic, static_cast<std::size_t>(wq.source), nd}].Add(ms);
  }

  std::printf("== Figure 5: containment cost vs ND-degree ==\n\n");
  for (const bool acyclic : {true, false}) {
    std::printf("-- %s queries --\n", acyclic ? "Acyclic" : "Cyclic");
    Table panel({"workload", "ND-degree", "probes", "avg ±CI95 (ms)"});
    for (const auto& [key, stats] : cells) {
      if (std::get<0>(key) != acyclic) continue;
      panel.AddRow(
          {workload::WorkloadName(
               static_cast<workload::WorkloadId>(std::get<1>(key))),
           std::to_string(std::get<2>(key)),
           util::WithThousands(stats.count()), MeanCi(stats)});
    }
    panel.Print();
    std::printf("\n");
  }

  // Summary: cost by ND-degree pooled over workloads — the figure's trend.
  std::map<std::uint64_t, util::StreamingStats> pooled;
  for (const auto& [key, stats] : cells) {
    pooled[std::get<2>(key)].Merge(stats);
  }
  std::printf("-- Pooled trend (all workloads) --\n");
  Table trend({"ND-degree", "probes", "avg (ms)"});
  for (const auto& [nd, stats] : pooled) {
    trend.AddRow({std::to_string(nd), util::WithThousands(stats.count()),
                  Ms(stats.mean())});
  }
  trend.Print();
  return 0;
}
