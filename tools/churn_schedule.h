#pragma once

// Deterministic publish/churn schedule shared by `rdfc_serve --churn-ops`
// and the `rdfc_chaos` crash-restart harness.  Both sides regenerate the
// exact same add/remove batches from (seed, batch_index), so an in-process
// oracle can reconstruct precisely what any acknowledged prefix of publishes
// must contain — that is what makes "no acknowledged publish lost" checkable
// after a SIGKILL (DESIGN.md "Durability").
//
// The schedule leans on one serving invariant: IndexManager::StageAdd hands
// out view ids sequentially (1, 2, 3, ...), and journal replay restores
// next_view_id past every replayed id.  ChurnState mirrors that counter, so
// replaying the schedule from batch 0 reconstructs which ids each batch
// added or removed without talking to the server.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rdfc {
namespace tools {

/// Mirror of the server's id-assignment state.  Fast-forward it over already
/// published batches (discarding the generated ops) before resuming churn at
/// batch k, so removals keep pointing at the ids the server actually holds.
struct ChurnState {
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;
};

/// One publish batch: the adds are staged in order (ids assigned
/// sequentially from ChurnState::next_id), then the removes, then Publish.
struct ChurnBatch {
  std::vector<std::string> add_texts;
  std::vector<std::uint64_t> remove_ids;
};

/// Closed vocabulary (`urn:churn:*`) shared by views and probes, small
/// enough that probes embed into live views non-trivially often.
inline std::string ChurnTerm(const char* kind, std::uint64_t n) {
  return "<urn:churn:" + std::string(kind) + std::to_string(n) + ">";
}

/// A 2-pattern star view over the churn vocabulary.
inline std::string ChurnViewText(util::Rng* rng) {
  const std::uint64_t p = rng->Uniform(0, 5);
  const std::uint64_t o = rng->Uniform(0, 3);
  const std::uint64_t q = rng->Uniform(0, 5);
  return "ASK { ?x " + ChurnTerm("p", p) + " " + ChurnTerm("o", o) + " . ?x " +
         ChurnTerm("q", q) + " ?y . }";
}

/// A probe one pattern more specific than the view shape, so it is
/// contained in every live view whose star it embeds.
inline std::string ChurnProbeText(util::Rng* rng) {
  const std::uint64_t p = rng->Uniform(0, 5);
  const std::uint64_t o = rng->Uniform(0, 3);
  const std::uint64_t q = rng->Uniform(0, 5);
  const std::uint64_t r = rng->Uniform(0, 5);
  return "ASK { ?x " + ChurnTerm("p", p) + " " + ChurnTerm("o", o) + " . ?x " +
         ChurnTerm("q", q) + " ?y . ?y " + ChurnTerm("r", r) + " ?z . }";
}

/// Generates batch `batch_index` and advances `state` as if it were
/// published.  Deterministic in (seed, batch_index, prior state); the prior
/// state is itself deterministic in (seed, batch_index), so any two replays
/// of the same seed agree batch for batch.
inline ChurnBatch ChurnBatchOps(std::uint64_t seed, std::uint64_t batch_index,
                                ChurnState* state) {
  util::Rng rng(seed * 0x9E3779B97F4A7C15ull + batch_index + 1);
  ChurnBatch out;
  const std::uint64_t adds = rng.Uniform(1, 3);
  for (std::uint64_t i = 0; i < adds; ++i) {
    out.add_texts.push_back(ChurnViewText(&rng));
    state->live.push_back(state->next_id++);
  }
  // Keep a working set: start removing only once enough views are live, so
  // early batches grow the index and later ones genuinely churn it.
  if (state->live.size() > 8 && rng.Chance(0.4)) {
    const auto idx = static_cast<std::size_t>(
        rng.Uniform(0, state->live.size() - 1));
    out.remove_ids.push_back(state->live[idx]);
    state->live.erase(state->live.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return out;
}

/// The probe set both the harness oracle and the wire client evaluate.
inline std::vector<std::string> ChurnProbes(std::uint64_t seed,
                                            std::size_t count) {
  util::Rng rng(seed ^ 0xC0FFEEULL);
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(ChurnProbeText(&rng));
  return out;
}

}  // namespace tools
}  // namespace rdfc
