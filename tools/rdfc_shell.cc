// rdfc_shell — interactive exploration of the library.
//
// Commands (one per line; SPARQL must be single-line or use \ continuation):
//   .load <file.ttl>       load Turtle data into the graph
//   .view <sparql>         register + materialise a view
//   .query <sparql>        answer a query (via views when possible)
//   .contains <sparql>     containment probe only (no evaluation)
//   .analyze <sparql>      structural report: f-graph, cyclic, ND-degree,
//                          serialised form, witness
//   .stats                 graph/index statistics
//   .save <file> / .open <file>   snapshot the view index
//   .dot <file>            Graphviz dump of the mv-index
//   .help / .quit

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "containment/explain.h"
#include "index/dot_export.h"
#include "index/persistence.h"
#include "query/analysis.h"
#include "query/serialisation.h"
#include "query/witness.h"
#include "rdf/turtle_parser.h"
#include "rewriting/rewriter.h"
#include "sparql/parser.h"
#include "sparql/writer.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

class Shell {
 public:
  Shell() : executor_(&graph_, &dict_) {}

  int Run() {
    std::printf("rdfc shell — '.help' for commands\n");
    std::string line;
    while (true) {
      std::printf("rdfc> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      // Backslash continuation.
      while (!line.empty() && line.back() == '\\') {
        line.pop_back();
        std::string more;
        if (!std::getline(std::cin, more)) break;
        line += "\n" + more;
      }
      if (line.empty()) continue;
      if (line == ".quit" || line == ".exit") break;
      Dispatch(line);
    }
    return 0;
  }

 private:
  void Dispatch(const std::string& line) {
    auto starts = [&](const char* cmd) {
      return line.rfind(cmd, 0) == 0;
    };
    auto rest = [&](const char* cmd) {
      return std::string(util::Trim(line.substr(std::string(cmd).size())));
    };
    if (starts(".help")) {
      Help();
    } else if (starts(".load ")) {
      Load(rest(".load "));
    } else if (starts(".view ")) {
      View(rest(".view "));
    } else if (starts(".query ")) {
      Query(rest(".query "));
    } else if (starts(".contains ")) {
      Contains(rest(".contains "));
    } else if (starts(".analyze ")) {
      Analyze(rest(".analyze "));
    } else if (starts(".explain ")) {
      Explain(rest(".explain "));
    } else if (starts(".stats")) {
      Stats();
    } else if (starts(".save ")) {
      Save(rest(".save "));
    } else if (starts(".dot ")) {
      Dot(rest(".dot "));
    } else {
      std::printf("unknown command; '.help' lists commands\n");
    }
  }

  void Help() {
    std::printf(
        ".load FILE     load Turtle data\n"
        ".view SPARQL   register + materialise a view\n"
        ".query SPARQL  answer a query (uses views when contained)\n"
        ".contains SPARQL  probe the view index only\n"
        ".analyze SPARQL   structural report for a query\n"
        ".explain SPARQL   containment proof against each registered view\n"
        ".stats         graph/index statistics\n"
        ".save FILE     write an index snapshot\n"
        ".dot FILE      write the mv-index as Graphviz\n"
        ".quit          leave\n");
  }

  util::Result<query::BgpQuery> Parse(const std::string& text) {
    return sparql::ParseQuery(text, &dict_);
  }

  void Load(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      std::printf("cannot open %s\n", path.c_str());
      return;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::size_t before = graph_.size();
    if (auto st = rdf::ParseTurtle(buffer.str(), &dict_, &graph_); !st.ok()) {
      std::printf("parse error: %s\n", st.ToString().c_str());
      return;
    }
    std::printf("loaded %zu new triples (%zu total)\n",
                graph_.size() - before, graph_.size());
  }

  void View(const std::string& text) {
    auto parsed = Parse(text);
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return;
    }
    auto id = executor_.AddView(*parsed);
    if (!id.ok()) {
      std::printf("%s\n", id.status().ToString().c_str());
      return;
    }
    std::printf("view #%u materialised: %zu rows\n", *id,
                executor_.view(*id).rows.size());
  }

  void Query(const std::string& text) {
    auto parsed = Parse(text);
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return;
    }
    util::Timer timer;
    const rewriting::ExecutionReport report = executor_.Answer(*parsed);
    const double ms = timer.ElapsedMillis();
    const char* strategy =
        report.strategy == rewriting::ExecutionReport::Strategy::kBaseEvaluation
            ? "base evaluation"
        : report.strategy ==
                rewriting::ExecutionReport::Strategy::kFromViewDirect
            ? "view (direct)"
            : "view (residual)";
    std::printf("%zu answer(s) via %s in %.3f ms\n", report.answers.size(),
                strategy, ms);
    for (std::size_t i = 0; i < std::min<std::size_t>(report.answers.size(), 20);
         ++i) {
      std::printf("  (");
      for (std::size_t c = 0; c < report.answers[i].size(); ++c) {
        std::printf("%s%s", c ? ", " : "",
                    dict_.ToString(report.answers[i][c]).c_str());
      }
      std::printf(")\n");
    }
    if (report.answers.size() > 20) std::printf("  ...\n");
  }

  void Contains(const std::string& text) {
    auto parsed = Parse(text);
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return;
    }
    // Probe only — no evaluation against the graph.
    const index::ProbeResult result =
        executor_.index().FindContaining(*parsed);
    if (result.contained.empty()) {
      std::printf("no containing view\n");
      return;
    }
    std::printf("contained in %zu view(s):", result.contained.size());
    for (const auto& match : result.contained) {
      for (std::uint64_t ext : executor_.index().external_ids(match.stored_id)) {
        std::printf(" #%llu", static_cast<unsigned long long>(ext));
      }
    }
    std::printf("\n");
  }

  void Analyze(const std::string& text) {
    auto parsed = Parse(text);
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return;
    }
    const query::QueryShape shape = query::AnalyzeShape(*parsed, dict_);
    const query::Witness witness = query::BuildWitness(*parsed);
    std::printf("triples: %u  vertices: %u  components: %u\n",
                shape.num_triples, shape.num_vertices, shape.num_components);
    std::printf("f-graph: %s  acyclic: %s  IRI-only predicates: %s\n",
                shape.is_fgraph ? "yes" : "no",
                shape.is_acyclic ? "yes" : "no",
                shape.only_iri_predicates ? "yes" : "no");
    std::printf("ND-degree: %llu\n",
                static_cast<unsigned long long>(witness.nd_degree));
    query::BgpQuery skeleton;
    for (const rdf::Triple& t : parsed->patterns()) {
      if (!dict_.IsVariable(t.p)) skeleton.AddPattern(t);
    }
    if (!skeleton.empty()) {
      query::CanonicalMap canonical(&dict_);
      auto serialised = query::SerialiseQuery(skeleton, &dict_, &canonical);
      if (serialised.ok()) {
        std::printf("serialised: %s\n",
                    query::TokensToString(serialised->tokens, dict_).c_str());
      }
    }
    if (witness.nd_degree > 1) {
      std::printf("%s", witness.ToString(dict_).c_str());
    }
  }

  void Explain(const std::string& text) {
    auto parsed = Parse(text);
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return;
    }
    if (executor_.num_views() == 0) {
      std::printf("no views registered\n");
      return;
    }
    for (std::size_t v = 0; v < executor_.num_views(); ++v) {
      std::printf("--- view #%zu ---\n%s\n", v,
                  containment::ExplainContainment(
                      *parsed, executor_.view(v).definition, &dict_)
                      .c_str());
    }
  }

  void Stats() {
    std::printf("graph: %zu triples, %zu subjects, %zu predicates\n",
                graph_.size(), graph_.num_subjects(), graph_.num_predicates());
    std::printf("views: %zu materialised\n", executor_.num_views());
    std::printf("dictionary: %zu terms\n", dict_.size());
  }

  void Save(const std::string& path) {
    // Rebuild a standalone index of the view definitions for the snapshot.
    index::MvIndex snapshot(&dict_);
    for (std::size_t v = 0; v < executor_.num_views(); ++v) {
      if (auto st = snapshot.Insert(executor_.view(v).definition, v);
          !st.ok()) {
        std::printf("%s\n", st.status().ToString().c_str());
        return;
      }
    }
    if (auto st = index::SaveIndex(snapshot, path); !st.ok()) {
      std::printf("%s\n", st.ToString().c_str());
      return;
    }
    std::printf("snapshot written to %s\n", path.c_str());
  }

  void Dot(const std::string& path) {
    index::MvIndex snapshot(&dict_);
    for (std::size_t v = 0; v < executor_.num_views(); ++v) {
      if (auto st = snapshot.Insert(executor_.view(v).definition, v);
          !st.ok()) {
        std::printf("%s\n", st.status().ToString().c_str());
        return;
      }
    }
    std::ofstream out(path);
    if (!out) {
      std::printf("cannot open %s\n", path.c_str());
      return;
    }
    out << index::ExportDot(snapshot);
    std::printf("Graphviz tree written to %s\n", path.c_str());
  }

  rdf::TermDictionary dict_;
  rdf::Graph graph_;
  rewriting::ViewExecutor executor_;
};

}  // namespace

int main() {
  Shell shell;
  return shell.Run();
}
