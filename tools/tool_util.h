#pragma once

// Shared helpers for the command-line tools: reading `---`-separated SPARQL
// query files and tiny argv handling.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace rdfc {
namespace tools {

/// Reads a query file: SPARQL queries separated by lines consisting solely
/// of `---`.  Empty segments are skipped.
[[nodiscard]] inline util::Result<std::vector<std::string>> ReadQueryFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open " + path);
  std::vector<std::string> queries;
  std::string current;
  std::string line;
  auto flush = [&] {
    // Keep segments that contain any non-whitespace character.
    for (char c : current) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        queries.push_back(current);
        break;
      }
    }
    current.clear();
  };
  while (std::getline(in, line)) {
    if (line == "---") {
      flush();
    } else {
      current += line;
      current += '\n';
    }
  }
  flush();
  return queries;
}

/// `--key=value` / `--flag` argv scanning; positional args returned in order.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;

  static Args Parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          args.options.emplace_back(arg.substr(2), "");
        } else {
          args.options.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
        }
      } else {
        args.positional.push_back(arg);
      }
    }
    return args;
  }

  bool Has(const std::string& key) const {
    for (const auto& [k, v] : options) {
      (void)v;
      if (k == key) return true;
    }
    return false;
  }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    for (const auto& [k, v] : options) {
      if (k == key) return v;
    }
    return fallback;
  }
};

}  // namespace tools
}  // namespace rdfc
