// rdfc_stats — the paper's Section 3 workload analysis for ANY query file:
// per-file shares of f-graph / acyclic / IRI-only-predicate queries, size and
// ND-degree distributions, and dedup rate under canonical serialisation.
//
//   rdfc_stats <queries.rq> [more.rq ...]
//   rdfc_stats --workload=dbpedia:20000 [--seed=N]
//
// With --service, instead runs the given workload through the concurrent
// containment service (half as published views, half as probes) and prints
// the per-stage ServiceMetrics snapshot — counters plus p50/p95/p99 for the
// index filter vs. NP verification (--json for machine-readable output).
// The report includes the per-shard index gauges (views/base/delta/
// tombstones/refreezes per shard), the probe fan-out width histogram, and
// the probe-walk scratch high-water marks; --shards=N sets the shard count.
//
// With --frozen, instead inserts the queries into an mv-index, freezes it
// (index/frozen_index.h) and prints the footprint of the flat probe layout
// next to an allocation-model estimate of the pointer tree.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "baselines/canonical_cache.h"
#include "index/frozen_index.h"
#include "index/mv_index.h"
#include "query/analysis.h"
#include "query/canonical_label.h"
#include "query/witness.h"
#include "service/containment_service.h"
#include "sparql/parser.h"
#include "sparql/writer.h"
#include "tool_util.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "rdfc_stats: %s\n", message.c_str());
  return 1;
}

/// Allocation-model estimate of the pointer tree's probe footprint: per node
/// the struct plus its stored-id vector, per edge the hash-table entry (key,
/// Edge, node links + bucket share) plus the label vector's tokens.  Kept in
/// sync with bench/bench_frozen.cc so tool and bench report the same number.
std::size_t PointerStructureBytes(const index::RadixNode& root) {
  std::size_t bytes = 0;
  std::vector<const index::RadixNode*> stack = {&root};
  while (!stack.empty()) {
    const index::RadixNode* node = stack.back();
    stack.pop_back();
    bytes += sizeof(index::RadixNode);
    bytes += node->stored_ids.size() * sizeof(std::uint32_t);
    for (const auto& [first, edge] : node->edges) {
      (void)first;
      bytes += sizeof(query::Token) + sizeof(index::RadixNode::Edge);
      bytes += 2 * sizeof(void*);  // hash node links + bucket share
      bytes += edge.label.size() * sizeof(query::Token);
      stack.push_back(edge.child.get());
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args = tools::Args::Parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10));

  rdf::TermDictionary dict;
  std::vector<query::BgpQuery> queries;
  if (args.Has("workload")) {
    const std::string spec = args.Get("workload");
    std::string name = spec;
    std::size_t count = 10000;
    if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
      name = spec.substr(0, colon);
      count = static_cast<std::size_t>(
          std::strtoull(spec.substr(colon + 1).c_str(), nullptr, 10));
    }
    if (name == "dbpedia") {
      queries = workload::GenerateDbpedia(&dict, count, seed);
    } else if (name == "watdiv") {
      queries = workload::GenerateWatdiv(&dict, count, seed);
    } else if (name == "bsbm") {
      queries = workload::GenerateBsbm(&dict, count, seed);
    } else if (name == "ldbc") {
      queries = workload::GenerateLdbc(&dict, count, seed);
    } else if (name == "lubm") {
      auto lubm = workload::GenerateLubmExtended(&dict, count, seed);
      if (!lubm.ok()) return Fail(lubm.status().ToString());
      queries = std::move(lubm).value();
    } else {
      return Fail("unknown workload: " + name);
    }
  } else {
    if (args.positional.empty()) {
      return Fail("usage: rdfc_stats <queries.rq ...> | --workload=NAME[:N]");
    }
    for (const std::string& path : args.positional) {
      auto texts = tools::ReadQueryFile(path);
      if (!texts.ok()) return Fail(texts.status().ToString());
      for (const std::string& text : *texts) {
        auto parsed = sparql::ParseQuery(text, &dict);
        if (!parsed.ok()) {
          std::fprintf(stderr, "skipping unparsable query: %s\n",
                       parsed.status().ToString().c_str());
          continue;
        }
        queries.push_back(std::move(parsed).value());
      }
    }
  }
  if (queries.empty()) return Fail("no queries");

  if (args.Has("service")) {
    // Feed the workload through the service layer: the first half becomes
    // the published view set, the second half the probe stream.
    service::ServiceOptions options;
    options.num_threads = static_cast<std::size_t>(
        std::strtoull(args.Get("threads", "4").c_str(), nullptr, 10));
    options.tier.num_shards = static_cast<std::size_t>(
        std::strtoull(args.Get("shards", "8").c_str(), nullptr, 10));
    service::ContainmentService svc(options);
    // The queries were interned into the local dict above; reparsing their
    // canonical text into the service keeps the two dictionaries decoupled.
    // The view half is published in two waves with a refreeze between them,
    // so the tier gauges in the report show a real base/delta split.
    const std::size_t half = queries.size() / 2;
    std::vector<service::ProbeRequest> batch;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      auto reparsed = svc.Parse(sparql::WriteQuery(queries[i], dict));
      if (!reparsed.ok()) continue;
      if (i < half) {
        (void)svc.manager().StageAdd(std::move(reparsed).value());
        if (i == half / 2) {
          if (auto version = svc.Publish(); !version.ok()) {
            return Fail(version.status().ToString());
          }
          if (auto version = svc.Refreeze(); !version.ok()) {
            return Fail(version.status().ToString());
          }
        }
      } else {
        service::ProbeRequest request;
        request.query = std::move(reparsed).value();
        batch.push_back(std::move(request));
      }
    }
    if (auto version = svc.Publish(); !version.ok()) {
      return Fail(version.status().ToString());
    }
    (void)svc.SubmitBatch(std::move(batch));
    const service::MetricsSnapshot metrics = svc.Metrics();
    if (args.Has("json")) {
      std::printf("%s\n", metrics.ToJson().c_str());
    } else {
      std::ostringstream table;
      metrics.Print(table);
      std::printf("%s", table.str().c_str());
    }
    return 0;
  }

  if (args.Has("frozen")) {
    index::MvIndex mv(&dict);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      auto inserted = mv.Insert(queries[i], static_cast<std::uint64_t>(i));
      if (!inserted.ok()) {
        std::fprintf(stderr, "skipping uninsertable query: %s\n",
                     inserted.status().ToString().c_str());
      }
    }
    const index::FrozenMvIndex frozen(mv);
    const std::size_t pointer_bytes = PointerStructureBytes(mv.root());
    const std::size_t frozen_bytes = frozen.StructureBytes();
    const double live = static_cast<double>(
        std::max<std::size_t>(frozen.num_live_entries(), 1));
    std::printf("queries inserted:        %s\n",
                util::WithThousands(queries.size()).c_str());
    std::printf("live entries:            %s\n",
                util::WithThousands(frozen.num_live_entries()).c_str());
    std::printf("vertices:                %s\n",
                util::WithThousands(frozen.nodes().size()).c_str());
    std::printf("edges:                   %s\n",
                util::WithThousands(frozen.edge_first_tokens().size()).c_str());
    std::printf("label pool tokens:       %s\n",
                util::WithThousands(frozen.label_pool().size()).c_str());
    std::printf("pointer tree (est.):     %s B  (%.1f B/query)\n",
                util::WithThousands(pointer_bytes).c_str(),
                static_cast<double>(pointer_bytes) / live);
    std::printf("frozen layout:           %s B  (%.1f B/query)\n",
                util::WithThousands(frozen_bytes).c_str(),
                static_cast<double>(frozen_bytes) / live);
    std::printf("frozen/pointer ratio:    %.3f\n",
                static_cast<double>(frozen_bytes) /
                    static_cast<double>(std::max<std::size_t>(pointer_bytes,
                                                              1)));
    return 0;
  }

  std::size_t fgraph = 0, acyclic = 0, iri_only = 0, var_pred = 0;
  std::size_t fg_ac = 0, fg_cy = 0, nfg_ac = 0, nfg_cy = 0;
  util::StreamingStats size_stats, vertex_stats;
  std::map<std::uint64_t, std::size_t> nd_histogram;
  baselines::CanonicalCache dedup(&dict);
  std::set<std::uint64_t> iso_distinct;

  for (std::size_t i = 0; i < queries.size(); ++i) {
    const query::BgpQuery& q = queries[i];
    const query::QueryShape shape = query::AnalyzeShape(q, dict);
    fgraph += shape.is_fgraph ? 1 : 0;
    acyclic += shape.is_acyclic ? 1 : 0;
    iri_only += shape.only_iri_predicates ? 1 : 0;
    var_pred += shape.has_var_predicates ? 1 : 0;
    if (shape.is_fgraph && shape.is_acyclic) ++fg_ac;
    else if (shape.is_fgraph) ++fg_cy;
    else if (shape.is_acyclic) ++nfg_ac;
    else ++nfg_cy;
    size_stats.Add(static_cast<double>(shape.num_triples));
    vertex_stats.Add(static_cast<double>(shape.num_vertices));
    ++nd_histogram[query::NdDegree(q)];
    (void)dedup.Insert(q, i);
    iso_distinct.insert(query::CanonicalLabel(q, &dict).hash);
  }

  const double n = static_cast<double>(queries.size());
  auto pct = [&](std::size_t part) {
    return util::FormatDouble(100.0 * static_cast<double>(part) / n, 3) + "%";
  };
  std::printf("queries:                 %s\n",
              util::WithThousands(queries.size()).c_str());
  std::printf("distinct (canonical):    %s (%s)\n",
              util::WithThousands(dedup.num_entries()).c_str(),
              pct(dedup.num_entries()).c_str());
  std::printf("distinct (isomorphism):  %s (%s)\n",
              util::WithThousands(iso_distinct.size()).c_str(),
              pct(iso_distinct.size()).c_str());
  std::printf("IRI-only predicates:     %s   (paper, DBpedia: 99.707%%)\n",
              pct(iri_only).c_str());
  std::printf("variable predicates:     %s\n", pct(var_pred).c_str());
  std::printf("f-graph:                 %s   (paper, DBpedia: 73.158%%)\n",
              pct(fgraph).c_str());
  std::printf("acyclic:                 %s\n", pct(acyclic).c_str());
  std::printf("f-graph & acyclic:       %s\n", pct(fg_ac).c_str());
  std::printf("f-graph & cyclic:        %s\n", pct(fg_cy).c_str());
  std::printf("non-f-graph & acyclic:   %s\n", pct(nfg_ac).c_str());
  std::printf("non-f-graph & cyclic:    %s\n", pct(nfg_cy).c_str());
  std::printf("triple patterns/query:   avg %.2f, max %.0f\n",
              size_stats.mean(), size_stats.max());
  std::printf("vertices/query:          avg %.2f, max %.0f\n",
              vertex_stats.mean(), vertex_stats.max());
  std::printf("ND-degree histogram:\n");
  for (const auto& [nd, count] : nd_histogram) {
    std::printf("  %6llu: %s (%s)\n", static_cast<unsigned long long>(nd),
                util::WithThousands(count).c_str(), pct(count).c_str());
  }
  return 0;
}
