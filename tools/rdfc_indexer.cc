// rdfc_indexer — builds an mv-index snapshot from SPARQL queries.
//
//   rdfc_indexer <queries.rq> <out.rdfcidx>        index a `---`-separated file
//   rdfc_indexer --workload=dbpedia:5000 <out>     index a generated workload
//                (--workload accepts dbpedia|watdiv|bsbm|ldbc|lubm[:count])
//   options: --seed=N (default 42), --dot=<file> (Graphviz dump of the tree),
//            --emit=<file> (also write the queries as a `---`-separated
//            SPARQL log, e.g. to export a generated workload)
//
// Prints the same statistics block the Section 7.1 bench reports.

#include <cstdio>
#include <fstream>

#include "index/dot_export.h"
#include "index/mv_index.h"
#include "index/persistence.h"
#include "sparql/parser.h"
#include "sparql/writer.h"
#include "tool_util.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "rdfc_indexer: %s\n", message.c_str());
  return 1;
}

util::Result<std::vector<query::BgpQuery>> GeneratedWorkload(
    const std::string& spec, rdf::TermDictionary* dict, std::uint64_t seed) {
  std::string name = spec;
  std::size_t count = 5000;
  if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    count = static_cast<std::size_t>(
        std::strtoull(spec.substr(colon + 1).c_str(), nullptr, 10));
    if (count == 0) return util::Status::InvalidArgument("bad count: " + spec);
  }
  if (name == "dbpedia") return workload::GenerateDbpedia(dict, count, seed);
  if (name == "watdiv") return workload::GenerateWatdiv(dict, count, seed);
  if (name == "bsbm") return workload::GenerateBsbm(dict, count, seed);
  if (name == "ldbc") return workload::GenerateLdbc(dict, count, seed);
  if (name == "lubm") return workload::GenerateLubmExtended(dict, count, seed);
  return util::Status::InvalidArgument("unknown workload: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args = tools::Args::Parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10));

  rdf::TermDictionary dict;
  std::vector<query::BgpQuery> queries;
  std::string out_path;

  if (args.Has("workload")) {
    if (args.positional.size() != 1) {
      return Fail("usage: rdfc_indexer --workload=NAME[:N] <out.rdfcidx>");
    }
    auto generated = GeneratedWorkload(args.Get("workload"), &dict, seed);
    if (!generated.ok()) return Fail(generated.status().ToString());
    queries = std::move(generated).value();
    out_path = args.positional[0];
  } else {
    if (args.positional.size() != 2) {
      return Fail("usage: rdfc_indexer <queries.rq> <out.rdfcidx>");
    }
    auto texts = tools::ReadQueryFile(args.positional[0]);
    if (!texts.ok()) return Fail(texts.status().ToString());
    for (const std::string& text : *texts) {
      auto parsed = sparql::ParseQuery(text, &dict);
      if (!parsed.ok()) {
        return Fail("parse error: " + parsed.status().ToString() +
                    "\nquery was:\n" + text);
      }
      queries.push_back(std::move(parsed).value());
    }
    out_path = args.positional[1];
  }

  if (args.Has("emit")) {
    std::ofstream out(args.Get("emit"));
    if (!out) return Fail("cannot open emit output");
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (i > 0) out << "---\n";
      out << sparql::WriteQuery(queries[i], dict);
    }
    std::printf("query log written to %s\n", args.Get("emit").c_str());
  }

  index::MvIndex index(&dict);
  util::Timer timer;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto outcome = index.Insert(queries[i], i);
    if (!outcome.ok()) return Fail(outcome.status().ToString());
  }
  const double insert_ms = timer.ElapsedMillis();
  const index::RadixStats stats = index.ComputeStats();

  std::printf("indexed %s queries -> %s distinct (%.1f%%), %s vertices, "
              "%.1f ms total (%.4f ms/query)\n",
              util::WithThousands(queries.size()).c_str(),
              util::WithThousands(index.num_entries()).c_str(),
              queries.empty() ? 0.0
                              : 100.0 * static_cast<double>(index.num_entries()) /
                                    static_cast<double>(queries.size()),
              util::WithThousands(stats.num_nodes).c_str(), insert_ms,
              queries.empty() ? 0.0
                              : insert_ms / static_cast<double>(queries.size()));

  if (auto st = index::SaveIndex(index, out_path); !st.ok()) {
    return Fail(st.ToString());
  }
  std::printf("snapshot written to %s\n", out_path.c_str());

  if (args.Has("dot")) {
    std::ofstream dot(args.Get("dot"));
    if (!dot) return Fail("cannot open dot output");
    dot << index::ExportDot(index);
    std::printf("Graphviz tree written to %s\n", args.Get("dot").c_str());
  }
  return 0;
}
