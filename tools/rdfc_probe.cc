// rdfc_probe — containment probes against a saved mv-index snapshot.
//
//   rdfc_probe <index.rdfcidx> <queries.rq>   probe each query in the file
//   rdfc_probe <index.rdfcidx> -              read one query from stdin
//   options: --mappings=N   print up to N containment mappings per hit
//            --show-views   print the contained views' SPARQL
//            --repeat=N     time each probe over N repetitions

#include <cstdio>
#include <iostream>
#include <sstream>

#include "index/persistence.h"
#include "sparql/parser.h"
#include "sparql/writer.h"
#include "tool_util.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "rdfc_probe: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args = tools::Args::Parse(argc, argv);
  if (args.positional.size() != 2) {
    return Fail("usage: rdfc_probe <index.rdfcidx> <queries.rq|->");
  }
  const auto repeat = std::max<std::size_t>(
      1, std::strtoull(args.Get("repeat", "1").c_str(), nullptr, 10));

  rdf::TermDictionary dict;
  auto loaded = index::LoadIndex(args.positional[0], &dict);
  if (!loaded.ok()) return Fail(loaded.status().ToString());
  const index::MvIndex& index = **loaded;
  std::printf("index: %s live queries, %s vertices\n",
              util::WithThousands(index.num_live_entries()).c_str(),
              util::WithThousands(index.num_nodes()).c_str());

  std::vector<std::string> texts;
  if (args.positional[1] == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    texts.push_back(buffer.str());
  } else {
    auto file = tools::ReadQueryFile(args.positional[1]);
    if (!file.ok()) return Fail(file.status().ToString());
    texts = std::move(file).value();
  }

  index::ProbeOptions options;
  options.max_mappings = static_cast<std::size_t>(
      std::strtoull(args.Get("mappings", "0").c_str(), nullptr, 10));

  for (std::size_t qi = 0; qi < texts.size(); ++qi) {
    auto parsed = sparql::ParseQuery(texts[qi], &dict);
    if (!parsed.ok()) {
      return Fail("parse error in query " + std::to_string(qi) + ": " +
                  parsed.status().ToString());
    }
    util::StreamingStats ms;
    index::ProbeResult result;
    for (std::size_t r = 0; r < repeat; ++r) {
      util::Timer timer;
      result = index.FindContaining(*parsed, options);
      ms.Add(timer.ElapsedMillis());
    }
    const std::string repeat_note =
        repeat > 1 ? " avg of " + std::to_string(repeat) : "";
    std::printf("\nquery %zu: %zu triple patterns -> contained in %zu "
                "indexed quer%s (%.4f ms%s)\n",
                qi, parsed->size(), result.contained.size(),
                result.contained.size() == 1 ? "y" : "ies", ms.mean(),
                repeat_note.c_str());
    for (const auto& match : result.contained) {
      std::printf("  #%u", match.stored_id);
      const auto& externals = index.external_ids(match.stored_id);
      if (!externals.empty()) {
        std::printf(" (external ids:");
        for (std::size_t i = 0; i < std::min<std::size_t>(externals.size(), 5);
             ++i) {
          std::printf(" %llu",
                      static_cast<unsigned long long>(externals[i]));
        }
        if (externals.size() > 5) std::printf(" ...");
        std::printf(")");
      }
      std::printf("\n");
      if (args.Has("show-views")) {
        std::printf("%s",
                    sparql::WriteQuery(index.entry(match.stored_id).canonical,
                                       dict)
                        .c_str());
      }
      for (std::size_t m = 0; m < match.outcome.mappings.size(); ++m) {
        std::printf("    σ%zu:", m);
        for (const auto& [var, term] : match.outcome.mappings[m]) {
          std::printf(" %s->%s", dict.ToString(var).c_str(),
                      dict.ToString(term).c_str());
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
