// rdfc_lint — project-specific static checks for the rdfc tree.
//
//   rdfc_lint [--verbose] <repo-root>
//
// Walks src/, tools/, bench/, tests/, and examples/ and enforces the repo
// rules that neither the compiler nor clang-tidy covers precisely
// (CONTRIBUTING.md "Correctness tooling"):
//
//   unchecked-status   a Status/Result-returning call used as a bare
//                      statement (neither consumed, wrapped in
//                      RDFC_RETURN_NOT_OK / RDFC_ASSIGN_OR_RETURN, nor
//                      explicitly discarded)
//   missing-nodiscard  a header declares a Status/Result-returning function
//                      without [[nodiscard]]
//   banned-function    rand / strtok / sprintf (use util::Rng, util::Split,
//                      std::snprintf)
//   raw-new            raw new/delete outside src/util/ (use RAII /
//                      std::make_unique)
//   raw-concurrency    std::thread / std::mutex & friends outside src/util/
//                      and src/service/ (build on util::ThreadPool /
//                      service::IndexManager so lock discipline stays in two
//                      audited places; tests/ may exercise primitives
//                      directly)
//   stdout-in-library  std::cout / printf in library code under src/
//                      (libraries report through util::Status or take an
//                      std::ostream)
//   raw-clock          std::chrono::*_clock::now() in src/containment/ or
//                      src/index/ (the probe path must consume time through
//                      util::ProbeBudget / util::Timer so deadline polling
//                      stays amortised and mockable — see DESIGN.md
//                      "Resilience")
//   pragma-once        a header missing #pragma once at the top
//   duplicate-include  the same #include appearing twice in one file
//
// A line containing `NOLINT` is exempt from all rules (same escape hatch
// clang-tidy uses).  Exit code 0 = clean, 1 = violations, 2 = usage error.
// Registered as a CTest, so `ctest` fails on violations.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "tool_util.h"
#include "util/string_util.h"

namespace fs = std::filesystem;
using rdfc::util::EndsWith;
using rdfc::util::StartsWith;
using rdfc::util::Trim;

namespace {

/// Status/Result-returning *free* functions of the library; a bare-statement
/// call to any of these (qualified or not) is an unchecked-status violation.
const char* const kStatusFreeFunctions[] = {
    "SerialiseComponent", "SerialiseQuery",     "SaveIndex",
    "LoadIndex",          "PrepareStored",      "ParseTurtle",
    "ParseNTriples",      "ParseQuery",         "ParseUnionQuery",
    "Tokenize",           "SelectViews",        "LubmQueries",
    "GenerateLubmExtended", "ReadQueryFile",    "ValidateSerialisation",
    "ParseSerialisation", "ValidateRoundTrip",  "ValidateRadixTree",
    "ValidateMvIndex",    "SaveFrozenIndex",    "LoadFrozenIndex",
    "ValidateFrozen",
};

/// Status/Result-returning *member* functions; only the `obj.Name(` /
/// `obj->Name(` forms are checked, so unrelated free helpers named Insert in
/// tests do not trip the rule.
const char* const kStatusMemberFunctions[] = {
    "Insert", "Remove", "MergeFrom", "AddView",
    "StageAdd", "StageRemove", "Publish", "PublishViews", "RemoveView",
    "TrySubmit", "Commit", "Configure",
};

/// Direct clock reads banned from the probe path (src/containment/ and
/// src/index/): scattering now() calls there defeats the amortised polling
/// contract of util::ProbeBudget and makes deadline behaviour untestable.
const char* const kClockNowCalls[] = {
    "steady_clock::now",
    "system_clock::now",
    "high_resolution_clock::now",
};

/// Raw concurrency primitives; allowed only in src/util/ and src/service/
/// (the two audited concurrency layers) and in tests/, which exercise the
/// primitives deliberately.
const char* const kConcurrencyPrimitives[] = {
    "std::thread",       "std::jthread",           "std::mutex",
    "std::shared_mutex", "std::recursive_mutex",   "std::condition_variable",
    "std::lock_guard",   "std::unique_lock",       "std::scoped_lock",
};

struct Violation {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Reads `path` and produces one "code view" string per line: comments and
/// the contents of string/char literals blanked with spaces so that textual
/// rules never fire inside them.  Handles //, /* */, "...", '...', and raw
/// string literals R"delim(...)delim" (the test corpus embeds Turtle/SPARQL
/// in raw strings).
bool LoadCodeView(const fs::path& path, std::vector<std::string>* raw,
                  std::vector<std::string>* code) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // for kRawString: )delim"
  while (std::getline(in, line)) {
    std::string out(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            i = line.size();  // rest of line is a comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || !IsIdentChar(line[i - 1]))) {
            const std::size_t open = line.find('(', i + 2);
            if (open == std::string::npos) {
              i = line.size();  // malformed; treat rest as literal
            } else {
              raw_terminator =
                  ")" + line.substr(i + 2, open - i - 2) + "\"";
              state = State::kRawString;
              i = open;
            }
          } else if (c == '"') {
            out[i] = '"';
            state = State::kString;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kChar;
          } else {
            out[i] = c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kCode;
          }
          break;
        case State::kRawString: {
          const std::size_t end = line.find(raw_terminator, i);
          if (end == std::string::npos) {
            i = line.size();
          } else {
            i = end + raw_terminator.size() - 1;
            state = State::kCode;
          }
          break;
        }
      }
    }
    raw->push_back(line);
    code->push_back(out);
  }
  return true;
}

/// True when code[pos..] matches `word` at a word boundary on both sides.
bool MatchesWordAt(const std::string& code, std::size_t pos,
                   std::string_view word) {
  if (code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(code[pos - 1])) return false;
  const std::size_t after = pos + word.size();
  return after >= code.size() || !IsIdentChar(code[after]);
}

/// True when the word is immediately followed (modulo spaces) by `(`.
bool ContainsCall(const std::string& code, std::string_view name) {
  for (std::size_t pos = code.find(name.front()); pos != std::string::npos;
       pos = code.find(name.front(), pos + 1)) {
    if (!MatchesWordAt(code, pos, name)) continue;
    std::size_t after = pos + name.size();
    while (after < code.size() && code[after] == ' ') ++after;
    if (after < code.size() && code[after] == '(') return true;
  }
  return false;
}

class Linter {
 public:
  explicit Linter(bool verbose) : verbose_(verbose) {}

  void LintFile(const fs::path& path, const fs::path& root) {
    const std::string rel = fs::relative(path, root).string();
    const bool is_header = EndsWith(rel, ".h");
    const bool in_src = StartsWith(rel, "src/");
    const bool in_util = StartsWith(rel, "src/util/");
    const bool concurrency_ok = in_util || StartsWith(rel, "src/service/") ||
                                StartsWith(rel, "tests/");
    const bool clock_banned = StartsWith(rel, "src/containment/") ||
                              StartsWith(rel, "src/index/");

    std::vector<std::string> raw, code;
    if (!LoadCodeView(path, &raw, &code)) {
      Add(rel, 0, "io", "cannot read file");
      return;
    }
    ++files_;
    if (verbose_) std::printf("lint: %s (%zu lines)\n", rel.c_str(), raw.size());

    if (is_header) CheckPragmaOnce(rel, code);
    CheckDuplicateIncludes(rel, raw, code);

    for (std::size_t i = 0; i < code.size(); ++i) {
      if (raw[i].find("NOLINT") != std::string::npos) continue;
      const std::string& line = code[i];

      // banned-function: rand / strtok / sprintf.  (snprintf and util::Rng
      // don't match at word boundaries.)
      for (const char* banned : {"rand", "strtok", "sprintf"}) {
        if (ContainsCall(line, banned)) {
          Add(rel, i + 1, "banned-function",
              std::string(banned) +
                  "() is banned (util::Rng / util::Split / std::snprintf)");
        }
      }

      // raw-new / raw-delete outside src/util/.  `= delete` (deleted
      // members) and `delete` in comments/strings never reach here.
      if (!in_util) {
        CheckRawNewDelete(rel, i, line);
      }

      // raw-concurrency: threads and locks live in the two audited layers.
      if (!concurrency_ok) {
        for (const char* primitive : kConcurrencyPrimitives) {
          const std::size_t pos = line.find(primitive);
          if (pos != std::string::npos &&
              MatchesWordAt(line, pos, primitive)) {
            Add(rel, i + 1, "raw-concurrency",
                std::string(primitive) +
                    " outside src/util/ and src/service/ (use "
                    "util::ThreadPool / the service layer, or NOLINT with "
                    "a justification)");
          }
        }
      }

      // raw-clock: the probe path polls time only via util::ProbeBudget
      // (amortised) or util::Timer (stage boundaries).
      if (clock_banned) {
        for (const char* call : kClockNowCalls) {
          if (line.find(call) != std::string::npos) {
            Add(rel, i + 1, "raw-clock",
                std::string(call) +
                    "() in the probe path (use util::ProbeBudget / "
                    "util::Timer so deadline polling stays amortised)");
          }
        }
      }

      // stdout-in-library: library code reports through util::Status or
      // writes to a caller-supplied stream; stderr diagnostics are fine.
      if (in_src && (line.find("std::cout") != std::string::npos ||
                     ContainsCall(line, "printf"))) {
        Add(rel, i + 1, "stdout-in-library",
            "no stdout writes in src/ (return util::Status or take an "
            "std::ostream&)");
      }

      if (is_header) CheckNodiscard(rel, i, code);
      CheckUncheckedStatus(rel, i, code);
    }
  }

  int Finish() const {
    for (const Violation& v : violations_) {
      std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                   v.rule.c_str(), v.message.c_str());
    }
    std::printf("rdfc_lint: %zu file(s), %zu violation(s)\n", files_,
                violations_.size());
    return violations_.empty() ? 0 : 1;
  }

 private:
  void Add(const std::string& file, std::size_t line, const std::string& rule,
           const std::string& message) {
    violations_.push_back(Violation{file, line, rule, message});
  }

  void CheckPragmaOnce(const std::string& rel,
                       const std::vector<std::string>& code) {
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::string_view t = Trim(code[i]);
      if (t.empty()) continue;
      if (t == "#pragma once") return;
      // Classic include guards are also accepted.
      if (StartsWith(t, "#ifndef ")) return;
      Add(rel, i + 1, "pragma-once",
          "header must open with #pragma once (or an include guard)");
      return;
    }
    Add(rel, 1, "pragma-once", "header has no #pragma once");
  }

  void CheckDuplicateIncludes(const std::string& rel,
                              const std::vector<std::string>& raw,
                              const std::vector<std::string>& code) {
    std::vector<std::string> seen;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::string_view t = Trim(code[i]);
      if (!StartsWith(t, "#include")) continue;
      // The include target sits in the *raw* line (string contents are
      // blanked in the code view).
      const std::string target(Trim(raw[i]));
      for (const std::string& s : seen) {
        if (s == target) {
          Add(rel, i + 1, "duplicate-include", "already included above");
          break;
        }
      }
      seen.push_back(target);
    }
  }

  void CheckRawNewDelete(const std::string& rel, std::size_t i,
                         const std::string& line) {
    for (std::size_t pos = line.find("new "); pos != std::string::npos;
         pos = line.find("new ", pos + 1)) {
      if (!MatchesWordAt(line, pos, "new")) continue;
      std::size_t after = pos + 4;
      while (after < line.size() && line[after] == ' ') ++after;
      if (after < line.size() && (IsIdentChar(line[after]) ||
                                  line[after] == '(')) {
        Add(rel, i + 1, "raw-new",
            "raw new outside src/util/ (std::make_unique, or NOLINT for "
            "intentionally leaked singletons)");
      }
    }
    for (std::size_t pos = line.find("delete"); pos != std::string::npos;
         pos = line.find("delete", pos + 1)) {
      if (!MatchesWordAt(line, pos, "delete")) continue;
      // `= delete` / `=delete` declares a deleted member, not a deallocation.
      std::size_t before = pos;
      while (before > 0 && line[before - 1] == ' ') --before;
      if (before > 0 && line[before - 1] == '=') continue;
      Add(rel, i + 1, "raw-delete",
          "raw delete outside src/util/ (use RAII ownership)");
    }
  }

  /// Header declarations returning util::Status / util::Result<...> must be
  /// [[nodiscard]] (the annotation, plus the class-level [[nodiscard]] on the
  /// types, is what turns a dropped error into a compiler diagnostic).
  void CheckNodiscard(const std::string& rel, std::size_t i,
                      const std::vector<std::string>& code) {
    std::string t(Trim(code[i]));
    const bool annotated_here = t.find("[[nodiscard]]") != std::string::npos;
    const bool annotated_above =
        i > 0 && code[i - 1].find("[[nodiscard]]") != std::string::npos;
    // Strip attributes and leading specifiers before the return type.
    for (const char* prefix : {"[[nodiscard]]", "static", "inline", "virtual",
                               "explicit", "friend", "constexpr"}) {
      while (StartsWith(t, prefix)) t = std::string(Trim(t.substr(std::string(prefix).size())));
    }
    const bool returns_status = StartsWith(t, "util::Status ");
    const bool returns_result = StartsWith(t, "util::Result<");
    if (!returns_status && !returns_result) return;
    // Function declaration = an identifier followed by `(` after the type.
    std::size_t pos = returns_status ? 13 : t.find('>');
    if (pos == std::string::npos) return;  // multi-line Result<...>; skip
    if (returns_result) {
      // Skip past the (possibly nested) template argument list.
      int depth = 0;
      for (pos = 12; pos < t.size(); ++pos) {
        if (t[pos] == '<') ++depth;
        if (t[pos] == '>' && --depth == 0) { ++pos; break; }
      }
    }
    while (pos < t.size() && t[pos] == ' ') ++pos;
    std::size_t name_end = pos;
    while (name_end < t.size() && IsIdentChar(t[name_end])) ++name_end;
    if (name_end == pos || name_end >= t.size() || t[name_end] != '(') {
      return;  // a member variable or local, not a function declaration
    }
    if (!annotated_here && !annotated_above) {
      Add(rel, i + 1, "missing-nodiscard",
          "Status/Result-returning declaration lacks [[nodiscard]]");
    }
  }

  /// A statement that is nothing but a call to a Status/Result-returning
  /// function drops the error on the floor.  Statement starts are detected
  /// conservatively: the previous code line must end in `{`, `}`, or `;`.
  void CheckUncheckedStatus(const std::string& rel, std::size_t i,
                            const std::vector<std::string>& code) {
    const std::string t(Trim(code[i]));
    if (t.empty()) return;
    if (i > 0) {
      std::string prev;
      for (std::size_t k = i; k-- > 0;) {
        prev = std::string(Trim(code[k]));
        if (!prev.empty()) break;
      }
      if (!prev.empty() && !EndsWith(prev, "{") && !EndsWith(prev, "}") &&
          !EndsWith(prev, ";") && !EndsWith(prev, ":")) {
        return;  // continuation of a larger expression
      }
    }
    if (!EndsWith(t, ";")) return;

    auto flag = [&](const std::string& name) {
      Add(rel, i + 1, "unchecked-status",
          name + "() returns Status/Result — consume it, wrap it in "
                 "RDFC_RETURN_NOT_OK/RDFC_ASSIGN_OR_RETURN, or (void)-cast "
                 "with a NOLINT comment saying why");
    };
    // Free functions: the statement may start with the (optionally
    // namespace-qualified) call itself.
    for (const char* name : kStatusFreeFunctions) {
      const std::size_t pos = t.find(name);
      if (pos == std::string::npos || !MatchesWordAt(t, pos, name)) continue;
      std::string head(Trim(t.substr(0, pos)));
      while (EndsWith(head, "::")) {
        head = head.substr(0, head.size() - 2);
        std::size_t id_end = head.size();
        while (id_end > 0 && IsIdentChar(head[id_end - 1])) --id_end;
        head = std::string(Trim(head.substr(0, id_end)));
      }
      if (head.empty() && ContainsCall(t, name)) flag(name);
    }
    // Members: only the obj.Name( / obj->Name( forms, where the statement
    // starts at obj.
    for (const char* name : kStatusMemberFunctions) {
      for (std::size_t pos = t.find(name); pos != std::string::npos;
           pos = t.find(name, pos + 1)) {
        if (!MatchesWordAt(t, pos, name)) continue;
        if (pos < 1) continue;
        std::size_t obj_end = pos;
        if (t[pos - 1] == '.') {
          obj_end = pos - 1;
        } else if (pos >= 2 && t[pos - 2] == '-' && t[pos - 1] == '>') {
          obj_end = pos - 2;
        } else {
          continue;
        }
        std::size_t obj_begin = obj_end;
        while (obj_begin > 0 && (IsIdentChar(t[obj_begin - 1]) ||
                                 t[obj_begin - 1] == '_')) {
          --obj_begin;
        }
        std::size_t after = pos + std::string(name).size();
        if (obj_begin == 0 && obj_end > 0 && after < t.size() &&
            t[after] == '(') {
          flag(name);
        }
      }
    }
  }

  bool verbose_;
  std::size_t files_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace

int main(int argc, char** argv) {
  const rdfc::tools::Args args = rdfc::tools::Args::Parse(argc, argv);
  if (args.positional.size() != 1) {
    std::fprintf(stderr, "usage: rdfc_lint [--verbose] <repo-root>\n");
    return 2;
  }
  const fs::path root(args.positional[0]);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "rdfc_lint: not a directory: %s\n",
                 root.string().c_str());
    return 2;
  }

  Linter linter(args.Has("verbose"));
  for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
    const fs::path sub = root / dir;
    if (!fs::is_directory(sub)) continue;
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(sub)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) linter.LintFile(file, root);
  }
  return linter.Finish();
}
