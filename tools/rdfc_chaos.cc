// rdfc_chaos — kill -9 crash-restart harness for the durable journal
// (DESIGN.md "Durability").
//
//   rdfc_chaos <path-to-rdfc_serve> [--trials=N] [--seed=S]
//              [--kill-min-ms=50] [--kill-max-ms=400] [--probes=48]
//              [--keep]   # keep trial workdirs for post-mortem
//
// Each trial:
//
//   1. Launches rdfc_serve with the journal armed and the deterministic
//      churn schedule (tools/churn_schedule.h) publishing batches, each
//      acknowledged by an `ack <batch> <version>` line flushed to a log.
//   2. SIGKILLs it at a randomized point mid-churn — no drain, no flush
//      courtesy.  K = the highest fully written ack line.
//   3. Restarts the server over the same snapshot + journal and polls the
//      kHealth endpoint until it reports ready; M = the recovered journal
//      sequence.  The durability contract is K <= M <= K + 1: nothing
//      acknowledged may be lost, and at most the one in-flight batch
//      (journalled but not yet acked) may additionally survive.
//   4. Rebuilds an in-process oracle by applying churn batches 0..M-1 to a
//      fresh ContainmentService, then probes BOTH sides with the same probe
//      set and requires identical contained sets, id for id.
//
// When the build carries -DRDFC_FAILPOINTS=ON, extra trials run the child
// under journal failpoints (append/fsync failures plus journal.crash, which
// tears a record mid-write and raises SIGKILL from inside the writer) — the
// recovery contract must hold through those too.

#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "churn_schedule.h"
#include "net/client.h"
#include "net/wire.h"
#include "service/containment_service.h"
#include "tool_util.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "rdfc_chaos: FAILED: %s\n", message.c_str());
  return 1;
}

void SleepMillis(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Extracts the integer following `"key":` from a flat JSON payload.
bool JsonU64(const std::string& json, const std::string& key,
             std::uint64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

/// One child rdfc_serve process with stdout/stderr redirected to files.
struct ServeProcess {
  pid_t pid = -1;
  std::string stdout_path;
  std::uint16_t port = 0;
};

/// fork/exec `serve_path` with `argv_tail`, stdout -> out_path, stderr ->
/// err_path.  Returns the pid, or -1.
pid_t Spawn(const std::string& serve_path,
            const std::vector<std::string>& argv_tail,
            const std::string& out_path, const std::string& err_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: redirect, then exec.
  const int out_fd =
      ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  const int err_fd =
      ::open(err_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out_fd < 0 || err_fd < 0 || ::dup2(out_fd, 1) < 0 ||
      ::dup2(err_fd, 2) < 0) {
    ::_exit(126);
  }
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(serve_path.c_str()));
  for (const std::string& a : argv_tail) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  ::execv(serve_path.c_str(), argv.data());
  ::_exit(127);
}

/// Polls the child's stdout file for the `listening on 127.0.0.1:<port>`
/// line.  Returns 0 if the child exits (reaping it and clearing pid) or the
/// deadline passes first.
std::uint16_t WaitForPort(ServeProcess* proc, double timeout_ms) {
  util::Timer timer;
  while (timer.ElapsedMillis() < timeout_ms) {
    const std::string out = ReadFileOrEmpty(proc->stdout_path);
    const std::size_t pos = out.find("listening on 127.0.0.1:");
    if (pos != std::string::npos &&
        out.find('\n', pos) != std::string::npos) {
      return static_cast<std::uint16_t>(std::strtoul(
          out.c_str() + pos + std::strlen("listening on 127.0.0.1:"), nullptr,
          10));
    }
    int status = 0;
    if (::waitpid(proc->pid, &status, WNOHANG) == proc->pid) {
      proc->pid = -1;
      return 0;
    }
    SleepMillis(10);
  }
  return 0;
}

/// Polls kHealth until `ready:true`, returning the final payload (empty on
/// timeout).  Any successful response en route proves liveness, so a
/// live-but-recovering window is fine — the poll just keeps going.
std::string WaitForReady(std::uint16_t port, double timeout_ms) {
  util::Timer timer;
  while (timer.ElapsedMillis() < timeout_ms) {
    net::Client client;
    if (client.Connect("127.0.0.1", port, /*recv_timeout_micros=*/2e6).ok()) {
      util::Result<net::WireResponse> health = client.Health();
      if (health.ok() && health->status == net::WireStatus::kOk &&
          health->payload.find("\"ready\":true") != std::string::npos) {
        return health->payload;
      }
    }
    SleepMillis(20);
  }
  return "";
}

/// The highest batch number with a complete `ack <k> <v>` line.  Acks are
/// written in order with a flush per line, so the count survives SIGKILL.
std::uint64_t LastAckedBatch(const std::string& ack_path) {
  const std::string text = ReadFileOrEmpty(ack_path);
  std::uint64_t last = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) break;  // torn final line: not acked
    unsigned long long batch = 0, version = 0;
    if (std::sscanf(text.c_str() + pos, "ack %llu %llu", &batch, &version) ==
        2) {
      last = std::max<std::uint64_t>(last, batch);
    }
    pos = eol + 1;
  }
  return last;
}

void KillAndReap(pid_t pid, int sig) {
  if (pid <= 0) return;  // never signal pid 0 / -1 (process groups!)
  ::kill(pid, sig);
  int status = 0;
  (void)::waitpid(pid, &status, 0);
}

std::string U64(std::uint64_t v) { return std::to_string(v); }

/// One crash-restart trial.  `failpoints` optionally injects journal faults
/// into the churn phase (requires a failpoint build of rdfc_serve).
int RunTrial(const std::string& serve, std::uint64_t seed, std::uint64_t trial,
             const std::string& failpoints, std::size_t probe_count,
             double kill_min_ms, double kill_max_ms, bool keep) {
  char tmpl[] = "/tmp/rdfc_chaos_XXXXXX";
  const char* dir_c = ::mkdtemp(tmpl);
  if (dir_c == nullptr) return Fail("mkdtemp");
  const std::string dir = dir_c;
  const std::string journal = dir + "/j.wal";
  const std::string snapshot = dir + "/ckpt.rdfcti";
  const std::string acks = dir + "/acks.txt";
  const std::uint64_t churn_seed = seed * 1000 + trial;

  // --- Phase A: churn until the kill ---------------------------------------
  std::vector<std::string> churn_args = {
      "--listen=0",
      "--journal=" + journal,
      "--snapshot=" + snapshot,
      "--ack-log=" + acks,
      "--churn-ops=1000000",  // effectively: churn until killed
      "--churn-sleep-us=300",
      "--checkpoint-every=16",
      "--seed=" + U64(churn_seed),
  };
  if (!failpoints.empty()) {
    churn_args.push_back("--failpoints=" + failpoints);
    churn_args.push_back("--failpoint-seed=" + U64(churn_seed));
  }
  ServeProcess churn;
  churn.stdout_path = dir + "/churn.out";
  churn.pid = Spawn(serve, churn_args, churn.stdout_path, dir + "/churn.err");
  if (churn.pid < 0) return Fail("fork (churn phase)");
  churn.port = WaitForPort(&churn, 10000);
  if (churn.port == 0 && failpoints.empty()) {
    KillAndReap(churn.pid, SIGKILL);
    return Fail("churn server never listened; stderr:\n" +
                ReadFileOrEmpty(dir + "/churn.err"));
  }
  // Let churn run, then murder the process mid-stream.  Under journal.crash
  // failpoints the child may SIGKILL itself first — same thing, and exactly
  // the point: the kill lands inside the journal writer.
  util::Rng rng(churn_seed ^ 0x5EEDFACEull);
  const double kill_after =
      kill_min_ms + rng.UniformReal() * (kill_max_ms - kill_min_ms);
  util::Timer timer;
  while (timer.ElapsedMillis() < kill_after) {
    int status = 0;
    if (::waitpid(churn.pid, &status, WNOHANG) == churn.pid) {
      churn.pid = -1;  // died on its own (journal.crash failpoint)
      break;
    }
    SleepMillis(5);
  }
  if (churn.pid > 0) KillAndReap(churn.pid, SIGKILL);
  const std::uint64_t acked = LastAckedBatch(acks);

  // --- Phase B: restart and recover ----------------------------------------
  // No failpoints here: recovery itself must be clean for the equivalence
  // check to be meaningful (failpointed recovery is rdfc_fuzz territory).
  const std::vector<std::string> recover_args = {
      "--listen=0",
      "--journal=" + journal,
      "--snapshot=" + snapshot,
      "--churn-ops=0",
      "--seed=" + U64(churn_seed),
  };
  ServeProcess recovered;
  recovered.stdout_path = dir + "/recover.out";
  recovered.pid =
      Spawn(serve, recover_args, recovered.stdout_path, dir + "/recover.err");
  if (recovered.pid < 0) return Fail("fork (recover phase)");
  recovered.port = WaitForPort(&recovered, 15000);
  if (recovered.port == 0) {
    KillAndReap(recovered.pid, SIGKILL);
    return Fail("recovered server never listened; stderr:\n" +
                ReadFileOrEmpty(dir + "/recover.err"));
  }
  const std::string health = WaitForReady(recovered.port, 20000);
  if (health.empty()) {
    KillAndReap(recovered.pid, SIGKILL);
    return Fail("recovered server never reported ready");
  }
  std::uint64_t recovered_seq = 0;
  if (!JsonU64(health, "last_sequence", &recovered_seq)) {
    KillAndReap(recovered.pid, SIGKILL);
    return Fail("health payload missing last_sequence: " + health);
  }

  // --- The durability contract ---------------------------------------------
  // Every acknowledged publish must have survived (acked <= recovered_seq);
  // at most ONE additional batch — journalled but killed before its ack
  // line — may appear (recovered_seq <= acked + 1).
  if (recovered_seq < acked || recovered_seq > acked + 1) {
    KillAndReap(recovered.pid, SIGKILL);
    return Fail("durability contract broken: acked " + U64(acked) +
                " batches but recovered sequence " + U64(recovered_seq) +
                " (want acked <= seq <= acked+1); dir " + dir);
  }

  // --- Oracle equivalence ---------------------------------------------------
  // Rebuild what the store MUST contain by replaying the deterministic
  // schedule up to the recovered sequence, then compare contained sets
  // probe for probe over the wire.
  service::ServiceOptions oracle_options;
  oracle_options.num_threads = 2;
  service::ContainmentService oracle(oracle_options);
  tools::ChurnState state;
  for (std::uint64_t batch = 0; batch < recovered_seq; ++batch) {
    const tools::ChurnBatch ops =
        tools::ChurnBatchOps(churn_seed, batch, &state);
    for (const std::string& text : ops.add_texts) {
      auto id = oracle.AddView(text);
      if (!id.ok()) return Fail("oracle add: " + id.status().ToString());
    }
    for (const std::uint64_t id : ops.remove_ids) {
      const util::Status removed = oracle.RemoveView(id);
      if (!removed.ok()) return Fail("oracle remove: " + removed.ToString());
    }
  }
  if (recovered_seq > 0) {
    auto published = oracle.Publish();
    if (!published.ok()) {
      return Fail("oracle publish: " + published.status().ToString());
    }
  }

  net::Client client;
  if (!client.Connect("127.0.0.1", recovered.port).ok()) {
    return Fail("probe connect");
  }
  std::size_t nonempty = 0;
  for (const std::string& text : tools::ChurnProbes(churn_seed, probe_count)) {
    util::Result<net::WireResponse> wire = client.Probe(text);
    if (!wire.ok() || wire->status != net::WireStatus::kOk) {
      KillAndReap(recovered.pid, SIGKILL);
      return Fail("wire probe failed: " + text);
    }
    query::BgpQuery parsed;
    {
      auto q = oracle.Parse(text);
      if (!q.ok()) return Fail("oracle parse: " + q.status().ToString());
      parsed = std::move(q).value();
    }
    service::ProbeRequest request;
    request.query = std::move(parsed);
    auto future = oracle.Submit(std::move(request));
    if (!future.ok()) return Fail("oracle submit");
    const service::ProbeResponse expected = future.value().get();
    std::vector<std::uint64_t> got = wire->containing_views;
    std::vector<std::uint64_t> want = expected.containing_views;
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    if (got != want) {
      KillAndReap(recovered.pid, SIGKILL);
      std::string detail = "contained-set mismatch for probe: " + text +
                           "\n  recovered:";
      for (std::uint64_t id : got) detail += " " + U64(id);
      detail += "\n  oracle:   ";
      for (std::uint64_t id : want) detail += " " + U64(id);
      detail += "\n  (acked " + U64(acked) + ", recovered seq " +
                U64(recovered_seq) + ", dir " + dir + ")";
      return Fail(detail);
    }
    if (!got.empty()) ++nonempty;
  }

  KillAndReap(recovered.pid, SIGTERM);
  std::printf("trial %llu%s: acked %llu, recovered seq %llu, %zu probes "
              "(%zu with hits) identical to oracle\n",
              static_cast<unsigned long long>(trial),
              failpoints.empty() ? "" : " [failpoints]",
              static_cast<unsigned long long>(acked),
              static_cast<unsigned long long>(recovered_seq), probe_count,
              nonempty);
  std::fflush(stdout);
  if (!keep) {
    // Best-effort cleanup of the trial's scratch files.
    const std::string cmd = "rm -rf '" + dir + "'";
    (void)std::system(cmd.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args = tools::Args::Parse(argc, argv);
  if (args.positional.empty()) {
    return Fail("usage: rdfc_chaos <path-to-rdfc_serve> [--trials=N] ...");
  }
  const std::string serve = args.positional[0];
  const auto trials = static_cast<std::uint64_t>(
      std::strtoull(args.Get("trials", "3").c_str(), nullptr, 10));
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(args.Get("seed", "1").c_str(), nullptr, 10));
  const auto probe_count = static_cast<std::size_t>(
      std::strtoull(args.Get("probes", "48").c_str(), nullptr, 10));
  const double kill_min_ms =
      std::strtod(args.Get("kill-min-ms", "50").c_str(), nullptr);
  const double kill_max_ms =
      std::strtod(args.Get("kill-max-ms", "400").c_str(), nullptr);
  const bool keep = args.Has("keep");

  // SIGKILL-at-random trials.
  for (std::uint64_t t = 0; t < trials; ++t) {
    const int rc = RunTrial(serve, seed, t, /*failpoints=*/"", probe_count,
                            kill_min_ms, kill_max_ms, keep);
    if (rc != 0) return rc;
  }
#ifdef RDFC_FAILPOINTS
  // Crash-inside-the-writer trials: the journal tears its own record and
  // SIGKILLs from the failpoint, plus background append/fsync failures that
  // the publish retry loop must ride out.
  for (std::uint64_t t = 0; t < trials; ++t) {
    const int rc = RunTrial(
        serve, seed, 1000 + t,
        "journal.append=0.05,journal.fsync=0.05,journal.crash=0.01",
        probe_count, kill_min_ms, kill_max_ms, keep);
    if (rc != 0) return rc;
  }
#endif
  std::printf("OK (%llu trials)\n", static_cast<unsigned long long>(trials));
  return 0;
}

#else  // !unix

int main() {
  std::fprintf(stderr, "rdfc_chaos: POSIX-only harness; skipping\n");
  return 0;
}

#endif
