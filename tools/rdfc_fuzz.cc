// rdfc_fuzz — volume differential tester for the containment stack.
//
//   rdfc_fuzz [--trials=N] [--seed=S] [--max-triples=K] [--verbose]
//
// Each trial draws random query pairs / index contents from a tiny
// vocabulary (to force collisions, merges, and containments) and
// cross-checks four independent implementations:
//
//   1. the witness-filter + NP-verify pipeline   (containment/pipeline)
//   2. the direct homomorphism search            (containment/homomorphism)
//   3. the Chandra-Merlin freeze characterisation (eval over freeze(Q))
//   4. the mv-index walk vs the pairwise scan    (index/cont_queries)
//
// Exit code 0 = no divergence.  Any mismatch prints a minimal reproducer
// (the two queries in SPARQL) and exits 1.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "containment/homomorphism.h"
#include "containment/pipeline.h"
#include "eval/evaluator.h"
#include "index/frozen_index.h"
#include "index/mv_index.h"
#include "index/validate.h"
#include "query/validate.h"
#include "sparql/writer.h"
#include "tool_util.h"
#include "util/rng.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

class QueryGen {
 public:
  QueryGen(rdf::TermDictionary* dict, std::uint64_t seed)
      : dict_(dict), rng_(seed) {
    for (int i = 0; i < 3; ++i) {
      preds_.push_back(dict_->MakeIri("urn:fz:p" + std::to_string(i)));
    }
    for (int i = 0; i < 2; ++i) {
      consts_.push_back(dict_->MakeIri("urn:fz:c" + std::to_string(i)));
    }
  }

  query::BgpQuery Draw(std::size_t max_triples, bool var_preds) {
    query::BgpQuery q;
    const std::size_t n = 1 + rng_.Uniform(0, max_triples - 1);
    const std::size_t vars = 1 + rng_.Uniform(0, 3);
    for (std::size_t i = 0; i < n; ++i) {
      rdf::TermId p = preds_[rng_.Uniform(0, preds_.size() - 1)];
      if (var_preds && rng_.Chance(0.12)) p = Var(10 + rng_.Uniform(0, 1));
      q.AddPattern(Term(vars, 0.85), p, Term(vars, 0.7));
    }
    return q;
  }

 private:
  rdf::TermId Var(std::size_t k) {
    return dict_->MakeVariable("fz" + std::to_string(k));
  }
  rdf::TermId Term(std::size_t vars, double var_prob) {
    if (rng_.Chance(var_prob)) return Var(rng_.Uniform(0, vars - 1));
    return consts_[rng_.Uniform(0, consts_.size() - 1)];
  }

  rdf::TermDictionary* dict_;
  util::Rng rng_;
  std::vector<rdf::TermId> preds_;
  std::vector<rdf::TermId> consts_;
};

int Report(const char* what, const query::BgpQuery& q,
           const query::BgpQuery& w, const rdf::TermDictionary& dict) {
  std::fprintf(stderr, "DIVERGENCE (%s)\nQ:\n%sW:\n%s", what,
               sparql::WriteQuery(q, dict).c_str(),
               sparql::WriteQuery(w, dict).c_str());
  return 1;
}

std::vector<std::uint32_t> ContainedIds(const index::ProbeResult& result) {
  std::vector<std::uint32_t> ids;
  ids.reserve(result.contained.size());
  for (const index::ProbeMatch& m : result.contained) ids.push_back(m.stored_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args = tools::Args::Parse(argc, argv);
  const auto trials = static_cast<std::size_t>(
      std::strtoull(args.Get("trials", "2000").c_str(), nullptr, 10));
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(args.Get("seed", "1").c_str(), nullptr, 10));
  const auto max_triples = std::max<std::size_t>(
      1, std::strtoull(args.Get("max-triples", "5").c_str(), nullptr, 10));
  const bool verbose = args.Has("verbose");

  rdf::TermDictionary dict;
  QueryGen gen(&dict, seed);
  std::size_t positives = 0;

  // Phase 1: pairwise cross-checks.
  for (std::size_t t = 0; t < trials; ++t) {
    const bool var_preds = t % 3 == 0;
    const query::BgpQuery q = gen.Draw(max_triples, var_preds);
    const query::BgpQuery w = gen.Draw(max_triples - 1, var_preds);

    // Self-verification: Algorithm 1 must produce a grammatical stream that
    // parses back to the query it encodes (query/validate.h).
    if (!var_preds) {
      if (auto st = query::ValidateRoundTrip(q, &dict); !st.ok()) {
        std::fprintf(stderr, "round-trip: %s\n", st.ToString().c_str());
        return Report("serialisation round-trip", q, w, dict);
      }
    }

    const bool truth = containment::IsContainedIn(q, w, dict);
    positives += truth ? 1 : 0;

    auto outcome = containment::Check(q, w, &dict);
    if (!outcome.ok() || outcome->contained != truth) {
      return Report("pipeline vs homomorphism", q, w, dict);
    }
    if (truth && !outcome->filter_passed) {
      return Report("Proposition 5.1 violated", q, w, dict);
    }
    if (!var_preds) {
      rdf::Graph frozen = eval::Freeze(q, &dict);
      if (eval::Ask(w, frozen, dict) != truth) {
        return Report("freeze characterisation", q, w, dict);
      }
    }
  }

  // Phase 2: index walk vs pairwise scan over batches, with the full
  // invariant suite (index/validate.h) re-checked after every mutation and a
  // churn step removing a third of the entries mid-batch.
  util::Rng churn_rng(seed ^ 0x9E3779B97F4A7C15ull);
  const std::size_t batches = std::max<std::size_t>(1, trials / 200);
  for (std::size_t b = 0; b < batches; ++b) {
    index::MvIndex index(&dict);
    std::vector<query::BgpQuery> views;
    std::vector<std::uint32_t> inserted_ids;
    for (int i = 0; i < 50; ++i) {
      query::BgpQuery w = gen.Draw(4, /*var_preds=*/i % 4 == 0);
      auto outcome = index.Insert(w, static_cast<std::uint64_t>(i));
      if (!outcome.ok()) continue;
      inserted_ids.push_back(outcome->stored_id);
      views.push_back(std::move(w));
      if (auto st = index::ValidateMvIndex(index); !st.ok()) {
        std::fprintf(stderr, "after insertion %d: %s\n", i,
                     st.ToString().c_str());
        query::BgpQuery empty;
        return Report("mv-index invariants (insert)", views.back(), empty,
                      dict);
      }
      if (auto st = index::ValidateFrozen(index::FrozenMvIndex(index));
          !st.ok()) {
        std::fprintf(stderr, "frozen after insertion %d: %s\n", i,
                     st.ToString().c_str());
        query::BgpQuery empty;
        return Report("frozen invariants (insert)", views.back(), empty, dict);
      }
    }
    for (std::size_t i = 0; i < inserted_ids.size(); ++i) {
      if (!churn_rng.Chance(0.33)) continue;
      const std::uint32_t id = inserted_ids[i];
      if (!index.alive(id)) continue;  // deduped onto an entry removed below
      if (auto st = index.Remove(id); !st.ok()) {
        std::fprintf(stderr, "remove(%u): %s\n", id, st.ToString().c_str());
        query::BgpQuery empty;
        return Report("mv-index removal", views[i], empty, dict);
      }
      if (auto st = index::ValidateMvIndex(index); !st.ok()) {
        std::fprintf(stderr, "after removal of %u: %s\n", id,
                     st.ToString().c_str());
        query::BgpQuery empty;
        return Report("mv-index invariants (remove)", views[i], empty, dict);
      }
      if (auto st = index::ValidateFrozen(index::FrozenMvIndex(index));
          !st.ok()) {
        std::fprintf(stderr, "frozen after removal of %u: %s\n", id,
                     st.ToString().c_str());
        query::BgpQuery empty;
        return Report("frozen invariants (remove)", views[i], empty, dict);
      }
    }
    const index::FrozenMvIndex frozen(index);
    for (int i = 0; i < 25; ++i) {
      const query::BgpQuery q = gen.Draw(5, i % 2 == 0);
      const auto walk = index.FindContaining(q);
      const auto scan = index.ScanContaining(q);
      if (walk.contained.size() != scan.contained.size()) {
        std::fprintf(stderr, "walk=%zu scan=%zu\n", walk.contained.size(),
                     scan.contained.size());
        query::BgpQuery empty;
        return Report("index walk vs scan", q, empty, dict);
      }
      // The frozen walk must agree with the pointer walk id-for-id, not just
      // in count — stored ids are carried over verbatim at freeze.
      if (ContainedIds(frozen.FindContaining(q)) != ContainedIds(walk)) {
        query::BgpQuery empty;
        return Report("frozen walk vs pointer walk", q, empty, dict);
      }
    }
  }

  if (verbose) {
    std::printf("fuzz: %zu trials, %zu containment positives (%.1f%%), "
                "%zu index batches — all implementations agree\n",
                trials, positives,
                100.0 * static_cast<double>(positives) /
                    static_cast<double>(trials),
                batches);
  } else {
    std::printf("OK (%zu trials)\n", trials);
  }
  return 0;
}
