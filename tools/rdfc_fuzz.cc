// rdfc_fuzz — volume differential tester for the containment stack.
//
//   rdfc_fuzz [--trials=N] [--seed=S] [--max-triples=K] [--verbose]
//   rdfc_fuzz --failpoints [--smoke] [--seed=S]
//
// Each trial draws random query pairs / index contents from a tiny
// vocabulary (to force collisions, merges, and containments) and
// cross-checks four independent implementations:
//
//   1. the witness-filter + NP-verify pipeline   (containment/pipeline)
//   2. the direct homomorphism search            (containment/homomorphism)
//   3. the Chandra-Merlin freeze characterisation (eval over freeze(Q))
//   4. the mv-index walk vs the pairwise scan    (index/cont_queries)
//
// --failpoints switches to the fault-injection campaign (requires a build
// with -DRDFC_FAILPOINTS=ON; otherwise it reports that and exits 0): random
// faults in persistence I/O, index publication, admission, budget expiry,
// and the write-ahead journal, with the resilience invariants checked after
// every injected failure — previous snapshots stay loadable, aborted
// publishes leave the current version untouched, degraded probes stay sound,
// acknowledged journal records always replay.  --smoke shrinks the round
// counts for CI.
//
// Exit code 0 = no divergence.  Any mismatch prints a minimal reproducer
// (the two queries in SPARQL) and exits 1.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <stdlib.h>  // mkdtemp is POSIX, not in <cstdlib>
#endif

#include "containment/homomorphism.h"
#include "containment/pipeline.h"
#include "eval/evaluator.h"
#include "index/frozen_index.h"
#include "index/journal.h"
#include "index/mv_index.h"
#include "index/persistence.h"
#include "index/validate.h"
#include "query/validate.h"
#include "service/containment_service.h"
#include "sparql/writer.h"
#include "tool_util.h"
#include "util/budget.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

class QueryGen {
 public:
  QueryGen(rdf::TermDictionary* dict, std::uint64_t seed)
      : dict_(dict), rng_(seed) {
    for (int i = 0; i < 3; ++i) {
      preds_.push_back(dict_->MakeIri("urn:fz:p" + std::to_string(i)));
    }
    for (int i = 0; i < 2; ++i) {
      consts_.push_back(dict_->MakeIri("urn:fz:c" + std::to_string(i)));
    }
  }

  query::BgpQuery Draw(std::size_t max_triples, bool var_preds) {
    query::BgpQuery q;
    const std::size_t n = 1 + rng_.Uniform(0, max_triples - 1);
    const std::size_t vars = 1 + rng_.Uniform(0, 3);
    for (std::size_t i = 0; i < n; ++i) {
      rdf::TermId p = preds_[rng_.Uniform(0, preds_.size() - 1)];
      if (var_preds && rng_.Chance(0.12)) p = Var(10 + rng_.Uniform(0, 1));
      q.AddPattern(Term(vars, 0.85), p, Term(vars, 0.7));
    }
    return q;
  }

 private:
  rdf::TermId Var(std::size_t k) {
    return dict_->MakeVariable("fz" + std::to_string(k));
  }
  rdf::TermId Term(std::size_t vars, double var_prob) {
    if (rng_.Chance(var_prob)) return Var(rng_.Uniform(0, vars - 1));
    return consts_[rng_.Uniform(0, consts_.size() - 1)];
  }

  rdf::TermDictionary* dict_;
  util::Rng rng_;
  std::vector<rdf::TermId> preds_;
  std::vector<rdf::TermId> consts_;
};

int Report(const char* what, const query::BgpQuery& q,
           const query::BgpQuery& w, const rdf::TermDictionary& dict) {
  std::fprintf(stderr, "DIVERGENCE (%s)\nQ:\n%sW:\n%s", what,
               sparql::WriteQuery(q, dict).c_str(),
               sparql::WriteQuery(w, dict).c_str());
  return 1;
}

std::vector<std::uint32_t> ContainedIds(const index::ProbeResult& result) {
  std::vector<std::uint32_t> ids;
  ids.reserve(result.contained.size());
  for (const index::ProbeMatch& m : result.contained) ids.push_back(m.stored_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

#ifdef RDFC_FAILPOINTS

int FailpointFail(const char* what, const util::Status& st) {
  std::fprintf(stderr, "FAILPOINT INVARIANT BROKEN (%s): %s\n", what,
               st.ToString().c_str());
  return 1;
}

/// The fault-injection campaign.  Each part configures a schedule, hammers
/// one subsystem, and checks its resilience contract after every injected
/// fault.  Deterministic given `seed`.
int RunFailpointCampaign(std::uint64_t seed, bool smoke, bool verbose) {
  auto& registry = util::FailpointRegistry::Instance();
  const std::size_t rounds = smoke ? 40 : 400;

#if defined(__unix__) || defined(__APPLE__)
  char tmpl[] = "/tmp/rdfc_fuzz_XXXXXX";
  const char* tmp = mkdtemp(tmpl);
  const std::string dir = tmp != nullptr ? tmp : ".";
#else
  const std::string dir = ".";
#endif

  // --- Part 1: persistence.  A failed (or "crashed") save must leave the
  // previous snapshot byte-for-byte loadable; a successful one must load to
  // the new content.
  rdf::TermDictionary dict;
  QueryGen gen(&dict, seed);
  index::MvIndex index(&dict);
  for (int i = 0; i < 20; ++i) {
    (void)index.Insert(gen.Draw(4, i % 4 == 0), static_cast<std::uint64_t>(i));
  }
  const std::string path = dir + "/snapshot.idx";
  const std::string frozen_path = dir + "/snapshot.fidx";
  if (auto st = index::SaveIndex(index, path); !st.ok()) {
    return FailpointFail("baseline save", st);
  }
  if (auto st = index::SaveFrozenIndex(index::FrozenMvIndex(index),
                                       frozen_path);
      !st.ok()) {
    return FailpointFail("baseline frozen save", st);
  }
  std::size_t expected_live = index.num_live_entries();
  std::size_t save_failures = 0;
  if (auto st = registry.Configure(
          "persistence.open=0.2,persistence.write=0.2,"
          "persistence.fsync=0.2,persistence.crash=0.2",
          seed);
      !st.ok()) {
    return FailpointFail("configure", st);
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    (void)index.Insert(gen.Draw(4, r % 5 == 0),
                       static_cast<std::uint64_t>(100 + r));
    const util::Status st = index::SaveIndex(index, path);
    const util::Status fst =
        index::SaveFrozenIndex(index::FrozenMvIndex(index), frozen_path);
    save_failures += st.ok() ? 0 : 1;
    save_failures += fst.ok() ? 0 : 1;
    // A committed save becomes the new expectation; a failed one must leave
    // the file holding exactly what the last committed save wrote.
    if (st.ok()) expected_live = index.num_live_entries();
    if (st.ok() && fst.ok()) continue;
    rdf::TermDictionary reload_dict;
    auto loaded = index::LoadIndex(path, &reload_dict);
    if (!loaded.ok()) {
      return FailpointFail("previous snapshot unloadable after failed save",
                           loaded.status());
    }
    if ((*loaded)->num_live_entries() != expected_live) {
      return FailpointFail(
          "failed save mutated the previous snapshot",
          util::Status::Internal("live-entry count changed under a failure"));
    }
    rdf::TermDictionary frozen_dict;
    if (auto fl = index::LoadFrozenIndex(frozen_path, &frozen_dict); !fl.ok()) {
      return FailpointFail("previous frozen image unloadable", fl.status());
    }
  }
  if (save_failures == 0) {
    return FailpointFail("persistence schedule never fired",
                         util::Status::Internal("0 injected save failures"));
  }

  // --- Part 2: publication.  An aborted Publish must leave the current
  // version untouched and probes running; a later retry must succeed.
  registry.Reset();
  if (auto st = registry.Configure("publish.swing=0.5", seed + 1); !st.ok()) {
    return FailpointFail("configure publish", st);
  }
  {
    service::ServiceOptions options;
    options.num_threads = 2;
    service::ContainmentService svc(options);
    std::size_t publish_failures = 0;
    for (std::size_t r = 0; r < (smoke ? 20 : 100); ++r) {
      auto id = svc.AddView("ASK { ?s <urn:fp:p" + std::to_string(r) +
                            "> ?o }");
      if (!id.ok()) return FailpointFail("AddView", id.status());
      const std::uint64_t before = svc.current_version();
      auto version = svc.Publish();
      if (!version.ok()) {
        ++publish_failures;
        if (svc.current_version() != before) {
          return FailpointFail(
              "aborted publish advanced the version",
              util::Status::Internal("version moved on failure"));
        }
      }
      // Probing must keep working against whatever version is current.
      auto probe = svc.Probe("ASK { ?s <urn:fp:p0> ?o }");
      if (!probe.ok() &&
          probe.status().code() != util::StatusCode::kResourceExhausted) {
        return FailpointFail("probe after publish fault", probe.status());
      }
    }
    if (publish_failures == 0) {
      return FailpointFail("publish schedule never fired",
                           util::Status::Internal("0 injected aborts"));
    }
    // With the schedule cleared, the staged backlog must publish cleanly.
    registry.Reset();
    if (auto version = svc.Publish(); !version.ok()) {
      return FailpointFail("final publish", version.status());
    }
  }

  // --- Part 3: admission.  Injected ResourceExhausted must shed cleanly —
  // typed error out, service alive, later submissions succeeding.
  if (auto st = registry.Configure("threadpool.admit=0.4", seed + 2);
      !st.ok()) {
    return FailpointFail("configure admit", st);
  }
  {
    service::ServiceOptions options;
    options.num_threads = 2;
    service::ContainmentService svc(options);
    if (auto id = svc.AddView("ASK { ?s <urn:fp:q> ?o }"); !id.ok()) {
      return FailpointFail("AddView", id.status());
    }
    if (auto version = svc.Publish(); !version.ok()) {
      return FailpointFail("publish", version.status());
    }
    std::size_t shed = 0, served = 0;
    for (std::size_t r = 0; r < (smoke ? 50 : 300); ++r) {
      auto probe = svc.Probe("ASK { ?a <urn:fp:q> ?b }");
      if (probe.ok()) {
        ++served;
        if (probe->containing_views.size() != 1) {
          return FailpointFail(
              "wrong answer under admission faults",
              util::Status::Internal("expected exactly one containing view"));
        }
      } else if (probe.status().code() ==
                 util::StatusCode::kResourceExhausted) {
        ++shed;
      } else {
        return FailpointFail("unexpected admission error", probe.status());
      }
    }
    if (shed == 0 || served == 0) {
      return FailpointFail(
          "admission schedule degenerate",
          util::Status::Internal("expected both sheds and successes"));
    }
  }

  // --- Part 4: budget expiry.  With budget.expire firing on every poll,
  // probes must come back degraded-but-sound, never crash or hang: every
  // reported match must also be in the un-faulted truth.
  if (auto st = registry.Configure("budget.expire=1", seed + 3); !st.ok()) {
    return FailpointFail("configure budget", st);
  }
  {
    index::MvIndex adv_index(&dict);
    const workload::AdversarialCase hard =
        workload::MakeAdversarialCase(&dict, 4, 3);
    if (auto outcome = adv_index.Insert(hard.view, 0); !outcome.ok()) {
      return FailpointFail("adversarial insert", outcome.status());
    }
    for (int i = 0; i < 10; ++i) {
      (void)adv_index.Insert(gen.Draw(4, false),
                             static_cast<std::uint64_t>(1 + i));
    }
    for (std::size_t r = 0; r < (smoke ? 10 : 50); ++r) {
      const query::BgpQuery q = r == 0 ? hard.probe : gen.Draw(5, false);
      util::ProbeBudget budget;
      index::ProbeOptions options;
      options.budget = &budget;
      const index::ProbeResult degraded = adv_index.FindContaining(q, options);
      const index::ProbeResult truth = adv_index.ScanContaining(q);
      const std::vector<std::uint32_t> got = ContainedIds(degraded);
      const std::vector<std::uint32_t> want = ContainedIds(truth);
      if (!std::includes(want.begin(), want.end(), got.begin(), got.end())) {
        return FailpointFail(
            "degraded result over-reports",
            util::Status::Internal("contained ⊄ undegraded truth"));
      }
    }
    if (registry.FiredCount("budget.expire") == 0) {
      return FailpointFail("budget schedule never fired",
                           util::Status::Internal("0 expirations"));
    }
  }
  registry.Reset();

  // --- Part 5: compaction swing.  An injected compact.swing abort must
  // leave the published state untouched — same version, same answers, tier
  // identity intact — and a later un-faulted Refreeze must drain the delta.
  if (auto st = registry.Configure("compact.swing=0.5", seed + 4); !st.ok()) {
    return FailpointFail("configure compact", st);
  }
  {
    service::ServiceOptions options;
    options.num_threads = 2;
    options.tier.background_compaction = false;  // explicit Refreeze only
    service::ContainmentService svc(options);
    std::size_t live = 0, aborted = 0, refrozen = 0;
    for (std::size_t r = 0; r < (smoke ? 15 : 60); ++r) {
      const std::string tag = std::to_string(r);
      if (auto id = svc.AddView("ASK { ?s <urn:fp:c" + tag + "> ?o }");
          !id.ok()) {
        return FailpointFail("AddView", id.status());
      }
      if (auto version = svc.Publish(); !version.ok()) {
        return FailpointFail("publish before refreeze", version.status());
      }
      ++live;
      const std::uint64_t before = svc.manager().current_version();
      if (auto version = svc.Refreeze(); version.ok()) {
        ++refrozen;
      } else {
        ++aborted;
        if (svc.manager().current_version() != before) {
          return FailpointFail(
              "aborted refreeze moved the version",
              util::Status::Internal("published state changed on failure"));
        }
      }
      // Faulted or not, every published view keeps answering, and the
      // base/delta/tombstone split still accounts for every live view.
      auto probe = svc.Probe("ASK { ?a <urn:fp:c" + tag + "> ?b }");
      if (!probe.ok() || !probe->status.ok()) {
        return FailpointFail("probe after refreeze fault",
                             probe.ok() ? probe->status : probe.status());
      }
      if (probe->containing_views.size() != 1) {
        return FailpointFail(
            "wrong answer after refreeze fault",
            util::Status::Internal("expected exactly one containing view"));
      }
      const auto tiers = svc.manager().tier_stats();
      if (tiers.base_views - tiers.tombstones + tiers.delta_views != live) {
        return FailpointFail(
            "tier identity broken after refreeze fault",
            util::Status::Internal("base - tombstones + delta != live"));
      }
    }
    if (aborted == 0 || refrozen == 0) {
      return FailpointFail(
          "compaction schedule degenerate",
          util::Status::Internal("expected both aborts and successes"));
    }
    registry.Reset();
    if (auto version = svc.Refreeze(); !version.ok()) {
      return FailpointFail("final un-faulted refreeze", version.status());
    }
    const auto tiers = svc.manager().tier_stats();
    if (tiers.delta_views != 0 || tiers.tombstones != 0) {
      return FailpointFail(
          "refreeze left residue",
          util::Status::Internal("delta or tombstones nonzero after drain"));
    }
  }

  // --- Part 6: tiered persistence.  A crash injected between the base blob
  // and the manifest swing must leave the previous tiered image loadable,
  // bit-identical in its tier accounting.
  {
    const std::string tiered_path = dir + "/tiered.idx";
    rdf::TermDictionary tiered_dict;
    QueryGen tiered_gen(&tiered_dict, seed + 5);
    service::TierOptions tier;
    tier.background_compaction = false;
    service::IndexManager manager(&tiered_dict, {}, tier);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 8; ++i) {
      if (auto id = manager.StageAdd(tiered_gen.Draw(3, false)); id.ok()) {
        ids.push_back(*id);
      }
    }
    if (auto version = manager.Publish(); !version.ok()) {
      return FailpointFail("tiered baseline publish", version.status());
    }
    if (auto version = manager.Refreeze(); !version.ok()) {
      return FailpointFail("tiered baseline refreeze", version.status());
    }
    if (auto st = manager.SaveTiered(tiered_path); !st.ok()) {
      return FailpointFail("tiered baseline save", st);
    }
    auto expected = manager.tier_stats();
    if (auto st = registry.Configure("compact.crash=0.5", seed + 5);
        !st.ok()) {
      return FailpointFail("configure tiered crash", st);
    }
    std::size_t crashed = 0, tiered_saved = 0;
    for (std::size_t r = 0; r < (smoke ? 15 : 60); ++r) {
      if (auto id = manager.StageAdd(tiered_gen.Draw(3, r % 5 == 0));
          id.ok()) {
        ids.push_back(*id);
      }
      if (r % 4 == 3 && ids.size() > 2) {
        (void)manager.StageRemove(ids.front());
        ids.erase(ids.begin());
      }
      if (auto version = manager.Publish(); !version.ok()) {
        return FailpointFail("tiered churn publish", version.status());
      }
      if (r % 3 == 2) {
        if (auto version = manager.Refreeze(); !version.ok()) {
          return FailpointFail("tiered churn refreeze", version.status());
        }
      }
      if (auto st = manager.SaveTiered(tiered_path); st.ok()) {
        ++tiered_saved;
        expected = manager.tier_stats();
      } else {
        ++crashed;
      }
      // Either way the manifest on disk must load to the image of the last
      // successful save.
      rdf::TermDictionary load_dict;
      service::IndexManager loaded(&load_dict, {}, tier);
      if (auto st = loaded.RestoreTiered(tiered_path); !st.ok()) {
        return FailpointFail("tiered image unloadable after crash", st);
      }
      const auto got = loaded.tier_stats();
      if (got.base_views != expected.base_views ||
          got.delta_views != expected.delta_views ||
          got.tombstones != expected.tombstones) {
        return FailpointFail(
            "restored tiered image mismatch",
            util::Status::Internal("tier accounting differs from last good "
                                   "save"));
      }
    }
    if (crashed == 0 || tiered_saved == 0) {
      return FailpointFail(
          "tiered crash schedule degenerate",
          util::Status::Internal("expected both crashes and successes"));
    }
    registry.Reset();
  }

  // --- Part 7: write-ahead journal.  Faults in the append/fsync path must
  // leave the acknowledged history exactly replayable: a failed Publish
  // keeps its staged intents so the SAME batch retries, every publish that
  // WAS acknowledged survives a re-open, a fault mid-replay stops on a
  // sound prefix without truncating (degraded: appends refused), and a
  // clean re-open after that recovers everything.
  std::size_t journal_faults = 0;
  {
    const std::string wal = dir + "/service.wal";
    std::remove(wal.c_str());
    const std::vector<std::string> probe_texts = {
        "ASK { ?a <urn:fz:p0> ?b . }",
        "ASK { ?a <urn:fz:p1> ?b . ?b <urn:fz:p2> ?c . }",
        "ASK { ?a <urn:fz:p2> <urn:fz:c0> . }",
        "ASK { ?a <urn:fz:p0> ?b . ?a <urn:fz:p1> <urn:fz:c1> . }",
    };
    index::JournalOptions jopts;
    jopts.path = wal;
    jopts.fsync = index::JournalFsync::kAlways;  // exercise the Sync() site
    service::ServiceOptions sopts;
    sopts.num_threads = 2;
    sopts.queue_capacity = 64;

    std::uint64_t acked = 0;
    std::vector<std::vector<std::uint64_t>> expected;
    {
      service::ContainmentService svc(sopts);
      if (auto st = svc.EnableJournal(jopts); !st.ok()) {
        return FailpointFail("journal enable", st);
      }
      if (auto st = registry.Configure(
              "journal.append=0.25,journal.fsync=0.25", seed + 6);
          !st.ok()) {
        return FailpointFail("configure journal faults", st);
      }
      util::Rng rng(seed + 6);
      std::vector<std::uint64_t> live;
      for (std::size_t r = 0; r < (smoke ? 20 : 120); ++r) {
        const std::size_t adds = 1 + rng.Uniform(0, 1);
        for (std::size_t a = 0; a < adds; ++a) {
          std::string text =
              "ASK { ?x <urn:fz:p" + std::to_string(rng.Uniform(0, 2)) +
              "> ?y . ";
          if (rng.Chance(0.5)) {
            text += "?y <urn:fz:p" + std::to_string(rng.Uniform(0, 2)) +
                    "> <urn:fz:c" + std::to_string(rng.Uniform(0, 1)) + "> . ";
          }
          text += "}";
          if (auto id = svc.AddView(text); id.ok()) live.push_back(*id);
        }
        if (live.size() > 6 && rng.Chance(0.4)) {
          (void)svc.RemoveView(live.front());
          live.erase(live.begin());
        }
        // Retry the SAME publish: an injected append/fsync failure leaves
        // the staged intents in place, so the batch lands exactly once.
        bool published = false;
        for (int attempt = 0; attempt < 64 && !published; ++attempt) {
          if (auto version = svc.Publish(); version.ok()) {
            published = true;
          } else {
            ++journal_faults;
          }
        }
        if (!published) {
          return FailpointFail(
              "journalled publish never succeeded",
              util::Status::Internal("64 retries exhausted"));
        }
        ++acked;
      }
      registry.Reset();
      if (svc.manager().journal_stats().last_sequence != acked) {
        return FailpointFail(
            "journal sequence drift",
            util::Status::Internal("last_sequence != acknowledged publishes"));
      }
      for (const std::string& text : probe_texts) {
        auto response = svc.Probe(text);
        if (!response.ok()) {
          return FailpointFail("baseline probe", response.status());
        }
        expected.push_back(response->containing_views);
      }
    }
    if (journal_faults == 0) {
      return FailpointFail(
          "journal fault schedule degenerate",
          util::Status::Internal("no append/fsync faults fired"));
    }

    // A fault mid-replay stops on a sound prefix WITHOUT truncating — the
    // unreplayed tail is acknowledged data.  The journal comes up degraded
    // and must refuse appends until a clean re-open replays everything.
    if (auto st = registry.Configure("journal.replay=0.4", seed + 7);
        !st.ok()) {
      return FailpointFail("configure replay fault", st);
    }
    bool saw_degraded = false;
    for (int attempt = 0; attempt < 8 && !saw_degraded; ++attempt) {
      service::ContainmentService svc(sopts);
      if (auto st = svc.EnableJournal(jopts); !st.ok()) {
        return FailpointFail("degraded open", st);
      }
      const index::JournalStats stats = svc.manager().journal_stats();
      if (stats.records_replayed > acked) {
        return FailpointFail(
            "degraded replay over-reported",
            util::Status::Internal("replayed more records than acknowledged"));
      }
      if (!stats.degraded) {
        if (stats.records_replayed != acked) {
          return FailpointFail(
              "records lost without degraded flag",
              util::Status::Internal("short replay reported as clean"));
        }
        continue;  // schedule happened not to fire this open; try again
      }
      saw_degraded = true;
      if (stats.truncated_bytes != 0) {
        return FailpointFail(
            "degraded replay truncated",
            util::Status::Internal("acknowledged records dropped on a "
                                   "replay fault"));
      }
      (void)svc.AddView("ASK { ?x <urn:fz:p0> ?y . }");
      if (svc.Publish().ok()) {
        return FailpointFail(
            "append accepted while degraded",
            util::Status::Internal("publish would overwrite unreplayed "
                                   "acknowledged records"));
      }
    }
    registry.Reset();
    if (!saw_degraded) {
      return FailpointFail(
          "replay fault schedule degenerate",
          util::Status::Internal("journal.replay never fired in 8 opens"));
    }

    // Clean re-open: every acknowledged publish replays, bit-exact answers.
    {
      service::ContainmentService svc(sopts);
      if (auto st = svc.EnableJournal(jopts); !st.ok()) {
        return FailpointFail("clean re-open", st);
      }
      const index::JournalStats stats = svc.manager().journal_stats();
      if (stats.degraded || stats.records_replayed != acked) {
        return FailpointFail(
            "clean re-open incomplete",
            util::Status::Internal("expected all acknowledged records to "
                                   "replay"));
      }
      for (std::size_t i = 0; i < probe_texts.size(); ++i) {
        auto response = svc.Probe(probe_texts[i]);
        if (!response.ok()) {
          return FailpointFail("recovered probe", response.status());
        }
        if (response->containing_views != expected[i]) {
          return FailpointFail(
              "recovered answers diverge",
              util::Status::Internal("probe " + std::to_string(i) +
                                     " differs from the pre-restart service"));
        }
      }
    }
    std::remove(wal.c_str());
  }

  if (verbose) {
    std::printf("failpoints: %zu save faults, %zu journal faults injected, "
                "all resilience invariants held\n",
                save_failures, journal_faults);
  } else {
    std::printf("OK (failpoints)\n");
  }
  return 0;
}

#else  // !RDFC_FAILPOINTS

int RunFailpointCampaign(std::uint64_t, bool, bool) {
  std::printf("failpoints not compiled in (rebuild with -DRDFC_FAILPOINTS=ON);"
              " nothing to do\n");
  return 0;
}

#endif  // RDFC_FAILPOINTS

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args = tools::Args::Parse(argc, argv);
  const auto trials = static_cast<std::size_t>(
      std::strtoull(args.Get("trials", "2000").c_str(), nullptr, 10));
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(args.Get("seed", "1").c_str(), nullptr, 10));
  const auto max_triples = std::max<std::size_t>(
      1, std::strtoull(args.Get("max-triples", "5").c_str(), nullptr, 10));
  const bool verbose = args.Has("verbose");

  if (args.Has("failpoints")) {
    return RunFailpointCampaign(seed, args.Has("smoke"), verbose);
  }

  rdf::TermDictionary dict;
  QueryGen gen(&dict, seed);
  std::size_t positives = 0;

  // Phase 1: pairwise cross-checks.
  for (std::size_t t = 0; t < trials; ++t) {
    const bool var_preds = t % 3 == 0;
    const query::BgpQuery q = gen.Draw(max_triples, var_preds);
    const query::BgpQuery w = gen.Draw(max_triples - 1, var_preds);

    // Self-verification: Algorithm 1 must produce a grammatical stream that
    // parses back to the query it encodes (query/validate.h).
    if (!var_preds) {
      if (auto st = query::ValidateRoundTrip(q, &dict); !st.ok()) {
        std::fprintf(stderr, "round-trip: %s\n", st.ToString().c_str());
        return Report("serialisation round-trip", q, w, dict);
      }
    }

    const bool truth = containment::IsContainedIn(q, w, dict);
    positives += truth ? 1 : 0;

    auto outcome = containment::Check(q, w, &dict);
    if (!outcome.ok() || outcome->contained != truth) {
      return Report("pipeline vs homomorphism", q, w, dict);
    }
    if (truth && !outcome->filter_passed) {
      return Report("Proposition 5.1 violated", q, w, dict);
    }
    if (!var_preds) {
      rdf::Graph frozen = eval::Freeze(q, &dict);
      if (eval::Ask(w, frozen, dict) != truth) {
        return Report("freeze characterisation", q, w, dict);
      }
    }
  }

  // Phase 2: index walk vs pairwise scan over batches, with the full
  // invariant suite (index/validate.h) re-checked after every mutation and a
  // churn step removing a third of the entries mid-batch.
  util::Rng churn_rng(seed ^ 0x9E3779B97F4A7C15ull);
  const std::size_t batches = std::max<std::size_t>(1, trials / 200);
  for (std::size_t b = 0; b < batches; ++b) {
    index::MvIndex index(&dict);
    std::vector<query::BgpQuery> views;
    std::vector<std::uint32_t> inserted_ids;
    for (int i = 0; i < 50; ++i) {
      query::BgpQuery w = gen.Draw(4, /*var_preds=*/i % 4 == 0);
      auto outcome = index.Insert(w, static_cast<std::uint64_t>(i));
      if (!outcome.ok()) continue;
      inserted_ids.push_back(outcome->stored_id);
      views.push_back(std::move(w));
      if (auto st = index::ValidateMvIndex(index); !st.ok()) {
        std::fprintf(stderr, "after insertion %d: %s\n", i,
                     st.ToString().c_str());
        query::BgpQuery empty;
        return Report("mv-index invariants (insert)", views.back(), empty,
                      dict);
      }
      if (auto st = index::ValidateFrozen(index::FrozenMvIndex(index));
          !st.ok()) {
        std::fprintf(stderr, "frozen after insertion %d: %s\n", i,
                     st.ToString().c_str());
        query::BgpQuery empty;
        return Report("frozen invariants (insert)", views.back(), empty, dict);
      }
    }
    for (std::size_t i = 0; i < inserted_ids.size(); ++i) {
      if (!churn_rng.Chance(0.33)) continue;
      const std::uint32_t id = inserted_ids[i];
      if (!index.alive(id)) continue;  // deduped onto an entry removed below
      if (auto st = index.Remove(id); !st.ok()) {
        std::fprintf(stderr, "remove(%u): %s\n", id, st.ToString().c_str());
        query::BgpQuery empty;
        return Report("mv-index removal", views[i], empty, dict);
      }
      if (auto st = index::ValidateMvIndex(index); !st.ok()) {
        std::fprintf(stderr, "after removal of %u: %s\n", id,
                     st.ToString().c_str());
        query::BgpQuery empty;
        return Report("mv-index invariants (remove)", views[i], empty, dict);
      }
      if (auto st = index::ValidateFrozen(index::FrozenMvIndex(index));
          !st.ok()) {
        std::fprintf(stderr, "frozen after removal of %u: %s\n", id,
                     st.ToString().c_str());
        query::BgpQuery empty;
        return Report("frozen invariants (remove)", views[i], empty, dict);
      }
    }
    const index::FrozenMvIndex frozen(index);
    for (int i = 0; i < 25; ++i) {
      const query::BgpQuery q = gen.Draw(5, i % 2 == 0);
      const auto walk = index.FindContaining(q);
      const auto scan = index.ScanContaining(q);
      if (walk.contained.size() != scan.contained.size()) {
        std::fprintf(stderr, "walk=%zu scan=%zu\n", walk.contained.size(),
                     scan.contained.size());
        query::BgpQuery empty;
        return Report("index walk vs scan", q, empty, dict);
      }
      // The frozen walk must agree with the pointer walk id-for-id, not just
      // in count — stored ids are carried over verbatim at freeze.
      if (ContainedIds(frozen.FindContaining(q)) != ContainedIds(walk)) {
        query::BgpQuery empty;
        return Report("frozen walk vs pointer walk", q, empty, dict);
      }
    }
  }

  if (verbose) {
    std::printf("fuzz: %zu trials, %zu containment positives (%.1f%%), "
                "%zu index batches — all implementations agree\n",
                trials, positives,
                100.0 * static_cast<double>(positives) /
                    static_cast<double>(trials),
                batches);
  } else {
    std::printf("OK (%zu trials)\n", trials);
  }
  return 0;
}
