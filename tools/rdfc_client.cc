// rdfc_client — framed-TCP load generator and poke tool for the rdfc_serve
// network daemon (DESIGN.md "Network front end").
//
//   rdfc_client --port=8711 --ping
//   rdfc_client --port=8711 --health    # readiness JSON; exit 0 ready,
//                                       # 3 recovering, 1 unreachable
//   rdfc_client --port=8711 --stats                      # metrics JSON
//   rdfc_client --port=8711 --mode=closed --workload=lubm:50 --requests=2000 \
//               --concurrency=8 [--burst=8] [--json]
//   rdfc_client --port=8711 --mode=open --rate=5000 --duration-ms=2000 \
//               --connections=8 [--deadline-ms=10] [--json]
//   rdfc_client --port=8711 --smoke                      # CI abuse sequence
//   rdfc_client --port=8711 --shutdown                   # drain the server
//
// Probe texts are generated locally from --workload (same families as
// rdfc_serve) and sent as SPARQL over the wire; point it at a server whose
// views come from the same family for non-trivial containment hits.
//
// --smoke runs the CI loopback sequence: a healthy probe, a deadline-expired
// probe behind deliberately busy workers (asserts DEADLINE_EXCEEDED), an
// oversized frame and a garbled frame (assert only the offending connection
// dies), then proves the original connection still serves.  Exits 0 iff
// every assertion held.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/loadgen.h"
#include "net/wire.h"
#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "sparql/writer.h"
#include "tool_util.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "rdfc_client: %s\n", message.c_str());
  return 1;
}

util::Result<std::vector<std::string>> GenerateQueryTexts(
    const std::string& spec, std::uint64_t seed) {
  std::string name = spec;
  std::size_t count = 50;
  if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    count = static_cast<std::size_t>(
        std::strtoull(spec.substr(colon + 1).c_str(), nullptr, 10));
  }
  rdf::TermDictionary dict;
  util::Result<std::vector<query::BgpQuery>> generated =
      util::Status::InvalidArgument("unknown workload: " + name);
  if (name == "dbpedia") generated = workload::GenerateDbpedia(&dict, count, seed);
  if (name == "watdiv") generated = workload::GenerateWatdiv(&dict, count, seed);
  if (name == "bsbm") generated = workload::GenerateBsbm(&dict, count, seed);
  if (name == "ldbc") generated = workload::GenerateLdbc(&dict, count, seed);
  if (name == "lubm") {
    generated = workload::GenerateLubmExtended(&dict, count, seed);
  }
  if (!generated.ok()) return generated.status();
  std::vector<std::string> texts;
  texts.reserve(generated.value().size());
  for (const query::BgpQuery& q : generated.value()) {
    if (q.empty()) continue;
    texts.push_back(sparql::WriteQuery(q, dict));
  }
  if (texts.empty()) {
    return util::Status::InvalidArgument("workload generated no queries");
  }
  return texts;
}

/// The CI loopback abuse sequence.  Prints one line per check; returns 0
/// iff all pass.
int RunSmoke(const std::string& host, std::uint16_t port,
             const std::vector<std::string>& queries) {
  std::size_t failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    std::fprintf(stderr, "smoke: %-42s %s\n", what, ok ? "ok" : "FAILED");
    if (!ok) ++failures;
  };

  net::Client main_conn;
  if (!main_conn.Connect(host, port).ok()) {
    return Fail("smoke: cannot connect to " + host);
  }
  {
    util::Result<net::WireResponse> pong = main_conn.Ping();
    check(pong.ok() && pong->status == net::WireStatus::kOk, "ping");
  }
  {
    util::Result<net::WireResponse> response = main_conn.Probe(queries[0]);
    check(response.ok() && response->status == net::WireStatus::kOk,
          "healthy probe");
  }

  // Deadline propagation: occupy the workers with pipelined io-heavy probes
  // on a side connection, then race a 1 ms deadline past them.  The deadline
  // request reaches a worker only after >= one 50 ms io slot, so it must
  // come back DEADLINE_EXCEEDED (expired before pickup — the wire status,
  // not the degraded flag; see DESIGN.md status table).
  {
    net::Client busy;
    if (!busy.Connect(host, port).ok()) return Fail("smoke: busy connect");
    std::string frames;
    const std::size_t kBusy = 6;
    for (std::size_t i = 0; i < kBusy; ++i) {
      net::WireRequest request;
      request.opcode = net::Opcode::kProbe;
      request.id = 1000 + i;
      request.simulated_io_micros = 50000;  // 50 ms each
      request.query = queries[i % queries.size()];
      net::EncodeRequest(request, &frames);
    }
    if (!busy.SendRaw(frames).ok()) return Fail("smoke: busy send");
    util::Result<net::WireResponse> expired = main_conn.Probe(
        queries[0], /*deadline_ms=*/1);
    check(expired.ok() &&
              expired->status == net::WireStatus::kDeadlineExceeded,
          "deadline-expired probe -> DEADLINE_EXCEEDED");
    std::size_t busy_answered = 0;
    for (std::size_t i = 0; i < kBusy; ++i) {
      util::Result<net::WireResponse> response = busy.Receive();
      if (response.ok() && response->status == net::WireStatus::kOk) {
        ++busy_answered;
      }
    }
    check(busy_answered == kBusy, "pipelined io probes all answered");
  }

  // Oversized frame: the offending connection is closed, nothing else.
  {
    net::Client abuser;
    if (!abuser.Connect(host, port).ok()) return Fail("smoke: abuser connect");
    std::string oversized;
    const std::uint32_t huge = 64u << 20;  // 64 MiB > any sane max_frame_bytes
    for (int i = 0; i < 4; ++i) {
      oversized.push_back(static_cast<char>((huge >> (i * 8)) & 0xff));
    }
    if (!abuser.SendRaw(oversized).ok()) return Fail("smoke: oversized send");
    util::Result<net::WireResponse> dropped = abuser.Receive();
    check(!dropped.ok(), "oversized frame closes its connection");
  }

  // Garbled frame: plausible length, nonsense payload.
  {
    net::Client abuser;
    if (!abuser.Connect(host, port).ok()) return Fail("smoke: garbled connect");
    std::string garbled;
    garbled.push_back(3);
    garbled.append(3, '\0');
    garbled += "???";
    if (!abuser.SendRaw(garbled).ok()) return Fail("smoke: garbled send");
    util::Result<net::WireResponse> dropped = abuser.Receive();
    check(!dropped.ok(), "garbled frame closes its connection");
  }

  // The original connection survived every neighbour's demise.
  {
    util::Result<net::WireResponse> pong = main_conn.Ping();
    check(pong.ok() && pong->status == net::WireStatus::kOk,
          "main connection still serving");
  }
  {
    util::Result<net::WireResponse> stats = main_conn.Stats();
    check(stats.ok() && stats->payload.find("\"protocol_errors\":") !=
                            std::string::npos,
          "stats response carries net counters");
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args = tools::Args::Parse(argc, argv);
  const std::string host = args.Get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(
      std::strtoul(args.Get("port", "0").c_str(), nullptr, 10));
  if (port == 0) return Fail("--port is required");
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10));

  if (args.Has("health")) {
    // Liveness/readiness split (DESIGN.md "Durability"): ANY response means
    // the process is live; the payload says whether it is ready.  Exit codes
    // are script-friendly: 0 ready, 3 live-but-recovering, 1 unreachable.
    net::Client client;
    const util::Status connected = client.Connect(host, port);
    if (!connected.ok()) return Fail(connected.ToString());
    util::Result<net::WireResponse> response = client.Health();
    if (!response.ok()) return Fail(response.status().ToString());
    if (response->status != net::WireStatus::kOk) {
      return Fail(std::string("server answered ") +
                  net::WireStatusName(response->status));
    }
    std::printf("%s\n", response->payload.c_str());
    const bool ready =
        response->payload.find("\"ready\":true") != std::string::npos;
    return ready ? 0 : 3;
  }

  if (args.Has("ping") || args.Has("stats") || args.Has("shutdown")) {
    net::Client client;
    const util::Status connected = client.Connect(host, port);
    if (!connected.ok()) return Fail(connected.ToString());
    util::Result<net::WireResponse> response =
        args.Has("ping")    ? client.Ping()
        : args.Has("stats") ? client.Stats()
                            : client.RequestShutdown();
    if (!response.ok()) return Fail(response.status().ToString());
    if (response->status != net::WireStatus::kOk) {
      return Fail(std::string("server answered ") +
                  net::WireStatusName(response->status));
    }
    if (args.Has("stats")) {
      std::printf("%s\n", response->payload.c_str());
    } else {
      std::printf("%s\n", args.Has("ping") ? "pong" : "shutdown acknowledged");
    }
    return 0;
  }

  auto texts = GenerateQueryTexts(args.Get("workload", "lubm:50"), seed);
  if (!texts.ok()) return Fail(texts.status().ToString());

  if (args.Has("smoke")) return RunSmoke(host, port, texts.value());

  net::LoadOptions load;
  load.host = host;
  load.port = port;
  load.queries = std::move(texts).value();
  load.burst = static_cast<std::size_t>(
      std::strtoull(args.Get("burst", "1").c_str(), nullptr, 10));
  load.concurrency = static_cast<std::size_t>(
      std::strtoull(args.Get("concurrency", "4").c_str(), nullptr, 10));
  load.total_requests = static_cast<std::size_t>(
      std::strtoull(args.Get("requests", "1000").c_str(), nullptr, 10));
  load.rate_per_sec = std::strtod(args.Get("rate", "1000").c_str(), nullptr);
  load.duration_ms =
      std::strtod(args.Get("duration-ms", "1000").c_str(), nullptr);
  load.connections = static_cast<std::size_t>(
      std::strtoull(args.Get("connections", "4").c_str(), nullptr, 10));
  load.deadline_ms = static_cast<std::uint32_t>(
      std::strtoul(args.Get("deadline-ms", "0").c_str(), nullptr, 10));
  load.simulated_io_micros = static_cast<std::uint32_t>(
      std::strtoul(args.Get("io-us", "0").c_str(), nullptr, 10));

  const std::string mode = args.Get("mode", "closed");
  util::Result<net::LoadReport> report =
      mode == "open" ? net::RunOpenLoop(load) : net::RunClosedLoop(load);
  if (!report.ok()) return Fail(report.status().ToString());
  if (args.Has("json")) {
    std::printf("%s\n", report->ToJson().c_str());
  } else {
    std::ostringstream os;
    report->Print(os);
    std::printf("%s", os.str().c_str());
  }
  return 0;
}
