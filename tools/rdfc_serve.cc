// rdfc_serve — drives the concurrent containment service end to end: loads a
// view set, publishes it as an immutable index version, then pushes a probe
// stream through the worker pool and reports the per-stage latency metrics
// (DESIGN.md "Service layer").
//
//   rdfc_serve --views=views.rq --probes=probes.rq [--threads=N] [--shards=N]
//   rdfc_serve --view-workload=lubm:200 --probe-workload=lubm:2000
//   rdfc_serve ... --deadline-ms=5 --io-us=100 --json
//   rdfc_serve ... --timeout-us=2000 --retries=3 --backoff-us=200
//   rdfc_serve --view-workload=lubm:200 --listen=8711   # network daemon
//
// Query files use the repo's `---`-separated SPARQL format.  The workload
// specs accept dbpedia|watdiv|bsbm|ldbc|lubm with an optional :count.
//
// Overload handling (DESIGN.md "Resilience"): ResourceExhausted admissions
// are retried up to --retries times with jittered exponential backoff
// (deterministic given --seed); --timeout-us arms the per-probe budget so
// pathological probes come back Degraded instead of holding a worker.
//
// With --listen=<port> (0 = ephemeral) the tool becomes the network daemon
// (DESIGN.md "Network front end"): views are published, then a framed-TCP
// NetServer serves probes until SIGINT/SIGTERM or a client shutdown request,
// drains, and prints the final metrics.  --batch-window-us / --max-batch
// tune anchor-signature batch admission; --max-frame-bytes / --max-conns
// bound per-connection resources.
//
// Durability (DESIGN.md "Durability", daemon mode only):
//
//   rdfc_serve --listen=0 --journal=j.wal [--journal-fsync=always|group|off]
//              [--journal-group-us=10000] [--snapshot=ckpt.rdfcti]
//              [--churn-ops=N] [--churn-sleep-us=U] [--ack-log=acks.txt]
//              [--checkpoint-every=K] [--failpoints=SPEC] [--failpoint-seed=S]
//
// --journal arms the write-ahead journal: on startup the snapshot (if any)
// is restored, the server starts answering kPing/kHealth immediately (live
// but not ready), the journal replays, and only then does the service report
// ready.  --churn-ops drives the deterministic publish schedule from
// tools/churn_schedule.h, emitting one `ack <batch> <version>` line per
// acknowledged publish — the oracle input of the rdfc_chaos kill -9 harness.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "churn_schedule.h"
#include "index/journal.h"
#include "net/server.h"
#include "query/bgp_query.h"
#include "service/containment_service.h"
#include "tool_util.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/workload.h"

using namespace rdfc;  // NOLINT(build/namespaces)

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

int Fail(const std::string& message) {
  std::fprintf(stderr, "rdfc_serve: %s\n", message.c_str());
  return 1;
}

/// Generates `spec` = name[:count] against `dict` (single-threaded setup).
util::Result<std::vector<query::BgpQuery>> GenerateSpec(
    const std::string& spec, rdf::TermDictionary* dict, std::uint64_t seed) {
  std::string name = spec;
  std::size_t count = 1000;
  if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    count = static_cast<std::size_t>(
        std::strtoull(spec.substr(colon + 1).c_str(), nullptr, 10));
  }
  if (name == "dbpedia") return workload::GenerateDbpedia(dict, count, seed);
  if (name == "watdiv") return workload::GenerateWatdiv(dict, count, seed);
  if (name == "bsbm") return workload::GenerateBsbm(dict, count, seed);
  if (name == "ldbc") return workload::GenerateLdbc(dict, count, seed);
  if (name == "lubm") return workload::GenerateLubmExtended(dict, count, seed);
  return util::Status::InvalidArgument("unknown workload: " + name);
}

util::Result<std::vector<query::BgpQuery>> ParseFile(
    const std::string& path, service::ContainmentService* svc) {
  RDFC_ASSIGN_OR_RETURN(std::vector<std::string> texts,
                        tools::ReadQueryFile(path));
  std::vector<query::BgpQuery> out;
  out.reserve(texts.size());
  for (const std::string& text : texts) {
    RDFC_ASSIGN_OR_RETURN(query::BgpQuery q, svc->Parse(text));
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const tools::Args args = tools::Args::Parse(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      std::strtoull(args.Get("seed", "42").c_str(), nullptr, 10));

  service::ServiceOptions options;
  options.num_threads = static_cast<std::size_t>(
      std::strtoull(args.Get("threads", "4").c_str(), nullptr, 10));
  options.queue_capacity = static_cast<std::size_t>(
      std::strtoull(args.Get("queue", "4096").c_str(), nullptr, 10));
  options.probe_timeout_micros =
      std::strtod(args.Get("timeout-us", "0").c_str(), nullptr);
  // Index shard count (DESIGN.md "Sharded index"); 1 disables sharding.
  options.tier.num_shards = static_cast<std::size_t>(
      std::strtoull(args.Get("shards", "8").c_str(), nullptr, 10));
  service::ContainmentService svc(options);

  // --- Fault injection -----------------------------------------------------
  if (args.Has("failpoints")) {
#ifdef RDFC_FAILPOINTS
    const auto fp_seed = static_cast<std::uint64_t>(
        std::strtoull(args.Get("failpoint-seed", "1").c_str(), nullptr, 10));
    const util::Status configured = util::FailpointRegistry::Instance()
                                        .Configure(args.Get("failpoints"),
                                                   fp_seed);
    if (!configured.ok()) return Fail(configured.ToString());
#else
    return Fail("--failpoints requires a build with -DRDFC_FAILPOINTS=ON");
#endif
  }

  // --- Durability setup (phase 1: checkpoint restore) ----------------------
  const std::string journal_path = args.Get("journal", "");
  const std::string snapshot_path = args.Get("snapshot", "");
  if (!journal_path.empty() && !args.Has("listen")) {
    return Fail("--journal requires --listen (daemon mode)");
  }
  bool restored = false;
  if (!journal_path.empty()) {
    // Recovery starts here: restore the latest checkpoint if one exists (a
    // missing file is a cold start, not an error), then — once the server is
    // up and answering liveness — the journal replays everything
    // acknowledged after it.
    svc.set_recovering(true);
    if (!snapshot_path.empty()) {
      if (std::FILE* probe = std::fopen(snapshot_path.c_str(), "rb")) {
        std::fclose(probe);
        const util::Status loaded = svc.manager().RestoreTiered(snapshot_path);
        if (!loaded.ok()) return Fail("restore: " + loaded.ToString());
        restored = true;
      }
    }
  }

  // --- Views ---------------------------------------------------------------
  // With a journal, recovered state IS the workload: the default view set is
  // staged only on an explicit request against a cold store, so a restart
  // reconstructs exactly what was acknowledged and nothing else.
  const auto churn_total = static_cast<std::uint64_t>(
      std::strtoull(args.Get("churn-ops", "0").c_str(), nullptr, 10));
  const bool stage_default_views =
      journal_path.empty() ||
      ((args.Has("views") || args.Has("view-workload")) && !restored &&
       churn_total == 0);
  auto stage_initial_views = [&]() -> int {
    std::vector<query::BgpQuery> views;
    if (args.Has("views")) {
      auto parsed = ParseFile(args.Get("views"), &svc);
      if (!parsed.ok()) return Fail(parsed.status().ToString());
      views = std::move(parsed).value();
    } else {
      auto generated = GenerateSpec(args.Get("view-workload", "lubm:200"),
                                    svc.mutable_dict(), seed);
      if (!generated.ok()) return Fail(generated.status().ToString());
      views = std::move(generated).value();
    }
    std::size_t staged = 0;
    for (query::BgpQuery& view : views) {
      auto id = svc.manager().StageAdd(std::move(view));
      if (id.ok()) ++staged;  // empty/degenerate views are skipped
    }
    auto version = svc.Publish();
    if (!version.ok()) return Fail(version.status().ToString());
    std::fprintf(stderr, "published version %llu with %zu views\n",
                 static_cast<unsigned long long>(*version), staged);
    return 0;
  };
  if (journal_path.empty() && stage_default_views) {
    if (const int rc = stage_initial_views(); rc != 0) return rc;
  }

  // --- Daemon mode ---------------------------------------------------------
  if (args.Has("listen")) {
    net::ServerOptions server_options;
    server_options.port = static_cast<std::uint16_t>(
        std::strtoul(args.Get("listen", "0").c_str(), nullptr, 10));
    server_options.batch_window_micros =
        std::strtod(args.Get("batch-window-us", "200").c_str(), nullptr);
    server_options.max_batch = static_cast<std::size_t>(
        std::strtoull(args.Get("max-batch", "32").c_str(), nullptr, 10));
    server_options.max_frame_bytes = static_cast<std::uint32_t>(
        std::strtoul(args.Get("max-frame-bytes", "1048576").c_str(), nullptr,
                     10));
    server_options.max_connections = static_cast<std::size_t>(
        std::strtoull(args.Get("max-conns", "128").c_str(), nullptr, 10));
    net::NetServer server(&svc, server_options);
    const util::Status started = server.Start();
    if (!started.ok()) return Fail(started.ToString());
    // Scripted consumers (CI smoke, bench_net, rdfc_chaos) parse this line
    // for the port.  Printed BEFORE journal replay on purpose: the server is
    // already answering kPing/kHealth from its I/O thread, so a health poll
    // during a long replay sees live-but-not-ready — the readiness split the
    // chaos harness exercises.
    std::printf("listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    (void)std::signal(SIGINT, HandleSignal);
    (void)std::signal(SIGTERM, HandleSignal);

    // --- Durability setup (phase 2: journal replay) ------------------------
    if (!journal_path.empty()) {
      index::JournalOptions jopts;
      jopts.path = journal_path;
      const std::string policy = args.Get("journal-fsync", "group");
      if (policy == "always") {
        jopts.fsync = index::JournalFsync::kAlways;
      } else if (policy == "group") {
        jopts.fsync = index::JournalFsync::kGroup;
      } else if (policy == "off") {
        jopts.fsync = index::JournalFsync::kOff;
      } else {
        return Fail("unknown --journal-fsync (want always|group|off)");
      }
      jopts.group_window_micros = std::strtod(
          args.Get("journal-group-us", "10000").c_str(), nullptr);
      const util::Status enabled = svc.EnableJournal(jopts, snapshot_path);
      if (!enabled.ok()) return Fail("journal: " + enabled.ToString());
      const index::JournalStats js = svc.manager().journal_stats();
      std::fprintf(stderr,
                   "journal: replayed %llu records / %llu ops, last sequence "
                   "%llu, truncated %llu bytes\n",
                   static_cast<unsigned long long>(js.records_replayed),
                   static_cast<unsigned long long>(js.ops_replayed),
                   static_cast<unsigned long long>(js.last_sequence),
                   static_cast<unsigned long long>(js.truncated_bytes));
      svc.set_recovering(false);
      if (stage_default_views && js.records_replayed == 0 &&
          js.last_sequence == 0) {
        if (const int rc = stage_initial_views(); rc != 0) return rc;
      }
    }

    // --- Churn loop --------------------------------------------------------
    const auto churn_sleep_us =
        std::strtod(args.Get("churn-sleep-us", "0").c_str(), nullptr);
    const auto checkpoint_every = static_cast<std::uint64_t>(
        std::strtoull(args.Get("checkpoint-every", "0").c_str(), nullptr, 10));
    if (churn_total > 0) {
      // Fast-forward the deterministic schedule over every batch the journal
      // already holds, so batch k stages the same ops with the same ids in
      // every run of this seed (tools/churn_schedule.h).
      tools::ChurnState churn;
      const std::uint64_t start = svc.manager().journal_stats().last_sequence;
      for (std::uint64_t k = 0; k < start; ++k) {
        (void)tools::ChurnBatchOps(seed, k, &churn);
      }
      std::FILE* acks = stdout;
      if (args.Has("ack-log")) {
        acks = std::fopen(args.Get("ack-log").c_str(), "a");
        if (acks == nullptr) return Fail("cannot open --ack-log");
      }
      for (std::uint64_t batch = start;
           batch < churn_total && g_stop == 0 && !server.shutting_down();
           ++batch) {
        const tools::ChurnBatch ops = tools::ChurnBatchOps(seed, batch, &churn);
        for (const std::string& text : ops.add_texts) {
          auto id = svc.AddView(text);
          if (!id.ok()) return Fail("churn add: " + id.status().ToString());
        }
        for (const std::uint64_t id : ops.remove_ids) {
          const util::Status removed = svc.RemoveView(id);
          if (!removed.ok()) return Fail("churn remove: " + removed.ToString());
        }
        // Publish (and its journal append) is what the ack line certifies.
        // A failed append leaves the intents staged, so retry the SAME
        // publish — never regenerate the batch — until it lands.
        auto version = svc.Publish();
        for (int attempt = 0; !version.ok() && attempt < 64; ++attempt) {
          version = svc.Publish();
        }
        if (!version.ok()) {
          return Fail("churn publish: " + version.status().ToString());
        }
        std::fprintf(acks, "ack %llu %llu\n",
                     static_cast<unsigned long long>(batch + 1),
                     static_cast<unsigned long long>(*version));
        std::fflush(acks);
        if (checkpoint_every > 0 && !snapshot_path.empty() &&
            (batch + 1) % checkpoint_every == 0) {
          const util::Status saved = svc.manager().SaveTiered(snapshot_path);
          if (!saved.ok()) {
            std::fprintf(stderr, "checkpoint: %s\n", saved.ToString().c_str());
          }
        }
        if (churn_sleep_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::micro>(churn_sleep_us));
        }
      }
      if (acks != stdout) std::fclose(acks);
      // Tell scripted consumers churn ran dry (vs. was killed mid-stream).
      std::printf("churn done\n");
      std::fflush(stdout);
    }

    util::Timer wall;
    while (g_stop == 0 && !server.shutting_down()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    server.Shutdown();
    const double wall_ms = wall.ElapsedMillis();
    const service::MetricsSnapshot metrics = svc.Metrics();
    if (args.Has("json")) {
      std::printf(
          "{\"wall_ms\":%.3f,\"completed\":%llu,\"degraded\":%llu,"
          "\"quarantined\":%llu,\"rejected\":%llu,\"deadline_expired\":%llu,"
          "\"metrics\":%s}\n",
          wall_ms, static_cast<unsigned long long>(metrics.completed),
          static_cast<unsigned long long>(metrics.degraded),
          static_cast<unsigned long long>(metrics.quarantined),
          static_cast<unsigned long long>(metrics.rejected),
          static_cast<unsigned long long>(metrics.deadline_expired),
          metrics.ToJson().c_str());
    } else {
      std::printf("served for %.1f ms\n", wall_ms);
      std::ostringstream table;
      metrics.Print(table);
      std::printf("%s", table.str().c_str());
    }
    return 0;
  }

  // --- Probes --------------------------------------------------------------
  std::vector<query::BgpQuery> probes;
  if (args.Has("probes")) {
    auto parsed = ParseFile(args.Get("probes"), &svc);
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    probes = std::move(parsed).value();
  } else {
    auto generated = GenerateSpec(args.Get("probe-workload", "lubm:2000"),
                                  svc.mutable_dict(), seed + 1);
    if (!generated.ok()) return Fail(generated.status().ToString());
    probes = std::move(generated).value();
  }
  if (probes.empty()) return Fail("no probes");

  const double deadline_ms =
      std::strtod(args.Get("deadline-ms", "0").c_str(), nullptr);
  const double io_us = std::strtod(args.Get("io-us", "0").c_str(), nullptr);

  const auto max_retries = static_cast<std::size_t>(
      std::strtoull(args.Get("retries", "0").c_str(), nullptr, 10));
  const double backoff_us =
      std::strtod(args.Get("backoff-us", "200").c_str(), nullptr);
  util::Rng retry_rng(seed ^ 0xB0FFB0FFB0FFB0FFull);

  // Admit everything up front (fills the pipeline like SubmitBatch), but
  // with the retry policy: a ResourceExhausted admission backs off
  // backoff_us * 2^attempt, jittered to [0.5x, 1.5x) so a burst of rejected
  // clients does not re-arrive in lockstep.  Jitter draws come from the
  // seeded PRNG, so a run is reproducible given --seed.
  util::Timer wall;
  std::vector<util::Result<std::future<service::ProbeResponse>>> admitted;
  admitted.reserve(probes.size());
  std::size_t total_retries = 0;
  for (query::BgpQuery& q : probes) {
    for (std::size_t attempt = 0;; ++attempt) {
      service::ProbeRequest request;
      request.query = attempt < max_retries ? q : std::move(q);
      if (deadline_ms > 0) {
        request.deadline = std::chrono::steady_clock::now() +
                           std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   deadline_ms));
      }
      request.simulated_io_micros = io_us;
      auto future = svc.Submit(std::move(request));
      if (future.ok() || attempt >= max_retries ||
          future.status().code() != util::StatusCode::kResourceExhausted) {
        admitted.push_back(std::move(future));
        break;
      }
      ++total_retries;
      const double sleep_us = backoff_us *
                              static_cast<double>(std::size_t{1} << attempt) *
                              (0.5 + retry_rng.UniformReal());
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(sleep_us));
    }
  }
  std::vector<util::Result<service::ProbeResponse>> responses;
  responses.reserve(admitted.size());
  for (auto& entry : admitted) {
    if (!entry.ok()) {
      responses.push_back(entry.status());
    } else {
      responses.push_back(entry.value().get());
    }
  }
  const double wall_ms = wall.ElapsedMillis();

  std::size_t ok = 0, contained = 0, rejected = 0, expired = 0;
  std::size_t degraded = 0, quarantined = 0;
  for (const auto& response : responses) {
    if (!response.ok()) {
      ++rejected;
      continue;
    }
    if (!response->status.ok()) {
      ++expired;
      continue;
    }
    if (response->degraded) {
      ++degraded;
      quarantined += response->quarantined ? 1 : 0;
      continue;
    }
    ++ok;
    if (!response->containing_views.empty()) ++contained;
  }

  const service::MetricsSnapshot metrics = svc.Metrics();
  if (args.Has("json")) {
    // Top-level summary counters (README "rdfc_serve output"): every
    // client-visible outcome, including quarantine rejections, next to the
    // full metrics fold.
    std::printf(
        "{\"probes\":%zu,\"completed\":%zu,\"contained\":%zu,"
        "\"degraded\":%zu,\"quarantined\":%zu,\"rejected\":%zu,"
        "\"deadline_expired\":%zu,\"retries\":%zu,\"wall_ms\":%.3f,"
        "\"metrics\":%s}\n",
        responses.size(), ok, contained, degraded, quarantined, rejected,
        expired, total_retries, wall_ms, metrics.ToJson().c_str());
  } else {
    std::printf("probes:           %zu\n", responses.size());
    std::printf("completed:        %zu (%zu contained in >=1 view)\n", ok,
                contained);
    std::printf("degraded:         %zu (%zu quarantined)\n", degraded,
                quarantined);
    std::printf("rejected:         %zu (after %zu retries)\n", rejected,
                total_retries);
    std::printf("deadline expired: %zu\n", expired);
    std::printf("wall time:        %.1f ms (%.0f probes/s, %zu threads)\n",
                wall_ms, 1000.0 * static_cast<double>(responses.size()) / wall_ms,
                options.num_threads);
    std::ostringstream table;
    metrics.Print(table);
    std::printf("%s", table.str().c_str());
  }
  return 0;
}
