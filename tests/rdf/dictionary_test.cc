#include "rdf/dictionary.h"

#include <gtest/gtest.h>

namespace rdfc {
namespace rdf {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  TermDictionary dict;
  const TermId a = dict.MakeIri("urn:a");
  const TermId b = dict.MakeIri("urn:a");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kNullTerm);
}

TEST(DictionaryTest, KindsDisambiguateSameLexical) {
  TermDictionary dict;
  const TermId iri = dict.MakeIri("x");
  const TermId var = dict.MakeVariable("x");
  const TermId blank = dict.MakeBlank("x");
  EXPECT_NE(iri, var);
  EXPECT_NE(var, blank);
  EXPECT_NE(iri, blank);
  EXPECT_EQ(dict.kind(iri), TermKind::kIri);
  EXPECT_EQ(dict.kind(var), TermKind::kVariable);
  EXPECT_EQ(dict.kind(blank), TermKind::kBlank);
}

TEST(DictionaryTest, LookupWithoutIntern) {
  TermDictionary dict;
  EXPECT_EQ(dict.Lookup(TermKind::kIri, "urn:missing"), kNullTerm);
  const TermId a = dict.MakeIri("urn:present");
  EXPECT_EQ(dict.Lookup(TermKind::kIri, "urn:present"), a);
  EXPECT_EQ(dict.Lookup(TermKind::kVariable, "urn:present"), kNullTerm);
}

TEST(DictionaryTest, ConstantsAreIrisAndLiterals) {
  TermDictionary dict;
  EXPECT_TRUE(dict.IsConstant(dict.MakeIri("urn:a")));
  EXPECT_TRUE(dict.IsConstant(dict.MakeLiteral("\"x\"")));
  EXPECT_FALSE(dict.IsConstant(dict.MakeVariable("v")));
  EXPECT_FALSE(dict.IsConstant(dict.MakeBlank("b")));
}

TEST(DictionaryTest, CanonicalVariablesAreStable) {
  TermDictionary dict;
  const TermId x1 = dict.CanonicalVariable(1);
  const TermId x2 = dict.CanonicalVariable(2);
  EXPECT_NE(x1, x2);
  EXPECT_EQ(dict.CanonicalVariable(1), x1);
  EXPECT_EQ(dict.lexical(x1), "x1");
  EXPECT_TRUE(dict.IsVariable(x1));
  // Interning "?x1" by hand hits the same slot.
  EXPECT_EQ(dict.MakeVariable("x1"), x1);
}

TEST(DictionaryTest, ToStringRendering) {
  TermDictionary dict;
  EXPECT_EQ(dict.ToString(dict.MakeIri("urn:a")), "<urn:a>");
  EXPECT_EQ(dict.ToString(dict.MakeLiteral("\"v\"@en")), "\"v\"@en");
  EXPECT_EQ(dict.ToString(dict.MakeVariable("x")), "?x");
  EXPECT_EQ(dict.ToString(dict.MakeBlank("b0")), "_:b0");
  EXPECT_EQ(dict.ToString(kNullTerm), "<null>");
}

TEST(DictionaryTest, SizeGrowsMonotonically) {
  TermDictionary dict;
  const std::size_t base = dict.size();  // reserved null slot
  dict.MakeIri("urn:1");
  dict.MakeIri("urn:2");
  dict.MakeIri("urn:1");  // dup
  EXPECT_EQ(dict.size(), base + 2);
}

}  // namespace
}  // namespace rdf
}  // namespace rdfc
