#include "rdf/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace rdfc {
namespace rdf {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  TermDictionary dict_;
  Graph g_;
  TermId s1_ = dict_.MakeIri("urn:s1");
  TermId s2_ = dict_.MakeIri("urn:s2");
  TermId p1_ = dict_.MakeIri("urn:p1");
  TermId p2_ = dict_.MakeIri("urn:p2");
  TermId o1_ = dict_.MakeIri("urn:o1");
  TermId o2_ = dict_.MakeLiteral("\"two\"");
};

TEST_F(GraphTest, AddAndContains) {
  EXPECT_TRUE(g_.Add(s1_, p1_, o1_));
  EXPECT_FALSE(g_.Add(s1_, p1_, o1_));  // set semantics
  EXPECT_EQ(g_.size(), 1u);
  EXPECT_TRUE(g_.Contains(Triple(s1_, p1_, o1_)));
  EXPECT_FALSE(g_.Contains(Triple(s1_, p1_, o2_)));
}

TEST_F(GraphTest, MatchAllPatternsOfBoundness) {
  g_.Add(s1_, p1_, o1_);
  g_.Add(s1_, p1_, o2_);
  g_.Add(s1_, p2_, o1_);
  g_.Add(s2_, p1_, o1_);

  EXPECT_EQ(g_.MatchAll(kNullTerm, kNullTerm, kNullTerm).size(), 4u);
  EXPECT_EQ(g_.MatchAll(s1_, kNullTerm, kNullTerm).size(), 3u);
  EXPECT_EQ(g_.MatchAll(kNullTerm, p1_, kNullTerm).size(), 3u);
  EXPECT_EQ(g_.MatchAll(kNullTerm, kNullTerm, o1_).size(), 3u);
  EXPECT_EQ(g_.MatchAll(s1_, p1_, kNullTerm).size(), 2u);
  EXPECT_EQ(g_.MatchAll(kNullTerm, p1_, o1_).size(), 2u);
  EXPECT_EQ(g_.MatchAll(s1_, kNullTerm, o1_).size(), 2u);
  EXPECT_EQ(g_.MatchAll(s1_, p1_, o1_).size(), 1u);
  EXPECT_EQ(g_.MatchAll(s2_, p2_, o2_).size(), 0u);
}

TEST_F(GraphTest, MatchReturnsCount) {
  g_.Add(s1_, p1_, o1_);
  g_.Add(s2_, p1_, o1_);
  std::size_t seen = 0;
  const std::size_t count =
      g_.Match(kNullTerm, p1_, o1_, [&](const Triple&) { ++seen; });
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(seen, 2u);
}

TEST_F(GraphTest, MatchUnknownTermsYieldNothing) {
  g_.Add(s1_, p1_, o1_);
  const TermId ghost = dict_.MakeIri("urn:ghost");
  EXPECT_TRUE(g_.MatchAll(ghost, kNullTerm, kNullTerm).empty());
  EXPECT_TRUE(g_.MatchAll(kNullTerm, ghost, kNullTerm).empty());
  EXPECT_TRUE(g_.MatchAll(kNullTerm, kNullTerm, ghost).empty());
}

TEST_F(GraphTest, DistinctPositionCounts) {
  g_.Add(s1_, p1_, o1_);
  g_.Add(s1_, p2_, o2_);
  g_.Add(s2_, p1_, o1_);
  EXPECT_EQ(g_.num_subjects(), 2u);
  EXPECT_EQ(g_.num_predicates(), 2u);
  EXPECT_EQ(g_.num_objects(), 2u);
}

TEST_F(GraphTest, TripleOrderingIsLexicographic) {
  Triple a(1, 2, 3), b(1, 2, 4), c(1, 3, 0), d(2, 0, 0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  std::vector<Triple> v{d, c, b, a};
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v.front(), a);
  EXPECT_EQ(v.back(), d);
}

}  // namespace
}  // namespace rdf
}  // namespace rdfc
