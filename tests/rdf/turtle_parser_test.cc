#include "rdf/turtle_parser.h"

#include <gtest/gtest.h>

namespace rdfc {
namespace rdf {
namespace {

class TurtleTest : public ::testing::Test {
 protected:
  util::Status Parse(std::string_view text) {
    return ParseTurtle(text, &dict_, &graph_);
  }
  TermDictionary dict_;
  Graph graph_;
};

TEST_F(TurtleTest, EmptyAndCommentsOnly) {
  EXPECT_TRUE(Parse("").ok());
  EXPECT_TRUE(Parse("# just a comment\n  \n# another\n").ok());
  EXPECT_EQ(graph_.size(), 0u);
}

TEST_F(TurtleTest, FullIriTriple) {
  ASSERT_TRUE(Parse("<urn:s> <urn:p> <urn:o> .").ok());
  ASSERT_EQ(graph_.size(), 1u);
  const Triple t = graph_.triples()[0];
  EXPECT_EQ(dict_.lexical(t.s), "urn:s");
  EXPECT_EQ(dict_.lexical(t.p), "urn:p");
  EXPECT_EQ(dict_.lexical(t.o), "urn:o");
}

TEST_F(TurtleTest, PrefixedNamesAndA) {
  ASSERT_TRUE(Parse(R"(
    @prefix ex: <http://example.org/> .
    ex:alice a ex:Person .
  )").ok());
  ASSERT_EQ(graph_.size(), 1u);
  const Triple t = graph_.triples()[0];
  EXPECT_EQ(dict_.lexical(t.s), "http://example.org/alice");
  EXPECT_EQ(dict_.lexical(t.p),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  EXPECT_EQ(dict_.lexical(t.o), "http://example.org/Person");
}

TEST_F(TurtleTest, PredicateAndObjectLists) {
  ASSERT_TRUE(Parse(R"(
    @prefix ex: <http://example.org/> .
    ex:s ex:p1 ex:o1 , ex:o2 ;
         ex:p2 ex:o3 .
  )").ok());
  EXPECT_EQ(graph_.size(), 3u);
}

TEST_F(TurtleTest, Literals) {
  ASSERT_TRUE(Parse(R"(
    @prefix ex: <http://example.org/> .
    ex:s ex:name "Masquerade" .
    ex:s ex:tagline "hello"@en .
    ex:s ex:count 42 .
    ex:s ex:score 3.5 .
    ex:s ex:flag true .
    ex:s ex:typed "x"^^<urn:dt> .
  )").ok());
  EXPECT_EQ(graph_.size(), 6u);
  EXPECT_NE(dict_.Lookup(TermKind::kLiteral, "\"Masquerade\""), kNullTerm);
  EXPECT_NE(dict_.Lookup(TermKind::kLiteral, "\"hello\"@en"), kNullTerm);
  EXPECT_NE(dict_.Lookup(TermKind::kLiteral,
                         "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"),
            kNullTerm);
  EXPECT_NE(dict_.Lookup(TermKind::kLiteral,
                         "\"3.5\"^^<http://www.w3.org/2001/XMLSchema#decimal>"),
            kNullTerm);
  EXPECT_NE(dict_.Lookup(TermKind::kLiteral, "\"x\"^^<urn:dt>"), kNullTerm);
}

TEST_F(TurtleTest, BlankNodes) {
  ASSERT_TRUE(Parse("_:b1 <urn:p> _:b2 .").ok());
  const Triple t = graph_.triples()[0];
  EXPECT_EQ(dict_.kind(t.s), TermKind::kBlank);
  EXPECT_EQ(dict_.kind(t.o), TermKind::kBlank);
}

TEST_F(TurtleTest, EscapedStrings) {
  ASSERT_TRUE(Parse(R"(<urn:s> <urn:p> "a \"quoted\" word\n" .)").ok());
  EXPECT_NE(dict_.Lookup(TermKind::kLiteral, "\"a \"quoted\" word\n\""),
            kNullTerm);
}

TEST_F(TurtleTest, SparqlStylePrefix) {
  ASSERT_TRUE(Parse(R"(
    PREFIX ex: <http://example.org/>
    ex:s ex:p ex:o .
  )").ok());
  EXPECT_EQ(graph_.size(), 1u);
}

TEST_F(TurtleTest, Errors) {
  EXPECT_FALSE(Parse("<urn:s> <urn:p> <urn:o>").ok());  // missing '.'
  EXPECT_FALSE(Parse("<urn:s <urn:p> <urn:o> .").ok()); // unterminated IRI
  EXPECT_FALSE(Parse("ex:s ex:p ex:o .").ok());         // unknown prefix
  EXPECT_FALSE(Parse("<urn:s> <urn:p> \"open .").ok()); // unterminated string
}

}  // namespace
}  // namespace rdf
}  // namespace rdfc
