#include "rdf/ntriples.h"

#include <gtest/gtest.h>

#include "rdf/turtle_parser.h"

namespace rdfc {
namespace rdf {
namespace {

TEST(NTriplesTest, WriteBasicForms) {
  TermDictionary dict;
  Graph graph;
  graph.Add(dict.MakeIri("urn:s"), dict.MakeIri("urn:p"),
            dict.MakeIri("urn:o"));
  graph.Add(dict.MakeIri("urn:s"), dict.MakeIri("urn:name"),
            dict.MakeLiteral("\"hello\""));
  graph.Add(dict.MakeBlank("b0"), dict.MakeIri("urn:p"),
            dict.MakeLiteral("\"x\"@en"));
  const std::string out = WriteNTriples(graph, dict);
  EXPECT_NE(out.find("<urn:s> <urn:p> <urn:o> .\n"), std::string::npos);
  EXPECT_NE(out.find("<urn:s> <urn:name> \"hello\" .\n"), std::string::npos);
  EXPECT_NE(out.find("_:b0 <urn:p> \"x\"@en .\n"), std::string::npos);
}

TEST(NTriplesTest, EscapesSpecialCharacters) {
  TermDictionary dict;
  Graph graph;
  graph.Add(dict.MakeIri("urn:s"), dict.MakeIri("urn:p"),
            dict.MakeLiteral("\"line\nbreak \"quoted\" back\\slash\""));
  const std::string out = WriteNTriples(graph, dict);
  EXPECT_NE(out.find(R"("line\nbreak \"quoted\" back\\slash")"),
            std::string::npos);
}

TEST(NTriplesTest, TypedLiteralKeepsDatatype) {
  TermDictionary dict;
  Graph graph;
  graph.Add(dict.MakeIri("urn:s"), dict.MakeIri("urn:p"),
            dict.MakeLiteral("\"42\"^^<urn:dt>"));
  EXPECT_NE(WriteNTriples(graph, dict).find("\"42\"^^<urn:dt>"),
            std::string::npos);
}

TEST(NTriplesTest, RoundTrip) {
  TermDictionary dict;
  Graph graph;
  ASSERT_TRUE(ParseTurtle(R"(
    @prefix ex: <urn:ex:> .
    ex:a ex:p ex:b .
    ex:a ex:name "va\nl" .
    ex:b ex:score 3.5 .
    _:n ex:p ex:a .
  )", &dict, &graph).ok());
  const std::string nt = WriteNTriples(graph, dict);

  TermDictionary dict2;
  Graph graph2;
  ASSERT_TRUE(ParseNTriples(nt, &dict2, &graph2).ok()) << nt;
  EXPECT_EQ(graph2.size(), graph.size());
  // And a second write is byte-stable.
  EXPECT_EQ(WriteNTriples(graph2, dict2), nt);
}

TEST(NTriplesTest, RejectsDirectives) {
  TermDictionary dict;
  Graph graph;
  EXPECT_FALSE(ParseNTriples("@prefix ex: <urn:ex:> .\n", &dict, &graph).ok());
  EXPECT_FALSE(
      ParseNTriples("PREFIX ex: <urn:ex:>\n<urn:s> <urn:p> <urn:o> .",
                    &dict, &graph).ok());
}

TEST(NTriplesTest, AcceptsCommentsAndBlankLines) {
  TermDictionary dict;
  Graph graph;
  EXPECT_TRUE(ParseNTriples(
      "# header\n\n<urn:s> <urn:p> <urn:o> .\n# trailing\n", &dict, &graph)
                  .ok());
  EXPECT_EQ(graph.size(), 1u);
}

}  // namespace
}  // namespace rdf
}  // namespace rdfc
