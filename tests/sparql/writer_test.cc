#include "sparql/writer.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sparql/parser.h"

namespace rdfc {
namespace sparql {
namespace {

using testing::ParseOrDie;

TEST(WriterTest, WriteTermForms) {
  rdf::TermDictionary dict;
  EXPECT_EQ(WriteTerm(dict.MakeIri("urn:a"), dict), "<urn:a>");
  EXPECT_EQ(WriteTerm(dict.MakeVariable("x"), dict), "?x");
  EXPECT_EQ(WriteTerm(dict.MakeLiteral("\"v\"@en"), dict), "\"v\"@en");
  EXPECT_EQ(WriteTerm(dict.MakeBlank("b"), dict), "_:b");
}

void ExpectRoundTrip(const std::string& text) {
  rdf::TermDictionary dict;
  const query::BgpQuery original = ParseOrDie(text, &dict);
  const std::string rendered = WriteQuery(original, dict);
  auto reparsed = ParseQuery(rendered, &dict);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\nrendered:\n"
                             << rendered;
  EXPECT_TRUE(original.SamePatterns(*reparsed)) << rendered;
  EXPECT_EQ(original.form(), reparsed->form());
}

TEST(WriterTest, RoundTripSelect) {
  ExpectRoundTrip(R"(SELECT ?sN ?aN WHERE {
    ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN . })");
}

TEST(WriterTest, RoundTripAsk) {
  ExpectRoundTrip("ASK WHERE { ?x :p :o . ?x a :C . }");
}

TEST(WriterTest, RoundTripLiteralsAndVarPredicates) {
  ExpectRoundTrip(R"(SELECT ?x WHERE {
    ?x :name "Masquerade" . ?x ?p "42"^^<urn:dt> . ?x :tag "hi"@en . })");
}

TEST(WriterTest, SelectStarRendering) {
  rdf::TermDictionary dict;
  query::BgpQuery q = ParseOrDie("SELECT * WHERE { ?x :p ?y }", &dict);
  EXPECT_NE(WriteQuery(q, dict).find("SELECT *"), std::string::npos);
}

TEST(WriterTest, DistinguishedVariablesListed) {
  rdf::TermDictionary dict;
  query::BgpQuery q = ParseOrDie("SELECT ?b ?a WHERE { ?a :p ?b }", &dict);
  const std::string rendered = WriteQuery(q, dict);
  EXPECT_NE(rendered.find("SELECT ?b ?a"), std::string::npos);
}

}  // namespace
}  // namespace sparql
}  // namespace rdfc
