#include "sparql/parser.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace rdfc {
namespace sparql {
namespace {

using testing::Iri;
using testing::ParseOrDie;
using testing::Var;

TEST(ParserTest, PaperRunningExampleQueryQ) {
  // Example 2.1, query Q (Formula 1).
  rdf::TermDictionary dict;
  const query::BgpQuery q = ParseOrDie(R"(
    SELECT ?sN ?aN WHERE {
      ?sng :name ?sN .
      ?sng :fromAlbum ?alb .
      ?alb :name ?aN .
      ?alb :artist ?art .
      ?art :type :MusicalArtist .
    })", &dict);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.form(), query::QueryForm::kSelect);
  ASSERT_EQ(q.distinguished().size(), 2u);
  EXPECT_EQ(q.distinguished()[0], Var(&dict, "sN"));
  EXPECT_EQ(q.distinguished()[1], Var(&dict, "aN"));
  EXPECT_TRUE(q.ContainsPattern(rdf::Triple(
      Var(&dict, "art"), Iri(&dict, "type"), Iri(&dict, "MusicalArtist"))));
}

TEST(ParserTest, AskForm) {
  rdf::TermDictionary dict;
  const query::BgpQuery q =
      ParseOrDie("ASK WHERE { ?x :p ?y . }", &dict);
  EXPECT_EQ(q.form(), query::QueryForm::kAsk);
  EXPECT_EQ(q.size(), 1u);
}

TEST(ParserTest, AskWithoutWhereKeyword) {
  rdf::TermDictionary dict;
  EXPECT_EQ(ParseOrDie("ASK { ?x :p ?y }", &dict).size(), 1u);
}

TEST(ParserTest, SelectStar) {
  rdf::TermDictionary dict;
  const query::BgpQuery q = ParseOrDie("SELECT * WHERE { ?x :p ?y }", &dict);
  EXPECT_TRUE(q.select_all());
}

TEST(ParserTest, SelectDistinct) {
  rdf::TermDictionary dict;
  const query::BgpQuery q =
      ParseOrDie("SELECT DISTINCT ?x WHERE { ?x :p ?y }", &dict);
  EXPECT_EQ(q.distinguished().size(), 1u);
}

TEST(ParserTest, PrefixDeclarations) {
  rdf::TermDictionary dict;
  const query::BgpQuery q = ParseOrDie(R"(
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    SELECT ?n WHERE { ?x foaf:name ?n }
  )", &dict);
  EXPECT_TRUE(q.ContainsPattern(
      rdf::Triple(Var(&dict, "x"),
                  dict.MakeIri("http://xmlns.com/foaf/0.1/name"),
                  Var(&dict, "n"))));
}

TEST(ParserTest, SemicolonAndCommaSugar) {
  rdf::TermDictionary dict;
  const query::BgpQuery q = ParseOrDie(R"(
    SELECT ?x WHERE { ?x :p1 :o1 , :o2 ; :p2 ?y . }
  )", &dict);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.ContainsPattern(
      rdf::Triple(Var(&dict, "x"), Iri(&dict, "p1"), Iri(&dict, "o2"))));
  EXPECT_TRUE(q.ContainsPattern(
      rdf::Triple(Var(&dict, "x"), Iri(&dict, "p2"), Var(&dict, "y"))));
}

TEST(ParserTest, AKeywordIsRdfType) {
  rdf::TermDictionary dict;
  const query::BgpQuery q = ParseOrDie("SELECT ?x WHERE { ?x a :C }", &dict);
  EXPECT_TRUE(q.ContainsPattern(rdf::Triple(
      Var(&dict, "x"),
      dict.MakeIri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
      Iri(&dict, "C"))));
}

TEST(ParserTest, TypedAndLangLiterals) {
  rdf::TermDictionary dict;
  const query::BgpQuery q = ParseOrDie(R"(
    SELECT ?x WHERE {
      ?x :name "Masquerade" .
      ?x :label "hi"@en .
      ?x :age 42 .
      ?x :score 2.5 .
      ?x :typed "v"^^<urn:dt> .
    })", &dict);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_NE(dict.Lookup(rdf::TermKind::kLiteral, "\"hi\"@en"), rdf::kNullTerm);
  EXPECT_NE(dict.Lookup(rdf::TermKind::kLiteral,
                        "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"),
            rdf::kNullTerm);
  EXPECT_NE(dict.Lookup(rdf::TermKind::kLiteral, "\"v\"^^<urn:dt>"),
            rdf::kNullTerm);
}

TEST(ParserTest, VariablePredicates) {
  rdf::TermDictionary dict;
  const query::BgpQuery q =
      ParseOrDie("SELECT ?p WHERE { :s ?p ?o }", &dict);
  const rdf::Triple t = q.patterns()[0];
  EXPECT_TRUE(dict.IsVariable(t.p));
}

TEST(ParserTest, BlankNodesBecomeVariables) {
  rdf::TermDictionary dict;
  const query::BgpQuery q =
      ParseOrDie("SELECT ?x WHERE { ?x :p _:b0 }", &dict);
  const rdf::Triple t = q.patterns()[0];
  EXPECT_TRUE(dict.IsVariable(t.o));
}

TEST(ParserTest, DuplicatePatternsDeduplicated) {
  rdf::TermDictionary dict;
  const query::BgpQuery q =
      ParseOrDie("SELECT ?x WHERE { ?x :p ?y . ?x :p ?y . }", &dict);
  EXPECT_EQ(q.size(), 1u);
}

TEST(ParserTest, FilterSkippedWhenLenient) {
  rdf::TermDictionary dict;
  const query::BgpQuery q = ParseOrDie(R"(
    SELECT ?x WHERE { ?x :p ?y . FILTER (?y > 10) . ?x :q ?z }
  )", &dict);
  EXPECT_EQ(q.size(), 2u);
}

TEST(ParserTest, FilterComparisonWithoutSpaces) {
  // Regression: '<' directly before a variable is a comparison, not an IRI.
  rdf::TermDictionary dict;
  const query::BgpQuery q = ParseOrDie(
      "SELECT ?x WHERE { ?x :p ?y . FILTER (?y <?x) . FILTER (?y >?x) }",
      &dict);
  EXPECT_EQ(q.size(), 1u);
}

TEST(ParserTest, SolutionModifiersSkipped) {
  rdf::TermDictionary dict;
  const query::BgpQuery q = ParseOrDie(
      "SELECT ?x WHERE { ?x :p ?y } ORDER BY ?y LIMIT 10 OFFSET 5", &dict);
  EXPECT_EQ(q.size(), 1u);
}

TEST(ParserTest, Errors) {
  rdf::TermDictionary dict;
  EXPECT_FALSE(ParseQuery("WHERE { ?x ?p ?y }", &dict).ok());
  EXPECT_FALSE(ParseQuery("SELECT WHERE { ?x ?p ?y }", &dict).ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x { ?x ?p }", &dict).ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ?p ?y", &dict).ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x unknown:p ?y }", &dict).ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x ?p ?y } garbage <",
                          &dict).ok());
}

TEST(ParserTest, BaseResolution) {
  rdf::TermDictionary dict;
  const query::BgpQuery q = ParseOrDie(R"(
    BASE <http://ex.org/>
    SELECT ?x WHERE { ?x <p> ?y }
  )", &dict);
  EXPECT_TRUE(q.ContainsPattern(rdf::Triple(
      Var(&dict, "x"), dict.MakeIri("http://ex.org/p"), Var(&dict, "y"))));
}

}  // namespace
}  // namespace sparql
}  // namespace rdfc
