#include <gtest/gtest.h>

#include "../test_util.h"
#include "containment/ucq.h"
#include "sparql/parser.h"

namespace rdfc {
namespace sparql {
namespace {

using rdfc::testing::ParseOrDie;

ParsedUnionQuery ParseUnionOrDie(const std::string& text,
                                 rdf::TermDictionary* dict) {
  ParserOptions options;
  options.default_prefixes[""] = "urn:t:";
  auto result = ParseUnionQuery(text, dict, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : ParsedUnionQuery{};
}

TEST(UnionParserTest, PlainQueryIsSingleBranch) {
  rdf::TermDictionary dict;
  const ParsedUnionQuery parsed =
      ParseUnionOrDie("SELECT ?x WHERE { ?x :p ?y }", &dict);
  ASSERT_EQ(parsed.branches.size(), 1u);
  EXPECT_EQ(parsed.branches[0].size(), 1u);
  EXPECT_EQ(parsed.form, query::QueryForm::kSelect);
}

TEST(UnionParserTest, TwoBranches) {
  rdf::TermDictionary dict;
  const ParsedUnionQuery parsed = ParseUnionOrDie(R"(
    SELECT ?x WHERE {
      { ?x :p ?y . ?y :q ?z }
      UNION
      { ?x :r ?y }
    })", &dict);
  ASSERT_EQ(parsed.branches.size(), 2u);
  EXPECT_EQ(parsed.branches[0].size(), 2u);
  EXPECT_EQ(parsed.branches[1].size(), 1u);
  // Branches carry the projection.
  ASSERT_EQ(parsed.branches[0].distinguished().size(), 1u);
  EXPECT_EQ(parsed.branches[0].distinguished()[0], dict.MakeVariable("x"));
}

TEST(UnionParserTest, ThreeBranchesAsk) {
  rdf::TermDictionary dict;
  const ParsedUnionQuery parsed = ParseUnionOrDie(
      "ASK { { ?x :a ?y } UNION { ?x :b ?y } UNION { ?x :c ?y } }", &dict);
  EXPECT_EQ(parsed.branches.size(), 3u);
  EXPECT_EQ(parsed.form, query::QueryForm::kAsk);
}

TEST(UnionParserTest, ParseQueryRejectsUnions) {
  rdf::TermDictionary dict;
  ParserOptions options;
  options.default_prefixes[""] = "urn:t:";
  auto result = ParseQuery(
      "ASK { { ?x :a ?y } UNION { ?x :b ?y } }", &dict, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnsupported);
}

TEST(UnionParserTest, UnsupportedOperatorsHaveClearErrors) {
  rdf::TermDictionary dict;
  ParserOptions options;
  options.default_prefixes[""] = "urn:t:";
  auto result = ParseQuery(
      "SELECT ?x WHERE { ?x :p ?y . OPTIONAL { ?x :q ?z } }", &dict, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnsupported);
}

TEST(UnionParserTest, MalformedUnions) {
  rdf::TermDictionary dict;
  EXPECT_FALSE(ParseUnionQuery("ASK { { ?x <urn:p> ?y } UNION }", &dict).ok());
  EXPECT_FALSE(
      ParseUnionQuery("ASK { { ?x <urn:p> ?y } UNION { ?x <urn:q> ?y }",
                      &dict).ok());
}

TEST(UnionParserTest, FeedsUcqContainment) {
  rdf::TermDictionary dict;
  const ParsedUnionQuery w = ParseUnionOrDie(
      "ASK { { ?x :p ?y } UNION { ?x :q ?y } }", &dict);
  const query::BgpQuery q1 = ParseOrDie("ASK { ?a :p ?b . ?a a :T }", &dict);
  const query::BgpQuery q2 = ParseOrDie("ASK { ?a :r ?b }", &dict);
  EXPECT_TRUE(containment::ContainedInUnion(q1, w.branches, &dict));
  EXPECT_FALSE(containment::ContainedInUnion(q2, w.branches, &dict));
}

}  // namespace
}  // namespace sparql
}  // namespace rdfc
