#include "sparql/lexer.h"

#include <gtest/gtest.h>

namespace rdfc {
namespace sparql {
namespace {

std::vector<SparqlToken> TokenizeOrDie(std::string_view text) {
  auto result = Tokenize(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : std::vector<SparqlToken>{};
}

TEST(LexerTest, EmptyInputYieldsEof) {
  const auto tokens = TokenizeOrDie("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  const auto tokens = TokenizeOrDie("select Select SELECT where ASK");
  ASSERT_EQ(tokens.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kKeyword);
    EXPECT_EQ(tokens[i].text, "SELECT");
  }
  EXPECT_EQ(tokens[3].text, "WHERE");
  EXPECT_EQ(tokens[4].text, "ASK");
}

TEST(LexerTest, Variables) {
  const auto tokens = TokenizeOrDie("?x $y ?long_name");
  EXPECT_EQ(tokens[0].type, TokenType::kVariable);
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].type, TokenType::kVariable);
  EXPECT_EQ(tokens[1].text, "y");
  EXPECT_EQ(tokens[2].text, "long_name");
}

TEST(LexerTest, IriRefs) {
  const auto tokens = TokenizeOrDie("<http://ex.org/a#b>");
  EXPECT_EQ(tokens[0].type, TokenType::kIriRef);
  EXPECT_EQ(tokens[0].text, "http://ex.org/a#b");
}

TEST(LexerTest, PrefixedNames) {
  const auto tokens = TokenizeOrDie("foaf:name rdf:type :local");
  EXPECT_EQ(tokens[0].type, TokenType::kPrefixedName);
  EXPECT_EQ(tokens[0].text, "foaf:name");
  EXPECT_EQ(tokens[1].text, "rdf:type");
  EXPECT_EQ(tokens[2].type, TokenType::kPrefixedName);
  EXPECT_EQ(tokens[2].text, ":local");
}

TEST(LexerTest, StringsWithLangAndDatatype) {
  const auto tokens = TokenizeOrDie(R"("hi"@en "x"^^<urn:dt> 'single')");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "\"hi\"");
  EXPECT_EQ(tokens[1].type, TokenType::kLangTag);
  EXPECT_EQ(tokens[1].text, "en");
  EXPECT_EQ(tokens[2].type, TokenType::kString);
  EXPECT_EQ(tokens[3].type, TokenType::kDoubleCaret);
  EXPECT_EQ(tokens[4].type, TokenType::kIriRef);
  EXPECT_EQ(tokens[5].type, TokenType::kString);
  EXPECT_EQ(tokens[5].text, "\"single\"");
}

TEST(LexerTest, EscapesInStrings) {
  const auto tokens = TokenizeOrDie(R"("a\"b\nc")");
  EXPECT_EQ(tokens[0].text, "\"a\"b\nc\"");
}

TEST(LexerTest, NumbersAndPunctuation) {
  const auto tokens = TokenizeOrDie("{ ?s ?p 42 ; ?q 3.14 , -7 . } *");
  EXPECT_EQ(tokens[0].type, TokenType::kLBrace);
  EXPECT_EQ(tokens[3].type, TokenType::kNumber);
  EXPECT_EQ(tokens[3].text, "42");
  EXPECT_EQ(tokens[4].type, TokenType::kSemicolon);
  EXPECT_EQ(tokens[6].text, "3.14");
  EXPECT_EQ(tokens[7].type, TokenType::kComma);
  EXPECT_EQ(tokens[8].text, "-7");
  EXPECT_EQ(tokens[9].type, TokenType::kDot);
  EXPECT_EQ(tokens[10].type, TokenType::kRBrace);
  EXPECT_EQ(tokens[11].type, TokenType::kStar);
}

TEST(LexerTest, BlankNodesAndA) {
  const auto tokens = TokenizeOrDie("_:b0 a _:b1");
  EXPECT_EQ(tokens[0].type, TokenType::kBlankNode);
  EXPECT_EQ(tokens[0].text, "b0");
  EXPECT_EQ(tokens[1].type, TokenType::kA);
  EXPECT_EQ(tokens[2].text, "b1");
}

TEST(LexerTest, CommentsSkipped) {
  const auto tokens = TokenizeOrDie("?x # comment ?y\n?z");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "z");
}

TEST(LexerTest, BooleansBecomeTypedLiterals) {
  const auto tokens = TokenizeOrDie("true false");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_NE(tokens[0].text.find("XMLSchema#boolean"), std::string::npos);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("<unterminated").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("?").ok());
  EXPECT_FALSE(Tokenize("^x").ok());
  EXPECT_FALSE(Tokenize("\x01").ok());
}

TEST(LexerTest, OffsetsPointIntoSource) {
  const auto tokens = TokenizeOrDie("?x  ?y");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
}

}  // namespace
}  // namespace sparql
}  // namespace rdfc
