#include "eval/evaluator.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "rdf/turtle_parser.h"

namespace rdfc {
namespace eval {
namespace {

using rdfc::testing::ParseOrDie;
using rdfc::testing::Var;

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The running-example graph of Example 2.1.
    ASSERT_TRUE(rdf::ParseTurtle(R"(
      @prefix t: <urn:t:> .
      t:s1 t:name "Masquerade" .
      t:s1 t:fromAlbum t:al1 .
      t:al1 t:name "The Phantom of the Opera" .
      t:al1 t:artist t:ar3 .
      t:ar3 t:name "Andrew L. Webber" .
      t:ar3 t:type t:MusicalArtist .
    )", &dict_, &graph_).ok());
  }
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  rdf::TermDictionary dict_;
  rdf::Graph graph_;
};

TEST_F(EvaluatorTest, PaperExampleAnswer) {
  // Q returns ("Masquerade", "The Phantom of the Opera").
  const query::BgpQuery q = Q(R"(SELECT ?sN ?aN WHERE {
      ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN .
      ?alb :artist ?art . ?art :type :MusicalArtist . })");
  const auto answers = ProjectedAnswers(q, graph_, dict_);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], dict_.MakeLiteral("\"Masquerade\""));
  EXPECT_EQ(answers[0][1],
            dict_.MakeLiteral("\"The Phantom of the Opera\""));
}

TEST_F(EvaluatorTest, AskSemantics) {
  EXPECT_TRUE(Ask(Q("ASK { ?x :type :MusicalArtist . }"), graph_, dict_));
  EXPECT_FALSE(Ask(Q("ASK { ?x :type :Composer . }"), graph_, dict_));
}

TEST_F(EvaluatorTest, EmptyQueryHasEmptySolution) {
  query::BgpQuery q;
  EXPECT_TRUE(Ask(q, graph_, dict_));
}

TEST_F(EvaluatorTest, VariablePredicateEnumerates) {
  const query::BgpQuery q = Q("SELECT ?p WHERE { <urn:t:s1> ?p ?o . }");
  const auto answers = ProjectedAnswers(q, graph_, dict_);
  EXPECT_EQ(answers.size(), 2u);  // name, fromAlbum
}

TEST_F(EvaluatorTest, JoinOverSharedVariable) {
  const query::BgpQuery q =
      Q("SELECT ?a WHERE { ?s :fromAlbum ?a . ?a :artist ?r . }");
  const auto answers = ProjectedAnswers(q, graph_, dict_);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], dict_.MakeIri("urn:t:al1"));
}

TEST_F(EvaluatorTest, MaxSolutionsStopsEarly) {
  const query::BgpQuery q = Q("SELECT ?s WHERE { ?s ?p ?o . }");
  EvalOptions options;
  options.max_solutions = 2;
  EXPECT_EQ(Evaluate(q, graph_, dict_, options).solutions.size(), 2u);
}

TEST_F(EvaluatorTest, ProjectionDeduplicates) {
  // Two triples share subject s1: projecting onto ?s alone dedups.
  const query::BgpQuery q = Q("SELECT ?s WHERE { ?s ?p ?o . }");
  const auto answers = ProjectedAnswers(q, graph_, dict_);
  EXPECT_EQ(answers.size(), 3u);  // s1, al1, ar3
}

TEST_F(EvaluatorTest, FreezeYieldsCanonicalInstance) {
  const query::BgpQuery q = Q("ASK { ?x :p ?y . ?y :q :c . }");
  std::unordered_map<rdf::TermId, rdf::TermId> image;
  rdf::TermDictionary dict;
  const query::BgpQuery q2 = ParseOrDie("ASK { ?x :p ?y . ?y :q :c . }",
                                        &dict);
  const rdf::Graph frozen = Freeze(q2, &dict, &image);
  EXPECT_EQ(frozen.size(), 2u);
  EXPECT_EQ(image.size(), 2u);
  // The query matches its own freeze (Chandra-Merlin canonical database).
  EXPECT_TRUE(Ask(q2, frozen, dict));
}

TEST_F(EvaluatorTest, ContainmentImpliesAnswerInclusion) {
  // Q ⊑ W from the paper: on this graph, every Boolean answer of Q implies
  // one of W.
  const query::BgpQuery q = Q(R"(ASK {
      ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN .
      ?alb :artist ?art . ?art :type :MusicalArtist . })");
  const query::BgpQuery w =
      Q("ASK { ?x :name ?y . ?x :fromAlbum ?z . ?z :name ?w . }");
  EXPECT_TRUE(Ask(q, graph_, dict_));
  EXPECT_TRUE(Ask(w, graph_, dict_));
}

}  // namespace
}  // namespace eval
}  // namespace rdfc
