#include <thread>
#include <vector>

namespace rdfc {

// Tests exercise primitives deliberately (hammer threads, barriers).
void Hammer() {
  std::vector<std::thread> threads;
  threads.emplace_back([] {});
  for (std::thread& t : threads) t.join();
}

}  // namespace rdfc
