#include <mutex>
#include <thread>

namespace rdfc {
namespace util {

// src/util/ is the audited concurrency layer: raw primitives are allowed
// here, where the annotated wrappers are implemented.
std::mutex g_registry_mu;

void Spin() { std::thread worker([] {}); worker.join(); }

}  // namespace util
}  // namespace rdfc
