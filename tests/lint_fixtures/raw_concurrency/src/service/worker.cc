#include <chrono>
#include <thread>

#include "util/mutex.h"

namespace rdfc {
namespace service {

class Worker {
 public:
  void Run() {
    util::MutexLock lock(&mu_);
    ++ticks_;
  }

  void Nap() {
    // std::this_thread is not std::thread: the word boundary must hold.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

 private:
  util::Mutex mu_;
  std::mutex raw_mu_;
  int ticks_ RDFC_GUARDED_BY(mu_) = 0;
};

}  // namespace service
}  // namespace rdfc
