#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace rdfc {
namespace util {

class View {
 public:
  std::size_t size() const RDFC_READPATH {
    return size_.load(std::memory_order_acquire);
  }

  const int& At(std::size_t i) const RDFC_READPATH {
    cache_.push_back(static_cast<int>(i));
    auto tmp = std::make_unique<int>(3);
    int* raw = new int(7);
    delete raw;  // NOLINT(raw-delete): paired with the line above
    scratch_.reserve(4);  // NOLINT(alloc-in-readpath): capacity proven at init
    return cache_.back();
  }

  /// Marker on a declaration only; the out-of-line body is not scanned here.
  void Touch() RDFC_READPATH;

  /// Not a read-path function: growth is fine.
  void Warm() { cache_.push_back(0); }

 private:
  std::atomic<std::size_t> size_{0};
  mutable std::vector<int> cache_;
  mutable std::vector<int> scratch_;
};

}  // namespace util
}  // namespace rdfc
