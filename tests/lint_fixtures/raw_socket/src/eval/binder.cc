// Negative fixture: things that LOOK like socket calls but are not.
//   - capitalised wrapper methods (client.Connect, server.Shutdown);
//   - a lambda named `bind` (the reason `bind` is not in the token list);
//   - the tokens appearing in comments or string literals only.
#include <string>

namespace rdfc {
namespace eval {

struct FakeClient {
  void Connect() {}
  void Shutdown() {}
};

int BindVariables() {
  FakeClient client;
  client.Connect();   // wrapper, not connect(2)
  client.Shutdown();  // wrapper, not shutdown(2)
  auto bind = [](int term) { return term + 1; };
  int bound = bind(41);
  std::string note = "poll (poll the budget, not a socket)";
  // send recv select listen -- comment text must stay silent
  return bound + static_cast<int>(note.size());
}

}  // namespace eval
}  // namespace rdfc
