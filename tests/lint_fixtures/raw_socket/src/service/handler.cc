// Positive fixture: raw socket syscalls in library code outside src/net/.
#include <cstddef>

namespace rdfc {
namespace service {

int OpenRawSocket() {
  int fd = socket(2, 1, 0);          // fires: socket()
  setsockopt(fd, 1, 2, nullptr, 0);  // fires: setsockopt()
  char buf[16];
  recv(fd, buf, sizeof(buf), 0);  // fires: recv()
  poll(nullptr, 0, 10);           // fires: poll()
  shutdown(fd, 2);  // NOLINT(raw-socket) -- suppression is honoured
  return fd;
}

}  // namespace service
}  // namespace rdfc
