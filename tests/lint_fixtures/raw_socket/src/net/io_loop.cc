// Negative fixture: src/net/ is the sanctioned home of socket syscalls.
#include <cstddef>

namespace rdfc {
namespace net {

int AcceptOne(int listen_fd) {
  int fd = accept4(listen_fd, nullptr, nullptr, 0);
  char buf[64];
  recv(fd, buf, sizeof(buf), 0);
  send(fd, buf, sizeof(buf), 0);
  poll(nullptr, 0, 1);
  return fd;
}

}  // namespace net
}  // namespace rdfc
