#include "service/counter.h"

namespace rdfc {
namespace service {

void Counter::Inc() {
  util::MutexLock lock(&mu_);
  hits_ += 1;
  misses_ += 1;
  backlog_.push_back(misses_);
  scratch_.clear();  // NOLINT(annotation-parity): scratch is lock-agnostic
}

void Counter::Drain() {
  // No lock held: parity only audits writes under a guard (unguarded writes
  // are the thread-sanitizer's department).
  misses_ = 0;
}

}  // namespace service
}  // namespace rdfc
