#pragma once

#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rdfc {
namespace service {

class Counter {
 public:
  void Inc();
  void Drain();

 private:
  util::Mutex mu_;
  int hits_ RDFC_GUARDED_BY(mu_) = 0;
  int misses_ = 0;
  std::vector<int> backlog_;
  std::vector<int> scratch_;
};

}  // namespace service
}  // namespace rdfc
