#include <unordered_set>

namespace rdfc {

int* ArenaSlot() {
  static int* slot = new int(0);  // NOLINT(raw-new): leaked singleton
  return slot;
}

int* BlanketSlot() {
  static int* slot = new int(0);  // NOLINT
  return slot;
}

int* NextLineSlot() {
  // NOLINTNEXTLINE(raw-new)
  static int* slot = new int(0);
  return slot;
}

// A comment that merely mentions NOLINT mid-sentence is not a directive.
int* Plain() { return nullptr; }

}  // namespace rdfc
