#include <vector>

namespace rdfc {
namespace index {

// This file is not part of the probe-walk set (src/containment/ plus the
// named walk files), so its loops are out of scope for the rule.
void Drain(std::vector<int>& stack) {
  while (!stack.empty()) {
    stack.pop_back();
  }
}

}  // namespace index
}  // namespace rdfc
