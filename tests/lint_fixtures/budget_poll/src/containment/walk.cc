#include <cstddef>
#include <vector>

namespace rdfc {
namespace containment {

void Walk(std::vector<int>& stack, util::ProbeBudget* budget) {
  while (!stack.empty()) {
    stack.pop_back();
  }

  while (!stack.empty()) {
    if (budget->Exhausted()) break;
    stack.pop_back();
  }

  for (std::size_t i = 0; i < stack.size(); ++i) {
    // Counted loops are structurally bounded; no poll required.
  }

  for (;;) {
    if (stack.empty()) break;
    stack.pop_back();
  }

  std::vector<int> candidates = stack;
  for (int candidate : candidates) {
    (void)candidate;
  }

  for (int candidate : candidates) {
    if (budget->Exhausted()) break;
    (void)candidate;
  }

  // Fixpoint bounded by the stack height; insert-side.
  // NOLINTNEXTLINE(budget-poll-coverage)
  while (!stack.empty()) {
    stack.pop_back();
  }
}

}  // namespace containment
}  // namespace rdfc
