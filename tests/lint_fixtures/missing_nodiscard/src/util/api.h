#pragma once

#include <memory>
#include <string>

namespace rdfc {
namespace util {

util::Status Unannotated(const std::string& arg);
[[nodiscard]] util::Status Annotated(const std::string& arg);
[[nodiscard]] util::Result<int> AnnotatedResult();

/// The class-level [[nodiscard]] makes per-factory annotations redundant:
/// discarding any returned Status already warns.
class [[nodiscard]] Status {
 public:
  static Status OK() { return Status(); }
  static Status Internal(std::string msg);
};

class Loader {
 public:
  Result<int> MemberUnannotated();
  [[nodiscard]] Result<int> MemberAnnotated();

 private:
  /// Friend re-declarations carry no attributes; the primary declaration is
  /// the annotated one.
  friend util::Result<std::unique_ptr<Loader>> Load(const std::string& path);
};

}  // namespace util
}  // namespace rdfc
