#include <string>
#include <vector>

namespace rdfc {

// The engine must not read code out of comments or literals: this comment
// mentions std::mutex, new Foo(), and rand() without any of them existing.
const char* Snippets() {
  static const std::string kSparql = R"sparql(
    SELECT ?x WHERE { ?x <p> "new int(42)" . }
    # while (true) { std::thread t; rand(); }
  )sparql";
  const char* fake = "std::mutex in a string literal; // NOLINT";
  (void)fake;
  /* block comment: delete ptr; sprintf(buf, "%d", 1); */
  return kSparql.c_str();
}

std::size_t BalancedBraces(const std::vector<int>& xs) {
  std::size_t n = 0;
  for (int x : xs) {  // counted range-for outside the walk set
    if (x > 0) {
      ++n;
    }
  }
  return n;
}

}  // namespace rdfc
