#include "util/api.h"

namespace rdfc {

void Drops(util::Sink& sink) {
  DoThing("x");
  sink.Commit();
  util::DoThing("qualified");
}

void Consumes(util::Sink& sink) {
  util::Status st = DoThing("x");
  if (!st.ok()) return;
  RDFC_RETURN_NOT_OK(sink.Commit());
  st = DoThing("reassigned is a use");
  DoThing("justified fire-and-forget");  // NOLINT(unchecked-status): probed elsewhere
}

}  // namespace rdfc
