#pragma once

#include <string>

namespace rdfc {
namespace util {

class Sink {
 public:
  [[nodiscard]] util::Status Commit();
  void Reset();
};

[[nodiscard]] util::Status DoThing(const std::string& arg);
[[nodiscard]] util::Result<int> CountThings();

}  // namespace util
}  // namespace rdfc
