#include "service/index_manager.h"

namespace rdfc {
namespace service {

void OuterScopeEscape(IndexManager& manager) {
  const IndexSnapshot* leaked = nullptr;
  {
    auto guard = manager.Acquire(0);
    leaked = &*guard;
    Use(leaked);
  }
  Use(leaked);  // dangles: the pin was released at the brace above
}

const IndexSnapshot* ReturnEscape(IndexManager& manager) {
  auto guard = manager.Acquire(1);
  return &*guard;
}

void MemberEscape(Prober& prober, IndexManager& manager) {
  auto guard = manager.Acquire(2);
  prober.last_ = nullptr;
  last_ = &*guard;
}

std::uint64_t FineByValue(IndexManager& manager) {
  auto guard = manager.Acquire(3);
  return guard->version();
}

void FineSameScope(IndexManager& manager) {
  auto guard = manager.Acquire(4);
  const IndexSnapshot* pinned = &*guard;
  Use(pinned);
}

void Justified(IndexManager& manager) {
  const IndexSnapshot* raw = nullptr;
  {
    auto guard = manager.Acquire(5);
    // NOLINTNEXTLINE(pin-escape): consumed before the guard releases
    raw = &*guard;
    Use(raw);
  }
}

}  // namespace service
}  // namespace rdfc
