// Negative fixture: tools/ are exempt -- CLI binaries write ack logs and
// fixture files without durability obligations.
#include <cstdio>

bool WriteAckLine(std::FILE* acks) {
  const char line[] = "ack 1 1\n";
  return std::fwrite(line, 1, sizeof(line) - 1, acks) == sizeof(line) - 1;
}
