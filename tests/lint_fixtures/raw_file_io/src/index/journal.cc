// Negative fixture: src/index/journal.cc is the sanctioned journal writer.
#include <cstdio>

namespace rdfc {
namespace index {

bool AppendRecord(std::FILE* file, const char* bytes, unsigned long n) {
  if (std::fwrite(bytes, 1, n, file) != n) return false;
  if (std::fflush(file) != 0) return false;
  return fsync(fileno(file)) == 0;
}

}  // namespace index
}  // namespace rdfc
