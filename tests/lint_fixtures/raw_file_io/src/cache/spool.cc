// Negative fixture: things that LOOK like file I/O but are not.
//   - capitalised wrapper methods (writer.Open, writer.Write, writer.Rename);
//   - identifiers containing the tokens (rewrite);
//   - the tokens appearing in comments or string literals only.
#include <string>

namespace rdfc {
namespace cache {

struct SpoolWriter {
  void Open() {}
  void Write(const std::string&) {}
  void Rename(const std::string&) {}
};

int RewriteSpool() {
  SpoolWriter writer;
  writer.Open();              // wrapper, not open(2)
  writer.Write("fsync me");   // string literal stays silent
  writer.Rename("spool.bin");
  int rewrite = 1;  // identifier containing `write`
  const std::string note = "rename (atomic rename happens in persistence)";
  // open write fsync rename -- comment text must stay silent
  return rewrite + static_cast<int>(note.size());
}

}  // namespace cache
}  // namespace rdfc
