// Positive fixture: raw file I/O in library code outside the durability
// layer (src/index/persistence.cc, src/index/journal.cc, src/net/).
#include <cstdio>

namespace rdfc {
namespace service {

bool SpillToDisk(const char* path) {
  std::FILE* f = std::fopen(path, "wb");  // fires: fopen()
  if (f == nullptr) return false;
  char byte = 0;
  std::fwrite(&byte, 1, 1, f);  // fires: fwrite()
  const int fd = fileno(f);     // fires: fileno()
  fsync(fd);                    // fires: fsync()
  std::fclose(f);
  std::rename(path, "spill.bin");  // fires: rename()
  unlink(path);  // NOLINT(raw-file-io) -- suppression is honoured
  return true;
}

}  // namespace service
}  // namespace rdfc
