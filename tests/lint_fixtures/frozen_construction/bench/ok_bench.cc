#include "index/frozen_index.h"
#include "index/mv_index.h"

namespace rdfc {

// Outside src/ the rule is silent: benches and tests freeze ad hoc.
std::size_t BenchFreeze(const index::MvIndex& mv) {
  index::FrozenMvIndex frozen(mv);
  return frozen.StructureBytes();
}

}  // namespace rdfc
