#include <memory>

#include "index/frozen_index.h"
#include "index/mv_index.h"

namespace rdfc {
namespace service {

// Type mentions are fine: parameters, members, nested names.
std::size_t NodeBytes() { return sizeof(index::FrozenMvIndex::Node); }
std::size_t Count(const index::FrozenMvIndex* base) { return base == nullptr; }

std::shared_ptr<const index::FrozenMvIndex> BadShared(const index::MvIndex& mv) {
  return std::make_shared<const index::FrozenMvIndex>(mv);
}

std::unique_ptr<index::FrozenMvIndex> BadUnique(const index::MvIndex& mv) {
  return std::make_unique<index::FrozenMvIndex>(mv);
}

std::size_t BadStack(const index::MvIndex& mv) {
  index::FrozenMvIndex frozen(mv);
  return frozen.StructureBytes();
}

index::FrozenMvIndex* BadShardArray() {
  // Bulk-building per-shard bases must still go through the freeze sites.
  return new index::FrozenMvIndex[4];  // NOLINT(raw-new)
}

std::shared_ptr<const index::FrozenMvIndex> BadAllocateShared(
    const index::MvIndex& mv) {
  return std::allocate_shared<const index::FrozenMvIndex>(
      std::allocator<index::FrozenMvIndex>(), mv);
}

std::shared_ptr<const index::FrozenMvIndex> SanctionedCompactionBuild(
    const index::MvIndex& merged) {
  // The one blessed service-side site mirrors index_manager.cc's marker.
  return std::make_shared<const index::FrozenMvIndex>(  // NOLINT(frozen-construction)
      merged);
}

std::shared_ptr<const index::FrozenMvIndex> WrapLoaded(
    std::unique_ptr<index::FrozenMvIndex> loaded) {
  // Wrapping an already-constructed base is not a construction.
  return std::shared_ptr<const index::FrozenMvIndex>(std::move(loaded));
}

}  // namespace service
}  // namespace rdfc
