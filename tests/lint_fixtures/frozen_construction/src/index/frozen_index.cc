#include <memory>

#include "index/frozen_index.h"
#include "index/mv_index.h"

namespace rdfc {
namespace index {

// The freeze site itself: construction here is the rule's whole point.
std::unique_ptr<FrozenMvIndex> Freeze(const MvIndex& mv) {
  return std::make_unique<FrozenMvIndex>(mv);
}

}  // namespace index
}  // namespace rdfc
