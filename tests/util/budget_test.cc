#include "util/budget.h"

#include <gtest/gtest.h>

#include <chrono>

namespace rdfc {
namespace util {
namespace {

TEST(ProbeBudgetTest, DefaultNeverExpires) {
  ProbeBudget budget;
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_FALSE(budget.Exhausted());
  }
  EXPECT_FALSE(budget.exhausted());
  EXPECT_FALSE(budget.has_deadline());
  EXPECT_EQ(budget.steps(), 100'000u);
}

TEST(ProbeBudgetTest, MaxTimePointMeansNoDeadline) {
  ProbeBudget budget = ProbeBudget::AtDeadline(
      ProbeBudget::Clock::time_point::max());
  EXPECT_FALSE(budget.has_deadline());
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_FALSE(budget.Exhausted());
  }
}

TEST(ProbeBudgetTest, PastDeadlineExpiresAtFirstPoll) {
  ProbeBudget budget =
      ProbeBudget::AtDeadline(ProbeBudget::Clock::now() -
                              std::chrono::milliseconds(1));
  EXPECT_TRUE(budget.has_deadline());
  // The clock is only polled every kPollInterval steps; expiry must land
  // within the first poll window.
  bool expired = false;
  for (int i = 0; i < 1000 && !expired; ++i) {
    expired = budget.Exhausted();
  }
  EXPECT_TRUE(expired);
  EXPECT_TRUE(budget.exhausted());
}

TEST(ProbeBudgetTest, ExhaustionIsSticky) {
  ProbeBudget budget;
  budget.Expire();
  EXPECT_TRUE(budget.exhausted());
  EXPECT_TRUE(budget.Exhausted());
  EXPECT_TRUE(budget.Exhausted());
}

TEST(ProbeBudgetTest, StepCapTripsExactly) {
  ProbeBudget budget;
  budget.set_max_steps(10);
  int allowed = 0;
  while (!budget.Exhausted()) ++allowed;
  EXPECT_EQ(allowed, 10);
  EXPECT_TRUE(budget.exhausted());
}

TEST(ProbeBudgetTest, AfterMicrosExpiresEventually) {
  ProbeBudget budget = ProbeBudget::AfterMicros(50.0);
  EXPECT_TRUE(budget.has_deadline());
  // Spin: must flip within a bounded number of steps once the 50 us pass.
  bool expired = false;
  for (std::uint64_t i = 0; i < 500'000'000 && !expired; ++i) {
    expired = budget.Exhausted();
  }
  EXPECT_TRUE(expired);
}

TEST(ProbeBudgetTest, FarDeadlineDoesNotExpire) {
  ProbeBudget budget = ProbeBudget::AfterMicros(60'000'000.0);  // one minute
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_FALSE(budget.Exhausted());
  }
}

}  // namespace
}  // namespace util
}  // namespace rdfc
