#include "util/snapshot_vector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace rdfc {
namespace util {
namespace {

TEST(SnapshotVectorTest, PushBackAndRead) {
  SnapshotVector<int> v;
  EXPECT_EQ(v.size(), 0u);
  for (int i = 0; i < 100; ++i) v.PushBack(i * 3);
  ASSERT_EQ(v.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(v.At(i), static_cast<int>(i) * 3);
  }
}

TEST(SnapshotVectorTest, GrowsAcrossChunksAndTables) {
  // Push past several chunk boundaries and past the initial chunk-table
  // capacity (64 chunks * 4096 elements), forcing a table copy-and-publish.
  SnapshotVector<std::uint64_t> v;
  const std::size_t n = SnapshotVector<std::uint64_t>::kChunkSize * 70 + 17;
  for (std::size_t i = 0; i < n; ++i) v.PushBack(i);
  ASSERT_EQ(v.size(), n);
  for (std::size_t i = 0; i < n; i += 997) EXPECT_EQ(v.At(i), i);
  EXPECT_EQ(v.At(n - 1), n - 1);
}

TEST(SnapshotVectorTest, ElementAddressesAreStable) {
  SnapshotVector<std::string> v;
  v.PushBack("first");
  const std::string* p0 = &v.At(0);
  for (int i = 0; i < 200000; ++i) v.PushBack("x" + std::to_string(i));
  EXPECT_EQ(p0, &v.At(0));  // growth never moved the element
  EXPECT_EQ(*p0, "first");
}

TEST(SnapshotVectorTest, EnsureSizeDefaultConstructsAndMutableAt) {
  SnapshotVector<std::atomic<std::uint32_t>> v;
  v.EnsureSize(10);
  ASSERT_EQ(v.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(v.At(i).load(std::memory_order_relaxed), 0u);
  }
  v.MutableAt(7).store(42, std::memory_order_release);
  EXPECT_EQ(v.At(7).load(std::memory_order_acquire), 42u);
  v.EnsureSize(5);  // shrink request is a no-op
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.At(7).load(std::memory_order_acquire), 42u);
}

TEST(SnapshotVectorTest, ConcurrentReadersDuringGrowth) {
  // One writer appends across chunk/table growth while readers continuously
  // validate every published prefix.  Run under TSan, this is the data-race
  // proof for the dictionary's storage contract.
  SnapshotVector<std::uint64_t> v;
  constexpr std::size_t kTotal = 150000;  // crosses tables (64 * 4096 cap)
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  std::atomic<std::uint64_t> reads{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&v, &stop, &reads] {
      std::uint64_t local = 0;
      bool done = false;
      // do-while: on a single core the writer may finish before this thread
      // first runs; every reader still validates the full final prefix once.
      do {
        done = stop.load(std::memory_order_acquire);
        const std::size_t n = v.size();
        for (std::size_t i = 0; i < n; i += 193) {
          // Element value == index: any torn/unpublished read fails here.
          if (v.At(i) != i) {
            ADD_FAILURE() << "torn read at " << i;
            return;
          }
          ++local;
        }
      } while (!done);
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  for (std::size_t i = 0; i < kTotal; ++i) {
    v.PushBack(i);
    if (i % 8192 == 0) std::this_thread::yield();  // let readers interleave
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(v.size(), kTotal);
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace util
}  // namespace rdfc
