#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace rdfc {
namespace util {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(StreamingStatsTest, MeanMinMax) {
  StreamingStats s;
  for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) s.Add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.8);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStatsTest, VarianceMatchesTwoPass) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  std::vector<double> xs;
  StreamingStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(rng);
    xs.push_back(x);
    s.Add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(StreamingStatsTest, Ci95ShrinksWithSamples) {
  StreamingStats small, large;
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(10.0, 2.0);
  for (int i = 0; i < 10; ++i) small.Add(dist(rng));
  for (int i = 0; i < 1000; ++i) large.Add(dist(rng));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  // 1.96 * sigma / sqrt(n) with sigma ~= 2, n = 1000 -> ~0.124.
  EXPECT_NEAR(large.ci95_halfwidth(), 1.96 * large.stddev() / std::sqrt(1000.0),
              1e-12);
}

TEST(StreamingStatsTest, MergeEqualsConcatenation) {
  StreamingStats a, b, all;
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  for (int i = 0; i < 100; ++i) {
    const double x = dist(rng);
    a.Add(x);
    all.Add(x);
  }
  for (int i = 0; i < 37; ++i) {
    const double x = dist(rng);
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmptySides) {
  StreamingStats a, b;
  a.Add(1.0);
  a.Merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(BucketedStatsTest, PaperStyleQuerySizeBuckets) {
  // Figure 3b/4 buckets: 1-5, 6-10, 11-15, ...
  BucketedStats buckets(5, 1);
  buckets.Add(1, 10.0);
  buckets.Add(5, 20.0);
  buckets.Add(6, 30.0);
  buckets.Add(23, 40.0);
  const auto out = buckets.NonEmptyBuckets();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].lo, 1);
  EXPECT_EQ(out[0].hi, 5);
  EXPECT_EQ(out[0].stats.count(), 2u);
  EXPECT_DOUBLE_EQ(out[0].stats.mean(), 15.0);
  EXPECT_EQ(out[1].lo, 6);
  EXPECT_EQ(out[2].lo, 21);
  EXPECT_EQ(buckets.LabelFor(7), "6-10");
  EXPECT_EQ(buckets.LabelFor(21), "21-25");
}

TEST(BucketedStatsTest, IndexSizeBuckets) {
  // Figure 3a buckets: per 5,000 vertices starting at 0.
  BucketedStats buckets(5000);
  buckets.Add(0, 1.0);
  buckets.Add(4999, 2.0);
  buckets.Add(5000, 3.0);
  const auto out = buckets.NonEmptyBuckets();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].stats.count(), 2u);
  EXPECT_EQ(out[1].lo, 5000);
}

}  // namespace
}  // namespace util
}  // namespace rdfc
