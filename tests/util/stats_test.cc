#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace rdfc {
namespace util {
namespace {

TEST(StreamingStatsTest, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(StreamingStatsTest, MeanMinMax) {
  StreamingStats s;
  for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) s.Add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.8);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StreamingStatsTest, VarianceMatchesTwoPass) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  std::vector<double> xs;
  StreamingStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(rng);
    xs.push_back(x);
    s.Add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(StreamingStatsTest, Ci95ShrinksWithSamples) {
  StreamingStats small, large;
  std::mt19937 rng(3);
  std::normal_distribution<double> dist(10.0, 2.0);
  for (int i = 0; i < 10; ++i) small.Add(dist(rng));
  for (int i = 0; i < 1000; ++i) large.Add(dist(rng));
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  // 1.96 * sigma / sqrt(n) with sigma ~= 2, n = 1000 -> ~0.124.
  EXPECT_NEAR(large.ci95_halfwidth(), 1.96 * large.stddev() / std::sqrt(1000.0),
              1e-12);
}

TEST(StreamingStatsTest, MergeEqualsConcatenation) {
  StreamingStats a, b, all;
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(-5.0, 5.0);
  for (int i = 0; i < 100; ++i) {
    const double x = dist(rng);
    a.Add(x);
    all.Add(x);
  }
  for (int i = 0; i < 37; ++i) {
    const double x = dist(rng);
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmptySides) {
  StreamingStats a, b;
  a.Add(1.0);
  a.Merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(BucketedStatsTest, PaperStyleQuerySizeBuckets) {
  // Figure 3b/4 buckets: 1-5, 6-10, 11-15, ...
  BucketedStats buckets(5, 1);
  buckets.Add(1, 10.0);
  buckets.Add(5, 20.0);
  buckets.Add(6, 30.0);
  buckets.Add(23, 40.0);
  const auto out = buckets.NonEmptyBuckets();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].lo, 1);
  EXPECT_EQ(out[0].hi, 5);
  EXPECT_EQ(out[0].stats.count(), 2u);
  EXPECT_DOUBLE_EQ(out[0].stats.mean(), 15.0);
  EXPECT_EQ(out[1].lo, 6);
  EXPECT_EQ(out[2].lo, 21);
  EXPECT_EQ(buckets.LabelFor(7), "6-10");
  EXPECT_EQ(buckets.LabelFor(21), "21-25");
}

TEST(BucketedStatsTest, IndexSizeBuckets) {
  // Figure 3a buckets: per 5,000 vertices starting at 0.
  BucketedStats buckets(5000);
  buckets.Add(0, 1.0);
  buckets.Add(4999, 2.0);
  buckets.Add(5000, 3.0);
  const auto out = buckets.NonEmptyBuckets();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].stats.count(), 2u);
  EXPECT_EQ(out[1].lo, 5000);
}

TEST(LatencyHistogramTest, BucketBoundaries) {
  // Bucket 0 covers [0, 1); bucket i >= 1 covers [2^(i-1), 2^i).
  EXPECT_EQ(LatencyHistogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(0.99), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(-5.0), 0u);  // clamps
  EXPECT_EQ(LatencyHistogram::BucketIndex(1.0), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1.99), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2.0), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3.99), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4.0), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1024.0), 11u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1023.9), 10u);
  // Overflow lands in the last bucket instead of indexing out of range.
  EXPECT_EQ(LatencyHistogram::BucketIndex(1e300),
            LatencyHistogram::kNumBuckets - 1);

  for (std::size_t b = 1; b < LatencyHistogram::kNumBuckets - 1; ++b) {
    const double lo = LatencyHistogram::BucketLowerBound(b);
    const double hi = LatencyHistogram::BucketUpperBound(b);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), b) << "bucket " << b;
    EXPECT_EQ(LatencyHistogram::BucketIndex(std::nextafter(hi, 0.0)), b);
    EXPECT_EQ(LatencyHistogram::BucketIndex(hi), b + 1);
  }
}

TEST(LatencyHistogramTest, CountMeanAndExactSum) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
  h.Add(10.0);
  h.Add(20.0);
  h.Add(30.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum_micros(), 60.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(LatencyHistogramTest, PercentileWithinOneBucket) {
  // Percentiles are interpolated inside the rank's bucket, so any reported
  // value must lie within that bucket's bounds.
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.Add(10.0);    // bucket [8, 16)
  for (int i = 0; i < 10; ++i) h.Add(1000.0);  // bucket [512, 1024)
  EXPECT_GE(h.Percentile(50), 8.0);
  EXPECT_LT(h.Percentile(50), 16.0);
  EXPECT_GE(h.Percentile(99), 512.0);
  EXPECT_LT(h.Percentile(99), 1024.0);
  // p90 sits exactly at the boundary rank: interpolation tops out at the low
  // bucket's upper bound; one rank later jumps to the high bucket.
  EXPECT_LE(h.Percentile(90), 16.0);
  EXPECT_GE(h.Percentile(91), 512.0);
}

TEST(LatencyHistogramTest, PercentileClampsAndMonotone) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  double prev = 0.0;
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
  EXPECT_LE(h.Percentile(100), 1024.0);  // max value 1000 lives in [512,1024)
  EXPECT_EQ(h.Percentile(-3), h.Percentile(0));
  EXPECT_EQ(h.Percentile(200), h.Percentile(100));
}

TEST(LatencyHistogramTest, MergePreservesCountsAndSum) {
  LatencyHistogram a, b;
  a.Add(5.0);
  a.Add(100.0);
  b.Add(7.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum_micros(), 112.0);
  EXPECT_EQ(a.bucket_counts()[LatencyHistogram::BucketIndex(5.0)], 2u);
}

TEST(LatencyHistogramTest, AddBucketCountUsesMidpointSum) {
  // Shard merges carry only bucket counts; the sum is accounted at bucket
  // midpoints, so the mean is approximate but percentiles stay exact.
  LatencyHistogram h;
  const std::size_t bucket = LatencyHistogram::BucketIndex(12.0);  // [8, 16)
  h.AddBucketCount(bucket, 4);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 12.0);  // midpoint of [8, 16)
  EXPECT_GE(h.Percentile(50), 8.0);
  EXPECT_LT(h.Percentile(50), 16.0);
  h.AddBucketCount(bucket, 0);  // no-op
  EXPECT_EQ(h.count(), 4u);
}

}  // namespace
}  // namespace util
}  // namespace rdfc
