#include "util/string_util.h"

#include <gtest/gtest.h>

namespace rdfc {
namespace util {
namespace {

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("htt", "http://"));
  EXPECT_TRUE(EndsWith("file.ttl", ".ttl"));
  EXPECT_FALSE(EndsWith("ttl", ".ttl"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\nx y\r "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.0093, 4), "0.0093");
  EXPECT_EQ(FormatDouble(1.5, 1), "1.5");
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1536378), "1,536,378");
}

}  // namespace
}  // namespace util
}  // namespace rdfc
