#include "util/failpoint.h"

#include <gtest/gtest.h>

// The registry exists only in -DRDFC_FAILPOINTS=ON builds (the CI asan job);
// elsewhere this suite compiles to the macro check alone.

namespace rdfc {
namespace util {
namespace {

TEST(FailpointMacroTest, CompiledOutMacroIsFalse) {
#ifndef RDFC_FAILPOINTS
  // The macro must fold to a constant false so sites vanish from release
  // builds entirely.
  EXPECT_FALSE(RDFC_FAILPOINT("no.such.site"));
#endif
}

#ifdef RDFC_FAILPOINTS

TEST(FailpointRegistryTest, UnconfiguredSiteNeverFires) {
  auto& registry = FailpointRegistry::Instance();
  registry.Reset();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(registry.ShouldFail("quiet.site"));
  }
  EXPECT_EQ(registry.FiredCount("quiet.site"), 0u);
  EXPECT_EQ(registry.EvaluatedCount("quiet.site"), 1000u);
  registry.Reset();
}

TEST(FailpointRegistryTest, ProbabilityOneFiresAlways) {
  auto& registry = FailpointRegistry::Instance();
  ASSERT_TRUE(registry.Configure("always.site=1", 7).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(registry.ShouldFail("always.site"));
  }
  EXPECT_EQ(registry.FiredCount("always.site"), 100u);
  registry.Reset();
}

TEST(FailpointRegistryTest, SameSeedSameSchedule) {
  auto& registry = FailpointRegistry::Instance();
  auto draw = [&registry]() {
    std::vector<bool> fired;
    EXPECT_TRUE(registry.Configure("det.site=0.37", 123).ok());
    fired.reserve(200);
    for (int i = 0; i < 200; ++i) {
      fired.push_back(registry.ShouldFail("det.site"));
    }
    return fired;
  };
  const std::vector<bool> first = draw();
  const std::vector<bool> second = draw();
  EXPECT_EQ(first, second);
  EXPECT_GT(registry.FiredCount("det.site"), 0u);
  EXPECT_LT(registry.FiredCount("det.site"), 200u);
  registry.Reset();
}

TEST(FailpointRegistryTest, SitesDrawIndependentStreams) {
  auto& registry = FailpointRegistry::Instance();
  // Interleaving evaluations of a second site must not perturb the first
  // site's schedule — each has its own engine.
  ASSERT_TRUE(registry.Configure("a.site=0.5,b.site=0.5", 99).ok());
  std::vector<bool> a_alone;
  for (int i = 0; i < 100; ++i) a_alone.push_back(registry.ShouldFail("a.site"));
  ASSERT_TRUE(registry.Configure("a.site=0.5,b.site=0.5", 99).ok());
  std::vector<bool> a_mixed;
  for (int i = 0; i < 100; ++i) {
    (void)registry.ShouldFail("b.site");
    a_mixed.push_back(registry.ShouldFail("a.site"));
  }
  EXPECT_EQ(a_alone, a_mixed);
  registry.Reset();
}

TEST(FailpointRegistryTest, ConfigureRejectsMalformedSpecs) {
  auto& registry = FailpointRegistry::Instance();
  EXPECT_FALSE(registry.Configure("no-equals", 1).ok());
  EXPECT_FALSE(registry.Configure("site=1.5", 1).ok());
  EXPECT_FALSE(registry.Configure("site=-0.1", 1).ok());
  EXPECT_FALSE(registry.Configure("site=abc", 1).ok());
  EXPECT_TRUE(registry.Configure("", 1).ok());
  registry.Reset();
}

#endif  // RDFC_FAILPOINTS

}  // namespace
}  // namespace util
}  // namespace rdfc
