#include "util/status.h"

#include <gtest/gtest.h>

namespace rdfc {
namespace util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "unexpected token");
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

namespace helpers {
Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}
Status Run(int x, int* out) {
  RDFC_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}
}  // namespace helpers

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  int out = 0;
  EXPECT_TRUE(helpers::Run(21, &out).ok());
  EXPECT_EQ(out, 42);
  Status failed = helpers::Run(-1, &out);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace util
}  // namespace rdfc
