#include "util/union_find.h"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace rdfc {
namespace util {
namespace {

TEST(UnionFindTest, SingletonsInitially) {
  UnionFind uf(4);
  EXPECT_EQ(uf.num_sets(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(3, 4);
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_TRUE(uf.Same(0, 1));
  EXPECT_TRUE(uf.Same(3, 4));
  EXPECT_FALSE(uf.Same(0, 3));
  EXPECT_EQ(uf.SetSize(1), 2u);
  uf.Union(1, 4);
  EXPECT_EQ(uf.num_sets(), 2u);
  EXPECT_EQ(uf.SetSize(0), 4u);
  EXPECT_TRUE(uf.Same(0, 3));
}

TEST(UnionFindTest, UnionIsIdempotent) {
  UnionFind uf(3);
  const std::uint32_t root = uf.Union(0, 1);
  EXPECT_EQ(uf.Union(0, 1), root);
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(UnionFindTest, AddGrowsStructure) {
  UnionFind uf(2);
  const std::uint32_t id = uf.Add();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(uf.num_sets(), 3u);
  uf.Union(id, 0);
  EXPECT_TRUE(uf.Same(2, 0));
}

TEST(UnionFindTest, ResetRestoresSingletons) {
  UnionFind uf(3);
  uf.Union(0, 2);
  uf.Reset(3);
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_FALSE(uf.Same(0, 2));
}

// Property: after any union sequence, Same() agrees with a naive
// reachability closure.
TEST(UnionFindTest, AgreesWithNaiveClosure) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 20;
    UnionFind uf(n);
    std::vector<std::size_t> naive(n);
    std::iota(naive.begin(), naive.end(), 0);
    auto naive_find = [&](std::size_t x) {
      while (naive[x] != x) x = naive[x];
      return x;
    };
    for (int e = 0; e < 15; ++e) {
      const auto a = static_cast<std::uint32_t>(rng() % n);
      const auto b = static_cast<std::uint32_t>(rng() % n);
      uf.Union(a, b);
      naive[naive_find(a)] = naive_find(b);
    }
    std::size_t naive_sets = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (naive_find(i) == i) ++naive_sets;
    }
    EXPECT_EQ(uf.num_sets(), naive_sets);
    for (std::uint32_t a = 0; a < n; ++a) {
      for (std::uint32_t b = 0; b < n; ++b) {
        EXPECT_EQ(uf.Same(a, b), naive_find(a) == naive_find(b));
      }
    }
  }
}

}  // namespace
}  // namespace util
}  // namespace rdfc
