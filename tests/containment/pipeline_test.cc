#include "containment/pipeline.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "containment/homomorphism.h"

namespace rdfc {
namespace containment {
namespace {

using rdfc::testing::ParseOrDie;
using rdfc::testing::Var;

class PipelineTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }

  CheckOutcome CheckQW(const std::string& q_text, const std::string& w_text,
                       CheckOptions options = {}) {
    auto result = Check(Q(q_text), Q(w_text), &dict_, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).value() : CheckOutcome{};
  }

  rdf::TermDictionary dict_;
};

TEST_F(PipelineTest, PaperRunningExamplePTimePath) {
  // Q is an f-graph; the whole decision stays in the PTime path.
  CheckOptions options;
  options.max_mappings = 4;
  const CheckOutcome outcome = CheckQW(
      R"(SELECT ?sN ?aN WHERE {
          ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN .
          ?alb :artist ?art . ?art a :MusicalArtist . })",
      R"(SELECT ?y ?w WHERE {
          ?x :name ?y . ?x :fromAlbum ?z . ?z :name ?w . })",
      options);
  EXPECT_TRUE(outcome.contained);
  EXPECT_TRUE(outcome.filter_passed);
  EXPECT_FALSE(outcome.needed_np);
  ASSERT_EQ(outcome.mappings.size(), 1u);
  // Mapping is reported in W's original variable space.
  EXPECT_EQ(outcome.mappings[0].at(Var(&dict_, "x")), Var(&dict_, "sng"));
  EXPECT_EQ(outcome.mappings[0].at(Var(&dict_, "w")), Var(&dict_, "aN"));
}

TEST_F(PipelineTest, NonContainmentDecidedInPTime) {
  const CheckOutcome outcome =
      CheckQW("ASK { ?x :p ?y . }", "ASK { ?x :q ?y . }");
  EXPECT_FALSE(outcome.contained);
  EXPECT_FALSE(outcome.filter_passed);
  EXPECT_FALSE(outcome.needed_np);
}

TEST_F(PipelineTest, Example53WitnessThenNp) {
  // Figure 2 / Example 5.3: probe merges {?alb,?sng}; both instantiations
  // satisfy W, so containment holds and NP verification runs.
  CheckOptions options;
  options.max_mappings = 8;
  const CheckOutcome outcome = CheckQW(
      R"(ASK { ?alb :artist ?art . ?sng :artist ?art .
               ?sng :name ?aN . ?art a :MusicalArtist . })",
      R"(ASK { ?x1 :artist ?x2 . ?x2 a :MusicalArtist . })", options);
  EXPECT_TRUE(outcome.contained);
  EXPECT_TRUE(outcome.needed_np);
  // Example 5.3: exactly two concrete mappings σ1, σ2.
  EXPECT_EQ(outcome.mappings.size(), 2u);
}

TEST_F(PipelineTest, WitnessFilterPassesButNpRefutes) {
  // Classic false-positive for the witness: Q's witness merges ?a,?b, and W
  // requires a vertex with both :p-successor values — no concrete σ exists.
  // Q: x -p-> a, x -p-> b, a -q-> c, b -r-> d.  Witness merges {a,b} (and
  // then nothing else).  W asks for one vertex with both :q and :r edges.
  const CheckOutcome outcome = CheckQW(
      "ASK { ?x :p ?a . ?x :p ?b . ?a :q ?c . ?b :r ?d . }",
      "ASK { ?x :p ?y . ?y :q ?c . ?y :r ?d . }");
  EXPECT_TRUE(outcome.filter_passed) << "witness should over-approximate";
  EXPECT_TRUE(outcome.needed_np);
  EXPECT_FALSE(outcome.contained);
  // Ground truth agrees.
  EXPECT_FALSE(IsContainedIn(
      Q("ASK { ?x :p ?a . ?x :p ?b . ?a :q ?c . ?b :r ?d . }"),
      Q("ASK { ?x :p ?y . ?y :q ?c . ?y :r ?d . }"), dict_));
}

TEST_F(PipelineTest, VerifyFalseReportsFilterOnly) {
  CheckOptions options;
  options.verify = false;
  const CheckOutcome outcome = CheckQW(
      "ASK { ?x :p ?a . ?x :p ?b . ?a :q ?c . ?b :r ?d . }",
      "ASK { ?x :p ?y . ?y :q ?c . ?y :r ?d . }", options);
  EXPECT_TRUE(outcome.filter_passed);
  EXPECT_FALSE(outcome.contained);
  EXPECT_FALSE(outcome.needed_np);
}

TEST_F(PipelineTest, VariablePredicateInW) {
  // Section 5.2: W has a var-predicate pattern bridging two components.
  const CheckOutcome a = CheckQW(
      "ASK { ?s :p ?t . ?t :link ?u . ?u :q ?v . }",
      "ASK { ?x :p ?y . ?y ?vp ?z . ?z :q ?w . }");
  EXPECT_TRUE(a.contained);
  EXPECT_TRUE(a.needed_np);
  // Removing the bridge in Q breaks containment (no p' edge to bind ?vp).
  const CheckOutcome b = CheckQW(
      "ASK { ?s :p ?t . ?u :q ?v . }",
      "ASK { ?x :p ?y . ?y ?vp ?z . ?z :q ?w . }");
  EXPECT_FALSE(b.contained);
}

TEST_F(PipelineTest, WOnlyVarPredicates) {
  const CheckOutcome outcome =
      CheckQW("ASK { ?s :p ?t . }", "ASK { ?x ?v ?y . }");
  EXPECT_TRUE(outcome.contained);
  const CheckOutcome neg =
      CheckQW("ASK { ?s :p ?t . }", "ASK { ?x ?v ?x . }");
  EXPECT_FALSE(neg.contained);
}

TEST_F(PipelineTest, EmptyWContainsAll) {
  query::BgpQuery empty_w;
  auto result = Check(Q("ASK { ?x :p ?y }"), empty_w, &dict_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained);
}

TEST_F(PipelineTest, EmptyProbeContainedOnlyInEmpty) {
  query::BgpQuery empty_q;
  auto result = Check(empty_q, Q("ASK { ?x :p ?y }"), &dict_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->contained);
}

TEST_F(PipelineTest, ProjectionIgnoredForBooleanContainment) {
  EXPECT_TRUE(Contains(Q("SELECT ?a WHERE { ?a :p ?b }"),
                       Q("SELECT ?b WHERE { ?a :p ?b }"), &dict_));
}

TEST_F(PipelineTest, SelfContainment) {
  const char* texts[] = {
      "ASK { ?x :p ?y . }",
      "ASK { ?x :p ?y . ?y :q ?z . ?z :r ?x . }",
      "ASK { ?x :p ?a . ?x :p ?b . }",
      "ASK { ?x ?v ?y . }",
      "ASK { ?a :p ?b . ?c :q ?d . }",
  };
  for (const char* text : texts) {
    EXPECT_TRUE(Contains(Q(text), Q(text), &dict_)) << text;
  }
}

TEST_F(PipelineTest, AgreesWithGroundTruthOnTrickyPairs) {
  struct Case {
    const char* q;
    const char* w;
  };
  const Case cases[] = {
      {"ASK { ?x :p ?y . ?y :p ?z . }", "ASK { ?a :p ?b . }"},
      {"ASK { ?x :p ?y . }", "ASK { ?a :p ?b . ?b :p ?c . }"},
      {"ASK { ?x :p ?x . }", "ASK { ?a :p ?b . ?b :p ?a . }"},
      {"ASK { ?x :p ?y . ?y :p ?x . }", "ASK { ?a :p ?a . }"},
      {"ASK { ?x :p :c . ?y :q :c . }", "ASK { ?a :p ?v . ?b :q ?v . }"},
      {"ASK { ?x :p :c . ?y :q :d . }", "ASK { ?a :p ?v . ?b :q ?v . }"},
      {"ASK { ?x a :A . ?x a :B . }", "ASK { ?y a :A . }"},
      {"ASK { ?x a :A . }", "ASK { ?y a :A . ?y a :B . }"},
      {"ASK { ?x :p ?y . ?z :p ?y . ?x :q ?w . }", "ASK { ?a :p ?b . ?a :q ?c . }"},
  };
  for (const Case& c : cases) {
    const bool expected = IsContainedIn(Q(c.q), Q(c.w), dict_);
    EXPECT_EQ(Contains(Q(c.q), Q(c.w), &dict_), expected)
        << "Q = " << c.q << "\nW = " << c.w;
  }
}

}  // namespace
}  // namespace containment
}  // namespace rdfc
