#include "containment/fgraph_matcher.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "query/analysis.h"

namespace rdfc {
namespace containment {
namespace {

using rdfc::testing::Iri;
using rdfc::testing::ParseOrDie;
using rdfc::testing::Var;

class FGraphMatcherTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }

  std::vector<query::Token> Tokens(const query::BgpQuery& w) {
    query::CanonicalMap canonical(&dict_);
    auto result = query::SerialiseQuery(w, &dict_, &canonical);
    EXPECT_TRUE(result.ok());
    return std::move(result).value().tokens;
  }

  rdf::TermDictionary dict_;
};

TEST_F(FGraphMatcherTest, ViewLookupsFollowWitness) {
  const query::BgpQuery q = Q("ASK { ?x :p ?y . ?y :q :c . }");
  FGraphView view(query::BuildWitness(q), dict_);
  EXPECT_EQ(view.num_vertices(), 3u);
  const std::uint32_t x = view.ClassOfTerm(Var(&dict_, "x"));
  const std::uint32_t y = view.ClassOfTerm(Var(&dict_, "y"));
  const std::uint32_t c = view.ClassOfTerm(Iri(&dict_, "c"));
  ASSERT_NE(x, FGraphView::kInvalidVertex);
  EXPECT_EQ(view.Out(x, Iri(&dict_, "p")), y);
  EXPECT_EQ(view.In(y, Iri(&dict_, "p")), x);
  EXPECT_EQ(view.Out(y, Iri(&dict_, "q")), c);
  EXPECT_EQ(view.Out(x, Iri(&dict_, "q")), FGraphView::kInvalidVertex);
  EXPECT_EQ(view.ClassOfTerm(Iri(&dict_, "p")), FGraphView::kInvalidVertex);
}

TEST_F(FGraphMatcherTest, Example34StepByStep) {
  // Example 3.4: matching serialised W against Q starting at ?sng.
  const query::BgpQuery q = Q(R"(ASK {
      ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN .
      ?alb :artist ?art . ?art a :MusicalArtist . })");
  const query::BgpQuery w = Q(R"(ASK {
      ?x :name ?y . ?x :fromAlbum ?z . ?z :name ?w . })");
  FGraphView view(query::BuildWitness(q), dict_);
  const std::vector<query::Token> tokens = Tokens(w);

  const std::uint32_t sng = view.ClassOfTerm(Var(&dict_, "sng"));
  auto from_sng = MatchTokensFrom(view, dict_, tokens, sng);
  ASSERT_EQ(from_sng.size(), 1u);
  // σ maps W's canonical variables onto Q's classes.
  const MatchState& st = from_sng[0];
  EXPECT_EQ(st.sigma.at(dict_.CanonicalVariable(1)), sng);

  // Anchoring anywhere else fails: only ?sng has both name and fromAlbum.
  const std::uint32_t alb = view.ClassOfTerm(Var(&dict_, "alb"));
  EXPECT_TRUE(MatchTokensFrom(view, dict_, tokens, alb).empty());
  const std::uint32_t art = view.ClassOfTerm(Var(&dict_, "art"));
  EXPECT_TRUE(MatchTokensFrom(view, dict_, tokens, art).empty());

  // MatchTokens over all classes finds exactly the one mapping.
  EXPECT_EQ(MatchTokens(view, dict_, tokens).size(), 1u);
}

TEST_F(FGraphMatcherTest, MissingEdgeFails) {
  const query::BgpQuery q = Q("ASK { ?a :p ?b . }");
  FGraphView view(query::BuildWitness(q), dict_);
  const auto tokens = Tokens(Q("ASK { ?x :p ?y . ?y :q ?z . }"));
  EXPECT_TRUE(MatchTokens(view, dict_, tokens).empty());
}

TEST_F(FGraphMatcherTest, ConstantAnchorsAndTargets) {
  const query::BgpQuery q = Q("ASK { :e :p ?y . ?y :q :f . }");
  FGraphView view(query::BuildWitness(q), dict_);
  // W anchored (after serialisation) at its highest-degree vertex; constants
  // in W must land on the matching constants of Q.
  EXPECT_EQ(MatchTokens(view, dict_, Tokens(Q("ASK { :e :p ?b . }"))).size(),
            1u);
  EXPECT_TRUE(
      MatchTokens(view, dict_, Tokens(Q("ASK { :wrong :p ?b . }"))).empty());
  EXPECT_EQ(
      MatchTokens(view, dict_, Tokens(Q("ASK { ?a :q :f . }"))).size(), 1u);
  EXPECT_TRUE(
      MatchTokens(view, dict_, Tokens(Q("ASK { ?a :q :e . }"))).empty());
}

TEST_F(FGraphMatcherTest, CycleClosingPairChecksConsistency) {
  // W is a 2-cycle; Q has the same 2-cycle -> match, but a 2-path does not.
  const auto tokens = Tokens(Q("ASK { ?x :p ?y . ?y :q ?x . }"));
  {
    FGraphView view(query::BuildWitness(Q("ASK { ?a :p ?b . ?b :q ?a . }")), dict_);
    EXPECT_FALSE(MatchTokens(view, dict_, tokens).empty());
  }
  {
    FGraphView view(query::BuildWitness(
        Q("ASK { ?a :p ?b . ?b :q ?c . ?c :r ?d . }")), dict_);
    EXPECT_TRUE(MatchTokens(view, dict_, tokens).empty());
  }
}

TEST_F(FGraphMatcherTest, SelfLoopMatching) {
  const auto tokens = Tokens(Q("ASK { ?x :p ?x . }"));
  {
    FGraphView view(query::BuildWitness(Q("ASK { ?a :p ?a . }")), dict_);
    EXPECT_EQ(MatchTokens(view, dict_, tokens).size(), 1u);
  }
  {
    FGraphView view(query::BuildWitness(Q("ASK { ?a :p ?b . }")), dict_);
    EXPECT_TRUE(MatchTokens(view, dict_, tokens).empty());
  }
}

TEST_F(FGraphMatcherTest, MatchingAgainstMergedWitnessClasses) {
  // Probe is non-f-graph; its witness merges ?alb/?sng (Example 5.3) and the
  // serialised W matches with σ_w(?x1) = that merged class.
  const query::BgpQuery probe = Q(R"(ASK {
      ?alb :artist ?art . ?sng :artist ?art . ?art a :MusicalArtist . })");
  FGraphView view(query::BuildWitness(probe), dict_);
  const auto tokens =
      Tokens(Q("ASK { ?x :artist ?y . ?y a :MusicalArtist . }"));
  const auto states = MatchTokens(view, dict_, tokens);
  ASSERT_EQ(states.size(), 1u);
  const std::uint32_t merged = view.ClassOfTerm(Var(&dict_, "alb"));
  EXPECT_EQ(merged, view.ClassOfTerm(Var(&dict_, "sng")));
  EXPECT_EQ(view.witness().class_members[merged].size(), 2u);
  // One of W's two variables must land on the merged {?alb, ?sng} class and
  // the other on ?art's class (which variable is ?x1 depends on the anchor).
  const std::uint32_t art = view.ClassOfTerm(Var(&dict_, "art"));
  const std::uint32_t m1 = states[0].sigma.at(dict_.CanonicalVariable(1));
  const std::uint32_t m2 = states[0].sigma.at(dict_.CanonicalVariable(2));
  EXPECT_TRUE((m1 == merged && m2 == art) || (m1 == art && m2 == merged));
}

TEST_F(FGraphMatcherTest, SeparatorForksOverAllClasses) {
  // Two-component W: second component anchors anywhere.
  const query::BgpQuery probe =
      Q("ASK { ?a :p ?b . ?c :q ?d . ?e :q ?f . ?a :r ?c . ?a :s ?e . }");
  FGraphView view(query::BuildWitness(probe), dict_);
  const auto tokens = Tokens(Q("ASK { ?x :p ?y . ?u :q ?v . }"));
  // Expect: anchor1 must map to ?a's class; component 2 (?u :q ?v) maps to
  // either (?c,?d) or (?e,?f) -> 2 surviving states.
  EXPECT_EQ(MatchTokens(view, dict_, tokens).size(), 2u);
}

TEST_F(FGraphMatcherTest, StateIsolationOnFork) {
  // After a fork, sibling states must not share σ mutations.
  const query::BgpQuery probe = Q("ASK { ?a :p ?b . ?c :p ?d . }");
  FGraphView view(query::BuildWitness(probe), dict_);
  const auto tokens = Tokens(Q("ASK { ?x :p ?y . ?u :p ?v . }"));
  const auto states = MatchTokens(view, dict_, tokens);
  // Component anchors: {a,c} x {a,c} = 4 combinations.
  EXPECT_EQ(states.size(), 4u);
}

}  // namespace
}  // namespace containment
}  // namespace rdfc
