#include "containment/explain.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "containment/pipeline.h"

namespace rdfc {
namespace containment {
namespace {

using rdfc::testing::ParseOrDie;

class ExplainTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  rdf::TermDictionary dict_;
};

TEST_F(ExplainTest, PTimePositiveMentionsMapping) {
  const std::string out = ExplainContainment(
      Q(R"(ASK { ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN . })"),
      Q("ASK { ?x :name ?y . }"), &dict_);
  EXPECT_NE(out.find("f-graph"), std::string::npos);
  EXPECT_NE(out.find("ND-degree 1"), std::string::npos);
  EXPECT_NE(out.find("pure PTime"), std::string::npos);
  EXPECT_NE(out.find("verdict: CONTAINED"), std::string::npos);
  EXPECT_NE(out.find("containment mapping"), std::string::npos);
}

TEST_F(ExplainTest, FilterRejectionNamedAsProposition51) {
  const std::string out = ExplainContainment(
      Q("ASK { ?x :p ?y . }"), Q("ASK { ?x :q ?y . }"), &dict_);
  EXPECT_NE(out.find("0 surviving"), std::string::npos);
  EXPECT_NE(out.find("NOT contained"), std::string::npos);
  EXPECT_NE(out.find("Proposition 5.1"), std::string::npos);
}

TEST_F(ExplainTest, NpPathShowsMergedClassesAndVerdict) {
  // Witness filter passes but verification refutes (the classic false
  // positive from tests/containment/pipeline_test.cc).
  const std::string out = ExplainContainment(
      Q("ASK { ?x :p ?a . ?x :p ?b . ?a :q ?c . ?b :r ?d . }"),
      Q("ASK { ?x :p ?y . ?y :q ?c . ?y :r ?d . }"), &dict_);
  EXPECT_NE(out.find("NOT an f-graph"), std::string::npos);
  EXPECT_NE(out.find("merged class"), std::string::npos);
  EXPECT_NE(out.find("NP verification"), std::string::npos);
  EXPECT_NE(out.find("verdict: NOT contained"), std::string::npos);
}

TEST_F(ExplainTest, VerdictAlwaysAgreesWithCheck) {
  const char* pairs[][2] = {
      {"ASK { ?x :p ?y . ?y :q ?z . }", "ASK { ?a :p ?b . }"},
      {"ASK { ?x :p ?y . }", "ASK { ?a :p ?b . ?b :q ?c . }"},
      {"ASK { ?x :p ?a . ?x :p ?b . }", "ASK { ?s :p ?o . }"},
      {"ASK { ?x :p ?y . }", "ASK { ?a ?v ?b . }"},
  };
  for (const auto& pair : pairs) {
    const bool contained = Contains(Q(pair[0]), Q(pair[1]), &dict_);
    const std::string out =
        ExplainContainment(Q(pair[0]), Q(pair[1]), &dict_);
    if (contained) {
      EXPECT_NE(out.find("verdict: CONTAINED"), std::string::npos)
          << pair[0] << " vs " << pair[1] << "\n" << out;
    } else {
      EXPECT_NE(out.find("verdict: NOT contained"), std::string::npos)
          << pair[0] << " vs " << pair[1] << "\n" << out;
    }
  }
}

TEST_F(ExplainTest, VarPredOnlyWMentionsVacuousFilter) {
  const std::string out = ExplainContainment(
      Q("ASK { ?x :p ?y . }"), Q("ASK { ?a ?v ?b . }"), &dict_);
  EXPECT_NE(out.find("no indexable skeleton"), std::string::npos);
  EXPECT_NE(out.find("vacuous"), std::string::npos);
  EXPECT_NE(out.find("verdict: CONTAINED"), std::string::npos);
}

}  // namespace
}  // namespace containment
}  // namespace rdfc
