#include "containment/homomorphism.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace rdfc {
namespace containment {
namespace {

using rdfc::testing::Iri;
using rdfc::testing::ParseOrDie;
using rdfc::testing::Var;

class HomomorphismTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  rdf::TermDictionary dict_;
};

TEST_F(HomomorphismTest, PaperRunningExample) {
  // Example 2.1: Q ⊑ W via σ(?x)=?sng, σ(?y)=?sN, σ(?z)=?alb, σ(?w)=?aN.
  const query::BgpQuery q = Q(R"(SELECT ?sN ?aN WHERE {
      ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN .
      ?alb :artist ?art . ?art a :MusicalArtist . })");
  const query::BgpQuery w = Q(R"(SELECT ?y ?w WHERE {
      ?x :name ?y . ?x :fromAlbum ?z . ?z :name ?w . })");
  EXPECT_TRUE(IsContainedIn(q, w, dict_));
  EXPECT_FALSE(IsContainedIn(w, q, dict_));  // not the other way

  HomomorphismOptions options;
  options.max_results = 10;
  const HomomorphismResult result = FindHomomorphisms(w, q, dict_, options);
  ASSERT_EQ(result.mappings.size(), 1u);
  const VarMapping& sigma = result.mappings[0];
  EXPECT_EQ(sigma.at(Var(&dict_, "x")), Var(&dict_, "sng"));
  EXPECT_EQ(sigma.at(Var(&dict_, "y")), Var(&dict_, "sN"));
  EXPECT_EQ(sigma.at(Var(&dict_, "z")), Var(&dict_, "alb"));
  EXPECT_EQ(sigma.at(Var(&dict_, "w")), Var(&dict_, "aN"));
}

TEST_F(HomomorphismTest, ConstantsMustMatchExactly) {
  const query::BgpQuery q = Q("ASK { ?x :p :a . }");
  EXPECT_TRUE(IsContainedIn(q, Q("ASK { ?s :p :a . }"), dict_));
  EXPECT_FALSE(IsContainedIn(q, Q("ASK { ?s :p :b . }"), dict_));
  // Variables in W can map to constants in Q.
  EXPECT_TRUE(IsContainedIn(q, Q("ASK { ?s :p ?o . }"), dict_));
  // But constants in W cannot map to variables in Q.
  EXPECT_FALSE(IsContainedIn(Q("ASK { ?x :p ?y . }"),
                             Q("ASK { ?s :p :a . }"), dict_));
}

TEST_F(HomomorphismTest, PaperRelatedWorkCycleExample) {
  // Section 8: indexed W = {(?x,r1,?y),(?y,r2,?z)} contains the cyclic
  // Q = {(?x',r1,?y'),(?y',r2,?x')} via σ(?z)=?x' — a case subgraph
  // isomorphism would miss.
  const query::BgpQuery w = Q("ASK { ?x :r1 ?y . ?y :r2 ?z . }");
  const query::BgpQuery q = Q("ASK { ?xp :r1 ?yp . ?yp :r2 ?xp . }");
  HomomorphismOptions options;
  options.max_results = 4;
  const HomomorphismResult result = FindHomomorphisms(w, q, dict_, options);
  ASSERT_EQ(result.mappings.size(), 1u);
  EXPECT_EQ(result.mappings[0].at(Var(&dict_, "x")), Var(&dict_, "xp"));
  EXPECT_EQ(result.mappings[0].at(Var(&dict_, "z")), Var(&dict_, "xp"));
}

TEST_F(HomomorphismTest, MultipleMappingsEnumerated) {
  // W's single pattern maps onto any of Q's three.
  const query::BgpQuery q = Q("ASK { ?a :p ?b . ?b :p ?c . ?c :p ?d . }");
  const query::BgpQuery w = Q("ASK { ?x :p ?y . }");
  HomomorphismOptions options;
  options.max_results = 100;
  EXPECT_EQ(FindHomomorphisms(w, q, dict_, options).mappings.size(), 3u);
}

TEST_F(HomomorphismTest, VariablePredicates) {
  const query::BgpQuery q = Q("ASK { ?x :p ?y . ?x a :C . }");
  EXPECT_TRUE(IsContainedIn(q, Q("ASK { ?s ?v ?o . }"), dict_));
  // The var predicate can bind to rdf:type too.
  HomomorphismOptions options;
  options.max_results = 100;
  const auto result =
      FindHomomorphisms(Q("ASK { ?s ?v ?o . }"), q, dict_, options);
  EXPECT_EQ(result.mappings.size(), 2u);
  // Repeated predicate variable must bind consistently.
  EXPECT_FALSE(IsContainedIn(Q("ASK { ?x :p ?y . ?y :q ?z . }"),
                             Q("ASK { ?a ?v ?b . ?b ?v ?c . }"), dict_));
  EXPECT_TRUE(IsContainedIn(Q("ASK { ?x :p ?y . ?y :p ?z . }"),
                            Q("ASK { ?a ?v ?b . ?b ?v ?c . }"), dict_));
}

TEST_F(HomomorphismTest, RestrictedSearchHonoursAllowedSets) {
  const query::BgpQuery q = Q("ASK { ?a :p ?b . ?c :p ?d . }");
  const query::BgpQuery w = Q("ASK { ?x :p ?y . }");
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> allowed;
  allowed[Var(&dict_, "x")] = {Var(&dict_, "c")};
  HomomorphismOptions options;
  options.max_results = 10;
  const auto result =
      FindHomomorphismsRestricted(w, q, dict_, allowed, options);
  ASSERT_EQ(result.mappings.size(), 1u);
  EXPECT_EQ(result.mappings[0].at(Var(&dict_, "x")), Var(&dict_, "c"));
  // Empty allowed set kills all mappings.
  allowed[Var(&dict_, "x")] = {};
  EXPECT_FALSE(
      FindHomomorphismsRestricted(w, q, dict_, allowed, options).found());
}

TEST_F(HomomorphismTest, EmptyWContainsEverything) {
  query::BgpQuery empty_w;
  EXPECT_TRUE(FindHomomorphisms(empty_w, Q("ASK { ?x :p ?y }"), dict_).found());
}

TEST_F(HomomorphismTest, StepCapReportsNonExhaustive) {
  const query::BgpQuery q = Q(R"(ASK {
      ?a :p ?b . ?b :p ?c . ?c :p ?d . ?d :p ?e . ?e :p ?f . })");
  const query::BgpQuery w = Q("ASK { ?x :p ?y . ?z :p ?u . ?v :p ?t . }");
  HomomorphismOptions options;
  options.max_results = 1000000;
  options.max_steps = 3;
  const auto result = FindHomomorphisms(w, q, dict_, options);
  EXPECT_FALSE(result.exhausted);
  EXPECT_LE(result.steps, 3u);
}

TEST_F(HomomorphismTest, ProjectionNotConsidered) {
  // Boolean containment: SELECT clauses are ignored.
  const query::BgpQuery q = Q("SELECT ?x WHERE { ?x :p ?y . }");
  const query::BgpQuery w = Q("SELECT ?y WHERE { ?x :p ?y . }");
  EXPECT_TRUE(IsContainedIn(q, w, dict_));
}

}  // namespace
}  // namespace containment
}  // namespace rdfc
