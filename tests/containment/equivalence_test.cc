#include "containment/equivalence.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "eval/evaluator.h"
#include "rdf/graph.h"
#include "util/rng.h"

namespace rdfc {
namespace containment {
namespace {

using rdfc::testing::ParseOrDie;

class EquivalenceTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  rdf::TermDictionary dict_;
};

TEST_F(EquivalenceTest, RenamedQueriesAreBooleanEquivalent) {
  EXPECT_TRUE(AreEquivalentBoolean(Q("ASK { ?x :p ?y . ?y :q ?z . }"),
                                   Q("ASK { ?a :p ?b . ?b :q ?c . }"),
                                   dict_));
}

TEST_F(EquivalenceTest, RedundantPatternIsBooleanEquivalent) {
  // The second pattern folds onto the first.
  EXPECT_TRUE(AreEquivalentBoolean(Q("ASK { ?x :p ?y . }"),
                                   Q("ASK { ?x :p ?y . ?x :p ?z . }"),
                                   dict_));
}

TEST_F(EquivalenceTest, StrictContainmentIsNotEquivalence) {
  EXPECT_FALSE(AreEquivalentBoolean(Q("ASK { ?x :p ?y . ?y :q ?z . }"),
                                    Q("ASK { ?x :p ?y . }"), dict_));
}

TEST_F(EquivalenceTest, ProjectionChangesEquivalence) {
  // Boolean-equivalent but the distinguished variable differs, so the
  // answer sets differ: SELECT ?x vs SELECT ?y over (?x :p ?y).
  const query::BgpQuery a = Q("SELECT ?x WHERE { ?x :p ?y . }");
  const query::BgpQuery b = Q("SELECT ?y WHERE { ?x :p ?y . }");
  EXPECT_TRUE(AreEquivalentBoolean(a, b, dict_));
  EXPECT_FALSE(AreEquivalent(a, b, dict_));
  EXPECT_TRUE(AreEquivalent(a, a, dict_));
}

TEST_F(EquivalenceTest, SameProjectionRedundancy) {
  const query::BgpQuery a = Q("SELECT ?x WHERE { ?x :p ?y . }");
  const query::BgpQuery b = Q("SELECT ?x WHERE { ?x :p ?y . ?x :p ?z . }");
  EXPECT_TRUE(AreEquivalent(a, b, dict_));
}

TEST_F(EquivalenceTest, FixedVariablesBlockFolding) {
  // With ?y distinguished, (?x :p ?y)(?x :p ?z) cannot fold ?z onto ?y-only
  // when ?z is ALSO distinguished.
  const query::BgpQuery a = Q("SELECT ?y ?z WHERE { ?x :p ?y . ?x :p ?z . }");
  const query::BgpQuery b = Q("SELECT ?y ?z WHERE { ?x :p ?y . ?x :q ?z . }");
  EXPECT_FALSE(AreEquivalent(a, b, dict_));
}

TEST_F(EquivalenceTest, MinimizeDropsFoldablePattern) {
  const query::BgpQuery q = Q("SELECT ?y WHERE { ?x :p ?y . ?x :p ?z . }");
  const query::BgpQuery minimized = MinimizeQuery(q, dict_);
  EXPECT_EQ(minimized.size(), 1u);
  EXPECT_TRUE(AreEquivalent(q, minimized, dict_));
}

TEST_F(EquivalenceTest, MinimizeKeepsDistinguishedOccurrences) {
  // ?z is distinguished: the second pattern cannot be dropped.
  const query::BgpQuery q = Q("SELECT ?y ?z WHERE { ?x :p ?y . ?x :p ?z . }");
  EXPECT_EQ(MinimizeQuery(q, dict_).size(), 2u);
}

TEST_F(EquivalenceTest, MinimizeCoreOfLongPathAskQuery) {
  // Boolean path of length 3 folds onto a single edge?  No — a 3-path has
  // no endomorphism onto fewer edges unless edges repeat; with the same
  // predicate the path DOES fold to one edge only if a loop exists, which it
  // does not.  Chain with repeated predicate keeps all edges? Folding
  // ?a->?b->?c->?d onto ?a->?b requires mapping ?b to both ends — check the
  // classic result: the 3-chain's core is the 1-chain only for *reflexive*
  // structures; here the core keeps ... the homomorphism x1->x1, x2->x2,
  // x3->x1, x4->x2 maps the chain onto the first edge pair-wise: edge2
  // (x2,x3)->(x2,x1)? that edge does not exist.  So the chain is its own
  // core.
  const query::BgpQuery q = Q("ASK { ?a :p ?b . ?b :p ?c . ?c :p ?d . }");
  EXPECT_EQ(MinimizeQuery(q, dict_).size(), 3u);
}

TEST_F(EquivalenceTest, MinimizeCollapsesParallelStars) {
  // Two star arms identical up to renaming collapse into one.
  const query::BgpQuery q = Q(R"(ASK {
      ?x :p ?y1 . ?y1 :q :c .
      ?x :p ?y2 . ?y2 :q :c . })");
  const query::BgpQuery minimized = MinimizeQuery(q, dict_);
  EXPECT_EQ(minimized.size(), 2u);
  EXPECT_TRUE(AreEquivalentBoolean(q, minimized, dict_));
}

TEST_F(EquivalenceTest, MinimizeIsIdempotent) {
  const query::BgpQuery q = Q(R"(ASK {
      ?x :p ?y1 . ?y1 :q :c . ?x :p ?y2 . ?y2 :q :c . ?x a :T . })");
  const query::BgpQuery once = MinimizeQuery(q, dict_);
  const query::BgpQuery twice = MinimizeQuery(once, dict_);
  EXPECT_TRUE(once.SamePatterns(twice));
}

TEST_F(EquivalenceTest, MinimizedQueryHasSameAnswersOnRandomGraphs) {
  util::Rng rng(99);
  std::vector<rdf::TermId> nodes, preds;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(dict_.MakeIri("urn:n" + std::to_string(i)));
  }
  preds.push_back(rdfc::testing::Iri(&dict_, "p"));
  preds.push_back(rdfc::testing::Iri(&dict_, "q"));
  const query::BgpQuery q = Q(R"(SELECT ?x WHERE {
      ?x :p ?y1 . ?y1 :q ?z1 . ?x :p ?y2 . ?y2 :q ?z2 . })");
  const query::BgpQuery minimized = MinimizeQuery(q, dict_);
  EXPECT_LT(minimized.size(), q.size());
  for (int trial = 0; trial < 30; ++trial) {
    rdf::Graph g;
    for (int e = 0; e < 12; ++e) {
      g.Add(nodes[rng.Uniform(0, 4)], preds[rng.Uniform(0, 1)],
            nodes[rng.Uniform(0, 4)]);
    }
    EXPECT_EQ(eval::ProjectedAnswers(q, g, dict_),
              eval::ProjectedAnswers(minimized, g, dict_));
  }
}

}  // namespace
}  // namespace containment
}  // namespace rdfc
