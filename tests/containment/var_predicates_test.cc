#include "containment/var_predicates.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "query/witness.h"

namespace rdfc {
namespace containment {
namespace {

using rdfc::testing::Iri;
using rdfc::testing::ParseOrDie;
using rdfc::testing::Var;

class VarPredicateBoundsTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  static bool Has(const std::vector<rdf::TermId>& v, rdf::TermId x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  }
  rdf::TermDictionary dict_;
};

TEST_F(VarPredicateBoundsTest, SubjectPinnedBoundsObject) {
  // Probe: s -p-> t, s -q-> u.  Var-pred pattern (x, ?v, o) with x pinned to
  // s's class bounds o to {t, u} (Section 5.2 bounding).
  const query::BgpQuery probe = Q("ASK { ?s :p ?t . ?s :q ?u . }");
  const query::Witness witness = query::BuildWitness(probe);
  MatchState sigma;
  const rdf::TermId x = dict_.MakeVariable("bx");
  const rdf::TermId o = dict_.MakeVariable("bo");
  const rdf::TermId v = dict_.MakeVariable("bv");
  sigma.sigma[x] = witness.ClassOf(Var(&dict_, "s"));

  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> allowed;
  AddVarPredicateBounds(probe, dict_, witness, sigma,
                        {rdf::Triple(x, v, o)}, &allowed);
  ASSERT_EQ(allowed.count(o), 1u);
  EXPECT_EQ(allowed[o].size(), 2u);
  EXPECT_TRUE(Has(allowed[o], Var(&dict_, "t")));
  EXPECT_TRUE(Has(allowed[o], Var(&dict_, "u")));
  // The var predicate itself gets no bound from this mechanism.
  EXPECT_EQ(allowed.count(v), 0u);
}

TEST_F(VarPredicateBoundsTest, ObjectPinnedBoundsSubject) {
  const query::BgpQuery probe = Q("ASK { ?a :p ?t . ?b :q ?t . }");
  const query::Witness witness = query::BuildWitness(probe);
  MatchState sigma;
  const rdf::TermId s = dict_.MakeVariable("bs");
  const rdf::TermId o = dict_.MakeVariable("bo2");
  const rdf::TermId v = dict_.MakeVariable("bv2");
  sigma.sigma[o] = witness.ClassOf(Var(&dict_, "t"));

  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> allowed;
  AddVarPredicateBounds(probe, dict_, witness, sigma,
                        {rdf::Triple(s, v, o)}, &allowed);
  ASSERT_EQ(allowed.count(s), 1u);
  EXPECT_EQ(allowed[s].size(), 2u);
  EXPECT_TRUE(Has(allowed[s], Var(&dict_, "a")));
  EXPECT_TRUE(Has(allowed[s], Var(&dict_, "b")));
}

TEST_F(VarPredicateBoundsTest, ConstantEndsArePinnedImplicitly) {
  // Constant subject :e pins the bound without a sigma entry.
  const query::BgpQuery probe = Q("ASK { :e :p ?t . ?x :q ?y . }");
  const query::Witness witness = query::BuildWitness(probe);
  MatchState sigma;
  const rdf::TermId o = dict_.MakeVariable("bo3");
  const rdf::TermId v = dict_.MakeVariable("bv3");

  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> allowed;
  AddVarPredicateBounds(probe, dict_, witness, sigma,
                        {rdf::Triple(Iri(&dict_, "e"), v, o)}, &allowed);
  ASSERT_EQ(allowed.count(o), 1u);
  ASSERT_EQ(allowed[o].size(), 1u);
  EXPECT_TRUE(Has(allowed[o], Var(&dict_, "t")));
}

TEST_F(VarPredicateBoundsTest, IntersectionWithExistingRestriction) {
  const query::BgpQuery probe = Q("ASK { ?s :p ?t . ?s :q ?u . }");
  const query::Witness witness = query::BuildWitness(probe);
  MatchState sigma;
  const rdf::TermId x = dict_.MakeVariable("ix");
  const rdf::TermId o = dict_.MakeVariable("io");
  const rdf::TermId v = dict_.MakeVariable("iv");
  sigma.sigma[x] = witness.ClassOf(Var(&dict_, "s"));

  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> allowed;
  allowed[o] = {Var(&dict_, "t"), Var(&dict_, "s")};  // pre-existing
  AddVarPredicateBounds(probe, dict_, witness, sigma,
                        {rdf::Triple(x, v, o)}, &allowed);
  // Intersection of {t, s} with {t, u} = {t}.
  ASSERT_EQ(allowed[o].size(), 1u);
  EXPECT_EQ(allowed[o][0], Var(&dict_, "t"));
}

TEST_F(VarPredicateBoundsTest, NeitherEndPinnedAddsNoBound) {
  const query::BgpQuery probe = Q("ASK { ?s :p ?t . }");
  const query::Witness witness = query::BuildWitness(probe);
  MatchState sigma;  // empty
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> allowed;
  AddVarPredicateBounds(
      probe, dict_, witness, sigma,
      {rdf::Triple(dict_.MakeVariable("na"), dict_.MakeVariable("nv"),
                   dict_.MakeVariable("nb"))},
      &allowed);
  EXPECT_TRUE(allowed.empty());
}

TEST_F(VarPredicateBoundsTest, BothEndsPinnedAddsNoBound) {
  // When both ends are pinned, the NP search verifies the pattern directly;
  // no candidate restriction is derived.
  const query::BgpQuery probe = Q("ASK { ?s :p ?t . }");
  const query::Witness witness = query::BuildWitness(probe);
  MatchState sigma;
  const rdf::TermId a = dict_.MakeVariable("pa");
  const rdf::TermId b = dict_.MakeVariable("pb");
  sigma.sigma[a] = witness.ClassOf(Var(&dict_, "s"));
  sigma.sigma[b] = witness.ClassOf(Var(&dict_, "t"));
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> allowed;
  AddVarPredicateBounds(probe, dict_, witness, sigma,
                        {rdf::Triple(a, dict_.MakeVariable("pv"), b)},
                        &allowed);
  EXPECT_TRUE(allowed.empty());
}

}  // namespace
}  // namespace containment
}  // namespace rdfc
