#include "containment/ucq.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace rdfc {
namespace containment {
namespace {

using rdfc::testing::ParseOrDie;

class UcqTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  rdf::TermDictionary dict_;
};

TEST_F(UcqTest, ContainedInSomeDisjunct) {
  UnionQuery disjuncts;
  disjuncts.push_back(Q("ASK { ?x :q ?y . }"));
  disjuncts.push_back(Q("ASK { ?x :p ?y . }"));
  EXPECT_TRUE(ContainedInUnion(Q("ASK { ?a :p ?b . ?a a :T . }"), disjuncts,
                               &dict_));
}

TEST_F(UcqTest, NotContainedInAnyDisjunct) {
  UnionQuery disjuncts;
  disjuncts.push_back(Q("ASK { ?x :q ?y . }"));
  disjuncts.push_back(Q("ASK { ?x :p :c . }"));
  EXPECT_FALSE(ContainedInUnion(Q("ASK { ?a :p ?b . }"), disjuncts, &dict_));
}

TEST_F(UcqTest, EmptyUnionContainsNothing) {
  EXPECT_FALSE(ContainedInUnion(Q("ASK { ?a :p ?b . }"), {}, &dict_));
}

TEST_F(UcqTest, UnionInUnion) {
  UnionQuery lhs;
  lhs.push_back(Q("ASK { ?x :p ?y . ?x a :T . }"));
  lhs.push_back(Q("ASK { ?x :q :c . }"));
  UnionQuery rhs;
  rhs.push_back(Q("ASK { ?x :p ?y . }"));
  rhs.push_back(Q("ASK { ?x :q ?y . }"));
  EXPECT_TRUE(UnionContainedInUnion(lhs, rhs, &dict_));
  // Tighten rhs: the second lhs disjunct no longer fits.
  rhs[1] = Q("ASK { ?x :q :d . }");
  EXPECT_FALSE(UnionContainedInUnion(lhs, rhs, &dict_));
}

TEST_F(UcqTest, EmptyLhsUnionVacuouslyContained) {
  UnionQuery rhs;
  rhs.push_back(Q("ASK { ?x :p ?y . }"));
  EXPECT_TRUE(UnionContainedInUnion({}, rhs, &dict_));
}

TEST_F(UcqTest, DisjunctsWithVariablePredicates) {
  UnionQuery disjuncts;
  disjuncts.push_back(Q("ASK { ?x ?v ?x . }"));  // self-loop via any pred
  disjuncts.push_back(Q("ASK { ?x :p ?y . }"));
  EXPECT_TRUE(ContainedInUnion(Q("ASK { ?a :q ?a . }"), disjuncts, &dict_));
  EXPECT_FALSE(ContainedInUnion(Q("ASK { ?a :q ?b . }"), disjuncts, &dict_));
}

}  // namespace
}  // namespace containment
}  // namespace rdfc
