#include "rdfs/materialise.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "containment/pipeline.h"
#include "eval/evaluator.h"
#include "rdf/turtle_parser.h"
#include "rdfs/extension.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace rdfc {
namespace rdfs {
namespace {

using rdfc::testing::Iri;
using rdfc::testing::ParseOrDie;

class MaterialiseTest : public ::testing::Test {
 protected:
  rdf::TermId Type() {
    return dict_.MakeIri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  }
  rdf::TermDictionary dict_;
  RdfsSchema schema_;
  rdf::Graph graph_;
};

TEST_F(MaterialiseTest, ClassHierarchyClosure) {
  schema_.AddSubClass(Iri(&dict_, "Car"), Iri(&dict_, "Vehicle"));
  schema_.AddSubClass(Iri(&dict_, "Vehicle"), Iri(&dict_, "Thing"));
  graph_.Add(Iri(&dict_, "beetle"), Type(), Iri(&dict_, "Car"));
  EXPECT_EQ(MaterialiseGraph(schema_, &dict_, &graph_), 2u);
  EXPECT_TRUE(graph_.Contains(
      {Iri(&dict_, "beetle"), Type(), Iri(&dict_, "Vehicle")}));
  EXPECT_TRUE(graph_.Contains(
      {Iri(&dict_, "beetle"), Type(), Iri(&dict_, "Thing")}));
}

TEST_F(MaterialiseTest, PropertyDomainRangeCascade) {
  schema_.AddSubProperty(Iri(&dict_, "headOf"), Iri(&dict_, "worksFor"));
  schema_.AddDomain(Iri(&dict_, "worksFor"), Iri(&dict_, "Employee"));
  schema_.AddRange(Iri(&dict_, "worksFor"), Iri(&dict_, "Org"));
  schema_.AddSubClass(Iri(&dict_, "Employee"), Iri(&dict_, "Person"));
  graph_.Add(Iri(&dict_, "alice"), Iri(&dict_, "headOf"), Iri(&dict_, "lab"));
  MaterialiseGraph(schema_, &dict_, &graph_);
  EXPECT_TRUE(graph_.Contains(
      {Iri(&dict_, "alice"), Iri(&dict_, "worksFor"), Iri(&dict_, "lab")}));
  EXPECT_TRUE(graph_.Contains(
      {Iri(&dict_, "alice"), Type(), Iri(&dict_, "Employee")}));
  EXPECT_TRUE(graph_.Contains(
      {Iri(&dict_, "alice"), Type(), Iri(&dict_, "Person")}));  // cascade
  EXPECT_TRUE(graph_.Contains(
      {Iri(&dict_, "lab"), Type(), Iri(&dict_, "Org")}));
}

TEST_F(MaterialiseTest, LiteralObjectsGetNoType) {
  schema_.AddRange(Iri(&dict_, "name"), Iri(&dict_, "Label"));
  graph_.Add(Iri(&dict_, "a"), Iri(&dict_, "name"),
             dict_.MakeLiteral("\"bob\""));
  MaterialiseGraph(schema_, &dict_, &graph_);
  for (const rdf::Triple& t : graph_.triples()) {
    EXPECT_FALSE(dict_.IsLiteral(t.s));
  }
}

TEST_F(MaterialiseTest, IdempotentAndCountsAdditions) {
  schema_.AddSubClass(Iri(&dict_, "A"), Iri(&dict_, "B"));
  graph_.Add(Iri(&dict_, "x"), Type(), Iri(&dict_, "A"));
  EXPECT_EQ(MaterialiseGraph(schema_, &dict_, &graph_), 1u);
  EXPECT_EQ(MaterialiseGraph(schema_, &dict_, &graph_), 0u);
}

TEST_F(MaterialiseTest, EmptySchemaAddsNothing) {
  graph_.Add(Iri(&dict_, "x"), Iri(&dict_, "p"), Iri(&dict_, "y"));
  EXPECT_EQ(MaterialiseGraph(schema_, &dict_, &graph_), 0u);
}

// Proposition 6.1 cross-check: Q ⊑_R W decided by the query-side extension
// must agree with the semantic definition via the data-side materialisation
// of Q's canonical instance.
TEST_F(MaterialiseTest, Proposition61AgreesWithFreezeSemantics) {
  rdf::TermDictionary dict;
  const RdfsSchema schema = workload::LubmSchema(&dict);
  auto seeds = workload::GenerateLubmExtended(&dict, 120, 606);
  ASSERT_TRUE(seeds.ok());
  util::Rng rng(607);
  std::size_t positives = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const query::BgpQuery& q = (*seeds)[rng.Uniform(0, seeds->size() - 1)];
    const query::BgpQuery& w = (*seeds)[rng.Uniform(0, seeds->size() - 1)];

    // Query-side: extend Q, then plain containment (Proposition 6.1).
    const query::BgpQuery extended = ExtendQuery(q, schema, &dict);
    const bool via_extension = containment::Contains(extended, w, &dict);

    // Data-side: freeze Q, saturate the data, evaluate W.
    rdf::Graph frozen = eval::Freeze(q, &dict);
    MaterialiseGraph(schema, &dict, &frozen);
    const bool via_semantics = eval::Ask(w, frozen, dict);

    EXPECT_EQ(via_extension, via_semantics)
        << "Q =\n" << q.ToString(dict) << "\nW =\n" << w.ToString(dict);
    positives += via_semantics ? 1 : 0;
  }
  EXPECT_GT(positives, 5u);  // the check must exercise real containments
}

}  // namespace
}  // namespace rdfs
}  // namespace rdfc
