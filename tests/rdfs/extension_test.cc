#include "rdfs/extension.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "containment/pipeline.h"
#include "query/analysis.h"

namespace rdfc {
namespace rdfs {
namespace {

using rdfc::testing::Iri;
using rdfc::testing::ParseOrDie;
using rdfc::testing::Var;

class ExtensionTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  rdf::TermId Type() {
    return dict_.MakeIri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  }
  rdf::TermDictionary dict_;
  RdfsSchema schema_;
};

TEST_F(ExtensionTest, PaperExampleA1CarVehicle) {
  // Example A.1: Q asks for red cars, W for red vehicles; with Car ⊑ Vehicle
  // the extension adds (?x, type, Vehicle) and containment follows.
  schema_.AddSubClass(Iri(&dict_, "Car"), Iri(&dict_, "Vehicle"));
  const query::BgpQuery q = Q("SELECT ?x WHERE { ?x a :Car . ?x a :Red . }");
  const query::BgpQuery w =
      Q("SELECT ?x WHERE { ?x a :Vehicle . ?x a :Red . }");

  // Without the extension, containment does not hold.
  EXPECT_FALSE(containment::Contains(q, w, &dict_));

  const query::BgpQuery extended = ExtendQuery(q, schema_, &dict_);
  EXPECT_TRUE(extended.ContainsPattern(
      rdf::Triple(Var(&dict_, "x"), Type(), Iri(&dict_, "Vehicle"))));
  EXPECT_TRUE(containment::Contains(extended, w, &dict_));
}

TEST_F(ExtensionTest, TransitiveClassClosure) {
  schema_.AddSubClass(Iri(&dict_, "A"), Iri(&dict_, "B"));
  schema_.AddSubClass(Iri(&dict_, "B"), Iri(&dict_, "C"));
  const query::BgpQuery extended =
      ExtendQuery(Q("ASK { ?x a :A . }"), schema_, &dict_);
  EXPECT_EQ(extended.size(), 3u);
}

TEST_F(ExtensionTest, SubPropertySaturation) {
  schema_.AddSubProperty(Iri(&dict_, "headOf"), Iri(&dict_, "worksFor"));
  const query::BgpQuery extended =
      ExtendQuery(Q("ASK { ?x :headOf ?y . }"), schema_, &dict_);
  EXPECT_TRUE(extended.ContainsPattern(rdf::Triple(
      Var(&dict_, "x"), Iri(&dict_, "worksFor"), Var(&dict_, "y"))));
}

TEST_F(ExtensionTest, DomainAndRangeDeriveTypes) {
  schema_.AddDomain(Iri(&dict_, "drives"), Iri(&dict_, "Person"));
  schema_.AddRange(Iri(&dict_, "drives"), Iri(&dict_, "Vehicle"));
  const query::BgpQuery extended =
      ExtendQuery(Q("ASK { ?x :drives ?y . }"), schema_, &dict_);
  EXPECT_TRUE(extended.ContainsPattern(
      rdf::Triple(Var(&dict_, "x"), Type(), Iri(&dict_, "Person"))));
  EXPECT_TRUE(extended.ContainsPattern(
      rdf::Triple(Var(&dict_, "y"), Type(), Iri(&dict_, "Vehicle"))));
}

TEST_F(ExtensionTest, DomainOfSuperPropertyApplies) {
  schema_.AddSubProperty(Iri(&dict_, "headOf"), Iri(&dict_, "worksFor"));
  schema_.AddDomain(Iri(&dict_, "worksFor"), Iri(&dict_, "Employee"));
  const query::BgpQuery extended =
      ExtendQuery(Q("ASK { ?x :headOf ?y . }"), schema_, &dict_);
  EXPECT_TRUE(extended.ContainsPattern(
      rdf::Triple(Var(&dict_, "x"), Type(), Iri(&dict_, "Employee"))));
}

TEST_F(ExtensionTest, CascadedDerivationReachesFixpoint) {
  // domain-derived type triple then class-inclusion on that type.
  schema_.AddDomain(Iri(&dict_, "p"), Iri(&dict_, "A"));
  schema_.AddSubClass(Iri(&dict_, "A"), Iri(&dict_, "B"));
  const query::BgpQuery extended =
      ExtendQuery(Q("ASK { ?x :p ?y . }"), schema_, &dict_);
  EXPECT_TRUE(extended.ContainsPattern(
      rdf::Triple(Var(&dict_, "x"), Type(), Iri(&dict_, "B"))));
}

TEST_F(ExtensionTest, LiteralObjectsGetNoRangeType) {
  schema_.AddRange(Iri(&dict_, "name"), Iri(&dict_, "Label"));
  const query::BgpQuery extended =
      ExtendQuery(Q(R"(ASK { ?x :name "bob" . })"), schema_, &dict_);
  for (const rdf::Triple& t : extended.patterns()) {
    EXPECT_FALSE(dict_.IsLiteral(t.s));
  }
  EXPECT_EQ(extended.size(), 1u);
}

TEST_F(ExtensionTest, VariablePredicatesNotSaturated) {
  schema_.AddSubProperty(Iri(&dict_, "p"), Iri(&dict_, "q"));
  const query::BgpQuery extended =
      ExtendQuery(Q("ASK { ?x ?v ?y . }"), schema_, &dict_);
  EXPECT_EQ(extended.size(), 1u);
}

TEST_F(ExtensionTest, EmptySchemaIsIdentity) {
  const query::BgpQuery q = Q("ASK { ?x a :A . ?x :p ?y . }");
  const query::BgpQuery extended = ExtendQuery(q, schema_, &dict_);
  EXPECT_TRUE(extended.SamePatterns(q));
}

TEST_F(ExtensionTest, PreservesFormAndProjection) {
  const query::BgpQuery q = Q("SELECT ?x WHERE { ?x a :A . }");
  const query::BgpQuery extended = ExtendQuery(q, schema_, &dict_);
  EXPECT_EQ(extended.form(), query::QueryForm::kSelect);
  ASSERT_EQ(extended.distinguished().size(), 1u);
  EXPECT_EQ(extended.distinguished()[0], Var(&dict_, "x"));
}

TEST_F(ExtensionTest, ExtensionMayBreakFGraphProperty) {
  // The paper notes extended queries can lose the f-graph property: two
  // type triples on the same subject violate condition (i).
  schema_.AddSubClass(Iri(&dict_, "Car"), Iri(&dict_, "Vehicle"));
  const query::BgpQuery extended =
      ExtendQuery(Q("ASK { ?x a :Car . }"), schema_, &dict_);
  EXPECT_FALSE(query::IsFGraph(extended));
}

}  // namespace
}  // namespace rdfs
}  // namespace rdfc
