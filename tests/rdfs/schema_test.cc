#include "rdfs/schema.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "rdf/turtle_parser.h"

namespace rdfc {
namespace rdfs {
namespace {

bool Contains(const std::vector<rdf::TermId>& v, rdf::TermId x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

class SchemaTest : public ::testing::Test {
 protected:
  rdf::TermId T(const std::string& local) {
    return dict_.MakeIri("urn:t:" + local);
  }
  rdf::TermDictionary dict_;
  RdfsSchema schema_;
};

TEST_F(SchemaTest, TransitiveSuperClasses) {
  schema_.AddSubClass(T("Car"), T("Vehicle"));
  schema_.AddSubClass(T("Vehicle"), T("Thing"));
  const auto& supers = schema_.SuperClassesOf(T("Car"));
  EXPECT_EQ(supers.size(), 3u);  // reflexive + 2
  EXPECT_TRUE(Contains(supers, T("Car")));
  EXPECT_TRUE(Contains(supers, T("Vehicle")));
  EXPECT_TRUE(Contains(supers, T("Thing")));
  EXPECT_EQ(schema_.SuperClassesOf(T("Thing")).size(), 1u);
}

TEST_F(SchemaTest, SubClassesInverse) {
  schema_.AddSubClass(T("Car"), T("Vehicle"));
  schema_.AddSubClass(T("Bike"), T("Vehicle"));
  const auto subs = schema_.SubClassesOf(T("Vehicle"));
  EXPECT_EQ(subs.size(), 3u);
  EXPECT_TRUE(Contains(subs, T("Car")));
  EXPECT_TRUE(Contains(subs, T("Bike")));
}

TEST_F(SchemaTest, DiamondHierarchy) {
  schema_.AddSubClass(T("A"), T("B"));
  schema_.AddSubClass(T("A"), T("C"));
  schema_.AddSubClass(T("B"), T("D"));
  schema_.AddSubClass(T("C"), T("D"));
  const auto& supers = schema_.SuperClassesOf(T("A"));
  EXPECT_EQ(supers.size(), 4u);  // A, B, C, D — D once despite two paths
}

TEST_F(SchemaTest, CyclicHierarchyTerminates) {
  schema_.AddSubClass(T("X"), T("Y"));
  schema_.AddSubClass(T("Y"), T("X"));
  const auto& supers = schema_.SuperClassesOf(T("X"));
  EXPECT_EQ(supers.size(), 2u);
}

TEST_F(SchemaTest, PropertiesIndependentOfClasses) {
  schema_.AddSubClass(T("A"), T("B"));
  schema_.AddSubProperty(T("p"), T("q"));
  EXPECT_EQ(schema_.SuperPropertiesOf(T("p")).size(), 2u);
  EXPECT_EQ(schema_.SuperPropertiesOf(T("A")).size(), 1u);  // reflexive only
}

TEST_F(SchemaTest, DomainsAndRanges) {
  schema_.AddDomain(T("drives"), T("Person"));
  schema_.AddRange(T("drives"), T("Vehicle"));
  EXPECT_EQ(schema_.DomainsOf(T("drives")).size(), 1u);
  EXPECT_EQ(schema_.RangesOf(T("drives")).size(), 1u);
  EXPECT_TRUE(schema_.DomainsOf(T("unknown")).empty());
}

TEST_F(SchemaTest, CacheInvalidatedOnMutation) {
  schema_.AddSubClass(T("Car"), T("Vehicle"));
  EXPECT_EQ(schema_.SuperClassesOf(T("Car")).size(), 2u);
  schema_.AddSubClass(T("Vehicle"), T("Thing"));
  EXPECT_EQ(schema_.SuperClassesOf(T("Car")).size(), 3u);
}

TEST_F(SchemaTest, LoadFromGraph) {
  rdf::Graph graph;
  ASSERT_TRUE(rdf::ParseTurtle(R"(
    @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
    @prefix t: <urn:t:> .
    t:Car rdfs:subClassOf t:Vehicle .
    t:drives rdfs:subPropertyOf t:uses .
    t:drives rdfs:domain t:Person .
    t:drives rdfs:range t:Vehicle .
    t:unrelated t:otherPredicate t:ignored .
  )", &dict_, &graph).ok());
  RdfsSchema schema;
  schema.LoadFromGraph(graph, dict_);
  EXPECT_TRUE(Contains(schema.SuperClassesOf(T("Car")), T("Vehicle")));
  EXPECT_TRUE(Contains(schema.SuperPropertiesOf(T("drives")), T("uses")));
  EXPECT_EQ(schema.DomainsOf(T("drives")).size(), 1u);
  EXPECT_EQ(schema.RangesOf(T("drives")).size(), 1u);
}

TEST_F(SchemaTest, EmptySchema) {
  EXPECT_TRUE(schema_.empty());
  schema_.AddDomain(T("p"), T("C"));
  EXPECT_FALSE(schema_.empty());
}

}  // namespace
}  // namespace rdfs
}  // namespace rdfc
