#include <gtest/gtest.h>

#include "../test_util.h"
#include "baselines/canonical_cache.h"
#include "baselines/subgraph_iso.h"
#include "containment/homomorphism.h"
#include "containment/pipeline.h"
#include "util/rng.h"

namespace rdfc {
namespace baselines {
namespace {

using rdfc::testing::ParseOrDie;
using rdfc::testing::Var;

class BaselinesTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  rdf::TermDictionary dict_;
};

// --- CanonicalCache ---------------------------------------------------------

TEST_F(BaselinesTest, CanonicalCacheHitsIsomorphicQueries) {
  CanonicalCache cache(&dict_);
  auto ins = cache.Insert(Q("ASK { ?x :p ?y . ?y :q :c . }"), 7);
  ASSERT_TRUE(ins.ok());
  // Same query up to variable renaming and pattern order: hit.
  const auto hit = cache.Lookup(Q("ASK { ?b :q :c . ?a :p ?b . }"));
  EXPECT_TRUE(hit.found);
  EXPECT_EQ(hit.entry_id, ins->entry_id);
  // Structurally different: miss.
  EXPECT_FALSE(cache.Lookup(Q("ASK { ?x :p ?y . }")).found);
  EXPECT_FALSE(cache.Lookup(Q("ASK { ?x :p ?y . ?y :q :d . }")).found);
}

TEST_F(BaselinesTest, CanonicalCacheMissesContainment) {
  // The whole point: a strictly-contained query is NOT an exact-match hit,
  // although the mv-index serves it.
  CanonicalCache cache(&dict_);
  ASSERT_TRUE(cache.Insert(Q("ASK { ?x :p ?y . }")).ok());
  const query::BgpQuery narrower = Q("ASK { ?a :p ?b . ?a a :T . }");
  EXPECT_FALSE(cache.Lookup(narrower).found);
  EXPECT_TRUE(containment::Contains(narrower, Q("ASK { ?x :p ?y . }"),
                                    &dict_));
}

TEST_F(BaselinesTest, CanonicalCacheDedupsAndTracksExternals) {
  CanonicalCache cache(&dict_);
  auto a = cache.Insert(Q("ASK { ?x :p ?y . }"), 1);
  auto b = cache.Insert(Q("ASK { ?u :p ?v . }"), 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->was_new);
  EXPECT_FALSE(b->was_new);
  EXPECT_EQ(cache.num_entries(), 1u);
  EXPECT_EQ(cache.external_ids(a->entry_id),
            (std::vector<std::uint64_t>{1, 2}));
}

// --- Subgraph isomorphism ----------------------------------------------------

TEST_F(BaselinesTest, PaperSection8IncompletenessExample) {
  // W = {(?x,r1,?y),(?y,r2,?z)}; Q = {(?x',r1,?y'),(?y',r2,?x')}.
  // A containment mapping exists (σ(?z)=?x'), but no subgraph isomorphism
  // (it would need ?x and ?z to share the image ?x').
  const query::BgpQuery w = Q("ASK { ?x :r1 ?y . ?y :r2 ?z . }");
  const query::BgpQuery q = Q("ASK { ?xp :r1 ?yp . ?yp :r2 ?xp . }");
  EXPECT_TRUE(containment::IsContainedIn(q, w, dict_));
  EXPECT_FALSE(IsSubgraphIsomorphic(w, q, dict_));
}

TEST_F(BaselinesTest, IsoFindsInjectiveMatch) {
  const query::BgpQuery w = Q("ASK { ?x :p ?y . }");
  const query::BgpQuery q = Q("ASK { ?a :p ?b . ?b :q ?c . }");
  const SubgraphIsoResult result = FindSubgraphIsomorphism(w, q, dict_);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.mapping.at(Var(&dict_, "x")), Var(&dict_, "a"));
  EXPECT_EQ(result.mapping.at(Var(&dict_, "y")), Var(&dict_, "b"));
}

TEST_F(BaselinesTest, IsoRequiresConstantsToMatch) {
  EXPECT_TRUE(IsSubgraphIsomorphic(Q("ASK { ?x :p :c . }"),
                                   Q("ASK { ?a :p :c . ?a :q ?d . }"),
                                   dict_));
  EXPECT_FALSE(IsSubgraphIsomorphic(Q("ASK { ?x :p :c . }"),
                                    Q("ASK { ?a :p :d . }"), dict_));
  // Variables never fold onto constants under isomorphism semantics.
  EXPECT_FALSE(IsSubgraphIsomorphic(Q("ASK { ?x :p ?y . }"),
                                    Q("ASK { ?a :p :c . }"), dict_));
  // ... although containment allows it.
  EXPECT_TRUE(containment::Contains(Q("ASK { ?a :p :c . }"),
                                    Q("ASK { ?x :p ?y . }"), &dict_));
}

TEST_F(BaselinesTest, IsoVariablePredicatesAreWildcards) {
  EXPECT_TRUE(IsSubgraphIsomorphic(Q("ASK { ?x ?v ?y . }"),
                                   Q("ASK { ?a :p ?b . }"), dict_));
  // Repeated predicate variable binds consistently.
  EXPECT_FALSE(IsSubgraphIsomorphic(Q("ASK { ?x ?v ?y . ?y ?v ?z . }"),
                                    Q("ASK { ?a :p ?b . ?b :q ?c . }"),
                                    dict_));
}

TEST_F(BaselinesTest, IsoImpliesContainment) {
  // Subgraph isomorphism is SOUND for containment (every iso is a
  // containment mapping) — just incomplete.  Property-check on random pairs.
  util::Rng rng(314);
  std::vector<rdf::TermId> preds = {rdfc::testing::Iri(&dict_, "p"),
                                    rdfc::testing::Iri(&dict_, "q")};
  auto draw = [&](std::size_t n) {
    query::BgpQuery out;
    for (std::size_t i = 0; i < n; ++i) {
      out.AddPattern(dict_.MakeVariable("v" + std::to_string(rng.Uniform(0, 3))),
                     preds[rng.Uniform(0, 1)],
                     dict_.MakeVariable("v" + std::to_string(rng.Uniform(0, 3))));
    }
    return out;
  };
  std::size_t iso_hits = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const query::BgpQuery w = draw(1 + rng.Uniform(0, 2));
    const query::BgpQuery q = draw(1 + rng.Uniform(0, 3));
    if (IsSubgraphIsomorphic(w, q, dict_)) {
      ++iso_hits;
      EXPECT_TRUE(containment::IsContainedIn(q, w, dict_))
          << "W:\n" << w.ToString(dict_) << "Q:\n" << q.ToString(dict_);
    }
  }
  EXPECT_GT(iso_hits, 10u);
}

TEST_F(BaselinesTest, EmptyPatternGraphMatchesAnything) {
  query::BgpQuery empty;
  EXPECT_TRUE(IsSubgraphIsomorphic(empty, Q("ASK { ?x :p ?y . }"), dict_));
}

}  // namespace
}  // namespace baselines
}  // namespace rdfc
