// FindContaining is const and read-only (the candidate-token walk never
// interns terms), so concurrent probes against a frozen index must be safe
// and agree with single-threaded results.  Run under TSan for full value;
// even without it, this catches crashes and result divergence.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "index/mv_index.h"
#include "workload/workload.h"

namespace rdfc {
namespace {

TEST(ConcurrencyTest, ParallelProbesAgreeWithSerial) {
  rdf::TermDictionary dict;
  index::MvIndex index(&dict);
  const auto views = workload::GenerateDbpedia(&dict, 3000, 41);
  for (std::size_t i = 0; i < views.size(); ++i) {
    ASSERT_TRUE(index.Insert(views[i], i).ok());
  }
  const auto probes = workload::GenerateDbpedia(&dict, 200, 42);

  // Serial reference.
  std::vector<std::size_t> expected;
  expected.reserve(probes.size());
  for (const auto& probe : probes) {
    expected.push_back(index.FindContaining(probe).contained.size());
  }

  // Parallel probes over disjoint slices.
  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = t; i < probes.size(); i += kThreads) {
        const auto result = index.FindContaining(probes[i]);
        if (result.contained.size() != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace rdfc
