// Cross-implementation property tests: the paper's pipeline (witness filter
// + NP verification), the mv-index walk, the pairwise scan, the direct
// homomorphism search, and the semantic definition of containment via the
// evaluation engine must all agree on randomly generated query pairs.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "containment/homomorphism.h"
#include "containment/pipeline.h"
#include "eval/evaluator.h"
#include "index/mv_index.h"
#include "query/analysis.h"
#include "util/rng.h"

namespace rdfc {
namespace {

/// Random BGP generator with a deliberately tiny vocabulary so containments
/// actually occur and witness merges are frequent.
class RandomQueryGen {
 public:
  RandomQueryGen(rdf::TermDictionary* dict, std::uint64_t seed)
      : dict_(dict), rng_(seed) {
    for (int i = 0; i < 3; ++i) {
      preds_.push_back(dict_->MakeIri("urn:p" + std::to_string(i)));
    }
    for (int i = 0; i < 2; ++i) {
      consts_.push_back(dict_->MakeIri("urn:c" + std::to_string(i)));
    }
  }

  query::BgpQuery Generate(std::size_t max_triples, bool allow_var_preds) {
    query::BgpQuery q;
    const std::size_t n = 1 + rng_.Uniform(0, max_triples - 1);
    const std::size_t num_vars = 1 + rng_.Uniform(0, 3);
    for (std::size_t i = 0; i < n; ++i) {
      const rdf::TermId s = VarOrConst(num_vars, 0.85);
      rdf::TermId p = preds_[rng_.Uniform(0, preds_.size() - 1)];
      if (allow_var_preds && rng_.Chance(0.15)) {
        p = Var(rng_.Uniform(0, 1) + 10);  // separate var pool for predicates
      }
      const rdf::TermId o = VarOrConst(num_vars, 0.7);
      q.AddPattern(s, p, o);
    }
    return q;
  }

 private:
  rdf::TermId Var(std::size_t k) {
    return dict_->MakeVariable("r" + std::to_string(k));
  }
  rdf::TermId VarOrConst(std::size_t num_vars, double var_prob) {
    if (rng_.Chance(var_prob)) return Var(rng_.Uniform(0, num_vars - 1));
    return consts_[rng_.Uniform(0, consts_.size() - 1)];
  }

  rdf::TermDictionary* dict_;
  util::Rng rng_;
  std::vector<rdf::TermId> preds_;
  std::vector<rdf::TermId> consts_;
};

struct PropertyCase {
  std::uint64_t seed;
  bool var_preds;
};

class ContainmentPropertyTest
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ContainmentPropertyTest, PipelineAgreesWithGroundTruth) {
  rdf::TermDictionary dict;
  RandomQueryGen gen(&dict, GetParam().seed);
  int contained_count = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const query::BgpQuery q = gen.Generate(5, GetParam().var_preds);
    const query::BgpQuery w = gen.Generate(4, GetParam().var_preds);
    const bool truth = containment::IsContainedIn(q, w, dict);
    auto outcome = containment::Check(q, w, &dict);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->contained, truth)
        << "Q =\n" << q.ToString(dict) << "\nW =\n" << w.ToString(dict);
    // Proposition 5.1: truth implies the witness filter passed.
    if (truth) {
      EXPECT_TRUE(outcome->filter_passed);
      ++contained_count;
    }
  }
  // The generator must produce real positives or the test proves nothing.
  EXPECT_GT(contained_count, 3);
}

TEST_P(ContainmentPropertyTest, IndexAgreesWithPairwise) {
  rdf::TermDictionary dict;
  RandomQueryGen gen(&dict, GetParam().seed ^ 0xABCDEF);
  index::MvIndex index(&dict);
  std::vector<query::BgpQuery> views;
  for (int i = 0; i < 60; ++i) {
    query::BgpQuery w = gen.Generate(4, GetParam().var_preds);
    auto insert = index.Insert(w, i);
    ASSERT_TRUE(insert.ok());
    views.push_back(std::move(w));
  }
  for (int trial = 0; trial < 40; ++trial) {
    const query::BgpQuery q = gen.Generate(5, GetParam().var_preds);
    const auto walk = index.FindContaining(q);
    const auto scan = index.ScanContaining(q);
    std::set<std::uint32_t> walk_ids, scan_ids;
    for (const auto& m : walk.contained) walk_ids.insert(m.stored_id);
    for (const auto& m : scan.contained) scan_ids.insert(m.stored_id);
    EXPECT_EQ(walk_ids, scan_ids) << "probe:\n" << q.ToString(dict);
    // And every verdict agrees with the direct homomorphism ground truth
    // over the deduplicated entries.
    for (std::uint32_t id = 0; id < index.num_entries(); ++id) {
      const bool truth = containment::IsContainedIn(
          q, index.entry(id).canonical, dict);
      EXPECT_EQ(walk_ids.count(id) > 0, truth)
          << "probe:\n" << q.ToString(dict) << "\nview:\n"
          << index.entry(id).canonical.ToString(dict);
    }
  }
}

TEST_P(ContainmentPropertyTest, SemanticSoundnessOnRandomGraphs) {
  // If Q ⊑ W then on EVERY graph Ask(Q) implies Ask(W).  Exercise with
  // random graphs over the same tiny vocabulary.
  rdf::TermDictionary dict;
  RandomQueryGen gen(&dict, GetParam().seed ^ 0x5EED);
  util::Rng rng(GetParam().seed);
  std::vector<rdf::TermId> nodes, preds;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(dict.MakeIri("urn:n" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    preds.push_back(dict.MakeIri("urn:p" + std::to_string(i)));
  }
  // Graph constants must overlap the query constants for Ask to fire.
  nodes.push_back(dict.MakeIri("urn:c0"));
  nodes.push_back(dict.MakeIri("urn:c1"));

  for (int trial = 0; trial < 60; ++trial) {
    const query::BgpQuery q = gen.Generate(4, GetParam().var_preds);
    const query::BgpQuery w = gen.Generate(3, GetParam().var_preds);
    if (!containment::Contains(q, w, &dict)) continue;
    for (int g = 0; g < 5; ++g) {
      rdf::Graph graph;
      const std::size_t edges = 3 + rng.Uniform(0, 9);
      for (std::size_t e = 0; e < edges; ++e) {
        graph.Add(nodes[rng.Uniform(0, nodes.size() - 1)],
                  preds[rng.Uniform(0, preds.size() - 1)],
                  nodes[rng.Uniform(0, nodes.size() - 1)]);
      }
      if (eval::Ask(q, graph, dict)) {
        EXPECT_TRUE(eval::Ask(w, graph, dict))
            << "containment violated on a concrete graph\nQ =\n"
            << q.ToString(dict) << "\nW =\n" << w.ToString(dict);
      }
    }
  }
}

TEST_P(ContainmentPropertyTest, FreezeCharacterisation) {
  // Chandra-Merlin: Q ⊑ W iff W matches the canonical instance freeze(Q).
  rdf::TermDictionary dict;
  RandomQueryGen gen(&dict, GetParam().seed ^ 0xF00D);
  for (int trial = 0; trial < 80; ++trial) {
    const query::BgpQuery q = gen.Generate(4, /*allow_var_preds=*/false);
    const query::BgpQuery w = gen.Generate(3, /*allow_var_preds=*/false);
    const rdf::Graph frozen = eval::Freeze(q, &dict);
    const bool freeze_truth = eval::Ask(w, frozen, dict);
    EXPECT_EQ(containment::Contains(q, w, &dict), freeze_truth)
        << "Q =\n" << q.ToString(dict) << "\nW =\n" << w.ToString(dict);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ContainmentPropertyTest,
    ::testing::Values(PropertyCase{1, false}, PropertyCase{2, false},
                      PropertyCase{3, false}, PropertyCase{4, true},
                      PropertyCase{5, true}, PropertyCase{6, true},
                      PropertyCase{7, false}, PropertyCase{8, true}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "seed" + std::to_string(info.param.seed) +
             (info.param.var_preds ? "_varpreds" : "_iripreds");
    });

}  // namespace
}  // namespace rdfc
