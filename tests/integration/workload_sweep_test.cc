// Parameterized sweeps over the five workload generators: structural
// invariants that must hold for EVERY generated query, plus end-to-end
// index invariants (self-containment, dedup consistency) per workload.

#include <gtest/gtest.h>

#include "containment/pipeline.h"
#include "index/mv_index.h"
#include "query/analysis.h"
#include "query/serialisation.h"
#include "query/witness.h"
#include "workload/workload.h"

namespace rdfc {
namespace {

struct SweepCase {
  workload::WorkloadId id;
  std::size_t count;
};

std::vector<query::BgpQuery> Generate(const SweepCase& c,
                                      rdf::TermDictionary* dict) {
  switch (c.id) {
    case workload::WorkloadId::kDbpedia:
      return workload::GenerateDbpedia(dict, c.count, 31);
    case workload::WorkloadId::kWatdiv:
      return workload::GenerateWatdiv(dict, c.count, 32);
    case workload::WorkloadId::kBsbm:
      return workload::GenerateBsbm(dict, c.count, 33);
    case workload::WorkloadId::kLubm: {
      auto result = workload::GenerateLubmExtended(dict, c.count, 34);
      EXPECT_TRUE(result.ok());
      return result.ok() ? std::move(result).value()
                         : std::vector<query::BgpQuery>{};
    }
    case workload::WorkloadId::kLdbc:
      return workload::GenerateLdbc(dict, c.count, 35);
  }
  return {};
}

class WorkloadSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(WorkloadSweepTest, StructuralInvariants) {
  rdf::TermDictionary dict;
  const auto queries = Generate(GetParam(), &dict);
  ASSERT_EQ(queries.size(), GetParam().count);
  for (const query::BgpQuery& q : queries) {
    ASSERT_FALSE(q.empty());
    const query::QueryShape shape = query::AnalyzeShape(q, dict);
    // Kind constraints of the RDF data model: subjects are never literals,
    // predicates are IRIs or variables.
    for (const rdf::Triple& t : q.patterns()) {
      EXPECT_FALSE(dict.IsLiteral(t.s));
      EXPECT_TRUE(dict.IsIri(t.p) || dict.IsVariable(t.p));
    }
    // ND-degree consistency: 1 iff witness-level f-graph.  (Shape-level
    // f-graph implies nd == 1; non-f-graph queries have nd > 1.)
    const std::uint64_t nd = query::NdDegree(q);
    if (shape.is_fgraph) {
      EXPECT_EQ(nd, 1u);
    } else {
      EXPECT_GT(nd, 1u);
    }
  }
}

TEST_P(WorkloadSweepTest, SerialisationInvariants) {
  rdf::TermDictionary dict;
  const auto queries = Generate(GetParam(), &dict);
  for (const query::BgpQuery& q : queries) {
    auto prepared = containment::PrepareStored(q, &dict);
    ASSERT_TRUE(prepared.ok());
    // Every non-var-predicate pattern appears as exactly one pair token.
    std::size_t pairs = 0;
    int depth = 0;
    bool balanced = true;
    for (const query::Token& tok : prepared->tokens) {
      switch (tok.type) {
        case query::TokenType::kPair: ++pairs; break;
        case query::TokenType::kOpen: ++depth; break;
        case query::TokenType::kClose: --depth; balanced &= depth >= 0; break;
        default: break;
      }
    }
    EXPECT_TRUE(balanced && depth == 0);
    EXPECT_EQ(pairs + prepared->var_pred_patterns.size(), q.size());
    // Canonicalisation preserved the pattern count.
    EXPECT_EQ(prepared->canonical.size(), q.size());
  }
}

TEST_P(WorkloadSweepTest, SelfContainmentThroughIndex) {
  rdf::TermDictionary dict;
  const auto queries = Generate(GetParam(), &dict);
  index::MvIndex index(&dict);
  std::vector<std::uint32_t> id_of;
  id_of.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto outcome = index.Insert(queries[i], i);
    ASSERT_TRUE(outcome.ok());
    id_of.push_back(outcome->stored_id);
  }
  // Probing with any inserted query must return (at least) the query itself.
  const std::size_t stride = std::max<std::size_t>(1, queries.size() / 64);
  for (std::size_t i = 0; i < queries.size(); i += stride) {
    const auto result = index.FindContaining(queries[i]);
    bool found_self = false;
    for (const auto& match : result.contained) {
      found_self = found_self || match.stored_id == id_of[i];
    }
    EXPECT_TRUE(found_self) << "query " << i << " of "
                            << workload::WorkloadName(GetParam().id) << "\n"
                            << queries[i].ToString(dict);
  }
}

TEST_P(WorkloadSweepTest, DedupConsistentWithEquivalence) {
  rdf::TermDictionary dict;
  const auto queries = Generate(GetParam(), &dict);
  index::MvIndex index(&dict);
  std::unordered_map<std::uint32_t, std::size_t> first_of;
  const std::size_t limit = std::min<std::size_t>(queries.size(), 300);
  for (std::size_t i = 0; i < limit; ++i) {
    auto outcome = index.Insert(queries[i], i);
    ASSERT_TRUE(outcome.ok());
    auto [it, fresh] = first_of.emplace(outcome->stored_id, i);
    if (!fresh) {
      // Dedup claims these two are the same query: they must be mutually
      // containing (Boolean equivalent).
      EXPECT_TRUE(
          containment::Contains(queries[i], queries[it->second], &dict));
      EXPECT_TRUE(
          containment::Contains(queries[it->second], queries[i], &dict));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSweepTest,
    ::testing::Values(SweepCase{workload::WorkloadId::kDbpedia, 600},
                      SweepCase{workload::WorkloadId::kWatdiv, 400},
                      SweepCase{workload::WorkloadId::kBsbm, 300},
                      SweepCase{workload::WorkloadId::kLubm, 200},
                      SweepCase{workload::WorkloadId::kLdbc, 53}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return workload::WorkloadName(info.param.id);
    });

}  // namespace
}  // namespace rdfc
