#include "query/serialisation.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "../test_util.h"
#include "query/analysis.h"

namespace rdfc {
namespace query {
namespace {

using rdfc::testing::ParseOrDie;

class SerialisationTest : public ::testing::Test {
 protected:
  BgpQuery Q(const std::string& text) { return ParseOrDie(text, &dict_); }

  SerialisedQuery Serialise(const BgpQuery& q) {
    CanonicalMap canonical(&dict_);
    auto result = SerialiseQuery(q, &dict_, &canonical);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).value() : SerialisedQuery{};
  }

  /// Counts the pair tokens — each triple pattern must appear exactly once.
  static std::size_t CountPairs(const std::vector<Token>& tokens) {
    std::size_t n = 0;
    for (const Token& t : tokens) n += t.type == TokenType::kPair ? 1 : 0;
    return n;
  }

  static bool Balanced(const std::vector<Token>& tokens) {
    int depth = 0;
    for (const Token& t : tokens) {
      if (t.type == TokenType::kOpen) ++depth;
      if (t.type == TokenType::kClose) --depth;
      if (depth < 0) return false;
    }
    return depth == 0;
  }

  rdf::TermDictionary dict_;
};

TEST_F(SerialisationTest, PaperExample32) {
  // Example 3.2: W = {(?x,name,?y),(?x,fromAlbum,?z),(?z,name,?w)} anchored
  // at ?x serialises to  ?x ( <fromAlbum>:?z ( <name>:?w ) <name>:?y ).
  BgpQuery w = Q(R"(SELECT ?y ?w WHERE {
      ?x :name ?y . ?x :fromAlbum ?z . ?z :name ?w . })");
  std::vector<Token> tokens;
  CanonicalMap canonical(&dict_);
  ASSERT_TRUE(SerialiseComponent(w, &dict_, dict_.MakeVariable("x"),
                                 &canonical, &tokens)
                  .ok());
  const std::string rendered = TokensToString(tokens, dict_);
  // Canonical renaming: ?x -> ?x1, then first-appearance order.  fromAlbum
  // sorts before name (IRI interning order is parse order: name first...),
  // so just validate structure.
  EXPECT_EQ(tokens[0].type, TokenType::kAnchor);
  EXPECT_EQ(tokens[0].term, dict_.CanonicalVariable(1));
  EXPECT_EQ(tokens[1].type, TokenType::kOpen);
  EXPECT_EQ(CountPairs(tokens), 3u);
  EXPECT_TRUE(Balanced(tokens));
  // Exactly one nested subgraph: the album vertex ?z.
  std::size_t opens = 0;
  for (const Token& t : tokens) opens += t.type == TokenType::kOpen ? 1 : 0;
  EXPECT_EQ(opens, 2u);
}

TEST_F(SerialisationTest, EveryTripleEmittedOnceOnCycles) {
  // Triangle: the paper's Algorithm 1 as printed would drop the closing
  // edge; our lossless variant emits all three (DESIGN.md deviation 1).
  const BgpQuery q = Q("ASK { ?x :p ?y . ?y :q ?z . ?z :r ?x . }");
  const SerialisedQuery s = Serialise(q);
  EXPECT_EQ(CountPairs(s.tokens), 3u);
  EXPECT_TRUE(Balanced(s.tokens));
}

TEST_F(SerialisationTest, SelfLoop) {
  const BgpQuery q = Q("ASK { ?x :p ?x . }");
  const SerialisedQuery s = Serialise(q);
  EXPECT_EQ(CountPairs(s.tokens), 1u);
  // The pair's target is the anchor variable itself.
  EXPECT_EQ(s.tokens[0].term, s.tokens[2].term);
}

TEST_F(SerialisationTest, InversePairsForIncomingEdges) {
  // Anchor will be the hub ?x; the edge from :e is incoming.
  const BgpQuery q = Q("ASK { :e :p ?x . ?x :q ?y . ?x :r ?z . }");
  const SerialisedQuery s = Serialise(q);
  bool saw_inverse = false;
  for (const Token& t : s.tokens) {
    saw_inverse = saw_inverse || (t.type == TokenType::kPair && t.inverse);
  }
  EXPECT_TRUE(saw_inverse);
}

TEST_F(SerialisationTest, CanonicalVariableRenaming) {
  // Optimisation II: first variable in the stream is ?x1, second ?x2, ...
  const BgpQuery q = Q("ASK { ?song :fromAlbum ?album . ?album :name ?n . }");
  const SerialisedQuery s = Serialise(q);
  std::unordered_set<rdf::TermId> vars;
  for (const Token& t : s.tokens) {
    if ((t.type == TokenType::kAnchor || t.type == TokenType::kPair) &&
        dict_.IsVariable(t.term)) {
      vars.insert(t.term);
    }
  }
  EXPECT_EQ(vars.size(), 3u);
  EXPECT_TRUE(vars.count(dict_.CanonicalVariable(1)));
  EXPECT_TRUE(vars.count(dict_.CanonicalVariable(2)));
  EXPECT_TRUE(vars.count(dict_.CanonicalVariable(3)));
}

TEST_F(SerialisationTest, IsomorphicQueriesSerialiseIdentically) {
  // Same structure, different variable names -> identical token streams
  // (this is what makes the mv-index dedup recurring queries).
  const BgpQuery a = Q("ASK { ?s :name ?n . ?s :fromAlbum ?al . }");
  const BgpQuery b = Q("ASK { ?song :name ?nm . ?song :fromAlbum ?x . }");
  EXPECT_EQ(Serialise(a).tokens, Serialise(b).tokens);
}

TEST_F(SerialisationTest, PatternOrderInsensitive) {
  const BgpQuery a = Q("ASK { ?s :p1 :o1 . ?s :p2 :o2 . ?s :p3 ?v . }");
  const BgpQuery b = Q("ASK { ?s :p3 ?v . ?s :p1 :o1 . ?s :p2 :o2 . }");
  EXPECT_EQ(Serialise(a).tokens, Serialise(b).tokens);
}

TEST_F(SerialisationTest, DifferentQueriesSerialiseDifferently) {
  const BgpQuery a = Q("ASK { ?s :p :o1 . }");
  const BgpQuery b = Q("ASK { ?s :p :o2 . }");
  const BgpQuery c = Q("ASK { ?s :p ?v . }");
  EXPECT_NE(Serialise(a).tokens, Serialise(b).tokens);
  EXPECT_NE(Serialise(a).tokens, Serialise(c).tokens);
}

TEST_F(SerialisationTest, PairsOrderedByPredicate) {
  // Optimisation I: sibling pairs sorted by predicate id.
  const BgpQuery q = Q("ASK { ?s :b ?y . ?s :a ?z . ?s :c ?w . }");
  const SerialisedQuery s = Serialise(q);
  std::vector<rdf::TermId> preds;
  for (const Token& t : s.tokens) {
    if (t.type == TokenType::kPair) preds.push_back(t.pred);
  }
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_TRUE(preds[0] < preds[1] && preds[1] < preds[2]);
}

TEST_F(SerialisationTest, MultiComponentUsesSeparators) {
  const BgpQuery q = Q("ASK { ?a :p ?b . ?c :q ?d . }");
  const SerialisedQuery s = Serialise(q);
  EXPECT_EQ(s.num_components, 2u);
  std::size_t separators = 0;
  for (const Token& t : s.tokens) {
    separators += t.type == TokenType::kSeparator ? 1 : 0;
  }
  EXPECT_EQ(separators, 1u);
}

TEST_F(SerialisationTest, VariablePredicatesRejected) {
  const BgpQuery q = Q("ASK { ?a ?p ?b . }");
  CanonicalMap canonical(&dict_);
  EXPECT_FALSE(SerialiseQuery(q, &dict_, &canonical).ok());
}

TEST_F(SerialisationTest, EmptyQueryRejected) {
  BgpQuery q;
  CanonicalMap canonical(&dict_);
  EXPECT_FALSE(SerialiseQuery(q, &dict_, &canonical).ok());
}

TEST_F(SerialisationTest, AnchorPrefersHighDegree) {
  const BgpQuery q = Q("ASK { ?hub :a ?l1 . ?hub :b ?l2 . ?hub :c ?l3 . }");
  EXPECT_EQ(ChooseAnchor(q), dict_.MakeVariable("hub"));
}

TEST_F(SerialisationTest, TokenEqualityAndHash) {
  const Token open = Token::Open();
  const Token close = Token::Close();
  EXPECT_FALSE(open == close);
  EXPECT_EQ(Token::Pair(3, 4, false), Token::Pair(3, 4, false));
  EXPECT_FALSE(Token::Pair(3, 4, false) == Token::Pair(3, 4, true));
  TokenHash hash;
  EXPECT_EQ(hash(Token::Pair(3, 4, false)), hash(Token::Pair(3, 4, false)));
  EXPECT_NE(hash(Token::Pair(3, 4, false)), hash(Token::Pair(4, 3, false)));
}

TEST_F(SerialisationTest, SizeLinearInQuery) {
  // |tokens| <= anchor + 2 pairs-per-triple bound: 1 + |Q| + 2*|vertices|.
  const BgpQuery q = Q(R"(ASK {
      ?a :p1 ?b . ?b :p2 ?c . ?c :p3 ?d . ?d :p4 ?e .
      ?a :p5 ?f . ?f :p6 ?g . })");
  const SerialisedQuery s = Serialise(q);
  EXPECT_EQ(CountPairs(s.tokens), q.size());
  EXPECT_LE(s.tokens.size(), 1 + q.size() + 2 * q.Vertices().size());
}

}  // namespace
}  // namespace query
}  // namespace rdfc
