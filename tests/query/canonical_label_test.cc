#include "query/canonical_label.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "../test_util.h"
#include "util/rng.h"

namespace rdfc {
namespace query {
namespace {

using rdfc::testing::ParseOrDie;

class CanonicalLabelTest : public ::testing::Test {
 protected:
  BgpQuery Q(const std::string& text) { return ParseOrDie(text, &dict_); }
  rdf::TermDictionary dict_;
};

TEST_F(CanonicalLabelTest, RenamedQueriesShareForms) {
  const CanonicalForm a =
      CanonicalLabel(Q("ASK { ?x :p ?y . ?y :q :c . }"), &dict_);
  const CanonicalForm b =
      CanonicalLabel(Q("ASK { ?bob :q :c . ?alice :p ?bob . }"), &dict_);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(AreIsomorphic(Q("ASK { ?x :p ?y . ?y :q :c . }"),
                            Q("ASK { ?bob :q :c . ?alice :p ?bob . }"),
                            &dict_));
}

TEST_F(CanonicalLabelTest, NonIsomorphicDiffer) {
  EXPECT_FALSE(AreIsomorphic(Q("ASK { ?x :p ?y . }"),
                             Q("ASK { ?x :q ?y . }"), &dict_));
  EXPECT_FALSE(AreIsomorphic(Q("ASK { ?x :p ?y . }"),
                             Q("ASK { ?x :p ?x . }"), &dict_));
  EXPECT_FALSE(AreIsomorphic(Q("ASK { ?x :p ?y . ?y :p ?z . }"),
                             Q("ASK { ?x :p ?y . ?z :p ?y . }"), &dict_));
  EXPECT_FALSE(AreIsomorphic(Q("ASK { ?x :p :c . }"),
                             Q("ASK { ?x :p :d . }"), &dict_));
}

TEST_F(CanonicalLabelTest, SymmetricQueriesAreWellDefined) {
  // Highly automorphic structures must still canonicalise deterministically:
  // two interchangeable independent edges.
  const CanonicalForm a =
      CanonicalLabel(Q("ASK { ?a :p ?b . ?c :p ?d . }"), &dict_);
  const CanonicalForm b =
      CanonicalLabel(Q("ASK { ?w :p ?v . ?u :p ?t . }"), &dict_);
  EXPECT_EQ(a, b);
  // A 3-cycle (cyclic automorphism group).
  const CanonicalForm c =
      CanonicalLabel(Q("ASK { ?a :p ?b . ?b :p ?c . ?c :p ?a . }"), &dict_);
  const CanonicalForm d =
      CanonicalLabel(Q("ASK { ?z :p ?x . ?y :p ?z . ?x :p ?y . }"), &dict_);
  EXPECT_EQ(c, d);
}

TEST_F(CanonicalLabelTest, DistinguishesSubtleStructures) {
  // Same degree sequences, different wiring: a 6-cycle vs two 3-cycles.
  const BgpQuery six = Q(
      "ASK { ?a :p ?b . ?b :p ?c . ?c :p ?d . ?d :p ?e . ?e :p ?f . ?f :p ?a . }");
  const BgpQuery two_threes = Q(
      "ASK { ?a :p ?b . ?b :p ?c . ?c :p ?a . ?d :p ?e . ?e :p ?f . ?f :p ?d . }");
  EXPECT_FALSE(AreIsomorphic(six, two_threes, &dict_));
}

TEST_F(CanonicalLabelTest, VariablePredicatesParticipate) {
  EXPECT_TRUE(AreIsomorphic(Q("ASK { ?x ?v ?y . ?y ?v ?z . }"),
                            Q("ASK { ?b ?w ?c . ?a ?w ?b . }"), &dict_));
  EXPECT_FALSE(AreIsomorphic(Q("ASK { ?x ?v ?y . ?y ?v ?z . }"),
                             Q("ASK { ?x ?v ?y . ?y ?w ?z . }"), &dict_));
}

TEST_F(CanonicalLabelTest, FormTriplesAreCanonicallyRenamed) {
  const CanonicalForm form =
      CanonicalLabel(Q("ASK { ?zzz :p ?aaa . }"), &dict_);
  ASSERT_EQ(form.triples.size(), 1u);
  EXPECT_TRUE(dict_.IsVariable(form.triples[0].s));
  EXPECT_TRUE(dict_.IsVariable(form.triples[0].o));
  const std::string s_name = dict_.lexical(form.triples[0].s);
  const std::string o_name = dict_.lexical(form.triples[0].o);
  EXPECT_TRUE((s_name == "x1" && o_name == "x2") ||
              (s_name == "x2" && o_name == "x1"));
}

TEST_F(CanonicalLabelTest, ConstantsOnlyQuery) {
  const CanonicalForm a = CanonicalLabel(Q("ASK { :a :p :b . :b :p :c . }"),
                                         &dict_);
  const CanonicalForm b = CanonicalLabel(Q("ASK { :b :p :c . :a :p :b . }"),
                                         &dict_);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.triples.size(), 2u);
}

TEST_F(CanonicalLabelTest, RandomPermutationProperty) {
  // For random queries, shuffling patterns and bijectively renaming
  // variables must preserve the canonical form; renaming non-bijectively
  // (merging two variables) must change it.
  util::Rng rng(1123);
  std::mt19937 shuffler(77);
  std::vector<rdf::TermId> preds;
  for (int i = 0; i < 3; ++i) {
    preds.push_back(dict_.MakeIri("urn:cl:p" + std::to_string(i)));
  }
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t num_vars = 2 + rng.Uniform(0, 3);
    std::vector<rdf::TermId> vars, renamed;
    for (std::size_t v = 0; v < num_vars; ++v) {
      vars.push_back(
          dict_.MakeVariable("o" + std::to_string(trial) + "_" +
                             std::to_string(v)));
      renamed.push_back(
          dict_.MakeVariable("r" + std::to_string(trial) + "_" +
                             std::to_string(v)));
    }
    // Random bijection.
    std::vector<std::size_t> perm(num_vars);
    for (std::size_t i = 0; i < num_vars; ++i) perm[i] = i;
    std::shuffle(perm.begin(), perm.end(), shuffler);

    BgpQuery original;
    std::vector<rdf::Triple> mapped_patterns;
    const std::size_t n = 1 + rng.Uniform(0, 4);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t sv = rng.Uniform(0, num_vars - 1);
      const std::size_t ov = rng.Uniform(0, num_vars - 1);
      const rdf::TermId p = preds[rng.Uniform(0, preds.size() - 1)];
      original.AddPattern(vars[sv], p, vars[ov]);
      mapped_patterns.push_back(
          rdf::Triple(renamed[perm[sv]], p, renamed[perm[ov]]));
    }
    std::shuffle(mapped_patterns.begin(), mapped_patterns.end(), shuffler);
    BgpQuery permuted;
    for (const rdf::Triple& t : mapped_patterns) permuted.AddPattern(t);

    EXPECT_TRUE(AreIsomorphic(original, permuted, &dict_))
        << original.ToString(dict_) << "\nvs\n" << permuted.ToString(dict_);
  }
}

TEST_F(CanonicalLabelTest, LargeSymmetricClassCompletesUnderTheCap) {
  // A 12-arm same-predicate star has a 12-element symmetric class; without
  // the branching cap this would explore 12! leaves.  Must complete fast
  // and still behave deterministically and soundly (equal forms for equal
  // inputs; non-isomorphic sizes rejected outright).
  std::string star = "ASK { ";
  for (int i = 0; i < 12; ++i) {
    star += "?x :p ?o" + std::to_string(i) + " . ";
  }
  star += "}";
  const CanonicalForm a = CanonicalLabel(Q(star), &dict_);
  const CanonicalForm b = CanonicalLabel(Q(star), &dict_);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.triples.size(), 12u);
  EXPECT_FALSE(AreIsomorphic(Q(star), Q("ASK { ?x :p ?y . }"), &dict_));
}

TEST_F(CanonicalLabelTest, StrongerThanSerialisationDedup) {
  // Two isomorphic queries whose variables were interned in opposite orders
  // still share a canonical form regardless of term-id tie-breaks.
  rdf::TermDictionary dict;
  const rdf::TermId p = dict.MakeIri("urn:p");
  // Query 1: vars interned a-then-b.
  BgpQuery q1;
  {
    const rdf::TermId a = dict.MakeVariable("aa");
    const rdf::TermId b = dict.MakeVariable("bb");
    q1.AddPattern(a, p, b);
    q1.AddPattern(b, p, a);
  }
  // Query 2: same 2-cycle, vars interned in reverse roles.
  BgpQuery q2;
  {
    const rdf::TermId d = dict.MakeVariable("dd");
    const rdf::TermId c = dict.MakeVariable("cc");
    q2.AddPattern(c, p, d);
    q2.AddPattern(d, p, c);
  }
  EXPECT_TRUE(AreIsomorphic(q1, q2, &dict));
}

}  // namespace
}  // namespace query
}  // namespace rdfc
