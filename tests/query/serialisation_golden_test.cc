// Golden tests: exact serialised forms for pinned queries.  These freeze
// the on-disk/on-wire canonical representation — any change to anchor
// selection, pair ordering (optimisation I), or variable renaming
// (optimisation II) must consciously update these strings AND bump the
// snapshot persistence story (loaded indexes rebuild from canonical triples,
// so a silent serialisation change would fork old and new trees).

#include <gtest/gtest.h>

#include "../test_util.h"
#include "query/serialisation.h"

namespace rdfc {
namespace query {
namespace {

using rdfc::testing::ParseOrDie;

class SerialisationGoldenTest : public ::testing::Test {
 protected:
  std::string Golden(const std::string& text) {
    const BgpQuery q = ParseOrDie(text, &dict_);
    CanonicalMap canonical(&dict_);
    auto result = SerialiseQuery(q, &dict_, &canonical);
    EXPECT_TRUE(result.ok());
    return result.ok() ? TokensToString(result->tokens, dict_)
                       : std::string();
  }
  rdf::TermDictionary dict_;
};

TEST_F(SerialisationGoldenTest, SingleTriple) {
  EXPECT_EQ(Golden("ASK { ?s :p ?o . }"),
            "?x1 ( <urn:t:p>:?x2 )");
}

TEST_F(SerialisationGoldenTest, ConstantObject) {
  EXPECT_EQ(Golden("ASK { ?s :p :c . }"),
            "?x1 ( <urn:t:p>:<urn:t:c> )");
}

TEST_F(SerialisationGoldenTest, PaperExampleView) {
  // Example 3.2's W, anchored at the highest-degree vertex (?x and ?z both
  // have degree 2; the tie-break picks the vertex with the smaller incident
  // signature).  Pinned exactly:
  EXPECT_EQ(
      Golden("ASK { ?x :name ?y . ?x :fromAlbum ?z . ?z :name ?w . }"),
      "?x1 ( <urn:t:name>:?x2 <urn:t:fromAlbum>:?x3 ( <urn:t:name>:?x4 ) )");
}

TEST_F(SerialisationGoldenTest, PredicateOrderingIsOptimisationI) {
  // Sibling pairs are ordered by predicate id = interning order: name was
  // interned before fromAlbum in this fixture's dictionary? No — fresh
  // dictionary per test: :a, :b interned in pattern order below.
  EXPECT_EQ(Golden("ASK { ?s :b ?y . ?s :a ?z . }"),
            "?x1 ( <urn:t:b>:?x2 <urn:t:a>:?x3 )");
}

TEST_F(SerialisationGoldenTest, InverseEdge) {
  EXPECT_EQ(Golden("ASK { :e :p ?x . ?x :q ?y . ?x :r ?z . }"),
            "?x1 ( <urn:t:p>⁻¹:<urn:t:e> <urn:t:q>:?x2 <urn:t:r>:?x3 )");
}

TEST_F(SerialisationGoldenTest, SelfLoop) {
  EXPECT_EQ(Golden("ASK { ?s :p ?s . }"), "?x1 ( <urn:t:p>:?x1 )");
}

TEST_F(SerialisationGoldenTest, TriangleKeepsClosingEdge) {
  EXPECT_EQ(
      Golden("ASK { ?a :p ?b . ?b :q ?c . ?c :r ?a . }"),
      "?x1 ( <urn:t:p>:?x2 ( <urn:t:q>:?x3 ( <urn:t:r>:?x1 ) ) )");
}

TEST_F(SerialisationGoldenTest, TwoComponentsWithSeparator) {
  EXPECT_EQ(Golden("ASK { ?a :p ?b . ?c :q ?d . }"),
            "?x1 ( <urn:t:p>:?x2 ) || ?x3 ( <urn:t:q>:?x4 )");
}

}  // namespace
}  // namespace query
}  // namespace rdfc
