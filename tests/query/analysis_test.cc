#include "query/analysis.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace rdfc {
namespace query {
namespace {

using rdfc::testing::ParseOrDie;

class AnalysisTest : public ::testing::Test {
 protected:
  BgpQuery Q(const std::string& text) { return ParseOrDie(text, &dict_); }
  rdf::TermDictionary dict_;
};

TEST_F(AnalysisTest, PaperQueryQIsFGraph) {
  // The running-example query Q (Example 2.1) is an f-graph (Example 3.1).
  const BgpQuery q = Q(R"(SELECT ?sN ?aN WHERE {
      ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN .
      ?alb :artist ?art . ?art :type :MusicalArtist . })");
  EXPECT_TRUE(IsFGraph(q));
  EXPECT_TRUE(IsAcyclic(q));
}

TEST_F(AnalysisTest, ConditionOneViolation) {
  // (s, p, o1) and (s, p, o2): two objects for the same subject-predicate.
  EXPECT_FALSE(IsFGraph(Q("ASK { ?x :p ?o1 . ?x :p ?o2 . }")));
  EXPECT_FALSE(IsFGraph(Q("ASK { ?x a :A . ?x a :B . }")));
}

TEST_F(AnalysisTest, ConditionTwoViolation) {
  // (s1, p, o) and (s2, p, o): two subjects for the same predicate-object.
  EXPECT_FALSE(IsFGraph(Q("ASK { ?s1 :p ?o . ?s2 :p ?o . }")));
  EXPECT_FALSE(IsFGraph(Q("ASK { ?s1 :p :c . ?s2 :p :c . }")));
}

TEST_F(AnalysisTest, SharedObjectDifferentPredicatesIsFGraph) {
  EXPECT_TRUE(IsFGraph(Q("ASK { ?s1 :p ?o . ?s2 :q ?o . }")));
}

TEST_F(AnalysisTest, Fig2aQueryIsNotFGraph) {
  // Figure 2a: ?alb and ?sng both have artist ?art — condition (ii).
  const BgpQuery q = Q(R"(ASK {
      ?alb :artist ?art . ?sng :artist ?art .
      ?sng :name ?aN . ?art a :MusicalArtist . })");
  EXPECT_FALSE(IsFGraph(q));
}

TEST_F(AnalysisTest, SameTriplePatternTwiceIsStillFGraph) {
  // Set semantics: the duplicate collapses.
  const BgpQuery q = Q("ASK { ?x :p ?y . ?x :p ?y . }");
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(IsFGraph(q));
}

TEST_F(AnalysisTest, VariablePredicatesParticipateInConditions) {
  EXPECT_FALSE(IsFGraph(Q("ASK { ?x ?p ?o1 . ?x ?p ?o2 . }")));
  EXPECT_TRUE(IsFGraph(Q("ASK { ?x ?p ?o1 . ?x ?q ?o2 . }")));
}

TEST_F(AnalysisTest, CyclicityDetection) {
  EXPECT_TRUE(IsAcyclic(Q("ASK { ?x :p ?y . ?y :q ?z . }")));
  // Triangle.
  EXPECT_FALSE(IsAcyclic(Q("ASK { ?x :p ?y . ?y :q ?z . ?z :r ?x . }")));
  // Parallel edges count as a cycle in the multigraph.
  EXPECT_FALSE(IsAcyclic(Q("ASK { ?x :p ?y . ?x :q ?y . }")));
  // Self loop.
  EXPECT_FALSE(IsAcyclic(Q("ASK { ?x :p ?x . }")));
}

TEST_F(AnalysisTest, CyclicFGraphExists) {
  // Same-predicate triangle: cyclic but f-graph (distinct (s,p) and (p,o)).
  const BgpQuery q = Q("ASK { ?x :p ?y . ?y :p ?z . ?z :p ?x . }");
  EXPECT_TRUE(IsFGraph(q));
  EXPECT_FALSE(IsAcyclic(q));
}

TEST_F(AnalysisTest, ShapeSummary) {
  const QueryShape shape = AnalyzeShape(
      Q("ASK { ?x :p ?y . ?z ?v ?y . }"), dict_);
  EXPECT_FALSE(shape.only_iri_predicates);
  EXPECT_TRUE(shape.has_var_predicates);
  EXPECT_EQ(shape.num_triples, 2u);
  EXPECT_EQ(shape.num_vertices, 3u);
  EXPECT_EQ(shape.num_components, 1u);
}

TEST_F(AnalysisTest, LiteralVerticesConnect) {
  // Two patterns sharing a literal object are connected through it.
  const QueryShape shape =
      AnalyzeShape(Q(R"(ASK { ?a :p "5" . ?b :q "5" . })"), dict_);
  EXPECT_EQ(shape.num_components, 1u);
}

TEST_F(AnalysisTest, ComponentsSplit) {
  const BgpQuery q = Q("ASK { ?a :p ?b . ?c :q ?d . ?c :r ?e . }");
  const ComponentAssignment assignment = ConnectedComponents(q, dict_);
  EXPECT_EQ(assignment.num_components, 2u);
  const auto components = SplitComponents(q, dict_);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].size() + components[1].size(), 3u);
}

TEST_F(AnalysisTest, ComponentsExcludingVarPredicates) {
  // Removing the var-predicate bridge splits the query in two (Section 5.2).
  const BgpQuery q = Q("ASK { ?a :p ?b . ?b ?v ?c . ?c :q ?d . }");
  std::vector<rdf::Triple> var_preds;
  const auto components = SplitComponents(q, dict_, true, &var_preds);
  EXPECT_EQ(components.size(), 2u);
  ASSERT_EQ(var_preds.size(), 1u);
  EXPECT_TRUE(dict_.IsVariable(var_preds[0].p));
  // Without exclusion it is a single component.
  EXPECT_EQ(SplitComponents(q, dict_).size(), 1u);
}

TEST_F(AnalysisTest, EmptyQueryShape) {
  BgpQuery q;
  const QueryShape shape = AnalyzeShape(q, dict_);
  EXPECT_TRUE(shape.is_fgraph);
  EXPECT_TRUE(shape.is_acyclic);
  EXPECT_EQ(shape.num_components, 0u);
  EXPECT_EQ(shape.num_vertices, 0u);
}

}  // namespace
}  // namespace query
}  // namespace rdfc
