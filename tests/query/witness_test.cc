#include "query/witness.h"

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "../test_util.h"
#include "query/analysis.h"

namespace rdfc {
namespace query {
namespace {

using rdfc::testing::ParseOrDie;
using rdfc::testing::Var;

class WitnessTest : public ::testing::Test {
 protected:
  BgpQuery Q(const std::string& text) { return ParseOrDie(text, &dict_); }

  /// The witness triples, with at most one (s,p) duplicate — i.e. the
  /// witness is an f-graph over its classes.
  static bool WitnessIsFGraph(const Witness& w) {
    // (s,p) -> o and (p,o) -> s must be single-valued over witness triples.
    std::map<std::pair<std::uint32_t, rdf::TermId>, std::uint32_t> out, in;
    for (const Witness::WTriple& t : w.triples) {
      auto [it1, fresh1] = out.insert({{t.s, t.p}, t.o});
      if (!fresh1 && it1->second != t.o) return false;
      auto [it2, fresh2] = in.insert({{t.o, t.p}, t.s});
      if (!fresh2 && it2->second != t.s) return false;
    }
    return true;
  }

  rdf::TermDictionary dict_;
};

TEST_F(WitnessTest, FGraphQueryIsItsOwnWitness) {
  const BgpQuery q = Q(R"(ASK {
      ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN . })");
  ASSERT_TRUE(IsFGraph(q));
  const Witness w = BuildWitness(q);
  EXPECT_EQ(w.nd_degree, 1u);
  EXPECT_EQ(w.num_classes, q.Vertices().size());
  EXPECT_EQ(w.triples.size(), q.size());
  for (const auto& members : w.class_members) {
    EXPECT_EQ(members.size(), 1u);
  }
}

TEST_F(WitnessTest, PaperFigure2Example) {
  // Fig. 2a: (?alb, artist, ?art), (?sng, artist, ?art), (?sng, name, ?aN),
  // (?art, type, MusicalArtist).  Witness merges {?alb, ?sng}; ND-degree 2
  // (Example 5.3).
  const BgpQuery q = Q(R"(ASK {
      ?alb :artist ?art . ?sng :artist ?art .
      ?sng :name ?aN . ?art a :MusicalArtist . })");
  const Witness w = BuildWitness(q);
  EXPECT_EQ(w.nd_degree, 2u);
  const std::uint32_t alb = w.ClassOf(Var(&dict_, "alb"));
  const std::uint32_t sng = w.ClassOf(Var(&dict_, "sng"));
  EXPECT_EQ(alb, sng);
  EXPECT_EQ(w.class_members[alb].size(), 2u);
  // Witness triples dedup: (alb,artist,art) and (sng,artist,art) collapse.
  EXPECT_EQ(w.triples.size(), 3u);
  EXPECT_TRUE(WitnessIsFGraph(w));
}

TEST_F(WitnessTest, ConditionOneMerges) {
  const BgpQuery q = Q("ASK { ?x :p ?a . ?x :p ?b . }");
  const Witness w = BuildWitness(q);
  EXPECT_EQ(w.ClassOf(Var(&dict_, "a")), w.ClassOf(Var(&dict_, "b")));
  EXPECT_EQ(w.nd_degree, 2u);
}

TEST_F(WitnessTest, FixPointCascades) {
  // Merging ?a,?b (condition i) creates a new violation that forces ?c,?d
  // to merge too; a single-pass implementation would miss it.
  const BgpQuery q = Q(R"(ASK {
      ?x :p ?a . ?x :p ?b . ?a :q ?c . ?b :q ?d . })");
  const Witness w = BuildWitness(q);
  EXPECT_EQ(w.ClassOf(Var(&dict_, "a")), w.ClassOf(Var(&dict_, "b")));
  EXPECT_EQ(w.ClassOf(Var(&dict_, "c")), w.ClassOf(Var(&dict_, "d")));
  EXPECT_EQ(w.nd_degree, 4u);
  EXPECT_TRUE(WitnessIsFGraph(w));
}

TEST_F(WitnessTest, ConstantsCanShareAClass) {
  const BgpQuery q = Q("ASK { ?x :p :a . ?x :p :b . }");
  const Witness w = BuildWitness(q);
  EXPECT_EQ(w.ClassOf(rdfc::testing::Iri(&dict_, "a")),
            w.ClassOf(rdfc::testing::Iri(&dict_, "b")));
  EXPECT_EQ(w.nd_degree, 2u);
}

TEST_F(WitnessTest, ConditionTwoMerges) {
  const BgpQuery q = Q("ASK { ?s1 :p ?o . ?s2 :p ?o . ?s1 :r ?z . }");
  const Witness w = BuildWitness(q);
  EXPECT_EQ(w.ClassOf(Var(&dict_, "s1")), w.ClassOf(Var(&dict_, "s2")));
}

TEST_F(WitnessTest, NdDegreeMultiplies) {
  // Two independent merge sites: 2 * 2 = 4.
  const BgpQuery q = Q(R"(ASK {
      ?x :p ?a . ?x :p ?b . ?y :q ?c . ?y :q ?d . ?x :link ?y . })");
  EXPECT_EQ(NdDegree(q), 4u);
}

TEST_F(WitnessTest, VariablePredicatesParticipate) {
  const BgpQuery q = Q("ASK { ?x ?v ?a . ?x ?v ?b . }");
  const Witness w = BuildWitness(q);
  EXPECT_EQ(w.ClassOf(Var(&dict_, "a")), w.ClassOf(Var(&dict_, "b")));
}

TEST_F(WitnessTest, WitnessIsAlwaysFGraphOnRandomQueries) {
  // Property sweep over adversarial merge structures.
  const char* queries[] = {
      "ASK { ?a :p ?b . ?a :p ?c . ?b :p ?d . ?c :p ?e . ?d :q ?f . ?e :q ?g . }",
      "ASK { ?a :p ?b . ?c :p ?b . ?a :q ?x . ?c :q ?y . }",
      "ASK { ?a :p ?a . ?a :p ?b . }",
      "ASK { ?a :p ?b . ?b :p ?a . ?a :q ?c . ?b :q ?d . }",
      "ASK { ?x a :A . ?x a :B . ?y a :A . ?y a :B . ?x :k ?y . }",
  };
  for (const char* text : queries) {
    const Witness w = BuildWitness(Q(text));
    EXPECT_TRUE(WitnessIsFGraph(w)) << text << "\n" << w.ToString(dict_);
  }
}

TEST_F(WitnessTest, EmptyQuery) {
  BgpQuery q;
  const Witness w = BuildWitness(q);
  EXPECT_EQ(w.num_classes, 0u);
  EXPECT_EQ(w.nd_degree, 1u);
  EXPECT_EQ(w.ClassOf(Var(&dict_, "x")), Witness::kInvalidClass);
}

}  // namespace
}  // namespace query
}  // namespace rdfc
