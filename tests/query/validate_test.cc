#include "query/validate.h"

#include <gtest/gtest.h>

#include "query/serialisation.h"
#include "sparql/parser.h"

namespace rdfc {
namespace query {
namespace {

/// Seeded-corruption suite: each test damages a token stream in one specific
/// way and asserts the validator names that rule.  Keeping the assertions on
/// message substrings pins the diagnostics to stay useful, not just non-OK.
class SerialisationValidateTest : public ::testing::Test {
 protected:
  /// Serialised tokens of a query given in SPARQL.
  std::vector<Token> Tokens(const std::string& text) {
    auto q = sparql::ParseQuery(text, &dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    CanonicalMap canonical(&dict_);
    auto serialised = SerialiseQuery(*q, &dict_, &canonical);
    EXPECT_TRUE(serialised.ok()) << serialised.status().ToString();
    return serialised->tokens;
  }

  util::Status Validate(const std::vector<Token>& tokens) {
    return ValidateSerialisation(tokens, dict_);
  }

  rdf::TermDictionary dict_;
};

TEST_F(SerialisationValidateTest, AcceptsWellFormedStreams) {
  EXPECT_TRUE(Validate(Tokens("ASK { ?x <urn:p> ?y }")).ok());
  EXPECT_TRUE(
      Validate(Tokens("ASK { ?x <urn:p> ?y . ?y <urn:q> ?z }")).ok());
  // Star, cycle, and self-loop shapes.
  EXPECT_TRUE(Validate(Tokens("ASK { ?x <urn:p> ?a . ?x <urn:q> ?b }")).ok());
  EXPECT_TRUE(Validate(
                  Tokens("ASK { ?x <urn:p> ?y . ?y <urn:q> ?x }"))
                  .ok());
  EXPECT_TRUE(Validate(Tokens("ASK { ?x <urn:p> ?x }")).ok());
  // Disconnected query: two components joined by a separator.
  EXPECT_TRUE(Validate(
                  Tokens("ASK { ?a <urn:p> ?b . ?c <urn:q> ?d }"))
                  .ok());
}

TEST_F(SerialisationValidateTest, RejectsEmptyStream) {
  const util::Status st = Validate({});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("empty"), std::string::npos);
}

TEST_F(SerialisationValidateTest, RejectsDroppedClose) {
  std::vector<Token> tokens = Tokens("ASK { ?x <urn:p> ?y }");
  tokens.pop_back();  // drop the final kClose
  const util::Status st = Validate(tokens);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unbalanced open"), std::string::npos);
}

TEST_F(SerialisationValidateTest, RejectsExtraClose) {
  std::vector<Token> tokens = Tokens("ASK { ?x <urn:p> ?y }");
  tokens.push_back(Token::Close());
  const util::Status st = Validate(tokens);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unbalanced close"), std::string::npos);
}

TEST_F(SerialisationValidateTest, RejectsAnchorMidComponent) {
  std::vector<Token> tokens = Tokens("ASK { ?x <urn:p> ?y }");
  tokens.insert(tokens.begin() + 2, Token::Anchor(dict_.CanonicalVariable(1)));
  const util::Status st = Validate(tokens);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("component start"), std::string::npos);
}

TEST_F(SerialisationValidateTest, RejectsPairBeforeAnchor) {
  std::vector<Token> tokens = Tokens("ASK { ?x <urn:p> ?y }");
  tokens.erase(tokens.begin());  // strip the anchor; stream now opens on `(`
  const util::Status st = Validate(tokens);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("open must follow an anchor"), std::string::npos);
}

TEST_F(SerialisationValidateTest, RejectsEmptyGroup) {
  const rdf::TermId v = dict_.CanonicalVariable(1);
  const util::Status st =
      Validate({Token::Anchor(v), Token::Open(), Token::Close()});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("empty parenthesis group"), std::string::npos);
}

TEST_F(SerialisationValidateTest, RejectsNullPairPayload) {
  std::vector<Token> tokens = Tokens("ASK { ?x <urn:p> ?y }");
  for (Token& tok : tokens) {
    if (tok.type == TokenType::kPair) tok.pred = rdf::kNullTerm;
  }
  const util::Status st = Validate(tokens);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("null predicate"), std::string::npos);
}

TEST_F(SerialisationValidateTest, RejectsVariablePredicate) {
  std::vector<Token> tokens = Tokens("ASK { ?x <urn:p> ?y }");
  for (Token& tok : tokens) {
    if (tok.type == TokenType::kPair) tok.pred = dict_.MakeVariable("vp");
  }
  const util::Status st = Validate(tokens);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("variable"), std::string::npos);
}

TEST_F(SerialisationValidateTest, RejectsPayloadOnDelimiters) {
  std::vector<Token> tokens = Tokens("ASK { ?x <urn:p> ?y }");
  for (Token& tok : tokens) {
    if (tok.type == TokenType::kOpen) tok.term = dict_.CanonicalVariable(1);
  }
  const util::Status st = Validate(tokens);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("delimiter carries payload"), std::string::npos);
}

TEST_F(SerialisationValidateTest, RejectsAnchorWithPairPayload) {
  std::vector<Token> tokens = Tokens("ASK { ?x <urn:p> ?y }");
  tokens.front().inverse = true;
  const util::Status st = Validate(tokens);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("anchor carries pair payload"),
            std::string::npos);
}

TEST_F(SerialisationValidateTest, RejectsTruncatedComponent) {
  const rdf::TermId v = dict_.CanonicalVariable(1);
  const util::Status st = Validate({Token::Anchor(v)});
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("mid-component"), std::string::npos);
}

TEST_F(SerialisationValidateTest, RejectsSeparatorInsideGroup) {
  std::vector<Token> tokens = Tokens("ASK { ?x <urn:p> ?y }");
  tokens.insert(tokens.end() - 1, Token::Separator());
  const util::Status st = Validate(tokens);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("inside an open parenthesis"), std::string::npos);
}

TEST_F(SerialisationValidateTest, ParseRejectsDuplicatePattern) {
  const rdf::TermId v1 = dict_.CanonicalVariable(1);
  const rdf::TermId v2 = dict_.CanonicalVariable(2);
  const rdf::TermId p = dict_.MakeIri("urn:p");
  const auto parsed = ParseSerialisation(
      {Token::Anchor(v1), Token::Open(), Token::Pair(p, v2, false),
       Token::Pair(p, v2, false), Token::Close()},
      dict_);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("duplicate triple pattern"),
            std::string::npos);
}

TEST_F(SerialisationValidateTest, ParseReconstructsSkeleton) {
  const std::vector<Token> tokens =
      Tokens("ASK { ?x <urn:p> ?y . ?y <urn:q> <urn:c> . ?z <urn:r> ?y }");
  const auto parsed = ParseSerialisation(tokens, dict_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 3u);
}

class RoundTripTest : public ::testing::Test {
 protected:
  util::Status RoundTrip(const std::string& text) {
    auto q = sparql::ParseQuery(text, &dict_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return ValidateRoundTrip(*q, &dict_);
  }

  rdf::TermDictionary dict_;
};

TEST_F(RoundTripTest, HoldsAcrossShapes) {
  EXPECT_TRUE(RoundTrip("ASK { ?x <urn:p> ?y }").ok());
  // Chain, star, cycle, self-loop, constants, inverse orientation.
  EXPECT_TRUE(
      RoundTrip("ASK { ?x <urn:p> ?y . ?y <urn:q> ?z . ?z <urn:r> ?w }").ok());
  EXPECT_TRUE(
      RoundTrip("ASK { ?x <urn:p> ?a . ?x <urn:q> ?b . ?x <urn:r> ?c }").ok());
  EXPECT_TRUE(
      RoundTrip("ASK { ?x <urn:p> ?y . ?y <urn:q> ?z . ?z <urn:r> ?x }").ok());
  EXPECT_TRUE(RoundTrip("ASK { ?x <urn:p> ?x . ?x <urn:q> <urn:c> }").ok());
  EXPECT_TRUE(RoundTrip("ASK { <urn:a> <urn:p> ?x . ?y <urn:q> ?x }").ok());
  // Disconnected (multi-component) queries.
  EXPECT_TRUE(RoundTrip("ASK { ?a <urn:p> ?b . ?c <urn:q> ?d }").ok());
  // Blank nodes canonicalise like variables.
  EXPECT_TRUE(RoundTrip("ASK { _:b <urn:p> ?x }").ok());
}

TEST_F(RoundTripTest, PropagatesVarPredicateRejection) {
  const util::Status st = RoundTrip("ASK { ?x ?p ?y }");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("variable predicates"), std::string::npos);
}

}  // namespace
}  // namespace query
}  // namespace rdfc
