#include "cache/semantic_cache.h"

#include <gtest/gtest.h>

#include <set>

#include "../test_util.h"
#include "rdf/turtle_parser.h"
#include "workload/workload.h"

namespace rdfc {
namespace cache {
namespace {

using rdfc::testing::ParseOrDie;

class SemanticCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(rdf::ParseTurtle(R"(
      @prefix t: <urn:t:> .
      t:s1 t:name "A" . t:s1 t:fromAlbum t:al1 . t:al1 t:name "AlbumA" .
      t:s2 t:name "B" . t:s2 t:fromAlbum t:al2 . t:al2 t:name "AlbumB" .
      t:s3 t:name "C" .
      t:al1 t:artist t:ar1 . t:ar1 t:type t:MusicalArtist .
    )", &dict_, &graph_).ok());
  }

  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  static std::set<std::vector<rdf::TermId>> AsSet(
      const std::vector<std::vector<rdf::TermId>>& rows) {
    return {rows.begin(), rows.end()};
  }

  rdf::TermDictionary dict_;
  rdf::Graph graph_;
};

TEST_F(SemanticCacheTest, MissThenContainmentHit) {
  SemanticCache cache(&graph_, &dict_);
  // Broad query admitted on miss.
  const auto first = cache.Answer(Q("SELECT ?x ?n WHERE { ?x :name ?n . }"));
  EXPECT_EQ(first.strategy,
            rewriting::ExecutionReport::Strategy::kBaseEvaluation);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.num_entries(), 1u);

  // Narrower query: containment hit, answered from the cached rows.
  const query::BgpQuery narrow =
      Q("SELECT ?n WHERE { ?s :name ?n . ?s :fromAlbum ?a . }");
  const auto second = cache.Answer(narrow);
  EXPECT_NE(second.strategy,
            rewriting::ExecutionReport::Strategy::kBaseEvaluation);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(AsSet(second.answers),
            AsSet(rewriting::AnswerFromGraph(narrow, graph_, dict_).answers));
}

TEST_F(SemanticCacheTest, RepeatQueryHits) {
  SemanticCache cache(&graph_, &dict_);
  const query::BgpQuery q = Q("SELECT ?n WHERE { ?s :name ?n . }");
  cache.Answer(q);
  cache.Answer(q);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.num_entries(), 1u);
}

TEST_F(SemanticCacheTest, SkipAdmissionOnHitKeepsCacheMaximal) {
  CacheOptions options;
  options.skip_admission_on_hit = true;
  SemanticCache cache(&graph_, &dict_, options);
  cache.Answer(Q("SELECT ?x ?n WHERE { ?x :name ?n . }"));
  cache.Answer(Q("SELECT ?n WHERE { ?s :name ?n . ?s :fromAlbum ?a . }"));
  EXPECT_EQ(cache.num_entries(), 1u);

  CacheOptions admit_all = options;
  admit_all.skip_admission_on_hit = false;
  SemanticCache cache2(&graph_, &dict_, admit_all);
  cache2.Answer(Q("SELECT ?x ?n WHERE { ?x :name ?n . }"));
  cache2.Answer(Q("SELECT ?n WHERE { ?s :name ?n . ?s :fromAlbum ?a . }"));
  EXPECT_EQ(cache2.num_entries(), 2u);
}

TEST_F(SemanticCacheTest, LruEvictionRespectsBudget) {
  CacheOptions options;
  options.capacity_rows = 5;
  options.eviction = EvictionPolicy::kLru;
  SemanticCache cache(&graph_, &dict_, options);
  cache.Answer(Q("SELECT ?x ?n WHERE { ?x :name ?n . }"));       // 4 rows
  cache.Answer(Q("SELECT ?a WHERE { ?s :fromAlbum ?a . }"));      // 2 rows
  EXPECT_LE(cache.stats().rows_resident, 5u);
  EXPECT_GE(cache.stats().evictions, 1u);
  // The newest entry survived.
  const auto hit = cache.Answer(Q("SELECT ?a WHERE { ?s :fromAlbum ?a . }"));
  EXPECT_NE(hit.strategy,
            rewriting::ExecutionReport::Strategy::kBaseEvaluation);
}

TEST_F(SemanticCacheTest, OversizedResultNotAdmitted) {
  CacheOptions options;
  options.capacity_rows = 2;
  SemanticCache cache(&graph_, &dict_, options);
  cache.Answer(Q("SELECT ?x ?n WHERE { ?x :name ?n . }"));  // 4 rows > 2
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(cache.stats().rows_resident, 0u);
}

TEST_F(SemanticCacheTest, InvalidateEmptiesCache) {
  SemanticCache cache(&graph_, &dict_);
  cache.Answer(Q("SELECT ?n WHERE { ?s :name ?n . }"));
  EXPECT_EQ(cache.num_entries(), 1u);
  cache.Invalidate();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(cache.stats().rows_resident, 0u);
  const auto after = cache.Answer(Q("SELECT ?n WHERE { ?s :name ?n . }"));
  EXPECT_EQ(after.strategy,
            rewriting::ExecutionReport::Strategy::kBaseEvaluation);
}

TEST_F(SemanticCacheTest, AnswersAlwaysMatchBaseEvaluationUnderChurn) {
  CacheOptions options;
  options.capacity_rows = 40;
  options.eviction = EvictionPolicy::kLargest;
  SemanticCache cache(&graph_, &dict_, options);
  const char* queries[] = {
      "SELECT ?x ?n WHERE { ?x :name ?n . }",
      "SELECT ?n WHERE { ?s :name ?n . ?s :fromAlbum ?a . }",
      "SELECT ?a WHERE { ?s :fromAlbum ?a . ?a :artist ?r . }",
      "SELECT ?x WHERE { ?x :artist ?r . ?r :type :MusicalArtist . }",
      "SELECT ?s WHERE { ?s :name \"C\" . }",
      "SELECT ?x ?n WHERE { ?x :name ?n . }",
      "SELECT ?n WHERE { ?s :name ?n . ?s :fromAlbum ?a . }",
  };
  for (const char* text : queries) {
    const query::BgpQuery q = Q(text);
    const auto cached = cache.Answer(q);
    const auto direct = rewriting::AnswerFromGraph(q, graph_, dict_);
    EXPECT_EQ(AsSet(cached.answers), AsSet(direct.answers)) << text;
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST_F(SemanticCacheTest, WorkloadReplayStaysConsistent) {
  // Larger randomized replay on a synthetic graph-free workload: every
  // cached answer must equal base evaluation (many will be empty, which
  // exercises admission of empty results too).
  rdf::TermDictionary dict;
  rdf::Graph graph;
  // Give the graph some DBpedia-vocabulary triples so a few queries match.
  const auto seed_queries = workload::GenerateDbpedia(&dict, 50, 7);
  for (const auto& q : seed_queries) {
    for (const rdf::Triple& t : q.patterns()) {
      if (!dict.IsVariable(t.p) && !dict.IsVariable(t.s) &&
          !dict.IsVariable(t.o)) {
        graph.Add(t);
      }
    }
  }
  // Freeze a few queries into the graph for guaranteed matches.
  for (std::size_t i = 0; i < 10; ++i) {
    for (const rdf::Triple& t : seed_queries[i].patterns()) {
      auto freeze = [&](rdf::TermId term) {
        return dict.IsVariable(term)
                   ? dict.MakeIri("urn:f" + std::to_string(term))
                   : term;
      };
      if (!dict.IsVariable(t.p)) graph.Add(freeze(t.s), t.p, freeze(t.o));
    }
  }

  CacheOptions options;
  options.capacity_rows = 200;
  SemanticCache cache(&graph, &dict, options);
  const auto workload = workload::GenerateDbpedia(&dict, 300, 8);
  std::size_t nonempty = 0;
  for (const auto& q : workload) {
    const auto cached = cache.Answer(q);
    const auto direct = rewriting::AnswerFromGraph(q, graph, dict);
    ASSERT_EQ(AsSet(cached.answers), AsSet(direct.answers))
        << q.ToString(dict);
    nonempty += cached.answers.empty() ? 0 : 1;
  }
  EXPECT_GT(nonempty, 0u);
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_LE(cache.stats().rows_resident, options.capacity_rows);
}

}  // namespace
}  // namespace cache
}  // namespace rdfc
