#!/usr/bin/env bash
# CI loopback smoke for the network front end (DESIGN.md "Network front
# end"): start `rdfc_serve --listen` as a real daemon, drive it over
# 127.0.0.1 with rdfc_client — the abuse sequence (deadline-expired probe,
# oversized frame, garbled frame) plus a small closed-loop run — then ask it
# to drain and assert it exits cleanly.  Under the ASan/UBSan CI leg this
# doubles as the zero-sanitizer-findings gate for the whole socket path.
#
#   loopback_smoke.sh <rdfc_serve> <rdfc_client>
set -u

SERVE="$1"
CLIENT="$2"
LOG="$(mktemp)"
trap 'kill "$SERVER_PID" 2>/dev/null; rm -f "$LOG"' EXIT

"$SERVE" --view-workload=lubm:100 --threads=2 --listen=0 --json >"$LOG" 2>&1 &
SERVER_PID=$!

# Readiness: the daemon prints "listening on 127.0.0.1:<port>" once bound.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$LOG" | head -1)
  [ -n "$PORT" ] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server died before binding"; cat "$LOG"; exit 1
  fi
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "FAIL: server never reported its port"; cat "$LOG"; exit 1
fi
echo "server up on port $PORT (pid $SERVER_PID)"

FAILURES=0

# The abuse sequence: healthy probe, deadline-expired probe behind busy
# workers, oversized frame, garbled frame — neighbours must survive.
if ! "$CLIENT" --port="$PORT" --smoke; then
  echo "FAIL: client smoke sequence"; FAILURES=$((FAILURES + 1))
fi

# A short mixed closed-loop run: every request must be accounted for.
if ! "$CLIENT" --port="$PORT" --mode=closed --workload=lubm:30 \
    --requests=200 --concurrency=4 --json | grep -q '"sent":200'; then
  echo "FAIL: closed-loop run did not account for all requests"
  FAILURES=$((FAILURES + 1))
fi

# Drain: the server must acknowledge, flush, and exit 0 (a sanitizer
# finding under the ASan leg turns this into a nonzero exit).
if ! "$CLIENT" --port="$PORT" --shutdown; then
  echo "FAIL: shutdown request"; FAILURES=$((FAILURES + 1))
fi
if ! wait "$SERVER_PID"; then
  echo "FAIL: server exited nonzero after drain"; cat "$LOG"
  FAILURES=$((FAILURES + 1))
fi
trap 'rm -f "$LOG"' EXIT

# The drained daemon reports its serving tallies: the JSON epilogue must
# carry the completed AND quarantine-rejection counts (every field is
# documented in README "rdfc_serve output").
if ! grep -q '"completed"' "$LOG" || ! grep -q '"quarantined"' "$LOG"; then
  echo "FAIL: serving epilogue missing completed/quarantined"; cat "$LOG"
  FAILURES=$((FAILURES + 1))
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "loopback smoke: $FAILURES failure(s)"; exit 1
fi
echo "loopback smoke: all checks passed"
