#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "net/wire.h"

// Wire codec invariants (DESIGN.md "Network front end"): every field
// roundtrips bit-exactly, the length prefix excludes itself, and NO
// truncation or garbling of a frame payload can decode successfully — a
// broken peer is detected at the codec, never by reading past the buffer.

namespace rdfc {
namespace net {
namespace {

WireRequest SampleRequest() {
  WireRequest request;
  request.opcode = Opcode::kProbe;
  request.id = 0x1122334455667788ull;
  request.deadline_ms = 250;
  request.simulated_io_micros = 77;
  request.query = "ASK { ?x <urn:p> ?y . }";
  return request;
}

WireResponse SampleResponse() {
  WireResponse response;
  response.status = WireStatus::kOk;
  response.degraded = true;
  response.quarantined = false;
  response.id = 99;
  response.snapshot_version = 7;
  response.candidates = 12;
  response.np_checks = 4;
  response.server_micros = 1234.5;
  response.containing_views = {3, 5, 8};
  response.unverified_views = {11};
  response.payload = "detail";
  return response;
}

/// Strips the length prefix and checks it matches the remaining bytes.
std::string PayloadOf(const std::string& frame) {
  EXPECT_GE(frame.size(), kFramePrefixBytes);
  EXPECT_EQ(PeekFrameLength(frame), frame.size() - kFramePrefixBytes);
  return frame.substr(kFramePrefixBytes);
}

TEST(WireCodecTest, RequestRoundtrip) {
  const WireRequest request = SampleRequest();
  std::string frame;
  EncodeRequest(request, &frame);
  WireRequest decoded;
  ASSERT_TRUE(DecodeRequest(PayloadOf(frame), &decoded).ok());
  EXPECT_EQ(decoded.opcode, request.opcode);
  EXPECT_EQ(decoded.id, request.id);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.simulated_io_micros, request.simulated_io_micros);
  EXPECT_EQ(decoded.query, request.query);
}

TEST(WireCodecTest, ResponseRoundtrip) {
  const WireResponse response = SampleResponse();
  std::string frame;
  EncodeResponse(response, &frame);
  WireResponse decoded;
  ASSERT_TRUE(DecodeResponse(PayloadOf(frame), &decoded).ok());
  EXPECT_EQ(decoded.status, response.status);
  EXPECT_EQ(decoded.degraded, response.degraded);
  EXPECT_EQ(decoded.quarantined, response.quarantined);
  EXPECT_EQ(decoded.id, response.id);
  EXPECT_EQ(decoded.snapshot_version, response.snapshot_version);
  EXPECT_EQ(decoded.candidates, response.candidates);
  EXPECT_EQ(decoded.np_checks, response.np_checks);
  EXPECT_DOUBLE_EQ(decoded.server_micros, response.server_micros);
  EXPECT_EQ(decoded.containing_views, response.containing_views);
  EXPECT_EQ(decoded.unverified_views, response.unverified_views);
  EXPECT_EQ(decoded.payload, response.payload);
}

TEST(WireCodecTest, EmptyFieldsRoundtrip) {
  WireRequest request;
  request.opcode = Opcode::kPing;
  std::string frame;
  EncodeRequest(request, &frame);
  WireRequest decoded;
  ASSERT_TRUE(DecodeRequest(PayloadOf(frame), &decoded).ok());
  EXPECT_EQ(decoded.opcode, Opcode::kPing);
  EXPECT_TRUE(decoded.query.empty());

  WireResponse response;
  response.status = WireStatus::kShuttingDown;
  frame.clear();
  EncodeResponse(response, &frame);
  WireResponse decoded_response;
  ASSERT_TRUE(DecodeResponse(PayloadOf(frame), &decoded_response).ok());
  EXPECT_EQ(decoded_response.status, WireStatus::kShuttingDown);
  EXPECT_TRUE(decoded_response.containing_views.empty());
}

TEST(WireCodecTest, EveryTruncationOfRequestFailsCleanly) {
  std::string frame;
  EncodeRequest(SampleRequest(), &frame);
  const std::string payload = PayloadOf(frame);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    WireRequest decoded;
    EXPECT_FALSE(DecodeRequest(payload.substr(0, len), &decoded).ok())
        << "truncation to " << len << " bytes decoded successfully";
  }
}

TEST(WireCodecTest, EveryTruncationOfResponseFailsCleanly) {
  std::string frame;
  EncodeResponse(SampleResponse(), &frame);
  const std::string payload = PayloadOf(frame);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    WireResponse decoded;
    EXPECT_FALSE(DecodeResponse(payload.substr(0, len), &decoded).ok())
        << "truncation to " << len << " bytes decoded successfully";
  }
}

TEST(WireCodecTest, TrailingBytesRejected) {
  std::string frame;
  EncodeRequest(SampleRequest(), &frame);
  std::string payload = PayloadOf(frame);
  payload.push_back('\0');
  WireRequest decoded;
  EXPECT_FALSE(DecodeRequest(payload, &decoded).ok());
}

TEST(WireCodecTest, BadVersionAndOpcodeRejected) {
  std::string frame;
  EncodeRequest(SampleRequest(), &frame);
  std::string payload = PayloadOf(frame);
  {
    std::string bad = payload;
    bad[0] = static_cast<char>(kWireVersion + 1);
    WireRequest decoded;
    EXPECT_FALSE(DecodeRequest(bad, &decoded).ok());
  }
  {
    std::string bad = payload;
    bad[1] = 0;  // opcodes start at 1
    WireRequest decoded;
    EXPECT_FALSE(DecodeRequest(bad, &decoded).ok());
  }
}

TEST(WireCodecTest, LyingInnerLengthRejected) {
  // The query-length field claims more bytes than the payload holds — the
  // bounds-checked cursor must refuse rather than read past the buffer.
  WireRequest request = SampleRequest();
  std::string frame;
  EncodeRequest(request, &frame);
  std::string payload = PayloadOf(frame);
  // The query length u32 sits right before the query text at the tail.
  const std::size_t len_offset = payload.size() - request.query.size() - 4;
  payload[len_offset] = static_cast<char>(0xff);
  payload[len_offset + 1] = static_cast<char>(0xff);
  WireRequest decoded;
  EXPECT_FALSE(DecodeRequest(payload, &decoded).ok());
}

TEST(WireCodecTest, StatusNamesCoverEveryCode) {
  EXPECT_STREQ(WireStatusName(WireStatus::kOk), "OK");
  for (std::uint8_t code = 0; code <= 6; ++code) {
    EXPECT_NE(std::string(WireStatusName(static_cast<WireStatus>(code))),
              "UNKNOWN");
  }
}

}  // namespace
}  // namespace net
}  // namespace rdfc
