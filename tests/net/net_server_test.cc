#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/containment_service.h"

// Loopback end-to-end coverage of the network front end (ISSUE 8 acceptance
// bar): deadline propagation in both semantics, overload shedding, protocol
// errors isolated to their connection, anchor-signature batching with
// intra-group dedup, quarantine surfacing as a wire status, and drain on
// shutdown.  Every test binds an ephemeral port on 127.0.0.1.

namespace rdfc {
namespace net {
namespace {

using service::ContainmentService;
using service::ServiceOptions;

ServiceOptions TestServiceOptions(std::size_t threads = 2) {
  ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = 64;
  options.parser.default_prefixes[""] = "urn:t:";
  return options;
}

// Text twins of workload::MakeAdversarialCase (see tests/service/
// deadline_test.cc): the PTime filter passes but NP verification must refute
// ~k^(m+1) candidate mappings, so a small budget reliably expires mid-probe.
std::string AdversarialView(std::size_t m) {
  std::string s = "ASK { ?x :p ?y . ";
  for (std::size_t j = 0; j < m; ++j) {
    s += "?x :p ?z" + std::to_string(j) + " . ";
  }
  return s + "?y :r ?w0 . ?y :rp ?w1 . }";
}

std::string AdversarialProbe(std::size_t k) {
  std::string s = "ASK { ";
  for (std::size_t i = 0; i < k; ++i) {
    s += "?a :p ?b" + std::to_string(i) + " . ";
  }
  return s + "?b0 :r ?e0 . ?b1 :rp ?e1 . }";
}

/// Service + started server on an ephemeral port.  Member order matters:
/// the server is destroyed (and so drained) before the service it fronts.
struct Harness {
  explicit Harness(const ServiceOptions& service_options,
                   ServerOptions server_options = {}) {
    svc = std::make_unique<ContainmentService>(service_options);
    server = std::make_unique<NetServer>(svc.get(), server_options);
  }
  util::Status Start() { return server->Start(); }

  std::unique_ptr<ContainmentService> svc;
  std::unique_ptr<NetServer> server;
};

/// Encodes `count` pipelined probe frames (ids start at `first_id`).
std::string ProbeFrames(const std::string& query, std::size_t count,
                        std::uint32_t simulated_io_micros,
                        std::uint64_t first_id = 1000) {
  std::string frames;
  for (std::size_t i = 0; i < count; ++i) {
    WireRequest request;
    request.opcode = Opcode::kProbe;
    request.id = first_id + i;
    request.simulated_io_micros = simulated_io_micros;
    request.query = query;
    EncodeRequest(request, &frames);
  }
  return frames;
}

TEST(NetServerTest, ProbeEndToEndReturnsContainingViews) {
  Harness h(TestServiceOptions());
  auto view = h.svc->AddView("ASK { ?x :p ?y . }");
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(h.svc->Publish().ok());
  ASSERT_TRUE(h.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  util::Result<WireResponse> response =
      client.Probe("ASK { ?a :p ?b . ?a :q ?c . }");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kOk);
  EXPECT_FALSE(response->degraded);
  ASSERT_EQ(response->containing_views.size(), 1u);
  EXPECT_EQ(response->containing_views[0], view.value());
  EXPECT_GT(response->snapshot_version, 0u);
  EXPECT_GT(response->server_micros, 0.0);

  util::Result<WireResponse> pong = client.Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->status, WireStatus::kOk);

  util::Result<WireResponse> stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->payload.find("\"completed\""), std::string::npos);
  EXPECT_NE(stats->payload.find("\"conns_open\""), std::string::npos);
}

TEST(NetServerTest, ExpiredOnArrivalDeadlineIsWireDeadlineExceeded) {
  // One worker held busy by pipelined 50ms io probes; a 1ms-deadline probe
  // behind them must expire before pickup -> the wire status, not a hang.
  Harness h(TestServiceOptions(/*threads=*/1));
  ASSERT_TRUE(h.svc->PublishViews({"ASK { ?x :p ?y . }"}).ok());
  ASSERT_TRUE(h.Start().ok());

  Client busy;
  ASSERT_TRUE(busy.Connect("127.0.0.1", h.server->port()).ok());
  const std::size_t kBusy = 4;
  ASSERT_TRUE(
      busy.SendRaw(ProbeFrames("ASK { ?a :p ?b . }", kBusy, 50'000)).ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  util::Result<WireResponse> expired =
      client.Probe("ASK { ?a :p ?b . }", /*deadline_ms=*/1);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired->status, WireStatus::kDeadlineExceeded);
  EXPECT_FALSE(expired->degraded);

  // The busy probes were unaffected by their sibling's expiry.
  for (std::size_t i = 0; i < kBusy; ++i) {
    util::Result<WireResponse> response = busy.Receive();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, WireStatus::kOk);
  }
  EXPECT_GE(h.svc->Metrics().deadline_expired, 1u);
}

TEST(NetServerTest, MidProbeDeadlineExpiryIsOkButDegraded) {
  // An adversarial probe whose verification explores ~12^7 matcher states
  // under a 20ms wire deadline: the deadline survives the (empty) queue but
  // the ProbeBudget it seeds expires mid-verification.  The answer comes
  // back OK + degraded — sound, possibly incomplete, never a hang.
  Harness h(TestServiceOptions(/*threads=*/1));
  ASSERT_TRUE(h.svc->PublishViews({AdversarialView(6)}).ok());
  ASSERT_TRUE(h.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  util::Result<WireResponse> response =
      client.Probe(AdversarialProbe(12), /*deadline_ms=*/20);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kOk);
  EXPECT_TRUE(response->degraded);
  EXPECT_FALSE(response->unverified_views.empty());
  EXPECT_GE(h.svc->Metrics().degraded, 1u);
}

TEST(NetServerTest, OverloadShedsWithResourceExhausted) {
  // One worker, a one-slot queue, batching disabled (window 0 so every probe
  // is its own admission group): pipelining 8 io-heavy probes must shed at
  // least one with RESOURCE_EXHAUSTED while the rest complete.
  ServiceOptions service_options = TestServiceOptions(/*threads=*/1);
  service_options.queue_capacity = 1;
  ServerOptions server_options;
  server_options.batch_window_micros = 0.0;
  Harness h(service_options, server_options);
  ASSERT_TRUE(h.svc->PublishViews({"ASK { ?x :p ?y . }"}).ok());
  ASSERT_TRUE(h.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  const std::size_t kProbes = 8;
  ASSERT_TRUE(
      client.SendRaw(ProbeFrames("ASK { ?a :p ?b . }", kProbes, 20'000)).ok());

  std::size_t ok = 0, shed = 0;
  for (std::size_t i = 0; i < kProbes; ++i) {
    util::Result<WireResponse> response = client.Receive();
    ASSERT_TRUE(response.ok());
    if (response->status == WireStatus::kOk) ++ok;
    if (response->status == WireStatus::kResourceExhausted) ++shed;
  }
  EXPECT_EQ(ok + shed, kProbes);
  EXPECT_GE(shed, 1u) << "a 1-slot queue never shed under 8 pipelined probes";
  EXPECT_GE(ok, 1u);
  EXPECT_GE(h.svc->Metrics().rejected, shed);
}

TEST(NetServerTest, UnparseableQueryIsInvalidArgumentAndConnectionSurvives) {
  Harness h(TestServiceOptions());
  ASSERT_TRUE(h.svc->PublishViews({"ASK { ?x :p ?y . }"}).ok());
  ASSERT_TRUE(h.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  util::Result<WireResponse> bad = client.Probe("THIS IS NOT SPARQL {{{");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, WireStatus::kInvalidArgument);
  EXPECT_FALSE(bad->payload.empty());  // human-readable detail rides along

  // A malformed QUERY is the client's problem, not a protocol error: the
  // connection keeps serving.
  util::Result<WireResponse> good = client.Probe("ASK { ?a :p ?b . }");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->status, WireStatus::kOk);
}

TEST(NetServerTest, ProtocolErrorsCloseOnlyTheOffendingConnection) {
  ServerOptions server_options;
  server_options.max_frame_bytes = 4096;
  Harness h(TestServiceOptions(), server_options);
  ASSERT_TRUE(h.svc->PublishViews({"ASK { ?x :p ?y . }"}).ok());
  ASSERT_TRUE(h.Start().ok());

  Client survivor;
  ASSERT_TRUE(survivor.Connect("127.0.0.1", h.server->port()).ok());
  ASSERT_TRUE(survivor.Ping().ok());

  {
    // Oversized frame: length prefix above max_frame_bytes.
    Client abuser;
    ASSERT_TRUE(
        abuser.Connect("127.0.0.1", h.server->port(), /*timeout=*/2e6).ok());
    std::string oversized;
    const std::uint32_t huge = 1u << 20;
    for (int i = 0; i < 4; ++i) {
      oversized.push_back(static_cast<char>((huge >> (i * 8)) & 0xff));
    }
    ASSERT_TRUE(abuser.SendRaw(oversized).ok());
    EXPECT_FALSE(abuser.Receive().ok());
  }
  {
    // Garbled frame: plausible length, undecodable payload.
    Client abuser;
    ASSERT_TRUE(
        abuser.Connect("127.0.0.1", h.server->port(), /*timeout=*/2e6).ok());
    std::string garbled;
    garbled.push_back(3);
    garbled.append(3, '\0');
    garbled += "???";
    ASSERT_TRUE(abuser.SendRaw(garbled).ok());
    EXPECT_FALSE(abuser.Receive().ok());
  }

  // The neighbour never noticed.
  util::Result<WireResponse> response = survivor.Probe("ASK { ?a :p ?b . }");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, WireStatus::kOk);
  EXPECT_GE(h.svc->Metrics().net_protocol_errors, 2u);
}

TEST(NetServerTest, AnchorSharingBurstIsBatchedAndDeduped) {
  // A pipelined burst of IDENTICAL probes inside a generous batching window
  // must be admitted as few groups (one queue slot each) and answered mostly
  // from the intra-group dedup cache.
  ServerOptions server_options;
  server_options.batch_window_micros = 20'000.0;  // 20ms: the burst fits
  server_options.max_batch = 64;
  Harness h(TestServiceOptions(), server_options);
  ASSERT_TRUE(h.svc->PublishViews({"ASK { ?x :p ?y . }"}).ok());
  ASSERT_TRUE(h.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  const std::size_t kBurst = 16;
  ASSERT_TRUE(
      client.SendRaw(ProbeFrames("ASK { ?a :p ?b . ?a :q ?c . }", kBurst, 0))
          .ok());
  std::vector<std::uint64_t> versions;
  for (std::size_t i = 0; i < kBurst; ++i) {
    util::Result<WireResponse> response = client.Receive();
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, WireStatus::kOk);
    ASSERT_EQ(response->containing_views.size(), 1u);
    versions.push_back(response->snapshot_version);
  }
  // Every sibling of a group answered against the SAME pinned snapshot.
  for (std::uint64_t v : versions) EXPECT_EQ(v, versions[0]);

  const service::MetricsSnapshot metrics = h.svc->Metrics();
  EXPECT_GE(metrics.batch_requests, kBurst);
  EXPECT_LT(metrics.batches, kBurst) << "burst was never grouped";
  EXPECT_GE(metrics.batch_dedup_hits, 1u);
  EXPECT_GT(metrics.batch_size.count(), 0u);
}

TEST(NetServerTest, QuarantinedProbeSurfacesAsWireStatus) {
  // Trip the breaker with repeat adversarial probes under a tiny compute
  // budget, then assert the short-circuit arrives as QUARANTINED on the wire.
  ServiceOptions service_options = TestServiceOptions(/*threads=*/1);
  service_options.probe_timeout_micros = 5'000;
  service_options.quarantine_threshold = 1;
  ServerOptions server_options;
  server_options.batch_window_micros = 0.0;  // no grouping: outcomes ordered
  Harness h(service_options, server_options);
  ASSERT_TRUE(h.svc->PublishViews({AdversarialView(6)}).ok());
  ASSERT_TRUE(h.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  util::Result<WireResponse> first = client.Probe(AdversarialProbe(12));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->status, WireStatus::kOk);
  EXPECT_TRUE(first->degraded);

  util::Result<WireResponse> second = client.Probe(AdversarialProbe(12));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->status, WireStatus::kQuarantined);
  EXPECT_TRUE(second->quarantined);
  EXPECT_GE(h.svc->Metrics().quarantined, 1u);
}

TEST(NetServerTest, RemoteShutdownCanBeForbidden) {
  ServerOptions server_options;
  server_options.allow_remote_shutdown = false;
  Harness h(TestServiceOptions(), server_options);
  ASSERT_TRUE(h.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  util::Result<WireResponse> refused = client.RequestShutdown();
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->status, WireStatus::kInvalidArgument);
  EXPECT_FALSE(h.server->shutting_down());
  EXPECT_TRUE(client.Ping().ok());  // still serving
}

TEST(NetServerTest, ShutdownDrainsInFlightProbesAndFlushesResponses) {
  // Pipeline io-heavy probes, then Shutdown() while they are in flight: the
  // drain must flush every buffered response before closing, and probes
  // arriving AFTER the drain began answer SHUTTING_DOWN rather than
  // vanishing.
  Harness h(TestServiceOptions(/*threads=*/1));
  ASSERT_TRUE(h.svc->PublishViews({"ASK { ?x :p ?y . }"}).ok());
  ASSERT_TRUE(h.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  const std::size_t kProbes = 3;
  ASSERT_TRUE(
      client.SendRaw(ProbeFrames("ASK { ?a :p ?b . }", kProbes, 30'000)).ok());
  // Give the I/O thread a moment to admit the burst before draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  h.server->Shutdown();
  EXPECT_TRUE(h.server->stopped());

  std::size_t answered = 0;
  for (std::size_t i = 0; i < kProbes; ++i) {
    util::Result<WireResponse> response = client.Receive();
    if (!response.ok()) break;  // EOF once the drain finished writing
    EXPECT_TRUE(response->status == WireStatus::kOk ||
                response->status == WireStatus::kShuttingDown);
    if (response->status == WireStatus::kOk) ++answered;
  }
  EXPECT_GE(answered, 1u) << "drain dropped every in-flight response";
}

TEST(NetServerTest, RemoteShutdownAcknowledgesThenDrains) {
  Harness h(TestServiceOptions());
  ASSERT_TRUE(h.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  util::Result<WireResponse> ack = client.RequestShutdown();
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->status, WireStatus::kOk);
  EXPECT_TRUE(h.server->shutting_down());
  h.server->Shutdown();
  EXPECT_TRUE(h.server->stopped());
}

}  // namespace
}  // namespace net
}  // namespace rdfc
