#pragma once

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "sparql/parser.h"

namespace rdfc {
namespace testing {

/// Parses a SPARQL query, failing the test on parse errors.  A default
/// prefix `:` -> `urn:t:` keeps test queries terse.
inline query::BgpQuery ParseOrDie(std::string_view text,
                                  rdf::TermDictionary* dict) {
  sparql::ParserOptions options;
  options.default_prefixes[""] = "urn:t:";
  options.default_prefixes["rdf"] =
      "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
  auto result = sparql::ParseQuery(text, dict, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\nquery: "
                           << text;
  if (!result.ok()) return query::BgpQuery();
  return std::move(result).value();
}

/// Shorthand for interning test IRIs in the `urn:t:` namespace.
inline rdf::TermId Iri(rdf::TermDictionary* dict, std::string_view local) {
  return dict->MakeIri("urn:t:" + std::string(local));
}

inline rdf::TermId Var(rdf::TermDictionary* dict, std::string_view name) {
  return dict->MakeVariable(std::string(name));
}

inline rdf::TermId Lit(rdf::TermDictionary* dict, std::string_view value) {
  return dict->MakeLiteral("\"" + std::string(value) + "\"");
}

}  // namespace testing
}  // namespace rdfc
