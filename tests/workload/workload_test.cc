#include "workload/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "query/analysis.h"
#include "query/witness.h"

namespace rdfc {
namespace workload {
namespace {

TEST(WorkloadTest, DbpediaMatchesPaperMix) {
  rdf::TermDictionary dict;
  const auto queries = GenerateDbpedia(&dict, 20000, 1);
  ASSERT_EQ(queries.size(), 20000u);
  std::size_t fgraph = 0, iri_only = 0, nonempty = 0;
  for (const auto& q : queries) {
    const query::QueryShape shape = query::AnalyzeShape(q, dict);
    nonempty += q.empty() ? 0 : 1;
    fgraph += shape.is_fgraph ? 1 : 0;
    iri_only += shape.only_iri_predicates ? 1 : 0;
  }
  EXPECT_EQ(nonempty, queries.size());
  // Paper Section 3: 99.707 % IRI-only predicates, 73.158 % f-graph.
  const double iri_rate = static_cast<double>(iri_only) / 20000.0;
  const double fgraph_rate = static_cast<double>(fgraph) / 20000.0;
  EXPECT_GT(iri_rate, 0.99);
  EXPECT_GT(fgraph_rate, 0.66);
  EXPECT_LT(fgraph_rate, 0.82);
}

TEST(WorkloadTest, DbpediaIsDeterministicPerSeed) {
  rdf::TermDictionary dict;
  const auto a = GenerateDbpedia(&dict, 50, 99);
  const auto b = GenerateDbpedia(&dict, 50, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].SamePatterns(b[i])) << i;
  }
  const auto c = GenerateDbpedia(&dict, 50, 100);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_different = any_different || !a[i].SamePatterns(c[i]);
  }
  EXPECT_TRUE(any_different);
}

TEST(WorkloadTest, WatdivShapesAndSizes) {
  rdf::TermDictionary dict;
  const auto queries = GenerateWatdiv(&dict, 2000, 2);
  std::size_t cyclic = 0, max_size = 0;
  for (const auto& q : queries) {
    EXPECT_GE(q.size(), 1u);
    max_size = std::max(max_size, q.size());
    cyclic += query::IsAcyclic(q) ? 0 : 1;
  }
  EXPECT_GE(max_size, 8u);
  EXPECT_GT(cyclic, 0u);
}

TEST(WorkloadTest, BsbmTemplateRecurrence) {
  rdf::TermDictionary dict;
  const auto queries = GenerateBsbm(&dict, 1000, 3);
  // 12 templates with Zipf parameters: strong structural recurrence.
  std::set<std::size_t> sizes;
  for (const auto& q : queries) sizes.insert(q.size());
  EXPECT_LE(sizes.size(), 12u);
  // Template 11 has a variable predicate.
  bool any_var_pred = false;
  for (const auto& q : queries) {
    any_var_pred =
        any_var_pred || query::AnalyzeShape(q, dict).has_var_predicates;
  }
  EXPECT_TRUE(any_var_pred);
}

TEST(WorkloadTest, LubmFourteenQueries) {
  rdf::TermDictionary dict;
  auto result = LubmQueries(&dict);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 14u);
  // Q2 and Q9 are the triangles; Q6/Q14 are single-pattern class queries.
  EXPECT_FALSE(query::IsAcyclic((*result)[1]));
  EXPECT_FALSE(query::IsAcyclic((*result)[8]));
  EXPECT_EQ((*result)[5].size(), 1u);
  EXPECT_EQ((*result)[13].size(), 1u);
}

TEST(WorkloadTest, LubmSchemaHierarchy) {
  rdf::TermDictionary dict;
  const rdfs::RdfsSchema schema = LubmSchema(&dict);
  auto ub = [&](const char* local) {
    return dict.MakeIri(
        std::string("http://swat.cse.lehigh.edu/onto/univ-bench.owl#") +
        local);
  };
  const auto& supers = schema.SuperClassesOf(ub("FullProfessor"));
  // FullProfessor ⊑ Professor ⊑ Faculty ⊑ Employee ⊑ Person (+ reflexive).
  EXPECT_EQ(supers.size(), 5u);
  EXPECT_FALSE(schema.DomainsOf(ub("takesCourse")).empty());
  // headOf ⊑ worksFor ⊑ memberOf.
  EXPECT_EQ(schema.SuperPropertiesOf(ub("headOf")).size(), 3u);
}

TEST(WorkloadTest, LubmExtendedGrowsWorkload) {
  rdf::TermDictionary dict;
  auto result = GenerateLubmExtended(&dict, 1000, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1000u);
  // Extension must actually vary the queries: count distinct pattern sets
  // beyond the 14 seeds.
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < result->size(); ++i) {
    bool dup = false;
    for (std::size_t j = 0; j < i && !dup; ++j) {
      dup = (*result)[i].SamePatterns((*result)[j]);
    }
    distinct += dup ? 0 : 1;
    if (i > 200) break;  // bound the quadratic check
  }
  EXPECT_GT(distinct, 50u);
}

TEST(WorkloadTest, LdbcFiftyThree) {
  rdf::TermDictionary dict;
  const auto queries = GenerateLdbc(&dict, 53, 5);
  ASSERT_EQ(queries.size(), 53u);
  std::size_t cyclic = 0;
  std::size_t big = 0;
  for (const auto& q : queries) {
    cyclic += query::IsAcyclic(q) ? 0 : 1;
    big += q.size() >= 6 ? 1 : 0;
  }
  EXPECT_GT(cyclic, 0u);
  EXPECT_GT(big, 20u);
}

TEST(WorkloadTest, CombinedInterleavesAllSources) {
  rdf::TermDictionary dict;
  WorkloadOptions options;
  options.dbpedia = 200;
  options.watdiv = 100;
  options.bsbm = 50;
  const auto combined = GenerateCombined(&dict, options);
  EXPECT_EQ(combined.size(), 200u + 100u + 50u + 14u + 53u);
  std::size_t counts[kNumWorkloads] = {0, 0, 0, 0, 0};
  for (const auto& wq : combined) {
    ++counts[static_cast<std::size_t>(wq.source)];
  }
  EXPECT_EQ(counts[0], 200u);
  EXPECT_EQ(counts[1], 100u);
  EXPECT_EQ(counts[2], 50u);
  EXPECT_EQ(counts[3], 14u);
  EXPECT_EQ(counts[4], 53u);
  // seq is a permutation 0..n-1 in order.
  for (std::size_t i = 0; i < combined.size(); ++i) {
    EXPECT_EQ(combined[i].seq, i);
  }
  // Interleaved, not concatenated: the first 10 contain several sources.
  std::set<WorkloadId> head;
  for (std::size_t i = 0; i < 10; ++i) head.insert(combined[i].source);
  EXPECT_GE(head.size(), 3u);
}

TEST(WorkloadTest, ScaledOptionsFollowPaperProportions) {
  const WorkloadOptions options = ScaledWorkloadOptions(0.01);
  EXPECT_EQ(options.dbpedia, 12877u);
  EXPECT_EQ(options.watdiv, 1488u);
  EXPECT_EQ(options.bsbm, 998u);
  EXPECT_EQ(options.lubm, 14u);
  EXPECT_EQ(options.ldbc, 53u);
}

}  // namespace
}  // namespace workload
}  // namespace rdfc
