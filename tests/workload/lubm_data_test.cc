#include "workload/lubm_data.h"

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "rdfs/materialise.h"
#include "workload/workload.h"

namespace rdfc {
namespace workload {
namespace {

class LubmDataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LubmDataOptions options;
    options.universities = 1;
    options.scale = 0.15;
    options.seed = 7;
    graph_ = GenerateLubmData(&dict_, options);
    schema_ = LubmSchema(&dict_);
  }

  std::size_t Answers(const query::BgpQuery& q) {
    return eval::ProjectedAnswers(q, graph_, dict_).size();
  }

  rdf::TermDictionary dict_;
  rdf::Graph graph_;
  rdfs::RdfsSchema schema_;
};

TEST_F(LubmDataTest, GeneratesNontrivialGraph) {
  EXPECT_GT(graph_.size(), 500u);
  EXPECT_GT(graph_.num_predicates(), 10u);
  // The Department0/University0 anchors the queries rely on exist.
  EXPECT_NE(dict_.Lookup(rdf::TermKind::kIri,
                         "http://www.Department0.University0.edu"),
            rdf::kNullTerm);
  EXPECT_NE(dict_.Lookup(rdf::TermKind::kIri,
                         "http://www.Department0.University0.edu/"
                         "GraduateCourse0"),
            rdf::kNullTerm);
}

TEST_F(LubmDataTest, DeterministicPerSeed) {
  rdf::TermDictionary dict;
  LubmDataOptions options;
  options.scale = 0.1;
  options.seed = 9;
  const rdf::Graph a = GenerateLubmData(&dict, options);
  const rdf::Graph b = GenerateLubmData(&dict, options);
  EXPECT_EQ(a.size(), b.size());
  for (const rdf::Triple& t : a.triples()) {
    EXPECT_TRUE(b.Contains(t));
  }
}

TEST_F(LubmDataTest, LubmQueriesAnswerableAfterMaterialisation) {
  auto queries = LubmQueries(&dict_);
  ASSERT_TRUE(queries.ok());

  // Several queries need RDFS inference: before materialisation Q4
  // (Professor: only Full/Associate/Assistant asserted), Q5 (Person), and
  // Q6 (Student) are empty.
  const std::size_t q4_before = Answers((*queries)[3]);
  const std::size_t q6_before = Answers((*queries)[5]);
  EXPECT_EQ(q4_before, 0u);
  EXPECT_EQ(q6_before, 0u);

  const std::size_t added =
      rdfs::MaterialiseGraph(schema_, &dict_, &graph_);
  EXPECT_GT(added, 100u);

  // Paper/benchmark semantics: with the schema closure every query with a
  // Department0/University0 anchor has answers (Q9's triangle is
  // probabilistic at small scale and exempt).
  const int expect_nonempty[] = {1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 14};
  for (int qn : expect_nonempty) {
    EXPECT_GT(Answers((*queries)[qn - 1]), 0u) << "LUBM Q" << qn;
  }

  // Q6 (all students) now counts graduates + undergraduates.
  const rdf::TermId type =
      dict_.MakeIri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  const rdf::TermId grad = dict_.MakeIri(
      "http://swat.cse.lehigh.edu/onto/univ-bench.owl#GraduateStudent");
  const rdf::TermId undergrad = dict_.MakeIri(
      "http://swat.cse.lehigh.edu/onto/univ-bench.owl#UndergraduateStudent");
  const std::size_t grads =
      graph_.MatchAll(rdf::kNullTerm, type, grad).size();
  const std::size_t undergrads =
      graph_.MatchAll(rdf::kNullTerm, type, undergrad).size();
  EXPECT_EQ(Answers((*queries)[5]), grads + undergrads);
}

TEST_F(LubmDataTest, ScaleControlsSize) {
  rdf::TermDictionary dict;
  LubmDataOptions small;
  small.scale = 0.05;
  small.seed = 3;
  LubmDataOptions larger;
  larger.scale = 0.4;
  larger.seed = 3;
  EXPECT_LT(GenerateLubmData(&dict, small).size(),
            GenerateLubmData(&dict, larger).size());
}

}  // namespace
}  // namespace workload
}  // namespace rdfc
