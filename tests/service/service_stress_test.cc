// Multi-threaded stress for the service layer: probe submitters race view
// publication, every published version is validated against the mv-index
// invariants, and the hazard-slot bound on retained versions is checked
// throughout.  This is the test the TSan CI job exists for.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "index/validate.h"
#include "service/containment_service.h"

namespace rdfc {
namespace service {
namespace {

TEST(ServiceStressTest, ProbesRaceSnapshotPublication) {
  constexpr std::size_t kRounds = 8;
  constexpr std::size_t kViewsPerRound = 8;
  constexpr std::size_t kSubmitters = 2;

  ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 4096;
  options.parser.default_prefixes[""] = "urn:t:";
  ContainmentService svc(options);
  // One extra hazard slot for the main thread's per-version validation.
  const std::size_t validator_slot = svc.manager().RegisterReader();

  // Pre-parse every probe before serving starts (interning is writer-side).
  // Probe r*kViewsPerRound+v is contained exactly by round-r view v once
  // that round has been published.
  std::vector<query::BgpQuery> probes;
  std::vector<std::string> view_texts;
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t v = 0; v < kViewsPerRound; ++v) {
      const std::string pred = ":p" + std::to_string(r * kViewsPerRound + v);
      view_texts.push_back("ASK { ?x " + pred + " ?y . }");
      auto probe =
          svc.Parse("ASK { ?a " + pred + " ?b . ?a :extra ?c . }");
      ASSERT_TRUE(probe.ok());
      probes.push_back(std::move(probe).value());
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> bad_responses{0};
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      std::vector<std::future<ProbeResponse>> pending;
      std::size_t next = s;  // interleave the two submitters' probe streams
      while (!stop.load(std::memory_order_acquire)) {
        ProbeRequest request;
        request.query = probes[next % probes.size()];
        next += kSubmitters;
        auto future = svc.Submit(std::move(request));
        if (!future.ok()) {
          shed.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
          continue;
        }
        pending.push_back(std::move(future).value());
      }
      for (auto& future : pending) {
        const ProbeResponse response = future.get();
        // A probe either sees its view (its round was published when the
        // worker pinned a snapshot) or nothing — never garbage.
        if (!response.status.ok() || response.containing_views.size() > 1 ||
            response.snapshot_version > kRounds) {
          bad_responses.fetch_add(1, std::memory_order_relaxed);
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Publish rounds while probes are in flight; validate each version.
  for (std::size_t r = 0; r < kRounds; ++r) {
    for (std::size_t v = 0; v < kViewsPerRound; ++v) {
      ASSERT_TRUE(svc.AddView(view_texts[r * kViewsPerRound + v]).ok());
    }
    auto version = svc.Publish();
    ASSERT_TRUE(version.ok());
    EXPECT_EQ(*version, r + 1);
    {
      IndexManager::ReadGuard guard = svc.manager().Acquire(validator_slot);
      for (std::size_t s = 0; s < guard->num_shards(); ++s) {
        if (guard->shard(s).delta == nullptr) continue;
        EXPECT_TRUE(index::ValidateMvIndex(*guard->shard(s).delta).ok())
            << "version " << guard->version << " shard " << s;
      }
      EXPECT_EQ(guard->num_views, (r + 1) * kViewsPerRound);
    }
    // Hazard-slot bound: 4 workers + 1 validator slot -> at most 6 versions.
    EXPECT_LE(svc.manager().num_retained_versions(),
              options.num_threads + 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : submitters) t.join();
  svc.Shutdown();

  EXPECT_EQ(bad_responses.load(), 0u);
  EXPECT_GT(completed.load(), 0u);
  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.completed, completed.load());
  EXPECT_EQ(metrics.rejected, shed.load());
  EXPECT_EQ(metrics.publishes, kRounds);

  // Quiesced: every probe now sees exactly its view.
  auto final_probe = svc.Probe("ASK { ?a :p0 ?b . ?a :extra ?c . }");
  ASSERT_FALSE(final_probe.ok());  // pool is shut down: admission fails
  EXPECT_EQ(svc.current_version(), kRounds);
  IndexManager::ReadGuard guard = svc.manager().Acquire(validator_slot);
  EXPECT_EQ(guard->num_views, kRounds * kViewsPerRound);
}

TEST(ServiceStressTest, CompactionRacesPublicationAndProbes) {
  // Background refreezes triggered every few published views while probes
  // are in flight: every response must still match its pinned snapshot's
  // version, base+delta+tombstone accounting must always sum to the live
  // view count, and TSan gets to watch the compaction thread overlap both
  // the staging writer and the probe readers.
  ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 4096;
  options.parser.default_prefixes[""] = "urn:t:";
  options.tier.background_compaction = true;
  options.tier.compact_min_delta_views = 4;  // refreeze every ~4 staged views
  options.tier.compact_min_delta_fraction = 0.0;
  ContainmentService svc(options);
  const std::size_t validator_slot = svc.manager().RegisterReader();

  constexpr std::size_t kViews = 48;
  std::vector<query::BgpQuery> probes;
  for (std::size_t v = 0; v < kViews; ++v) {
    auto probe = svc.Parse("ASK { ?a :p" + std::to_string(v) +
                           " ?b . ?a :extra ?c . }");
    ASSERT_TRUE(probe.ok());
    probes.push_back(std::move(probe).value());
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad_responses{0};
  std::thread prober([&] {
    std::vector<std::future<ProbeResponse>> pending;
    std::size_t n = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ProbeRequest request;
      request.query = probes[n++ % probes.size()];
      auto future = svc.Submit(std::move(request));
      if (!future.ok()) {
        std::this_thread::yield();
        continue;
      }
      pending.push_back(std::move(future).value());
    }
    for (auto& future : pending) {
      const ProbeResponse response = future.get();
      // Probe v is contained exactly by view v; at most one hit ever.
      if (!response.status.ok() || response.containing_views.size() > 1) {
        bad_responses.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::uint64_t removed = 0;
  for (std::size_t v = 0; v < kViews; ++v) {
    auto id = svc.AddView("ASK { ?x :p" + std::to_string(v) + " ?y . }");
    ASSERT_TRUE(id.ok());
    // Sprinkle removals so compactions see tombstones too.
    if (v % 7 == 3) {
      ASSERT_TRUE(svc.RemoveView(*id).ok());
      ++removed;
    }
    ASSERT_TRUE(svc.Publish().ok());
    {
      IndexManager::ReadGuard guard = svc.manager().Acquire(validator_slot);
      // Tier accounting: visible views = base - tombstones + delta.
      EXPECT_EQ(guard->num_base_views() - guard->num_tombstones() +
                    guard->num_delta_views(),
                guard->num_views);
      for (std::size_t s = 0; s < guard->num_shards(); ++s) {
        if (guard->shard(s).delta == nullptr) continue;
        EXPECT_TRUE(index::ValidateMvIndex(*guard->shard(s).delta).ok());
      }
    }
  }
  // Force one final synchronous compaction racing the probe stream, then
  // quiesce.
  ASSERT_TRUE(svc.Refreeze().ok());
  stop.store(true, std::memory_order_release);
  prober.join();
  svc.Shutdown();

  EXPECT_EQ(bad_responses.load(), 0u);
  EXPECT_EQ(svc.num_live_views(), kViews - removed);
  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_GT(metrics.compactions, 0u);
  // Fully compacted: everything lives in the base, nothing is pending.
  EXPECT_EQ(metrics.delta_views, 0u);
  EXPECT_EQ(metrics.base_views - metrics.tombstones, kViews - removed);
  EXPECT_EQ(metrics.compaction_micros.count(), metrics.compactions);
}

TEST(ServiceStressTest, PublicationIsTransactionalUnderConcurrentProbing) {
  // Removing and re-adding views across publishes while probing: live-view
  // accounting and match results stay consistent at every version.
  ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 1024;
  options.parser.default_prefixes[""] = "urn:t:";
  ContainmentService svc(options);

  auto ids = svc.PublishViews({"ASK { ?x :p ?y . }", "ASK { ?x :q ?y . }",
                               "ASK { ?x :r ?y . }"});
  ASSERT_TRUE(ids.ok());
  auto probe_q = svc.Parse("ASK { ?a :q ?b . }");
  ASSERT_TRUE(probe_q.ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inconsistent{0};
  std::thread prober([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ProbeRequest request;
      request.query = *probe_q;
      auto future = svc.Submit(std::move(request));
      if (!future.ok()) continue;
      const ProbeResponse response = future->get();
      // :q is removed at version 2 and re-added at version 3: whichever
      // snapshot the worker pinned, the answer must match its version.
      const bool hit = !response.containing_views.empty();
      const bool expected_hit = response.snapshot_version != 2;
      if (response.status.ok() && hit != expected_hit) {
        inconsistent.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  ASSERT_TRUE(svc.RemoveView((*ids)[1]).ok());
  ASSERT_TRUE(svc.Publish().ok());  // version 2: :q gone
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(svc.AddView("ASK { ?x :q ?y . }").ok());
  ASSERT_TRUE(svc.Publish().ok());  // version 3: :q back
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  stop.store(true, std::memory_order_release);
  prober.join();
  svc.Shutdown();
  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_EQ(svc.num_live_views(), 3u);
}

TEST(ServiceStressTest, BudgetExpiryRacesPublication) {
  // Degraded probes (per-probe budget expiring mid-walk) racing snapshot
  // publication: the truncated walk must release its pinned snapshot like any
  // other, answers stay sound at every version, and the degraded/completed
  // accounting stays exact under concurrency.
  ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 4096;
  options.parser.default_prefixes[""] = "urn:t:";
  // 2ms: far above an easy probe even under TSan, far below the trap's
  // refutation cost, so which probes degrade is deterministic.
  options.probe_timeout_micros = 2'000;
  options.quarantine_threshold = 0;  // off: every trap probe must really run
  ContainmentService svc(options);

  // The adversarial star pair (see deadline_test.cc): the trap view passes
  // the filter against the trap probe but refutation explores ~k^(m+1)
  // states, so the budget reliably expires inside verification.
  std::string trap_view = "ASK { ?x :p ?y . ";
  for (int j = 0; j < 5; ++j) {
    trap_view += "?x :p ?z" + std::to_string(j) + " . ";
  }
  trap_view += "?y :r ?w0 . ?y :rp ?w1 . }";
  std::string trap_probe_text = "ASK { ";
  for (int i = 0; i < 12; ++i) {
    trap_probe_text += "?a :p ?b" + std::to_string(i) + " . ";
  }
  trap_probe_text += "?b0 :r ?e0 . ?b1 :rp ?e1 . }";
  auto trap_id = svc.AddView(trap_view);
  ASSERT_TRUE(trap_id.ok());
  ASSERT_TRUE(svc.Publish().ok());
  auto trap_probe = svc.Parse(trap_probe_text);
  auto easy_probe = svc.Parse("ASK { ?a :p ?b . }");
  ASSERT_TRUE(trap_probe.ok() && easy_probe.ok());

  constexpr std::size_t kRounds = 6;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> degraded{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> bad_responses{0};
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < 2; ++s) {
    submitters.emplace_back([&, s] {
      std::vector<std::future<ProbeResponse>> pending;
      std::size_t n = s;
      while (!stop.load(std::memory_order_acquire)) {
        ProbeRequest request;
        request.query = (n++ % 2 == 0) ? *trap_probe : *easy_probe;
        auto future = svc.Submit(std::move(request));
        if (!future.ok()) {
          std::this_thread::yield();
          continue;
        }
        pending.push_back(std::move(future).value());
      }
      for (auto& future : pending) {
        const ProbeResponse response = future.get();
        if (!response.status.ok() ||
            response.snapshot_version > kRounds + 1) {
          bad_responses.fetch_add(1, std::memory_order_relaxed);
        }
        // Degradation only ever under-reports: the trap view must never be
        // claimed as containing anything, truncated walk or not.
        for (std::uint64_t id : response.containing_views) {
          if (id == *trap_id) {
            bad_responses.fetch_add(1, std::memory_order_relaxed);
          }
        }
        (response.degraded ? degraded : completed)
            .fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Publish while degraded probes are in flight.
  for (std::size_t r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(
        svc.AddView("ASK { ?x :extra" + std::to_string(r) + " ?y . }").ok());
    ASSERT_TRUE(svc.Publish().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  stop.store(true, std::memory_order_release);
  for (std::thread& t : submitters) t.join();
  svc.Shutdown();

  EXPECT_EQ(bad_responses.load(), 0u);
  EXPECT_GT(degraded.load(), 0u);   // the trap really tripped budgets
  EXPECT_GT(completed.load(), 0u);  // easy probes still finished healthy
  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.degraded, degraded.load());
  EXPECT_EQ(metrics.quarantined, 0u);
  EXPECT_EQ(metrics.completed, completed.load());
  EXPECT_EQ(metrics.degraded_micros.count(), degraded.load());
}

}  // namespace
}  // namespace service
}  // namespace rdfc
