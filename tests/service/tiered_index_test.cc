// The tiered write path's equivalence gate (DESIGN.md "Tiered write path"):
// for any interleaving of staging, publication, and compaction, the merged
// base+delta probe must return exactly the external ids a full scan over the
// live view set returns — including while a compaction is in flight, after
// crash-recovered restores, and (in degraded form) under expired budgets.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "index/validate.h"
#include "service/index_manager.h"
#include "util/budget.h"
#include "util/failpoint.h"

namespace rdfc {
namespace service {
namespace {

using rdfc::testing::ParseOrDie;

/// External ids the tiered merged walk reports for `q`, ascending.
std::vector<std::uint64_t> ProbeIds(const IndexManager::ReadGuard& guard,
                                    const query::BgpQuery& q,
                                    const index::ProbeOptions& options = {}) {
  std::vector<std::uint64_t> out;
  const index::ProbeResult result = guard->Find(q, options);
  for (const index::ProbeMatch& match : result.contained) {
    guard->AppendViewIds(match.stored_id, &out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// The oracle: rebuilds a single pointer-tree index over exactly the live
/// views and runs the pairwise ScanContaining baseline — no tiers, no
/// tombstones, nothing shared with the code under test past the dictionary.
std::vector<std::uint64_t> OracleIds(
    const std::map<std::uint64_t, query::BgpQuery>& live,
    rdf::TermDictionary* dict, const query::BgpQuery& q) {
  index::MvIndex full(dict);
  for (const auto& [id, view] : live) {
    auto inserted = full.Insert(view, id);
    EXPECT_TRUE(inserted.ok());
  }
  std::vector<std::uint64_t> out;
  const index::ProbeResult result = full.ScanContaining(q);
  for (const index::ProbeMatch& match : result.contained) {
    for (std::uint64_t id : full.external_ids(match.stored_id)) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Small-vocabulary view/probe texts: three predicates and chained shapes so
/// containments actually happen across views.
std::string ViewText(std::size_t i) {
  switch (i % 4) {
    case 0:
      return "ASK { ?x :p" + std::to_string(i % 3) + " ?y . }";
    case 1:
      return "ASK { ?x :p" + std::to_string(i % 3) + " ?y . ?y :q ?z . }";
    case 2:
      return "ASK { ?x ?v ?y . ?y :q ?z . }";
    default:
      return "ASK { ?x :p" + std::to_string(i % 3) + " ?y . ?x :r :c" +
             std::to_string(i % 2) + " . }";
  }
}

std::vector<std::string> ProbeTexts() {
  return {
      "ASK { ?a :p0 ?b . ?b :q ?c . }",
      "ASK { ?a :p1 ?b . ?b :q ?c . ?a :r :c0 . }",
      "ASK { ?a :p2 ?b . }",
      "ASK { ?a :p0 ?b . ?a :r :c1 . ?b :q ?c . }",
      "ASK { ?a :s ?b . }",  // matches nothing ever
  };
}

class TieredIndexTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) { return ParseOrDie(text, &dict_); }

  /// Asserts the tiered walk and the scan oracle agree on every probe in the
  /// standard probe set, and that the tier accounting identity holds.
  void ExpectEquivalence(IndexManager& manager, std::size_t slot,
                         const std::map<std::uint64_t, query::BgpQuery>& live,
                         const std::string& context) {
    IndexManager::ReadGuard guard = manager.Acquire(slot);
    EXPECT_EQ(guard->num_base_views() - guard->num_tombstones() +
                  guard->num_delta_views(),
              guard->num_views)
        << context;
    EXPECT_EQ(guard->num_views, live.size()) << context;
    for (const std::string& text : ProbeTexts()) {
      const query::BgpQuery q = Q(text);
      EXPECT_EQ(ProbeIds(guard, q), OracleIds(live, &dict_, q))
          << context << " probe: " << text;
    }
  }

  rdf::TermDictionary dict_;
};

TEST_F(TieredIndexTest, TombstoneMasksBaseViewUntilNextRefreeze) {
  TierOptions tier;
  tier.background_compaction = false;
  IndexManager manager(&dict_, {}, tier);
  const std::size_t slot = manager.RegisterReader();

  auto a = manager.StageAdd(Q("ASK { ?x :p0 ?y . }"));
  auto b = manager.StageAdd(Q("ASK { ?x :p0 ?y . ?y :q ?z . }"));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.Refreeze().ok());

  // Remove a base view: the next publish masks it with a tombstone instead
  // of rebuilding the base.
  ASSERT_TRUE(manager.StageRemove(*a).ok());
  ASSERT_TRUE(manager.Publish().ok());
  {
    IndexManager::ReadGuard guard = manager.Acquire(slot);
    EXPECT_EQ(guard->num_base_views(), 2u);
    EXPECT_EQ(guard->num_tombstones(), 1u);
    EXPECT_TRUE(guard->IsTombstoned(*a));
    EXPECT_FALSE(guard->IsTombstoned(*b));
    const auto hits = ProbeIds(guard, Q("ASK { ?s :p0 ?o . ?o :q ?w . }"));
    EXPECT_EQ(hits, std::vector<std::uint64_t>({*b}));
  }

  // Re-adding an equivalent view lands in the delta under a fresh id; the
  // merged result reports the delta id, never the tombstoned base id.
  auto a2 = manager.StageAdd(Q("ASK { ?x :p0 ?y . }"));
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(manager.Publish().ok());
  {
    IndexManager::ReadGuard guard = manager.Acquire(slot);
    const auto hits = ProbeIds(guard, Q("ASK { ?s :p0 ?o . ?o :q ?w . }"));
    EXPECT_EQ(hits, std::vector<std::uint64_t>({*b, *a2}));
  }

  // The refreeze bakes the removal: tombstones drop to zero and the base
  // shrinks to the live set.
  ASSERT_TRUE(manager.Refreeze().ok());
  IndexManager::ReadGuard guard = manager.Acquire(slot);
  EXPECT_EQ(guard->num_tombstones(), 0u);
  EXPECT_EQ(guard->num_base_views(), 2u);
  EXPECT_EQ(guard->num_delta_views(), 0u);
  std::size_t frozen_shards = 0;
  for (std::size_t s = 0; s < guard->num_shards(); ++s) {
    if (guard->shard(s).base == nullptr) continue;
    EXPECT_TRUE(index::ValidateFrozen(*guard->shard(s).base).ok());
    ++frozen_shards;
  }
  EXPECT_GE(frozen_shards, 1u);
}

TEST_F(TieredIndexTest, RandomisedChurnMatchesScanOracle) {
  // The equivalence gate proper: a seeded random schedule of adds, removes,
  // publishes, and refreezes, with the full probe set checked against the
  // scan oracle after every publish.  Both tiers stay populated through most
  // of the run (removes hit base and delta views alike).
  TierOptions tier;
  tier.background_compaction = false;  // refreezes happen at scripted points
  IndexManager manager(&dict_, {}, tier);
  const std::size_t slot = manager.RegisterReader();

  std::mt19937_64 rng(20260808);
  std::map<std::uint64_t, query::BgpQuery> live;
  std::size_t next_view = 0;
  for (int round = 0; round < 40; ++round) {
    const std::size_t adds = 1 + rng() % 3;
    for (std::size_t i = 0; i < adds; ++i) {
      const query::BgpQuery view = Q(ViewText(next_view++));
      auto id = manager.StageAdd(view);
      ASSERT_TRUE(id.ok());
      live.emplace(*id, view);
    }
    if (!live.empty() && rng() % 3 == 0) {
      // Remove a uniformly chosen live view — base or delta, whichever.
      auto it = live.begin();
      std::advance(it, rng() % live.size());
      ASSERT_TRUE(manager.StageRemove(it->first).ok());
      live.erase(it);
    }
    ASSERT_TRUE(manager.Publish().ok());
    ExpectEquivalence(manager, slot, live, "round " + std::to_string(round));
    if (round % 7 == 6) {
      ASSERT_TRUE(manager.Refreeze().ok());
      ExpectEquivalence(manager, slot, live,
                        "post-refreeze round " + std::to_string(round));
    }
  }
  const IndexManager::TierStats stats = manager.tier_stats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.base_views, 0u);
}

TEST_F(TieredIndexTest, PublishDuringCompactionReconciles) {
  // The deterministic interleaving the background path must survive: while a
  // compaction sits between its merge build and its publication swing, the
  // writer stages adds AND removes (including of views the merge already
  // baked) and publishes them.  The swing must reconcile — the compacted
  // version keeps every concurrently published change, versions stay
  // monotonic, and the merged answers still match the oracle.
  TierOptions tier;
  tier.background_compaction = false;  // drive the compaction synchronously
  IndexManager manager(&dict_, {}, tier);
  const std::size_t slot = manager.RegisterReader();

  std::map<std::uint64_t, query::BgpQuery> live;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 6; ++i) {
    const query::BgpQuery view = Q(ViewText(i));
    auto id = manager.StageAdd(view);
    ASSERT_TRUE(id.ok());
    live.emplace(*id, view);
    ids.push_back(*id);
  }
  ASSERT_TRUE(manager.Publish().ok());
  const std::uint64_t version_before = manager.current_version();

  // The hook fires off-lock between the merge build (which captured the six
  // views above) and the swing.
  std::uint64_t hook_version = 0;
  manager.set_compaction_hook([&] {
    // Remove a view the merge already baked, and stage two new views the
    // merge has never seen.
    ASSERT_TRUE(manager.StageRemove(ids[1]).ok());
    live.erase(ids[1]);
    for (std::size_t i = 6; i < 8; ++i) {
      const query::BgpQuery view = Q(ViewText(i));
      auto id = manager.StageAdd(view);
      ASSERT_TRUE(id.ok());
      live.emplace(*id, view);
    }
    auto version = manager.Publish();
    ASSERT_TRUE(version.ok());
    hook_version = *version;
  });
  auto compacted = manager.Refreeze();
  manager.set_compaction_hook(nullptr);
  ASSERT_TRUE(compacted.ok());

  // Monotonic: publish-in-the-window got version N+1, the swing N+2.
  EXPECT_EQ(hook_version, version_before + 1);
  EXPECT_EQ(*compacted, version_before + 2);
  EXPECT_EQ(manager.current_version(), *compacted);

  {
    IndexManager::ReadGuard guard = manager.Acquire(slot);
    // The removed-during-compaction view was baked into the new base by the
    // merge, so it must come back masked by a reconciliation tombstone; the
    // added-during-compaction views survive in the delta.
    EXPECT_EQ(guard->num_base_views(), 6u);
    EXPECT_TRUE(guard->IsTombstoned(ids[1]));
    EXPECT_EQ(guard->num_delta_views(), 2u);
  }
  ExpectEquivalence(manager, slot, live, "post-reconciliation");

  // A second refreeze with no concurrent traffic drains the reconciliation
  // state completely.
  ASSERT_TRUE(manager.Refreeze().ok());
  {
    IndexManager::ReadGuard guard = manager.Acquire(slot);
    EXPECT_EQ(guard->num_tombstones(), 0u);
    EXPECT_EQ(guard->num_delta_views(), 0u);
    EXPECT_EQ(guard->num_base_views(), live.size());
  }
  ExpectEquivalence(manager, slot, live, "post-drain");
}

TEST_F(TieredIndexTest, StageRemoveDuringCompactionOfDeltaOnlyView) {
  // Variant of the window race with no pre-existing base: the removed view
  // was delta-resident at capture, so the very first compaction bakes it
  // into the brand-new base — and the swing must immediately mask it with a
  // reconciliation tombstone against that new base.
  TierOptions tier;
  tier.background_compaction = false;
  IndexManager manager(&dict_, {}, tier);
  const std::size_t slot = manager.RegisterReader();

  std::map<std::uint64_t, query::BgpQuery> live;
  const query::BgpQuery v0 = Q("ASK { ?x :p0 ?y . }");
  const query::BgpQuery v1 = Q("ASK { ?x :p1 ?y . ?y :q ?z . }");
  auto id0 = manager.StageAdd(v0);
  auto id1 = manager.StageAdd(v1);
  ASSERT_TRUE(id0.ok() && id1.ok());
  live.emplace(*id0, v0);
  live.emplace(*id1, v1);
  ASSERT_TRUE(manager.Publish().ok());

  manager.set_compaction_hook([&] {
    ASSERT_TRUE(manager.StageRemove(*id0).ok());
    live.erase(*id0);
    ASSERT_TRUE(manager.Publish().ok());
  });
  ASSERT_TRUE(manager.Refreeze().ok());
  manager.set_compaction_hook(nullptr);

  IndexManager::ReadGuard guard = manager.Acquire(slot);
  EXPECT_EQ(guard->num_base_views(), 2u);
  EXPECT_TRUE(guard->IsTombstoned(*id0));
  EXPECT_EQ(guard->num_views, 1u);
  guard.Release();
  ExpectEquivalence(manager, slot, live, "delta-resident removal");
}

TEST_F(TieredIndexTest, DegradedTieredProbeOnlyUnderReports) {
  // An exhausted budget must cut the merged walk short, never corrupt it:
  // contained stays a subset of the truth, filter_complete goes false, and
  // unverified stays disjoint from contained — across both tiers.
  TierOptions tier;
  tier.background_compaction = false;
  IndexManager manager(&dict_, {}, tier);
  const std::size_t slot = manager.RegisterReader();

  std::map<std::uint64_t, query::BgpQuery> live;
  for (std::size_t i = 0; i < 8; ++i) {
    const query::BgpQuery view = Q(ViewText(i));
    auto id = manager.StageAdd(view);
    ASSERT_TRUE(id.ok());
    live.emplace(*id, view);
  }
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.Refreeze().ok());
  // Populate the delta tier on top of the base.
  for (std::size_t i = 8; i < 12; ++i) {
    const query::BgpQuery view = Q(ViewText(i));
    auto id = manager.StageAdd(view);
    ASSERT_TRUE(id.ok());
    live.emplace(*id, view);
  }
  ASSERT_TRUE(manager.Publish().ok());

  IndexManager::ReadGuard guard = manager.Acquire(slot);
  ASSERT_GT(guard->num_base_views(), 0u);
  ASSERT_GT(guard->num_delta_views(), 0u);
  for (const std::string& text : ProbeTexts()) {
    const query::BgpQuery q = Q(text);
    const std::vector<std::uint64_t> truth = OracleIds(live, &dict_, q);

    auto reported_ids = [&guard](const index::ProbeResult& result) {
      std::vector<std::uint64_t> out;
      for (const index::ProbeMatch& match : result.contained) {
        guard->AppendViewIds(match.stored_id, &out);
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());
      return out;
    };

    // A budget already expired at entry: both tier walks must cut short and
    // the merged result must say so.
    {
      util::ProbeBudget budget;
      budget.Expire();
      index::ProbeOptions options;
      options.budget = &budget;
      const index::ProbeResult result = guard->Find(q, options);
      EXPECT_TRUE(result.degraded()) << text;
      const auto reported = reported_ids(result);
      EXPECT_TRUE(std::includes(truth.begin(), truth.end(), reported.begin(),
                                reported.end()))
          << "expired-budget probe over-reported: " << text;
    }

    // Step caps cutting the walk at various depths: wherever the merged walk
    // stops, the answer is either complete or flagged degraded, and reported
    // ids stay a subset of the truth.
    for (std::uint64_t cap : {1u, 8u, 64u, 512u}) {
      util::ProbeBudget budget;
      budget.set_max_steps(cap);
      index::ProbeOptions options;
      options.budget = &budget;
      const index::ProbeResult result = guard->Find(q, options);
      const auto reported = reported_ids(result);
      EXPECT_TRUE(std::includes(truth.begin(), truth.end(), reported.begin(),
                                reported.end()))
          << "capped probe over-reported: " << text << " cap " << cap;
      if (!result.degraded()) {
        EXPECT_EQ(reported, truth)
            << "incomplete answer not flagged degraded: " << text << " cap "
            << cap;
      }
    }
  }
}

TEST_F(TieredIndexTest, BackgroundCompactionTriggersOnDeltaSize) {
  TierOptions tier;
  tier.background_compaction = true;
  tier.compact_min_delta_views = 3;
  tier.compact_min_delta_fraction = 0.0;
  IndexManager manager(&dict_, {}, tier);
  const std::size_t slot = manager.RegisterReader();

  std::map<std::uint64_t, query::BgpQuery> live;
  for (std::size_t i = 0; i < 4; ++i) {
    const query::BgpQuery view = Q(ViewText(i));
    auto id = manager.StageAdd(view);
    ASSERT_TRUE(id.ok());
    live.emplace(*id, view);
  }
  ASSERT_TRUE(manager.Publish().ok());

  // The publish left 4 >= 3 delta views: a background refreeze must land
  // without any further writer action.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (manager.tier_stats().compactions == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "background compaction never ran";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  manager.StopCompaction();

  const IndexManager::TierStats stats = manager.tier_stats();
  EXPECT_EQ(stats.base_views, 4u);
  EXPECT_EQ(stats.delta_views, 0u);
  ExpectEquivalence(manager, slot, live, "after background compaction");

  // Below the trigger nothing schedules: one more view stays in the delta.
  const query::BgpQuery view = Q(ViewText(9));
  auto id = manager.StageAdd(view);
  ASSERT_TRUE(id.ok());
  live.emplace(*id, view);
  ASSERT_TRUE(manager.Publish().ok());
  EXPECT_EQ(manager.tier_stats().delta_views, 1u);
  ExpectEquivalence(manager, slot, live, "below trigger");
}

class TieredPersistenceTest : public TieredIndexTest {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    // Base blobs are named <path>.base.<shard>.<generation>.
    for (std::size_t shard = 0; shard < IndexSnapshot::kMaxShards; ++shard) {
      for (std::uint64_t gen = 0; gen < 8; ++gen) {
        std::remove((path_ + ".base." + std::to_string(shard) + "." +
                     std::to_string(gen))
                        .c_str());
      }
    }
  }

  std::string path_ = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      std::string(".rdfcti");
};

TEST_F(TieredPersistenceTest, SaveRestoreRoundTripsBothTiers) {
  TierOptions tier;
  tier.background_compaction = false;
  IndexManager manager(&dict_, {}, tier);

  std::map<std::uint64_t, query::BgpQuery> live;
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 6; ++i) {
    const query::BgpQuery view = Q(ViewText(i));
    auto id = manager.StageAdd(view);
    ASSERT_TRUE(id.ok());
    live.emplace(*id, view);
    ids.push_back(*id);
  }
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.Refreeze().ok());
  // Tombstone one base view and put two more in the delta.
  ASSERT_TRUE(manager.StageRemove(ids[2]).ok());
  live.erase(ids[2]);
  for (std::size_t i = 6; i < 8; ++i) {
    const query::BgpQuery view = Q(ViewText(i));
    auto id = manager.StageAdd(view);
    ASSERT_TRUE(id.ok());
    live.emplace(*id, view);
  }
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.SaveTiered(path_).ok());

  // Restore into a fresh dictionary/manager and compare every probe's
  // external ids — the durable handles — against the original oracle.
  rdf::TermDictionary dict2;
  IndexManager restored(&dict2, {}, tier);
  ASSERT_TRUE(restored.RestoreTiered(path_).ok());
  const std::size_t slot = restored.RegisterReader();
  {
    IndexManager::ReadGuard guard = restored.Acquire(slot);
    EXPECT_EQ(guard->num_base_views(), 6u);
    EXPECT_EQ(guard->num_tombstones(), 1u);
    EXPECT_EQ(guard->num_delta_views(), 2u);
    EXPECT_EQ(guard->num_views, live.size());
    for (const std::string& text : ProbeTexts()) {
      EXPECT_EQ(ProbeIds(guard, ParseOrDie(text, &dict2)),
                OracleIds(live, &dict_, Q(text)))
          << "restored probe: " << text;
    }
  }

  // The restored manager keeps working: stage, publish, refreeze.
  const query::BgpQuery extra = ParseOrDie(ViewText(8), &dict2);
  auto id = restored.StageAdd(extra);
  ASSERT_TRUE(id.ok());
  live.emplace(*id, Q(ViewText(8)));
  ASSERT_TRUE(restored.Publish().ok());
  ASSERT_TRUE(restored.Refreeze().ok());
  IndexManager::ReadGuard guard = restored.Acquire(slot);
  EXPECT_EQ(guard->num_views, live.size());
  EXPECT_EQ(guard->num_tombstones(), 0u);
  for (const std::string& text : ProbeTexts()) {
    EXPECT_EQ(ProbeIds(guard, ParseOrDie(text, &dict2)),
              OracleIds(live, &dict_, Q(text)))
        << "post-restore churn probe: " << text;
  }
}

TEST_F(TieredPersistenceTest, RestoreRequiresFreshManager) {
  TierOptions tier;
  tier.background_compaction = false;
  IndexManager manager(&dict_, {}, tier);
  ASSERT_TRUE(manager.StageAdd(Q("ASK { ?x :p0 ?y . }")).ok());
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.SaveTiered(path_).ok());
  // `manager` is no longer fresh: restoring into it must be refused.
  EXPECT_EQ(manager.RestoreTiered(path_).code(),
            util::StatusCode::kInvalidArgument);
}

#ifdef RDFC_FAILPOINTS
TEST_F(TieredPersistenceTest, CrashBetweenBaseAndManifestRecoversOldImage) {
  // compact.crash fires after the new base blob is committed but before the
  // manifest swings to it: the surviving manifest still names the previous
  // generation, so recovery loads the pre-crash image intact.
  TierOptions tier;
  tier.background_compaction = false;
  IndexManager manager(&dict_, {}, tier);

  std::map<std::uint64_t, query::BgpQuery> live_v1;
  for (std::size_t i = 0; i < 4; ++i) {
    const query::BgpQuery view = Q(ViewText(i));
    auto id = manager.StageAdd(view);
    ASSERT_TRUE(id.ok());
    live_v1.emplace(*id, view);
  }
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.Refreeze().ok());
  ASSERT_TRUE(manager.SaveTiered(path_).ok());  // generation 1 committed

  // More churn, another refreeze, then a save that dies mid-commit.
  ASSERT_TRUE(manager.StageAdd(Q(ViewText(5))).ok());
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.Refreeze().ok());
  ASSERT_TRUE(
      util::FailpointRegistry::Instance().Configure("compact.crash=1", 7).ok());
  EXPECT_FALSE(manager.SaveTiered(path_).ok());
  util::FailpointRegistry::Instance().Reset();

  rdf::TermDictionary dict2;
  IndexManager recovered(&dict2, {}, tier);
  ASSERT_TRUE(recovered.RestoreTiered(path_).ok());
  const std::size_t slot = recovered.RegisterReader();
  IndexManager::ReadGuard guard = recovered.Acquire(slot);
  EXPECT_EQ(guard->num_views, live_v1.size());  // the pre-crash image
  for (const std::string& text : ProbeTexts()) {
    EXPECT_EQ(ProbeIds(guard, ParseOrDie(text, &dict2)),
              OracleIds(live_v1, &dict_, Q(text)))
        << "recovered probe: " << text;
  }
}
#endif  // RDFC_FAILPOINTS

}  // namespace
}  // namespace service
}  // namespace rdfc
