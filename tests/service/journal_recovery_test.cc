#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/journal.h"
#include "service/containment_service.h"

// Crash-recovery contract of the journalled service (DESIGN.md
// "Durability"): a ContainmentService brought up over the journal of a dead
// one must answer every probe exactly as the dead one would have — for every
// publish that was acknowledged — with no re-journalling, stable external
// ids, and fresh ids disjoint from everything recovered.

namespace rdfc {
namespace service {
namespace {

ServiceOptions TestOptions() {
  ServiceOptions options;
  options.num_threads = 2;
  options.queue_capacity = 64;
  options.parser.default_prefixes[""] = "urn:j:";
  return options;
}

index::JournalOptions Journal(const std::string& path) {
  index::JournalOptions options;
  options.path = path;
  options.fsync = index::JournalFsync::kOff;  // kernel durability is enough
  return options;
}

class JournalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string stem =
        ::testing::TempDir() + "journal_recovery_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    journal_path_ = stem + ".wal";
    snapshot_path_ = stem + ".rdfcti";
    CleanFiles();
  }

  void TearDown() override { CleanFiles(); }

  void CleanFiles() {
    std::remove(journal_path_.c_str());
    std::remove(snapshot_path_.c_str());
    for (int shard = 0; shard < 16; ++shard) {
      for (int gen = 0; gen < 8; ++gen) {
        std::remove((snapshot_path_ + ".base." + std::to_string(shard) + "." +
                     std::to_string(gen))
                        .c_str());
      }
    }
  }

  static std::vector<std::string> ProbeTexts() {
    return {
        "ASK { ?a :p ?b . ?a :q ?c . }", "ASK { ?a :p ?b . }",
        "ASK { ?a :q ?b . }",            "ASK { ?a :r ?b . ?b :q ?c . }",
        "ASK { ?a :r ?b . }",
    };
  }

  /// Contained-id answers for the shared probe set.
  static std::vector<std::vector<std::uint64_t>> Answers(
      ContainmentService* svc) {
    std::vector<std::vector<std::uint64_t>> out;
    for (const std::string& text : ProbeTexts()) {
      auto response = svc->Probe(text);
      EXPECT_TRUE(response.ok()) << response.status().ToString();
      out.push_back(response.ok() ? response->containing_views
                                  : std::vector<std::uint64_t>{});
    }
    return out;
  }

  std::string journal_path_;
  std::string snapshot_path_;
};

TEST_F(JournalRecoveryTest, ReplayRestoresAcknowledgedPublishes) {
  std::vector<std::vector<std::uint64_t>> expected;
  std::uint64_t removed_id = 0;
  {
    ContainmentService svc(TestOptions());
    ASSERT_TRUE(svc.EnableJournal(Journal(journal_path_)).ok());
    // Three acknowledged batches: adds, an empty publish, a remove.
    auto v1 = svc.AddView("ASK { ?x :p ?y . }");
    auto v2 = svc.AddView("ASK { ?x :q ?y . }");
    ASSERT_TRUE(v1.ok() && v2.ok());
    ASSERT_TRUE(svc.Publish().ok());
    ASSERT_TRUE(svc.Publish().ok());  // empty: still one journal record
    auto v3 = svc.AddView("ASK { ?x :r ?y . ?y :q ?z . }");
    ASSERT_TRUE(v3.ok());
    removed_id = *v2;
    ASSERT_TRUE(svc.RemoveView(removed_id).ok());
    ASSERT_TRUE(svc.Publish().ok());
    EXPECT_EQ(svc.manager().journal_stats().last_sequence, 3u);
    expected = Answers(&svc);
  }

  ContainmentService recovered(TestOptions());
  ASSERT_TRUE(recovered.EnableJournal(Journal(journal_path_)).ok());
  const index::JournalStats stats = recovered.manager().journal_stats();
  EXPECT_EQ(stats.records_replayed, 3u);
  EXPECT_EQ(stats.last_sequence, 3u);
  EXPECT_EQ(stats.records_appended, 0u);  // replay must not re-journal
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(Answers(&recovered), expected);

  // The tombstoned view stays dead after recovery.
  auto gone = recovered.Probe("ASK { ?a :q ?b . }");
  ASSERT_TRUE(gone.ok());
  for (std::uint64_t id : gone->containing_views) EXPECT_NE(id, removed_id);
}

TEST_F(JournalRecoveryTest, EnableJournalRefusesPreexistingStagedIntents) {
  ContainmentService svc(TestOptions());
  ASSERT_TRUE(svc.AddView("ASK { ?x :p ?y . }").ok());
  // Staged intents from before the journal would be acknowledged by the next
  // publish yet invisible to replay — refuse rather than silently leak.
  EXPECT_EQ(svc.EnableJournal(Journal(journal_path_)).code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(JournalRecoveryTest, DoubleEnableIsRejected) {
  ContainmentService svc(TestOptions());
  ASSERT_TRUE(svc.EnableJournal(Journal(journal_path_)).ok());
  EXPECT_EQ(svc.EnableJournal(Journal(journal_path_)).code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(JournalRecoveryTest, SaveTieredTruncatesJournalAndRestartUsesBoth) {
  std::vector<std::vector<std::uint64_t>> expected;
  {
    ContainmentService svc(TestOptions());
    ASSERT_TRUE(svc.EnableJournal(Journal(journal_path_)).ok());
    ASSERT_TRUE(svc.AddView("ASK { ?x :p ?y . }").ok());
    ASSERT_TRUE(svc.AddView("ASK { ?x :q ?y . }").ok());
    ASSERT_TRUE(svc.Publish().ok());
    // The image covers sequences 1..1; the journal resets to a bare header.
    ASSERT_TRUE(svc.manager().SaveTiered(snapshot_path_).ok());
    ASSERT_TRUE(svc.AddView("ASK { ?x :r ?y . ?y :q ?z . }").ok());
    ASSERT_TRUE(svc.Publish().ok());  // sequence 2: lives only in the journal
    expected = Answers(&svc);
  }

  ContainmentService recovered(TestOptions());
  ASSERT_TRUE(recovered.manager().RestoreTiered(snapshot_path_).ok());
  ASSERT_TRUE(recovered.EnableJournal(Journal(journal_path_)).ok());
  const index::JournalStats stats = recovered.manager().journal_stats();
  EXPECT_EQ(stats.records_replayed, 1u);  // only the post-checkpoint batch
  EXPECT_EQ(stats.last_sequence, 2u);     // but sequences stay monotone
  EXPECT_EQ(Answers(&recovered), expected);
}

TEST_F(JournalRecoveryTest, PostRecoveryAddsGetFreshIds) {
  std::vector<std::uint64_t> ids;
  {
    ContainmentService svc(TestOptions());
    ASSERT_TRUE(svc.EnableJournal(Journal(journal_path_)).ok());
    for (int i = 0; i < 5; ++i) {
      auto id = svc.AddView("ASK { ?x :p" + std::to_string(i) + " ?y . }");
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    ASSERT_TRUE(svc.Publish().ok());
  }

  ContainmentService recovered(TestOptions());
  ASSERT_TRUE(recovered.EnableJournal(Journal(journal_path_)).ok());
  auto fresh = recovered.AddView("ASK { ?x :fresh ?y . }");
  ASSERT_TRUE(fresh.ok());
  for (std::uint64_t id : ids) EXPECT_GT(*fresh, id);
}

TEST_F(JournalRecoveryTest, RecoveredServiceKeepsJournalling) {
  // A batch published AFTER recovery must itself be recoverable: the journal
  // chain survives any number of restarts.
  {
    ContainmentService svc(TestOptions());
    ASSERT_TRUE(svc.EnableJournal(Journal(journal_path_)).ok());
    ASSERT_TRUE(svc.AddView("ASK { ?x :p ?y . }").ok());
    ASSERT_TRUE(svc.Publish().ok());
  }
  std::vector<std::vector<std::uint64_t>> expected;
  {
    ContainmentService svc(TestOptions());
    ASSERT_TRUE(svc.EnableJournal(Journal(journal_path_)).ok());
    ASSERT_TRUE(svc.AddView("ASK { ?x :q ?y . }").ok());
    ASSERT_TRUE(svc.Publish().ok());
    EXPECT_EQ(svc.manager().journal_stats().last_sequence, 2u);
    expected = Answers(&svc);
  }
  ContainmentService svc(TestOptions());
  ASSERT_TRUE(svc.EnableJournal(Journal(journal_path_)).ok());
  EXPECT_EQ(svc.manager().journal_stats().records_replayed, 2u);
  EXPECT_EQ(Answers(&svc), expected);
}

}  // namespace
}  // namespace service
}  // namespace rdfc
