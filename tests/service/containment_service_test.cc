#include "service/containment_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

namespace rdfc {
namespace service {
namespace {

ServiceOptions TestOptions(std::size_t threads = 2,
                           std::size_t queue_capacity = 64) {
  ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = queue_capacity;
  options.parser.default_prefixes[""] = "urn:t:";
  return options;
}

TEST(ContainmentServiceTest, ProbeSeesPublishedViewsOnly) {
  ContainmentService svc(TestOptions());
  auto p = svc.AddView("ASK { ?x :p ?y . }");
  auto q = svc.AddView("ASK { ?x :q ?y . }");
  ASSERT_TRUE(p.ok() && q.ok());

  // Staged but unpublished: nothing matches.
  auto before = svc.Probe("ASK { ?a :p ?b . ?a :q ?c . }");
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->status.ok());
  EXPECT_TRUE(before->containing_views.empty());
  EXPECT_EQ(before->snapshot_version, 0u);

  ASSERT_TRUE(svc.Publish().ok());
  auto after = svc.Probe("ASK { ?a :p ?b . ?a :q ?c . }");
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->status.ok());
  EXPECT_EQ(after->snapshot_version, 1u);
  // Both views contain the probe; ids come back deduplicated and ascending.
  EXPECT_EQ(after->containing_views, (std::vector<std::uint64_t>{*p, *q}));
  EXPECT_GE(after->total_micros, after->filter_micros);
}

TEST(ContainmentServiceTest, RemoveViewTakesEffectAtPublish) {
  ContainmentService svc(TestOptions());
  auto views = svc.PublishViews({"ASK { ?x :p ?y . }", "ASK { ?x :q ?y . }"});
  ASSERT_TRUE(views.ok());
  ASSERT_EQ(views->size(), 2u);

  ASSERT_TRUE(svc.RemoveView((*views)[1]).ok());
  ASSERT_TRUE(svc.Publish().ok());
  auto response = svc.Probe("ASK { ?a :q ?b . }");
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->containing_views.empty());
  auto still = svc.Probe("ASK { ?a :p ?b . }");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->containing_views,
            (std::vector<std::uint64_t>{(*views)[0]}));
}

TEST(ContainmentServiceTest, ExpiredDeadlineReturnsDeadlineExceeded) {
  ContainmentService svc(TestOptions(/*threads=*/1));
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());

  auto query = svc.Parse("ASK { ?a :p ?b . }");
  ASSERT_TRUE(query.ok());
  ProbeRequest request;
  request.query = *query;
  request.deadline = std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1);  // already expired
  auto future = svc.Submit(std::move(request));
  ASSERT_TRUE(future.ok());  // admission succeeds; expiry is checked at dequeue
  const ProbeResponse response = future->get();
  EXPECT_EQ(response.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(response.containing_views.empty());

  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.deadline_expired, 1u);
  EXPECT_EQ(metrics.completed, 0u);
}

TEST(ContainmentServiceTest, FullQueueShedsWithResourceExhausted) {
  // One worker, two queue slots; every probe sleeps long enough that nothing
  // drains while we overfill.  Admission must shed immediately — never block,
  // never drop silently.
  ContainmentService svc(TestOptions(/*threads=*/1, /*queue_capacity=*/2));
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());
  auto query = svc.Parse("ASK { ?a :p ?b . }");
  ASSERT_TRUE(query.ok());

  std::vector<std::future<ProbeResponse>> admitted;
  std::size_t rejected = 0;
  const auto start = std::chrono::steady_clock::now();
  // Worker can hold 1 in flight + 2 queued: 6 submissions guarantee shedding.
  for (int i = 0; i < 6; ++i) {
    ProbeRequest request;
    request.query = *query;
    request.simulated_io_micros = 200000;  // 200ms: park the worker
    auto future = svc.Submit(std::move(request));
    if (future.ok()) {
      admitted.push_back(std::move(future).value());
    } else {
      EXPECT_EQ(future.status().code(), util::StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(rejected, 3u);  // at most 3 admitted (1 running + 2 queued)
  EXPECT_LE(admitted.size(), 3u);
  // Rejections were immediate, not blocking: far less than one probe's 200ms.
  EXPECT_LT(elapsed, std::chrono::milliseconds(150));

  // Every admitted probe still completes successfully — nothing was dropped.
  for (auto& future : admitted) {
    const ProbeResponse response = future.get();
    EXPECT_TRUE(response.status.ok());
    EXPECT_EQ(response.containing_views.size(), 1u);
  }
  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.rejected, rejected);
  EXPECT_EQ(metrics.submitted, admitted.size());
  EXPECT_EQ(metrics.completed, admitted.size());
}

TEST(ContainmentServiceTest, SubmitBatchReportsPerRequestOutcomes) {
  ContainmentService svc(TestOptions());
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());
  auto query = svc.Parse("ASK { ?a :p ?b . }");
  ASSERT_TRUE(query.ok());

  std::vector<ProbeRequest> batch(5);
  for (auto& request : batch) request.query = *query;
  batch[2].deadline = std::chrono::steady_clock::now() -
                      std::chrono::milliseconds(1);
  const auto results = svc.SubmitBatch(std::move(batch));
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << i;  // all admitted
    if (i == 2) {
      EXPECT_EQ(results[i]->status.code(),
                util::StatusCode::kDeadlineExceeded);
    } else {
      EXPECT_TRUE(results[i]->status.ok()) << i;
      EXPECT_EQ(results[i]->containing_views.size(), 1u);
    }
  }
}

TEST(ContainmentServiceTest, ProbesInFlightKeepTheirSnapshotVersion) {
  ContainmentService svc(TestOptions());
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());
  auto v1 = svc.Probe("ASK { ?a :p ?b . }");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->snapshot_version, 1u);

  ASSERT_TRUE(svc.AddView("ASK { ?x :q ?y . }").ok());
  ASSERT_TRUE(svc.Publish().ok());
  auto v2 = svc.Probe("ASK { ?a :p ?b . }");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->snapshot_version, 2u);
  EXPECT_EQ(svc.current_version(), 2u);
}

TEST(ContainmentServiceTest, SubmitAfterShutdownFails) {
  ContainmentService svc(TestOptions());
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());
  auto query = svc.Parse("ASK { ?a :p ?b . }");
  ASSERT_TRUE(query.ok());
  svc.Shutdown();
  svc.Shutdown();  // idempotent
  ProbeRequest request;
  request.query = *query;
  auto future = svc.Submit(std::move(request));
  EXPECT_FALSE(future.ok());
}

TEST(ContainmentServiceTest, ParseErrorsSurfaceWithoutStagingAnything) {
  ContainmentService svc(TestOptions());
  EXPECT_FALSE(svc.AddView("not sparql at all").ok());
  auto batch = svc.PublishViews({"ASK { ?x :p ?y . }", "also not sparql"});
  EXPECT_FALSE(batch.ok());
  EXPECT_EQ(svc.num_live_views(), 0u);
  EXPECT_EQ(svc.current_version(), 0u);  // nothing was published
}

}  // namespace
}  // namespace service
}  // namespace rdfc
