#include "service/index_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "../test_util.h"
#include "index/validate.h"

namespace rdfc {
namespace service {
namespace {

using rdfc::testing::ParseOrDie;

class IndexManagerTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) { return ParseOrDie(text, &dict_); }

  /// Probes the snapshot pinned by `guard` (merged two-tier walk) and
  /// returns the matched external view ids, ascending.
  std::vector<std::uint64_t> Probe(const IndexManager::ReadGuard& guard,
                                   const std::string& text) {
    const query::BgpQuery q = ParseOrDie(text, &dict_);
    std::vector<std::uint64_t> out;
    const index::ProbeResult result = guard->Find(q);
    for (const index::ProbeMatch& match : result.contained) {
      guard->AppendViewIds(match.stored_id, &out);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  rdf::TermDictionary dict_;
};

TEST_F(IndexManagerTest, StartsWithEmptyVersionZero) {
  IndexManager manager(&dict_);
  EXPECT_EQ(manager.current_version(), 0u);
  EXPECT_EQ(manager.num_live_views(), 0u);
  const std::size_t slot = manager.RegisterReader();
  auto guard = manager.Acquire(slot);
  EXPECT_EQ(guard->version, 0u);
  EXPECT_EQ(guard->num_views, 0u);
  EXPECT_EQ(guard->num_populated_shards(), 0u);
  for (std::size_t s = 0; s < guard->num_shards(); ++s) {
    EXPECT_EQ(guard->shard(s).base, nullptr);
    EXPECT_EQ(guard->shard(s).delta, nullptr);
  }
}

TEST_F(IndexManagerTest, StagedViewsInvisibleUntilPublish) {
  IndexManager manager(&dict_);
  const std::size_t slot = manager.RegisterReader();
  auto id = manager.StageAdd(Q("ASK { ?x :p ?y . }"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(manager.num_staged_changes(), 1u);
  {
    auto guard = manager.Acquire(slot);
    EXPECT_TRUE(Probe(guard, "ASK { ?a :p ?b . ?a :q ?c . }").empty());
  }
  auto version = manager.Publish();
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 1u);
  EXPECT_EQ(manager.num_staged_changes(), 0u);
  {
    auto guard = manager.Acquire(slot);
    const auto hits = Probe(guard, "ASK { ?a :p ?b . ?a :q ?c . }");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], *id);
  }
}

TEST_F(IndexManagerTest, StageRemoveTakesEffectAtPublish) {
  IndexManager manager(&dict_);
  const std::size_t slot = manager.RegisterReader();
  auto keep = manager.StageAdd(Q("ASK { ?x :p ?y . }"));
  auto drop = manager.StageAdd(Q("ASK { ?x :q ?y . }"));
  ASSERT_TRUE(keep.ok() && drop.ok());
  ASSERT_TRUE(manager.Publish().ok());

  ASSERT_TRUE(manager.StageRemove(*drop).ok());
  EXPECT_EQ(manager.num_live_views(), 1u);
  // Not yet published: the removed view still matches.
  {
    auto guard = manager.Acquire(slot);
    EXPECT_EQ(Probe(guard, "ASK { ?a :q ?b . }").size(), 1u);
  }
  ASSERT_TRUE(manager.Publish().ok());
  {
    auto guard = manager.Acquire(slot);
    EXPECT_TRUE(Probe(guard, "ASK { ?a :q ?b . }").empty());
    EXPECT_EQ(Probe(guard, "ASK { ?a :p ?b . }").size(), 1u);
  }

  EXPECT_EQ(manager.StageRemove(*drop).code(), util::StatusCode::kNotFound);
  EXPECT_EQ(manager.StageRemove(999).code(), util::StatusCode::kNotFound);
}

TEST_F(IndexManagerTest, RejectsEmptyView) {
  IndexManager manager(&dict_);
  auto result = manager.StageAdd(query::BgpQuery());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(IndexManagerTest, GuardPinsItsVersionAcrossPublish) {
  IndexManager manager(&dict_);
  const std::size_t slot = manager.RegisterReader();
  ASSERT_TRUE(manager.StageAdd(Q("ASK { ?x :p ?y . }")).ok());
  ASSERT_TRUE(manager.Publish().ok());

  auto pinned = manager.Acquire(slot);
  EXPECT_EQ(pinned->version, 1u);

  ASSERT_TRUE(manager.StageAdd(Q("ASK { ?x :q ?y . }")).ok());
  ASSERT_TRUE(manager.Publish().ok());
  EXPECT_EQ(manager.current_version(), 2u);

  // The held guard still reads version 1 — snapshot isolation — and the
  // retained-version count reflects the pin.
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(pinned->num_views, 1u);
  EXPECT_EQ(manager.num_retained_versions(), 2u);  // v1 (pinned) + v2
}

TEST_F(IndexManagerTest, ReclaimsUnpinnedVersionsAtPublish) {
  IndexManager manager(&dict_);
  const std::size_t slot = manager.RegisterReader();
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(
        manager.StageAdd(Q("ASK { ?x :p" + std::to_string(round) + " ?y . }"))
            .ok());
    ASSERT_TRUE(manager.Publish().ok());
  }
  // No guard outstanding: every superseded version was swept at its
  // successor's publish.
  EXPECT_EQ(manager.num_retained_versions(), 1u);

  // A released guard's version is reclaimed by the next publish.
  { auto guard = manager.Acquire(slot); }
  ASSERT_TRUE(manager.StageAdd(Q("ASK { ?x :z ?y . }")).ok());
  ASSERT_TRUE(manager.Publish().ok());
  EXPECT_EQ(manager.num_retained_versions(), 1u);
}

TEST_F(IndexManagerTest, PublishedVersionsSatisfyIndexInvariants) {
  IndexManager manager(&dict_);
  const std::size_t slot = manager.RegisterReader();
  ASSERT_TRUE(manager.StageAdd(Q("ASK { ?x :p ?y . ?y :q ?z . }")).ok());
  ASSERT_TRUE(manager.StageAdd(Q("ASK { ?x :p ?y . }")).ok());
  ASSERT_TRUE(manager.StageAdd(Q("ASK { ?x a :T . ?x :p ?y . }")).ok());
  ASSERT_TRUE(manager.Publish().ok());
  auto guard = manager.Acquire(slot);
  // Freshly published views sit in their shard's delta tier.
  EXPECT_GE(guard->num_populated_shards(), 1u);
  std::size_t delta_views = 0;
  for (std::size_t s = 0; s < guard->num_shards(); ++s) {
    const ShardTier& tier = guard->shard(s);
    if (tier.delta == nullptr) continue;
    EXPECT_TRUE(index::ValidateMvIndex(*tier.delta).ok());
    delta_views += tier.num_delta_views();
  }
  EXPECT_EQ(delta_views, 3u);
}

TEST_F(IndexManagerTest, MoveTransfersGuardOwnership) {
  IndexManager manager(&dict_);
  const std::size_t slot = manager.RegisterReader();
  auto a = manager.Acquire(slot);
  IndexManager::ReadGuard b = std::move(a);
  EXPECT_EQ(b->version, 0u);
  // The moved-from guard no longer owns the slot: a publish with only `b`
  // outstanding must retain exactly the pinned version plus the new one.
  a.Release();  // no-op on moved-from (would double-free the slot otherwise)
  ASSERT_TRUE(manager.StageAdd(Q("ASK { ?x :p ?y . }")).ok());
  ASSERT_TRUE(manager.Publish().ok());
  EXPECT_EQ(b->version, 0u);  // still pinned through the move
  EXPECT_EQ(manager.num_retained_versions(), 2u);

  // Release is idempotent: the second call must not clear a hazard slot the
  // guard no longer owns.
  b.Release();
  b.Release();
  ASSERT_TRUE(manager.StageAdd(Q("ASK { ?x :q ?y . }")).ok());
  ASSERT_TRUE(manager.Publish().ok());
  EXPECT_EQ(manager.num_retained_versions(), 1u);

  // The slot is free again for a fresh guard after the moved chain died.
  auto c = manager.Acquire(slot);
  EXPECT_EQ(c->version, 2u);
}

}  // namespace
}  // namespace service
}  // namespace rdfc
