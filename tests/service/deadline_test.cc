#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/containment_service.h"

// The three deadline semantics (DESIGN.md "Resilience"):
//   1. deadline already past at dequeue  -> DeadlineExceeded, probe never runs;
//   2. budget expires mid-probe          -> OK + degraded=true, sound partial
//      answer, latency accounted in the separate degraded histogram;
//   3. deadline comfortably met          -> OK, counted as completed.
// Plus the quarantine breaker that short-circuits repeat offenders.

namespace rdfc {
namespace service {
namespace {

ServiceOptions TestOptions(std::size_t threads = 1) {
  ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = 64;
  options.parser.default_prefixes[""] = "urn:t:";
  return options;
}

// Text twins of workload::MakeAdversarialCase (the service owns its own
// dictionary, so the pair is expressed as SPARQL): the probe's k star objects
// merge into one witness class carrying both :r and :rp tails, so the filter
// passes against the view, but no single ?b_i has both tails, so verification
// must refute ~k^(m+1) candidate mappings before giving up.
std::string AdversarialView(std::size_t m) {
  std::string s = "ASK { ?x :p ?y . ";
  for (std::size_t j = 0; j < m; ++j) {
    s += "?x :p ?z" + std::to_string(j) + " . ";
  }
  return s + "?y :r ?w0 . ?y :rp ?w1 . }";
}

std::string AdversarialProbe(std::size_t k) {
  std::string s = "ASK { ";
  for (std::size_t i = 0; i < k; ++i) {
    s += "?a :p ?b" + std::to_string(i) + " . ";
  }
  return s + "?b0 :r ?e0 . ?b1 :rp ?e1 . }";
}

TEST(DeadlineSemanticsTest, ExpiredAtDequeueIsDeadlineExceeded) {
  ContainmentService svc(TestOptions());
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());
  auto query = svc.Parse("ASK { ?a :p ?b . }");
  ASSERT_TRUE(query.ok());

  ProbeRequest request;
  request.query = *query;
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto future = svc.Submit(std::move(request));
  ASSERT_TRUE(future.ok());
  const ProbeResponse response = future->get();
  EXPECT_EQ(response.status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(response.degraded);

  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.deadline_expired, 1u);
  EXPECT_EQ(metrics.completed, 0u);
  EXPECT_EQ(metrics.degraded, 0u);
  EXPECT_EQ(metrics.degraded_micros.count(), 0u);
}

TEST(DeadlineSemanticsTest, MidProbeExpiryDegradesInsteadOfHanging) {
  // 10ms of budget against a probe whose full verification explores ~12^6
  // matcher states.  The acceptance bar: comes back Degraded promptly — not a
  // hang, not a crash, not a false positive.
  ServiceOptions options = TestOptions();
  options.probe_timeout_micros = 10'000;  // 10ms
  ContainmentService svc(options);
  auto honest = svc.AddView("ASK { ?x :p ?y . }");
  auto trap = svc.AddView(AdversarialView(5));
  ASSERT_TRUE(honest.ok() && trap.ok());
  ASSERT_TRUE(svc.Publish().ok());

  const auto start = std::chrono::steady_clock::now();
  auto response = svc.Probe(AdversarialProbe(12));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok());  // degraded is OK-with-caveat, not error
  EXPECT_TRUE(response->degraded);
  EXPECT_FALSE(response->quarantined);
  // Prompt: an order of magnitude of slack over the 10ms budget, far from
  // the seconds a full refutation would take.
  EXPECT_LT(elapsed, std::chrono::milliseconds(2000));

  // Sound: the honest view may be reported (it genuinely contains the
  // probe); the trap view must not be — it can only appear as unverified.
  for (std::uint64_t id : response->containing_views) {
    EXPECT_NE(id, *trap);
  }

  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.degraded, 1u);
  EXPECT_EQ(metrics.completed, 0u);
  EXPECT_EQ(metrics.deadline_expired, 0u);
  // Truncated latency lands in its own histogram, not the healthy one.
  EXPECT_EQ(metrics.degraded_micros.count(), 1u);
  EXPECT_EQ(metrics.total_micros.count(), 0u);
}

TEST(DeadlineSemanticsTest, GenerousDeadlineCompletesCleanly) {
  ContainmentService svc(TestOptions());
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());
  auto query = svc.Parse("ASK { ?a :p ?b . }");
  ASSERT_TRUE(query.ok());

  ProbeRequest request;
  request.query = *query;
  request.deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  auto future = svc.Submit(std::move(request));
  ASSERT_TRUE(future.ok());
  const ProbeResponse response = future->get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(response.containing_views.size(), 1u);
  EXPECT_TRUE(response.unverified_views.empty());

  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.completed, 1u);
  EXPECT_EQ(metrics.degraded, 0u);
  EXPECT_EQ(metrics.total_micros.count(), 1u);
  EXPECT_EQ(metrics.degraded_micros.count(), 0u);
}

TEST(DeadlineSemanticsTest, QuarantineShortCircuitsRepeatOffenders) {
  ServiceOptions options = TestOptions();
  options.probe_timeout_micros = 2'000;  // 2ms: the trap probe always degrades
  options.quarantine_threshold = 2;
  options.quarantine_cooldown_micros = 100'000;  // 100ms
  ContainmentService svc(options);
  ASSERT_TRUE(svc.AddView(AdversarialView(5)).ok());
  ASSERT_TRUE(svc.AddView("ASK { ?x :p ?y . }").ok());
  ASSERT_TRUE(svc.Publish().ok());
  const std::string trap_probe = AdversarialProbe(12);

  // Two degraded runs arm the breaker...
  for (int i = 0; i < 2; ++i) {
    auto response = svc.Probe(trap_probe);
    ASSERT_TRUE(response.ok() && response->status.ok());
    EXPECT_TRUE(response->degraded) << i;
    EXPECT_FALSE(response->quarantined) << i;
  }
  // ...the third is short-circuited without running the probe.
  auto tripped = svc.Probe(trap_probe);
  ASSERT_TRUE(tripped.ok() && tripped->status.ok());
  EXPECT_TRUE(tripped->quarantined);
  EXPECT_TRUE(tripped->degraded);
  EXPECT_TRUE(tripped->containing_views.empty());

  // Other probes are unaffected by someone else's quarantine.
  auto healthy = svc.Probe("ASK { ?a :p ?b . }");
  ASSERT_TRUE(healthy.ok() && healthy->status.ok());
  EXPECT_FALSE(healthy->degraded);
  EXPECT_FALSE(healthy->quarantined);
  EXPECT_EQ(healthy->containing_views.size(), 1u);

  // After the cooldown one retry is allowed; it degrades again, which
  // re-arms the breaker immediately.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto retried = svc.Probe(trap_probe);
  ASSERT_TRUE(retried.ok() && retried->status.ok());
  EXPECT_FALSE(retried->quarantined);
  EXPECT_TRUE(retried->degraded);
  auto retripped = svc.Probe(trap_probe);
  ASSERT_TRUE(retripped.ok() && retripped->status.ok());
  EXPECT_TRUE(retripped->quarantined);

  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.quarantined, 2u);
  EXPECT_EQ(metrics.degraded, 3u);  // runs 1, 2, and the post-cooldown retry
  EXPECT_EQ(metrics.completed, 1u);  // the healthy probe
}

TEST(DeadlineSemanticsTest, HealthyRunClearsQuarantineCounter) {
  ServiceOptions options = TestOptions();
  options.quarantine_threshold = 2;
  ContainmentService svc(options);
  ASSERT_TRUE(svc.AddView(AdversarialView(5)).ok());
  ASSERT_TRUE(svc.Publish().ok());
  auto query = svc.Parse(AdversarialProbe(12));
  ASSERT_TRUE(query.ok());

  auto run = [&svc, &query](std::chrono::steady_clock::time_point deadline) {
    ProbeRequest request;
    request.query = *query;
    request.deadline = deadline;
    auto future = svc.Submit(std::move(request));
    EXPECT_TRUE(future.ok());
    return future->get();
  };
  // Far beyond submit-to-dequeue latency (so the dequeue check passes) yet
  // far below the full refutation cost (so the probe degrades mid-flight).
  const auto tight = [] {
    return std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  };
  const auto none = std::chrono::steady_clock::time_point::max();

  // One degraded run, then a full (undegraded) refutation of the same probe:
  // the consecutive-degraded counter resets, so two MORE degraded runs are
  // needed before anything trips.
  EXPECT_TRUE(run(tight()).degraded);
  const ProbeResponse full = run(none);
  ASSERT_TRUE(full.status.ok());
  EXPECT_FALSE(full.degraded);
  EXPECT_TRUE(full.containing_views.empty());  // the trap never contains it

  EXPECT_TRUE(run(tight()).degraded);
  auto after_reset = run(tight());
  EXPECT_TRUE(after_reset.degraded);
  EXPECT_FALSE(after_reset.quarantined);  // degraded twice since the reset
  // The next one trips — proving the pre-reset run no longer counts.
  EXPECT_TRUE(run(tight()).quarantined);
}

}  // namespace
}  // namespace service
}  // namespace rdfc
