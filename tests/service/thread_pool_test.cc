#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

namespace rdfc {
namespace util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool::Options options;
  options.num_threads = 2;
  ThreadPool pool(options);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&ran](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    }).ok());
  }
  pool.Shutdown();  // drains accepted work before joining
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, WorkerIndexIsInRange) {
  ThreadPool::Options options;
  options.num_threads = 3;
  ThreadPool pool(options);
  std::mutex mu;
  std::set<std::size_t> seen;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&mu, &seen](std::size_t worker) {
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(worker);
    }).ok());
  }
  pool.Shutdown();
  ASSERT_FALSE(seen.empty());
  EXPECT_LT(*seen.rbegin(), 3u);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool::Options options;
  options.num_threads = 0;
  ThreadPool pool(options);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, FullQueueReturnsResourceExhaustedWithoutBlocking) {
  ThreadPool::Options options;
  options.num_threads = 1;
  options.queue_capacity = 2;
  ThreadPool pool(options);

  // Park the single worker so queued tasks cannot drain.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool parked = false;
  ASSERT_TRUE(pool.TrySubmit([&](std::size_t) {
    std::unique_lock<std::mutex> lock(mu);
    parked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  }).ok());
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return parked; });
  }

  // Capacity 2: two more accepted, the third is shed immediately.
  ASSERT_TRUE(pool.TrySubmit([](std::size_t) {}).ok());
  ASSERT_TRUE(pool.TrySubmit([](std::size_t) {}).ok());
  const auto start = std::chrono::steady_clock::now();
  const Status overloaded = pool.TrySubmit([](std::size_t) {});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(overloaded.code(), StatusCode::kResourceExhausted);
  EXPECT_LT(elapsed, std::chrono::milliseconds(100));  // shed, not blocked
  EXPECT_EQ(pool.queue_depth(), 2u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Shutdown();
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(ThreadPool::Options{});
  pool.Shutdown();
  pool.Shutdown();  // idempotent
  const Status status = pool.TrySubmit([](std::size_t) {});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasks) {
  ThreadPool::Options options;
  options.num_threads = 1;
  ThreadPool pool(options);
  std::atomic<int> ran{0};
  // The first task sleeps long enough for the rest to be queued when
  // Shutdown is called; drain semantics still runs them all.
  ASSERT_TRUE(pool.TrySubmit([&ran](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ran.fetch_add(1);
  }).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&ran](std::size_t) { ran.fetch_add(1); }).ok());
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 11);
}

}  // namespace
}  // namespace util
}  // namespace rdfc
