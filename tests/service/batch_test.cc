#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/containment_service.h"

// SubmitBatch error paths (ISSUE 8 satellite): per-request isolation inside
// mixed batches (expired / quarantined members never poison their siblings),
// intra-group dedup, and the grouped overload's all-or-nothing admission —
// a shed group fires ZERO callbacks and the caller owns the error fan-out.

namespace rdfc {
namespace service {
namespace {

ServiceOptions TestOptions(std::size_t threads = 1,
                           std::size_t queue_capacity = 64) {
  ServiceOptions options;
  options.num_threads = threads;
  options.queue_capacity = queue_capacity;
  options.parser.default_prefixes[""] = "urn:t:";
  return options;
}

ProbeRequest MakeRequest(ContainmentService* svc, const std::string& sparql) {
  auto query = svc->Parse(sparql);
  EXPECT_TRUE(query.ok()) << sparql;
  ProbeRequest request;
  request.query = *query;
  return request;
}

/// Collects grouped-SubmitBatch callbacks: (index, response) pairs in
/// arrival order, readable after the batch completes.
struct Collector {
  void operator()(std::size_t index, ProbeResponse response) {
    std::lock_guard<std::mutex> lock(mu);
    indices.push_back(index);
    responses.push_back(std::move(response));
  }
  std::mutex mu;
  std::vector<std::size_t> indices;
  std::vector<ProbeResponse> responses;
};

TEST(BatchTest, SyncBatchMixedAdmissionKeepsPerRequestStatuses) {
  // Queue capacity 1, one worker, four 20ms-io requests submitted back to
  // back: the first is always admitted (the queue is empty), at most two
  // ever are (worker + the single slot), so the batch must come back MIXED —
  // some admitted (eventually OK), some shed with ResourceExhausted — never
  // all-or-nothing.
  ContainmentService svc(TestOptions(/*threads=*/1, /*queue_capacity=*/1));
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());

  std::vector<ProbeRequest> batch;
  for (int i = 0; i < 4; ++i) {
    ProbeRequest request = MakeRequest(&svc, "ASK { ?a :p ?b . }");
    request.simulated_io_micros = 20'000;
    batch.push_back(std::move(request));
  }
  std::vector<util::Result<ProbeResponse>> results =
      svc.SubmitBatch(std::move(batch));
  ASSERT_EQ(results.size(), 4u);
  std::size_t ok = 0, shed = 0;
  for (const auto& result : results) {
    if (result.ok() && result.value().status.ok()) {
      ++ok;
    } else if (!result.ok() &&
               result.status().code() == util::StatusCode::kResourceExhausted) {
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, 4u);
  EXPECT_GE(shed, 2u);
  EXPECT_GE(ok, 1u);
}

TEST(BatchTest, GroupedExpiredMemberIsIsolatedFromSiblings) {
  ContainmentService svc(TestOptions());
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());

  std::vector<ProbeRequest> group;
  group.push_back(MakeRequest(&svc, "ASK { ?a :p ?b . }"));
  ProbeRequest expired = MakeRequest(&svc, "ASK { ?a :p ?b . ?a :q ?c . }");
  expired.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  group.push_back(std::move(expired));
  group.push_back(MakeRequest(&svc, "ASK { ?a :p ?b . ?b :r ?c . }"));

  Collector collected;
  ASSERT_TRUE(svc.SubmitBatch(std::move(group),
                              std::ref(collected), /*wait=*/0.0)
                  .ok());
  svc.Shutdown();  // drains: all callbacks have fired

  ASSERT_EQ(collected.indices.size(), 3u);
  // Callbacks fire once per request, in group order, with the index naming
  // the request's slot in the submitted group.
  EXPECT_EQ(collected.indices, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(collected.responses[0].status.ok());
  EXPECT_EQ(collected.responses[1].status.code(),
            util::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(collected.responses[2].status.ok());
  // Healthy siblings share the one pinned snapshot.
  EXPECT_EQ(collected.responses[0].snapshot_version,
            collected.responses[2].snapshot_version);

  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.deadline_expired, 1u);
  EXPECT_EQ(metrics.completed, 2u);
  EXPECT_EQ(metrics.batches, 1u);
  EXPECT_EQ(metrics.batch_requests, 3u);
}

TEST(BatchTest, GroupedIdenticalProbesAreDedupedOnce) {
  ContainmentService svc(TestOptions());
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());

  const std::string probe = "ASK { ?a :p ?b . ?a :q ?c . }";
  std::vector<ProbeRequest> group;
  for (int i = 0; i < 5; ++i) group.push_back(MakeRequest(&svc, probe));

  Collector collected;
  ASSERT_TRUE(
      svc.SubmitBatch(std::move(group), std::ref(collected), 0.0).ok());
  svc.Shutdown();

  ASSERT_EQ(collected.responses.size(), 5u);
  for (const ProbeResponse& response : collected.responses) {
    EXPECT_TRUE(response.status.ok());
    ASSERT_EQ(response.containing_views.size(), 1u);
    EXPECT_EQ(response.snapshot_version,
              collected.responses[0].snapshot_version);
  }
  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_EQ(metrics.batch_dedup_hits, 4u);  // 1 executed + 4 answered from it
  EXPECT_EQ(metrics.completed, 5u);         // every caller still gets counted
}

TEST(BatchTest, GroupedShedIsAllOrNothingWithZeroCallbacks) {
  // Worker wedged + queue slot taken: the whole group must be refused at
  // admission with ResourceExhausted, metrics must count every member as
  // rejected, and the callback must never fire — response fan-out on
  // rejection belongs to the caller (the net server).
  ContainmentService svc(TestOptions(/*threads=*/1, /*queue_capacity=*/1));
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());

  // Submit 100ms io probes until one is refused: at that instant the worker
  // is wedged AND the single queue slot holds another 100ms probe, so the
  // queue stays provably full for the grouped submission below.  (A fixed
  // two-submit setup races the worker's dequeue of the first probe.)
  std::vector<std::future<ProbeResponse>> fillers;
  for (;;) {
    ProbeRequest wedge = MakeRequest(&svc, "ASK { ?a :p ?b . }");
    wedge.simulated_io_micros = 100'000;
    auto future = svc.Submit(std::move(wedge));
    if (!future.ok()) {
      ASSERT_EQ(future.status().code(), util::StatusCode::kResourceExhausted);
      break;
    }
    fillers.push_back(std::move(future).value());
    ASSERT_LE(fillers.size(), 8u) << "queue never filled";
  }

  std::vector<ProbeRequest> group;
  for (int i = 0; i < 3; ++i) {
    group.push_back(MakeRequest(&svc, "ASK { ?a :p ?b . }"));
  }
  std::atomic<std::size_t> callbacks{0};
  const util::Status admitted = svc.SubmitBatch(
      std::move(group),
      [&callbacks](std::size_t, ProbeResponse) { ++callbacks; }, 0.0);
  EXPECT_EQ(admitted.code(), util::StatusCode::kResourceExhausted);

  for (auto& filler : fillers) filler.wait();
  svc.Shutdown();
  EXPECT_EQ(callbacks.load(), 0u);

  const MetricsSnapshot metrics = svc.Metrics();
  EXPECT_GE(metrics.rejected, 3u);
  EXPECT_EQ(metrics.batches, 0u);  // a refused group is not a batch
}

TEST(BatchTest, GroupedSubmitAfterShutdownFiresNoCallbacks) {
  ContainmentService svc(TestOptions());
  ASSERT_TRUE(svc.PublishViews({"ASK { ?x :p ?y . }"}).ok());
  std::vector<ProbeRequest> group;
  group.push_back(MakeRequest(&svc, "ASK { ?a :p ?b . }"));
  svc.Shutdown();

  std::atomic<std::size_t> callbacks{0};
  const util::Status admitted = svc.SubmitBatch(
      std::move(group),
      [&callbacks](std::size_t, ProbeResponse) { ++callbacks; }, 0.0);
  EXPECT_FALSE(admitted.ok());
  EXPECT_EQ(callbacks.load(), 0u);
}

TEST(BatchTest, EmptyGroupIsANoOp) {
  ContainmentService svc(TestOptions());
  std::atomic<std::size_t> callbacks{0};
  EXPECT_TRUE(svc.SubmitBatch(
                     std::vector<ProbeRequest>{},
                     [&callbacks](std::size_t, ProbeResponse) { ++callbacks; },
                     0.0)
                  .ok());
  EXPECT_EQ(callbacks.load(), 0u);
}

TEST(BatchTest, DegradedOutcomeIsNeverServedFromTheDedupCache) {
  // Two identical adversarial probes in one group under a tiny budget: the
  // first degrades, so the second must RUN (and degrade itself) rather than
  // inherit a possibly-incomplete cached answer as if it were clean.
  ServiceOptions options = TestOptions();
  options.probe_timeout_micros = 5'000;
  options.quarantine_threshold = 0;  // breaker off: isolate dedup behaviour
  ContainmentService svc(options);
  std::string view = "ASK { ?x :p ?y . ";
  for (int j = 0; j < 6; ++j) view += "?x :p ?z" + std::to_string(j) + " . ";
  view += "?y :r ?w0 . ?y :rp ?w1 . }";
  ASSERT_TRUE(svc.PublishViews({view}).ok());

  std::string probe = "ASK { ";
  for (int i = 0; i < 12; ++i) probe += "?a :p ?b" + std::to_string(i) + " . ";
  probe += "?b0 :r ?e0 . ?b1 :rp ?e1 . }";

  std::vector<ProbeRequest> group;
  group.push_back(MakeRequest(&svc, probe));
  group.push_back(MakeRequest(&svc, probe));
  Collector collected;
  ASSERT_TRUE(
      svc.SubmitBatch(std::move(group), std::ref(collected), 0.0).ok());
  svc.Shutdown();

  ASSERT_EQ(collected.responses.size(), 2u);
  EXPECT_TRUE(collected.responses[0].degraded);
  EXPECT_TRUE(collected.responses[1].degraded);
  EXPECT_EQ(svc.Metrics().batch_dedup_hits, 0u);
}

}  // namespace
}  // namespace service
}  // namespace rdfc
