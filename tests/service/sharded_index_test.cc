// The sharded index's equivalence gate (DESIGN.md "Sharded index"): for any
// interleaving of staging, publication, and refreezing, an N-shard manager
// must return exactly the contained sets a 1-shard manager returns — through
// the sequential merged walk and the parallel fan-out alike — and a budget
// expiring mid-fan-out must only ever under-report.  Also covers per-shard
// publish sharing (clean shards are pointer-shared across snapshots), the
// sharded persistence format, and a refreeze-races-fan-out stress that the
// TSan job runs with full instrumentation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "containment/pipeline.h"
#include "service/index_manager.h"
#include "util/budget.h"
#include "util/thread_pool.h"

namespace rdfc {
namespace service {
namespace {

using rdfc::testing::ParseOrDie;

/// Force the fan-out width past the host-derived auto cap: CI runners can
/// be single-core, where auto would (correctly) keep every walk inline and
/// the claim/merge machinery this suite exists to exercise would never run.
constexpr std::uint32_t kForceWalkers = 8;

/// External ids the merged walk reports for `q`, ascending and deduped.
std::vector<std::uint64_t> ProbeIds(const IndexManager::ReadGuard& guard,
                                    const query::BgpQuery& q,
                                    const index::ProbeOptions& options = {}) {
  std::vector<std::uint64_t> out;
  const index::ProbeResult result = guard->Find(q, options);
  for (const index::ProbeMatch& match : result.contained) {
    guard->AppendViewIds(match.stored_id, &out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Same through the parallel fan-out path.
std::vector<std::uint64_t> ProbeIdsParallel(
    const IndexManager::ReadGuard& guard, const rdf::TermDictionary& dict,
    const query::BgpQuery& q, util::ThreadPool* pool,
    const index::ProbeOptions& options = {}, ProbeFanout* fanout = nullptr) {
  const containment::PreparedProbe probe = containment::PrepareProbe(q, dict);
  std::vector<std::uint64_t> out;
  const index::ProbeResult result =
      guard->FindParallel(probe, options, pool, /*preferred_shard=*/0, fanout,
                          kForceWalkers);
  for (const index::ProbeMatch& match : result.contained) {
    guard->AppendViewIds(match.stored_id, &out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Eight predicates and three shapes so views spread across shards and
/// containments happen between them.
std::string ViewText(std::size_t i) {
  const std::string p = ":p" + std::to_string(i % 8);
  switch (i % 3) {
    case 0:
      return "ASK { ?x " + p + " ?y . }";
    case 1:
      return "ASK { ?x " + p + " ?y . ?y :q ?z . }";
    default:
      return "ASK { ?x " + p + " ?y . ?x :r :c" + std::to_string(i % 2) +
             " . }";
  }
}

std::vector<std::string> ProbeTexts() {
  std::vector<std::string> out;
  for (std::size_t p = 0; p < 8; ++p) {
    out.push_back("ASK { ?a :p" + std::to_string(p) + " ?b . ?b :q ?c . }");
    out.push_back("ASK { ?a :p" + std::to_string(p) +
                  " ?b . ?a :r :c0 . ?b :q ?c . }");
  }
  out.push_back("ASK { ?a :s ?b . }");  // matches nothing ever
  return out;
}

class ShardedIndexTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }

  rdf::TermDictionary dict_;
};

TEST_F(ShardedIndexTest, ChurnMatchesSingleShardForAnyInterleaving) {
  // The equivalence gate proper: the same seeded schedule of adds, removes,
  // publishes, and refreezes drives an 8-shard and a 1-shard manager over a
  // shared dictionary; external ids are assigned identically (same staging
  // order), so the contained sets must match probe for probe — sequentially
  // and through the fan-out.
  TierOptions sharded_tier;
  sharded_tier.background_compaction = false;
  sharded_tier.num_shards = 8;
  TierOptions flat_tier = sharded_tier;
  flat_tier.num_shards = 1;
  IndexManager sharded(&dict_, {}, sharded_tier);
  IndexManager flat(&dict_, {}, flat_tier);
  const std::size_t sharded_slot = sharded.RegisterReader();
  const std::size_t flat_slot = flat.RegisterReader();
  util::ThreadPool pool({/*num_threads=*/4, /*queue_capacity=*/256});

  std::mt19937_64 rng(20260808);
  std::vector<std::uint64_t> live_ids;
  std::size_t next_view = 0;
  const std::vector<std::string> probe_texts = ProbeTexts();
  for (int round = 0; round < 30; ++round) {
    const std::size_t adds = 1 + rng() % 4;
    for (std::size_t i = 0; i < adds; ++i) {
      const query::BgpQuery view = Q(ViewText(next_view++));
      auto a = sharded.StageAdd(view);
      auto b = flat.StageAdd(view);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(*a, *b);  // identical id assignment keeps the oracle aligned
      live_ids.push_back(*a);
    }
    if (!live_ids.empty() && rng() % 3 == 0) {
      const std::size_t victim = rng() % live_ids.size();
      ASSERT_TRUE(sharded.StageRemove(live_ids[victim]).ok());
      ASSERT_TRUE(flat.StageRemove(live_ids[victim]).ok());
      live_ids.erase(live_ids.begin() + victim);
    }
    ASSERT_TRUE(sharded.Publish().ok());
    ASSERT_TRUE(flat.Publish().ok());
    if (round % 5 == 4) {
      ASSERT_TRUE(sharded.Refreeze().ok());
    }
    if (round % 7 == 6) {
      ASSERT_TRUE(flat.Refreeze().ok());  // deliberately out of phase
    }
    IndexManager::ReadGuard sharded_guard = sharded.Acquire(sharded_slot);
    IndexManager::ReadGuard flat_guard = flat.Acquire(flat_slot);
    EXPECT_EQ(sharded_guard->num_views, flat_guard->num_views);
    for (const std::string& text : probe_texts) {
      const query::BgpQuery q = Q(text);
      const std::vector<std::uint64_t> want = ProbeIds(flat_guard, q);
      EXPECT_EQ(ProbeIds(sharded_guard, q), want)
          << "round " << round << " probe: " << text;
      EXPECT_EQ(ProbeIdsParallel(sharded_guard, dict_, q, &pool), want)
          << "round " << round << " fan-out probe: " << text;
    }
  }
  EXPECT_GT(sharded.tier_stats().compactions, 0u);
}

TEST_F(ShardedIndexTest, CleanShardsArePointerSharedAcrossPublishes) {
  // A write batch must republish only the shards it dirtied: stage a batch,
  // publish, then stage a second batch and check that every shard untouched
  // by the second batch reuses the previous snapshot's tier object.
  TierOptions tier;
  tier.background_compaction = false;
  tier.num_shards = 8;
  IndexManager manager(&dict_, {}, tier);
  const std::size_t slot = manager.RegisterReader();
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(manager.StageAdd(Q(ViewText(i))).ok());
  }
  ASSERT_TRUE(manager.Publish().ok());

  IndexManager::ReadGuard before = manager.Acquire(slot);
  ASSERT_GE(before->num_populated_shards(), 2u);

  // One more view dirties exactly one shard.
  ASSERT_TRUE(manager.StageAdd(Q(ViewText(0))).ok());
  ASSERT_TRUE(manager.Publish().ok());
  IndexManager::ReadGuard after = manager.Acquire(slot);

  std::size_t changed = 0;
  for (std::size_t s = 0; s < after->num_shards(); ++s) {
    if (before->shards[s] != after->shards[s]) ++changed;
  }
  EXPECT_EQ(changed, 1u);

  // Refreeze also touches only dirty shards: a refreeze with nothing new
  // compacts the one delta-bearing... all shards carrying deltas.  After it,
  // publishing zero changes shares every shard.
  ASSERT_TRUE(manager.Refreeze().ok());
  IndexManager::ReadGuard frozen = manager.Acquire(slot);
  EXPECT_EQ(frozen->num_delta_views(), 0u);
  for (const std::string& text : ProbeTexts()) {
    EXPECT_EQ(ProbeIds(frozen, Q(text)), ProbeIds(after, Q(text)))
        << "refreeze changed answers: " << text;
  }
}

TEST_F(ShardedIndexTest, FanoutReportsWidthAndDirectRouting) {
  TierOptions tier;
  tier.background_compaction = false;
  tier.num_shards = 8;
  IndexManager manager(&dict_, {}, tier);
  const std::size_t slot = manager.RegisterReader();
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(manager.StageAdd(Q(ViewText(i))).ok());
  }
  ASSERT_TRUE(manager.Publish().ok());
  IndexManager::ReadGuard guard = manager.Acquire(slot);
  ASSERT_GE(guard->num_populated_shards(), 2u);
  const query::BgpQuery q = Q("ASK { ?a :p0 ?b . ?b :q ?c . }");

  // Null pool: the walk stays inline and says so.
  ProbeFanout inline_fanout;
  (void)ProbeIdsParallel(guard, dict_, q, /*pool=*/nullptr, {},
                         &inline_fanout);
  EXPECT_EQ(inline_fanout.parallel_walkers, 1u);
  EXPECT_EQ(inline_fanout.shards_probed, guard->num_populated_shards());

  // Real pool: every populated shard is still probed (routing is a latency
  // hint, never pruning) and at least the caller walks.
  util::ThreadPool pool({/*num_threads=*/4, /*queue_capacity=*/256});
  ProbeFanout fanout;
  (void)ProbeIdsParallel(guard, dict_, q, &pool, {}, &fanout);
  EXPECT_EQ(fanout.shards_probed, guard->num_populated_shards());
  EXPECT_GE(fanout.parallel_walkers, 1u);
  EXPECT_LE(fanout.parallel_walkers, fanout.shards_probed);
}

TEST_F(ShardedIndexTest, DegradedFanoutOnlyUnderReports) {
  // A budget expiring mid-fan-out must cut shard walks short, never corrupt
  // the merge: reported ids stay a subset of the truth, and an incomplete
  // answer is always flagged degraded.  The step caps place the expiry at
  // varying depths — including inside helper walkers on the pool.
  TierOptions tier;
  tier.background_compaction = false;
  tier.num_shards = 8;
  IndexManager manager(&dict_, {}, tier);
  const std::size_t slot = manager.RegisterReader();
  for (std::size_t i = 0; i < 48; ++i) {
    ASSERT_TRUE(manager.StageAdd(Q(ViewText(i))).ok());
  }
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.Refreeze().ok());
  for (std::size_t i = 48; i < 64; ++i) {
    ASSERT_TRUE(manager.StageAdd(Q(ViewText(i))).ok());
  }
  ASSERT_TRUE(manager.Publish().ok());  // both tiers populated per shard

  util::ThreadPool pool({/*num_threads=*/4, /*queue_capacity=*/256});
  IndexManager::ReadGuard guard = manager.Acquire(slot);
  for (const std::string& text : ProbeTexts()) {
    const query::BgpQuery q = Q(text);
    const std::vector<std::uint64_t> truth = ProbeIds(guard, q);

    // Pre-expired budget: the fan-out must return degraded immediately.
    {
      util::ProbeBudget budget;
      budget.Expire();
      index::ProbeOptions options;
      options.budget = &budget;
      const containment::PreparedProbe probe =
          containment::PrepareProbe(q, dict_);
      const index::ProbeResult result =
          guard->FindParallel(probe, options, &pool, /*preferred_shard=*/0,
                              /*fanout=*/nullptr, kForceWalkers);
      EXPECT_TRUE(result.degraded()) << text;
      std::vector<std::uint64_t> reported;
      for (const index::ProbeMatch& match : result.contained) {
        guard->AppendViewIds(match.stored_id, &reported);
      }
      std::sort(reported.begin(), reported.end());
      reported.erase(std::unique(reported.begin(), reported.end()),
                     reported.end());
      EXPECT_TRUE(std::includes(truth.begin(), truth.end(), reported.begin(),
                                reported.end()))
          << "expired fan-out over-reported: " << text;
    }

    // Step caps hitting mid-fan-out: the cap is shared across all walkers
    // through the pooled budget, so expiry lands inside whichever shard walk
    // happens to cross it.
    for (std::uint64_t cap : {1u, 4u, 16u, 64u, 256u, 2048u}) {
      util::ProbeBudget budget;
      budget.set_max_steps(cap);
      index::ProbeOptions options;
      options.budget = &budget;
      const containment::PreparedProbe probe =
          containment::PrepareProbe(q, dict_);
      const index::ProbeResult result =
          guard->FindParallel(probe, options, &pool, /*preferred_shard=*/0,
                              /*fanout=*/nullptr, kForceWalkers);
      std::vector<std::uint64_t> reported;
      for (const index::ProbeMatch& match : result.contained) {
        guard->AppendViewIds(match.stored_id, &reported);
      }
      std::sort(reported.begin(), reported.end());
      reported.erase(std::unique(reported.begin(), reported.end()),
                     reported.end());
      EXPECT_TRUE(std::includes(truth.begin(), truth.end(), reported.begin(),
                                reported.end()))
          << "capped fan-out over-reported: " << text << " cap " << cap;
      if (!result.degraded()) {
        EXPECT_EQ(reported, truth)
            << "incomplete fan-out not flagged degraded: " << text << " cap "
            << cap;
      }
    }
  }
}

TEST_F(ShardedIndexTest, RefreezeRacesFanoutAcrossShards) {
  // The TSan target: one writer churns views and refreezes (each refreeze
  // swings a subset of shards to fresh frozen bases) while prober threads
  // fan every probe across all shards on a shared pool.  Snapshots are
  // immutable, so the only sound outcomes are answers drawn entirely from
  // one pinned version; TSan verifies the claim-loop handoff and the
  // publish swing race-free.
  TierOptions tier;
  tier.background_compaction = false;
  tier.num_shards = 8;
  IndexManager manager(&dict_, {}, tier);
  for (std::size_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(manager.StageAdd(Q(ViewText(i))).ok());
  }
  ASSERT_TRUE(manager.Publish().ok());

  // Parse every probe up front: the prober threads must not touch dict_.
  std::vector<containment::PreparedProbe> probes;
  for (const std::string& text : ProbeTexts()) {
    probes.push_back(containment::PrepareProbe(Q(text), dict_));
  }

  util::ThreadPool pool({/*num_threads=*/4, /*queue_capacity=*/256});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> probes_run{0};
  std::vector<std::thread> probers;
  for (int t = 0; t < 2; ++t) {
    const std::size_t slot = manager.RegisterReader();
    probers.emplace_back([&, slot] {
      std::size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        IndexManager::ReadGuard guard = manager.Acquire(slot);
        const index::ProbeResult result =
            guard->FindParallel(probes[i % probes.size()], {}, &pool,
                                /*preferred_shard=*/0, /*fanout=*/nullptr,
                                kForceWalkers);
        // Sanity on the merged result, not equivalence (the live set is a
        // moving target here): tier tags must decode to real view ids.
        std::vector<std::uint64_t> ids;
        for (const index::ProbeMatch& match : result.contained) {
          guard->AppendViewIds(match.stored_id, &ids);
        }
        EXPECT_TRUE(result.filter_complete);
        ++i;
        probes_run.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::size_t next_view = 24;
  std::vector<std::uint64_t> ids;
  for (int round = 0; round < 25; ++round) {
    for (std::size_t i = 0; i < 3; ++i) {
      auto id = manager.StageAdd(Q(ViewText(next_view++)));
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    if (ids.size() > 8 && round % 2 == 1) {
      ASSERT_TRUE(manager.StageRemove(ids[round % ids.size()]).ok());
      ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(
                                  round % ids.size()));
    }
    ASSERT_TRUE(manager.Publish().ok());
    if (round % 3 == 2) ASSERT_TRUE(manager.Refreeze().ok());
  }
  // Let the probers overlap the final state briefly, then quiesce.
  const std::uint64_t floor = probes_run.load(std::memory_order_relaxed) + 16;
  while (probes_run.load(std::memory_order_relaxed) < floor) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : probers) t.join();
}

class ShardedPersistenceTest : public ShardedIndexTest {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    for (std::size_t shard = 0; shard < IndexSnapshot::kMaxShards; ++shard) {
      for (std::uint64_t gen = 0; gen < 8; ++gen) {
        std::remove((path_ + ".base." + std::to_string(shard) + "." +
                     std::to_string(gen))
                        .c_str());
      }
    }
  }

  std::string path_ = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      std::string(".rdfcti");
};

TEST_F(ShardedPersistenceTest, RoundTripsPerShardTiers) {
  TierOptions tier;
  tier.background_compaction = false;
  tier.num_shards = 8;
  IndexManager manager(&dict_, {}, tier);
  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < 24; ++i) {
    auto id = manager.StageAdd(Q(ViewText(i)));
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.Refreeze().ok());
  // Tombstone one baked view, add delta views on top.
  ASSERT_TRUE(manager.StageRemove(ids[3]).ok());
  for (std::size_t i = 24; i < 32; ++i) {
    ASSERT_TRUE(manager.StageAdd(Q(ViewText(i))).ok());
  }
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.SaveTiered(path_).ok());

  const std::size_t slot = manager.RegisterReader();
  IndexManager::ReadGuard original = manager.Acquire(slot);

  rdf::TermDictionary dict2;
  IndexManager restored(&dict2, {}, tier);
  ASSERT_TRUE(restored.RestoreTiered(path_).ok());
  const std::size_t restored_slot = restored.RegisterReader();
  IndexManager::ReadGuard guard = restored.Acquire(restored_slot);
  EXPECT_EQ(guard->num_views, original->num_views);
  EXPECT_EQ(guard->num_base_views(), original->num_base_views());
  EXPECT_EQ(guard->num_tombstones(), original->num_tombstones());
  EXPECT_EQ(guard->num_delta_views(), original->num_delta_views());
  // Per-shard layout survives, not just the aggregates.
  for (std::size_t s = 0; s < guard->num_shards(); ++s) {
    EXPECT_EQ(guard->shard(s).num_base_views(),
              original->shard(s).num_base_views())
        << "shard " << s;
    EXPECT_EQ(guard->shard(s).num_delta_views(),
              original->shard(s).num_delta_views())
        << "shard " << s;
    EXPECT_EQ(guard->shard(s).num_tombstones(),
              original->shard(s).num_tombstones())
        << "shard " << s;
  }
  for (const std::string& text : ProbeTexts()) {
    EXPECT_EQ(ProbeIds(guard, ParseOrDie(text, &dict2)),
              ProbeIds(original, Q(text)))
        << "restored probe: " << text;
  }
}

TEST_F(ShardedPersistenceTest, RestoreRejectsShardCountMismatch) {
  // Restore cannot reshard: routing keys were baked at staging time, so a
  // manager configured for a different shard count must refuse the image
  // instead of silently misrouting future staged views.
  TierOptions tier;
  tier.background_compaction = false;
  tier.num_shards = 8;
  IndexManager manager(&dict_, {}, tier);
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(manager.StageAdd(Q(ViewText(i))).ok());
  }
  ASSERT_TRUE(manager.Publish().ok());
  ASSERT_TRUE(manager.SaveTiered(path_).ok());

  rdf::TermDictionary dict2;
  TierOptions narrow = tier;
  narrow.num_shards = 4;
  IndexManager mismatched(&dict2, {}, narrow);
  EXPECT_EQ(mismatched.RestoreTiered(path_).code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace service
}  // namespace rdfc
