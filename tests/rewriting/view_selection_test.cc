#include "rewriting/view_selection.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "containment/pipeline.h"
#include "workload/workload.h"

namespace rdfc {
namespace rewriting {
namespace {

using rdfc::testing::ParseOrDie;

class ViewSelectionTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  rdf::TermDictionary dict_;
};

TEST_F(ViewSelectionTest, EmptyWorkload) {
  auto result = SelectViews({}, &dict_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->views.empty());
  EXPECT_EQ(result->coverage_rate(), 0.0);
}

TEST_F(ViewSelectionTest, GeneralViewCoversSpecialisations) {
  // Three specialised queries all contained in the broad one; greedy picks
  // the broad query first and covers everything with a single view.
  std::vector<query::BgpQuery> workload = {
      Q("SELECT ?x WHERE { ?x :name ?n . }"),
      Q("SELECT ?x WHERE { ?x :name ?n . ?x a :Song . }"),
      Q("SELECT ?x WHERE { ?x :name ?n . ?x :fromAlbum ?a . }"),
      Q("SELECT ?x WHERE { ?x :name ?n . ?x :artist ?r . }"),
  };
  ViewSelectionOptions options;
  options.max_views = 1;
  auto result = SelectViews(workload, &dict_, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->views.size(), 1u);
  EXPECT_EQ(result->views[0].marginal_benefit, 4u);
  EXPECT_EQ(result->covered, 4u);
  EXPECT_DOUBLE_EQ(result->coverage_rate(), 1.0);
  // The selected view is (equivalent to) the broad name query.
  EXPECT_TRUE(containment::Contains(workload[1], result->views[0].definition,
                                    &dict_));
}

TEST_F(ViewSelectionTest, FrequencyWeighting) {
  // Query A appears 5 times, query B once; disjoint predicates.  With a
  // budget of 1, the selection must favour A.
  std::vector<query::BgpQuery> workload;
  for (int i = 0; i < 5; ++i) workload.push_back(Q("ASK { ?x :hot ?y . }"));
  workload.push_back(Q("ASK { ?x :cold ?y . }"));
  ViewSelectionOptions options;
  options.max_views = 1;
  auto result = SelectViews(workload, &dict_, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->views.size(), 1u);
  EXPECT_EQ(result->views[0].marginal_benefit, 5u);
}

TEST_F(ViewSelectionTest, GreedyTakesComplementarySecondView) {
  std::vector<query::BgpQuery> workload = {
      Q("ASK { ?x :p ?y . }"), Q("ASK { ?x :p ?y . ?x a :T . }"),
      Q("ASK { ?x :q ?y . }"), Q("ASK { ?x :q ?y . ?y :r ?z . }"),
  };
  ViewSelectionOptions options;
  options.max_views = 2;
  auto result = SelectViews(workload, &dict_, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->views.size(), 2u);
  EXPECT_DOUBLE_EQ(result->coverage_rate(), 1.0);
}

TEST_F(ViewSelectionTest, MinMarginalBenefitStopsEarly) {
  std::vector<query::BgpQuery> workload = {
      Q("ASK { ?x :a ?y . }"), Q("ASK { ?x :b ?y . }"),
      Q("ASK { ?x :c ?y . }"),
  };
  ViewSelectionOptions options;
  options.max_views = 0;  // unbounded
  options.min_marginal_benefit = 2;  // every candidate covers only itself
  auto result = SelectViews(workload, &dict_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->views.empty());
}

TEST_F(ViewSelectionTest, WorkloadScaleCoverage) {
  // On a recurring DBpedia-alike workload a handful of views covers a large
  // share — the phenomenon that makes materialisation worthwhile at all.
  rdf::TermDictionary dict;
  const auto workload = workload::GenerateDbpedia(&dict, 2000, 13);
  ViewSelectionOptions options;
  options.max_views = 25;
  auto result = SelectViews(workload, &dict, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->coverage_rate(), 0.2);
  // Marginal benefits are non-increasing (greedy property).
  for (std::size_t i = 1; i < result->views.size(); ++i) {
    EXPECT_LE(result->views[i].marginal_benefit,
              result->views[i - 1].marginal_benefit);
  }
}

}  // namespace
}  // namespace rewriting
}  // namespace rdfc
