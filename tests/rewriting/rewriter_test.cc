#include "rewriting/rewriter.h"

#include <gtest/gtest.h>

#include <set>

#include "../test_util.h"
#include "rdf/turtle_parser.h"
#include "util/rng.h"

namespace rdfc {
namespace rewriting {
namespace {

using rdfc::testing::ParseOrDie;

class RewriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(rdf::ParseTurtle(R"(
      @prefix t: <urn:t:> .
      t:s1 t:name "Masquerade" .
      t:s1 t:fromAlbum t:al1 .
      t:al1 t:name "Phantom" .
      t:al1 t:artist t:ar1 .
      t:s2 t:name "PaintItBlack" .
      t:s2 t:fromAlbum t:al2 .
      t:al2 t:name "Aftermath" .
      t:ar1 t:type t:MusicalArtist .
    )", &dict_, &graph_).ok());
  }

  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }

  static std::set<std::vector<rdf::TermId>> AsSet(
      const std::vector<std::vector<rdf::TermId>>& rows) {
    return {rows.begin(), rows.end()};
  }

  rdf::TermDictionary dict_;
  rdf::Graph graph_;
};

TEST_F(RewriterTest, MaterialiseAlignsColumnsAndRows) {
  const MaterialisedView view = Materialise(
      Q("SELECT ?x ?n WHERE { ?x :name ?n . }"), graph_, dict_);
  ASSERT_EQ(view.columns.size(), 2u);
  EXPECT_EQ(view.rows.size(), 4u);  // s1, s2, al1, al2
}

TEST_F(RewriterTest, SelectCoverageFullAndPartial) {
  const query::BgpQuery q =
      Q("SELECT ?sN WHERE { ?sng :name ?sN . ?sng :fromAlbum ?alb . }");
  const query::BgpQuery w = Q("SELECT ?x ?y WHERE { ?x :name ?y . }");
  containment::VarMapping sigma;
  sigma[dict_.MakeVariable("x")] = dict_.MakeVariable("sng");
  sigma[dict_.MakeVariable("y")] = dict_.MakeVariable("sN");
  const SelectCoverage coverage = ComputeSelectCoverage(q, w, sigma, dict_);
  EXPECT_TRUE(coverage.full());
  EXPECT_EQ(coverage.seed_of.size(), 2u);

  // View projecting only ?x covers ?sng but not the output ?sN.
  const query::BgpQuery w2 = Q("SELECT ?x WHERE { ?x :name ?y . }");
  const SelectCoverage partial = ComputeSelectCoverage(q, w2, sigma, dict_);
  EXPECT_FALSE(partial.full());
  EXPECT_EQ(partial.uncovered, 1u);
}

TEST_F(RewriterTest, AnswersFromViewMatchBaseEvaluation) {
  ViewExecutor executor(&graph_, &dict_);
  ASSERT_TRUE(executor
                  .AddView(Q(R"(SELECT ?x ?y ?z ?w WHERE {
                      ?x :name ?y . ?x :fromAlbum ?z . ?z :name ?w . })"))
                  .ok());
  const query::BgpQuery q = Q(R"(SELECT ?sN ?aN WHERE {
      ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN .
      ?alb :artist ?art . ?art :type :MusicalArtist . })");
  const ExecutionReport report = executor.Answer(q);
  EXPECT_NE(report.strategy, ExecutionReport::Strategy::kBaseEvaluation);
  ASSERT_EQ(report.answers.size(), 1u);
  EXPECT_EQ(report.answers[0][0], dict_.MakeLiteral("\"Masquerade\""));
  EXPECT_EQ(report.answers[0][1], dict_.MakeLiteral("\"Phantom\""));

  // Cross-check against pure base evaluation.
  const auto direct = eval::ProjectedAnswers(q, graph_, dict_);
  EXPECT_EQ(AsSet(report.answers), AsSet(direct));
}

TEST_F(RewriterTest, FallsBackWithoutContainingView) {
  ViewExecutor executor(&graph_, &dict_);
  ASSERT_TRUE(executor.AddView(Q("SELECT ?x WHERE { ?x :artist ?a . }")).ok());
  const query::BgpQuery q = Q("SELECT ?n WHERE { ?s :name ?n . }");
  const ExecutionReport report = executor.Answer(q);
  EXPECT_EQ(report.strategy, ExecutionReport::Strategy::kBaseEvaluation);
  EXPECT_EQ(report.answers.size(), 4u);
}

TEST_F(RewriterTest, PicksCheapestView) {
  ViewExecutor executor(&graph_, &dict_);
  // Both contain the query; the album view has fewer rows.
  auto big = executor.AddView(Q("SELECT ?x ?n WHERE { ?x :name ?n . }"));
  auto small = executor.AddView(
      Q("SELECT ?z ?w WHERE { ?x :fromAlbum ?z . ?z :name ?w . }"));
  ASSERT_TRUE(big.ok() && small.ok());
  const query::BgpQuery q = Q(
      "SELECT ?w WHERE { ?s :fromAlbum ?a . ?a :name ?w . ?a :artist ?r . }");
  const ExecutionReport report = executor.Answer(q);
  EXPECT_EQ(report.view_id, *small);
  EXPECT_LE(report.rows_scanned, executor.view(*small).rows.size());
  EXPECT_EQ(AsSet(report.answers),
            AsSet(eval::ProjectedAnswers(q, graph_, dict_)));
}

TEST_F(RewriterTest, CostRulePrefersBaseForExpensiveViews) {
  // A catch-all view materialises every triple; answering a 5-pattern query
  // through it would seed 8 residual evaluations of 5 patterns each, which
  // the cost rule estimates as worse than one base evaluation.
  ExecutorOptions options;
  options.cost_factor = 1.0;
  ViewExecutor executor(&graph_, &dict_, options);
  ASSERT_TRUE(executor.AddView(Q("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }")).ok());
  const query::BgpQuery q = Q(R"(SELECT ?sN WHERE {
      ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN .
      ?alb :artist ?art . ?art :type :MusicalArtist . })");
  const ExecutionReport report = executor.Answer(q);
  EXPECT_EQ(report.strategy, ExecutionReport::Strategy::kBaseEvaluation);
  // Generous factor flips the decision back to the view — still exact.
  ExecutorOptions generous;
  generous.cost_factor = 1000.0;
  ViewExecutor executor2(&graph_, &dict_, generous);
  ASSERT_TRUE(
      executor2.AddView(Q("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }")).ok());
  const ExecutionReport report2 = executor2.Answer(q);
  EXPECT_NE(report2.strategy, ExecutionReport::Strategy::kBaseEvaluation);
  EXPECT_EQ(AsSet(report.answers), AsSet(report2.answers));
}

TEST_F(RewriterTest, PropertyAnswersAlwaysEqualBaseEvaluation) {
  // Random graphs, random views, random queries: the executor must be
  // indistinguishable from direct evaluation.
  util::Rng rng(2718);
  std::vector<rdf::TermId> nodes, preds;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(dict_.MakeIri("urn:g:n" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    preds.push_back(dict_.MakeIri("urn:g:p" + std::to_string(i)));
  }
  auto random_query = [&](std::size_t max_triples) {
    query::BgpQuery q;
    const std::size_t n = 1 + rng.Uniform(0, max_triples - 1);
    for (std::size_t i = 0; i < n; ++i) {
      auto term = [&](double var_prob) {
        if (rng.Chance(var_prob)) {
          return dict_.MakeVariable("rv" + std::to_string(rng.Uniform(0, 3)));
        }
        return nodes[rng.Uniform(0, nodes.size() - 1)];
      };
      q.AddPattern(term(0.8), preds[rng.Uniform(0, preds.size() - 1)],
                   term(0.7));
    }
    q.set_select_all(true);
    return q;
  };

  for (int trial = 0; trial < 15; ++trial) {
    rdf::Graph graph;
    const std::size_t edges = 4 + rng.Uniform(0, 10);
    for (std::size_t e = 0; e < edges; ++e) {
      graph.Add(nodes[rng.Uniform(0, nodes.size() - 1)],
                preds[rng.Uniform(0, preds.size() - 1)],
                nodes[rng.Uniform(0, nodes.size() - 1)]);
    }
    ViewExecutor executor(&graph, &dict_);
    for (int v = 0; v < 4; ++v) {
      ASSERT_TRUE(executor.AddView(random_query(3)).ok());
    }
    for (int p = 0; p < 10; ++p) {
      const query::BgpQuery q = random_query(4);
      const ExecutionReport report = executor.Answer(q);
      EXPECT_EQ(AsSet(report.answers),
                AsSet(eval::ProjectedAnswers(q, graph, dict_)))
          << q.ToString(dict_);
    }
  }
}

}  // namespace
}  // namespace rewriting
}  // namespace rdfc
