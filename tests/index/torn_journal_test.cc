#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/journal.h"
#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "util/status.h"

// Corruption contract of the write-ahead journal (DESIGN.md "Durability"):
// opening ANY byte prefix of a valid journal, and any single-byte corruption
// of one, must replay a clean prefix of the original batches — never crash,
// never abort, never replay a record that was not appended (over-reporting),
// and never replay a record differently from how it was appended.  Exhausted
// exhaustively: every prefix length and every byte position.

namespace rdfc {
namespace index {
namespace {

constexpr std::uint64_t kBatches = 6;

query::BgpQuery MakeView(rdf::TermDictionary* dict, int tag) {
  query::BgpQuery q;
  q.set_form(query::QueryForm::kAsk);
  const rdf::TermId s = dict->MakeVariable("s" + std::to_string(tag));
  const rdf::TermId o = dict->MakeVariable("o" + std::to_string(tag));
  q.AddPattern(s, dict->MakeIri("urn:wal:p" + std::to_string(tag % 4)), o);
  if (tag % 2 == 0) {
    q.AddPattern(o, dict->MakeIri("urn:wal:q"),
                 dict->MakeIri("urn:wal:c" + std::to_string(tag % 3)));
  }
  return q;
}

std::string TermSig(const rdf::TermDictionary& dict, rdf::TermId id) {
  return std::to_string(static_cast<int>(dict.kind(id))) + ":" +
         std::string(dict.lexical(id));
}

/// Dictionary-independent fingerprint of a batch: sequence, version, and
/// every op down to the lexical triples.  Two batches with equal signatures
/// carry the same logical mutation regardless of which dictionary interned
/// them — exactly the equality replay must preserve.
std::string BatchSig(const JournalBatch& batch,
                     const rdf::TermDictionary& dict) {
  std::string sig = "seq=" + std::to_string(batch.sequence) +
                    " ver=" + std::to_string(batch.version);
  for (const JournalOp& op : batch.ops) {
    sig += op.kind == JournalOp::Kind::kAdd ? " +" : " -";
    sig += std::to_string(op.view_id);
    if (op.kind == JournalOp::Kind::kAdd) {
      for (const rdf::Triple& t : op.view.patterns()) {
        sig += "(" + TermSig(dict, t.s) + "," + TermSig(dict, t.p) + "," +
               TermSig(dict, t.o) + ")";
      }
    }
  }
  return sig;
}

class TornJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "torn_journal_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".wal";
    mutated_path_ = path_ + ".mutated";
    std::remove(path_.c_str());
    std::remove(mutated_path_.c_str());

    rdf::TermDictionary dict;
    auto journal = WriteAheadJournal::Open(Options(path_), &dict, NoReplay());
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    int next_id = 1;
    for (std::uint64_t seq = 1; seq <= kBatches; ++seq) {
      JournalBatch batch;
      batch.sequence = seq;
      batch.version = seq + 10;
      const int adds = 1 + static_cast<int>(seq % 2);
      for (int a = 0; a < adds; ++a) {
        JournalOp op;
        op.kind = JournalOp::Kind::kAdd;
        op.view_id = static_cast<std::uint64_t>(next_id);
        op.view = MakeView(&dict, next_id);
        ++next_id;
        batch.ops.push_back(std::move(op));
      }
      if (seq % 3 == 0) {
        JournalOp op;
        op.kind = JournalOp::Kind::kRemove;
        op.view_id = static_cast<std::uint64_t>(next_id / 2);
        batch.ops.push_back(std::move(op));
      }
      ASSERT_TRUE(journal.value()->Append(batch, dict).ok());
      expected_.push_back(BatchSig(batch, dict));
    }
    journal.value().reset();  // close

    std::ifstream in(path_, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), 24u);  // header + records
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mutated_path_.c_str());
  }

  static JournalOptions Options(const std::string& path) {
    JournalOptions options;
    options.path = path;
    options.fsync = JournalFsync::kOff;  // speed: kernel durability suffices
    return options;
  }

  static WriteAheadJournal::ReplayFn NoReplay() {
    return [](const JournalBatch&) { return util::Status::OK(); };
  }

  void WriteMutated(const std::string& content) {
    std::ofstream out(mutated_path_, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    ASSERT_TRUE(out.good());
  }

  /// Opens `mutated_path_` and returns the replayed batch signatures.  The
  /// open itself must ALWAYS succeed — corruption is recovered, not
  /// reported as an error.
  std::vector<std::string> ReplayMutated(std::uint64_t* truncated_bytes) {
    rdf::TermDictionary dict;
    std::vector<std::string> sigs;
    auto journal = WriteAheadJournal::Open(
        Options(mutated_path_), &dict,
        [&sigs, &dict](const JournalBatch& batch) {
          sigs.push_back(BatchSig(batch, dict));
          return util::Status::OK();
        });
    EXPECT_TRUE(journal.ok()) << journal.status().ToString();
    if (journal.ok() && truncated_bytes != nullptr) {
      *truncated_bytes = journal.value()->stats().truncated_bytes;
    }
    return sigs;
  }

  /// The prefix property: whatever replayed must be exactly the first
  /// sigs.size() appended batches, in order.
  void ExpectCleanPrefix(const std::vector<std::string>& sigs,
                         const std::string& what) {
    ASSERT_LE(sigs.size(), expected_.size()) << what << ": over-reported";
    for (std::size_t i = 0; i < sigs.size(); ++i) {
      ASSERT_EQ(sigs[i], expected_[i]) << what << ": batch " << i << " mutated";
    }
  }

  std::string path_;
  std::string mutated_path_;
  std::string bytes_;
  std::vector<std::string> expected_;
};

TEST_F(TornJournalTest, IntactJournalReplaysEverything) {
  WriteMutated(bytes_);
  std::uint64_t truncated = 0;
  const std::vector<std::string> sigs = ReplayMutated(&truncated);
  EXPECT_EQ(sigs.size(), expected_.size());
  EXPECT_EQ(truncated, 0u);
  ExpectCleanPrefix(sigs, "intact");
}

TEST_F(TornJournalTest, EveryPrefixReplaysCleanPrefix) {
  for (std::size_t len = 0; len <= bytes_.size(); ++len) {
    WriteMutated(bytes_.substr(0, len));
    const std::vector<std::string> sigs = ReplayMutated(nullptr);
    ExpectCleanPrefix(sigs, "prefix len " + std::to_string(len));
    if (HasFatalFailure()) return;
  }
}

TEST_F(TornJournalTest, EverySingleByteFlipReplaysCleanPrefix) {
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    std::string corrupt = bytes_;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    WriteMutated(corrupt);
    const std::vector<std::string> sigs = ReplayMutated(nullptr);
    ExpectCleanPrefix(sigs, "flip at byte " + std::to_string(i));
    if (HasFatalFailure()) return;
  }
}

TEST_F(TornJournalTest, TornTailIsTruncatedAndAppendContinues) {
  // Tear the final record mid-payload: recovery must drop exactly that
  // record, physically truncate the file, and leave the journal appendable
  // at the next sequence.
  WriteMutated(bytes_.substr(0, bytes_.size() - 3));
  rdf::TermDictionary dict;
  std::size_t replayed = 0;
  auto journal = WriteAheadJournal::Open(
      Options(mutated_path_), &dict,
      [&replayed](const JournalBatch&) {
        ++replayed;
        return util::Status::OK();
      });
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(replayed, kBatches - 1);
  EXPECT_GT(journal.value()->stats().truncated_bytes, 0u);
  EXPECT_EQ(journal.value()->next_sequence(), kBatches);
  EXPECT_FALSE(journal.value()->stats().degraded);

  JournalBatch batch;
  batch.sequence = journal.value()->next_sequence();
  batch.version = 99;
  JournalOp op;
  op.kind = JournalOp::Kind::kAdd;
  op.view_id = 1000;
  op.view = MakeView(&dict, 1000);
  batch.ops.push_back(std::move(op));
  ASSERT_TRUE(journal.value()->Append(batch, dict).ok());
  journal.value().reset();

  // A fresh open sees the surviving prefix plus the new record, all intact.
  rdf::TermDictionary dict2;
  std::vector<std::uint64_t> sequences;
  auto reopened = WriteAheadJournal::Open(
      Options(mutated_path_), &dict2,
      [&sequences](const JournalBatch& b) {
        sequences.push_back(b.sequence);
        return util::Status::OK();
      });
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(sequences.size(), kBatches);
  EXPECT_EQ(sequences.back(), kBatches);
  EXPECT_EQ(reopened.value()->stats().truncated_bytes, 0u);
}

TEST_F(TornJournalTest, TruncateKeepsSequencesMonotone) {
  // After Truncate (checkpoint committed) the file holds only a header, but
  // the next append must continue the old sequence, and a reopen must agree.
  WriteMutated(bytes_);
  rdf::TermDictionary dict;
  auto journal =
      WriteAheadJournal::Open(Options(mutated_path_), &dict, NoReplay());
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal.value()->Truncate().ok());
  EXPECT_EQ(journal.value()->next_sequence(), kBatches + 1);
  JournalBatch batch;
  batch.sequence = kBatches + 1;
  batch.version = 100;
  ASSERT_TRUE(journal.value()->Append(batch, dict).ok());
  journal.value().reset();

  rdf::TermDictionary dict2;
  std::vector<std::uint64_t> sequences;
  auto reopened = WriteAheadJournal::Open(
      Options(mutated_path_), &dict2,
      [&sequences](const JournalBatch& b) {
        sequences.push_back(b.sequence);
        return util::Status::OK();
      });
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(sequences.size(), 1u);
  EXPECT_EQ(sequences[0], kBatches + 1);
  EXPECT_EQ(reopened.value()->stats().last_sequence, kBatches + 1);
}

}  // namespace
}  // namespace index
}  // namespace rdfc
