#include "index/validate.h"

#include <gtest/gtest.h>

#include <functional>

#include "index/mv_index.h"
#include "sparql/parser.h"

namespace rdfc {
namespace index {
namespace {

using query::Token;

/// Builders for hand-made (and hand-corrupted) radix trees.  The struct is
/// POD-open on purpose — these tests construct exactly the corruptions the
/// validator exists to catch.
RadixNode::Edge MakeEdge(std::vector<Token> label,
                         std::unique_ptr<RadixNode> child) {
  RadixNode::Edge edge;
  edge.label = std::move(label);
  edge.child = std::move(child);
  return edge;
}

class RadixValidateTest : public ::testing::Test {
 protected:
  Token Anchor() { return Token::Anchor(dict_.CanonicalVariable(1)); }
  Token Pair(const char* pred) {
    return Token::Pair(dict_.MakeIri(pred), dict_.CanonicalVariable(2), false);
  }

  rdf::TermDictionary dict_;
};

TEST_F(RadixValidateTest, AcceptsEmptyAndSimpleTrees) {
  RadixNode root;
  EXPECT_TRUE(ValidateRadixTree(root).ok());

  auto leaf = std::make_unique<RadixNode>();
  leaf->stored_ids.push_back(0);
  const std::vector<Token> label = {Anchor(), Token::Open(), Pair("urn:p"),
                                    Token::Close()};
  root.edges.emplace(label.front(), MakeEdge(label, std::move(leaf)));
  EXPECT_TRUE(ValidateRadixTree(root, /*num_entries=*/1).ok());
}

TEST_F(RadixValidateTest, RejectsEmptyEdgeLabel) {
  RadixNode root;
  auto leaf = std::make_unique<RadixNode>();
  leaf->stored_ids.push_back(0);
  root.edges.emplace(Anchor(), MakeEdge({}, std::move(leaf)));
  const util::Status st = ValidateRadixTree(root, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("empty edge label"), std::string::npos);
}

TEST_F(RadixValidateTest, RejectsBadChildKeying) {
  RadixNode root;
  auto leaf = std::make_unique<RadixNode>();
  leaf->stored_ids.push_back(0);
  // Edge keyed by a token that is not its label's first token.
  root.edges.emplace(Pair("urn:wrong"),
                     MakeEdge({Anchor(), Token::Open(), Pair("urn:p"),
                               Token::Close()},
                              std::move(leaf)));
  const util::Status st = ValidateRadixTree(root, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not its label's first token"),
            std::string::npos);
}

TEST_F(RadixValidateTest, RejectsNonQueryUnaryChain) {
  // root --[anchor]--> mid(non-query, single child) --[pair]--> leaf(query):
  // mid should have been merged into its parent edge.
  auto leaf = std::make_unique<RadixNode>();
  leaf->stored_ids.push_back(0);
  auto mid = std::make_unique<RadixNode>();
  mid->edges.emplace(Pair("urn:p"),
                     MakeEdge({Pair("urn:p"), Token::Close()}, std::move(leaf)));
  RadixNode root;
  root.edges.emplace(Anchor(),
                     MakeEdge({Anchor(), Token::Open()}, std::move(mid)));
  const util::Status st = ValidateRadixTree(root, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unary vertex"), std::string::npos);
}

TEST_F(RadixValidateTest, RejectsNonQueryLeaf) {
  RadixNode root;
  root.edges.emplace(Anchor(), MakeEdge({Anchor()},
                                        std::make_unique<RadixNode>()));
  const util::Status st = ValidateRadixTree(root, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("non-query leaf"), std::string::npos);
}

TEST_F(RadixValidateTest, RejectsDanglingStoredId) {
  RadixNode root;
  auto leaf = std::make_unique<RadixNode>();
  leaf->stored_ids.push_back(7);  // only entries [0, 1) exist
  root.edges.emplace(Anchor(), MakeEdge({Anchor()}, std::move(leaf)));
  const util::Status st = ValidateRadixTree(root, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("dangling terminal bit"), std::string::npos);
}

TEST_F(RadixValidateTest, RejectsDoubledStoredId) {
  RadixNode root;
  root.stored_ids.push_back(0);
  auto leaf = std::make_unique<RadixNode>();
  leaf->stored_ids.push_back(0);
  root.edges.emplace(Anchor(), MakeEdge({Anchor()}, std::move(leaf)));
  const util::Status st = ValidateRadixTree(root, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("more than one vertex"), std::string::npos);
}

TEST_F(RadixValidateTest, RejectsNullChild) {
  RadixNode root;
  root.edges.emplace(Anchor(), MakeEdge({Anchor()}, nullptr));
  const util::Status st = ValidateRadixTree(root, 1);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("null child"), std::string::npos);
}

/// Whole-index validation: build a healthy index through the public API,
/// then corrupt the tree in place (white-box, via const_cast) and check the
/// cross-layer rules fire.
class MvIndexValidateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    index_ = std::make_unique<MvIndex>(&dict_);
    Insert("ASK { ?x <urn:p> ?y }");
    Insert("ASK { ?x <urn:p> ?y . ?y <urn:q> ?z }");
    Insert("ASK { ?x <urn:r> ?y }");
    Insert("ASK { ?x ?vp ?y }");  // skeleton-free (side list)
    ASSERT_TRUE(ValidateMvIndex(*index_).ok());
  }

  void Insert(const std::string& text) {
    auto q = sparql::ParseQuery(text, &dict_);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    auto outcome = index_->Insert(*q);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }

  RadixNode& MutableRoot() {
    return const_cast<RadixNode&>(index_->root());
  }

  rdf::TermDictionary dict_;
  std::unique_ptr<MvIndex> index_;
};

TEST_F(MvIndexValidateTest, HealthyIndexStaysValidUnderChurn) {
  ASSERT_TRUE(index_->Remove(1).ok());
  EXPECT_TRUE(ValidateMvIndex(*index_).ok());
  Insert("ASK { ?x <urn:p> ?y . ?y <urn:q> <urn:c> }");
  EXPECT_TRUE(ValidateMvIndex(*index_).ok());
}

TEST_F(MvIndexValidateTest, DetectsDetachedEntry) {
  // Drop a terminal bit: some live entry's path now ends at a vertex that
  // does not store it.
  std::function<bool(RadixNode*)> drop_first_terminal =
      [&](RadixNode* node) -> bool {
    if (node->is_query()) {
      node->stored_ids.clear();
      return true;
    }
    for (auto& [first, edge] : node->edges) {
      (void)first;
      if (drop_first_terminal(edge.child.get())) return true;
    }
    return false;
  };
  ASSERT_TRUE(drop_first_terminal(&MutableRoot()));
  const util::Status st = ValidateMvIndex(*index_);
  ASSERT_FALSE(st.ok());
}

TEST_F(MvIndexValidateTest, DetectsEntryTokenGrammarCorruption) {
  // Corrupt a stored entry's own token stream (not the tree): the M3
  // grammar/round-trip rule fires even though the tree is untouched.
  auto& stored = const_cast<containment::PreparedStored&>(index_->entry(0));
  ASSERT_FALSE(stored.tokens.empty());
  for (query::Token& tok : stored.tokens) {
    if (tok.type == query::TokenType::kOpen) {
      tok.type = query::TokenType::kClose;
    }
  }
  const util::Status st = ValidateMvIndex(*index_);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("serialisation token"), std::string::npos);
}

TEST_F(MvIndexValidateTest, DetectsLabelCorruption) {
  // Append a stray token to an edge label: prefix soundness breaks (and with
  // it, every probe that walks through this edge).
  auto& edges = MutableRoot().edges;
  ASSERT_FALSE(edges.empty());
  edges.begin()->second.label.push_back(Token::Close());
  const util::Status st = ValidateMvIndex(*index_);
  ASSERT_FALSE(st.ok());
}

TEST_F(MvIndexValidateTest, DetectsGrammarCorruptionInLabels) {
  // Rewrite an edge label into an ungrammatical stream (close with no open):
  // the entry's serialisation no longer matches the edge labels along its
  // path, so prefix soundness (M2) reports the divergence.
  auto& edges = MutableRoot().edges;
  ASSERT_FALSE(edges.empty());
  std::vector<Token>& label = edges.begin()->second.label;
  for (Token& tok : label) {
    if (tok.type == query::TokenType::kOpen) tok.type = query::TokenType::kClose;
  }
  const util::Status st = ValidateMvIndex(*index_);
  ASSERT_FALSE(st.ok());
}

TEST_F(MvIndexValidateTest, DetectsCounterDrift) {
  // Graft a bogus branch vertex under the root: num_nodes() recount diverges.
  auto extra_leaf = std::make_unique<RadixNode>();
  extra_leaf->stored_ids.push_back(0);  // also doubles entry 0 elsewhere
  MutableRoot().edges.emplace(
      Token::Pair(dict_.MakeIri("urn:bogus"), dict_.CanonicalVariable(1),
                  false),
      RadixNode::Edge{{Token::Pair(dict_.MakeIri("urn:bogus"),
                                   dict_.CanonicalVariable(1), false)},
                      std::move(extra_leaf)});
  const util::Status st = ValidateMvIndex(*index_);
  ASSERT_FALSE(st.ok());
}

TEST_F(MvIndexValidateTest, FuzzStyleChurnKeepsInvariants) {
  // A mixed insert/remove exercise mirroring the rdfc_fuzz wiring, with the
  // validator run after every mutation.
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 8; ++i) {
    auto q = sparql::ParseQuery(
        "ASK { ?x <urn:p" + std::to_string(i % 3) + "> ?y . ?y <urn:q" +
            std::to_string(i % 2) + "> ?z }",
        &dict_);
    ASSERT_TRUE(q.ok());
    auto outcome = index_->Insert(*q, i);
    ASSERT_TRUE(outcome.ok());
    ids.push_back(outcome->stored_id);
    ASSERT_TRUE(ValidateMvIndex(*index_).ok());
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    if (!index_->alive(ids[i])) continue;
    ASSERT_TRUE(index_->Remove(ids[i]).ok());
    const util::Status st = ValidateMvIndex(*index_);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
}

}  // namespace
}  // namespace index
}  // namespace rdfc
