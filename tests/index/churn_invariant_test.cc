// Randomized insert/remove churn with full structural invariant checking:
// after every batch of operations the Radix tree must (a) be a proper tree,
// (b) contain exactly the serialised path of every live entry terminating at
// a vertex holding its id, (c) hold no empty leaves or redundant unary
// chains, and (d) answer probes identically to the pairwise scan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <unordered_set>

#include "index/mv_index.h"
#include "index/persistence.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace rdfc {
namespace index {
namespace {

/// Walks `tokens` from the root; returns the terminal vertex or nullptr.
const RadixNode* WalkPath(const RadixNode& root,
                          const std::vector<query::Token>& tokens) {
  const RadixNode* node = &root;
  std::size_t i = 0;
  while (i < tokens.size()) {
    auto it = node->edges.find(tokens[i]);
    if (it == node->edges.end()) return nullptr;
    const auto& label = it->second.label;
    for (std::size_t k = 0; k < label.size(); ++k) {
      if (i + k >= tokens.size() || !(label[k] == tokens[i + k])) {
        return nullptr;
      }
    }
    i += label.size();
    node = it->second.child.get();
  }
  return node;
}

struct TreeCheck {
  std::size_t nodes = 0;
  std::set<std::uint32_t> ids_in_tree;
  bool structure_ok = true;
};

void CheckTree(const RadixNode& node, bool is_root, TreeCheck* out) {
  ++out->nodes;
  for (std::uint32_t id : node.stored_ids) out->ids_in_tree.insert(id);
  // Invariant: no empty leaf, no non-query unary chain (except the root).
  if (!is_root && !node.is_query()) {
    if (node.edges.empty() || node.edges.size() == 1) {
      out->structure_ok = false;
    }
  }
  for (const auto& [first, edge] : node.edges) {
    // Invariant: the map key is the label's first token, labels non-empty.
    if (edge.label.empty() || !(first == edge.label.front())) {
      out->structure_ok = false;
    }
    CheckTree(*edge.child, false, out);
  }
}

TEST(ChurnInvariantTest, RandomInsertRemoveKeepsAllInvariants) {
  rdf::TermDictionary dict;
  const auto pool = workload::GenerateDbpedia(&dict, 500, 71);
  MvIndex index(&dict);
  util::Rng rng(72);
  std::vector<std::uint32_t> live_ids;

  for (int round = 0; round < 12; ++round) {
    // Mixed batch: ~30 inserts, ~15 removals.
    for (int i = 0; i < 30; ++i) {
      auto outcome =
          index.Insert(pool[rng.Uniform(0, pool.size() - 1)], round);
      ASSERT_TRUE(outcome.ok());
      if (outcome->was_new) live_ids.push_back(outcome->stored_id);
    }
    for (int i = 0; i < 15 && !live_ids.empty(); ++i) {
      const std::size_t pick = rng.Uniform(0, live_ids.size() - 1);
      ASSERT_TRUE(index.Remove(live_ids[pick]).ok());
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    // (a)+(c): structural invariants and node accounting.
    TreeCheck check;
    CheckTree(index.root(), true, &check);
    EXPECT_TRUE(check.structure_ok) << "round " << round;
    EXPECT_EQ(check.nodes, index.num_nodes()) << "round " << round;
    const RadixStats stats = index.ComputeStats();
    EXPECT_EQ(stats.num_edges, stats.num_nodes - 1);

    // (b): every live entry's serialised path terminates at a vertex that
    // stores its id; dead entries appear nowhere.
    std::unordered_set<std::uint32_t> live_set(live_ids.begin(),
                                               live_ids.end());
    for (std::uint32_t id = 0; id < index.num_entries(); ++id) {
      const auto& tokens = index.entry(id).tokens;
      if (tokens.empty()) continue;  // skeleton-free side list
      if (index.alive(id)) {
        const RadixNode* node = WalkPath(index.root(), tokens);
        ASSERT_NE(node, nullptr) << "round " << round << " id " << id;
        EXPECT_NE(std::find(node->stored_ids.begin(), node->stored_ids.end(),
                            id),
                  node->stored_ids.end());
      } else {
        EXPECT_EQ(check.ids_in_tree.count(id), 0u);
      }
    }

    // (d): probe equivalence on a few queries.
    for (int p = 0; p < 5; ++p) {
      const auto& probe = pool[rng.Uniform(0, pool.size() - 1)];
      std::set<std::uint32_t> walk_ids, scan_ids;
      for (const auto& m : index.FindContaining(probe).contained) {
        walk_ids.insert(m.stored_id);
      }
      for (const auto& m : index.ScanContaining(probe).contained) {
        scan_ids.insert(m.stored_id);
      }
      EXPECT_EQ(walk_ids, scan_ids) << "round " << round;
    }
  }
}

TEST(ChurnInvariantTest, PersistenceSurvivesCorruptionFuzz) {
  // Randomly corrupt single bytes of a valid snapshot: loading must either
  // fail cleanly or produce an index whose probes do not crash.  (The
  // checksum makes silent acceptance of a corrupted payload practically
  // impossible; the test asserts no crash and no false "ok" with a broken
  // dictionary read.)
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  const auto pool = workload::GenerateDbpedia(&dict, 120, 73);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ASSERT_TRUE(index.Insert(pool[i], i).ok());
  }
  const std::string path = "churn_corruption.rdfcidx";
  ASSERT_TRUE(SaveIndex(index, path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  util::Rng rng(74);
  std::size_t clean_failures = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::string mutated = bytes;
    mutated[rng.Uniform(0, mutated.size() - 1)] ^=
        static_cast<char>(1 + rng.Uniform(0, 254));
    {
      std::ofstream out(path, std::ios::binary);
      out << mutated;
    }
    rdf::TermDictionary dict2;
    auto loaded = LoadIndex(path, &dict2);
    if (!loaded.ok()) {
      ++clean_failures;
      continue;
    }
    // A flip the checksum cannot see (e.g. in the trailing checksum field
    // making it match by chance is ~2^-64) — if load succeeded, the flip
    // must have been semantically neutral; probing must still work.
    (void)(*loaded)->FindContaining(pool[0]);
  }
  EXPECT_GT(clean_failures, 30u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace index
}  // namespace rdfc
