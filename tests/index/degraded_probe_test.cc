#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "index/frozen_index.h"
#include "index/mv_index.h"
#include "util/budget.h"
#include "workload/workload.h"

// Degradation soundness (DESIGN.md "Resilience"): when a ProbeBudget expires
// mid-probe the result may under-report containment, but never over-report.
// Every entry in `contained` carries a verified certificate; cut-short work
// surfaces as filter_complete=false or as ids parked in `unverified`.

namespace rdfc {
namespace index {
namespace {

using rdfc::testing::ParseOrDie;

std::vector<std::uint32_t> ContainedIds(const ProbeResult& r) {
  std::vector<std::uint32_t> ids;
  ids.reserve(r.contained.size());
  for (const auto& m : r.contained) ids.push_back(m.stored_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool IsSubset(const std::vector<std::uint32_t>& sub,
              const std::vector<std::uint32_t>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

class DegradedProbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The adversarial pair: filter passes (the merged witness class carries
    // both tail predicates) but no homomorphism exists, and verification has
    // to explore ~k^(m+1) matcher states to prove it.
    adversarial_ = workload::MakeAdversarialCase(&dict_, /*k=*/6, /*m=*/3);
    ASSERT_TRUE(index_.Insert(adversarial_.view, 1000).ok());
    // Honest residents so degraded probes have real answers to under-report.
    const char* views[] = {
        "ASK { ?x :p ?y . }",
        "ASK { ?x :p ?y . ?y :q ?z . }",
        "ASK { ?x ?v ?y . }",
        "ASK { ?a :r ?b . }",
    };
    for (std::size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(index_.Insert(ParseOrDie(views[i], &dict_), i).ok());
    }
    probe_ = ParseOrDie("ASK { ?s :p ?t . ?t :q ?u . ?s :r ?w . }", &dict_);
  }

  rdf::TermDictionary dict_;
  MvIndex index_{&dict_};
  workload::AdversarialCase adversarial_;
  query::BgpQuery probe_;
};

TEST_F(DegradedProbeTest, TightBudgetUnderReportsButNeverInvents) {
  // Ground truth: no budget, full verification.
  const ProbeResult truth = index_.FindContaining(probe_);
  ASSERT_FALSE(truth.degraded());
  const std::vector<std::uint32_t> truth_ids = ContainedIds(truth);
  // Filter survivors (verify off) over-approximate the truth; any degraded
  // answer must stay inside BOTH sets.
  ProbeOptions filter_only;
  filter_only.verify = false;
  std::vector<std::uint32_t> filter_ids =
      ContainedIds(index_.FindContaining(probe_, filter_only));

  // Sweep step caps from absurdly tight to generous; soundness must hold at
  // every point on the curve.
  for (std::size_t cap : {1u, 4u, 16u, 64u, 256u, 4096u, 1u << 20}) {
    util::ProbeBudget budget;
    budget.set_max_steps(cap);
    ProbeOptions options;
    options.budget = &budget;
    const ProbeResult got = index_.FindContaining(probe_, options);
    const std::vector<std::uint32_t> got_ids = ContainedIds(got);
    EXPECT_TRUE(IsSubset(got_ids, truth_ids)) << "cap=" << cap;
    EXPECT_TRUE(IsSubset(got_ids, filter_ids)) << "cap=" << cap;
    // `unverified` never overlaps `contained`.
    for (std::uint32_t id : got.unverified) {
      EXPECT_FALSE(std::binary_search(got_ids.begin(), got_ids.end(), id))
          << "cap=" << cap;
    }
    if (!got.degraded()) {
      // A budget that never tripped must reproduce the exact truth.
      EXPECT_EQ(got_ids, truth_ids) << "cap=" << cap;
    }
  }
}

TEST_F(DegradedProbeTest, AdversarialProbeDegradesInsteadOfHanging) {
  // The probe side of the adversarial pair against its designed-for view:
  // the filter passes but verification blows up combinatorially.  A small
  // step budget must cut it short and park the view in `unverified` (or drop
  // it entirely) — never report it contained, never run unbounded.
  const ProbeResult truth = index_.FindContaining(adversarial_.probe);
  ASSERT_FALSE(truth.degraded());
  const std::vector<std::uint32_t> truth_ids = ContainedIds(truth);

  util::ProbeBudget budget;
  budget.set_max_steps(64);
  ProbeOptions options;
  options.budget = &budget;
  const ProbeResult got = index_.FindContaining(adversarial_.probe, options);
  EXPECT_TRUE(got.degraded());
  EXPECT_TRUE(IsSubset(ContainedIds(got), truth_ids));
}

TEST_F(DegradedProbeTest, PreExpiredBudgetYieldsEmptySoundResult) {
  util::ProbeBudget budget;
  budget.Expire();
  ProbeOptions options;
  options.budget = &budget;
  const ProbeResult got = index_.FindContaining(probe_, options);
  EXPECT_TRUE(got.degraded());
  EXPECT_FALSE(got.filter_complete);
  // Whatever survived (if anything) is still certified.
  const std::vector<std::uint32_t> truth_ids =
      ContainedIds(index_.FindContaining(probe_));
  EXPECT_TRUE(IsSubset(ContainedIds(got), truth_ids));
}

TEST_F(DegradedProbeTest, FrozenWalkDegradesAsSoundly) {
  const FrozenMvIndex frozen(index_);
  const std::vector<std::uint32_t> truth_ids =
      ContainedIds(frozen.FindContaining(probe_));

  for (std::size_t cap : {1u, 16u, 256u, 1u << 20}) {
    util::ProbeBudget budget;
    budget.set_max_steps(cap);
    ProbeOptions options;
    options.budget = &budget;
    const ProbeResult got = frozen.FindContaining(probe_, options);
    const std::vector<std::uint32_t> got_ids = ContainedIds(got);
    EXPECT_TRUE(IsSubset(got_ids, truth_ids)) << "cap=" << cap;
    if (!got.degraded()) {
      EXPECT_EQ(got_ids, truth_ids) << "cap=" << cap;
    }
  }

  // Pre-expired budget on the frozen walk, same contract.
  util::ProbeBudget expired;
  expired.Expire();
  ProbeOptions options;
  options.budget = &expired;
  const ProbeResult got = frozen.FindContaining(probe_, options);
  EXPECT_TRUE(got.degraded());
  EXPECT_TRUE(IsSubset(ContainedIds(got), truth_ids));
}

TEST_F(DegradedProbeTest, GenerousBudgetMatchesNoBudget) {
  util::ProbeBudget budget = util::ProbeBudget::AfterMicros(60'000'000.0);
  ProbeOptions options;
  options.budget = &budget;
  const ProbeResult got = index_.FindContaining(probe_, options);
  EXPECT_FALSE(got.degraded());
  EXPECT_TRUE(got.filter_complete);
  EXPECT_TRUE(got.unverified.empty());
  EXPECT_EQ(ContainedIds(got), ContainedIds(index_.FindContaining(probe_)));
}

}  // namespace
}  // namespace index
}  // namespace rdfc
