#include "index/persistence.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "../test_util.h"
#include "workload/workload.h"

namespace rdfc {
namespace index {
namespace {

using rdfc::testing::ParseOrDie;

class PersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_ = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      std::string(".rdfcidx");
};

TEST_F(PersistenceTest, RoundTripSmallIndex) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  const char* views[] = {
      "ASK { ?x :p ?y . }",
      "ASK { ?x :p ?y . ?y :q :c . }",
      "ASK { ?x ?v ?y . }",
      "ASK { ?a :p ?b . ?c :q ?d . }",
      R"(ASK { ?x :name "lit"@en . })",
  };
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(index.Insert(ParseOrDie(views[i], &dict), i * 10).ok());
  }
  ASSERT_TRUE(SaveIndex(index, path_).ok());

  rdf::TermDictionary dict2;
  auto loaded = LoadIndex(path_, &dict2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_entries(), index.num_entries());
  EXPECT_EQ((*loaded)->num_nodes(), index.num_nodes());

  // Probes agree (by count and by external id sets).
  const query::BgpQuery probe1 =
      ParseOrDie("ASK { ?s :p ?t . ?t :q :c . ?s :r ?u . }", &dict);
  const query::BgpQuery probe2 =
      ParseOrDie("ASK { ?s :p ?t . ?t :q :c . ?s :r ?u . }", &dict2);
  const auto before = index.FindContaining(probe1);
  const auto after = (*loaded)->FindContaining(probe2);
  ASSERT_EQ(before.contained.size(), after.contained.size());
  std::multiset<std::uint64_t> ext_before, ext_after;
  for (const auto& m : before.contained) {
    for (auto e : index.external_ids(m.stored_id)) ext_before.insert(e);
  }
  for (const auto& m : after.contained) {
    for (auto e : (*loaded)->external_ids(m.stored_id)) ext_after.insert(e);
  }
  EXPECT_EQ(ext_before, ext_after);
}

TEST_F(PersistenceTest, RemovedEntriesAreNotPersisted) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  auto a = index.Insert(ParseOrDie("ASK { ?x :p ?y . }", &dict), 1);
  auto b = index.Insert(ParseOrDie("ASK { ?x :q ?y . }", &dict), 2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(index.Remove(a->stored_id).ok());
  ASSERT_TRUE(SaveIndex(index, path_).ok());

  rdf::TermDictionary dict2;
  auto loaded = LoadIndex(path_, &dict2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_live_entries(), 1u);
  EXPECT_TRUE((*loaded)
                  ->FindContaining(ParseOrDie("ASK { ?s :p ?t . }", &dict2))
                  .contained.empty());
  EXPECT_EQ((*loaded)
                ->FindContaining(ParseOrDie("ASK { ?s :q ?t . }", &dict2))
                .contained.size(),
            1u);
}

TEST_F(PersistenceTest, RoundTripWorkloadSlice) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  const auto queries = workload::GenerateDbpedia(&dict, 2000, 5);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(index.Insert(queries[i], i).ok());
  }
  ASSERT_TRUE(SaveIndex(index, path_).ok());

  rdf::TermDictionary dict2;
  auto loaded = LoadIndex(path_, &dict2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_live_entries(), index.num_live_entries());
  // Deterministic rebuild: identical tree shape.
  const RadixStats before = index.ComputeStats();
  const RadixStats after = (*loaded)->ComputeStats();
  EXPECT_EQ(before.num_nodes, after.num_nodes);
  EXPECT_EQ(before.num_edges, after.num_edges);
  EXPECT_EQ(before.total_label_tokens, after.total_label_tokens);

  // Same probe verdicts on a workload sample (regenerate against dict2).
  const auto probes = workload::GenerateDbpedia(&dict2, 50, 6);
  const auto probes1 = workload::GenerateDbpedia(&dict, 50, 6);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(index.FindContaining(probes1[i]).contained.size(),
              (*loaded)->FindContaining(probes[i]).contained.size())
        << i;
  }
}

TEST_F(PersistenceTest, LoadRejectsCorruption) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  ASSERT_TRUE(index.Insert(ParseOrDie("ASK { ?x :p ?y . }", &dict), 0).ok());
  ASSERT_TRUE(SaveIndex(index, path_).ok());

  // Flip one payload byte.
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);
    char c = 0;
    f.read(&c, 1);
    f.seekp(24);
    c = static_cast<char>(c ^ 0x5A);
    f.write(&c, 1);
  }
  rdf::TermDictionary dict2;
  auto loaded = LoadIndex(path_, &dict2);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(PersistenceTest, LoadRejectsBadMagicAndMissingFile) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "definitely not an index";
  }
  rdf::TermDictionary dict;
  EXPECT_FALSE(LoadIndex(path_, &dict).ok());
  EXPECT_FALSE(LoadIndex("/nonexistent/dir/idx", &dict).ok());
}

}  // namespace
}  // namespace index
}  // namespace rdfc
