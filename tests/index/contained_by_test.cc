#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "cache/semantic_cache.h"
#include "index/mv_index.h"
#include "rdf/turtle_parser.h"

namespace rdfc {
namespace index {
namespace {

using rdfc::testing::ParseOrDie;

class ContainedByTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  rdf::TermDictionary dict_;
};

TEST_F(ContainedByTest, FindsSubsumedEntries) {
  MvIndex index(&dict_);
  auto narrow =
      index.Insert(Q("ASK { ?x :p ?y . ?x a :T . }"), 0);  // ⊑ broad
  auto other = index.Insert(Q("ASK { ?x :q ?y . }"), 1);
  auto same = index.Insert(Q("ASK { ?a :p ?b . }"), 2);    // ≡ broad
  ASSERT_TRUE(narrow.ok() && other.ok() && same.ok());

  const auto subsumed = index.FindContainedBy(Q("ASK { ?s :p ?o . }"));
  EXPECT_EQ(subsumed.size(), 2u);
  EXPECT_NE(std::find(subsumed.begin(), subsumed.end(), narrow->stored_id),
            subsumed.end());
  EXPECT_NE(std::find(subsumed.begin(), subsumed.end(), same->stored_id),
            subsumed.end());
}

TEST_F(ContainedByTest, DualOfFindContaining) {
  // W ⊑ Q found by FindContainedBy(Q) iff FindContaining(W) reports Q when
  // roles are swapped.  Check on a small family.
  const char* texts[] = {
      "ASK { ?x :p ?y . }",
      "ASK { ?x :p ?y . ?y :q ?z . }",
      "ASK { ?x :p :c . }",
      "ASK { ?x :p ?y . ?x :p ?z . }",
  };
  for (const char* probe_text : texts) {
    MvIndex forward(&dict_);
    ASSERT_TRUE(forward.Insert(Q(probe_text), 0).ok());
    for (const char* entry_text : texts) {
      MvIndex reverse(&dict_);
      ASSERT_TRUE(reverse.Insert(Q(entry_text), 0).ok());
      const bool via_contained_by =
          !reverse.FindContainedBy(Q(probe_text)).empty();
      const bool via_containing =
          !forward.FindContaining(Q(entry_text)).contained.empty();
      EXPECT_EQ(via_contained_by, via_containing)
          << "probe=" << probe_text << " entry=" << entry_text;
    }
  }
}

TEST_F(ContainedByTest, SkipsDeadEntries) {
  MvIndex index(&dict_);
  auto id = index.Insert(Q("ASK { ?x :p ?y . ?x a :T . }"), 0);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(index.Remove(id->stored_id).ok());
  EXPECT_TRUE(index.FindContainedBy(Q("ASK { ?s :p ?o . }")).empty());
}

TEST_F(ContainedByTest, CacheSubsumptionEviction) {
  rdf::TermDictionary dict;
  rdf::Graph graph;
  ASSERT_TRUE(rdf::ParseTurtle(R"(
    @prefix t: <urn:t:> .
    t:a t:p t:b . t:a t:type t:T .
    t:c t:p t:d .
  )", &dict, &graph).ok());
  cache::CacheOptions options;
  options.evict_subsumed_on_admit = true;
  cache::SemanticCache cache(&graph, &dict, options);

  // Narrow query cached first.
  cache.Answer(ParseOrDie("SELECT ?x WHERE { ?x :p ?y . ?x :type :T . }",
                          &dict));
  EXPECT_EQ(cache.num_entries(), 1u);
  // Incomparable query (constant subject, no :p pattern): coexists.
  cache.Answer(ParseOrDie("SELECT ?t WHERE { <urn:t:a> :type ?t . }", &dict));
  EXPECT_EQ(cache.num_entries(), 2u);
  // Broad query subsumes the first entry: it is evicted on admission.
  cache.Answer(ParseOrDie("SELECT ?x ?y WHERE { ?x :p ?y . }", &dict));
  EXPECT_EQ(cache.num_entries(), 2u);
  EXPECT_GE(cache.stats().evictions, 1u);
  // The narrow query now hits via the broad entry, still exact.
  const auto narrow = ParseOrDie(
      "SELECT ?x WHERE { ?x :p ?y . ?x :type :T . }", &dict);
  const auto report = cache.Answer(narrow);
  EXPECT_NE(report.strategy,
            rewriting::ExecutionReport::Strategy::kBaseEvaluation);
  const auto direct = rewriting::AnswerFromGraph(narrow, graph, dict);
  EXPECT_EQ(report.answers, direct.answers);
}

}  // namespace
}  // namespace index
}  // namespace rdfc
