#include "index/stats.h"

#include <gtest/gtest.h>

#include <numeric>

#include "../test_util.h"
#include "index/dot_export.h"
#include "workload/workload.h"

namespace rdfc {
namespace index {
namespace {

using rdfc::testing::ParseOrDie;

TEST(DetailedStatsTest, EmptyIndex) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  const DetailedStats stats = ComputeDetailedStats(index);
  EXPECT_EQ(stats.basic.num_nodes, 1u);
  ASSERT_EQ(stats.nodes_per_depth.size(), 1u);
  EXPECT_EQ(stats.nodes_per_depth[0], 1u);
  EXPECT_EQ(stats.total_serialised_tokens, 0u);
  EXPECT_DOUBLE_EQ(stats.compression_ratio(), 1.0);
}

TEST(DetailedStatsTest, SharingGivesCompressionAboveOne) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  // Ten queries sharing a long two-hop prefix.
  for (int i = 0; i < 10; ++i) {
    const std::string text =
        "ASK { ?x :common ?y . ?y :alsoCommon ?z . ?z :leaf" +
        std::to_string(i) + " ?w . }";
    ASSERT_TRUE(index.Insert(ParseOrDie(text, &dict), i).ok());
  }
  const DetailedStats stats = ComputeDetailedStats(index);
  EXPECT_GT(stats.compression_ratio(), 1.5);
  // Node-per-depth histogram accounts for every vertex.
  EXPECT_EQ(std::accumulate(stats.nodes_per_depth.begin(),
                            stats.nodes_per_depth.end(), std::size_t{0}),
            stats.basic.num_nodes);
  // Fan-out histogram too.
  EXPECT_EQ(std::accumulate(stats.fanout_histogram.begin(),
                            stats.fanout_histogram.end(), std::size_t{0}),
            stats.basic.num_nodes);
  EXPECT_EQ(stats.label_length.count(), stats.basic.num_edges);
}

TEST(DetailedStatsTest, RemovedEntriesExcludedFromSerialisedTotal) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  auto a = index.Insert(ParseOrDie("ASK { ?x :p ?y . }", &dict), 0);
  auto b = index.Insert(ParseOrDie("ASK { ?x :q ?y . }", &dict), 1);
  ASSERT_TRUE(a.ok() && b.ok());
  const std::size_t before = ComputeDetailedStats(index).total_serialised_tokens;
  ASSERT_TRUE(index.Remove(a->stored_id).ok());
  const std::size_t after = ComputeDetailedStats(index).total_serialised_tokens;
  EXPECT_LT(after, before);
}

TEST(DetailedStatsTest, WorkloadCompression) {
  // The recurring-template corpus must compress well — the mv-index pitch.
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  const auto queries = workload::GenerateBsbm(&dict, 2000, 21);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(index.Insert(queries[i], i).ok());
  }
  const DetailedStats stats = ComputeDetailedStats(index);
  EXPECT_GT(stats.compression_ratio(), 1.2);
}

TEST(DotExportTest, RendersQueriesAndEdges) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  ASSERT_TRUE(
      index.Insert(ParseOrDie("ASK { ?x :fromAlbum ?y . }", &dict), 0).ok());
  ASSERT_TRUE(index
                  .Insert(ParseOrDie(
                              "ASK { ?x :fromAlbum ?y . ?y :name ?n . }",
                              &dict),
                          1)
                  .ok());
  const std::string dot = ExportDot(index);
  EXPECT_NE(dot.find("digraph mvindex"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("fromAlbum"), std::string::npos);
  EXPECT_NE(dot.find("?x1"), std::string::npos);
  // Two query vertices -> two doublecircles.
  std::size_t count = 0, pos = 0;
  while ((pos = dot.find("doublecircle", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 2u);
}

TEST(DotExportTest, LongLabelsTruncated) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  ASSERT_TRUE(index
                  .Insert(ParseOrDie(R"(ASK {
                      ?a :p1 ?b . ?b :p2 ?c . ?c :p3 ?d . ?d :p4 ?e .
                      ?e :p5 ?f . ?f :p6 ?g . ?g :p7 ?h . })", &dict),
                          0)
                  .ok());
  const std::string dot = ExportDot(index, /*max_label_tokens=*/3);
  EXPECT_NE(dot.find("+"), std::string::npos);  // "+N" truncation marker
}

}  // namespace
}  // namespace index
}  // namespace rdfc
