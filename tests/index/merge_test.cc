#include <gtest/gtest.h>

#include <set>

#include "../test_util.h"
#include "index/mv_index.h"
#include "workload/workload.h"

namespace rdfc {
namespace index {
namespace {

using rdfc::testing::ParseOrDie;

TEST(MergeTest, DisjointIndexesUnion) {
  rdf::TermDictionary dict;
  MvIndex a(&dict), b(&dict);
  ASSERT_TRUE(a.Insert(ParseOrDie("ASK { ?x :p ?y . }", &dict), 1).ok());
  ASSERT_TRUE(b.Insert(ParseOrDie("ASK { ?x :q ?y . }", &dict), 2).ok());
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.num_live_entries(), 2u);
  EXPECT_EQ(a.FindContaining(ParseOrDie("ASK { ?s :q :c . }", &dict))
                .contained.size(),
            1u);
}

TEST(MergeTest, OverlapDedupsAndKeepsExternals) {
  rdf::TermDictionary dict;
  MvIndex a(&dict), b(&dict);
  auto ia = a.Insert(ParseOrDie("ASK { ?x :p ?y . }", &dict), 1);
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(b.Insert(ParseOrDie("ASK { ?u :p ?v . }", &dict), 9).ok());
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.num_live_entries(), 1u);
  EXPECT_EQ(a.external_ids(ia->stored_id),
            (std::vector<std::uint64_t>{1, 9}));
}

TEST(MergeTest, DeadEntriesNotCarried) {
  rdf::TermDictionary dict;
  MvIndex a(&dict), b(&dict);
  auto ib = b.Insert(ParseOrDie("ASK { ?x :p ?y . }", &dict), 5);
  ASSERT_TRUE(ib.ok());
  ASSERT_TRUE(b.Remove(ib->stored_id).ok());
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.num_live_entries(), 0u);
}

TEST(MergeTest, DifferentDictionariesRejected) {
  rdf::TermDictionary d1, d2;
  MvIndex a(&d1), b(&d2);
  EXPECT_FALSE(a.MergeFrom(b).ok());
}

TEST(MergeTest, ShardedBuildEqualsMonolithic) {
  // Sharding a workload across two builders and merging must answer every
  // probe like the monolithic index.
  rdf::TermDictionary dict;
  const auto queries = workload::GenerateDbpedia(&dict, 600, 51);
  MvIndex mono(&dict), shard1(&dict), shard2(&dict);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(mono.Insert(queries[i], i).ok());
    MvIndex& shard = (i % 2 == 0) ? shard1 : shard2;
    ASSERT_TRUE(shard.Insert(queries[i], i).ok());
  }
  ASSERT_TRUE(shard1.MergeFrom(shard2).ok());
  EXPECT_EQ(shard1.num_live_entries(), mono.num_live_entries());

  const auto probes = workload::GenerateDbpedia(&dict, 60, 52);
  for (const auto& probe : probes) {
    std::multiset<std::uint64_t> ext_mono, ext_merged;
    for (const auto& m : mono.FindContaining(probe).contained) {
      for (auto e : mono.external_ids(m.stored_id)) ext_mono.insert(e);
    }
    for (const auto& m : shard1.FindContaining(probe).contained) {
      for (auto e : shard1.external_ids(m.stored_id)) ext_merged.insert(e);
    }
    EXPECT_EQ(ext_mono, ext_merged);
  }
}

}  // namespace
}  // namespace index
}  // namespace rdfc
