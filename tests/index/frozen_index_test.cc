#include "index/frozen_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "../test_util.h"
#include "index/persistence.h"
#include "index/validate.h"
#include "service/index_manager.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace rdfc {
namespace index {
namespace {

using rdfc::testing::ParseOrDie;

std::vector<std::uint32_t> ContainedIds(const ProbeResult& result) {
  std::vector<std::uint32_t> ids;
  ids.reserve(result.contained.size());
  for (const ProbeMatch& m : result.contained) ids.push_back(m.stored_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// The acceptance criterion, applied per probe: identical contained id sets
/// (not just counts) between the pointer walk and the frozen walk, with and
/// without NP verification.
void ExpectEquivalent(const MvIndex& index, const FrozenMvIndex& frozen,
                      const query::BgpQuery& probe) {
  const auto tree = index.FindContaining(probe);
  const auto flat = frozen.FindContaining(probe);
  EXPECT_EQ(ContainedIds(tree), ContainedIds(flat));
  EXPECT_EQ(tree.candidates, flat.candidates);
  EXPECT_EQ(tree.np_checks, flat.np_checks);

  ProbeOptions filter_only;
  filter_only.verify = false;
  EXPECT_EQ(ContainedIds(index.FindContaining(probe, filter_only)),
            ContainedIds(frozen.FindContaining(probe, filter_only)));
}

/// Small-vocabulary random queries (the rdfc_fuzz recipe: few predicates and
/// constants force shared prefixes, dedup, and actual containments).
class SmallVocabGen {
 public:
  SmallVocabGen(rdf::TermDictionary* dict, std::uint64_t seed)
      : dict_(dict), rng_(seed) {
    for (int i = 0; i < 3; ++i) {
      preds_.push_back(dict_->MakeIri("urn:fz:p" + std::to_string(i)));
    }
    for (int i = 0; i < 2; ++i) {
      consts_.push_back(dict_->MakeIri("urn:fz:c" + std::to_string(i)));
    }
  }

  query::BgpQuery Draw(std::size_t max_triples, bool var_preds) {
    query::BgpQuery q;
    const std::size_t n = 1 + rng_.Uniform(0, max_triples - 1);
    const std::size_t vars = 1 + rng_.Uniform(0, 3);
    for (std::size_t i = 0; i < n; ++i) {
      rdf::TermId p = preds_[rng_.Uniform(0, preds_.size() - 1)];
      if (var_preds && rng_.Chance(0.12)) {
        p = dict_->MakeVariable("fz" + std::to_string(10 + rng_.Uniform(0, 1)));
      }
      q.AddPattern(Term(vars, 0.85), p, Term(vars, 0.7));
    }
    return q;
  }

 private:
  rdf::TermId Term(std::size_t vars, double var_prob) {
    if (rng_.Chance(var_prob)) {
      return dict_->MakeVariable("fz" + std::to_string(rng_.Uniform(0, vars - 1)));
    }
    return consts_[rng_.Uniform(0, consts_.size() - 1)];
  }

  rdf::TermDictionary* dict_;
  util::Rng rng_;
  std::vector<rdf::TermId> preds_;
  std::vector<rdf::TermId> consts_;
};

TEST(FrozenIndexTest, EmptyIndexFreezesToBareRoot) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  FrozenMvIndex frozen(index);
  ASSERT_TRUE(ValidateFrozen(frozen).ok());
  EXPECT_EQ(frozen.nodes().size(), 1u);
  EXPECT_EQ(frozen.num_live_entries(), 0u);
  const auto result =
      frozen.FindContaining(ParseOrDie("ASK { ?x :p ?y . }", &dict));
  EXPECT_TRUE(result.contained.empty());
}

TEST(FrozenIndexTest, BfsLayoutHasAdjacentChildren) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  ASSERT_TRUE(index.Insert(ParseOrDie("ASK { ?x :p ?y . }", &dict), 0).ok());
  ASSERT_TRUE(
      index.Insert(ParseOrDie("ASK { ?x :p ?y . ?y :q ?z . }", &dict), 1).ok());
  ASSERT_TRUE(index.Insert(ParseOrDie("ASK { ?x :r :c . }", &dict), 2).ok());
  FrozenMvIndex frozen(index);
  ASSERT_TRUE(ValidateFrozen(frozen).ok()) << ValidateFrozen(frozen).ToString();

  // Children of node i occupy [first_child, first_child + num_edges), and
  // spans tile the arrays — the layout the probe walk and persistence rely
  // on (also re-checked by ValidateFrozen F1).
  std::size_t edge_total = 0;
  std::size_t child_total = 1;
  for (const FrozenMvIndex::Node& n : frozen.nodes()) {
    EXPECT_EQ(n.first_edge, edge_total);
    EXPECT_EQ(n.first_child, child_total);
    edge_total += n.num_edges;
    child_total += n.num_edges;
  }
  EXPECT_EQ(child_total, frozen.nodes().size());
  EXPECT_EQ(edge_total, frozen.edge_first_tokens().size());
  EXPECT_GT(frozen.StructureBytes(), 0u);
}

TEST(FrozenIndexTest, EquivalenceOnRandomizedSmallVocabWorkload) {
  rdf::TermDictionary dict;
  SmallVocabGen gen(&dict, /*seed=*/7);
  MvIndex index(&dict);
  for (int i = 0; i < 120; ++i) {
    auto outcome = index.Insert(gen.Draw(4, /*var_preds=*/i % 4 == 0), i);
    ASSERT_TRUE(outcome.ok());
  }
  FrozenMvIndex frozen(index);
  ASSERT_TRUE(ValidateFrozen(frozen).ok()) << ValidateFrozen(frozen).ToString();
  EXPECT_EQ(frozen.num_live_entries(), index.num_live_entries());
  for (int i = 0; i < 60; ++i) {
    ExpectEquivalent(index, frozen, gen.Draw(5, i % 2 == 0));
  }
}

TEST(FrozenIndexTest, EquivalenceAfterChurnKeepsStoredIdsStable) {
  rdf::TermDictionary dict;
  SmallVocabGen gen(&dict, /*seed=*/11);
  MvIndex index(&dict);
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 100; ++i) {
    auto outcome = index.Insert(gen.Draw(4, i % 5 == 0), i);
    ASSERT_TRUE(outcome.ok());
    ids.push_back(outcome->stored_id);
  }
  util::Rng churn(99);
  for (std::uint32_t id : ids) {
    if (churn.Chance(0.4) && index.alive(id)) {
      ASSERT_TRUE(index.Remove(id).ok());
    }
  }
  FrozenMvIndex frozen(index);
  ASSERT_TRUE(ValidateFrozen(frozen).ok()) << ValidateFrozen(frozen).ToString();
  // Dead ids keep their (empty) slots so live ids — and probe results — are
  // identical between the two layouts.
  EXPECT_EQ(frozen.num_entries(), index.num_entries());
  EXPECT_EQ(frozen.num_live_entries(), index.num_live_entries());
  for (std::uint32_t id : ids) {
    EXPECT_EQ(frozen.alive(id), index.alive(id));
  }
  for (int i = 0; i < 60; ++i) {
    ExpectEquivalent(index, frozen, gen.Draw(5, i % 2 == 0));
  }
}

TEST(FrozenIndexTest, EquivalenceOnGeneratorWorkloads) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  auto lubm = workload::LubmQueries(&dict);
  ASSERT_TRUE(lubm.ok());
  std::uint64_t ext = 0;
  for (const query::BgpQuery& q : *lubm) {
    ASSERT_TRUE(index.Insert(q, ext++).ok());
  }
  const auto watdiv = workload::GenerateWatdiv(&dict, 150, /*seed=*/3);
  for (const query::BgpQuery& q : watdiv) {
    ASSERT_TRUE(index.Insert(q, ext++).ok());
  }
  FrozenMvIndex frozen(index);
  ASSERT_TRUE(ValidateFrozen(frozen).ok()) << ValidateFrozen(frozen).ToString();
  for (const query::BgpQuery& q : *lubm) ExpectEquivalent(index, frozen, q);
  const auto probes = workload::GenerateWatdiv(&dict, 50, /*seed=*/17);
  for (const query::BgpQuery& q : probes) ExpectEquivalent(index, frozen, q);
}

TEST(FrozenIndexTest, SkeletonFreeEntriesCarryOver) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  ASSERT_TRUE(index.Insert(ParseOrDie("ASK { ?x ?v :c . }", &dict), 0).ok());
  ASSERT_TRUE(index.Insert(ParseOrDie("ASK { ?x :p ?y . }", &dict), 1).ok());
  FrozenMvIndex frozen(index);
  ASSERT_TRUE(ValidateFrozen(frozen).ok());
  EXPECT_EQ(frozen.skeleton_free_entries(), index.skeleton_free_entries());
  ExpectEquivalent(index, frozen, ParseOrDie("ASK { ?a :p :c . }", &dict));
}

class FrozenPersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_ = ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      std::string(".rdfcfz");
};

TEST_F(FrozenPersistenceTest, RoundTripPreservesProbesAndStoredIds) {
  rdf::TermDictionary dict;
  SmallVocabGen gen(&dict, /*seed=*/23);
  MvIndex index(&dict);
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(index.Insert(gen.Draw(4, i % 4 == 0), i).ok());
  }
  // Churn so the saved image contains dead slots.
  int removed = 0;
  for (std::uint32_t id = 0; removed < 2 && id < index.num_entries(); ++id) {
    if (index.alive(id)) {
      ASSERT_TRUE(index.Remove(id).ok());
      ++removed;
    }
  }
  ASSERT_EQ(removed, 2);
  FrozenMvIndex frozen(index);
  ASSERT_TRUE(SaveFrozenIndex(frozen, path_).ok());

  rdf::TermDictionary dict2;
  auto loaded = LoadFrozenIndex(path_, &dict2);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_entries(), frozen.num_entries());
  EXPECT_EQ((*loaded)->num_live_entries(), frozen.num_live_entries());
  EXPECT_EQ((*loaded)->nodes().size(), frozen.nodes().size());
  EXPECT_EQ((*loaded)->label_pool().size(), frozen.label_pool().size());

  // Unlike LoadIndex, stored ids are stable across the cycle: same probe,
  // same ids, against a freshly re-interned dictionary.  gen2 replays gen's
  // full draw sequence (inserts first) so probe i matches on both sides.
  SmallVocabGen gen2(&dict2, /*seed=*/23);
  for (int i = 0; i < 80; ++i) (void)gen2.Draw(4, i % 4 == 0);
  for (int i = 0; i < 40; ++i) {
    const query::BgpQuery p1 = gen.Draw(5, i % 2 == 0);
    const query::BgpQuery p2 = gen2.Draw(5, i % 2 == 0);
    EXPECT_EQ(ContainedIds(frozen.FindContaining(p1)),
              ContainedIds((*loaded)->FindContaining(p2)));
    EXPECT_EQ(ContainedIds(frozen.FindContaining(p1)),
              ContainedIds(index.FindContaining(p1)));
  }
  for (std::uint32_t id = 0; id < frozen.num_entries(); ++id) {
    ASSERT_EQ((*loaded)->alive(id), frozen.alive(id));
    if (frozen.alive(id)) {
      EXPECT_EQ((*loaded)->external_ids(id), frozen.external_ids(id));
    }
  }
}

TEST_F(FrozenPersistenceTest, CorruptionIsDetected) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  ASSERT_TRUE(index.Insert(ParseOrDie("ASK { ?x :p ?y . }", &dict), 0).ok());
  FrozenMvIndex frozen(index);
  ASSERT_TRUE(SaveFrozenIndex(frozen, path_).ok());

  // Flip one byte in the middle of the file; the checksum (or a structural
  // check before it) must reject the image.
  std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  ASSERT_GT(size, 32);
  f.seekp(size / 2);
  char byte = 0;
  f.seekg(size / 2);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  f.seekp(size / 2);
  f.write(&byte, 1);
  f.close();

  rdf::TermDictionary dict2;
  auto loaded = LoadFrozenIndex(path_, &dict2);
  EXPECT_FALSE(loaded.ok());
}

TEST(FrozenServiceTest, RefreezeBakesDeltaIntoFrozenBase) {
  rdf::TermDictionary dict;
  service::TierOptions tier;
  tier.background_compaction = false;  // compact only when told to
  tier.num_shards = 1;                 // single shard: base is shard(0).base
  service::IndexManager manager(&dict, {}, tier);
  const std::size_t slot = manager.RegisterReader();
  ASSERT_TRUE(manager.StageAdd(ParseOrDie("ASK { ?x :p ?y . }", &dict)).ok());
  ASSERT_TRUE(manager.Publish().ok());
  {
    // Freshly published views live in the pointer-tree delta tier.
    service::IndexManager::ReadGuard guard = manager.Acquire(slot);
    EXPECT_EQ(guard->shard(0).base, nullptr);
    EXPECT_EQ(guard->num_delta_views(), 1u);
  }
  ASSERT_TRUE(manager.Refreeze().ok());
  service::IndexManager::ReadGuard guard = manager.Acquire(slot);
  ASSERT_NE(guard->shard(0).base, nullptr);
  ASSERT_TRUE(ValidateFrozen(*guard->shard(0).base).ok());
  EXPECT_EQ(guard->num_base_views(), 1u);
  EXPECT_EQ(guard->num_delta_views(), 0u);
  // The merged walk over the compacted snapshot and a direct frozen walk
  // agree (there is no delta left, so the merge is exactly the base walk).
  const containment::PreparedProbe probe = containment::PrepareProbe(
      ParseOrDie("ASK { ?a :p ?b . ?b :q ?c . }", &dict), dict);
  EXPECT_EQ(ContainedIds(guard->Find(probe)),
            ContainedIds(guard->shard(0).base->FindContaining(probe)));
}

TEST(FrozenServiceTest, DeltaOnlyConfigurationServesFromPointerTree) {
  rdf::TermDictionary dict;
  service::TierOptions tier;
  tier.background_compaction = false;
  tier.num_shards = 1;
  service::IndexManager manager(&dict, {}, tier);
  const std::size_t slot = manager.RegisterReader();
  ASSERT_TRUE(manager.StageAdd(ParseOrDie("ASK { ?x :p ?y . }", &dict)).ok());
  ASSERT_TRUE(manager.Publish().ok());
  service::IndexManager::ReadGuard guard = manager.Acquire(slot);
  // Never compacted: pure pointer-tree mode.
  EXPECT_EQ(guard->shard(0).base, nullptr);
  const containment::PreparedProbe probe =
      containment::PrepareProbe(ParseOrDie("ASK { ?a :p ?b . }", &dict), dict);
  EXPECT_EQ(ContainedIds(guard->Find(probe)).size(), 1u);
}

}  // namespace
}  // namespace index
}  // namespace rdfc
