#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "index/mv_index.h"
#include "workload/workload.h"

namespace rdfc {
namespace index {
namespace {

using rdfc::testing::ParseOrDie;

class DeletionTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  std::uint32_t Insert(MvIndex* index, const std::string& text,
                       std::uint64_t ext = 0) {
    auto result = index->Insert(Q(text), ext);
    EXPECT_TRUE(result.ok());
    return result->stored_id;
  }
  rdf::TermDictionary dict_;
};

TEST_F(DeletionTest, RemoveMakesEntryUnfindable) {
  MvIndex index(&dict_);
  const std::uint32_t id = Insert(&index, "ASK { ?x :p ?y . }");
  EXPECT_EQ(index.FindContaining(Q("ASK { ?s :p ?t . ?s :q ?u . }"))
                .contained.size(),
            1u);
  ASSERT_TRUE(index.Remove(id).ok());
  EXPECT_FALSE(index.alive(id));
  EXPECT_EQ(index.num_live_entries(), 0u);
  EXPECT_TRUE(index.FindContaining(Q("ASK { ?s :p ?t . ?s :q ?u . }"))
                  .contained.empty());
  EXPECT_TRUE(index.ScanContaining(Q("ASK { ?s :p ?t . ?s :q ?u . }"))
                  .contained.empty());
}

TEST_F(DeletionTest, RemoveIsIdempotentAndChecked) {
  MvIndex index(&dict_);
  const std::uint32_t id = Insert(&index, "ASK { ?x :p ?y . }");
  ASSERT_TRUE(index.Remove(id).ok());
  EXPECT_FALSE(index.Remove(id).ok());       // already removed
  EXPECT_FALSE(index.Remove(12345).ok());    // never existed
}

TEST_F(DeletionTest, TreePrunedBackToRoot) {
  MvIndex index(&dict_);
  const std::uint32_t id = Insert(&index, "ASK { ?x :p ?y . ?y :q ?z . }");
  EXPECT_GT(index.num_nodes(), 1u);
  ASSERT_TRUE(index.Remove(id).ok());
  const RadixStats stats = index.ComputeStats();
  EXPECT_EQ(stats.num_nodes, 1u);  // back to just the root
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_EQ(index.num_nodes(), stats.num_nodes);
}

TEST_F(DeletionTest, SplitVertexReMergedAfterRemoval) {
  MvIndex index(&dict_);
  const std::uint32_t longer =
      Insert(&index, "ASK { ?x :p ?y . ?y :q ?z . }");
  const std::uint32_t shorter = Insert(&index, "ASK { ?x :p ?y . }");
  const std::size_t with_both = index.ComputeStats().num_nodes;
  ASSERT_TRUE(index.Remove(shorter).ok());
  // The prefix vertex created by the split is merged away again.
  const RadixStats stats = index.ComputeStats();
  EXPECT_LT(stats.num_nodes, with_both);
  EXPECT_EQ(stats.num_edges, stats.num_nodes - 1);
  EXPECT_EQ(index.num_nodes(), stats.num_nodes);
  // The longer entry still probes correctly.
  EXPECT_EQ(index.FindContaining(Q("ASK { ?a :p ?b . ?b :q ?c . }"))
                .contained.size(),
            1u);
  EXPECT_TRUE(index.alive(longer));
}

TEST_F(DeletionTest, SharedVertexSurvivesSiblingRemoval) {
  MvIndex index(&dict_);
  const std::uint32_t a = Insert(&index, "ASK { ?x :p ?y . ?y :q1 ?z . }");
  const std::uint32_t b = Insert(&index, "ASK { ?x :p ?y . ?y :q2 ?z . }");
  ASSERT_TRUE(index.Remove(a).ok());
  EXPECT_TRUE(index.alive(b));
  EXPECT_EQ(index.FindContaining(Q("ASK { ?s :p ?t . ?t :q2 ?u . }"))
                .contained.size(),
            1u);
  const RadixStats stats = index.ComputeStats();
  EXPECT_EQ(stats.num_edges, stats.num_nodes - 1);
}

TEST_F(DeletionTest, SkeletonFreeRemoval) {
  MvIndex index(&dict_);
  const std::uint32_t id = Insert(&index, "ASK { ?x ?v ?y . }");
  EXPECT_EQ(index.skeleton_free_entries().size(), 1u);
  ASSERT_TRUE(index.Remove(id).ok());
  EXPECT_TRUE(index.skeleton_free_entries().empty());
  EXPECT_TRUE(
      index.FindContaining(Q("ASK { ?s :p ?t . }")).contained.empty());
}

TEST_F(DeletionTest, ReinsertAfterRemoval) {
  MvIndex index(&dict_);
  const std::uint32_t id = Insert(&index, "ASK { ?x :p ?y . }", 1);
  ASSERT_TRUE(index.Remove(id).ok());
  const std::uint32_t id2 = Insert(&index, "ASK { ?a :p ?b . }", 2);
  EXPECT_NE(id, id2);  // ids are never reused
  EXPECT_EQ(index.num_live_entries(), 1u);
  EXPECT_EQ(index.FindContaining(Q("ASK { ?s :p :c . }")).contained.size(),
            1u);
}

TEST_F(DeletionTest, ChurnKeepsWalkAndScanInAgreement) {
  rdf::TermDictionary dict;
  MvIndex index(&dict);
  const auto views = workload::GenerateDbpedia(&dict, 400, 11);
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < views.size(); ++i) {
    auto r = index.Insert(views[i], i);
    ASSERT_TRUE(r.ok());
    ids.push_back(r->stored_id);
  }
  // Remove every third live entry.
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    ASSERT_TRUE(index.Remove(ids[i]).ok());
  }
  const RadixStats stats = index.ComputeStats();
  EXPECT_EQ(stats.num_nodes, index.num_nodes());
  EXPECT_EQ(stats.num_edges, stats.num_nodes - 1);

  const auto probes = workload::GenerateDbpedia(&dict, 60, 12);
  for (const auto& probe : probes) {
    const auto walk = index.FindContaining(probe);
    const auto scan = index.ScanContaining(probe);
    std::set<std::uint32_t> walk_ids, scan_ids;
    for (const auto& m : walk.contained) walk_ids.insert(m.stored_id);
    for (const auto& m : scan.contained) scan_ids.insert(m.stored_id);
    EXPECT_EQ(walk_ids, scan_ids);
    for (std::uint32_t id : walk_ids) EXPECT_TRUE(index.alive(id));
  }
}

}  // namespace
}  // namespace index
}  // namespace rdfc
