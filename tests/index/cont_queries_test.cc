#include "index/cont_queries.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "containment/homomorphism.h"

namespace rdfc {
namespace index {
namespace {

using rdfc::testing::ParseOrDie;

class ContQueriesTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  void Insert(MvIndex* index, const std::string& text) {
    auto result = index->Insert(Q(text));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  static std::vector<std::uint32_t> Ids(const ProbeResult& result) {
    std::vector<std::uint32_t> ids;
    for (const auto& m : result.contained) ids.push_back(m.stored_id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  rdf::TermDictionary dict_;
};

TEST_F(ContQueriesTest, Figure1StyleIndex) {
  // The five-query index of Example 4.1 in spirit: shared fromAlbum prefix.
  MvIndex index(&dict_);
  Insert(&index,
         "ASK { ?x1 :artist ?x2 . ?x2 a :Composer . ?x2 a :MusicalArtist . }");
  Insert(&index, "ASK { ?x1 :fromAlbum ?x2 . ?x2 :name ?x3 . }");
  Insert(&index, "ASK { ?x1 :fromAlbum ?x2 . ?x2 :artist ?x3 . }");
  Insert(&index, "ASK { ?x1 :fromAlbum ?x2 . }");
  Insert(&index, "ASK { ?x1 :name ?x2 . }");

  // The paper's Q (Example 2.1) is contained in the three fromAlbum views
  // and the name view, but not in the Composer view.
  const auto result = index.FindContaining(Q(R"(ASK {
      ?sng :name ?sN . ?sng :fromAlbum ?alb . ?alb :name ?aN .
      ?alb :artist ?art . ?art a :MusicalArtist . })"));
  EXPECT_EQ(result.contained.size(), 4u);
}

TEST_F(ContQueriesTest, WalkAgreesWithScanOnHandCases) {
  MvIndex index(&dict_);
  const char* views[] = {
      "ASK { ?x :p ?y . }",
      "ASK { ?x :p ?y . ?y :q ?z . }",
      "ASK { ?x :p ?y . ?y :q ?x . }",
      "ASK { ?x :p :c . }",
      "ASK { ?x a :A . }",
      "ASK { ?x a :A . ?x a :B . }",
      "ASK { ?x ?v ?y . }",
      "ASK { ?x :p ?y . ?z ?v ?y . }",
      "ASK { ?a :p ?b . ?c :q ?d . }",
  };
  for (const char* view : views) Insert(&index, view);

  const char* probes[] = {
      "ASK { ?s :p :c . ?s :r ?t . }",
      "ASK { ?s :p ?t . ?t :q ?s . }",
      "ASK { ?s :p ?a . ?s :p ?b . ?a :q ?u . }",
      "ASK { ?s a :A . ?s a :B . }",
      "ASK { ?s :q ?t . }",
      "ASK { ?s :p ?t . ?u :q ?w . }",
  };
  for (const char* probe : probes) {
    const auto walk = index.FindContaining(Q(probe));
    const auto scan = index.ScanContaining(Q(probe));
    EXPECT_EQ(Ids(walk), Ids(scan)) << probe;
  }
}

TEST_F(ContQueriesTest, ProbeBeatsScanOnWorkCounters) {
  // Shared prefixes: the walk explores one shared edge for many views.
  MvIndex index(&dict_);
  for (int i = 0; i < 40; ++i) {
    Insert(&index, "ASK { ?x :common ?y . ?y :leaf" + std::to_string(i) +
                       " ?z . }");
  }
  const auto result = index.FindContaining(Q("ASK { ?a :other ?b . }"));
  EXPECT_TRUE(result.contained.empty());
  // The probe fails on the single shared :common edge; with per-view checks
  // it would have paid 40 times.
  EXPECT_LE(result.states_explored, 8u);
}

TEST_F(ContQueriesTest, MappingsReturnedThroughProbe) {
  MvIndex index(&dict_);
  Insert(&index, "SELECT ?y WHERE { ?x :name ?y . }");
  ProbeOptions options;
  options.max_mappings = 4;
  const auto result = index.FindContaining(
      Q("ASK { ?song :name ?title . ?song :fromAlbum ?alb . }"), options);
  ASSERT_EQ(result.contained.size(), 1u);
  ASSERT_FALSE(result.contained[0].outcome.mappings.empty());
  const auto& mapping = result.contained[0].outcome.mappings[0];
  EXPECT_EQ(mapping.at(dict_.MakeVariable("x")), dict_.MakeVariable("song"));
  EXPECT_EQ(mapping.at(dict_.MakeVariable("y")), dict_.MakeVariable("title"));
}

TEST_F(ContQueriesTest, SkeletonFreeEntriesChecked) {
  MvIndex index(&dict_);
  Insert(&index, "ASK { ?x ?v ?y . }");
  Insert(&index, "ASK { ?x ?v ?x . }");
  const auto plain = index.FindContaining(Q("ASK { ?s :p ?t . }"));
  EXPECT_EQ(plain.contained.size(), 1u);
  const auto loop = index.FindContaining(Q("ASK { ?s :p ?s . }"));
  EXPECT_EQ(loop.contained.size(), 2u);
}

TEST_F(ContQueriesTest, BlankNodeEntriesFoundByWalk) {
  // Regression: blank nodes in stored patterns must be canonicalised like
  // variables, or the walk's candidate-token enumeration can never reach
  // their edges (walk/scan divergence).
  MvIndex index(&dict_);
  query::BgpQuery w;
  w.AddPattern(dict_.MakeVariable("x"),
               dict_.MakeIri("urn:t:p"),
               dict_.MakeBlank("b0"));
  w.AddPattern(dict_.MakeBlank("b0"), dict_.MakeIri("urn:t:q"),
               dict_.MakeVariable("y"));
  ASSERT_TRUE(index.Insert(w, 0).ok());
  const query::BgpQuery probe = Q("ASK { ?s :p ?m . ?m :q ?t . }");
  const auto walk = index.FindContaining(probe);
  const auto scan = index.ScanContaining(probe);
  EXPECT_EQ(walk.contained.size(), 1u);
  EXPECT_EQ(scan.contained.size(), 1u);
}

TEST_F(ContQueriesTest, EmptyIndexReturnsNothing) {
  MvIndex index(&dict_);
  const auto result = index.FindContaining(Q("ASK { ?x :p ?y . }"));
  EXPECT_TRUE(result.contained.empty());
  EXPECT_EQ(result.candidates, 0u);
}

TEST_F(ContQueriesTest, NpCheckCounterOnlyForNonFGraphProbes) {
  MvIndex index(&dict_);
  Insert(&index, "ASK { ?x :p ?y . }");
  const auto fgraph_probe = index.FindContaining(Q("ASK { ?s :p ?t . }"));
  EXPECT_EQ(fgraph_probe.np_checks, 0u);
  const auto merged_probe =
      index.FindContaining(Q("ASK { ?s :p ?a . ?s :p ?b . }"));
  EXPECT_EQ(merged_probe.np_checks, 1u);
  EXPECT_EQ(merged_probe.contained.size(), 1u);
}

}  // namespace
}  // namespace index
}  // namespace rdfc
