#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/frozen_index.h"
#include "index/mv_index.h"
#include "index/persistence.h"
#include "rdf/dictionary.h"
#include "util/failpoint.h"

// Corruption-resilience contract of the persistence layer (DESIGN.md
// "Resilience"): loading ANY prefix of a valid snapshot — a torn write, a
// partial download, a crashed copy — must come back as a clean error Status.
// Never a crash, never an abort, never a huge speculative allocation, and
// never a partially-constructed index escaping to the caller.

namespace rdfc {
namespace index {
namespace {

query::BgpQuery MakeQuery(rdf::TermDictionary* dict, int tag) {
  query::BgpQuery q;
  q.set_form(query::QueryForm::kAsk);
  const rdf::TermId s = dict->MakeVariable("s" + std::to_string(tag));
  const rdf::TermId o = dict->MakeVariable("o" + std::to_string(tag));
  q.AddPattern(s, dict->MakeIri("urn:torn:p" + std::to_string(tag % 3)), o);
  if (tag % 2 == 0) {
    q.AddPattern(o, dict->MakeIri("urn:torn:q"), dict->MakeIri("urn:torn:c"));
  }
  if (tag % 4 == 0) {
    // A variable predicate, so the side list is exercised too.
    q.AddPattern(s, dict->MakeVariable("vp"), o);
  }
  return q;
}

class TornBlobTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 12; ++i) {
      auto outcome = index_.Insert(MakeQuery(&dict_, i),
                                   static_cast<std::uint64_t>(i));
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
    base_ = ::testing::TempDir() + "torn_blob_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
  }

  void TearDown() override {
    std::remove((base_ + ".idx").c_str());
    std::remove((base_ + ".idx.tmp").c_str());
    std::remove((base_ + ".torn").c_str());
  }

  static std::vector<char> ReadAll(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good());
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  static void WriteAll(const std::string& path, const char* data,
                       std::size_t n) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data, static_cast<std::streamsize>(n));
  }

  rdf::TermDictionary dict_;
  MvIndex index_{&dict_};
  std::string base_;
};

TEST_F(TornBlobTest, EveryPrefixOfIndexSnapshotFailsCleanly) {
  const std::string path = base_ + ".idx";
  ASSERT_TRUE(SaveIndex(index_, path).ok());
  const std::vector<char> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 16u);

  const std::string torn = base_ + ".torn";
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(torn, bytes.data(), len);
    rdf::TermDictionary fresh;
    auto loaded = LoadIndex(torn, &fresh);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
  }
  // The untouched file still round-trips after all that.
  rdf::TermDictionary fresh;
  auto loaded = LoadIndex(path, &fresh);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_live_entries(), index_.num_live_entries());
}

TEST_F(TornBlobTest, EveryPrefixOfFrozenImageFailsCleanly) {
  const std::string path = base_ + ".idx";
  const FrozenMvIndex frozen(index_);
  ASSERT_TRUE(SaveFrozenIndex(frozen, path).ok());
  const std::vector<char> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), 16u);

  const std::string torn = base_ + ".torn";
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    WriteAll(torn, bytes.data(), len);
    rdf::TermDictionary fresh;
    auto loaded = LoadFrozenIndex(torn, &fresh);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
  }
  rdf::TermDictionary fresh;
  auto loaded = LoadFrozenIndex(path, &fresh);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST_F(TornBlobTest, SingleByteFlipsAreCaught) {
  const std::string path = base_ + ".idx";
  ASSERT_TRUE(SaveIndex(index_, path).ok());
  std::vector<char> bytes = ReadAll(path);

  const std::string torn = base_ + ".torn";
  // Every offset: the FNV checksum catches any single-byte change that the
  // structural validation does not reject first.
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::vector<char> mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x5A);
    WriteAll(torn, mutated.data(), mutated.size());
    rdf::TermDictionary fresh;
    auto loaded = LoadIndex(torn, &fresh);
    ASSERT_FALSE(loaded.ok()) << "flip at offset " << at << " loaded";
  }
}

#ifdef RDFC_FAILPOINTS

TEST_F(TornBlobTest, CrashDuringSaveLeavesPreviousSnapshotLoadable) {
  const std::string path = base_ + ".idx";
  ASSERT_TRUE(SaveIndex(index_, path).ok());
  const std::vector<char> before = ReadAll(path);

  auto& registry = util::FailpointRegistry::Instance();
  ASSERT_TRUE(registry.Configure("persistence.crash=1", 11).ok());
  auto outcome = index_.Insert(MakeQuery(&dict_, 99), 99);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(SaveIndex(index_, path).ok());
  registry.Reset();

  // Byte-for-byte identical to the last committed save, and loadable.
  EXPECT_EQ(ReadAll(path), before);
  rdf::TermDictionary fresh;
  auto loaded = LoadIndex(path, &fresh);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // With the fault gone, the pending state commits and supersedes it.
  ASSERT_TRUE(SaveIndex(index_, path).ok());
  rdf::TermDictionary fresh2;
  auto reloaded = LoadIndex(path, &fresh2);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ((*reloaded)->num_live_entries(), index_.num_live_entries());
}

#endif  // RDFC_FAILPOINTS

}  // namespace
}  // namespace index
}  // namespace rdfc
