#include "index/mv_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "workload/workload.h"

namespace rdfc {
namespace index {
namespace {

using rdfc::testing::ParseOrDie;

class MvIndexTest : public ::testing::Test {
 protected:
  query::BgpQuery Q(const std::string& text) {
    return ParseOrDie(text, &dict_);
  }
  MvIndex::InsertOutcome Insert(MvIndex* index, const std::string& text,
                                std::uint64_t external_id = 0) {
    auto result = index->Insert(Q(text), external_id);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : MvIndex::InsertOutcome{};
  }
  rdf::TermDictionary dict_;
};

TEST_F(MvIndexTest, InsertAndCount) {
  MvIndex index(&dict_);
  EXPECT_TRUE(Insert(&index, "ASK { ?x :p ?y . }").was_new);
  EXPECT_TRUE(Insert(&index, "ASK { ?x :q ?y . }").was_new);
  EXPECT_EQ(index.num_entries(), 2u);
  EXPECT_EQ(index.num_insertions(), 2u);
}

TEST_F(MvIndexTest, RecurringQueriesDeduplicate) {
  MvIndex index(&dict_);
  const auto first = Insert(&index, "ASK { ?x :p ?y . ?x :q :c . }", 7);
  const auto second = Insert(&index, "ASK { ?a :p ?b . ?a :q :c . }", 9);
  EXPECT_TRUE(first.was_new);
  EXPECT_FALSE(second.was_new);
  EXPECT_EQ(first.stored_id, second.stored_id);
  EXPECT_EQ(index.num_entries(), 1u);
  EXPECT_EQ(index.num_insertions(), 2u);
  EXPECT_EQ(index.external_ids(first.stored_id),
            (std::vector<std::uint64_t>{7, 9}));
}

TEST_F(MvIndexTest, SharedPrefixesShareEdges) {
  // Figure 1's idea: queries sharing patterns share radix-tree paths.
  MvIndex index(&dict_);
  Insert(&index, "ASK { ?x :fromAlbum ?z . ?z :name ?w . }");
  const RadixStats solo = index.ComputeStats();
  Insert(&index, "ASK { ?x :fromAlbum ?z . ?z :name ?w . ?z :artist ?a . }");
  Insert(&index, "ASK { ?x :fromAlbum ?z . }");
  const RadixStats stats = index.ComputeStats();
  // Shared prefix means far fewer label tokens than three separate tries.
  EXPECT_LT(stats.total_label_tokens, 3 * solo.total_label_tokens);
  EXPECT_EQ(stats.num_query_nodes, 3u);
  EXPECT_EQ(index.num_entries(), 3u);
}

TEST_F(MvIndexTest, EdgeSplittingPreservesQueries) {
  MvIndex index(&dict_);
  // Insert the longer query first so the shorter one splits its edge.
  const auto longer =
      Insert(&index, "ASK { ?x :fromAlbum ?z . ?z :name ?w . }");
  const auto shorter = Insert(&index, "ASK { ?x :fromAlbum ?z . }");
  EXPECT_NE(longer.stored_id, shorter.stored_id);
  // Both remain findable (self-probe finds self among results).
  auto hits = index.FindContaining(Q("ASK { ?x :fromAlbum ?z . ?z :name ?w . }"));
  std::vector<std::uint32_t> ids;
  for (const auto& m : hits.contained) ids.push_back(m.stored_id);
  EXPECT_NE(std::find(ids.begin(), ids.end(), longer.stored_id), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), shorter.stored_id), ids.end());
}

TEST_F(MvIndexTest, NodeCountTracksSplits) {
  MvIndex index(&dict_);
  Insert(&index, "ASK { ?x :p1 ?a . ?x :p2 ?b . }");
  Insert(&index, "ASK { ?x :p1 ?a . ?x :p3 ?b . }");
  const RadixStats stats = index.ComputeStats();
  EXPECT_EQ(stats.num_nodes, index.num_nodes());
  EXPECT_GE(stats.num_nodes, 4u);  // root + split point + two leaves
  EXPECT_EQ(stats.num_edges, stats.num_nodes - 1);  // tree invariant
}

TEST_F(MvIndexTest, EmptyQueryRejected) {
  MvIndex index(&dict_);
  query::BgpQuery empty;
  EXPECT_FALSE(index.Insert(empty).ok());
}

TEST_F(MvIndexTest, VarPredOnlyQueriesGoToSideList) {
  MvIndex index(&dict_);
  const auto outcome = Insert(&index, "ASK { ?x ?v ?y . }");
  EXPECT_TRUE(outcome.was_new);
  EXPECT_EQ(index.skeleton_free_entries().size(), 1u);
  // Dedup also works on the side list.
  EXPECT_FALSE(Insert(&index, "ASK { ?a ?w ?b . }").was_new);
  // A structurally different var-pred query is a new entry.
  EXPECT_TRUE(Insert(&index, "ASK { ?a ?w ?a . }").was_new);
}

TEST_F(MvIndexTest, SameSkeletonDifferentVarPredPatterns) {
  MvIndex index(&dict_);
  const auto a = Insert(&index, "ASK { ?x :p ?y . ?x ?v ?z . }");
  const auto b = Insert(&index, "ASK { ?x :p ?y . ?z ?v ?x . }");
  EXPECT_TRUE(a.was_new);
  EXPECT_TRUE(b.was_new);
  EXPECT_NE(a.stored_id, b.stored_id);
}

TEST_F(MvIndexTest, StatsOnEmptyIndex) {
  MvIndex index(&dict_);
  const RadixStats stats = index.ComputeStats();
  EXPECT_EQ(stats.num_nodes, 1u);  // just the root
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_EQ(index.num_nodes(), 1u);
}

TEST_F(MvIndexTest, ExactDedupCollapsesIsomorphs) {
  // Two isomorphic 2-cycles whose variables were interned in opposite
  // orders: default dedup may keep them apart (serialisation tie-breaks on
  // term ids), exact dedup must always collapse them.
  rdf::TermDictionary dict;
  const rdf::TermId p = dict.MakeIri("urn:p");
  query::BgpQuery q1, q2;
  {
    const rdf::TermId a = dict.MakeVariable("aa");
    const rdf::TermId b = dict.MakeVariable("bb");
    q1.AddPattern(a, p, b);
    q1.AddPattern(b, p, a);
  }
  {
    const rdf::TermId d = dict.MakeVariable("dd");
    const rdf::TermId c = dict.MakeVariable("cc");
    q2.AddPattern(c, p, d);
    q2.AddPattern(d, p, c);
  }
  IndexOptions options;
  options.exact_dedup = true;
  MvIndex exact(&dict, options);
  auto a = exact.Insert(q1, 1);
  auto b = exact.Insert(q2, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(b->was_new);
  EXPECT_EQ(a->stored_id, b->stored_id);
  // Probing still behaves identically.
  query::BgpQuery probe;
  const rdf::TermId x = dict.MakeVariable("px");
  const rdf::TermId y = dict.MakeVariable("py");
  probe.AddPattern(x, p, y);
  probe.AddPattern(y, p, x);
  EXPECT_EQ(exact.FindContaining(probe).contained.size(), 1u);
}

TEST_F(MvIndexTest, ExactDedupNeverWorseThanDefault) {
  rdf::TermDictionary d1, d2;
  const auto w1 = workload::GenerateDbpedia(&d1, 1500, 61);
  const auto w2 = workload::GenerateDbpedia(&d2, 1500, 61);
  MvIndex plain(&d1);
  IndexOptions options;
  options.exact_dedup = true;
  MvIndex exact(&d2, options);
  for (std::size_t i = 0; i < w1.size(); ++i) {
    ASSERT_TRUE(plain.Insert(w1[i], i).ok());
    ASSERT_TRUE(exact.Insert(w2[i], i).ok());
  }
  EXPECT_LE(exact.num_entries(), plain.num_entries());
}

TEST_F(MvIndexTest, ManyInsertionsKeepTreeInvariants) {
  MvIndex index(&dict_);
  for (int i = 0; i < 50; ++i) {
    const std::string p = ":p" + std::to_string(i % 7);
    const std::string c = ":c" + std::to_string(i % 5);
    Insert(&index,
           "ASK { ?x " + p + " ?y . ?y " + p + " " + c + " . }");
  }
  const RadixStats stats = index.ComputeStats();
  EXPECT_EQ(stats.num_edges, stats.num_nodes - 1);
  EXPECT_EQ(stats.num_nodes, index.num_nodes());
  EXPECT_EQ(index.num_entries(), 35u);  // 7 * 5 distinct combinations
  EXPECT_EQ(index.num_insertions(), 50u);
}

}  // namespace
}  // namespace index
}  // namespace rdfc
