#include "service/containment_service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "containment/pipeline.h"
#include "util/timer.h"

namespace rdfc {
namespace service {

/// One admitted probe: the request, the promise its future watches, and the
/// stopwatch started at admission (queue wait + total latency both hang off
/// it).  Held by shared_ptr because std::function requires copyable
/// callables and std::promise is move-only.
struct ContainmentService::Job {
  ProbeRequest request;
  std::promise<ProbeResponse> promise;
  util::Timer admitted;
};

ContainmentService::ContainmentService(const ServiceOptions& options)
    : options_(options),
      manager_(&dict_, options.index, options.freeze_published),
      metrics_(options.num_threads == 0 ? 1 : options.num_threads) {
  util::ThreadPool::Options pool_options;
  pool_options.num_threads = options_.num_threads;
  pool_options.queue_capacity = options_.queue_capacity;
  pool_ = std::make_unique<util::ThreadPool>(pool_options);
  // Reader slot i belongs to worker i: registration happens before any
  // Submit can reach a worker, so slots are ready when RunJob first runs.
  for (std::size_t i = 0; i < pool_->num_threads(); ++i) {
    (void)manager_.RegisterReader();
  }
}

ContainmentService::~ContainmentService() { Shutdown(); }

void ContainmentService::Shutdown() { pool_->Shutdown(); }

util::Result<std::uint64_t> ContainmentService::AddView(
    std::string_view sparql) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  RDFC_ASSIGN_OR_RETURN(query::BgpQuery view,
                        sparql::ParseQuery(sparql, &dict_, options_.parser));
  return manager_.StageAdd(std::move(view));
}

util::Status ContainmentService::RemoveView(std::uint64_t view_id) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  return manager_.StageRemove(view_id);
}

util::Result<std::uint64_t> ContainmentService::Publish() {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  auto version = manager_.Publish();
  if (version.ok()) metrics_.RecordPublish();
  return version;
}

util::Result<std::vector<std::uint64_t>> ContainmentService::PublishViews(
    const std::vector<std::string>& sparql) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  // Parse everything first so a bad query aborts before any staging.
  std::vector<query::BgpQuery> parsed;
  parsed.reserve(sparql.size());
  for (const std::string& text : sparql) {
    RDFC_ASSIGN_OR_RETURN(query::BgpQuery view,
                          sparql::ParseQuery(text, &dict_, options_.parser));
    parsed.push_back(std::move(view));
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(parsed.size());
  for (query::BgpQuery& view : parsed) {
    RDFC_ASSIGN_OR_RETURN(std::uint64_t id, manager_.StageAdd(std::move(view)));
    ids.push_back(id);
  }
  RDFC_ASSIGN_OR_RETURN(std::uint64_t version, manager_.Publish());
  (void)version;
  metrics_.RecordPublish();
  return ids;
}

util::Result<query::BgpQuery> ContainmentService::Parse(
    std::string_view sparql) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  return sparql::ParseQuery(sparql, &dict_, options_.parser);
}

util::Result<std::future<ProbeResponse>> ContainmentService::Submit(
    ProbeRequest request) {
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  std::future<ProbeResponse> future = job->promise.get_future();
  util::Status admitted = pool_->TrySubmit(
      [this, job](std::size_t worker_index) { RunJob(worker_index, job.get()); });
  if (!admitted.ok()) {
    metrics_.RecordRejected();
    return admitted;
  }
  metrics_.RecordSubmitted();
  return future;
}

std::vector<util::Result<ProbeResponse>> ContainmentService::SubmitBatch(
    std::vector<ProbeRequest> batch) {
  // Admit everything up front (so the batch fills the pipeline), then wait.
  std::vector<util::Result<std::future<ProbeResponse>>> admitted;
  admitted.reserve(batch.size());
  for (ProbeRequest& request : batch) {
    admitted.push_back(Submit(std::move(request)));
  }
  std::vector<util::Result<ProbeResponse>> out;
  out.reserve(admitted.size());
  for (auto& entry : admitted) {
    if (!entry.ok()) {
      out.push_back(entry.status());
    } else {
      out.push_back(entry.value().get());
    }
  }
  return out;
}

util::Result<ProbeResponse> ContainmentService::Probe(std::string_view sparql) {
  RDFC_ASSIGN_OR_RETURN(query::BgpQuery query, Parse(sparql));
  ProbeRequest request;
  request.query = std::move(query);
  RDFC_ASSIGN_OR_RETURN(std::future<ProbeResponse> future,
                        Submit(std::move(request)));
  return future.get();
}

void ContainmentService::RunJob(std::size_t worker_index, Job* job) {
  ProbeResponse response;
  response.queue_micros = job->admitted.ElapsedMicros();

  // Deadline admission check: expired requests are answered, not run.
  if (std::chrono::steady_clock::now() >= job->request.deadline) {
    metrics_.RecordDeadlineExpired(worker_index, response.queue_micros);
    response.status = util::Status::DeadlineExceeded(
        "deadline passed before the probe was picked up");
    response.total_micros = job->admitted.ElapsedMicros();
    job->promise.set_value(std::move(response));
    return;
  }

  // Pin the current index version; everything below is lock-free reads.
  IndexManager::ReadGuard guard = manager_.Acquire(worker_index);
  response.snapshot_version = guard->version;
  const containment::PreparedProbe prepared =
      containment::PrepareProbe(job->request.query, guard->index.dict());
  const index::ProbeResult result = guard->Find(prepared, options_.probe);

  response.candidates = result.candidates;
  response.np_checks = result.np_checks;
  response.filter_micros = result.filter_micros;
  response.verify_micros = result.verify_micros;
  for (const index::ProbeMatch& match : result.contained) {
    const auto& ids = guard->index.external_ids(match.stored_id);
    response.containing_views.insert(response.containing_views.end(),
                                     ids.begin(), ids.end());
  }
  std::sort(response.containing_views.begin(),
            response.containing_views.end());
  response.containing_views.erase(std::unique(response.containing_views.begin(),
                                              response.containing_views.end()),
                                  response.containing_views.end());

  if (job->request.simulated_io_micros > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
        job->request.simulated_io_micros));
  }

  response.total_micros = job->admitted.ElapsedMicros();
  metrics_.RecordCompleted(worker_index, response.queue_micros,
                           response.filter_micros, response.verify_micros,
                           response.total_micros);
  job->promise.set_value(std::move(response));
}

}  // namespace service
}  // namespace rdfc
