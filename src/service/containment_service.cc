#include "service/containment_service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "containment/pipeline.h"
#include "query/analysis.h"
#include "util/budget.h"
#include "util/timer.h"

namespace rdfc {
namespace service {

namespace {

/// FNV-1a over the probe's pattern triples: the quarantine key.  Term ids
/// are stable for the lifetime of the service dictionary, so resubmissions
/// of the same probe text hash identically.
std::uint64_t ProbeKey(const query::BgpQuery& q) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const rdf::Triple& t : q.patterns()) {
    mix(t.s);
    mix(t.p);
    mix(t.o);
  }
  return h;
}

/// Exact pattern-list equality, guarding the batch dedup cache against FNV
/// collisions (the cache fans one probe's answer out to its twins, so a
/// false positive would be a wrong answer, not just a slow one).
bool SamePatterns(const query::BgpQuery& a, const query::BgpQuery& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const rdf::Triple& x = a.patterns()[i];
    const rdf::Triple& y = b.patterns()[i];
    if (x.s != y.s || x.p != y.p || x.o != y.o) return false;
  }
  return true;
}

}  // namespace

/// One admitted probe: the request, the promise its future watches, and the
/// stopwatch started at admission (queue wait + total latency both hang off
/// it).  Held by shared_ptr because std::function requires copyable
/// callables and std::promise is move-only.
struct ContainmentService::Job {
  ProbeRequest request;
  std::promise<ProbeResponse> promise;
  util::Timer admitted;
};

/// One admitted group (grouped SubmitBatch): all requests run as one worker
/// task against one pinned snapshot; `done` fires once per request.
struct ContainmentService::GroupJob {
  std::vector<ProbeRequest> requests;
  BatchDone done;
  util::Timer admitted;
};

ContainmentService::ContainmentService(const ServiceOptions& options)
    : options_(options),
      manager_(&dict_, options.index, options.tier),
      metrics_(options.num_threads == 0 ? 1 : options.num_threads) {
  // Compaction durations flow into the metrics from the compaction thread;
  // Shutdown() stops that thread before metrics_ can be torn down.
  manager_.set_compaction_listener(
      [this](double micros) { metrics_.RecordCompaction(micros); });
  util::ThreadPool::Options pool_options;
  pool_options.num_threads = options_.num_threads;
  pool_options.queue_capacity = options_.queue_capacity;
  pool_ = std::make_unique<util::ThreadPool>(pool_options);
  // Reader slot i belongs to worker i: registration happens before any
  // Submit can reach a worker, so slots are ready when RunJob first runs.
  for (std::size_t i = 0; i < pool_->num_threads(); ++i) {
    (void)manager_.RegisterReader();
  }
}

ContainmentService::~ContainmentService() { Shutdown(); }

void ContainmentService::Shutdown() {
  pool_->Shutdown();
  // After the probe pool: a draining compaction may still publish, which
  // probes tolerate, but the compaction listener touches metrics_, so the
  // compaction thread must be joined while everything it reaches is alive.
  manager_.StopCompaction();
}

util::Result<std::uint64_t> ContainmentService::AddView(
    std::string_view sparql) {
  util::MutexLock lock(&mutation_mu_);
  RDFC_ASSIGN_OR_RETURN(query::BgpQuery view,
                        sparql::ParseQuery(sparql, &dict_, options_.parser));
  return manager_.StageAdd(std::move(view));
}

util::Status ContainmentService::RemoveView(std::uint64_t view_id) {
  util::MutexLock lock(&mutation_mu_);
  return manager_.StageRemove(view_id);
}

util::Result<std::uint64_t> ContainmentService::Publish() {
  util::MutexLock lock(&mutation_mu_);
  auto version = manager_.Publish();
  if (version.ok()) metrics_.RecordPublish();
  return version;
}

util::Result<std::vector<std::uint64_t>> ContainmentService::PublishViews(
    const std::vector<std::string>& sparql) {
  util::MutexLock lock(&mutation_mu_);
  // Parse everything first so a bad query aborts before any staging.
  std::vector<query::BgpQuery> parsed;
  parsed.reserve(sparql.size());
  for (const std::string& text : sparql) {
    RDFC_ASSIGN_OR_RETURN(query::BgpQuery view,
                          sparql::ParseQuery(text, &dict_, options_.parser));
    parsed.push_back(std::move(view));
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(parsed.size());
  for (query::BgpQuery& view : parsed) {
    RDFC_ASSIGN_OR_RETURN(std::uint64_t id, manager_.StageAdd(std::move(view)));
    ids.push_back(id);
  }
  RDFC_ASSIGN_OR_RETURN(std::uint64_t version, manager_.Publish());
  (void)version;
  metrics_.RecordPublish();
  return ids;
}

util::Result<query::BgpQuery> ContainmentService::Parse(
    std::string_view sparql) {
  util::MutexLock lock(&mutation_mu_);
  return sparql::ParseQuery(sparql, &dict_, options_.parser);
}

util::Result<std::future<ProbeResponse>> ContainmentService::Submit(
    ProbeRequest request) {
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  std::future<ProbeResponse> future = job->promise.get_future();
  util::Status admitted = pool_->TrySubmit(
      [this, job](std::size_t worker_index) { RunJob(worker_index, job.get()); });
  if (!admitted.ok()) {
    metrics_.RecordRejected();
    return admitted;
  }
  metrics_.RecordSubmitted();
  return future;
}

std::vector<util::Result<ProbeResponse>> ContainmentService::SubmitBatch(
    std::vector<ProbeRequest> batch) {
  // Admit everything up front (so the batch fills the pipeline), then wait.
  std::vector<util::Result<std::future<ProbeResponse>>> admitted;
  admitted.reserve(batch.size());
  for (ProbeRequest& request : batch) {
    admitted.push_back(Submit(std::move(request)));
  }
  std::vector<util::Result<ProbeResponse>> out;
  out.reserve(admitted.size());
  for (auto& entry : admitted) {
    if (!entry.ok()) {
      out.push_back(entry.status());
    } else {
      out.push_back(entry.value().get());
    }
  }
  return out;
}

util::Status ContainmentService::SubmitBatch(std::vector<ProbeRequest> group,
                                             BatchDone done,
                                             double accumulation_wait_micros) {
  if (group.empty()) return util::Status::OK();
  auto job = std::make_shared<GroupJob>();
  job->requests = std::move(group);
  job->done = std::move(done);
  const std::size_t size = job->requests.size();
  util::Status admitted = pool_->TrySubmit([this, job](
      std::size_t worker_index) { RunGroup(worker_index, job.get()); });
  if (!admitted.ok()) {
    // All-or-nothing: the group held one queue slot, so every member sheds
    // together.  No callback fires — the caller fans the error out.
    for (std::size_t i = 0; i < size; ++i) metrics_.RecordRejected();
    return admitted;
  }
  for (std::size_t i = 0; i < size; ++i) metrics_.RecordSubmitted();
  metrics_.RecordBatch(size, accumulation_wait_micros);
  return util::Status::OK();
}

util::Result<ProbeResponse> ContainmentService::Probe(std::string_view sparql) {
  RDFC_ASSIGN_OR_RETURN(query::BgpQuery query, Parse(sparql));
  ProbeRequest request;
  request.query = std::move(query);
  RDFC_ASSIGN_OR_RETURN(std::future<ProbeResponse> future,
                        Submit(std::move(request)));
  return future.get();
}

bool ContainmentService::CheckQuarantined(std::uint64_t probe_key) {
  if (options_.quarantine_threshold == 0) return false;
  util::MutexLock lock(&quarantine_mu_);
  auto it = offenders_.find(probe_key);
  if (it == offenders_.end()) return false;
  if (it->second.consecutive_degraded < options_.quarantine_threshold) {
    return false;
  }
  if (std::chrono::steady_clock::now() >= it->second.cooldown_until) {
    // Cooldown over: give the probe another chance (its counter stays at
    // the threshold, so one more degraded outcome re-arms the breaker
    // immediately, while a healthy run clears it).
    return false;
  }
  return true;
}

void ContainmentService::NoteDegraded(std::uint64_t probe_key) {
  if (options_.quarantine_threshold == 0) return;
  util::MutexLock lock(&quarantine_mu_);
  Offender& offender = offenders_[probe_key];
  ++offender.consecutive_degraded;
  if (offender.consecutive_degraded >= options_.quarantine_threshold) {
    offender.cooldown_until =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(static_cast<std::int64_t>(
            options_.quarantine_cooldown_micros));
  }
}

void ContainmentService::NoteHealthy(std::uint64_t probe_key) {
  if (options_.quarantine_threshold == 0) return;
  util::MutexLock lock(&quarantine_mu_);
  offenders_.erase(probe_key);
}

void ContainmentService::RunJob(std::size_t worker_index, Job* job) {
  // Pin the current index version; everything below is lock-free reads.
  const IndexManager::ReadGuard guard = manager_.Acquire(worker_index);
  job->promise.set_value(
      ExecuteOne(worker_index, job->request, guard, job->admitted));
}

ProbeResponse ContainmentService::ExecuteOne(
    std::size_t worker_index, const ProbeRequest& request,
    const IndexManager::ReadGuard& guard, const util::Timer& admitted) {
  ProbeResponse response;
  response.queue_micros = admitted.ElapsedMicros();

  // Deadline admission check: expired requests are answered, not run.
  // Distinct from mid-probe budget expiry — here no work has started, so
  // the honest answer is DeadlineExceeded, not a degraded result.
  if (std::chrono::steady_clock::now() >= request.deadline) {
    metrics_.RecordDeadlineExpired(worker_index, response.queue_micros);
    response.status = util::Status::DeadlineExceeded(
        "deadline passed before the probe was picked up");
    response.total_micros = admitted.ElapsedMicros();
    return response;
  }

  // Circuit breaker: a probe that repeatedly degrades is short-circuited to
  // an (empty, maximally degraded) response for the cooldown window instead
  // of burning a worker on work known to blow its budget.
  const std::uint64_t probe_key = ProbeKey(request.query);
  if (CheckQuarantined(probe_key)) {
    response.degraded = true;
    response.quarantined = true;
    response.total_micros = admitted.ElapsedMicros();
    metrics_.RecordQuarantined(worker_index, response.queue_micros,
                               response.total_micros);
    return response;
  }

  // The probe budget: the request deadline, tightened by the service-wide
  // per-probe timeout when one is configured.
  util::ProbeBudget budget = util::ProbeBudget::AtDeadline(request.deadline);
  if (options_.probe_timeout_micros > 0.0) {
    const util::ProbeBudget capped =
        util::ProbeBudget::AfterMicros(options_.probe_timeout_micros);
    if (!budget.has_deadline() || capped.deadline() < budget.deadline()) {
      budget = capped;
    }
  }
  index::ProbeOptions probe_options = options_.probe;
  probe_options.budget = &budget;

  response.snapshot_version = guard->version;
  const containment::PreparedProbe prepared =
      containment::PrepareProbe(request.query, guard->dict());
  // Fan the probe out across the snapshot's shards on our own worker pool
  // (TrySubmit never blocks: under saturation the helpers shed and this
  // worker walks every shard inline, so probes can't deadlock on probes).
  // The preferred shard is the probe's own routing signature — the network
  // front end already computed it as the batching key; compute it here
  // otherwise.
  const std::uint64_t signature =
      request.has_anchor_signature
          ? request.anchor_signature
          : query::AnchorSignature(request.query, guard->dict());
  ProbeFanout fanout;
  const index::ProbeResult result = guard->FindParallel(
      prepared, probe_options, pool_.get(),
      static_cast<std::size_t>(signature % guard->num_shards()), &fanout);
  metrics_.RecordFanout(worker_index, fanout.parallel_walkers);

  response.candidates = result.candidates;
  response.np_checks = result.np_checks;
  response.filter_micros = result.filter_micros;
  response.verify_micros = result.verify_micros;
  response.degraded = result.degraded();
  // Stored ids in a merged result are tier-tagged; AppendViewIds resolves
  // them against the right tier and masks tombstoned base ids.
  for (const index::ProbeMatch& match : result.contained) {
    guard->AppendViewIds(match.stored_id, &response.containing_views);
  }
  std::sort(response.containing_views.begin(),
            response.containing_views.end());
  response.containing_views.erase(std::unique(response.containing_views.begin(),
                                              response.containing_views.end()),
                                  response.containing_views.end());
  for (std::uint32_t stored_id : result.unverified) {
    guard->AppendViewIds(stored_id, &response.unverified_views);
  }
  std::sort(response.unverified_views.begin(), response.unverified_views.end());
  response.unverified_views.erase(
      std::unique(response.unverified_views.begin(),
                  response.unverified_views.end()),
      response.unverified_views.end());

  if (request.simulated_io_micros > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
        request.simulated_io_micros));
  }

  response.total_micros = admitted.ElapsedMicros();
  if (response.degraded) {
    NoteDegraded(probe_key);
    metrics_.RecordDegraded(worker_index, response.queue_micros,
                            response.filter_micros, response.verify_micros,
                            response.total_micros);
  } else {
    NoteHealthy(probe_key);
    metrics_.RecordCompleted(worker_index, response.queue_micros,
                             response.filter_micros, response.verify_micros,
                             response.total_micros);
  }
  return response;
}

void ContainmentService::RunGroup(std::size_t worker_index, GroupJob* group) {
  // One snapshot pin for the whole group: siblings provably answer against
  // the same index version, and the walk scratch stays warm across them.
  const IndexManager::ReadGuard guard = manager_.Acquire(worker_index);

  // Intra-group dedup: the first clean (completed, undegraded) answer for a
  // pattern-identical probe is fanned out to later twins without another
  // walk.  Keyed by the probe FNV hash, confirmed by exact pattern equality.
  // Degraded / quarantined / expired outcomes are never cached, so dedup
  // can only ever substitute a full answer for a full answer.
  std::unordered_map<std::uint64_t, std::size_t> exemplar_of;
  std::vector<ProbeResponse> finished(group->requests.size());

  for (std::size_t i = 0; i < group->requests.size(); ++i) {
    const ProbeRequest& request = group->requests[i];
    const std::uint64_t key = ProbeKey(request.query);
    const auto it = exemplar_of.find(key);
    if (it != exemplar_of.end() &&
        std::chrono::steady_clock::now() < request.deadline &&
        SamePatterns(group->requests[it->second].query, request.query)) {
      const ProbeResponse& exemplar = finished[it->second];
      ProbeResponse response;
      response.queue_micros = group->admitted.ElapsedMicros();
      response.snapshot_version = exemplar.snapshot_version;
      response.containing_views = exemplar.containing_views;
      response.unverified_views = exemplar.unverified_views;
      response.candidates = exemplar.candidates;
      response.np_checks = exemplar.np_checks;
      response.total_micros = group->admitted.ElapsedMicros();
      metrics_.RecordCompleted(worker_index, response.queue_micros,
                               /*filter_micros=*/0.0, /*verify_micros=*/0.0,
                               response.total_micros);
      metrics_.RecordBatchDedup();
      group->done(i, std::move(response));
      continue;
    }
    ProbeResponse response =
        ExecuteOne(worker_index, request, guard, group->admitted);
    if (response.status.ok() && !response.degraded && !response.quarantined) {
      exemplar_of.emplace(key, i);
      finished[i] = response;
    }
    group->done(i, std::move(response));
  }
}

}  // namespace service
}  // namespace rdfc
