#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/mv_index.h"
#include "index/walk_stats.h"
#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "service/index_manager.h"
#include "service/metrics.h"
#include "sparql/parser.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rdfc {
namespace service {

struct ServiceOptions {
  /// Probe workers (also the metrics shard and reader-slot count).
  std::size_t num_threads = 4;
  /// Bounded admission queue; a full queue sheds with ResourceExhausted.
  std::size_t queue_capacity = 1024;
  index::ProbeOptions probe;
  index::IndexOptions index;
  sparql::ParserOptions parser;
  /// Tiered write path (DESIGN.md "Tiered write path"): Publish builds only
  /// the delta tier; compaction merges it into the frozen base in the
  /// background.  `tier.background_compaction = false` disables automatic
  /// refreezes — with no Refreeze() call that is the pure pointer-tree
  /// configuration, for A/B comparison.
  TierOptions tier;
  /// Per-probe compute budget applied even to requests without a deadline
  /// (0 = none).  With a deadline, the earlier of the two wins.  Expiry
  /// mid-probe yields the Degraded outcome, never a hang (DESIGN.md
  /// "Resilience").
  double probe_timeout_micros = 0.0;
  /// Circuit breaker for repeat offenders: after this many consecutive
  /// degraded outcomes for the same probe (keyed by its serialisation
  /// hash), further submissions short-circuit straight to a degraded
  /// response for `quarantine_cooldown_micros`.  0 disables the breaker.
  std::size_t quarantine_threshold = 2;
  double quarantine_cooldown_micros = 250000.0;  // 250 ms
};

struct ProbeRequest {
  query::BgpQuery query;
  /// Absolute deadline, checked when a worker dequeues the request: expired
  /// requests get DeadlineExceeded without running the probe.  Default: none.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Optional precomputed query::AnchorSignature of `query` — the network
  /// front end already computes it as its batching key, so it passes the
  /// value down instead of having the worker rehash.  Used to pick the
  /// probe's *preferred* shard (walked first in the fan-out); purely a
  /// latency hint, never a pruning decision.  When unset the worker computes
  /// the signature itself.
  std::uint64_t anchor_signature = 0;
  bool has_anchor_signature = false;
  /// Simulated downstream work per probe (result materialisation / client
  /// I/O), slept after the containment check.  Models the latency-bound
  /// serving regime in bench_concurrent and gives tests a deterministic way
  /// to hold workers busy; 0 for pure CPU-bound probing.
  double simulated_io_micros = 0.0;
};

struct ProbeResponse {
  util::Status status;               // OK or DeadlineExceeded
  std::uint64_t snapshot_version = 0;
  /// External ids (AddView handles) of every published view containing the
  /// probe, deduplicated, ascending.  Every entry is backed by a verified
  /// containment certificate — even on degraded responses.
  std::vector<std::uint64_t> containing_views;
  /// Degraded responses only: external ids of views whose PTime filter
  /// passed but whose NP verification the budget cut short.  A sound
  /// over-approximation of what may be missing from containing_views.
  std::vector<std::uint64_t> unverified_views;
  /// The budget expired mid-probe: containing_views is sound but possibly
  /// incomplete (status stays OK; the metrics count it separately).
  bool degraded = false;
  /// The quarantine circuit breaker short-circuited this probe without
  /// running it (always reported degraded).
  bool quarantined = false;
  std::size_t candidates = 0;
  std::size_t np_checks = 0;
  double queue_micros = 0.0;
  double filter_micros = 0.0;
  double verify_micros = 0.0;
  double total_micros = 0.0;  // admission to response
};

/// The concurrent containment-probing front end (DESIGN.md "Service layer").
///
/// Serving pattern: view-set changes are staged and published as immutable
/// index versions (IndexManager); probes are admitted into a bounded queue
/// and executed by a worker pool, each worker pinning the current version
/// lock-free for the duration of one probe.  Under overload the service
/// sheds load at admission — Submit returns ResourceExhausted, it never
/// blocks and never drops silently.
///
/// Threading: every public method is safe to call from any thread.  View
/// mutations, Parse, and Publish serialize on an internal mutation mutex
/// (they intern into the shared dictionary — the single-writer side of the
/// rdf::TermDictionary contract); Submit and the probe path never touch that
/// mutex.
class ContainmentService {
 public:
  explicit ContainmentService(const ServiceOptions& options = {});
  ~ContainmentService();  // Shutdown()
  RDFC_DISALLOW_COPY_AND_ASSIGN(ContainmentService);

  // ------------------------------------------------------------------
  // View management (writer side)
  // ------------------------------------------------------------------

  /// Parses and stages a view; returns its id.  Not probe-visible until
  /// Publish.
  [[nodiscard]] util::Result<std::uint64_t> AddView(std::string_view sparql)
      RDFC_EXCLUDES(mutation_mu_);

  /// Stages removal of a view (effective at the next Publish).
  [[nodiscard]] util::Status RemoveView(std::uint64_t view_id)
      RDFC_EXCLUDES(mutation_mu_);

  /// Atomically publishes every staged change as a new index version and
  /// returns its number.  Probes in flight finish against the version they
  /// pinned; later probes see the new one.
  [[nodiscard]] util::Result<std::uint64_t> Publish()
      RDFC_EXCLUDES(mutation_mu_);

  /// AddView for each query, then one Publish; returns the view ids.  Any
  /// parse failure aborts before anything is staged.
  [[nodiscard]] util::Result<std::vector<std::uint64_t>> PublishViews(
      const std::vector<std::string>& sparql) RDFC_EXCLUDES(mutation_mu_);

  /// Synchronously compacts the delta tier into a new frozen base and
  /// publishes the result as a new version (IndexManager::Refreeze).  The
  /// merge re-inserts only previously-prepared views, so it does not intern
  /// and deliberately does NOT hold the mutation mutex — staging and
  /// publishing may proceed while the merge builds.
  [[nodiscard]] util::Result<std::uint64_t> Refreeze() {
    return manager_.Refreeze();
  }

  /// Opens the write-ahead journal and replays it over the current state
  /// (IndexManager::EnableJournal), under the mutation mutex — replay
  /// interns terms, and the lock also makes the *recovering* window
  /// observable: Parse/AddView block behind it while kPing/kHealth stay
  /// responsive, which is exactly the liveness/readiness split the health
  /// endpoint reports.  Call during startup, after any restore; bracket with
  /// set_recovering(true/false) so health probes see the state.
  [[nodiscard]] util::Status EnableJournal(
      const index::JournalOptions& options, std::string checkpoint_path = "")
      RDFC_EXCLUDES(mutation_mu_) {
    util::MutexLock lock(&mutation_mu_);
    return manager_.EnableJournal(options, std::move(checkpoint_path));
  }

  /// Readiness flag (DESIGN.md "Durability": recovery state machine).  True
  /// while startup recovery (restore + journal replay) is in flight: the
  /// process is *live* (answers kPing/kHealth) but not *ready* (mutations
  /// and probes may stall behind recovery; answers served from restored
  /// bases may predate journalled writes).  Flipped by the startup path,
  /// read by the health endpoint and Metrics().
  void set_recovering(bool recovering) {
    recovering_.store(recovering, std::memory_order_release);
  }
  bool recovering() const {
    return recovering_.load(std::memory_order_acquire);
  }

  // ------------------------------------------------------------------
  // Probing (reader side)
  // ------------------------------------------------------------------

  /// Parses probe text against the service dictionary (interns, so it takes
  /// the mutation mutex — microseconds; the probe itself never does).
  [[nodiscard]] util::Result<query::BgpQuery> Parse(std::string_view sparql)
      RDFC_EXCLUDES(mutation_mu_);

  /// Admits one probe.  Returns the response future, or ResourceExhausted
  /// when the queue is full / InvalidArgument after Shutdown.
  [[nodiscard]] util::Result<std::future<ProbeResponse>> Submit(
      ProbeRequest request);

  /// Admits a batch and waits for all admitted requests.  Per-request
  /// results: rejected requests carry the admission error, admitted ones the
  /// worker's response (itself possibly DeadlineExceeded).
  std::vector<util::Result<ProbeResponse>> SubmitBatch(
      std::vector<ProbeRequest> batch);

  /// Per-request completion callback of the grouped SubmitBatch.  `index`
  /// is the request's position in the submitted group.  Invoked from a
  /// worker thread, once per request, in group order.
  using BatchDone =
      std::function<void(std::size_t index, ProbeResponse response)>;

  /// Grouped batch admission (the network front end's anchor-signature
  /// batching, DESIGN.md "Network front end").  The whole group occupies ONE
  /// queue slot and runs as one worker task pinning ONE snapshot; identical
  /// probes inside the group are answered once and fanned out to their
  /// siblings (batch_dedup_hits).  Admission is all-or-nothing: on
  /// ResourceExhausted / shutdown no callback fires and the caller owns the
  /// per-request error fan-out.  Per-request outcomes stay isolated — an
  /// expired or quarantined request never affects its siblings.
  /// `accumulation_wait_micros` is how long the oldest request waited in the
  /// caller's batching window (metrics only).
  [[nodiscard]] util::Status SubmitBatch(std::vector<ProbeRequest> group,
                                         BatchDone done,
                                         double accumulation_wait_micros = 0.0);

  /// Parse + Submit + wait: the one-call convenience used by rdfc_serve.
  [[nodiscard]] util::Result<ProbeResponse> Probe(std::string_view sparql);

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  /// Counter/latency fold plus the tier gauges sampled from the manager
  /// (base/delta/tombstone breakdown, lifetime compaction count, and the
  /// per-shard split) and the probe-walk scratch high-water marks.
  MetricsSnapshot Metrics() const {
    MetricsSnapshot snapshot = metrics_.Snapshot();
    IndexManager::TierStats tiers = manager_.tier_stats();
    snapshot.base_views = tiers.base_views;
    snapshot.delta_views = tiers.delta_views;
    snapshot.tombstones = tiers.tombstones;
    snapshot.compactions = tiers.compactions;
    snapshot.index_shards.reserve(tiers.shards.size());
    for (const IndexManager::ShardStats& shard : tiers.shards) {
      MetricsSnapshot::IndexShard out;
      out.views = shard.views;
      out.base_views = shard.base_views;
      out.delta_views = shard.delta_views;
      out.tombstones = shard.tombstones;
      out.refreezes = shard.refreezes;
      snapshot.index_shards.push_back(out);
    }
    const index::WalkScratchStats scratch = index::SampleWalkScratchStats();
    snapshot.scratch_frame_high_water = scratch.frame_high_water;
    snapshot.scratch_states_high_water = scratch.states_high_water;
    snapshot.scratch_spare_high_water = scratch.spare_high_water;
    snapshot.journal_enabled = manager_.journal_enabled();
    if (snapshot.journal_enabled) {
      const index::JournalStats journal = manager_.journal_stats();
      snapshot.journal_appends = journal.records_appended;
      snapshot.journal_fsyncs = journal.fsyncs;
      snapshot.journal_replayed_records = journal.records_replayed;
      snapshot.journal_replayed_ops = journal.ops_replayed;
      snapshot.journal_truncated_bytes = journal.truncated_bytes;
      snapshot.journal_last_sequence = journal.last_sequence;
      snapshot.journal_degraded = journal.degraded;
    }
    snapshot.recovering = recovering();
    return snapshot;
  }
  std::uint64_t current_version() const { return manager_.current_version(); }
  std::size_t num_live_views() const { return manager_.num_live_views(); }
  IndexManager& manager() { return manager_; }

  /// The raw metrics sink, for the net front end to record connection and
  /// framing events against (so one snapshot covers service + network).
  ServiceMetrics* mutable_metrics() { return &metrics_; }

  /// The shared dictionary, for single-threaded setup (workload generation)
  /// before serving starts.  While probes may be in flight, intern only via
  /// Parse/AddView — they hold the mutation mutex this accessor bypasses.
  rdf::TermDictionary* mutable_dict() { return &dict_; }

  /// Stops intake (further Submits fail), drains accepted probes, joins the
  /// workers.  Idempotent.
  void Shutdown();

 private:
  struct Job;
  struct GroupJob;
  void RunJob(std::size_t worker_index, Job* job);
  void RunGroup(std::size_t worker_index, GroupJob* group);
  /// The per-request execution path shared by RunJob and RunGroup: deadline
  /// admission check, quarantine breaker, budgeted probe against the pinned
  /// snapshot, metrics.  `admitted` is the stopwatch started at admission.
  ProbeResponse ExecuteOne(std::size_t worker_index,
                           const ProbeRequest& request,
                           const IndexManager::ReadGuard& guard,
                           const util::Timer& admitted);

  /// Quarantine circuit breaker (DESIGN.md "Resilience").  Keyed by the
  /// FNV hash of the probe's pattern serialisation; an entry trips after
  /// `quarantine_threshold` consecutive degraded outcomes and short-circuits
  /// submissions for the cooldown window.  A completed (undegraded) probe
  /// clears its key.
  bool CheckQuarantined(std::uint64_t probe_key)
      RDFC_EXCLUDES(quarantine_mu_);
  void NoteDegraded(std::uint64_t probe_key) RDFC_EXCLUDES(quarantine_mu_);
  void NoteHealthy(std::uint64_t probe_key) RDFC_EXCLUDES(quarantine_mu_);

  struct Offender {
    std::size_t consecutive_degraded = 0;
    std::chrono::steady_clock::time_point cooldown_until{};
  };

  ServiceOptions options_;
  /// Probes read the dictionary lock-free through their pinned snapshot;
  /// every write (interning) happens under mutation_mu_ — the single-writer
  /// side of the rdf::TermDictionary contract.  The object itself cannot be
  /// RDFC_GUARDED_BY without locking the readers, so the read side is
  /// covered by the TSan CI job instead.
  rdf::TermDictionary dict_;
  IndexManager manager_;
  ServiceMetrics metrics_;
  /// Readiness: true while startup recovery runs (see set_recovering).
  std::atomic<bool> recovering_{false};
  util::Mutex mutation_mu_;  // serializes dictionary writers (parse/stage)
  util::Mutex quarantine_mu_;
  std::unordered_map<std::uint64_t, Offender> offenders_
      RDFC_GUARDED_BY(quarantine_mu_);
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace service
}  // namespace rdfc
