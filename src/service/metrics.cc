#include "service/metrics.h"

#include <iomanip>
#include <sstream>

namespace rdfc {
namespace service {

namespace {

void AppendStageJson(std::ostringstream* os, const char* name,
                     const util::LatencyHistogram& h) {
  *os << '"' << name << "\":{\"count\":" << h.count()
      << ",\"mean_us\":" << h.mean() << ",\"p50_us\":" << h.Percentile(50)
      << ",\"p95_us\":" << h.Percentile(95)
      << ",\"p99_us\":" << h.Percentile(99) << '}';
}

void PrintStageRow(std::ostream& os, const char* name,
                   const util::LatencyHistogram& h) {
  os << "  " << std::left << std::setw(8) << name << std::right
     << std::setw(10) << h.count() << std::setw(12) << std::fixed
     << std::setprecision(1) << h.mean() << std::setw(12) << h.Percentile(50)
     << std::setw(12) << h.Percentile(95) << std::setw(12) << h.Percentile(99)
     << '\n';
}

}  // namespace

void MetricsSnapshot::Print(std::ostream& os) const {
  os << "service counters\n"
     << "  submitted         " << submitted << '\n'
     << "  completed         " << completed << '\n'
     << "  degraded          " << degraded << '\n'
     << "  quarantined       " << quarantined << '\n'
     << "  rejected          " << rejected << '\n'
     << "  deadline_expired  " << deadline_expired << '\n'
     << "  publishes         " << publishes << '\n'
     << "  compactions       " << compactions << '\n'
     << "  direct_routed     " << direct_routed << '\n'
     << "  recovering        " << (recovering ? "yes" : "no") << '\n'
     << "index tiers\n"
     << "  base_views        " << base_views << '\n'
     << "  delta_views       " << delta_views << '\n'
     << "  tombstones        " << tombstones << '\n';
  if (!index_shards.empty()) {
    os << "index shards        views        base       delta       tombs"
          "   refreezes\n";
    for (std::size_t i = 0; i < index_shards.size(); ++i) {
      const IndexShard& sh = index_shards[i];
      os << "  shard " << std::left << std::setw(6) << i << std::right
         << std::setw(11) << sh.views << std::setw(12) << sh.base_views
         << std::setw(12) << sh.delta_views << std::setw(12) << sh.tombstones
         << std::setw(12) << sh.refreezes << '\n';
    }
  }
  if (journal_enabled) {
    os << "journal\n"
       << "  appends           " << journal_appends << '\n'
       << "  fsyncs            " << journal_fsyncs << '\n'
       << "  replayed_records  " << journal_replayed_records << '\n'
       << "  replayed_ops      " << journal_replayed_ops << '\n'
       << "  truncated_bytes   " << journal_truncated_bytes << '\n'
       << "  last_sequence     " << journal_last_sequence << '\n'
       << "  degraded          " << (journal_degraded ? "yes" : "no") << '\n';
  }
  os << "probe scratch high-water\n"
     << "  frames            " << scratch_frame_high_water << '\n'
     << "  states            " << scratch_states_high_water << '\n'
     << "  spares            " << scratch_spare_high_water << '\n'
     << "network\n"
     << "  conns_accepted    " << connections_accepted << '\n'
     << "  conns_open        " << connections_open << '\n'
     << "  bytes_in          " << net_bytes_in << '\n'
     << "  bytes_out         " << net_bytes_out << '\n'
     << "  protocol_errors   " << net_protocol_errors << '\n'
     << "batching\n"
     << "  batches           " << batches << '\n'
     << "  batch_requests    " << batch_requests << '\n'
     << "  batch_dedup_hits  " << batch_dedup_hits << '\n'
     << "latency (us)   count        mean         p50         p95         p99\n";
  PrintStageRow(os, "queue", queue_micros);
  PrintStageRow(os, "filter", filter_micros);
  PrintStageRow(os, "verify", verify_micros);
  PrintStageRow(os, "total", total_micros);
  PrintStageRow(os, "degraded", degraded_micros);
  PrintStageRow(os, "compact", compaction_micros);
  PrintStageRow(os, "bwait", batch_wait_micros);
  if (fanout_width.count() > 0) {
    // fanout_width reuses the histogram machinery with value = walker count.
    os << "fanout width   count        mean         p50         p95"
          "         p99\n";
    PrintStageRow(os, "width", fanout_width);
  }
  if (batch_size.count() > 0) {
    // batch_size reuses the histogram machinery with value = group size.
    os << "batch size     count        mean         p50         p95"
          "         p99\n";
    PrintStageRow(os, "bsize", batch_size);
  }
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"submitted\":" << submitted << ",\"completed\":" << completed
     << ",\"degraded\":" << degraded << ",\"quarantined\":" << quarantined
     << ",\"rejected\":" << rejected
     << ",\"deadline_expired\":" << deadline_expired
     << ",\"publishes\":" << publishes
     << ",\"compactions\":" << compactions
     << ",\"direct_routed\":" << direct_routed
     << ",\"recovering\":" << (recovering ? "true" : "false")
     << ",\"journal\":{\"enabled\":" << (journal_enabled ? "true" : "false")
     << ",\"appends\":" << journal_appends
     << ",\"fsyncs\":" << journal_fsyncs
     << ",\"replayed_records\":" << journal_replayed_records
     << ",\"replayed_ops\":" << journal_replayed_ops
     << ",\"truncated_bytes\":" << journal_truncated_bytes
     << ",\"last_sequence\":" << journal_last_sequence
     << ",\"degraded\":" << (journal_degraded ? "true" : "false")
     << "},\"tiers\":{\"base_views\":"
     << base_views << ",\"delta_views\":" << delta_views
     << ",\"tombstones\":" << tombstones << "},\"shards\":[";
  for (std::size_t i = 0; i < index_shards.size(); ++i) {
    const IndexShard& sh = index_shards[i];
    if (i > 0) os << ',';
    os << "{\"views\":" << sh.views << ",\"base_views\":" << sh.base_views
       << ",\"delta_views\":" << sh.delta_views
       << ",\"tombstones\":" << sh.tombstones
       << ",\"refreezes\":" << sh.refreezes << '}';
  }
  os << "],\"scratch\":{\"frame_high_water\":" << scratch_frame_high_water
     << ",\"states_high_water\":" << scratch_states_high_water
     << ",\"spare_high_water\":" << scratch_spare_high_water
     << "},\"net\":{\"conns_accepted\":"
     << connections_accepted << ",\"conns_closed\":" << connections_closed
     << ",\"conns_open\":" << connections_open
     << ",\"bytes_in\":" << net_bytes_in << ",\"bytes_out\":" << net_bytes_out
     << ",\"protocol_errors\":" << net_protocol_errors
     << "},\"batching\":{\"batches\":" << batches
     << ",\"batch_requests\":" << batch_requests
     << ",\"batch_dedup_hits\":" << batch_dedup_hits << ',';
  AppendStageJson(&os, "batch_size", batch_size);
  os << ',';
  AppendStageJson(&os, "batch_wait", batch_wait_micros);
  os << "},";
  AppendStageJson(&os, "queue", queue_micros);
  os << ',';
  AppendStageJson(&os, "filter", filter_micros);
  os << ',';
  AppendStageJson(&os, "verify", verify_micros);
  os << ',';
  AppendStageJson(&os, "total", total_micros);
  os << ',';
  AppendStageJson(&os, "degraded", degraded_micros);
  os << ',';
  AppendStageJson(&os, "compact", compaction_micros);
  os << ',';
  AppendStageJson(&os, "fanout", fanout_width);
  os << '}';
  return os.str();
}

ServiceMetrics::ServiceMetrics(std::size_t num_worker_shards)
    : num_shards_(num_worker_shards == 0 ? 1 : num_worker_shards),
      shards_(std::make_unique<Shard[]>(num_shards_)) {}

/// Out-of-range shard indices used to alias silently into `shard %
/// num_shards_`, folding one worker's latencies into another's histogram;
/// the recorders now require a valid index (callers pass the pool's
/// worker_index, which the service sizes the shard array to).
void ServiceMetrics::RecordCompleted(std::size_t shard, double queue_micros,
                                     double filter_micros,
                                     double verify_micros,
                                     double total_micros) RDFC_READPATH {
  RDFC_CHECK(shard < num_shards_);
  Shard& s = shards_[shard];
  s.completed.fetch_add(1, std::memory_order_relaxed);
  s.queue.Record(queue_micros);
  s.filter.Record(filter_micros);
  s.verify.Record(verify_micros);
  s.total.Record(total_micros);
}

void ServiceMetrics::RecordDegraded(std::size_t shard, double queue_micros,
                                    double filter_micros, double verify_micros,
                                    double total_micros) RDFC_READPATH {
  RDFC_CHECK(shard < num_shards_);
  Shard& s = shards_[shard];
  s.degraded.fetch_add(1, std::memory_order_relaxed);
  s.queue.Record(queue_micros);
  s.filter.Record(filter_micros);
  s.verify.Record(verify_micros);
  s.degraded_total.Record(total_micros);
}

void ServiceMetrics::RecordQuarantined(std::size_t shard, double queue_micros,
                                       double total_micros) RDFC_READPATH {
  RDFC_CHECK(shard < num_shards_);
  Shard& s = shards_[shard];
  s.quarantined.fetch_add(1, std::memory_order_relaxed);
  s.queue.Record(queue_micros);
  s.degraded_total.Record(total_micros);
}

void ServiceMetrics::RecordDeadlineExpired(std::size_t shard,
                                           double queue_micros) RDFC_READPATH {
  RDFC_CHECK(shard < num_shards_);
  Shard& s = shards_[shard];
  s.deadline_expired.fetch_add(1, std::memory_order_relaxed);
  s.queue.Record(queue_micros);
}

void ServiceMetrics::RecordFanout(std::size_t shard,
                                  std::uint32_t walkers) RDFC_READPATH {
  RDFC_CHECK(shard < num_shards_);
  Shard& s = shards_[shard];
  s.fanout.Record(static_cast<double>(walkers));
  if (walkers <= 1) s.direct_routed.fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  MetricsSnapshot out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.publishes = publishes_.load(std::memory_order_relaxed);
  out.compactions = compactions_.load(std::memory_order_relaxed);
  compaction_.MergeInto(&out.compaction_micros);
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  out.connections_open = out.connections_accepted >= out.connections_closed
                             ? out.connections_accepted - out.connections_closed
                             : 0;
  out.net_bytes_in = net_bytes_in_.load(std::memory_order_relaxed);
  out.net_bytes_out = net_bytes_out_.load(std::memory_order_relaxed);
  out.net_protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.batch_requests = batch_requests_.load(std::memory_order_relaxed);
  out.batch_dedup_hits = batch_dedup_hits_.load(std::memory_order_relaxed);
  batch_size_.MergeInto(&out.batch_size);
  batch_wait_.MergeInto(&out.batch_wait_micros);
  for (std::size_t i = 0; i < num_shards_; ++i) {
    const Shard& s = shards_[i];
    out.completed += s.completed.load(std::memory_order_relaxed);
    out.degraded += s.degraded.load(std::memory_order_relaxed);
    out.quarantined += s.quarantined.load(std::memory_order_relaxed);
    out.deadline_expired += s.deadline_expired.load(std::memory_order_relaxed);
    s.queue.MergeInto(&out.queue_micros);
    s.filter.MergeInto(&out.filter_micros);
    s.verify.MergeInto(&out.verify_micros);
    s.total.MergeInto(&out.total_micros);
    s.degraded_total.MergeInto(&out.degraded_micros);
    s.fanout.MergeInto(&out.fanout_width);
    out.direct_routed += s.direct_routed.load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace service
}  // namespace rdfc
