#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "index/frozen_index.h"
#include "index/mv_index.h"
#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/snapshot_vector.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace rdfc {
namespace service {

/// One immutable published version of the mv-index.  Once a snapshot is
/// reachable through IndexManager::Acquire nothing ever mutates it; probes
/// run against `index` (const) with no synchronisation at all.
struct IndexSnapshot {
  explicit IndexSnapshot(rdf::TermDictionary* dict,
                         const index::IndexOptions& options)
      : index(dict, options) {}
  RDFC_DISALLOW_COPY_AND_ASSIGN(IndexSnapshot);

  std::uint64_t version = 0;
  std::size_t num_views = 0;  // live views baked into this version
  index::MvIndex index;
  /// Flat compilation of `index` (index/frozen_index.h), built at Publish
  /// unless the manager was configured not to freeze.  Probes prefer it; the
  /// pointer tree stays authoritative for introspection and the next rebuild.
  std::unique_ptr<const index::FrozenMvIndex> frozen;

  /// Probes this version — the frozen form when present, else the pointer
  /// tree.  Both walks return identical contained sets (the frozen-index
  /// equivalence invariant), so callers never branch on which one ran.
  index::ProbeResult Find(const containment::PreparedProbe& probe,
                          const index::ProbeOptions& options = {}) const {
    return frozen != nullptr ? frozen->FindContaining(probe, options)
                             : index.FindContaining(probe, options);
  }
};

/// Versioned, snapshot-isolated publication of the mv-index (DESIGN.md
/// "Service layer").
///
/// The regime is the one the paper's applications live in: probes vastly
/// outnumber view-set changes, and a probe must never block behind an
/// insert.  Writers batch Insert/Remove intents (StageAdd/StageRemove)
/// against an authoritative view list and publish a complete new MvIndex
/// version in one atomic pointer swing; readers pin a version through a
/// hazard-slot handshake and probe it lock-free.
///
/// Threading contract:
///   - Writer side — StageAdd, StageRemove, Publish, RegisterReader,
///     num_retained_versions — is internally serialized by a mutex, but the
///     caller must ALSO be the sole dictionary writer while calling it
///     (StageAdd/Publish intern terms; see rdf::TermDictionary).  The
///     containment service guarantees both with its mutation mutex.
///   - Reader side — Acquire on a registered slot — never takes a lock:
///     one seq_cst store plus the revalidation loop's loads.  Each slot
///     supports one outstanding ReadGuard at a time and is thread-affine by
///     convention (the service maps worker index -> slot index).
///
/// Memory reclamation (the argument, in full, in DESIGN.md): a reader
/// announces its candidate snapshot in its hazard slot and re-checks the
/// current pointer; the writer publishes the new version first and only then
/// sweeps the slots.  In the seq_cst total order either the reader's
/// announcement precedes the writer's sweep load (the writer sees it and
/// retains the version), or the writer's publication precedes the reader's
/// re-check (the reader observes the new pointer, abandons the stale
/// candidate and retries).  Either way no guard can hold a freed snapshot,
/// and at most `reader slots + 1` versions are ever retained.
class IndexManager {
 public:
  /// `freeze_published`: compile every published version (including the
  /// initial empty version 0) into its FrozenMvIndex at Publish time.  Off
  /// is for A/B benching the pointer-tree probe path.
  explicit IndexManager(rdf::TermDictionary* dict,
                        const index::IndexOptions& options = {},
                        bool freeze_published = true);
  ~IndexManager();
  RDFC_DISALLOW_COPY_AND_ASSIGN(IndexManager);

  // ------------------------------------------------------------------
  // Writer side
  // ------------------------------------------------------------------

  /// Stages a view for the next Publish and returns its stable external id.
  /// The view is NOT visible to probes until Publish.
  [[nodiscard]] util::Result<std::uint64_t> StageAdd(query::BgpQuery view)
      RDFC_EXCLUDES(mu_);

  /// Stages removal of a previously added view (NotFound for unknown or
  /// already-removed ids).  Takes effect at the next Publish.
  [[nodiscard]] util::Status StageRemove(std::uint64_t view_id)
      RDFC_EXCLUDES(mu_);

  /// Builds a fresh MvIndex from the authoritative live-view list and
  /// publishes it as the new current version; probes in flight keep the
  /// version they pinned.  Transactional: if any staged view fails to index,
  /// the error is returned, the current version stays, and the staged state
  /// is untouched (StageRemove the offender and retry).  Returns the new
  /// version number.  O(live views) — the cost is amortised by batching
  /// stages; see DESIGN.md for the structural-sharing alternative.
  [[nodiscard]] util::Result<std::uint64_t> Publish() RDFC_EXCLUDES(mu_);

  /// Registers a hazard slot and returns its index.  Writer-side (serialized
  /// with Publish); call once per reader thread during setup.
  std::size_t RegisterReader() RDFC_EXCLUDES(mu_);

  std::size_t num_live_views() const RDFC_EXCLUDES(mu_);
  /// Staged-but-unpublished intent count (adds + removes); 0 right after
  /// Publish.
  std::size_t num_staged_changes() const RDFC_EXCLUDES(mu_);
  /// Versions currently held alive (current + any pinned by readers).
  /// Bounded by RegisterReader count + 1.
  std::size_t num_retained_versions() const RDFC_EXCLUDES(mu_);

  // ------------------------------------------------------------------
  // Reader side
  // ------------------------------------------------------------------

  /// Pins the current snapshot for the guard's lifetime.  Lock-free; see the
  /// class comment.  One outstanding guard per slot.
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& other) noexcept
        : slot_(other.slot_), snapshot_(other.snapshot_) {
      other.slot_ = nullptr;
      other.snapshot_ = nullptr;
    }
    ReadGuard& operator=(ReadGuard&&) = delete;
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() { Release(); }

    const IndexSnapshot& operator*() const { return *snapshot_; }
    const IndexSnapshot* operator->() const { return snapshot_; }

   private:
    friend class IndexManager;
    struct Slot;
    ReadGuard(const Slot* slot, const IndexSnapshot* snapshot)
        : slot_(slot), snapshot_(snapshot) {}
    void Release();

    const Slot* slot_;
    const IndexSnapshot* snapshot_;
  };

  ReadGuard Acquire(std::size_t reader_slot);

  /// Version a probe submitted right now would see.  Reader-side.
  std::uint64_t current_version() const {
    return current_.load(std::memory_order_acquire)->version;
  }

 private:
  struct ViewRecord {
    std::uint64_t id = 0;
    query::BgpQuery query;
    bool alive = true;
  };

  /// Sweeps the hazard slots and frees every retired version no reader has
  /// pinned.
  void ReclaimLocked() RDFC_REQUIRES(mu_);

  /// Interned into by StageAdd/Publish; the dereference (not the pointer)
  /// rides the writer mutex — the dictionary's single-writer side.
  rdf::TermDictionary* dict_ RDFC_PT_GUARDED_BY(mu_);
  index::IndexOptions options_;
  bool freeze_published_;

  mutable util::Mutex mu_;  // writer-side state below
  /// Authoritative view list; rebuilt into snapshots.
  std::vector<ViewRecord> views_ RDFC_GUARDED_BY(mu_);
  std::size_t num_live_views_ RDFC_GUARDED_BY(mu_) = 0;
  /// Intents since last Publish.
  std::size_t num_staged_ RDFC_GUARDED_BY(mu_) = 0;
  std::uint64_t next_view_id_ RDFC_GUARDED_BY(mu_) = 1;
  std::uint64_t next_version_ RDFC_GUARDED_BY(mu_) = 0;
  /// Retained versions (current + reader-pinned).
  std::vector<std::unique_ptr<const IndexSnapshot>> versions_
      RDFC_GUARDED_BY(mu_);

  // Reader slots: appended under mu_ (RegisterReader), accessed lock-free by
  // their owning reader thread and swept by the writer.
  util::SnapshotVector<ReadGuard::Slot> slots_;

  std::atomic<const IndexSnapshot*> current_{nullptr};
};

/// One hazard slot, cache-line padded so readers on different slots never
/// share a line.  nullptr = the reader holds no snapshot.
struct alignas(64) IndexManager::ReadGuard::Slot {
  mutable std::atomic<const IndexSnapshot*> hazard{nullptr};
};

}  // namespace service
}  // namespace rdfc
