#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "containment/pipeline.h"
#include "index/frozen_index.h"
#include "index/journal.h"
#include "index/mv_index.h"
#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "util/macros.h"
#include "util/mutex.h"
#include "util/snapshot_vector.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace rdfc {
namespace service {

/// Tiered write-path knobs (DESIGN.md "Tiered write path" and "Sharded
/// index").
///
/// Publish builds only the *delta* tier of the shards a write batch touched
/// — the views staged since the last refreeze — so its cost is O(dirty
/// shards' deltas), independent of how many views the frozen bases hold.
/// Compaction (background or explicit Refreeze) merges each dirty shard's
/// delta into a new frozen base for that shard off the write path.
struct TierOptions {
  /// Schedule a background compaction after a Publish that leaves the delta
  /// tiers over either trigger below.  Off = compaction only via Refreeze(),
  /// which also serves as the pure pointer-tree A/B configuration: with no
  /// compaction the bases never materialise and every probe walks deltas.
  bool background_compaction = true;
  /// Compact when delta views + tombstones (summed across shards) reach this
  /// count (0 disables).
  std::size_t compact_min_delta_views = 1024;
  /// Compact when delta views + tombstones exceed this fraction of the base
  /// (0 disables; inactive until a base exists).
  double compact_min_delta_fraction = 0.25;
  /// Index shards: views are routed by AnchorSignature(view) % num_shards,
  /// so a write batch sharing a signature dirties — and refreezes — exactly
  /// one shard, and a probe fans out across the populated shards.  Clamped
  /// to [1, IndexSnapshot::kMaxShards]; 1 reproduces the unsharded index
  /// bit-for-bit (shard tag bits stay zero).
  std::size_t num_shards = 8;
};

/// One shard's two probe tiers.  Immutable once published; snapshots share
/// unchanged shards by pointer, so publishing a batch that touches one shard
/// copies N-1 pointers and rebuilds one small delta.
///
/// Tier layout (per shard):
///   base        frozen FrozenMvIndex shared across versions; null until the
///               shard's first compaction (or when a compaction emptied it).
///   tombstones  sorted external ids removed since the base was frozen —
///               they mask base answers (a base entry all of whose external
///               ids are tombstoned is dropped from the merged result).
///   delta       small pointer-tree MvIndex holding exactly the views staged
///               into this shard since its last refreeze; null when empty.
///
/// The tiers partition the shard's visible views: an external id lives in
/// the base xor the delta, never both.
struct ShardTier {
  std::shared_ptr<const index::FrozenMvIndex> base;
  /// Sorted external ids baked into `base` (including currently tombstoned
  /// ones); shared with every version on the same base generation.
  std::shared_ptr<const std::vector<std::uint64_t>> base_view_ids;
  std::vector<std::uint64_t> tombstones;  // sorted; masks base only
  std::shared_ptr<const index::MvIndex> delta;
  std::vector<std::uint64_t> delta_view_ids;  // sorted

  /// Probes this shard's two tiers and merges them: union of contained sets
  /// with fully-tombstoned base matches dropped, counters summed, one shared
  /// budget across both walks.  Delta-tier stored ids come back tagged with
  /// IndexSnapshot::kDeltaTierTag; shard bits are added by the snapshot
  /// merge.
  index::ProbeResult Find(const containment::PreparedProbe& probe,
                          const index::ProbeOptions& options) const;

  bool empty() const { return base == nullptr && delta == nullptr; }
  std::size_t num_base_views() const {
    return base_view_ids == nullptr ? 0 : base_view_ids->size();
  }
  std::size_t num_delta_views() const { return delta_view_ids.size(); }
  std::size_t num_tombstones() const { return tombstones.size(); }
  /// Views visible through this shard (base - tombstones + delta).
  std::size_t num_views() const {
    return num_base_views() - num_tombstones() + num_delta_views();
  }
};

/// How a probe was executed against a snapshot (metrics; see FindParallel).
struct ProbeFanout {
  std::uint32_t shards_probed = 0;   // populated shards the walk covered
  std::uint32_t parallel_walkers = 1;  // 1 = fully inline ("direct-routed")
};

/// One immutable published version of the mv-index, as a vector of shard
/// tiers keyed by AnchorSignature(view) % num_shards.  Once a snapshot is
/// reachable through IndexManager::Acquire nothing ever mutates it; probes
/// run against the shard tiers (all const) with no synchronisation at all.
struct IndexSnapshot {
  /// High bit tagging a delta-tier stored id in a merged ProbeResult (base
  /// and delta number their entries independently from 0, per shard).
  static constexpr std::uint32_t kDeltaTierTag = 0x80000000u;
  /// Bits [30:25] of a merged stored id carry the shard index; bits [24:0]
  /// the in-tier stored id (so a shard tier holds at most 2^25 stored
  /// entries).  Resolve merged ids through AppendViewIds / the decode
  /// helpers, never directly.
  static constexpr std::uint32_t kShardShift = 25;
  static constexpr std::uint32_t kStoredIdMask = (1u << kShardShift) - 1;
  static constexpr std::size_t kMaxShards = 64;

  static std::uint32_t TagShard(std::uint32_t tier_tagged_id,
                                std::uint32_t shard) {
    return tier_tagged_id |
           (shard << kShardShift);  // tier bit already in place
  }
  static std::uint32_t ShardOf(std::uint32_t tagged_id) {
    return (tagged_id & ~kDeltaTierTag) >> kShardShift;
  }
  static std::uint32_t StoredIdOf(std::uint32_t tagged_id) {
    return tagged_id & kStoredIdMask;
  }

  IndexSnapshot() = default;
  RDFC_DISALLOW_COPY_AND_ASSIGN(IndexSnapshot);

  std::uint64_t version = 0;
  std::size_t num_views = 0;  // live views visible in this version

  /// One tier per shard; entries are never null (an untouched shard is an
  /// empty ShardTier, shared by every version).
  std::vector<std::shared_ptr<const ShardTier>> shards;

  const rdf::TermDictionary& dict() const { return *dict_ptr; }
  const rdf::TermDictionary* dict_ptr = nullptr;

  std::size_t num_shards() const { return shards.size(); }
  const ShardTier& shard(std::size_t s) const { return *shards[s]; }
  std::size_t num_populated_shards() const;

  /// Probes every populated shard sequentially and merges the results:
  /// contained and unverified sets unioned (stored ids tagged with tier and
  /// shard bits), counters and timings summed, and one shared budget across
  /// every walk — `filter_complete` only if *all* walks completed, so
  /// degraded merged answers still only under-report.
  index::ProbeResult Find(const containment::PreparedProbe& probe,
                          const index::ProbeOptions& options = {}) const;
  /// Convenience overload preparing the probe against this snapshot's dict.
  index::ProbeResult Find(const query::BgpQuery& q,
                          const index::ProbeOptions& options = {}) const;

  /// Find, fanned out across the populated shards on `pool` (DESIGN.md
  /// "Sharded index").  Identical result semantics to Find: the walkers
  /// fork one ProbeBudget::SharedState from options.budget, so the fan-out
  /// spends ONE budget and a mid-fan-out expiry degrades every remaining
  /// walk — the merged answer still only under-reports.
  ///
  /// `preferred_shard` (the probe's own anchor signature % num_shards, when
  /// the caller knows it) is walked first by the calling thread — a walk-
  /// order hint only, never a pruning decision: a containing view can live
  /// in any shard, so every populated shard is always probed.  When at most
  /// one shard is populated, or `pool` is null, or helper submission is
  /// shed, the walk runs inline on the caller ("direct-routed").  The
  /// caller's thread always claims shards too, so the fan-out cannot
  /// deadlock even when the pool is saturated with probes doing the same.
  ///
  /// `max_walkers` caps the fan-out width (caller + helpers); 0 = auto,
  /// which never uses more walkers than the host has hardware threads —
  /// on a single-core host the walk stays inline, because extra walkers
  /// there are pure scheduling overhead on a latency-critical path.
  /// Tests and sanitizer smokes pass an explicit width to force the
  /// parallel machinery regardless of host shape.
  index::ProbeResult FindParallel(const containment::PreparedProbe& probe,
                                  const index::ProbeOptions& options,
                                  util::ThreadPool* pool,
                                  std::size_t preferred_shard = 0,
                                  ProbeFanout* fanout = nullptr,
                                  std::uint32_t max_walkers = 0) const;

  /// Appends the external ids behind a (tier- and shard-tagged) stored id
  /// from a merged ProbeResult, masking tombstoned base ids.  Unsorted
  /// output; the caller dedups once at the end.
  void AppendViewIds(std::uint32_t tagged_id,
                     std::vector<std::uint64_t>* out) const;

  bool IsTombstoned(std::uint64_t external_id) const;

  // Aggregates across shards (the pre-sharding accounting identity
  // `base - tombstones + delta = live` holds on the sums).
  std::size_t num_base_views() const;
  std::size_t num_delta_views() const;
  std::size_t num_tombstones() const;
};

/// Versioned, snapshot-isolated publication of the sharded mv-index
/// (DESIGN.md "Service layer", "Tiered write path", "Sharded index").
///
/// The regime is the one the paper's applications live in: probes vastly
/// outnumber view-set changes, and a probe must never block behind an
/// insert.  Writers batch Insert/Remove intents (StageAdd/StageRemove)
/// against an authoritative view list and publish a new version in one
/// atomic pointer swing; readers pin a version through a hazard-slot
/// handshake and probe it lock-free.
///
/// Write path (sharded + tiered): StageAdd routes each view to shard
/// AnchorSignature(view) % num_shards.  Publish rebuilds only the delta
/// tiers of shards whose pending sets changed — O(dirty shards' staged
/// views) — and shares every other shard tier by pointer.  A compaction
/// (background task or explicit Refreeze) folds each dirty shard's
/// base+delta into a new frozen base for that shard off the write path and
/// publishes all of them through one swing.
///
/// Threading contract:
///   - Writer side — StageAdd, StageRemove, Publish, RegisterReader,
///     num_retained_versions — is internally serialized by a mutex, but the
///     caller must ALSO be the sole dictionary writer while calling it
///     (StageAdd/Publish intern terms; see rdf::TermDictionary).  The
///     containment service guarantees both with its mutation mutex.
///   - Reader side — Acquire on a registered slot — never takes a lock:
///     one seq_cst store plus the revalidation loop's loads.  Each slot
///     supports one outstanding ReadGuard at a time and is thread-affine by
///     convention (the service maps worker index -> slot index).
///   - Compaction — runs on its own thread and is NOT a dictionary writer:
///     the merge re-inserts only previously-prepared entries, whose
///     canonical variables already exist, so the build touches the
///     dictionary exclusively through lock-free reads (the
///     CanonicalVariable populated-slot fast path) and may overlap staging.
///
/// Memory reclamation (the argument, in full, in DESIGN.md): a reader
/// announces its candidate snapshot in its hazard slot and re-checks the
/// current pointer; the writer publishes the new version first and only then
/// sweeps the slots.  In the seq_cst total order either the reader's
/// announcement precedes the writer's sweep load (the writer sees it and
/// retains the version), or the writer's publication precedes the reader's
/// re-check (the reader observes the new pointer, abandons the stale
/// candidate and retries).  Either way no guard can hold a freed snapshot,
/// and at most `reader slots + 1` versions are ever retained (+1 while a
/// compaction pins its capture).
class IndexManager {
 public:
  explicit IndexManager(rdf::TermDictionary* dict,
                        const index::IndexOptions& options = {},
                        const TierOptions& tier = {});
  ~IndexManager();  // StopCompaction()
  RDFC_DISALLOW_COPY_AND_ASSIGN(IndexManager);

  /// Shard count this manager was configured with (clamped).
  std::size_t num_shards() const { return num_shards_; }

  // ------------------------------------------------------------------
  // Writer side
  // ------------------------------------------------------------------

  /// Stages a view for the next Publish and returns its stable external id.
  /// The view is NOT visible to probes until Publish.  Routed to shard
  /// AnchorSignature(view) % num_shards.
  [[nodiscard]] util::Result<std::uint64_t> StageAdd(query::BgpQuery view)
      RDFC_EXCLUDES(mu_);

  /// Stages removal of a previously added view (NotFound for unknown or
  /// already-removed ids).  Takes effect at the next Publish.
  [[nodiscard]] util::Status StageRemove(std::uint64_t view_id)
      RDFC_EXCLUDES(mu_);

  /// Rebuilds the delta tiers of exactly the shards whose pending sets
  /// changed and publishes the result (sharing every untouched shard tier)
  /// as the new current version; probes in flight keep the version they
  /// pinned.  Transactional: if any staged view fails to index, the error is
  /// returned, the current version stays, and the staged state is untouched
  /// (StageRemove the offender and retry).  Returns the new version number.
  /// O(dirty shards' deltas) — independent of base size and shard count.
  [[nodiscard]] util::Result<std::uint64_t> Publish() RDFC_EXCLUDES(mu_);

  /// Synchronous compaction: folds every shard with a non-empty delta or
  /// tombstone set into a new frozen base for that shard and publishes the
  /// compacted snapshot as a new version (returned).  Waits for any
  /// background compaction first.  No-op (returns the current version) when
  /// no shard has anything to fold.  Safe to call concurrently with
  /// staging/publishing — the builds run off the writer mutex.
  [[nodiscard]] util::Result<std::uint64_t> Refreeze()
      RDFC_EXCLUDES(mu_, compaction_mu_);

  /// Drains and joins the background compaction thread.  Idempotent; called
  /// by the destructor.  After this, only Refreeze() compacts.
  void StopCompaction() RDFC_EXCLUDES(mu_, compaction_mu_);

  /// Registers a hazard slot and returns its index.  Writer-side (serialized
  /// with Publish); call once per reader thread during setup.
  std::size_t RegisterReader() RDFC_EXCLUDES(mu_);

  std::size_t num_live_views() const RDFC_EXCLUDES(mu_);
  /// Staged-but-unpublished intent count (adds + removes); 0 right after
  /// Publish.
  std::size_t num_staged_changes() const RDFC_EXCLUDES(mu_);
  /// Versions currently held alive (current + any pinned by readers).
  /// Bounded by RegisterReader count + 1 (+1 during a compaction).
  std::size_t num_retained_versions() const RDFC_EXCLUDES(mu_);

  /// Per-shard gauges of the current published version (rdfc_stats
  /// --service / rdfc_serve shard reporting).
  struct ShardStats {
    std::size_t views = 0;        // base - tombstones + delta
    std::size_t base_views = 0;   // external ids baked into the frozen base
    std::size_t delta_views = 0;  // views in the pointer-tree delta
    std::size_t tombstones = 0;   // base ids masked as removed
    std::uint64_t refreezes = 0;  // lifetime compactions of this shard
  };

  /// Tier breakdown of the current published version plus the lifetime
  /// compaction count.  The top-level fields aggregate across shards (the
  /// pre-sharding accounting identity holds on the sums); `shards` has the
  /// per-shard split.
  struct TierStats {
    std::size_t base_views = 0;
    std::size_t delta_views = 0;
    std::size_t tombstones = 0;
    std::uint64_t compactions = 0;  // compaction *runs* (each may fold
                                    // several shards)
    std::vector<ShardStats> shards;
  };
  TierStats tier_stats() const RDFC_EXCLUDES(mu_);
  bool compaction_in_flight() const {
    return compaction_in_flight_.load(std::memory_order_acquire);
  }

  /// Test hook, invoked off-lock between a compaction's merge builds and its
  /// publication swing — the window the deterministic interleaving tests
  /// stage and publish into.  Set during single-threaded setup only.
  void set_compaction_hook(std::function<void()> hook) {
    compaction_hook_ = std::move(hook);
  }
  /// Invoked with the wall-clock micros of every completed compaction (the
  /// service routes it into ServiceMetrics).  Set during setup only.
  void set_compaction_listener(std::function<void(double)> listener) {
    compaction_listener_ = std::move(listener);
  }

  // ------------------------------------------------------------------
  // Persistence (writer side; see index/persistence.h for the format)
  // ------------------------------------------------------------------

  /// Saves the current published version as a sharded tiered image: each
  /// shard's frozen base as a sibling `<path>.base.<shard>.<generation>`
  /// blob plus one manifest at `path` holding every shard's delta journal
  /// and tombstones.  Blobs commit before the manifest, so a crash between
  /// the two recovers the previous image.  Holds the writer mutex for the
  /// I/O (an admin-path operation; probes are unaffected).  With a journal
  /// enabled, a committed image covers every journalled batch (records are
  /// appended strictly before their publish swing), so the journal is
  /// truncated after the commit; a crash between the two is harmless
  /// because replay over the new image is idempotent.
  [[nodiscard]] util::Status SaveTiered(const std::string& path)
      RDFC_EXCLUDES(mu_);

  /// Restores a tiered image into this manager and publishes it as the next
  /// version.  The manager must be fresh (version 0, nothing staged), its
  /// dictionary freshly constructed, and its configured shard count must
  /// equal the image's (shard routing is baked into the frozen bases, so a
  /// restore cannot re-shard; InvalidArgument otherwise).
  [[nodiscard]] util::Status RestoreTiered(const std::string& path)
      RDFC_EXCLUDES(mu_);

  /// Opens (creating if absent) the write-ahead journal at `options.path`,
  /// replays every intact record over the current state (idempotently:
  /// already-present adds and already-dead removes are skipped, so a journal
  /// overlapping a restored image is fine), publishes the replayed state as
  /// one version, and arms journaling: from here every Publish appends its
  /// batch to the journal *before* the snapshot swing, and a failed append
  /// aborts the publish transactionally.  `checkpoint_path` (optional) arms
  /// checkpoint-on-compaction: after each successful compaction the image is
  /// saved there, which truncates the journal (DESIGN.md "Durability").
  ///
  /// Call once, during startup, after any RestoreTiered; the caller must be
  /// the sole dictionary writer for the duration (replay interns terms).
  [[nodiscard]] util::Status EnableJournal(
      const index::JournalOptions& options, std::string checkpoint_path = "")
      RDFC_EXCLUDES(mu_);

  /// Snapshot of the journal counters (zero-initialised stats when no
  /// journal is enabled).
  index::JournalStats journal_stats() const RDFC_EXCLUDES(mu_);
  bool journal_enabled() const RDFC_EXCLUDES(mu_);

  // ------------------------------------------------------------------
  // Reader side
  // ------------------------------------------------------------------

  /// Pins the current snapshot for the guard's lifetime.  Lock-free; see the
  /// class comment.  One outstanding guard per slot.
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& other) noexcept
        : slot_(std::exchange(other.slot_, nullptr)),
          snapshot_(std::exchange(other.snapshot_, nullptr)) {}
    ReadGuard& operator=(ReadGuard&&) = delete;
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() { Release(); }

    const IndexSnapshot& operator*() const { return *snapshot_; }
    const IndexSnapshot* operator->() const { return snapshot_; }

    /// Unpins early.  Idempotent (and a no-op on a moved-from guard); the
    /// destructor calls it too.
    void Release();

   private:
    friend class IndexManager;
    struct Slot;
    ReadGuard(const Slot* slot, const IndexSnapshot* snapshot)
        : slot_(slot), snapshot_(snapshot) {}

    const Slot* slot_;
    const IndexSnapshot* snapshot_;
  };

  ReadGuard Acquire(std::size_t reader_slot);

  /// Version a probe submitted right now would see.  Reader-side.
  std::uint64_t current_version() const {
    return current_.load(std::memory_order_acquire)->version;
  }

 private:
  struct ViewRecord {
    std::uint64_t id = 0;
    query::BgpQuery query;
    std::uint32_t shard = 0;  // AnchorSignature(query) % num_shards
    bool alive = true;
    bool in_base = false;  // baked into its shard's current frozen base
  };

  /// Writer-side mirror of one shard's tier state: the shared base, its id
  /// set, the pending delta/tombstone id sets the *next* Publish would bake
  /// (sorted), and the tier published in the current version.  Staging
  /// updates the pending sets incrementally; a compaction swing rebuilds
  /// them from the view records.
  struct ShardState {
    std::shared_ptr<const index::FrozenMvIndex> base;
    std::shared_ptr<const std::vector<std::uint64_t>> base_ids;
    std::vector<std::uint64_t> pending_delta_ids;
    std::vector<std::uint64_t> pending_tombstones;
    /// The tier the current published snapshot holds for this shard; Publish
    /// shares it when the pending sets match its id sets.
    std::shared_ptr<const ShardTier> published;
    std::uint64_t generation = 0;  // refreezes (persistence blob naming)
  };

  /// One staged intent in stage order, for the journal record of the next
  /// Publish.  Only the id is kept; add views are serialized from views_ at
  /// append time.
  struct StagedOp {
    index::JournalOp::Kind kind = index::JournalOp::Kind::kAdd;
    std::uint64_t id = 0;
  };

  /// True when shard `s`'s pending sets differ from its published tier (the
  /// next Publish must rebuild that shard's delta tier).
  bool ShardDirtyLocked(std::size_t s) const RDFC_REQUIRES(mu_);

  /// Publish body.  `with_journal` is false only for the internal publish
  /// that makes journal-replayed state visible (those ops came *from* the
  /// journal and must not be re-appended).
  [[nodiscard]] util::Result<std::uint64_t> PublishBatchLocked(
      bool with_journal) RDFC_REQUIRES(mu_);

  /// Applies one replayed journal batch to the staged state (no publish).
  /// Idempotent per op; see EnableJournal.
  [[nodiscard]] util::Status ApplyReplay(const index::JournalBatch& batch)
      RDFC_EXCLUDES(mu_);
  [[nodiscard]] util::Status ApplyReplayAddLocked(std::uint64_t id,
                                                  const query::BgpQuery& view)
      RDFC_REQUIRES(mu_);
  void ApplyReplayRemoveLocked(std::uint64_t id) RDFC_REQUIRES(mu_);

  /// Sweeps the hazard slots and frees every retired version no reader (and
  /// no in-flight compaction) has pinned.
  void ReclaimLocked() RDFC_REQUIRES(mu_);

  /// Publishes `next` as the new current version (swing + reclaim).
  std::uint64_t SwingLocked(std::unique_ptr<const IndexSnapshot> next)
      RDFC_REQUIRES(mu_);

  /// Schedules a background compaction when the policy triggers fire.
  void MaybeScheduleCompactionLocked() RDFC_REQUIRES(mu_);

  /// One full compaction run: capture, off-lock per-shard merge + freeze of
  /// every dirty shard, one swing.
  [[nodiscard]] util::Result<std::uint64_t> RunCompaction() RDFC_EXCLUDES(mu_)
      RDFC_REQUIRES(compaction_mu_);

  /// Recomputes shard `s`'s pending sets and its records' in_base flags
  /// after the shard's base generation changed to `new_base_ids`.
  void RebuildPendingLocked(std::size_t s,
                            const std::vector<std::uint64_t>& new_base_ids)
      RDFC_REQUIRES(mu_);

  /// Interned into by StageAdd/Publish; the dereference (not the pointer)
  /// rides the writer mutex — the dictionary's single-writer side.
  rdf::TermDictionary* dict_ RDFC_PT_GUARDED_BY(mu_);
  index::IndexOptions options_;
  TierOptions tier_;
  const std::size_t num_shards_;  // tier_.num_shards clamped

  mutable util::Mutex mu_;  // writer-side state below
  /// Authoritative view list, ids ascending (StageAdd order).
  std::vector<ViewRecord> views_ RDFC_GUARDED_BY(mu_);
  /// external id -> position in views_ (O(1) StageRemove and delta builds).
  std::unordered_map<std::uint64_t, std::size_t> view_pos_ RDFC_GUARDED_BY(mu_);
  std::size_t num_live_views_ RDFC_GUARDED_BY(mu_) = 0;
  /// Intents since last Publish.
  std::size_t num_staged_ RDFC_GUARDED_BY(mu_) = 0;
  std::uint64_t next_view_id_ RDFC_GUARDED_BY(mu_) = 1;
  std::uint64_t next_version_ RDFC_GUARDED_BY(mu_) = 0;
  /// Retained versions (current + reader-pinned).
  std::vector<std::unique_ptr<const IndexSnapshot>> versions_
      RDFC_GUARDED_BY(mu_);

  /// Staged intents since the last Publish, in stage order (the journal
  /// record of the next batch).  Cleared by every publish.
  std::vector<StagedOp> staged_ops_ RDFC_GUARDED_BY(mu_);
  /// Write-ahead journal; null until EnableJournal.  All access rides the
  /// writer mutex (the journal itself is not thread-safe).
  std::unique_ptr<index::WriteAheadJournal> journal_ RDFC_GUARDED_BY(mu_);
  /// Checkpoint-on-compaction target ("" = off); set once by EnableJournal.
  std::string checkpoint_path_ RDFC_GUARDED_BY(mu_);

  /// One writer-side state per shard (size num_shards_).
  std::vector<ShardState> shards_ RDFC_GUARDED_BY(mu_);
  /// Positions into views_ per shard (views_ only grows, so positions are
  /// stable) — lets a compaction rebuild one shard's pending sets in
  /// O(shard records) instead of sweeping every record.
  std::vector<std::vector<std::size_t>> shard_records_ RDFC_GUARDED_BY(mu_);
  /// Per-shard lifetime refreeze counters (tier_stats).
  std::vector<std::uint64_t> shard_refreezes_ RDFC_GUARDED_BY(mu_);

  // Compaction machinery.  Lock order: compaction_mu_ before mu_, and mu_ is
  // never held while acquiring compaction_mu_.
  util::Mutex compaction_mu_;  // serializes compaction runs (bg + Refreeze)
  std::unique_ptr<util::ThreadPool> compaction_pool_;  // 1 thread; may be null
  std::atomic<bool> compaction_in_flight_{false};
  /// The capture a running compaction merges from; ReclaimLocked treats it
  /// as pinned so publishes during the build cannot free it.
  const IndexSnapshot* compaction_pin_ RDFC_GUARDED_BY(mu_) = nullptr;
  std::uint64_t compactions_run_ RDFC_GUARDED_BY(mu_) = 0;
  std::function<void()> compaction_hook_;
  std::function<void(double)> compaction_listener_;

  // Reader slots: appended under mu_ (RegisterReader), accessed lock-free by
  // their owning reader thread and swept by the writer.
  util::SnapshotVector<ReadGuard::Slot> slots_;

  std::atomic<const IndexSnapshot*> current_{nullptr};
};

/// One hazard slot, cache-line padded so readers on different slots never
/// share a line.  nullptr = the reader holds no snapshot.
struct alignas(64) IndexManager::ReadGuard::Slot {
  mutable std::atomic<const IndexSnapshot*> hazard{nullptr};
};

}  // namespace service
}  // namespace rdfc
