#include "service/index_manager.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "index/persistence.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace rdfc {
namespace service {

namespace {

/// True when `value` is in the sorted vector (tombstone/base-id membership).
bool SortedContains(const std::vector<std::uint64_t>& sorted,
                    std::uint64_t value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

void MergeProbeCounters(const index::ProbeResult& from,
                        index::ProbeResult* into) {
  into->candidates += from.candidates;
  into->np_checks += from.np_checks;
  into->states_explored += from.states_explored;
  into->filter_micros += from.filter_micros;
  into->verify_micros += from.verify_micros;
  into->filter_complete = into->filter_complete && from.filter_complete;
}

}  // namespace

// ----------------------------------------------------------------------
// IndexSnapshot: the merged two-tier probe
// ----------------------------------------------------------------------

index::ProbeResult IndexSnapshot::Find(
    const containment::PreparedProbe& probe,
    const index::ProbeOptions& options) const {
  index::ProbeResult merged;
  if (base != nullptr) {
    merged = base->FindContaining(probe, options);
    if (!tombstones.empty()) {
      // Drop base answers whose every external id is tombstoned: the entry
      // has been removed wholesale and must not surface even as unverified.
      // Partially-tombstoned entries stay; AppendViewIds masks per id.
      auto fully_dead = [this](std::uint32_t stored_id) {
        for (std::uint64_t ext : base->external_ids(stored_id)) {
          if (!SortedContains(tombstones, ext)) return false;
        }
        return true;
      };
      std::erase_if(merged.contained, [&](const index::ProbeMatch& m) {
        return fully_dead(m.stored_id);
      });
      std::erase_if(merged.unverified, fully_dead);
    }
  }
  if (delta != nullptr) {
    // Same options object, so the two walks share one budget: if the base
    // walk exhausted it, the delta walk degrades immediately (per-vertex
    // poll) and the ANDed filter_complete reports the truncation — the
    // merged answer under-reports, never over-reports.
    index::ProbeResult d = delta->FindContaining(probe, options);
    for (index::ProbeMatch& m : d.contained) {
      RDFC_DCHECK((m.stored_id & kDeltaTierTag) == 0);
      m.stored_id |= kDeltaTierTag;
      merged.contained.push_back(std::move(m));
    }
    for (std::uint32_t id : d.unverified) {
      merged.unverified.push_back(id | kDeltaTierTag);
    }
    MergeProbeCounters(d, &merged);
  }
  return merged;
}

index::ProbeResult IndexSnapshot::Find(const query::BgpQuery& q,
                                       const index::ProbeOptions& options) const {
  return Find(containment::PrepareProbe(q, *dict_ptr), options);
}

void IndexSnapshot::AppendViewIds(std::uint32_t tagged_id,
                                  std::vector<std::uint64_t>* out) const {
  if ((tagged_id & kDeltaTierTag) != 0) {
    const auto& ids = delta->external_ids(tagged_id & ~kDeltaTierTag);
    out->insert(out->end(), ids.begin(), ids.end());
    return;
  }
  for (std::uint64_t ext : base->external_ids(tagged_id)) {
    if (!SortedContains(tombstones, ext)) out->push_back(ext);
  }
}

bool IndexSnapshot::IsTombstoned(std::uint64_t external_id) const {
  return SortedContains(tombstones, external_id);
}

// ----------------------------------------------------------------------
// IndexManager: writer side
// ----------------------------------------------------------------------

IndexManager::IndexManager(rdf::TermDictionary* dict,
                           const index::IndexOptions& options,
                           const TierOptions& tier)
    : dict_(dict), options_(options), tier_(tier) {
  // Publish an empty version 0 so Acquire always has a snapshot to pin —
  // readers never need a "not started yet" branch.  Both tiers empty: the
  // base materialises at the first compaction.
  auto initial = std::make_unique<IndexSnapshot>();
  initial->version = next_version_++;
  initial->dict_ptr = dict_;
  current_.store(initial.get(), std::memory_order_seq_cst);
  versions_.push_back(std::move(initial));
  if (tier_.background_compaction) {
    util::ThreadPool::Options pool_options;
    pool_options.num_threads = 1;
    // Room for one queued run behind the running one; the in-flight flag
    // keeps the scheduler from piling more on.
    pool_options.queue_capacity = 2;
    compaction_pool_ = std::make_unique<util::ThreadPool>(pool_options);
  }
}

IndexManager::~IndexManager() { StopCompaction(); }

void IndexManager::StopCompaction() {
  if (compaction_pool_ != nullptr) compaction_pool_->Shutdown();
}

util::Result<std::uint64_t> IndexManager::StageAdd(query::BgpQuery view) {
  if (view.empty()) {
    return util::Status::InvalidArgument("cannot index an empty view");
  }
  util::MutexLock lock(&mu_);
  ViewRecord record;
  record.id = next_view_id_++;
  record.query = std::move(view);
  view_pos_.emplace(record.id, views_.size());
  views_.push_back(std::move(record));
  // Ids ascend, so appending keeps the pending delta sorted.
  pending_delta_ids_.push_back(views_.back().id);
  ++num_live_views_;
  ++num_staged_;
  return views_.back().id;
}

util::Status IndexManager::StageRemove(std::uint64_t view_id) {
  util::MutexLock lock(&mu_);
  auto it = view_pos_.find(view_id);
  if (it == view_pos_.end() || !views_[it->second].alive) {
    return util::Status::NotFound("unknown or already-removed view id " +
                                  std::to_string(view_id));
  }
  ViewRecord& record = views_[it->second];
  record.alive = false;
  --num_live_views_;
  ++num_staged_;
  if (record.in_base) {
    // A base-tier removal becomes a tombstone at the next Publish.
    pending_tombstones_.insert(
        std::upper_bound(pending_tombstones_.begin(),
                         pending_tombstones_.end(), view_id),
        view_id);
  } else {
    // A delta-tier (or still-staged) removal just drops out of the next
    // delta build.
    auto pos = std::lower_bound(pending_delta_ids_.begin(),
                                pending_delta_ids_.end(), view_id);
    RDFC_DCHECK(pos != pending_delta_ids_.end() && *pos == view_id);
    pending_delta_ids_.erase(pos);
  }
  return util::Status::OK();
}

util::Result<std::uint64_t> IndexManager::Publish() {
  util::MutexLock lock(&mu_);
  auto next = std::make_unique<IndexSnapshot>();
  next->version = next_version_;
  next->dict_ptr = dict_;
  next->base = base_;
  next->base_view_ids = base_ids_;
  next->tombstones = pending_tombstones_;
  if (!pending_delta_ids_.empty()) {
    auto delta = std::make_unique<index::MvIndex>(dict_, options_);
    for (std::uint64_t id : pending_delta_ids_) {
      const ViewRecord& record = views_[view_pos_.at(id)];
      auto outcome = delta->Insert(record.query, record.id);
      if (!outcome.ok()) {
        // Abort the transaction: the current version stays published and the
        // staged state is untouched, so the caller can StageRemove the
        // offending view and Publish again.
        return util::Status(outcome.status().code(),
                            "publish aborted by view " +
                                std::to_string(record.id) + ": " +
                                outcome.status().message());
      }
    }
    next->delta = std::move(delta);
    next->delta_view_ids = pending_delta_ids_;
  }
  next->num_views = num_live_views_;
  if (RDFC_FAILPOINT("publish.swing")) {
    // Fires after the new snapshot is fully built but before it becomes
    // reachable: the transactional contract (current version unchanged,
    // staged state intact) must hold on this path like any other abort.
    return util::Status::Internal("failpoint publish.swing");
  }
  num_staged_ = 0;
  const std::uint64_t version = SwingLocked(std::move(next));
  MaybeScheduleCompactionLocked();
  return version;
}

std::uint64_t IndexManager::SwingLocked(
    std::unique_ptr<const IndexSnapshot> next) {
  ++next_version_;
  const IndexSnapshot* published = next.get();
  versions_.push_back(std::move(next));
  current_.store(published, std::memory_order_seq_cst);
  ReclaimLocked();
  return published->version;
}

std::size_t IndexManager::RegisterReader() {
  util::MutexLock lock(&mu_);
  const std::size_t slot = slots_.size();
  slots_.EnsureSize(slot + 1);
  return slot;
}

std::size_t IndexManager::num_live_views() const {
  util::MutexLock lock(&mu_);
  return num_live_views_;
}

std::size_t IndexManager::num_staged_changes() const {
  util::MutexLock lock(&mu_);
  return num_staged_;
}

std::size_t IndexManager::num_retained_versions() const {
  util::MutexLock lock(&mu_);
  return versions_.size();
}

IndexManager::TierStats IndexManager::tier_stats() const {
  util::MutexLock lock(&mu_);
  const IndexSnapshot* cur = current_.load(std::memory_order_seq_cst);
  TierStats stats;
  stats.base_views = cur->num_base_views();
  stats.delta_views = cur->num_delta_views();
  stats.tombstones = cur->num_tombstones();
  stats.compactions = compactions_run_;
  return stats;
}

void IndexManager::ReclaimLocked() {
  const IndexSnapshot* live = current_.load(std::memory_order_seq_cst);
  std::unordered_set<const IndexSnapshot*> pinned;
  pinned.insert(live);
  if (compaction_pin_ != nullptr) pinned.insert(compaction_pin_);
  const std::size_t num_slots = slots_.size();
  for (std::size_t i = 0; i < num_slots; ++i) {
    const IndexSnapshot* hazard =
        slots_.At(i).hazard.load(std::memory_order_seq_cst);
    if (hazard != nullptr) pinned.insert(hazard);
  }
  std::erase_if(versions_,
                [&pinned](const std::unique_ptr<const IndexSnapshot>& v) {
                  return pinned.count(v.get()) == 0;
                });
}

// ----------------------------------------------------------------------
// Compaction
// ----------------------------------------------------------------------

void IndexManager::MaybeScheduleCompactionLocked() {
  if (compaction_pool_ == nullptr) return;
  if (compaction_in_flight_.load(std::memory_order_acquire)) return;
  const IndexSnapshot* cur = current_.load(std::memory_order_seq_cst);
  const std::size_t pending = cur->num_delta_views() + cur->num_tombstones();
  bool trigger = tier_.compact_min_delta_views > 0 &&
                 pending >= tier_.compact_min_delta_views;
  if (!trigger && tier_.compact_min_delta_fraction > 0) {
    const std::size_t base_live = cur->num_base_views();
    trigger = base_live > 0 &&
              static_cast<double>(pending) >=
                  tier_.compact_min_delta_fraction *
                      static_cast<double>(base_live);
  }
  if (!trigger) return;
  compaction_in_flight_.store(true, std::memory_order_release);
  const util::Status submitted = compaction_pool_->TrySubmit(
      [this](std::size_t /*worker_index*/) {
        {
          util::MutexLock serial(&compaction_mu_);
          // A failed run (e.g. an injected compact.swing abort) is dropped
          // on the floor by design: the policy re-triggers at the next
          // Publish and the published state is untouched either way.
          (void)RunCompaction();
        }
        compaction_in_flight_.store(false, std::memory_order_release);
      });
  if (!submitted.ok()) {
    compaction_in_flight_.store(false, std::memory_order_release);
  }
}

util::Result<std::uint64_t> IndexManager::Refreeze() {
  util::MutexLock serial(&compaction_mu_);
  return RunCompaction();
}

util::Result<std::uint64_t> IndexManager::RunCompaction() {
  util::Timer timer;
  // --- Capture: pin the current snapshot so publishes during the merge
  // cannot reclaim it out from under the build.
  const IndexSnapshot* captured = nullptr;
  {
    util::MutexLock lock(&mu_);
    captured = current_.load(std::memory_order_seq_cst);
    if (captured->base != nullptr && captured->delta == nullptr &&
        captured->tombstones.empty()) {
      return captured->version;  // nothing to fold in
    }
    compaction_pin_ = captured;
  }

  // --- Build, off every lock: merge the capture's visible views into one
  // fresh pointer tree, then freeze it.  This re-inserts only entries that
  // were prepared against this dictionary when they were first published, so
  // every canonical variable the serialisation asks for already exists and
  // the build never writes the dictionary — it may safely overlap staging
  // (see the class threading contract).
  auto clear_pin = [this] {
    util::MutexLock lock(&mu_);
    compaction_pin_ = nullptr;
  };
  auto merged = std::make_unique<index::MvIndex>(dict_, options_);
  std::vector<std::uint64_t> merged_ids;
  util::Status build_error = util::Status::OK();
  auto insert_tier = [&](const auto& tier_index, bool mask_tombstones) {
    for (std::uint32_t id = 0;
         build_error.ok() && id < tier_index.num_entries(); ++id) {
      if (!tier_index.alive(id)) continue;
      for (std::uint64_t ext : tier_index.external_ids(id)) {
        if (mask_tombstones && SortedContains(captured->tombstones, ext)) {
          continue;
        }
        auto outcome = merged->Insert(tier_index.entry(id).canonical, ext);
        if (!outcome.ok()) {
          build_error = outcome.status();
          break;
        }
        merged_ids.push_back(ext);
      }
    }
  };
  if (captured->base != nullptr) insert_tier(*captured->base, true);
  if (captured->delta != nullptr) insert_tier(*captured->delta, false);
  if (!build_error.ok()) {
    clear_pin();
    return util::Status(build_error.code(),
                        "compaction merge failed: " + build_error.message());
  }
  std::sort(merged_ids.begin(), merged_ids.end());
  auto frozen = std::make_shared<const index::FrozenMvIndex>(  // NOLINT(frozen-construction): the sanctioned freeze site
      *merged);
  auto frozen_ids =
      std::make_shared<const std::vector<std::uint64_t>>(std::move(merged_ids));

  if (compaction_hook_) compaction_hook_();

  // --- Swing: reconcile against whatever is current *now* (publishes may
  // have run during the build) and publish the compacted version through
  // the same atomic pointer swing as Publish.
  {
    util::MutexLock lock(&mu_);
    compaction_pin_ = nullptr;
    if (RDFC_FAILPOINT("compact.swing")) {
      // Same transactional contract as publish.swing: an aborted compaction
      // leaves the published chain and all staged state untouched — the
      // merged build is simply dropped.
      return util::Status::Internal("failpoint compact.swing");
    }
    const IndexSnapshot* cur = current_.load(std::memory_order_seq_cst);
    auto next = std::make_unique<IndexSnapshot>();
    next->version = next_version_;
    next->dict_ptr = dict_;
    next->base = frozen;
    next->base_view_ids = frozen_ids;
    next->num_views = cur->num_views;
    // New delta: the views published since the capture — exactly cur's delta
    // ids not yet baked into the new base.  Small (the publishes of one
    // compaction window), so rebuilding it under mu_ is cheap; the inserts
    // are re-inserts of prepared views (dictionary fast path, as above).
    std::vector<std::uint64_t> keep;
    std::set_difference(cur->delta_view_ids.begin(),
                        cur->delta_view_ids.end(), frozen_ids->begin(),
                        frozen_ids->end(), std::back_inserter(keep));
    if (!keep.empty()) {
      auto delta = std::make_unique<index::MvIndex>(dict_, options_);
      for (std::uint64_t id : keep) {
        auto outcome = delta->Insert(views_[view_pos_.at(id)].query, id);
        RDFC_CHECK(outcome.ok());  // re-insert of a published view
      }
      next->delta = std::move(delta);
      next->delta_view_ids = std::move(keep);
    }
    // New tombstones: ids baked into the new base but no longer visible in
    // cur — removals published during the build.
    std::vector<std::uint64_t> visible;
    if (cur->base_view_ids != nullptr) {
      std::set_difference(cur->base_view_ids->begin(),
                          cur->base_view_ids->end(), cur->tombstones.begin(),
                          cur->tombstones.end(), std::back_inserter(visible));
    }
    std::vector<std::uint64_t> visible_all;
    std::set_union(visible.begin(), visible.end(),
                   cur->delta_view_ids.begin(), cur->delta_view_ids.end(),
                   std::back_inserter(visible_all));
    std::set_difference(frozen_ids->begin(), frozen_ids->end(),
                        visible_all.begin(), visible_all.end(),
                        std::back_inserter(next->tombstones));
    const std::uint64_t version = SwingLocked(std::move(next));
    base_ = frozen;
    base_ids_ = frozen_ids;
    ++base_generation_;
    RebuildPendingLocked(*frozen_ids);
    ++compactions_run_;
    if (compaction_listener_) compaction_listener_(timer.ElapsedMicros());
    return version;
  }
}

void IndexManager::RebuildPendingLocked(
    const std::vector<std::uint64_t>& new_base_ids) {
  pending_delta_ids_.clear();
  pending_tombstones_.clear();
  // One sweep over the records re-derives both pending sets against the new
  // base generation: a live view not in the base still needs a delta slot; a
  // dead view in the base needs a tombstone (whether its removal is already
  // published or still staged, `alive` is false either way).  O(records),
  // once per compaction — the compaction itself is O(visible index).
  for (ViewRecord& record : views_) {
    record.in_base = SortedContains(new_base_ids, record.id);
    if (record.alive && !record.in_base) {
      pending_delta_ids_.push_back(record.id);
    } else if (!record.alive && record.in_base) {
      pending_tombstones_.push_back(record.id);
    }
  }
  // views_ is id-ascending in normal operation but not after RestoreTiered;
  // sort unconditionally (cheap, and the invariant stays local).
  std::sort(pending_delta_ids_.begin(), pending_delta_ids_.end());
  std::sort(pending_tombstones_.begin(), pending_tombstones_.end());
}

// ----------------------------------------------------------------------
// Persistence
// ----------------------------------------------------------------------

util::Status IndexManager::SaveTiered(const std::string& path) const {
  util::MutexLock lock(&mu_);
  const IndexSnapshot* cur = current_.load(std::memory_order_seq_cst);
  return index::SaveTieredIndex(cur->base.get(), cur->delta.get(),
                                cur->tombstones, base_generation_, path);
}

util::Status IndexManager::RestoreTiered(const std::string& path) {
  util::MutexLock lock(&mu_);
  if (next_version_ != 1 || !views_.empty() || num_staged_ != 0) {
    return util::Status::InvalidArgument(
        "RestoreTiered requires a fresh manager");
  }
  RDFC_ASSIGN_OR_RETURN(index::TieredImage image,
                        index::LoadTieredIndex(path, dict_));

  auto next = std::make_unique<IndexSnapshot>();
  next->version = next_version_;
  next->dict_ptr = dict_;
  next->tombstones = std::move(image.tombstones);

  // Rebuild the authoritative view records from the two tiers: tombstoned
  // base ids come back as dead records (they still need their tombstone
  // until the next compaction drops them).
  auto restore_records = [this](const auto& tier_index, bool in_base,
                                const std::vector<std::uint64_t>& dead) {
    std::vector<std::uint64_t> ids;
    for (std::uint32_t id = 0; id < tier_index.num_entries(); ++id) {
      if (!tier_index.alive(id)) continue;
      for (std::uint64_t ext : tier_index.external_ids(id)) {
        ViewRecord record;
        record.id = ext;
        record.query = tier_index.entry(id).canonical;
        record.alive = !SortedContains(dead, ext);
        record.in_base = in_base;
        view_pos_.emplace(ext, views_.size());
        views_.push_back(std::move(record));
        if (views_.back().alive) ++num_live_views_;
        next_view_id_ = std::max(next_view_id_, ext + 1);
        ids.push_back(ext);
      }
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  if (image.base != nullptr) {
    std::vector<std::uint64_t> base_ids =
        restore_records(*image.base, /*in_base=*/true, next->tombstones);
    base_ids_ =
        std::make_shared<const std::vector<std::uint64_t>>(std::move(base_ids));
    base_ = std::shared_ptr<const index::FrozenMvIndex>(std::move(image.base));
    next->base = base_;
    next->base_view_ids = base_ids_;
  }
  if (image.delta != nullptr) {
    next->delta_view_ids =
        restore_records(*image.delta, /*in_base=*/false, {});
    pending_delta_ids_ = next->delta_view_ids;
    next->delta = std::unique_ptr<const index::MvIndex>(std::move(image.delta));
  }
  pending_tombstones_ = next->tombstones;
  base_generation_ = image.generation;
  next->num_views = num_live_views_;
  (void)SwingLocked(std::move(next));
  return util::Status::OK();
}

// ----------------------------------------------------------------------
// Reader side
// ----------------------------------------------------------------------

IndexManager::ReadGuard IndexManager::Acquire(std::size_t reader_slot)
    RDFC_READPATH {
  RDFC_DCHECK(reader_slot < slots_.size());  // RegisterReader before Acquire
  const ReadGuard::Slot& slot = slots_.At(reader_slot);
  const IndexSnapshot* snapshot = current_.load(std::memory_order_seq_cst);
  for (;;) {
    // Announce, then revalidate: the writer publishes before sweeping, so
    // either it sees this announcement or we see its new pointer (class
    // comment has the full argument).
    slot.hazard.store(snapshot, std::memory_order_seq_cst);
    const IndexSnapshot* check = current_.load(std::memory_order_seq_cst);
    if (check == snapshot) break;
    snapshot = check;
  }
  return ReadGuard(&slot, snapshot);
}

void IndexManager::ReadGuard::Release() RDFC_READPATH {
  if (slot_ != nullptr) {
    slot_->hazard.store(nullptr, std::memory_order_release);
    slot_ = nullptr;
    snapshot_ = nullptr;
  }
}

}  // namespace service
}  // namespace rdfc
