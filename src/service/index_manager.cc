#include "service/index_manager.h"

#include <unordered_set>
#include <utility>

#include "util/failpoint.h"

namespace rdfc {
namespace service {

IndexManager::IndexManager(rdf::TermDictionary* dict,
                           const index::IndexOptions& options,
                           bool freeze_published)
    : dict_(dict), options_(options), freeze_published_(freeze_published) {
  // Publish an empty version 0 so Acquire always has a snapshot to pin —
  // readers never need a "not started yet" branch.  Frozen like any other
  // version so Find never mixes layouts across versions.
  auto initial = std::make_unique<IndexSnapshot>(dict_, options_);
  initial->version = next_version_++;
  if (freeze_published_) {
    initial->frozen = std::make_unique<index::FrozenMvIndex>(initial->index);
  }
  current_.store(initial.get(), std::memory_order_seq_cst);
  versions_.push_back(std::move(initial));
}

IndexManager::~IndexManager() = default;

util::Result<std::uint64_t> IndexManager::StageAdd(query::BgpQuery view) {
  if (view.empty()) {
    return util::Status::InvalidArgument("cannot index an empty view");
  }
  util::MutexLock lock(&mu_);
  ViewRecord record;
  record.id = next_view_id_++;
  record.query = std::move(view);
  views_.push_back(std::move(record));
  ++num_live_views_;
  ++num_staged_;
  return views_.back().id;
}

util::Status IndexManager::StageRemove(std::uint64_t view_id) {
  util::MutexLock lock(&mu_);
  for (ViewRecord& record : views_) {
    if (record.id == view_id) {
      if (!record.alive) break;
      record.alive = false;
      --num_live_views_;
      ++num_staged_;
      return util::Status::OK();
    }
  }
  return util::Status::NotFound("unknown or already-removed view id " +
                                std::to_string(view_id));
}

util::Result<std::uint64_t> IndexManager::Publish() {
  util::MutexLock lock(&mu_);
  auto next = std::make_unique<IndexSnapshot>(dict_, options_);
  next->version = next_version_;
  for (const ViewRecord& record : views_) {
    if (!record.alive) continue;
    auto outcome = next->index.Insert(record.query, record.id);
    if (!outcome.ok()) {
      // Abort the transaction: the current version stays published and the
      // staged state is untouched, so the caller can StageRemove the
      // offending view and Publish again.
      return util::Status(outcome.status().code(),
                          "publish aborted by view " +
                              std::to_string(record.id) + ": " +
                              outcome.status().message());
    }
    ++next->num_views;
  }
  if (freeze_published_) {
    // Freeze before the snapshot becomes reachable: once `current_` points
    // at it, readers may call Find concurrently and nothing may mutate it.
    next->frozen = std::make_unique<index::FrozenMvIndex>(next->index);
  }
  if (RDFC_FAILPOINT("publish.swing")) {
    // Fires after the new snapshot is fully built but before it becomes
    // reachable: the transactional contract (current version unchanged,
    // staged state intact) must hold on this path like any other abort.
    return util::Status::Internal("failpoint publish.swing");
  }
  ++next_version_;
  num_staged_ = 0;
  const IndexSnapshot* published = next.get();
  versions_.push_back(std::move(next));
  current_.store(published, std::memory_order_seq_cst);
  ReclaimLocked();
  return published->version;
}

std::size_t IndexManager::RegisterReader() {
  util::MutexLock lock(&mu_);
  const std::size_t slot = slots_.size();
  slots_.EnsureSize(slot + 1);
  return slot;
}

std::size_t IndexManager::num_live_views() const {
  util::MutexLock lock(&mu_);
  return num_live_views_;
}

std::size_t IndexManager::num_staged_changes() const {
  util::MutexLock lock(&mu_);
  return num_staged_;
}

std::size_t IndexManager::num_retained_versions() const {
  util::MutexLock lock(&mu_);
  return versions_.size();
}

void IndexManager::ReclaimLocked() {
  const IndexSnapshot* live = current_.load(std::memory_order_seq_cst);
  std::unordered_set<const IndexSnapshot*> pinned;
  pinned.insert(live);
  const std::size_t num_slots = slots_.size();
  for (std::size_t i = 0; i < num_slots; ++i) {
    const IndexSnapshot* hazard =
        slots_.At(i).hazard.load(std::memory_order_seq_cst);
    if (hazard != nullptr) pinned.insert(hazard);
  }
  std::erase_if(versions_,
                [&pinned](const std::unique_ptr<const IndexSnapshot>& v) {
                  return pinned.count(v.get()) == 0;
                });
}

IndexManager::ReadGuard IndexManager::Acquire(std::size_t reader_slot)
    RDFC_READPATH {
  RDFC_DCHECK(reader_slot < slots_.size());  // RegisterReader before Acquire
  const ReadGuard::Slot& slot = slots_.At(reader_slot);
  const IndexSnapshot* snapshot = current_.load(std::memory_order_seq_cst);
  for (;;) {
    // Announce, then revalidate: the writer publishes before sweeping, so
    // either it sees this announcement or we see its new pointer (class
    // comment has the full argument).
    slot.hazard.store(snapshot, std::memory_order_seq_cst);
    const IndexSnapshot* check = current_.load(std::memory_order_seq_cst);
    if (check == snapshot) break;
    snapshot = check;
  }
  return ReadGuard(&slot, snapshot);
}

void IndexManager::ReadGuard::Release() RDFC_READPATH {
  if (slot_ != nullptr) {
    slot_->hazard.store(nullptr, std::memory_order_release);
    slot_ = nullptr;
    snapshot_ = nullptr;
  }
}

}  // namespace service
}  // namespace rdfc
