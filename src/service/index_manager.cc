#include "service/index_manager.h"

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <utility>

#include "index/persistence.h"
#include "query/analysis.h"
#include "util/budget.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace rdfc {
namespace service {

namespace {

/// True when `value` is in the sorted vector (tombstone/base-id membership).
bool SortedContains(const std::vector<std::uint64_t>& sorted,
                    std::uint64_t value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

void MergeProbeCounters(const index::ProbeResult& from,
                        index::ProbeResult* into) {
  into->candidates += from.candidates;
  into->np_checks += from.np_checks;
  into->states_explored += from.states_explored;
  into->filter_micros += from.filter_micros;
  into->verify_micros += from.verify_micros;
  into->filter_complete = into->filter_complete && from.filter_complete;
}

/// Folds one shard's partial result into the merged snapshot result, adding
/// the shard bits to every tier-tagged stored id.
void MergeShardResult(std::size_t shard, index::ProbeResult&& partial,
                      index::ProbeResult* merged) {
  const std::uint32_t s = static_cast<std::uint32_t>(shard);
  for (index::ProbeMatch& m : partial.contained) {
    RDFC_DCHECK((m.stored_id & ~IndexSnapshot::kDeltaTierTag) <=
                IndexSnapshot::kStoredIdMask);
    m.stored_id = IndexSnapshot::TagShard(m.stored_id, s);
    merged->contained.push_back(std::move(m));
  }
  for (std::uint32_t id : partial.unverified) {
    RDFC_DCHECK((id & ~IndexSnapshot::kDeltaTierTag) <=
                IndexSnapshot::kStoredIdMask);
    merged->unverified.push_back(IndexSnapshot::TagShard(id, s));
  }
  MergeProbeCounters(partial, merged);
}

}  // namespace

// ----------------------------------------------------------------------
// ShardTier: one shard's merged two-tier probe
// ----------------------------------------------------------------------

index::ProbeResult ShardTier::Find(const containment::PreparedProbe& probe,
                                   const index::ProbeOptions& options) const {
  index::ProbeResult merged;
  if (base != nullptr) {
    merged = base->FindContaining(probe, options);
    if (!tombstones.empty()) {
      // Drop base answers whose every external id is tombstoned: the entry
      // has been removed wholesale and must not surface even as unverified.
      // Partially-tombstoned entries stay; AppendViewIds masks per id.
      auto fully_dead = [this](std::uint32_t stored_id) {
        for (std::uint64_t ext : base->external_ids(stored_id)) {
          if (!SortedContains(tombstones, ext)) return false;
        }
        return true;
      };
      std::erase_if(merged.contained, [&](const index::ProbeMatch& m) {
        return fully_dead(m.stored_id);
      });
      std::erase_if(merged.unverified, fully_dead);
    }
  }
  if (delta != nullptr) {
    // Same options object, so the two walks share one budget: if the base
    // walk exhausted it, the delta walk degrades immediately (per-vertex
    // poll) and the ANDed filter_complete reports the truncation — the
    // merged answer under-reports, never over-reports.
    index::ProbeResult d = delta->FindContaining(probe, options);
    for (index::ProbeMatch& m : d.contained) {
      RDFC_DCHECK((m.stored_id & IndexSnapshot::kDeltaTierTag) == 0);
      m.stored_id |= IndexSnapshot::kDeltaTierTag;
      merged.contained.push_back(std::move(m));
    }
    for (std::uint32_t id : d.unverified) {
      merged.unverified.push_back(id | IndexSnapshot::kDeltaTierTag);
    }
    MergeProbeCounters(d, &merged);
  }
  return merged;
}

// ----------------------------------------------------------------------
// IndexSnapshot: the sharded probe
// ----------------------------------------------------------------------

std::size_t IndexSnapshot::num_populated_shards() const {
  std::size_t populated = 0;
  for (const auto& tier : shards) {
    if (!tier->empty()) ++populated;
  }
  return populated;
}

index::ProbeResult IndexSnapshot::Find(
    const containment::PreparedProbe& probe,
    const index::ProbeOptions& options) const {
  index::ProbeResult merged;
  // Every shard walk reuses the same options object, so the whole sweep
  // shares the caller's one budget — identical degradation semantics to the
  // pre-sharding single-tree walk.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (shards[s]->empty()) continue;
    MergeShardResult(s, shards[s]->Find(probe, options), &merged);
  }
  return merged;
}

index::ProbeResult IndexSnapshot::Find(const query::BgpQuery& q,
                                       const index::ProbeOptions& options) const {
  return Find(containment::PrepareProbe(q, *dict_ptr), options);
}

namespace {

/// Shared frame of one fanned-out probe.  Heap-allocated (shared_ptr held by
/// every helper task) because a helper may dequeue *after* the fan-out
/// caller has already merged and returned: such a late helper must still be
/// able to load `next`, see no work left, and exit without touching the
/// caller-frame pointers below — which are only dereferenced for claimed
/// shards, and the caller does not return before every claimed walk is done.
struct FanoutJob {
  const IndexSnapshot* snapshot = nullptr;
  const containment::PreparedProbe* probe = nullptr;
  const index::ProbeOptions* options = nullptr;
  util::ProbeBudget::SharedState* shared = nullptr;
  std::vector<std::size_t> order;  // populated shards, preferred first
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::vector<index::ProbeResult> results;  // one slot per order entry
};

/// Claims shards off `job.order` until none remain.  Run by the caller and
/// by every admitted pool helper; the claim counter makes the fan-out
/// deadlock-free — even if no helper ever runs (saturated pool), the caller
/// claims and walks every shard itself.
void RunFanout(FanoutJob& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.order.size()) return;
    // Each walker forks its own budget off the shared pool: thread-local
    // mutable state, pooled step count and expiry (util::ProbeBudget).
    util::ProbeBudget walker = util::ProbeBudget::Forked(job.shared);
    index::ProbeOptions opts = *job.options;
    opts.budget = &walker;
    job.results[i] =
        job.snapshot->shard(job.order[i]).Find(*job.probe, opts);
    walker.Flush();
    job.done.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace

index::ProbeResult IndexSnapshot::FindParallel(
    const containment::PreparedProbe& probe,
    const index::ProbeOptions& options, util::ThreadPool* pool,
    std::size_t preferred_shard, ProbeFanout* fanout,
    std::uint32_t max_walkers) const {
  std::vector<std::size_t> order;
  order.reserve(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (!shards[s]->empty()) order.push_back(s);
  }
  // The preferred shard (the probe's own routing signature) goes first: the
  // calling thread claims it immediately, so the walk most likely to produce
  // the answers starts with zero handoff latency.  Ordering only — every
  // populated shard is still walked (a containing view can live anywhere).
  if (preferred_shard < shards.size()) {
    auto it = std::find(order.begin(), order.end(), preferred_shard);
    if (it != order.end()) std::iter_swap(order.begin(), it);
  }
  if (fanout != nullptr) {
    fanout->shards_probed = static_cast<std::uint32_t>(order.size());
    fanout->parallel_walkers = 1;
  }
  // Width: never more walkers than the host has hardware threads — extra
  // walkers past that point cannot run in parallel, so they only add submit
  // and wakeup overhead to a latency-critical path (on a single-core host
  // the walk stays fully inline).  An explicit max_walkers overrides the
  // host-derived cap for tests and sanitizer smokes.
  std::size_t width = max_walkers;
  if (width == 0) {
    static const std::size_t hw = [] {
      const unsigned n = std::thread::hardware_concurrency();  // NOLINT(raw-concurrency): introspection, no thread spawned
      return n == 0 ? std::size_t{1} : static_cast<std::size_t>(n);
    }();
    width = hw;
  }
  if (order.size() <= 1 || pool == nullptr || width <= 1) {
    // Direct-routed: at most one populated shard (or no pool to fan out on,
    // or a host where parallel walkers cannot help) — the inline sequential
    // walk already has the right semantics.
    return Find(probe, options);
  }

  // One budget across the fan-out: fork a shared pool off the caller's
  // budget (or an unlimited stand-in), then absorb it back at the end so the
  // caller's budget reflects the whole probe's spend and verdict.
  util::ProbeBudget unlimited;
  util::ProbeBudget* origin =
      options.budget != nullptr ? options.budget : &unlimited;
  util::ProbeBudget::SharedState shared(*origin);

  auto job = std::make_shared<FanoutJob>();
  job->snapshot = this;
  job->probe = &probe;
  job->options = &options;
  job->shared = &shared;
  job->order = std::move(order);
  job->results.resize(job->order.size());

  // Offer one helper per remaining shard, up to the width cap; shedding is
  // graceful — whatever the pool declines, the caller's own claim loop
  // picks up.
  std::uint32_t helpers = 0;
  for (std::size_t i = 0;
       i + 1 < job->order.size() && helpers + 1 < width; ++i) {
    const util::Status admitted = pool->TrySubmit(
        [job](std::size_t /*worker_index*/) { RunFanout(*job); });
    if (!admitted.ok()) break;
    ++helpers;
  }
  RunFanout(*job);
  // The caller ran out of shards to claim; helpers may still be finishing
  // theirs.  Claimed walks are bounded by the shared budget, so this wait is
  // bounded too.
  const std::size_t total = job->order.size();
  while (job->done.load(std::memory_order_acquire) < total) {
    std::this_thread::yield();
  }

  index::ProbeResult merged;
  for (std::size_t i = 0; i < total; ++i) {
    MergeShardResult(job->order[i], std::move(job->results[i]), &merged);
  }
  origin->Absorb(shared);
  if (fanout != nullptr) fanout->parallel_walkers = 1 + helpers;
  return merged;
}

void IndexSnapshot::AppendViewIds(std::uint32_t tagged_id,
                                  std::vector<std::uint64_t>* out) const {
  const ShardTier& tier = *shards[ShardOf(tagged_id)];
  const std::uint32_t stored = StoredIdOf(tagged_id);
  if ((tagged_id & kDeltaTierTag) != 0) {
    const auto& ids = tier.delta->external_ids(stored);
    out->insert(out->end(), ids.begin(), ids.end());
    return;
  }
  for (std::uint64_t ext : tier.base->external_ids(stored)) {
    if (!SortedContains(tier.tombstones, ext)) out->push_back(ext);
  }
}

bool IndexSnapshot::IsTombstoned(std::uint64_t external_id) const {
  for (const auto& tier : shards) {
    if (SortedContains(tier->tombstones, external_id)) return true;
  }
  return false;
}

std::size_t IndexSnapshot::num_base_views() const {
  std::size_t total = 0;
  for (const auto& tier : shards) total += tier->num_base_views();
  return total;
}

std::size_t IndexSnapshot::num_delta_views() const {
  std::size_t total = 0;
  for (const auto& tier : shards) total += tier->num_delta_views();
  return total;
}

std::size_t IndexSnapshot::num_tombstones() const {
  std::size_t total = 0;
  for (const auto& tier : shards) total += tier->num_tombstones();
  return total;
}

// ----------------------------------------------------------------------
// IndexManager: writer side
// ----------------------------------------------------------------------

IndexManager::IndexManager(rdf::TermDictionary* dict,
                           const index::IndexOptions& options,
                           const TierOptions& tier)
    : dict_(dict),
      options_(options),
      tier_(tier),
      num_shards_(std::clamp<std::size_t>(tier.num_shards, 1,
                                          IndexSnapshot::kMaxShards)) {
  // Publish an empty version 0 so Acquire always has a snapshot to pin —
  // readers never need a "not started yet" branch.  Every shard starts as
  // the same shared empty tier (immutable, so sharing is safe); bases
  // materialise at each shard's first compaction.
  auto empty_tier = std::make_shared<const ShardTier>();
  shards_.resize(num_shards_);
  shard_records_.resize(num_shards_);
  shard_refreezes_.assign(num_shards_, 0);
  for (ShardState& state : shards_) state.published = empty_tier;
  auto initial = std::make_unique<IndexSnapshot>();
  initial->version = next_version_++;
  initial->dict_ptr = dict_;
  initial->shards.assign(num_shards_, empty_tier);
  current_.store(initial.get(), std::memory_order_seq_cst);
  versions_.push_back(std::move(initial));
  if (tier_.background_compaction) {
    util::ThreadPool::Options pool_options;
    pool_options.num_threads = 1;
    // Room for one queued run behind the running one; the in-flight flag
    // keeps the scheduler from piling more on.
    pool_options.queue_capacity = 2;
    compaction_pool_ = std::make_unique<util::ThreadPool>(pool_options);
  }
}

IndexManager::~IndexManager() { StopCompaction(); }

void IndexManager::StopCompaction() {
  if (compaction_pool_ != nullptr) compaction_pool_->Shutdown();
}

util::Result<std::uint64_t> IndexManager::StageAdd(query::BgpQuery view) {
  if (view.empty()) {
    return util::Status::InvalidArgument("cannot index an empty view");
  }
  util::MutexLock lock(&mu_);
  ViewRecord record;
  record.id = next_view_id_++;
  // The routing key: dictionary-independent, so it agrees with the
  // signature the network front end computed for batch admission and with
  // whatever dictionary a persisted image is restored into.
  record.shard = static_cast<std::uint32_t>(
      query::AnchorSignature(view, *dict_) % num_shards_);
  record.query = std::move(view);
  view_pos_.emplace(record.id, views_.size());
  shard_records_[record.shard].push_back(views_.size());
  const std::uint32_t shard = record.shard;
  views_.push_back(std::move(record));
  // Ids ascend, so appending keeps the shard's pending delta sorted.
  shards_[shard].pending_delta_ids.push_back(views_.back().id);
  staged_ops_.push_back({index::JournalOp::Kind::kAdd, views_.back().id});
  ++num_live_views_;
  ++num_staged_;
  return views_.back().id;
}

util::Status IndexManager::StageRemove(std::uint64_t view_id) {
  util::MutexLock lock(&mu_);
  auto it = view_pos_.find(view_id);
  if (it == view_pos_.end() || !views_[it->second].alive) {
    return util::Status::NotFound("unknown or already-removed view id " +
                                  std::to_string(view_id));
  }
  ViewRecord& record = views_[it->second];
  record.alive = false;
  --num_live_views_;
  ++num_staged_;
  ShardState& state = shards_[record.shard];
  if (record.in_base) {
    // A base-tier removal becomes a tombstone at the shard's next Publish.
    state.pending_tombstones.insert(
        std::upper_bound(state.pending_tombstones.begin(),
                         state.pending_tombstones.end(), view_id),
        view_id);
  } else {
    // A delta-tier (or still-staged) removal just drops out of the shard's
    // next delta build.
    auto pos = std::lower_bound(state.pending_delta_ids.begin(),
                                state.pending_delta_ids.end(), view_id);
    RDFC_DCHECK(pos != state.pending_delta_ids.end() && *pos == view_id);
    state.pending_delta_ids.erase(pos);
  }
  staged_ops_.push_back({index::JournalOp::Kind::kRemove, view_id});
  return util::Status::OK();
}

bool IndexManager::ShardDirtyLocked(std::size_t s) const {
  const ShardState& state = shards_[s];
  return state.base != state.published->base ||
         state.pending_delta_ids != state.published->delta_view_ids ||
         state.pending_tombstones != state.published->tombstones;
}

util::Result<std::uint64_t> IndexManager::Publish() {
  util::MutexLock lock(&mu_);
  return PublishBatchLocked(/*with_journal=*/true);
}

util::Result<std::uint64_t> IndexManager::PublishBatchLocked(
    bool with_journal) {
  // Rebuild only the dirty shards' tiers, into temporaries first so an
  // abort (bad view or injected failpoint) leaves both the published chain
  // and the staged state untouched.  Untouched shards ride along by
  // pointer, which is what makes Publish O(dirty shards' staged views).
  std::vector<std::pair<std::size_t, std::shared_ptr<const ShardTier>>>
      rebuilt;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    if (!ShardDirtyLocked(s)) continue;
    const ShardState& state = shards_[s];
    auto tier = std::make_shared<ShardTier>();
    tier->base = state.base;
    tier->base_view_ids = state.base_ids;
    tier->tombstones = state.pending_tombstones;
    if (!state.pending_delta_ids.empty()) {
      auto delta = std::make_unique<index::MvIndex>(dict_, options_);
      for (std::uint64_t id : state.pending_delta_ids) {
        const ViewRecord& record = views_[view_pos_.at(id)];
        auto outcome = delta->Insert(record.query, record.id);
        if (!outcome.ok()) {
          // Abort the transaction: the current version stays published and
          // the staged state is untouched, so the caller can StageRemove the
          // offending view and Publish again.
          return util::Status(outcome.status().code(),
                              "publish aborted by view " +
                                  std::to_string(record.id) + ": " +
                                  outcome.status().message());
        }
      }
      tier->delta = std::move(delta);
      tier->delta_view_ids = state.pending_delta_ids;
    }
    rebuilt.emplace_back(s, std::move(tier));
  }
  if (RDFC_FAILPOINT("publish.swing")) {
    // Fires after the new tiers are fully built but before they become
    // reachable: the transactional contract (current version unchanged,
    // staged state intact) must hold on this path like any other abort.
    return util::Status::Internal("failpoint publish.swing");
  }
  if (with_journal && journal_ != nullptr) {
    // Write-ahead: the batch record must be durable (per the fsync policy)
    // before the swing makes it visible — an acknowledged publish is exactly
    // one that reached the journal.  A failed append aborts like any other
    // publish error: nothing swings, the staged state stays, the caller can
    // retry the same batch.  An empty batch still journals one record, so
    // the journal sequence counts acknowledged publishes one-for-one.
    index::JournalBatch batch;
    batch.sequence = journal_->next_sequence();
    batch.version = next_version_;
    batch.ops.reserve(staged_ops_.size());
    for (const StagedOp& staged : staged_ops_) {
      index::JournalOp op;
      op.kind = staged.kind;
      op.view_id = staged.id;
      if (staged.kind == index::JournalOp::Kind::kAdd) {
        // A staged add that was staged-removed again is journalled too (its
        // record is dead but still holds the query); replay nets it out.
        op.view = views_[view_pos_.at(staged.id)].query;
      }
      batch.ops.push_back(std::move(op));
    }
    const util::Status appended = journal_->Append(batch, *dict_);
    if (!appended.ok()) return appended;
  }
  auto next = std::make_unique<IndexSnapshot>();
  next->version = next_version_;
  next->dict_ptr = dict_;
  next->shards.reserve(num_shards_);
  for (const ShardState& state : shards_) {
    next->shards.push_back(state.published);
  }
  for (auto& [s, tier] : rebuilt) {
    next->shards[s] = tier;
    shards_[s].published = std::move(tier);
  }
  next->num_views = num_live_views_;
  num_staged_ = 0;
  staged_ops_.clear();
  const std::uint64_t version = SwingLocked(std::move(next));
  MaybeScheduleCompactionLocked();
  return version;
}

std::uint64_t IndexManager::SwingLocked(
    std::unique_ptr<const IndexSnapshot> next) {
  ++next_version_;
  const IndexSnapshot* published = next.get();
  versions_.push_back(std::move(next));
  current_.store(published, std::memory_order_seq_cst);
  ReclaimLocked();
  return published->version;
}

std::size_t IndexManager::RegisterReader() {
  util::MutexLock lock(&mu_);
  const std::size_t slot = slots_.size();
  slots_.EnsureSize(slot + 1);
  return slot;
}

std::size_t IndexManager::num_live_views() const {
  util::MutexLock lock(&mu_);
  return num_live_views_;
}

std::size_t IndexManager::num_staged_changes() const {
  util::MutexLock lock(&mu_);
  return num_staged_;
}

std::size_t IndexManager::num_retained_versions() const {
  util::MutexLock lock(&mu_);
  return versions_.size();
}

IndexManager::TierStats IndexManager::tier_stats() const {
  util::MutexLock lock(&mu_);
  const IndexSnapshot* cur = current_.load(std::memory_order_seq_cst);
  TierStats stats;
  stats.compactions = compactions_run_;
  stats.shards.resize(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const ShardTier& tier = cur->shard(s);
    ShardStats& out = stats.shards[s];
    out.base_views = tier.num_base_views();
    out.delta_views = tier.num_delta_views();
    out.tombstones = tier.num_tombstones();
    out.views = tier.num_views();
    out.refreezes = shard_refreezes_[s];
    stats.base_views += out.base_views;
    stats.delta_views += out.delta_views;
    stats.tombstones += out.tombstones;
  }
  return stats;
}

void IndexManager::ReclaimLocked() {
  const IndexSnapshot* live = current_.load(std::memory_order_seq_cst);
  std::unordered_set<const IndexSnapshot*> pinned;
  pinned.insert(live);
  if (compaction_pin_ != nullptr) pinned.insert(compaction_pin_);
  const std::size_t num_slots = slots_.size();
  for (std::size_t i = 0; i < num_slots; ++i) {
    const IndexSnapshot* hazard =
        slots_.At(i).hazard.load(std::memory_order_seq_cst);
    if (hazard != nullptr) pinned.insert(hazard);
  }
  std::erase_if(versions_,
                [&pinned](const std::unique_ptr<const IndexSnapshot>& v) {
                  return pinned.count(v.get()) == 0;
                });
}

// ----------------------------------------------------------------------
// Compaction
// ----------------------------------------------------------------------

void IndexManager::MaybeScheduleCompactionLocked() {
  if (compaction_pool_ == nullptr) return;
  if (compaction_in_flight_.load(std::memory_order_acquire)) return;
  const IndexSnapshot* cur = current_.load(std::memory_order_seq_cst);
  const std::size_t pending = cur->num_delta_views() + cur->num_tombstones();
  bool trigger = tier_.compact_min_delta_views > 0 &&
                 pending >= tier_.compact_min_delta_views;
  if (!trigger && tier_.compact_min_delta_fraction > 0) {
    const std::size_t base_live = cur->num_base_views();
    trigger = base_live > 0 &&
              static_cast<double>(pending) >=
                  tier_.compact_min_delta_fraction *
                      static_cast<double>(base_live);
  }
  if (!trigger) return;
  compaction_in_flight_.store(true, std::memory_order_release);
  const util::Status submitted = compaction_pool_->TrySubmit(
      [this](std::size_t /*worker_index*/) {
        {
          util::MutexLock serial(&compaction_mu_);
          // A failed run (e.g. an injected compact.swing abort) is dropped
          // on the floor by design: the policy re-triggers at the next
          // Publish and the published state is untouched either way.
          (void)RunCompaction();
        }
        compaction_in_flight_.store(false, std::memory_order_release);
      });
  if (!submitted.ok()) {
    compaction_in_flight_.store(false, std::memory_order_release);
  }
}

util::Result<std::uint64_t> IndexManager::Refreeze() {
  util::MutexLock serial(&compaction_mu_);
  return RunCompaction();
}

util::Result<std::uint64_t> IndexManager::RunCompaction() {
  util::Timer timer;
  // --- Capture: pin the current snapshot and pick the dirty shards — the
  // ones with anything to fold (a delta or tombstones).  Only those shards
  // are rebuilt; the rest ride into the compacted snapshot by pointer.
  const IndexSnapshot* captured = nullptr;
  std::vector<std::size_t> dirty;
  std::string checkpoint_path;
  {
    util::MutexLock lock(&mu_);
    checkpoint_path = checkpoint_path_;
    captured = current_.load(std::memory_order_seq_cst);
    for (std::size_t s = 0; s < num_shards_; ++s) {
      const ShardTier& tier = captured->shard(s);
      if (tier.delta != nullptr || !tier.tombstones.empty()) {
        dirty.push_back(s);
      }
    }
    if (dirty.empty()) return captured->version;  // nothing to fold in
    compaction_pin_ = captured;
  }

  // --- Build, off every lock: merge each dirty shard's visible views into a
  // fresh pointer tree, then freeze it.  This re-inserts only entries that
  // were prepared against this dictionary when they were first published, so
  // every canonical variable the serialisation asks for already exists and
  // the build never writes the dictionary — it may safely overlap staging
  // (see the class threading contract).
  auto clear_pin = [this] {
    util::MutexLock lock(&mu_);
    compaction_pin_ = nullptr;
  };
  struct Folded {
    std::size_t shard = 0;
    std::shared_ptr<const index::FrozenMvIndex> frozen;  // null = emptied
    std::shared_ptr<const std::vector<std::uint64_t>> frozen_ids;
  };
  std::vector<Folded> folded;
  folded.reserve(dirty.size());
  for (std::size_t s : dirty) {
    const ShardTier& tier = captured->shard(s);
    auto merged = std::make_unique<index::MvIndex>(dict_, options_);
    std::vector<std::uint64_t> merged_ids;
    util::Status build_error = util::Status::OK();
    auto insert_tier = [&](const auto& tier_index, bool mask_tombstones) {
      for (std::uint32_t id = 0;
           build_error.ok() && id < tier_index.num_entries(); ++id) {
        if (!tier_index.alive(id)) continue;
        for (std::uint64_t ext : tier_index.external_ids(id)) {
          if (mask_tombstones && SortedContains(tier.tombstones, ext)) {
            continue;
          }
          auto outcome = merged->Insert(tier_index.entry(id).canonical, ext);
          if (!outcome.ok()) {
            build_error = outcome.status();
            break;
          }
          merged_ids.push_back(ext);
        }
      }
    };
    if (tier.base != nullptr) insert_tier(*tier.base, true);
    if (tier.delta != nullptr) insert_tier(*tier.delta, false);
    if (!build_error.ok()) {
      clear_pin();
      return util::Status(
          build_error.code(),
          "compaction merge failed: " + build_error.message());
    }
    std::sort(merged_ids.begin(), merged_ids.end());
    Folded fold;
    fold.shard = s;
    if (!merged_ids.empty()) {
      // A shard whose every view was tombstoned folds to nothing — its tier
      // becomes empty and probes skip it entirely.
      fold.frozen = std::make_shared<const index::FrozenMvIndex>(  // NOLINT(frozen-construction): the sanctioned freeze site
          *merged);
      fold.frozen_ids = std::make_shared<const std::vector<std::uint64_t>>(
          std::move(merged_ids));
    }
    folded.push_back(std::move(fold));
  }

  if (compaction_hook_) compaction_hook_();

  // --- Swing: reconcile each folded shard against whatever is current *now*
  // (publishes may have run during the build) and publish the compacted
  // tiers through the same atomic pointer swing as Publish.
  std::uint64_t swung_version = 0;
  {
    util::MutexLock lock(&mu_);
    compaction_pin_ = nullptr;
    if (RDFC_FAILPOINT("compact.swing")) {
      // Same transactional contract as publish.swing: an aborted compaction
      // leaves the published chain and all staged state untouched — the
      // merged builds are simply dropped.
      return util::Status::Internal("failpoint compact.swing");
    }
    const IndexSnapshot* cur = current_.load(std::memory_order_seq_cst);
    auto next = std::make_unique<IndexSnapshot>();
    next->version = next_version_;
    next->dict_ptr = dict_;
    next->num_views = cur->num_views;
    next->shards = cur->shards;
    static const std::vector<std::uint64_t> kNoIds;
    for (Folded& fold : folded) {
      const std::size_t s = fold.shard;
      const ShardTier& cur_tier = cur->shard(s);
      const std::vector<std::uint64_t>& frozen_ids =
          fold.frozen_ids != nullptr ? *fold.frozen_ids : kNoIds;
      auto tier = std::make_shared<ShardTier>();
      tier->base = fold.frozen;
      tier->base_view_ids = fold.frozen_ids;
      // New delta: the shard's views published since the capture — exactly
      // cur's delta ids not yet baked into the new base.  Small (the
      // publishes of one compaction window), so rebuilding it under mu_ is
      // cheap; the inserts are re-inserts of prepared views (dictionary
      // fast path, as above).
      std::vector<std::uint64_t> keep;
      std::set_difference(cur_tier.delta_view_ids.begin(),
                          cur_tier.delta_view_ids.end(), frozen_ids.begin(),
                          frozen_ids.end(), std::back_inserter(keep));
      if (!keep.empty()) {
        auto delta = std::make_unique<index::MvIndex>(dict_, options_);
        for (std::uint64_t id : keep) {
          auto outcome = delta->Insert(views_[view_pos_.at(id)].query, id);
          RDFC_CHECK(outcome.ok());  // re-insert of a published view
        }
        tier->delta = std::move(delta);
        tier->delta_view_ids = std::move(keep);
      }
      // New tombstones: ids baked into the new base but no longer visible
      // in cur — removals published during the build.
      std::vector<std::uint64_t> visible;
      if (cur_tier.base_view_ids != nullptr) {
        std::set_difference(cur_tier.base_view_ids->begin(),
                            cur_tier.base_view_ids->end(),
                            cur_tier.tombstones.begin(),
                            cur_tier.tombstones.end(),
                            std::back_inserter(visible));
      }
      std::vector<std::uint64_t> visible_all;
      std::set_union(visible.begin(), visible.end(),
                     cur_tier.delta_view_ids.begin(),
                     cur_tier.delta_view_ids.end(),
                     std::back_inserter(visible_all));
      std::set_difference(frozen_ids.begin(), frozen_ids.end(),
                          visible_all.begin(), visible_all.end(),
                          std::back_inserter(tier->tombstones));
      next->shards[s] = tier;
      ShardState& state = shards_[s];
      state.base = fold.frozen;
      state.base_ids = fold.frozen_ids;
      state.published = std::move(tier);
      ++state.generation;
      ++shard_refreezes_[s];
      RebuildPendingLocked(s, frozen_ids);
    }
    swung_version = SwingLocked(std::move(next));
    ++compactions_run_;
    if (compaction_listener_) compaction_listener_(timer.ElapsedMicros());
  }
  if (!checkpoint_path.empty()) {
    // Checkpoint-on-compaction (EnableJournal): persisting the compacted
    // image here is what lets the journal truncate, so its length tracks
    // the delta published since the last fold instead of growing without
    // bound.  Best-effort: a failed checkpoint keeps every record and the
    // next compaction retries.
    const util::Status checkpointed = SaveTiered(checkpoint_path);
    (void)checkpointed;
  }
  return swung_version;
}

void IndexManager::RebuildPendingLocked(
    std::size_t s, const std::vector<std::uint64_t>& new_base_ids) {
  ShardState& state = shards_[s];
  state.pending_delta_ids.clear();
  state.pending_tombstones.clear();
  // One sweep over the shard's records re-derives both pending sets against
  // the new base generation: a live view not in the base still needs a delta
  // slot; a dead view in the base needs a tombstone (whether its removal is
  // already published or still staged, `alive` is false either way).
  // O(shard records), once per folded shard per compaction.
  for (std::size_t pos : shard_records_[s]) {
    ViewRecord& record = views_[pos];
    record.in_base = SortedContains(new_base_ids, record.id);
    if (record.alive && !record.in_base) {
      state.pending_delta_ids.push_back(record.id);
    } else if (!record.alive && record.in_base) {
      state.pending_tombstones.push_back(record.id);
    }
  }
  // Shard records are id-ascending in normal operation but not after
  // RestoreTiered; sort unconditionally (cheap, and the invariant stays
  // local).
  std::sort(state.pending_delta_ids.begin(), state.pending_delta_ids.end());
  std::sort(state.pending_tombstones.begin(), state.pending_tombstones.end());
}

// ----------------------------------------------------------------------
// Persistence
// ----------------------------------------------------------------------

util::Status IndexManager::SaveTiered(const std::string& path) {
  util::MutexLock lock(&mu_);
  const IndexSnapshot* cur = current_.load(std::memory_order_seq_cst);
  std::vector<index::TieredShardRef> refs;
  refs.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const ShardTier& tier = cur->shard(s);
    index::TieredShardRef ref;
    ref.base = tier.base.get();
    ref.delta = tier.delta.get();
    ref.tombstones = &tier.tombstones;
    ref.generation = shards_[s].generation;
    refs.push_back(ref);
  }
  RDFC_RETURN_NOT_OK(index::SaveTieredIndex(refs, path));
  if (journal_ != nullptr) {
    // Every journal record belongs to a batch published at or below the
    // version just committed (append happens strictly before the swing), so
    // the image covers the whole journal.  A crash between the commit above
    // and this truncation replays covered records over the restored image —
    // harmless, replay is idempotent.
    RDFC_RETURN_NOT_OK(journal_->Truncate());
  }
  return util::Status::OK();
}

util::Status IndexManager::RestoreTiered(const std::string& path) {
  util::MutexLock lock(&mu_);
  if (next_version_ != 1 || !views_.empty() || num_staged_ != 0) {
    return util::Status::InvalidArgument(
        "RestoreTiered requires a fresh manager");
  }
  RDFC_ASSIGN_OR_RETURN(index::TieredImage image,
                        index::LoadTieredIndex(path, dict_));
  if (image.shards.size() != num_shards_) {
    // Shard routing is baked into the frozen bases, so a restore cannot
    // re-shard; reload with TierOptions::num_shards matching the image.
    return util::Status::InvalidArgument(
        "tiered image has " + std::to_string(image.shards.size()) +
        " shards but the manager is configured for " +
        std::to_string(num_shards_));
  }

  auto next = std::make_unique<IndexSnapshot>();
  next->version = next_version_;
  next->dict_ptr = dict_;
  next->shards.reserve(num_shards_);

  // Rebuild the authoritative view records from each shard's two tiers:
  // tombstoned base ids come back as dead records (they still need their
  // tombstone until the next compaction drops them).  A record's shard is
  // the image section it came from — the signature routing that put it
  // there is dictionary-independent, so it stays consistent.
  auto restore_records = [this](const auto& tier_index, std::uint32_t shard,
                                bool in_base,
                                const std::vector<std::uint64_t>& dead) {
    std::vector<std::uint64_t> ids;
    for (std::uint32_t id = 0; id < tier_index.num_entries(); ++id) {
      if (!tier_index.alive(id)) continue;
      for (std::uint64_t ext : tier_index.external_ids(id)) {
        ViewRecord record;
        record.id = ext;
        record.query = tier_index.entry(id).canonical;
        record.shard = shard;
        record.alive = !SortedContains(dead, ext);
        record.in_base = in_base;
        view_pos_.emplace(ext, views_.size());
        shard_records_[shard].push_back(views_.size());
        views_.push_back(std::move(record));
        if (views_.back().alive) ++num_live_views_;
        next_view_id_ = std::max(next_view_id_, ext + 1);
        ids.push_back(ext);
      }
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  for (std::size_t s = 0; s < num_shards_; ++s) {
    index::TieredShardImage& shard_image = image.shards[s];
    ShardState& state = shards_[s];
    auto tier = std::make_shared<ShardTier>();
    tier->tombstones = std::move(shard_image.tombstones);
    if (shard_image.base != nullptr) {
      std::vector<std::uint64_t> base_ids =
          restore_records(*shard_image.base, static_cast<std::uint32_t>(s),
                          /*in_base=*/true, tier->tombstones);
      state.base_ids = std::make_shared<const std::vector<std::uint64_t>>(
          std::move(base_ids));
      state.base = std::shared_ptr<const index::FrozenMvIndex>(
          std::move(shard_image.base));
      tier->base = state.base;
      tier->base_view_ids = state.base_ids;
    }
    if (shard_image.delta != nullptr) {
      tier->delta_view_ids =
          restore_records(*shard_image.delta, static_cast<std::uint32_t>(s),
                          /*in_base=*/false, {});
      state.pending_delta_ids = tier->delta_view_ids;
      tier->delta = std::shared_ptr<const index::MvIndex>(
          std::move(shard_image.delta));
    }
    state.pending_tombstones = tier->tombstones;
    state.generation = shard_image.generation;
    state.published = tier;
    next->shards.push_back(std::move(tier));
  }
  next->num_views = num_live_views_;
  (void)SwingLocked(std::move(next));
  return util::Status::OK();
}

// ----------------------------------------------------------------------
// Write-ahead journal (DESIGN.md "Durability")
// ----------------------------------------------------------------------

util::Status IndexManager::EnableJournal(const index::JournalOptions& options,
                                         std::string checkpoint_path) {
  {
    util::MutexLock lock(&mu_);
    if (journal_ != nullptr) {
      return util::Status::InvalidArgument("journal already enabled");
    }
    if (num_staged_ != 0) {
      return util::Status::InvalidArgument(
          "EnableJournal with staged changes: publish or drop them first "
          "(staged intents predate the journal and would not be covered)");
    }
  }
  // Open + replay outside mu_: the replay callback applies each batch under
  // mu_ itself.  No publish can interleave — the caller owns the dictionary
  // writer side (service mutation lock) for the whole call.
  auto replay = [this](const index::JournalBatch& batch) {
    return ApplyReplay(batch);
  };
  auto opened = index::WriteAheadJournal::Open(options, dict_, replay);
  if (!opened.ok()) return opened.status();

  util::MutexLock lock(&mu_);
  journal_ = std::move(opened).value();
  checkpoint_path_ = std::move(checkpoint_path);
  if (journal_->stats().records_replayed > 0) {
    // One unjournaled publish makes everything the replay staged visible.
    // Unjournaled because these ops came *from* the journal: re-appending
    // them would double them on the next recovery.
    auto published = PublishBatchLocked(/*with_journal=*/false);
    if (!published.ok()) return published.status();
  }
  return util::Status::OK();
}

util::Status IndexManager::ApplyReplay(const index::JournalBatch& batch) {
  util::MutexLock lock(&mu_);
  for (const index::JournalOp& op : batch.ops) {
    if (op.kind == index::JournalOp::Kind::kAdd) {
      RDFC_RETURN_NOT_OK(ApplyReplayAddLocked(op.view_id, op.view));
    } else {
      ApplyReplayRemoveLocked(op.view_id);
    }
  }
  return util::Status::OK();
}

util::Status IndexManager::ApplyReplayAddLocked(std::uint64_t id,
                                                const query::BgpQuery& view) {
  if (view_pos_.count(id) != 0) {
    // Already present (restored image, or a record surviving a crash between
    // a checkpoint commit and its journal truncation): skip — idempotence.
    return util::Status::OK();
  }
  if (view.empty()) {
    return util::Status::Internal("journal replay: empty view " +
                                  std::to_string(id));
  }
  ViewRecord record;
  record.id = id;
  record.shard = static_cast<std::uint32_t>(
      query::AnchorSignature(view, *dict_) % num_shards_);
  record.query = view;
  view_pos_.emplace(record.id, views_.size());
  shard_records_[record.shard].push_back(views_.size());
  const std::uint32_t shard = record.shard;
  views_.push_back(std::move(record));
  // Replayed ids ascend within the journal but may interleave with a
  // restored image's delta ids, so insert sorted rather than append.
  ShardState& state = shards_[shard];
  state.pending_delta_ids.insert(
      std::upper_bound(state.pending_delta_ids.begin(),
                       state.pending_delta_ids.end(), id),
      id);
  ++num_live_views_;
  ++num_staged_;
  // Keep fresh StageAdd ids disjoint from everything the journal ever
  // assigned, exactly as RestoreTiered does for image ids.
  next_view_id_ = std::max(next_view_id_, id + 1);
  return util::Status::OK();
}

void IndexManager::ApplyReplayRemoveLocked(std::uint64_t id) {
  auto it = view_pos_.find(id);
  if (it == view_pos_.end() || !views_[it->second].alive) {
    // Unknown (its add was folded away before the covering image) or already
    // dead (restored as tombstoned): skip — idempotence.
    return;
  }
  ViewRecord& record = views_[it->second];
  record.alive = false;
  --num_live_views_;
  ++num_staged_;
  ShardState& state = shards_[record.shard];
  if (record.in_base) {
    state.pending_tombstones.insert(
        std::upper_bound(state.pending_tombstones.begin(),
                         state.pending_tombstones.end(), id),
        id);
  } else {
    auto pos = std::lower_bound(state.pending_delta_ids.begin(),
                                state.pending_delta_ids.end(), id);
    RDFC_DCHECK(pos != state.pending_delta_ids.end() && *pos == id);
    state.pending_delta_ids.erase(pos);
  }
}

index::JournalStats IndexManager::journal_stats() const {
  util::MutexLock lock(&mu_);
  return journal_ != nullptr ? journal_->stats_snapshot()
                             : index::JournalStats{};
}

bool IndexManager::journal_enabled() const {
  util::MutexLock lock(&mu_);
  return journal_ != nullptr;
}

// ----------------------------------------------------------------------
// Reader side
// ----------------------------------------------------------------------

IndexManager::ReadGuard IndexManager::Acquire(std::size_t reader_slot)
    RDFC_READPATH {
  RDFC_DCHECK(reader_slot < slots_.size());  // RegisterReader before Acquire
  const ReadGuard::Slot& slot = slots_.At(reader_slot);
  const IndexSnapshot* snapshot = current_.load(std::memory_order_seq_cst);
  for (;;) {
    // Announce, then revalidate: the writer publishes before sweeping, so
    // either it sees this announcement or we see its new pointer (class
    // comment has the full argument).
    slot.hazard.store(snapshot, std::memory_order_seq_cst);
    const IndexSnapshot* check = current_.load(std::memory_order_seq_cst);
    if (check == snapshot) break;
    snapshot = check;
  }
  return ReadGuard(&slot, snapshot);
}

void IndexManager::ReadGuard::Release() RDFC_READPATH {
  if (slot_ != nullptr) {
    slot_->hazard.store(nullptr, std::memory_order_release);
    slot_ = nullptr;
    snapshot_ = nullptr;
  }
}

}  // namespace service
}  // namespace rdfc
