#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/macros.h"
#include "util/stats.h"
#include "util/thread_annotations.h"

namespace rdfc {
namespace service {

/// Lock-free histogram sharable across threads: the fixed power-of-two
/// bucket layout of util::LatencyHistogram with atomic counters.  Record is
/// one relaxed fetch_add; the (rare) snapshot path folds the counters into a
/// plain LatencyHistogram for percentile extraction.
class AtomicHistogram {
 public:
  AtomicHistogram() = default;
  RDFC_DISALLOW_COPY_AND_ASSIGN(AtomicHistogram);

  void Record(double micros) RDFC_READPATH {
    buckets_[util::LatencyHistogram::BucketIndex(micros)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Folds this histogram's counts into `out` (bucket-midpoint sum
  /// accounting; see LatencyHistogram::AddBucketCount).
  void MergeInto(util::LatencyHistogram* out) const {
    for (std::size_t i = 0; i < util::LatencyHistogram::kNumBuckets; ++i) {
      out->AddBucketCount(i, buckets_[i].load(std::memory_order_relaxed));
    }
  }

 private:
  std::array<std::atomic<std::uint64_t>, util::LatencyHistogram::kNumBuckets>
      buckets_{};
};

/// Point-in-time fold of ServiceMetrics, safe to read at leisure.
struct MetricsSnapshot {
  std::uint64_t submitted = 0;         // admitted into the queue
  std::uint64_t rejected = 0;          // shed with ResourceExhausted
  std::uint64_t completed = 0;         // probes that ran to completion
  std::uint64_t degraded = 0;          // budget expired mid-probe (sound,
                                       // possibly incomplete answer)
  std::uint64_t quarantined = 0;       // short-circuited by the breaker
  std::uint64_t deadline_expired = 0;  // expired before their probe ran
  std::uint64_t publishes = 0;         // index versions published
  std::uint64_t compactions = 0;       // delta-into-base refreezes completed

  // Tier breakdown of the current published version (DESIGN.md "Tiered
  // write path").  Gauges, not counters: the service samples them from
  // IndexManager::tier_stats() at snapshot time.
  std::uint64_t base_views = 0;   // external ids baked into the frozen bases
  std::uint64_t delta_views = 0;  // views in the pointer-tree deltas
  std::uint64_t tombstones = 0;   // base ids masked as removed

  /// Per-shard split of the gauges above plus each shard's lifetime
  /// refreeze count (DESIGN.md "Sharded index"); one entry per index shard
  /// in routing order.  Sampled from IndexManager::tier_stats().
  struct IndexShard {
    std::uint64_t views = 0;       // base - tombstones + delta
    std::uint64_t base_views = 0;
    std::uint64_t delta_views = 0;
    std::uint64_t tombstones = 0;
    std::uint64_t refreezes = 0;
  };
  std::vector<IndexShard> index_shards;

  // Durability (DESIGN.md "Durability").  Gauges sampled from
  // IndexManager::journal_stats() at snapshot time; all zero while no
  // journal is enabled.
  bool journal_enabled = false;
  std::uint64_t journal_appends = 0;           // batch records written
  std::uint64_t journal_fsyncs = 0;            // disk barriers issued
  std::uint64_t journal_replayed_records = 0;  // records recovered at open
  std::uint64_t journal_replayed_ops = 0;      // ops inside those records
  std::uint64_t journal_truncated_bytes = 0;   // torn/corrupt tail dropped
  std::uint64_t journal_last_sequence = 0;     // latest durable batch
  /// Replay stopped early leaving unreplayed records; appends are refused
  /// until a clean re-open (index::JournalStats::degraded).
  bool journal_degraded = false;
  /// Startup recovery (restore + replay) in flight: the process is live but
  /// not ready (ContainmentService::recovering).
  bool recovering = false;

  /// Probes answered without any pool fan-out (<= 1 populated shard, or the
  /// pool shed every helper): the single-walker inline path.
  std::uint64_t direct_routed = 0;

  /// Probe-walk scratch high-water marks (index/walk_stats.h): the deepest
  /// frame stack, most parked MatchState slots, and most parked buffers any
  /// worker reached.  Gauges sampled at snapshot time.
  std::uint64_t scratch_frame_high_water = 0;
  std::uint64_t scratch_states_high_water = 0;
  std::uint64_t scratch_spare_high_water = 0;

  // Network front end (DESIGN.md "Network front end").  Recorded by the
  // net::NetServer I/O loop; all zero when the service runs in-process only.
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;   // incl. protocol-error closes
  std::uint64_t connections_open = 0;     // gauge: accepted - closed
  std::uint64_t net_bytes_in = 0;         // frame bytes read off sockets
  std::uint64_t net_bytes_out = 0;        // frame bytes written to sockets
  /// Framing violations (oversized frame, truncated/garbled payload) — each
  /// one closed exactly the offending connection.
  std::uint64_t net_protocol_errors = 0;

  // Batch admission (anchor-signature grouping at the net front end).
  std::uint64_t batches = 0;          // groups admitted via grouped SubmitBatch
  std::uint64_t batch_requests = 0;   // requests admitted inside those groups
  /// Requests answered by fanning out a batch sibling's identical probe
  /// instead of walking the index again — the measurable probe-cost saving
  /// of anchor-signature grouping.
  std::uint64_t batch_dedup_hits = 0;

  /// Distribution of admitted group sizes (value = requests per group, not
  /// microseconds; the power-of-two buckets read directly as sizes).
  util::LatencyHistogram batch_size;
  /// How long a request waited in the accumulation window before its group
  /// was admitted — the latency cost bounded by the batching window.
  util::LatencyHistogram batch_wait_micros;

  util::LatencyHistogram queue_micros;   // admission -> worker pickup
  util::LatencyHistogram filter_micros;  // radix walk (PTime filter)
  util::LatencyHistogram verify_micros;  // candidate decisions (incl. NP)
  util::LatencyHistogram total_micros;   // admission -> response ready
  /// Admission -> response for degraded probes only.  Kept out of
  /// total_micros so healthy latency percentiles are not polluted by
  /// deliberately-truncated work (and vice versa: this histogram shows how
  /// tightly degradation bounds pathological probes).
  util::LatencyHistogram degraded_micros;
  /// Wall-clock of completed compactions (merge build + swing).
  util::LatencyHistogram compaction_micros;
  /// Probe fan-out width: parallel walkers (caller + admitted pool helpers)
  /// per executed probe.  Value is a walker count, not microseconds; the
  /// power-of-two buckets read directly as widths.  Width 1 = direct_routed.
  util::LatencyHistogram fanout_width;

  /// Multi-line human-readable table (rdfc_stats --service, rdfc_serve).
  void Print(std::ostream& os) const;
  /// Single JSON object with counters plus count/mean/p50/p95/p99 per stage.
  std::string ToJson() const;
};

/// Per-stage counters and latency histograms for the containment service.
///
/// The record path takes no locks anywhere: counters are relaxed atomics and
/// each worker writes a cache-line-padded shard indexed by its worker id, so
/// two workers never contend on a line.  Snapshot() merges the shards into a
/// MetricsSnapshot — approximate under concurrency (relaxed reads), exact
/// once the pool is quiescent, which is all a stats endpoint needs.
class ServiceMetrics {
 public:
  explicit ServiceMetrics(std::size_t num_worker_shards);
  RDFC_DISALLOW_COPY_AND_ASSIGN(ServiceMetrics);

  // Producer side (any thread).
  void RecordSubmitted() RDFC_READPATH {
    submitted_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordRejected() RDFC_READPATH {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordPublish() RDFC_READPATH {
    publishes_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One completed compaction (called from the compaction thread via the
  /// manager's listener; low-rate, so a single unsharded histogram is fine).
  void RecordCompaction(double micros) {
    compactions_.fetch_add(1, std::memory_order_relaxed);
    compaction_.Record(micros);
  }

  // Worker side; `shard` is the worker index and must be < num_shards() —
  // the service sizes the shard array to the pool width and passes the
  // pool's worker_index straight through.
  void RecordCompleted(std::size_t shard, double queue_micros,
                       double filter_micros, double verify_micros,
                       double total_micros);
  /// A probe whose budget expired mid-run: answered (sound but possibly
  /// incomplete), counted apart from completed so degraded rate is visible.
  void RecordDegraded(std::size_t shard, double queue_micros,
                      double filter_micros, double verify_micros,
                      double total_micros);
  /// A probe the quarantine breaker short-circuited without running.
  void RecordQuarantined(std::size_t shard, double queue_micros,
                         double total_micros);
  void RecordDeadlineExpired(std::size_t shard, double queue_micros);
  /// Fan-out width of one executed probe: how many parallel walkers (caller
  /// + admitted pool helpers) covered the index shards; 1 = fully inline.
  void RecordFanout(std::size_t shard, std::uint32_t walkers);

  /// A batch sibling answered from an identical probe's result instead of a
  /// fresh walk (worker side, but low-rate enough for one shared counter).
  void RecordBatchDedup() RDFC_READPATH {
    batch_dedup_hits_.fetch_add(1, std::memory_order_relaxed);
  }

  // Net front-end side.  Called from the single NetServer I/O thread (plus
  // Shutdown), so unsharded relaxed atomics cost nothing.
  void RecordConnectionOpened() RDFC_READPATH {
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordConnectionClosed() RDFC_READPATH {
    connections_closed_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddNetBytesIn(std::uint64_t n) RDFC_READPATH {
    net_bytes_in_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddNetBytesOut(std::uint64_t n) RDFC_READPATH {
    net_bytes_out_.fetch_add(n, std::memory_order_relaxed);
  }
  void RecordProtocolError() RDFC_READPATH {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One group admitted via the grouped SubmitBatch: its size and how long
  /// its oldest request waited in the accumulation window.
  void RecordBatch(std::size_t size, double wait_micros) RDFC_READPATH {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_requests_.fetch_add(size, std::memory_order_relaxed);
    batch_size_.Record(static_cast<double>(size));
    batch_wait_.Record(wait_micros);
  }

  MetricsSnapshot Snapshot() const;

  std::size_t num_shards() const { return num_shards_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> quarantined{0};
    std::atomic<std::uint64_t> deadline_expired{0};
    std::atomic<std::uint64_t> direct_routed{0};
    AtomicHistogram queue;
    AtomicHistogram filter;
    AtomicHistogram verify;
    AtomicHistogram total;
    AtomicHistogram degraded_total;
    AtomicHistogram fanout;
  };

  const std::size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> compactions_{0};
  AtomicHistogram compaction_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> net_bytes_in_{0};
  std::atomic<std::uint64_t> net_bytes_out_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_requests_{0};
  std::atomic<std::uint64_t> batch_dedup_hits_{0};
  AtomicHistogram batch_size_;
  AtomicHistogram batch_wait_;
};

}  // namespace service
}  // namespace rdfc
