#include "rdfs/schema.h"

#include <deque>

namespace rdfc {
namespace rdfs {

const char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
const char kRdfsSubClassOf[] = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
const char kRdfsSubPropertyOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
const char kRdfsDomain[] = "http://www.w3.org/2000/01/rdf-schema#domain";
const char kRdfsRange[] = "http://www.w3.org/2000/01/rdf-schema#range";

void RdfsSchema::AddSubClass(rdf::TermId sub, rdf::TermId super) {
  sub_class_[sub].push_back(super);
  super_class_inv_[super].push_back(sub);
  super_class_cache_.clear();
}

void RdfsSchema::AddSubProperty(rdf::TermId sub, rdf::TermId super) {
  sub_property_[sub].push_back(super);
  super_property_inv_[super].push_back(sub);
  super_property_cache_.clear();
}

void RdfsSchema::AddDomain(rdf::TermId property, rdf::TermId cls) {
  domain_[property].push_back(cls);
}

void RdfsSchema::AddRange(rdf::TermId property, rdf::TermId cls) {
  range_[property].push_back(cls);
}

void RdfsSchema::LoadFromGraph(const rdf::Graph& graph,
                               const rdf::TermDictionary& dict) {
  const rdf::TermId sub_class =
      dict.Lookup(rdf::TermKind::kIri, kRdfsSubClassOf);
  const rdf::TermId sub_property =
      dict.Lookup(rdf::TermKind::kIri, kRdfsSubPropertyOf);
  const rdf::TermId domain = dict.Lookup(rdf::TermKind::kIri, kRdfsDomain);
  const rdf::TermId range = dict.Lookup(rdf::TermKind::kIri, kRdfsRange);
  for (const rdf::Triple& t : graph.triples()) {
    if (t.p == sub_class && sub_class != rdf::kNullTerm) {
      AddSubClass(t.s, t.o);
    } else if (t.p == sub_property && sub_property != rdf::kNullTerm) {
      AddSubProperty(t.s, t.o);
    } else if (t.p == domain && domain != rdf::kNullTerm) {
      AddDomain(t.s, t.o);
    } else if (t.p == range && range != rdf::kNullTerm) {
      AddRange(t.s, t.o);
    }
  }
}

std::vector<rdf::TermId> RdfsSchema::Reachable(
    const std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>& edges,
    rdf::TermId start) {
  std::vector<rdf::TermId> out;
  std::unordered_set<rdf::TermId> seen;
  std::deque<rdf::TermId> queue;
  queue.push_back(start);
  seen.insert(start);
  while (!queue.empty()) {
    const rdf::TermId current = queue.front();
    queue.pop_front();
    out.push_back(current);
    auto it = edges.find(current);
    if (it == edges.end()) continue;
    for (rdf::TermId next : it->second) {
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return out;
}

const std::vector<rdf::TermId>& RdfsSchema::SuperClassesOf(
    rdf::TermId cls) const {
  auto it = super_class_cache_.find(cls);
  if (it == super_class_cache_.end()) {
    it = super_class_cache_.emplace(cls, Reachable(sub_class_, cls)).first;
  }
  return it->second;
}

const std::vector<rdf::TermId>& RdfsSchema::SuperPropertiesOf(
    rdf::TermId property) const {
  auto it = super_property_cache_.find(property);
  if (it == super_property_cache_.end()) {
    it = super_property_cache_
             .emplace(property, Reachable(sub_property_, property))
             .first;
  }
  return it->second;
}

std::vector<rdf::TermId> RdfsSchema::SubClassesOf(rdf::TermId cls) const {
  return Reachable(super_class_inv_, cls);
}

std::vector<rdf::TermId> RdfsSchema::SubPropertiesOf(
    rdf::TermId property) const {
  return Reachable(super_property_inv_, property);
}

const std::vector<rdf::TermId>& RdfsSchema::DomainsOf(
    rdf::TermId property) const {
  static const std::vector<rdf::TermId> kEmpty;
  auto it = domain_.find(property);
  return it == domain_.end() ? kEmpty : it->second;
}

const std::vector<rdf::TermId>& RdfsSchema::RangesOf(
    rdf::TermId property) const {
  static const std::vector<rdf::TermId> kEmpty;
  auto it = range_.find(property);
  return it == range_.end() ? kEmpty : it->second;
}

}  // namespace rdfs
}  // namespace rdfc
