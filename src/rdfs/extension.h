#pragma once

#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "rdfs/schema.h"

namespace rdfc {
namespace rdfs {

/// The query-extension operator of Section 6: treats the query's variables
/// as if they were IRIs, saturates the pattern set under the RDFS rules
///
///   (x, type, A), A ⊑ B            =>  (x, type, B)
///   (x, p, y),    p ⊑ q            =>  (x, q, y)
///   (x, p, y),    domain(p) = C    =>  (x, type, C)
///   (x, p, y),    range(p)  = C    =>  (y, type, C)
///
/// to a fix point, and returns the extended query.  By Proposition 6.1,
/// Q ⊑_R W holds iff a containment mapping W -> extend(Q) exists, so the
/// probe side of the pipeline/mv-index simply swaps Q for extend(Q).
///
/// Patterns whose predicate is a variable get no property-inclusion
/// saturation (the property is unknown), matching the paper's restriction of
/// the technique to schema-relevant positions.
query::BgpQuery ExtendQuery(const query::BgpQuery& q,
                            const RdfsSchema& schema,
                            rdf::TermDictionary* dict);

}  // namespace rdfs
}  // namespace rdfc
