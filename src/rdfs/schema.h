#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/graph.h"

namespace rdfc {
namespace rdfs {

/// Well-known vocabulary IRIs.
extern const char kRdfType[];
extern const char kRdfsSubClassOf[];
extern const char kRdfsSubPropertyOf[];
extern const char kRdfsDomain[];
extern const char kRdfsRange[];

/// Terminological knowledge in the RDFS fragment the paper handles
/// (Section 6): class inclusions, property inclusions, and domain/range
/// restrictions.  Transitive closures of the two hierarchies are computed
/// lazily and cached.
class RdfsSchema {
 public:
  RdfsSchema() = default;

  /// sub ⊑ super (classes).
  void AddSubClass(rdf::TermId sub, rdf::TermId super);
  /// sub ⊑ super (properties).
  void AddSubProperty(rdf::TermId sub, rdf::TermId super);
  /// domain(property) = cls: (x, property, y) implies (x, type, cls).
  void AddDomain(rdf::TermId property, rdf::TermId cls);
  /// range(property) = cls: (x, property, y) implies (y, type, cls).
  void AddRange(rdf::TermId property, rdf::TermId cls);

  /// Loads schema triples (rdfs:subClassOf / subPropertyOf / domain / range)
  /// out of an RDF graph; other triples are ignored.
  void LoadFromGraph(const rdf::Graph& graph, const rdf::TermDictionary& dict);

  /// All strict-or-reflexive superclasses of `cls` (includes cls itself).
  const std::vector<rdf::TermId>& SuperClassesOf(rdf::TermId cls) const;
  /// All strict-or-reflexive superproperties of `property`.
  const std::vector<rdf::TermId>& SuperPropertiesOf(rdf::TermId property) const;
  /// All subclasses, reflexive (used by the RDFS workload generator).
  std::vector<rdf::TermId> SubClassesOf(rdf::TermId cls) const;
  std::vector<rdf::TermId> SubPropertiesOf(rdf::TermId property) const;

  const std::vector<rdf::TermId>& DomainsOf(rdf::TermId property) const;
  const std::vector<rdf::TermId>& RangesOf(rdf::TermId property) const;

  /// Direct (asserted, non-transitive) edges — for generators/diagnostics.
  const std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>&
  direct_subclass_edges() const {
    return sub_class_;
  }
  const std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>&
  direct_subproperty_edges() const {
    return sub_property_;
  }

  bool empty() const {
    return sub_class_.empty() && sub_property_.empty() && domain_.empty() &&
           range_.empty();
  }

 private:
  /// BFS over `edges` from `start`, reflexive.  Cycles (A ⊑ B ⊑ A) are legal
  /// RDFS and simply make the classes mutually super.
  static std::vector<rdf::TermId> Reachable(
      const std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>& edges,
      rdf::TermId start);

  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> sub_class_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> sub_property_;
  // Inverted edges, for SubClassesOf/SubPropertiesOf.
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> super_class_inv_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> super_property_inv_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> domain_;
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> range_;

  mutable std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>
      super_class_cache_;
  mutable std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>
      super_property_cache_;
};

}  // namespace rdfs
}  // namespace rdfc
