#include "rdfs/materialise.h"

#include <deque>

namespace rdfc {
namespace rdfs {

std::size_t MaterialiseGraph(const RdfsSchema& schema,
                             rdf::TermDictionary* dict, rdf::Graph* graph) {
  const rdf::TermId type = dict->MakeIri(kRdfType);
  std::size_t added = 0;

  // Worklist of triples whose consequences have not been derived yet; the
  // graph's set semantics provide termination (finite derivable space).
  std::deque<rdf::Triple> worklist(graph->triples().begin(),
                                   graph->triples().end());
  auto derive = [&](const rdf::Triple& t) {
    if (graph->Add(t)) {
      ++added;
      worklist.push_back(t);
    }
  };

  while (!worklist.empty()) {
    const rdf::Triple t = worklist.front();
    worklist.pop_front();

    if (t.p == type) {
      for (rdf::TermId super : schema.SuperClassesOf(t.o)) {
        if (super != t.o) derive(rdf::Triple(t.s, type, super));
      }
      continue;
    }
    for (rdf::TermId super : schema.SuperPropertiesOf(t.p)) {
      if (super != t.p) derive(rdf::Triple(t.s, super, t.o));
      for (rdf::TermId cls : schema.DomainsOf(super)) {
        derive(rdf::Triple(t.s, type, cls));
      }
      for (rdf::TermId cls : schema.RangesOf(super)) {
        if (!dict->IsLiteral(t.o)) derive(rdf::Triple(t.o, type, cls));
      }
    }
  }
  return added;
}

}  // namespace rdfs
}  // namespace rdfc
