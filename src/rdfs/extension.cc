#include "rdfs/extension.h"

#include <deque>

namespace rdfc {
namespace rdfs {

query::BgpQuery ExtendQuery(const query::BgpQuery& q, const RdfsSchema& schema,
                            rdf::TermDictionary* dict) {
  const rdf::TermId type = dict->MakeIri(kRdfType);

  query::BgpQuery out;
  out.set_form(q.form());
  out.set_select_all(q.select_all());
  for (rdf::TermId var : q.distinguished()) out.AddDistinguished(var);

  // Worklist saturation; AddPattern's set semantics provide the dedup that
  // guarantees termination (the derivable pattern space is finite).
  std::deque<rdf::Triple> worklist(q.patterns().begin(), q.patterns().end());
  while (!worklist.empty()) {
    const rdf::Triple t = worklist.front();
    worklist.pop_front();
    if (!out.AddPattern(t)) continue;  // already derived

    auto derive = [&](const rdf::Triple& derived) {
      if (!out.ContainsPattern(derived)) worklist.push_back(derived);
    };

    if (t.p == type) {
      // Class inclusion: (x, type, A), A ⊑ B => (x, type, B).
      if (!dict->IsVariable(t.o)) {
        for (rdf::TermId super : schema.SuperClassesOf(t.o)) {
          if (super != t.o) derive(rdf::Triple(t.s, type, super));
        }
      }
      continue;
    }
    if (dict->IsVariable(t.p)) continue;  // unknown property: no saturation

    // Property inclusion: (x, p, y), p ⊑ q => (x, q, y).
    for (rdf::TermId super : schema.SuperPropertiesOf(t.p)) {
      if (super != t.p) derive(rdf::Triple(t.s, super, t.o));
      // Domain/range restrictions apply to p and all its superproperties
      // (p ⊑ q, domain(q) = C, (x, p, y) => (x, type, C)).
      for (rdf::TermId cls : schema.DomainsOf(super)) {
        derive(rdf::Triple(t.s, type, cls));
      }
      for (rdf::TermId cls : schema.RangesOf(super)) {
        // Literals cannot be subjects; a range restriction on a literal
        // object yields no usable pattern.
        if (!dict->IsLiteral(t.o)) derive(rdf::Triple(t.o, type, cls));
      }
    }
  }
  return out;
}

}  // namespace rdfs
}  // namespace rdfc
