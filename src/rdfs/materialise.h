#pragma once

#include "rdf/graph.h"
#include "rdfs/schema.h"

namespace rdfc {
namespace rdfs {

/// Forward-chaining RDFS materialisation over *data*: saturates `graph`
/// under the schema's class/property inclusions and domain/range rules
/// (the data-side counterpart of the query-side ExtendQuery; together they
/// realise Proposition 6.1, which the property tests exploit:
/// Q ⊑_R W  iff  Ask(W, Materialise(freeze(Q), R))).
///
/// Rules applied to fix point (rdfs2/3/7/9 in the RDFS entailment tables):
///   (x, type, A), A ⊑ B          =>  (x, type, B)
///   (x, p, y),    p ⊑ q          =>  (x, q, y)
///   (x, p, y),    domain(p) = C  =>  (x, type, C)
///   (x, p, y),    range(p)  = C  =>  (y, type, C)    [skipped for literals]
///
/// Returns the number of triples added.
std::size_t MaterialiseGraph(const RdfsSchema& schema,
                             rdf::TermDictionary* dict, rdf::Graph* graph);

}  // namespace rdfs
}  // namespace rdfc
