#pragma once

#include <cstdint>
#include <vector>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace rewriting {

struct ViewSelectionOptions {
  /// Maximum number of views to select (0 = unbounded).
  std::size_t max_views = 10;
  /// Stop when the best remaining candidate would serve fewer than this many
  /// workload queries beyond what is already covered.
  std::size_t min_marginal_benefit = 1;
};

struct SelectedView {
  query::BgpQuery definition;
  /// Workload queries (by count, frequency-weighted) this view newly covers
  /// at the time it was picked.
  std::size_t marginal_benefit = 0;
  /// Total workload queries contained in this view, regardless of order.
  std::size_t total_coverage = 0;
};

struct ViewSelectionResult {
  std::vector<SelectedView> views;
  std::size_t workload_size = 0;
  std::size_t covered = 0;  // frequency-weighted queries served by the set
  double coverage_rate() const {
    return workload_size == 0 ? 0.0
                              : static_cast<double>(covered) /
                                    static_cast<double>(workload_size);
  }
};

/// Greedy view selection driven by the mv-index (the optimiser loop the
/// paper positions the index inside, and the application its citation [26]
/// studies): candidates are the workload's distinct queries; the benefit of
/// a candidate is the frequency-weighted number of workload queries it
/// *contains* (computable for all candidates with one index probe per
/// distinct query); selection is greedy weighted max-coverage under a view
/// budget.  The chosen views feed directly into ViewExecutor/SemanticCache.
[[nodiscard]] util::Result<ViewSelectionResult> SelectViews(
    const std::vector<query::BgpQuery>& workload, rdf::TermDictionary* dict,
    const ViewSelectionOptions& options = {});

}  // namespace rewriting
}  // namespace rdfc
