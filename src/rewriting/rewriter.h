#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "containment/homomorphism.h"
#include "eval/evaluator.h"
#include "index/mv_index.h"
#include "query/bgp_query.h"
#include "rdf/graph.h"
#include "util/status.h"

namespace rdfc {
namespace rewriting {

/// How much of a query's output a containment mapping recovers from a view's
/// materialised columns (the paper's "extra step that maps the SELECT clause
/// of W to the SELECT clause of Q").
struct SelectCoverage {
  /// q_var -> column index into the view's projection, for every query
  /// output variable that equals σ(some view output variable).
  std::unordered_map<rdf::TermId, std::size_t> column_of;
  /// Query variables bound by σ's view-output image (not only outputs):
  /// these seed the residual evaluation.
  std::unordered_map<rdf::TermId, std::size_t> seed_of;
  bool full() const { return uncovered == 0; }
  std::size_t uncovered = 0;
};

/// The resolved projection of a query: its explicit SELECT list, or all of
/// its variables under SELECT * / ASK.
std::vector<rdf::TermId> ResolvedProjection(const query::BgpQuery& q,
                                            const rdf::TermDictionary& dict);

/// Computes the coverage of query `q`'s output variables by view `w` under
/// containment mapping `sigma` (σ : vars(W) -> terms(Q)).
SelectCoverage ComputeSelectCoverage(const query::BgpQuery& q,
                                     const query::BgpQuery& w,
                                     const containment::VarMapping& sigma,
                                     const rdf::TermDictionary& dict);

/// A materialised view: definition + projected rows (one row per answer,
/// columns ordered like the definition's resolved projection).
struct MaterialisedView {
  query::BgpQuery definition;
  std::vector<rdf::TermId> columns;  // the projection variables
  std::vector<std::vector<rdf::TermId>> rows;
};

/// Materialises `definition` over `graph`.
MaterialisedView Materialise(const query::BgpQuery& definition,
                             const rdf::Graph& graph,
                             const rdf::TermDictionary& dict);

/// Per-query execution report from the ViewExecutor.
struct ExecutionReport {
  enum class Strategy {
    kFromViewDirect,   // full coverage: answers projected straight off rows
    kFromViewResidual, // rows seed bindings; residual patterns re-checked
    kBaseEvaluation,   // no containing view; evaluated against the graph
  };
  Strategy strategy = Strategy::kBaseEvaluation;
  std::uint32_t view_id = 0;          // meaningful for the view strategies
  std::size_t rows_scanned = 0;       // view rows consumed
  std::size_t eval_steps = 0;         // matcher steps of residual/base eval
  std::vector<std::vector<rdf::TermId>> answers;  // deduplicated projection
};

/// Answers `q` from a materialised view given a containment mapping
/// σ : vars(W) -> terms(Q): every view row seeds a (possibly residual)
/// evaluation of Q, so results are always exactly ans(Q) — the containment
/// guarantees completeness, the evaluation soundness.  Shared by the
/// ViewExecutor and the semantic cache.
ExecutionReport AnswerWithView(const query::BgpQuery& q,
                               const MaterialisedView& view,
                               const containment::VarMapping& sigma,
                               const rdf::Graph& graph,
                               const rdf::TermDictionary& dict);

/// Base-table evaluation with the same report/projection conventions.
ExecutionReport AnswerFromGraph(const query::BgpQuery& q,
                                const rdf::Graph& graph,
                                const rdf::TermDictionary& dict);

/// Answering-queries-using-views executor (Levy et al. via the mv-index):
/// views are registered once (materialised + indexed); Answer() probes the
/// index for containing views, picks the cheapest (fewest rows), and either
/// projects answers directly (full select coverage with an exact pattern
/// image) or seeds a residual evaluation with each row's bindings.  Falls
/// back to base evaluation when no view contains the query.
///
/// Correctness does not depend on the strategy chosen: seeded evaluation
/// still evaluates the query itself, so answers always equal base
/// evaluation (asserted by tests/rewriting/rewriter_test.cc property runs).
struct ExecutorOptions {
  /// Cost rule: a containing view is used only when
  /// `rows * (1 + residual_patterns) <= cost_factor * graph_size`
  /// — i.e. scanning its rows (each seeding a residual evaluation) is
  /// estimated cheaper than evaluating against the base graph.  Large
  /// factors always prefer views; 0 never does.
  double cost_factor = 4.0;
};

class ViewExecutor {
 public:
  ViewExecutor(const rdf::Graph* graph, rdf::TermDictionary* dict,
               const ExecutorOptions& options = {})
      : graph_(graph), dict_(dict), options_(options), index_(dict) {}
  RDFC_DISALLOW_COPY_AND_ASSIGN(ViewExecutor);

  /// Registers and materialises a view; returns its id.
  [[nodiscard]] util::Result<std::uint32_t> AddView(const query::BgpQuery& definition);

  const MaterialisedView& view(std::uint32_t id) const { return views_[id]; }
  std::size_t num_views() const { return views_.size(); }

  /// The underlying mv-index over the view definitions, for callers that
  /// only need containment probes without any evaluation.
  const index::MvIndex& index() const { return index_; }

  /// Answers `q` (projection per its SELECT clause).
  ExecutionReport Answer(const query::BgpQuery& q) const;

 private:
  const rdf::Graph* graph_;
  rdf::TermDictionary* dict_;
  ExecutorOptions options_;
  index::MvIndex index_;
  std::vector<MaterialisedView> views_;
};

}  // namespace rewriting
}  // namespace rdfc
