#include "rewriting/view_selection.h"

#include <unordered_map>

#include "index/mv_index.h"

namespace rdfc {
namespace rewriting {

util::Result<ViewSelectionResult> SelectViews(
    const std::vector<query::BgpQuery>& workload, rdf::TermDictionary* dict,
    const ViewSelectionOptions& options) {
  ViewSelectionResult result;
  result.workload_size = workload.size();
  if (workload.empty()) return result;

  // Dedup the workload; the entry's external-id count is its frequency.
  index::MvIndex index(dict);
  for (std::size_t i = 0; i < workload.size(); ++i) {
    if (workload[i].empty()) continue;
    RDFC_ASSIGN_OR_RETURN(index::MvIndex::InsertOutcome outcome,
                          index.Insert(workload[i], i));
    (void)outcome;
  }
  const auto num_distinct = static_cast<std::uint32_t>(index.num_entries());

  // coverage[v] = distinct-query classes contained in candidate view v.
  // One probe per distinct class discovers, for *every* candidate at once,
  // whether it contains that class — this is exactly the index's job.
  std::vector<std::vector<std::uint32_t>> covers(num_distinct);
  std::vector<std::size_t> frequency(num_distinct, 0);
  for (std::uint32_t q_cls = 0; q_cls < num_distinct; ++q_cls) {
    frequency[q_cls] = index.external_ids(q_cls).size();
    const index::ProbeResult probe =
        index.FindContaining(index.entry(q_cls).canonical);
    for (const auto& match : probe.contained) {
      covers[match.stored_id].push_back(q_cls);
    }
  }

  // Greedy weighted max-coverage.
  std::vector<bool> query_covered(num_distinct, false);
  std::vector<bool> picked(num_distinct, false);
  while (options.max_views == 0 || result.views.size() < options.max_views) {
    std::uint32_t best = num_distinct;
    std::size_t best_gain = 0;
    for (std::uint32_t v = 0; v < num_distinct; ++v) {
      if (picked[v]) continue;
      std::size_t gain = 0;
      for (std::uint32_t q_cls : covers[v]) {
        if (!query_covered[q_cls]) gain += frequency[q_cls];
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best == num_distinct || best_gain < options.min_marginal_benefit) {
      break;
    }
    picked[best] = true;
    SelectedView selected;
    selected.definition = index.entry(best).canonical;
    selected.marginal_benefit = best_gain;
    for (std::uint32_t q_cls : covers[best]) {
      selected.total_coverage += frequency[q_cls];
      query_covered[q_cls] = true;
    }
    result.covered += best_gain;
    result.views.push_back(std::move(selected));
  }
  return result;
}

}  // namespace rewriting
}  // namespace rdfc
