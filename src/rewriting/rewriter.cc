#include "rewriting/rewriter.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace rdfc {
namespace rewriting {

std::vector<rdf::TermId> ResolvedProjection(const query::BgpQuery& q,
                                            const rdf::TermDictionary& dict) {
  if (!q.select_all() && !q.distinguished().empty()) return q.distinguished();
  return q.Variables(dict);
}

SelectCoverage ComputeSelectCoverage(const query::BgpQuery& q,
                                     const query::BgpQuery& w,
                                     const containment::VarMapping& sigma,
                                     const rdf::TermDictionary& dict) {
  SelectCoverage coverage;
  const std::vector<rdf::TermId> view_columns = ResolvedProjection(w, dict);

  // Which query terms do the view's output columns pin down?
  for (std::size_t col = 0; col < view_columns.size(); ++col) {
    auto it = sigma.find(view_columns[col]);
    if (it == sigma.end()) continue;
    const rdf::TermId image = it->second;
    if (dict.IsVariable(image)) {
      coverage.seed_of.emplace(image, col);
    }
  }
  // Which query *output* variables are directly recoverable?
  for (rdf::TermId q_var : ResolvedProjection(q, dict)) {
    auto it = coverage.seed_of.find(q_var);
    if (it != coverage.seed_of.end()) {
      coverage.column_of.emplace(q_var, it->second);
    } else {
      ++coverage.uncovered;
    }
  }
  return coverage;
}

MaterialisedView Materialise(const query::BgpQuery& definition,
                             const rdf::Graph& graph,
                             const rdf::TermDictionary& dict) {
  MaterialisedView view;
  view.definition = definition;
  view.columns = ResolvedProjection(definition, dict);
  // ProjectedAnswers resolves the projection identically, so columns align.
  view.rows = eval::ProjectedAnswers(definition, graph, dict);
  return view;
}

util::Result<std::uint32_t> ViewExecutor::AddView(
    const query::BgpQuery& definition) {
  RDFC_ASSIGN_OR_RETURN(index::MvIndex::InsertOutcome outcome,
                        index_.Insert(definition, views_.size()));
  (void)outcome;
  views_.push_back(Materialise(definition, *graph_, *dict_));
  return static_cast<std::uint32_t>(views_.size() - 1);
}

namespace {

void ProjectInto(const eval::Binding& binding,
                 const std::vector<rdf::TermId>& projection,
                 std::set<std::vector<rdf::TermId>>* answers) {
  std::vector<rdf::TermId> row;
  row.reserve(projection.size());
  for (rdf::TermId var : projection) {
    auto it = binding.find(var);
    row.push_back(it == binding.end() ? rdf::kNullTerm : it->second);
  }
  answers->insert(std::move(row));
}

}  // namespace

ExecutionReport AnswerFromGraph(const query::BgpQuery& q,
                                const rdf::Graph& graph,
                                const rdf::TermDictionary& dict) {
  ExecutionReport report;
  report.strategy = ExecutionReport::Strategy::kBaseEvaluation;
  const std::vector<rdf::TermId> projection = ResolvedProjection(q, dict);
  std::set<std::vector<rdf::TermId>> answers;
  const eval::EvalResult result = eval::Evaluate(q, graph, dict);
  report.eval_steps = result.steps;
  for (const eval::Binding& b : result.solutions) {
    ProjectInto(b, projection, &answers);
  }
  report.answers.assign(answers.begin(), answers.end());
  return report;
}

ExecutionReport AnswerWithView(const query::BgpQuery& q,
                               const MaterialisedView& view,
                               const containment::VarMapping& sigma,
                               const rdf::Graph& graph,
                               const rdf::TermDictionary& dict) {
  ExecutionReport report;
  const std::vector<rdf::TermId> projection = ResolvedProjection(q, dict);
  std::set<std::vector<rdf::TermId>> answers;
  const SelectCoverage coverage =
      ComputeSelectCoverage(q, view.definition, sigma, dict);

  // Does the seed bind every variable of Q?  Then each row only needs a
  // membership re-check of Q's patterns; otherwise the row seeds a residual
  // evaluation.  Both paths evaluate Q itself, so answers stay exact even
  // though ans(Q) ⊆ π_σ(ans(W)) is generally strict.
  const std::vector<rdf::TermId> q_vars = q.Variables(dict);
  const bool all_seeded =
      std::all_of(q_vars.begin(), q_vars.end(), [&](rdf::TermId var) {
        return coverage.seed_of.count(var) > 0;
      });
  report.strategy = all_seeded
                        ? ExecutionReport::Strategy::kFromViewDirect
                        : ExecutionReport::Strategy::kFromViewResidual;

  for (const std::vector<rdf::TermId>& row : view.rows) {
    ++report.rows_scanned;
    eval::EvalOptions options;
    for (const auto& [q_var, col] : coverage.seed_of) {
      options.initial_binding.emplace(q_var, row[col]);
    }
    const eval::EvalResult result = eval::Evaluate(q, graph, dict, options);
    report.eval_steps += result.steps;
    for (const eval::Binding& b : result.solutions) {
      ProjectInto(b, projection, &answers);
    }
  }
  report.answers.assign(answers.begin(), answers.end());
  return report;
}

ExecutionReport ViewExecutor::Answer(const query::BgpQuery& q) const {
  index::ProbeOptions probe_options;
  probe_options.max_mappings = 1;
  const index::ProbeResult probe = index_.FindContaining(q, probe_options);

  // Pick the containing view with the fewest materialised rows (its rows
  // are a complete superset of Q's bindings under σ), subject to the cost
  // rule: each row seeds a residual evaluation, so a huge view over a tiny
  // graph can lose to base evaluation.
  const MaterialisedView* best = nullptr;
  const containment::VarMapping* best_sigma = nullptr;
  std::uint32_t best_view_id = 0;
  for (const auto& match : probe.contained) {
    if (match.outcome.mappings.empty()) continue;
    for (std::uint64_t external_id : index_.external_ids(match.stored_id)) {
      const MaterialisedView& view = views_[external_id];
      if (best == nullptr || view.rows.size() < best->rows.size()) {
        best = &view;
        best_sigma = &match.outcome.mappings[0];
        best_view_id = static_cast<std::uint32_t>(external_id);
      }
    }
  }
  if (best != nullptr) {
    const double view_cost = static_cast<double>(best->rows.size()) *
                             static_cast<double>(1 + q.size());
    const double base_cost =
        options_.cost_factor * static_cast<double>(graph_->size());
    if (view_cost > base_cost) best = nullptr;  // base wins the estimate
  }

  if (best == nullptr) {
    return AnswerFromGraph(q, *graph_, *dict_);
  }
  ExecutionReport report =
      AnswerWithView(q, *best, *best_sigma, *graph_, *dict_);
  report.view_id = best_view_id;
  return report;
}

}  // namespace rewriting
}  // namespace rdfc
