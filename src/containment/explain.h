#pragma once

#include <string>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"

namespace rdfc {
namespace containment {

/// Produces a human-readable account of deciding Q ⊑ W through the paper's
/// pipeline: the probe's structural classification, its witness classes and
/// ND-degree, the serialised form of W's skeleton, every surviving witness
/// filter mapping σ_w, whether the NP verification ran, and — on success —
/// a concrete containment mapping σ.  Intended for debugging, teaching, and
/// the shell's `.explain` command; the decision itself matches Check().
std::string ExplainContainment(const query::BgpQuery& q,
                               const query::BgpQuery& w,
                               rdf::TermDictionary* dict);

}  // namespace containment
}  // namespace rdfc
