#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "util/budget.h"

namespace rdfc {
namespace containment {

/// A containment mapping σ from the variables of W into the terms of Q
/// (Chandra & Merlin): every triple pattern of W, with σ applied, is a
/// triple pattern of Q.  Constants map to themselves and are not recorded.
using VarMapping = std::unordered_map<rdf::TermId, rdf::TermId>;

struct HomomorphismOptions {
  /// Stop after this many mappings (1 = existence check).
  std::size_t max_results = 1;
  /// Safety valve on the backtracking search for adversarial inputs; the
  /// search aborts (reporting what it found so far) after this many
  /// candidate extensions.  0 disables the cap.
  std::size_t max_steps = 0;
  /// Variables of W that must map to themselves (treated like constants).
  /// Non-Boolean equivalence and query minimisation fix the distinguished
  /// variables this way (Chandra-Merlin for queries with output columns).
  std::vector<rdf::TermId> fixed_vars;
  /// Cooperative cancellation: the search polls this at every candidate
  /// extension and aborts (exhausted = false, like max_steps) when it trips.
  /// Not owned; may be null.
  util::ProbeBudget* budget = nullptr;
};

struct HomomorphismResult {
  std::vector<VarMapping> mappings;
  bool exhausted = true;  // false when max_steps tripped
  std::size_t steps = 0;

  bool found() const { return !mappings.empty(); }
};

/// Backtracking search for containment mappings σ : W -> Q.  This is the
/// classic NP procedure and serves three roles in the reproduction:
///   1. ground truth for the PTime f-graph algorithm in tests,
///   2. the "check each pair directly" baseline of the ablation bench,
///   3. the verification step after the witness filter (Section 5.1) when
///      invoked through the pipeline with candidate class constraints.
///
/// Handles variables in any position (including predicates, Section 5.2).
HomomorphismResult FindHomomorphisms(const query::BgpQuery& from_w,
                                     const query::BgpQuery& into_q,
                                     const rdf::TermDictionary& dict,
                                     const HomomorphismOptions& options = {});

/// Convenience: true iff q ⊑ w for Boolean semantics, i.e. a containment
/// mapping w -> q exists.
bool IsContainedIn(const query::BgpQuery& q, const query::BgpQuery& w,
                   const rdf::TermDictionary& dict);

/// Verification with per-variable candidate restrictions: each variable of W
/// may only map to one of `allowed[var]` (when present).  This is how the
/// witness filter's class mappings constrain the NP step (Proposition 5.2:
/// σ(?x) must be a member of the class σ_w(?x)).
HomomorphismResult FindHomomorphismsRestricted(
    const query::BgpQuery& from_w, const query::BgpQuery& into_q,
    const rdf::TermDictionary& dict,
    const std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>& allowed,
    const HomomorphismOptions& options = {});

}  // namespace containment
}  // namespace rdfc
