#include "containment/var_predicates.h"

#include <algorithm>
#include <unordered_set>

namespace rdfc {
namespace containment {

namespace {

/// Candidate values for `var` implied by one var-predicate pattern, given
/// that the opposite end is restricted to the members of class `cls`.
/// `use_subject_side` selects whether the bound end is the subject.
std::vector<rdf::TermId> CandidatesAcrossEdge(
    const query::BgpQuery& probe_patterns, const query::Witness& witness,
    std::uint32_t cls, bool bound_end_is_subject) {
  std::unordered_set<rdf::TermId> bound_members(
      witness.class_members[cls].begin(), witness.class_members[cls].end());
  std::unordered_set<rdf::TermId> out_set;
  for (const rdf::Triple& t : probe_patterns.patterns()) {
    if (bound_end_is_subject) {
      if (bound_members.count(t.s)) out_set.insert(t.o);
    } else {
      if (bound_members.count(t.o)) out_set.insert(t.s);
    }
  }
  return std::vector<rdf::TermId>(out_set.begin(), out_set.end());
}

/// Intersects `values` into allowed[var] (or installs it when absent).
void Restrict(rdf::TermId var, std::vector<rdf::TermId> values,
              std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>*
                  allowed) {
  auto it = allowed->find(var);
  if (it == allowed->end()) {
    (*allowed)[var] = std::move(values);
    return;
  }
  std::unordered_set<rdf::TermId> incoming(values.begin(), values.end());
  auto& existing = it->second;
  existing.erase(std::remove_if(existing.begin(), existing.end(),
                                [&](rdf::TermId v) { return !incoming.count(v); }),
                 existing.end());
}

}  // namespace

void AddVarPredicateBounds(
    const query::BgpQuery& probe_patterns, const rdf::TermDictionary& dict,
    const query::Witness& witness, const MatchState& sigma,
    const std::vector<rdf::Triple>& var_pred_patterns,
    std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>* allowed) {
  auto class_of = [&](rdf::TermId term) -> std::uint32_t {
    if (dict.IsConstant(term)) return witness.ClassOf(term);
    auto it = sigma.sigma.find(term);
    return it == sigma.sigma.end() ? query::Witness::kInvalidClass
                                   : it->second;
  };

  for (const rdf::Triple& t : var_pred_patterns) {
    const std::uint32_t s_cls = class_of(t.s);
    const std::uint32_t o_cls = class_of(t.o);
    // Only derive a bound when exactly the opposite end is pinned; when both
    // ends are pinned the NP search checks the pattern directly, and when
    // neither is pinned no bound is available from this pattern.
    if (s_cls != query::Witness::kInvalidClass &&
        o_cls == query::Witness::kInvalidClass && dict.IsVariable(t.o)) {
      Restrict(t.o,
               CandidatesAcrossEdge(probe_patterns, witness, s_cls,
                                    /*bound_end_is_subject=*/true),
               allowed);
    }
    if (o_cls != query::Witness::kInvalidClass &&
        s_cls == query::Witness::kInvalidClass && dict.IsVariable(t.s)) {
      Restrict(t.s,
               CandidatesAcrossEdge(probe_patterns, witness, o_cls,
                                    /*bound_end_is_subject=*/false),
               allowed);
    }
  }
}

}  // namespace containment
}  // namespace rdfc
