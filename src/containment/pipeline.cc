#include "containment/pipeline.h"

#include <algorithm>

#include "containment/var_predicates.h"
#include "query/witness.h"

namespace rdfc {
namespace containment {

namespace {

/// Stable deduplication key for a class mapping: sorted (term, class) pairs.
std::vector<std::uint64_t> SigmaKey(const MatchState& state) {
  std::vector<std::uint64_t> key;
  key.reserve(state.sigma.size());
  for (const auto& [term, cls] : state.sigma) {
    key.push_back((static_cast<std::uint64_t>(term) << 32) | cls);
  }
  std::sort(key.begin(), key.end());
  return key;
}

VarMapping TranslateToOriginal(
    const VarMapping& canonical_mapping,
    const std::unordered_map<rdf::TermId, rdf::TermId>& original_of) {
  VarMapping out;
  out.reserve(canonical_mapping.size());
  for (const auto& [canonical_var, value] : canonical_mapping) {
    auto it = original_of.find(canonical_var);
    out.emplace(it == original_of.end() ? canonical_var : it->second, value);
  }
  return out;
}

}  // namespace

util::Result<PreparedStored> PrepareStored(const query::BgpQuery& w,
                                           rdf::TermDictionary* dict) {
  PreparedStored out;
  out.shape = query::AnalyzeShape(w, *dict);

  // Split off variable-predicate patterns (Section 5.2), keeping the
  // skeleton for serialisation.
  query::BgpQuery skeleton;
  std::vector<rdf::Triple> raw_var_preds;
  for (const rdf::Triple& t : w.patterns()) {
    if (dict->IsVariable(t.p)) {
      raw_var_preds.push_back(t);
    } else {
      skeleton.AddPattern(t);
    }
  }

  query::CanonicalMap canonical(dict);
  if (!skeleton.empty()) {
    RDFC_ASSIGN_OR_RETURN(query::SerialisedQuery serialised,
                          query::SerialiseQuery(skeleton, dict, &canonical));
    out.tokens = std::move(serialised.tokens);
  }

  // Canonicalise the full pattern set.  Variables that the serialisation
  // never saw (variable predicates, and vertices touched only by
  // var-predicate patterns) are canonicalised now, in pattern order, so the
  // renaming stays deterministic.
  for (const rdf::Triple& t : w.patterns()) {
    const rdf::Triple canonical_triple(canonical.Canonicalise(t.s),
                                       canonical.Canonicalise(t.p),
                                       canonical.Canonicalise(t.o));
    out.canonical.AddPattern(canonical_triple);
    if (dict->IsVariable(t.p)) {
      out.var_pred_patterns.push_back(canonical_triple);
    }
  }
  out.canonical.set_form(query::QueryForm::kAsk);
  out.original_of_canonical = canonical.original_map();
  return out;
}

PreparedProbe PrepareProbe(const query::BgpQuery& q,
                           const rdf::TermDictionary& dict) {
  PreparedProbe out(FGraphView(query::BuildWitness(q), dict));
  out.shape = query::AnalyzeShape(q, dict);
  out.patterns = q;
  return out;
}

CheckOutcome DecideFromSigmas(const PreparedProbe& probe,
                              const PreparedStored& stored,
                              const std::vector<MatchState>& sigmas,
                              const rdf::TermDictionary& dict,
                              const CheckOptions& options) {
  CheckOutcome outcome;

  // The empty query contains every query (Boolean semantics).
  if (stored.canonical.empty()) {
    outcome.contained = true;
    outcome.filter_passed = true;
    if (options.max_mappings > 0) outcome.mappings.emplace_back();
    return outcome;
  }

  outcome.filter_passed = !sigmas.empty();
  outcome.num_filter_sigmas = sigmas.size();
  if (!outcome.filter_passed) {
    // Proposition 5.1 contrapositive: Q_w ⋢ W ⇒ Q ⋢ W.  PTime certainty.
    return outcome;
  }
  if (!options.verify) return outcome;

  const query::Witness& witness = probe.view.witness();

  // --- Phase 2a: PTime certainty when no nondeterminism remains. ---
  if (witness.nd_degree == 1 && stored.var_pred_patterns.empty()) {
    outcome.contained = true;
    if (options.max_mappings > 0) {
      for (const MatchState& st : sigmas) {
        VarMapping concrete;
        for (const auto& [term, cls] : st.sigma) {
          concrete.emplace(term, witness.class_members[cls].front());
        }
        outcome.mappings.push_back(
            TranslateToOriginal(concrete, stored.original_of_canonical));
        if (outcome.mappings.size() >= options.max_mappings) break;
      }
    }
    return outcome;
  }

  // --- Phase 2b: NP verification (Proposition 5.2 + Section 5.2 bounds). ---
  outcome.needed_np = true;
  bool conclusive = true;  // every unsuccessful search ran to exhaustion
  std::vector<std::vector<std::uint64_t>> seen_keys;
  for (const MatchState& st : sigmas) {
    if (options.budget != nullptr && options.budget->Exhausted()) {
      // Remaining σ_w undecided: under-report (sound) and say so.
      outcome.complete = false;
      return outcome;
    }
    std::vector<std::uint64_t> key = SigmaKey(st);
    if (std::find(seen_keys.begin(), seen_keys.end(), key) !=
        seen_keys.end()) {
      continue;
    }
    seen_keys.push_back(std::move(key));

    std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> allowed;
    for (const auto& [term, cls] : st.sigma) {
      allowed.emplace(term, witness.class_members[cls]);
    }
    AddVarPredicateBounds(probe.patterns, dict, witness, st,
                          stored.var_pred_patterns, &allowed);

    HomomorphismOptions ho;
    ho.max_results = std::max<std::size_t>(1, options.max_mappings);
    ho.max_steps = options.max_np_steps;
    ho.budget = options.budget;
    HomomorphismResult result = FindHomomorphismsRestricted(
        stored.canonical, probe.patterns, dict, allowed, ho);
    if (!result.exhausted && !result.found()) conclusive = false;
    if (result.found()) {
      outcome.contained = true;
      for (const VarMapping& m : result.mappings) {
        outcome.mappings.push_back(
            TranslateToOriginal(m, stored.original_of_canonical));
        if (outcome.mappings.size() >= options.max_mappings) break;
      }
      if (outcome.mappings.size() >= options.max_mappings) break;
      if (options.max_mappings == 0) break;  // decision only
    }
  }
  // A truncated search that never found a mapping proves nothing; a found
  // mapping is a certificate regardless of truncation.
  if (!outcome.contained && !conclusive) outcome.complete = false;
  return outcome;
}

CheckOutcome CheckPrepared(const PreparedProbe& probe,
                           const PreparedStored& stored,
                           const rdf::TermDictionary& dict,
                           const CheckOptions& options) {
  // --- Phase 1: PTime witness filter (Algorithm 2 over the witness). ---
  std::vector<MatchState> sigmas;
  if (stored.tokens.empty()) {
    // Every pattern of W has a variable predicate (or W is empty); the
    // skeleton imposes no constraint and the single empty σ_w survives.
    sigmas.emplace_back();
  } else {
    sigmas = MatchTokens(probe.view, dict, stored.tokens, options.budget);
  }
  CheckOutcome outcome = DecideFromSigmas(probe, stored, sigmas, dict, options);
  // A budget expiry during the filter discards in-flight states, so an
  // empty σ_w set is inconclusive rather than a non-containment proof.
  if (options.budget != nullptr && options.budget->exhausted() &&
      !outcome.contained) {
    outcome.complete = false;
  }
  return outcome;
}

util::Result<CheckOutcome> Check(const query::BgpQuery& q,
                                 const query::BgpQuery& w,
                                 rdf::TermDictionary* dict,
                                 const CheckOptions& options) {
  RDFC_ASSIGN_OR_RETURN(PreparedStored stored, PrepareStored(w, dict));
  PreparedProbe probe = PrepareProbe(q, *dict);
  return CheckPrepared(probe, stored, *dict, options);
}

bool Contains(const query::BgpQuery& q, const query::BgpQuery& w,
              rdf::TermDictionary* dict) {
  util::Result<CheckOutcome> result = Check(q, w, dict);
  return result.ok() && result->contained;
}

}  // namespace containment
}  // namespace rdfc
