#pragma once

#include <vector>

#include "query/bgp_query.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace containment {

/// A union of conjunctive queries (SPARQL UNION of BGPs).
using UnionQuery = std::vector<query::BgpQuery>;

/// Q ⊑ W1 ∪ ... ∪ Wn.  For conjunctive Q under set semantics this reduces
/// to ∃i. Q ⊑ Wi (Sagiv & Yannakakis): a single "canonical database" of Q
/// must satisfy some disjunct, and that disjunct then contains Q outright.
bool ContainedInUnion(const query::BgpQuery& q, const UnionQuery& disjuncts,
                      rdf::TermDictionary* dict);

/// Q1 ∪ ... ∪ Qm ⊑ W1 ∪ ... ∪ Wn  iff every Qi is contained in some Wj
/// (apply the reduction per disjunct of the left side).
bool UnionContainedInUnion(const UnionQuery& lhs, const UnionQuery& rhs,
                           rdf::TermDictionary* dict);

}  // namespace containment
}  // namespace rdfc
