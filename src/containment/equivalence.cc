#include "containment/equivalence.h"

#include <algorithm>
#include <unordered_set>

#include "containment/homomorphism.h"

namespace rdfc {
namespace containment {

namespace {

/// The distinguished variables, resolved: explicit projection, or all
/// variables under SELECT * (ASK yields the empty set).
std::vector<rdf::TermId> OutputVars(const query::BgpQuery& q,
                                    const rdf::TermDictionary& dict) {
  if (q.form() == query::QueryForm::kAsk) return {};
  if (q.select_all() || q.distinguished().empty()) return q.Variables(dict);
  return q.distinguished();
}

bool ContainsWithFixed(const query::BgpQuery& q, const query::BgpQuery& w,
                       const rdf::TermDictionary& dict,
                       std::vector<rdf::TermId> fixed) {
  HomomorphismOptions options;
  options.max_results = 1;
  options.fixed_vars = std::move(fixed);
  return FindHomomorphisms(w, q, dict, options).found();
}

}  // namespace

bool AreEquivalentBoolean(const query::BgpQuery& a, const query::BgpQuery& b,
                          const rdf::TermDictionary& dict) {
  return IsContainedIn(a, b, dict) && IsContainedIn(b, a, dict);
}

bool AreEquivalent(const query::BgpQuery& a, const query::BgpQuery& b,
                   const rdf::TermDictionary& dict) {
  std::vector<rdf::TermId> out_a = OutputVars(a, dict);
  std::vector<rdf::TermId> out_b = OutputVars(b, dict);
  std::vector<rdf::TermId> sorted_a = out_a;
  std::vector<rdf::TermId> sorted_b = out_b;
  std::sort(sorted_a.begin(), sorted_a.end());
  std::sort(sorted_b.begin(), sorted_b.end());
  if (sorted_a != sorted_b) return false;  // different output schema
  return ContainsWithFixed(a, b, dict, out_a) &&
         ContainsWithFixed(b, a, dict, out_a);
}

query::BgpQuery MinimizeQuery(const query::BgpQuery& q,
                              const rdf::TermDictionary& dict) {
  const std::vector<rdf::TermId> output = OutputVars(q, dict);
  const std::unordered_set<rdf::TermId> output_set(output.begin(),
                                                   output.end());

  std::vector<rdf::Triple> patterns = q.patterns();
  bool changed = true;
  // Insert-side minimisation: each round either removes a pattern or
  // terminates, so at most |patterns| rounds.
  // NOLINTNEXTLINE(budget-poll-coverage)
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      // Candidate subquery without pattern i.
      query::BgpQuery candidate;
      for (std::size_t j = 0; j < patterns.size(); ++j) {
        if (j != i) candidate.AddPattern(patterns[j]);
      }
      // Distinguished variables must survive the removal (the projection
      // would otherwise be unbound).
      bool outputs_survive = true;
      for (rdf::TermId var : output) {
        bool occurs = false;
        // Bounded by the candidate subquery's pattern count; insert-side.
        // NOLINTNEXTLINE(budget-poll-coverage)
        for (const rdf::Triple& t : candidate.patterns()) {
          occurs = occurs || t.s == var || t.p == var || t.o == var;
        }
        if (!occurs) {
          outputs_survive = false;
          break;
        }
      }
      if (!outputs_survive) continue;

      // Q∖{t} ⊑ Q iff a homomorphism Q -> Q∖{t} exists that fixes the
      // output variables (the reverse containment is the identity).
      query::BgpQuery full;
      for (const rdf::Triple& t : patterns) full.AddPattern(t);
      if (ContainsWithFixed(candidate, full, dict, output)) {
        patterns.erase(patterns.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
        break;  // restart the scan over the smaller query
      }
    }
  }

  query::BgpQuery minimized;
  minimized.set_form(q.form());
  minimized.set_select_all(q.select_all());
  for (rdf::TermId var : q.distinguished()) minimized.AddDistinguished(var);
  for (const rdf::Triple& t : patterns) minimized.AddPattern(t);
  return minimized;
}

}  // namespace containment
}  // namespace rdfc
