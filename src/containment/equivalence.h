#pragma once

#include "query/bgp_query.h"
#include "rdf/dictionary.h"

namespace rdfc {
namespace containment {

/// Boolean equivalence: Q ⊑ W and W ⊑ Q (mutual containment mappings).
bool AreEquivalentBoolean(const query::BgpQuery& a, const query::BgpQuery& b,
                          const rdf::TermDictionary& dict);

/// Answer-set equivalence for queries with projections: containment mappings
/// in both directions that additionally fix the distinguished variables —
/// i.e. the two queries return the same rows over the shared output
/// variables on every graph.  Requires both queries to use the same
/// distinguished variable set (otherwise false).
bool AreEquivalent(const query::BgpQuery& a, const query::BgpQuery& b,
                   const rdf::TermDictionary& dict);

/// Chandra-Merlin minimisation: computes the core of the query by repeatedly
/// dropping a triple pattern t when a homomorphism Q -> Q∖{t} exists that
/// fixes the distinguished variables.  The result is equivalent to the input
/// (same answer set on every graph) and minimal — no smaller equivalent
/// subquery exists.  A natural companion to the index: minimising stored
/// views increases dedup and shrinks serialised forms.
query::BgpQuery MinimizeQuery(const query::BgpQuery& q,
                              const rdf::TermDictionary& dict);

}  // namespace containment
}  // namespace rdfc
