#include "containment/fgraph_matcher.h"

#include "util/macros.h"

namespace rdfc {
namespace containment {

FGraphView::FGraphView(query::Witness witness,
                       const rdf::TermDictionary& dict)
    : witness_(std::move(witness)) {
  out_.reserve(witness_.triples.size() * 2);
  in_.reserve(witness_.triples.size() * 2);
  adjacency_.resize(witness_.num_classes);
  for (const query::Witness::WTriple& t : witness_.triples) {
    // Uniqueness per (vertex, predicate) is guaranteed by the witness fix
    // point; with plain insert the first entry would win anyway, but assert
    // in debug builds to catch regressions in BuildWitness.
    auto [out_it, out_fresh] = out_.emplace(Key(t.s, t.p), t.o);
    RDFC_DCHECK(out_fresh || out_it->second == t.o);
    auto [in_it, in_fresh] = in_.emplace(Key(t.o, t.p), t.s);
    RDFC_DCHECK(in_fresh || in_it->second == t.s);
    // Witness triples are already deduplicated, so each contributes one
    // outgoing and one incoming adjacency entry.
    adjacency_[t.s].push_back(AdjEdge{t.p, false, t.o});
    adjacency_[t.o].push_back(AdjEdge{t.p, true, t.s});
    (void)out_it;
    (void)out_fresh;
    (void)in_it;
    (void)in_fresh;
  }
  constants_in_class_.resize(witness_.num_classes);
  for (std::uint32_t cls = 0; cls < witness_.num_classes; ++cls) {
    for (rdf::TermId member : witness_.class_members[cls]) {
      if (dict.IsConstant(member)) constants_in_class_[cls].push_back(member);
    }
  }
}

namespace {

/// Extends σ with term -> cls; fails when term is already mapped elsewhere,
/// or when a constant term does not belong to class `cls` (Proposition 5.2:
/// constants can only map to the class that contains them).
bool BindTerm(const FGraphView& probe, const rdf::TermDictionary& dict,
              rdf::TermId term, std::uint32_t cls, MatchState* state) {
  if (dict.IsConstant(term)) {
    return probe.ClassOfTerm(term) == cls;
  }
  auto [it, fresh] = state->sigma.emplace(term, cls);
  return fresh || it->second == cls;
}

}  // namespace

bool BindAnchor(const FGraphView& probe, const rdf::TermDictionary& dict,
                const query::Token& anchor, std::uint32_t cls,
                MatchState* state) {
  RDFC_DCHECK(anchor.type == query::TokenType::kAnchor);
  if (!BindTerm(probe, dict, anchor.term, cls, state)) return false;
  state->v = cls;
  state->v_next = cls;
  return true;
}

StepResult Step(const FGraphView& probe, const rdf::TermDictionary& dict,
                const query::Token& token, MatchState* state) {
  switch (token.type) {
    case query::TokenType::kAnchor: {
      if (state->v == MatchState::kNoVertex) {
        // Component anchor after a separator: forced when σ or a constant
        // already pins it, otherwise the caller must fork over all classes.
        if (dict.IsConstant(token.term)) {
          const std::uint32_t cls = probe.ClassOfTerm(token.term);
          if (cls == FGraphView::kInvalidVertex) return StepResult::kFail;
          state->v = cls;
          state->v_next = cls;
          return StepResult::kOk;
        }
        auto it = state->sigma.find(token.term);
        if (it != state->sigma.end()) {
          state->v = it->second;
          state->v_next = it->second;
          return StepResult::kOk;
        }
        return StepResult::kNeedsFork;
      }
      // Initial anchor (line 5-7 of Algorithm 2): σ(t) := v'.
      if (!BindTerm(probe, dict, token.term, state->v, state)) {
        return StepResult::kFail;
      }
      state->v_next = state->v;
      return StepResult::kOk;
    }
    case query::TokenType::kPair: {
      if (state->v == MatchState::kNoVertex) return StepResult::kFail;
      const std::uint32_t target = token.inverse
                                       ? probe.In(state->v, token.pred)
                                       : probe.Out(state->v, token.pred);
      if (target == FGraphView::kInvalidVertex) return StepResult::kFail;
      if (!BindTerm(probe, dict, token.term, target, state)) {
        return StepResult::kFail;
      }
      state->v_next = target;
      return StepResult::kOk;
    }
    case query::TokenType::kOpen:
      state->path_stack.push_back(state->v);
      state->v = state->v_next;
      return StepResult::kOk;
    case query::TokenType::kClose:
      if (state->path_stack.empty()) return StepResult::kFail;
      state->v = state->path_stack.back();
      state->path_stack.pop_back();
      return StepResult::kOk;
    case query::TokenType::kSeparator:
      state->v = MatchState::kNoVertex;
      state->v_next = MatchState::kNoVertex;
      return StepResult::kOk;
  }
  return StepResult::kFail;
}

namespace {

/// Advances every state in `states` through tokens[from..), forking on
/// separator anchors.  Returns the surviving states.
std::vector<MatchState> Drive(const FGraphView& probe,
                              const rdf::TermDictionary& dict,
                              const std::vector<query::Token>& tokens,
                              std::size_t from,
                              std::vector<MatchState> states,
                              util::ProbeBudget* budget) {
  for (std::size_t i = from; i < tokens.size() && !states.empty(); ++i) {
    const query::Token& token = tokens[i];
    std::vector<MatchState> next;
    next.reserve(states.size());
    for (MatchState& st : states) {
      // On expiry every in-flight state is dropped: a state that has not
      // consumed the whole stream is not a filter survivor, and letting a
      // half-advanced σ escape could over-report (unsound under Phase 2a).
      if (budget != nullptr && budget->Exhausted()) return {};
      const StepResult r = Step(probe, dict, token, &st);
      if (r == StepResult::kOk) {
        next.push_back(std::move(st));
      } else if (r == StepResult::kNeedsFork) {
        for (std::uint32_t cls = 0; cls < probe.num_vertices(); ++cls) {
          MatchState forked = st;
          if (BindAnchor(probe, dict, token, cls, &forked)) {
            next.push_back(std::move(forked));
          }
        }
      }
    }
    states = std::move(next);
  }
  return states;
}

}  // namespace

std::vector<MatchState> MatchTokensFrom(const FGraphView& probe,
                                        const rdf::TermDictionary& dict,
                                        const std::vector<query::Token>& tokens,
                                        std::uint32_t start_class,
                                        util::ProbeBudget* budget) {
  std::vector<MatchState> states;
  states.push_back(MatchState::AtAnchor(start_class));
  return Drive(probe, dict, tokens, 0, std::move(states), budget);
}

std::vector<MatchState> MatchTokens(const FGraphView& probe,
                                    const rdf::TermDictionary& dict,
                                    const std::vector<query::Token>& tokens,
                                    util::ProbeBudget* budget) {
  std::vector<MatchState> all;
  for (std::uint32_t cls = 0; cls < probe.num_vertices(); ++cls) {
    if (budget != nullptr && budget->exhausted()) break;
    std::vector<MatchState> from_cls =
        MatchTokensFrom(probe, dict, tokens, cls, budget);
    for (MatchState& st : from_cls) all.push_back(std::move(st));
  }
  return all;
}

}  // namespace containment
}  // namespace rdfc
