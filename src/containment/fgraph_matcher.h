#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "query/serialisation.h"
#include "query/witness.h"
#include "rdf/dictionary.h"
#include "util/budget.h"

namespace rdfc {
namespace containment {

/// Read-optimised view of an f-graph (always materialised via a Witness, so
/// arbitrary probe queries work uniformly: an f-graph query is its own
/// witness with singleton classes).  Provides the O(1) lookups Algorithm 2
/// needs: the unique p-successor and p-predecessor of a vertex — uniqueness
/// is exactly the f-graph property, re-established by the witness merge.
class FGraphView {
 public:
  static constexpr std::uint32_t kInvalidVertex = query::Witness::kInvalidClass;

  FGraphView(query::Witness witness, const rdf::TermDictionary& dict);

  std::uint32_t num_vertices() const { return witness_.num_classes; }

  /// The unique o with (v, pred, o) in the witness, or kInvalidVertex.
  std::uint32_t Out(std::uint32_t v, rdf::TermId pred) const {
    auto it = out_.find(Key(v, pred));
    return it == out_.end() ? kInvalidVertex : it->second;
  }

  /// The unique s with (s, pred, v) in the witness, or kInvalidVertex.
  std::uint32_t In(std::uint32_t v, rdf::TermId pred) const {
    auto it = in_.find(Key(v, pred));
    return it == in_.end() ? kInvalidVertex : it->second;
  }

  /// Class containing the constant/variable `term`, or kInvalidVertex when
  /// the term does not occur as a vertex of the probe query.
  std::uint32_t ClassOfTerm(rdf::TermId term) const {
    return witness_.ClassOf(term);
  }

  const query::Witness& witness() const { return witness_; }

  /// Incident edge of a witness vertex, deduplicated per (pred, direction).
  /// Drives the candidate-token enumeration of the mv-index walk
  /// (optimisations I+III: only edges consistent with the probe's current
  /// vertex are ever looked up, via hashing).
  struct AdjEdge {
    rdf::TermId pred;
    bool inverse;          // true: edge arrives at the vertex
    std::uint32_t target;  // the unique opposite class
  };
  const std::vector<AdjEdge>& Adjacency(std::uint32_t v) const {
    return adjacency_[v];
  }

  /// Constant members of a class (IRIs and literals) — the terms a stored
  /// query's constant token could name when mapping onto this class.
  const std::vector<rdf::TermId>& ConstantsIn(std::uint32_t cls) const {
    return constants_in_class_[cls];
  }

 private:
  static std::uint64_t Key(std::uint32_t v, rdf::TermId pred) {
    return (static_cast<std::uint64_t>(v) << 32) | pred;
  }

  query::Witness witness_;
  std::unordered_map<std::uint64_t, std::uint32_t> out_;
  std::unordered_map<std::uint64_t, std::uint32_t> in_;
  std::vector<std::vector<AdjEdge>> adjacency_;
  std::vector<std::vector<rdf::TermId>> constants_in_class_;
};

/// Flat map from canonical variables to witness classes.  σ holds a handful
/// of entries (one per distinct W variable seen so far), and the index walk
/// copies states at every branch, so a sorted-insertion vector with linear
/// lookup beats a hash map on both copy and probe cost.  The interface
/// mirrors the std::unordered_map subset the matcher uses.
class SigmaMap {
 public:
  using value_type = std::pair<rdf::TermId, std::uint32_t>;
  using const_iterator = std::vector<value_type>::const_iterator;
  using iterator = std::vector<value_type>::iterator;

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  iterator find(rdf::TermId term) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == term) return it;
    }
    return entries_.end();
  }
  const_iterator find(rdf::TermId term) const {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == term) return it;
    }
    return entries_.end();
  }
  std::size_t count(rdf::TermId term) const {
    return find(term) == end() ? 0 : 1;
  }

  std::pair<iterator, bool> emplace(rdf::TermId term, std::uint32_t cls) {
    iterator it = find(term);
    if (it != entries_.end()) return {it, false};
    entries_.emplace_back(term, cls);
    return {entries_.end() - 1, true};
  }

  std::uint32_t& operator[](rdf::TermId term) {
    return emplace(term, 0).first->second;
  }

  /// Lookup that must succeed; aborts on a missing key like map::at.
  std::uint32_t at(rdf::TermId term) const {
    const_iterator it = find(term);
    RDFC_CHECK(it != end());
    return it->second;
  }

 private:
  std::vector<value_type> entries_;
};

/// Resumable state of Algorithm 2 — the quintuple the paper threads through
/// consecutive Containment calls in Algorithm 3: current vertex v', the
/// look-ahead vertex v'_next, the m_path stack, and the partial mapping σ
/// from W's (canonicalised) terms to witness classes.
struct MatchState {
  static constexpr std::uint32_t kNoVertex = FGraphView::kInvalidVertex;

  std::uint32_t v = kNoVertex;
  std::uint32_t v_next = kNoVertex;
  std::vector<std::uint32_t> path_stack;
  SigmaMap sigma;

  /// Starts a match whose first anchor will bind to `start_class`.
  static MatchState AtAnchor(std::uint32_t start_class) {
    MatchState st;
    st.v = start_class;
    return st;
  }
};

enum class StepResult : std::uint8_t {
  kFail,      // containment mapping violated; drop this state
  kOk,        // token consumed, continue
  kNeedsFork, // token is an unconstrained component anchor (after a
              // kSeparator): caller must fork the state over every class,
              // binding each via BindAnchor
};

/// Consumes one serialised-form token, updating `state`.  Implements the
/// case analysis of Algorithm 2 plus the component-separator extension of
/// Section 5.2.
StepResult Step(const FGraphView& probe, const rdf::TermDictionary& dict,
                const query::Token& token, MatchState* state);

/// Resolves a kNeedsFork: binds the pending anchor token to `cls`.
/// Returns false when the binding violates σ (e.g. constant mismatch).
bool BindAnchor(const FGraphView& probe, const rdf::TermDictionary& dict,
                const query::Token& anchor, std::uint32_t cls,
                MatchState* state);

/// Runs a whole token stream against the probe from every possible start
/// class (Theorem 4.2 requires trying every vertex), returning every
/// surviving σ.  This is the pairwise (non-indexed) form of the matcher and
/// the reference implementation the mv-index walk is tested against.
///
/// `budget` (optional) is polled once per token per state; when it trips,
/// in-flight states are discarded (a partially-advanced σ is not a filter
/// survivor) and the result is empty — callers must consult
/// ProbeBudget::exhausted() and treat that emptiness as *inconclusive*, not
/// as proven non-containment.
std::vector<MatchState> MatchTokens(const FGraphView& probe,
                                    const rdf::TermDictionary& dict,
                                    const std::vector<query::Token>& tokens,
                                    util::ProbeBudget* budget = nullptr);

/// Like MatchTokens but anchored: the first anchor must bind `start_class`.
std::vector<MatchState> MatchTokensFrom(const FGraphView& probe,
                                        const rdf::TermDictionary& dict,
                                        const std::vector<query::Token>& tokens,
                                        std::uint32_t start_class,
                                        util::ProbeBudget* budget = nullptr);

}  // namespace containment
}  // namespace rdfc
