#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "containment/fgraph_matcher.h"
#include "containment/homomorphism.h"
#include "query/analysis.h"
#include "query/bgp_query.h"
#include "query/serialisation.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace rdfc {
namespace containment {

/// Stored-query-side preparation (the W of Q ⊑ W): variable-predicate
/// patterns stripped (Section 5.2), the skeleton serialised per Algorithm 1
/// with canonical variable renaming, and the canonicalised query retained
/// for the NP verification step.
struct PreparedStored {
  /// All of W's patterns, with every variable (vertex *and* predicate)
  /// renamed to canonical `?xk`s.
  query::BgpQuery canonical;
  /// The subset of `canonical` whose predicate is a variable.
  std::vector<rdf::Triple> var_pred_patterns;
  /// Serialisation of the skeleton (canonical minus var_pred_patterns);
  /// empty when every pattern has a variable predicate.
  std::vector<query::Token> tokens;
  /// canonical variable -> original variable, for reporting mappings.
  std::unordered_map<rdf::TermId, rdf::TermId> original_of_canonical;
  query::QueryShape shape;
};

[[nodiscard]] util::Result<PreparedStored> PrepareStored(const query::BgpQuery& w,
                                           rdf::TermDictionary* dict);

/// Probe-side preparation (the Q of Q ⊑ W): witness construction plus the
/// f-graph view the matcher walks.  Constructing the witness of an f-graph
/// query yields singleton classes, so the same code path serves both the
/// PTime case of Section 3 and the general case of Section 5.
struct PreparedProbe {
  explicit PreparedProbe(FGraphView view_in) : view(std::move(view_in)) {}

  FGraphView view;
  query::QueryShape shape;
  /// Triples of the probe in original term space (for the NP verification).
  query::BgpQuery patterns;
};

PreparedProbe PrepareProbe(const query::BgpQuery& q,
                           const rdf::TermDictionary& dict);

struct CheckOptions {
  /// Run the NP verification after the witness filter.  With this off the
  /// result reports only the PTime filter outcome (a sound *necessary*
  /// condition: filter_passed == false proves non-containment).
  bool verify = true;
  /// Number of concrete containment mappings to materialise (0 = just decide).
  std::size_t max_mappings = 0;
  /// Step cap for the NP search (0 = unbounded).
  std::size_t max_np_steps = 0;
  /// Cooperative cancellation, polled at the σ_w loop and inside the NP
  /// search; on expiry the decision stops with `complete = false` (see
  /// CheckOutcome).  Not owned; may be null.
  util::ProbeBudget* budget = nullptr;
};

struct CheckOutcome {
  bool contained = false;       // final verdict (when verify was requested)
  bool filter_passed = false;   // PTime witness filter found >= 1 σ_w
  bool needed_np = false;       // verification had to run an NP search
  /// False when the budget (or the max_np_steps cap) tripped before the
  /// verdict was certain.  The degradation contract (DESIGN.md
  /// "Resilience"): `contained == true` is always a verified certificate —
  /// an incomplete outcome can only *under*-report containment, never
  /// invent one.
  bool complete = true;
  std::size_t num_filter_sigmas = 0;
  std::vector<VarMapping> mappings;  // in W's *original* variable space
};

/// Phase-2 decision given the surviving witness-filter mappings.  Exposed so
/// the mv-index walk (which produces the σ_w set itself, Algorithm 3) can
/// share the verification logic with the pairwise path.
CheckOutcome DecideFromSigmas(const PreparedProbe& probe,
                              const PreparedStored& stored,
                              const std::vector<MatchState>& sigmas,
                              const rdf::TermDictionary& dict,
                              const CheckOptions& options);

/// Decides Q ⊑ W for Boolean semantics via the paper's pipeline:
///   1. run the f-graph matcher of the skeleton tokens against Q's witness
///      from every start class (PTime; Theorem 4.2 / Proposition 5.1);
///   2. if the query is an f-graph (ND-degree 1) and W has no variable
///      predicates, the filter verdict is exact — done in PTime;
///   3. otherwise instantiate each surviving σ_w via the restricted NP
///      search of Proposition 5.2, with the Section 5.2 bounds applied.
CheckOutcome CheckPrepared(const PreparedProbe& probe,
                           const PreparedStored& stored,
                           const rdf::TermDictionary& dict,
                           const CheckOptions& options = {});

/// End-to-end convenience for tests and the pairwise baseline: prepares both
/// sides and checks.  Q ⊑ W.
[[nodiscard]] util::Result<CheckOutcome> Check(const query::BgpQuery& q,
                                 const query::BgpQuery& w,
                                 rdf::TermDictionary* dict,
                                 const CheckOptions& options = {});

/// Boolean convenience.
bool Contains(const query::BgpQuery& q, const query::BgpQuery& w,
              rdf::TermDictionary* dict);

}  // namespace containment
}  // namespace rdfc
