#include "containment/explain.h"

#include "containment/pipeline.h"
#include "query/analysis.h"
#include "query/serialisation.h"
#include "query/witness.h"

namespace rdfc {
namespace containment {

namespace {

std::string ClassLabel(const query::Witness& witness, std::uint32_t cls,
                       const rdf::TermDictionary& dict) {
  std::string out = "{";
  for (std::size_t i = 0; i < witness.class_members[cls].size(); ++i) {
    if (i) out += ", ";
    out += dict.ToString(witness.class_members[cls][i]);
  }
  out += "}";
  return out;
}

}  // namespace

std::string ExplainContainment(const query::BgpQuery& q,
                               const query::BgpQuery& w,
                               rdf::TermDictionary* dict) {
  std::string out;
  out += "=== Does Q fit inside W?  (Q ⊑ W) ===\n";

  // --- Probe-side structure. ---
  const query::QueryShape q_shape = query::AnalyzeShape(q, *dict);
  out += "Q: " + std::to_string(q_shape.num_triples) + " triple pattern(s), " +
         std::to_string(q_shape.num_vertices) + " vertices; " +
         (q_shape.is_fgraph ? "f-graph" : "NOT an f-graph") + ", " +
         (q_shape.is_acyclic ? "acyclic" : "cyclic") + "\n";

  const query::Witness witness = query::BuildWitness(q);
  out += "witness: " + std::to_string(witness.num_classes) +
         " class(es), ND-degree " + std::to_string(witness.nd_degree) + "\n";
  for (std::uint32_t c = 0; c < witness.num_classes; ++c) {
    if (witness.class_members[c].size() > 1) {
      out += "  merged class [" + std::to_string(c) + "] = " +
             ClassLabel(witness, c, *dict) + "\n";
    }
  }

  // --- Stored-side preparation. ---
  auto stored = PrepareStored(w, dict);
  if (!stored.ok()) {
    out += "W could not be prepared: " + stored.status().ToString() + "\n";
    return out;
  }
  const query::QueryShape w_shape = stored->shape;
  out += "W: " + std::to_string(w_shape.num_triples) + " triple pattern(s); " +
         std::to_string(stored->var_pred_patterns.size()) +
         " variable-predicate pattern(s) stripped (Section 5.2)\n";
  if (!stored->tokens.empty()) {
    out += "serialised skeleton of W (Algorithm 1):\n  " +
           query::TokensToString(stored->tokens, *dict) + "\n";
  } else {
    out += "W has no indexable skeleton (all patterns have variable "
           "predicates)\n";
  }

  // --- Phase 1: the PTime filter. ---
  const PreparedProbe probe = PrepareProbe(q, *dict);
  std::vector<MatchState> sigmas;
  if (stored->tokens.empty()) {
    sigmas.emplace_back();
    out += "phase 1 (witness filter): vacuous — single empty σ_w\n";
  } else {
    sigmas = MatchTokens(probe.view, *dict, stored->tokens);
    out += "phase 1 (witness filter, Algorithm 2 over the witness): " +
           std::to_string(sigmas.size()) + " surviving σ_w\n";
    for (std::size_t i = 0; i < sigmas.size(); ++i) {
      out += "  σ_w[" + std::to_string(i) + "]:";
      for (const auto& [var, cls] : sigmas[i].sigma) {
        out += " " + dict->ToString(var) + "→" +
               ClassLabel(witness, cls, *dict);
      }
      out += "\n";
    }
  }
  if (sigmas.empty()) {
    out += "verdict: NOT contained — Proposition 5.1 contrapositive "
           "(Q_w ⋢ W already in PTime)\n";
    return out;
  }

  // --- Phase 2: decision. ---
  CheckOptions options;
  options.max_mappings = 1;
  const CheckOutcome outcome =
      DecideFromSigmas(probe, *stored, sigmas, *dict, options);
  if (!outcome.needed_np) {
    out += "phase 2: ND-degree 1 and no variable predicates — the filter "
           "verdict is exact (pure PTime)\n";
  } else {
    out += "phase 2: NP verification over class members "
           "(Proposition 5.2)\n";
  }
  if (outcome.contained) {
    out += "verdict: CONTAINED";
    if (!outcome.mappings.empty()) {
      out += " — containment mapping σ:";
      for (const auto& [var, term] : outcome.mappings[0]) {
        out += " " + dict->ToString(var) + "→" + dict->ToString(term);
      }
    }
    out += "\n";
  } else {
    out += "verdict: NOT contained — no σ_w instantiates to a containment "
           "mapping\n";
  }
  return out;
}

}  // namespace containment
}  // namespace rdfc
