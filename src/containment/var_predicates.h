#pragma once

#include <unordered_map>
#include <vector>

#include "containment/fgraph_matcher.h"
#include "query/bgp_query.h"
#include "rdf/dictionary.h"

namespace rdfc {
namespace containment {

/// Section 5.2 bounding: given the class mapping σ_w produced by the f-graph
/// filter for W's skeleton and the stripped variable-predicate patterns of
/// W, derive candidate-value bounds for W terms that the skeleton left
/// unbound.
///
/// For a pattern (s, ?p, o) where σ_w binds s to class C, variable o may
/// only map to `{o' | (s', p', o') ∈ Q, s' ∈ C}` — and dually when o is
/// bound.  The returned map feeds FindHomomorphismsRestricted.
///
/// `existing` carries the class-membership restrictions already implied by
/// σ_w; bounds are added (intersected) on top of it.
void AddVarPredicateBounds(
    const query::BgpQuery& probe_patterns, const rdf::TermDictionary& dict,
    const query::Witness& witness, const MatchState& sigma,
    const std::vector<rdf::Triple>& var_pred_patterns,
    std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>* allowed);

}  // namespace containment
}  // namespace rdfc
