#include "containment/homomorphism.h"

#include <algorithm>
#include <unordered_set>

namespace rdfc {
namespace containment {

namespace {

class Search {
 public:
  Search(const query::BgpQuery& w, const query::BgpQuery& q,
         const rdf::TermDictionary& dict,
         const std::unordered_map<rdf::TermId,
                                  std::unordered_set<rdf::TermId>>* allowed,
         const HomomorphismOptions& options)
      : w_(w), q_(q), dict_(dict), allowed_(allowed), options_(options) {
    // Index Q's patterns by predicate: the common case binds an IRI
    // predicate, which prunes the candidate set to one predicate bucket.
    for (const rdf::Triple& t : q_.patterns()) {
      q_by_pred_[t.p].push_back(t);
    }
    // Fixed variables behave like constants: pre-bind them to themselves.
    for (rdf::TermId var : options_.fixed_vars) {
      sigma_.emplace(var, var);
    }
    OrderPatterns();
  }

  HomomorphismResult Run() {
    Extend(0);
    result_.steps = steps_;
    return std::move(result_);
  }

 private:
  /// Greedy join order: repeatedly pick the unchosen pattern with the most
  /// already-bound terms (constants count as bound), tie-broken by input
  /// order.  Keeps the backtracking tree narrow for star/path queries.
  void OrderPatterns() {
    const auto& patterns = w_.patterns();
    std::vector<bool> chosen(patterns.size(), false);
    std::unordered_set<rdf::TermId> bound;
    auto bound_score = [&](const rdf::Triple& t) {
      int score = 0;
      auto counts = [&](rdf::TermId term) {
        return !dict_.IsVariable(term) || bound.count(term) > 0;
      };
      if (counts(t.s)) ++score;
      if (counts(t.p)) score += 2;  // predicate selectivity dominates
      if (counts(t.o)) ++score;
      return score;
    };
    for (std::size_t k = 0; k < patterns.size(); ++k) {
      int best_score = -1;
      std::size_t best = 0;
      for (std::size_t i = 0; i < patterns.size(); ++i) {
        if (chosen[i]) continue;
        const int score = bound_score(patterns[i]);
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      chosen[best] = true;
      order_.push_back(patterns[best]);
      for (rdf::TermId term : {patterns[best].s, patterns[best].p,
                               patterns[best].o}) {
        if (dict_.IsVariable(term)) bound.insert(term);
      }
    }
  }

  bool Allowed(rdf::TermId var, rdf::TermId value) const {
    if (allowed_ == nullptr) return true;
    auto it = allowed_->find(var);
    if (it == allowed_->end()) return true;
    return it->second.count(value) > 0;
  }

  /// Tries to unify pattern term `pt` (from W) with data term `qt` (from Q),
  /// recording new bindings in `trail`.  Returns false on mismatch.
  bool Unify(rdf::TermId pt, rdf::TermId qt,
             std::vector<rdf::TermId>* trail) {
    if (!dict_.IsVariable(pt)) return pt == qt;
    auto it = sigma_.find(pt);
    if (it != sigma_.end()) return it->second == qt;
    if (!Allowed(pt, qt)) return false;
    sigma_.emplace(pt, qt);
    trail->push_back(pt);
    return true;
  }

  void Undo(const std::vector<rdf::TermId>& trail) {
    for (rdf::TermId var : trail) sigma_.erase(var);
  }

  /// Returns true when the search should stop (enough results / step cap).
  bool Extend(std::size_t depth) {
    if (depth == order_.size()) {
      result_.mappings.push_back(sigma_);
      return result_.mappings.size() >= options_.max_results;
    }
    const rdf::Triple& pattern = order_[depth];

    // Candidate triples of Q: one predicate bucket when the pattern's
    // predicate is rigid (constant or already bound), otherwise all buckets.
    const std::vector<rdf::Triple>* bucket = nullptr;
    std::vector<rdf::Triple> all;
    rdf::TermId rigid_pred = rdf::kNullTerm;
    if (!dict_.IsVariable(pattern.p)) {
      rigid_pred = pattern.p;
    } else {
      auto it = sigma_.find(pattern.p);
      if (it != sigma_.end()) rigid_pred = it->second;
    }
    if (rigid_pred != rdf::kNullTerm) {
      auto it = q_by_pred_.find(rigid_pred);
      if (it == q_by_pred_.end()) return false;
      bucket = &it->second;
    } else {
      all = q_.patterns();
      bucket = &all;
    }

    for (const rdf::Triple& candidate : *bucket) {
      if (options_.max_steps != 0 && steps_ >= options_.max_steps) {
        result_.exhausted = false;
        return true;
      }
      if (options_.budget != nullptr && options_.budget->Exhausted()) {
        result_.exhausted = false;
        return true;
      }
      ++steps_;
      std::vector<rdf::TermId> trail;
      if (Unify(pattern.s, candidate.s, &trail) &&
          Unify(pattern.p, candidate.p, &trail) &&
          Unify(pattern.o, candidate.o, &trail)) {
        if (Extend(depth + 1)) return true;
      }
      Undo(trail);
    }
    return false;
  }

  const query::BgpQuery& w_;
  const query::BgpQuery& q_;
  const rdf::TermDictionary& dict_;
  const std::unordered_map<rdf::TermId, std::unordered_set<rdf::TermId>>*
      allowed_;
  HomomorphismOptions options_;

  std::unordered_map<rdf::TermId, std::vector<rdf::Triple>> q_by_pred_;
  std::vector<rdf::Triple> order_;
  VarMapping sigma_;
  std::size_t steps_ = 0;
  HomomorphismResult result_;
};

}  // namespace

HomomorphismResult FindHomomorphisms(const query::BgpQuery& from_w,
                                     const query::BgpQuery& into_q,
                                     const rdf::TermDictionary& dict,
                                     const HomomorphismOptions& options) {
  if (from_w.empty()) {
    // The empty query contains everything; the empty mapping is a witness.
    HomomorphismResult result;
    result.mappings.emplace_back();
    return result;
  }
  Search search(from_w, into_q, dict, nullptr, options);
  return search.Run();
}

bool IsContainedIn(const query::BgpQuery& q, const query::BgpQuery& w,
                   const rdf::TermDictionary& dict) {
  HomomorphismOptions options;
  options.max_results = 1;
  return FindHomomorphisms(w, q, dict, options).found();
}

HomomorphismResult FindHomomorphismsRestricted(
    const query::BgpQuery& from_w, const query::BgpQuery& into_q,
    const rdf::TermDictionary& dict,
    const std::unordered_map<rdf::TermId, std::vector<rdf::TermId>>& allowed,
    const HomomorphismOptions& options) {
  std::unordered_map<rdf::TermId, std::unordered_set<rdf::TermId>> sets;
  sets.reserve(allowed.size());
  for (const auto& [var, values] : allowed) {
    sets.emplace(var,
                 std::unordered_set<rdf::TermId>(values.begin(), values.end()));
  }
  if (from_w.empty()) {
    HomomorphismResult result;
    result.mappings.emplace_back();
    return result;
  }
  Search search(from_w, into_q, dict, &sets, options);
  return search.Run();
}

}  // namespace containment
}  // namespace rdfc
