#include "containment/ucq.h"

#include "containment/pipeline.h"

namespace rdfc {
namespace containment {

bool ContainedInUnion(const query::BgpQuery& q, const UnionQuery& disjuncts,
                      rdf::TermDictionary* dict) {
  // Prepare the probe once; each disjunct is checked through the standard
  // witness-filter pipeline.
  const PreparedProbe probe = PrepareProbe(q, *dict);
  for (const query::BgpQuery& w : disjuncts) {
    util::Result<PreparedStored> stored = PrepareStored(w, dict);
    if (!stored.ok()) continue;  // unserialisable disjunct cannot witness
    if (CheckPrepared(probe, *stored, *dict, CheckOptions{}).contained) {
      return true;
    }
  }
  return false;
}

bool UnionContainedInUnion(const UnionQuery& lhs, const UnionQuery& rhs,
                           rdf::TermDictionary* dict) {
  for (const query::BgpQuery& q : lhs) {
    if (!ContainedInUnion(q, rhs, dict)) return false;
  }
  return true;
}

}  // namespace containment
}  // namespace rdfc
