#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "index/journal.h"
#include "query/analysis.h"
#include "util/timer.h"

namespace rdfc {
namespace net {

namespace {

util::Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return util::Status::Internal("fcntl(O_NONBLOCK) failed");
  }
  return util::Status::OK();
}

/// Service outcome -> wire status.  Quarantine short-circuits become their
/// own status (they carry no answer); mid-probe budget expiry stays kOk with
/// the degraded flag, because the answer is sound — just possibly
/// incomplete (DESIGN.md "Resilience").
WireResponse ToWire(std::uint64_t id, service::ProbeResponse&& response) {
  WireResponse wire;
  wire.id = id;
  wire.snapshot_version = response.snapshot_version;
  wire.candidates = static_cast<std::uint32_t>(response.candidates);
  wire.np_checks = static_cast<std::uint32_t>(response.np_checks);
  wire.server_micros = response.total_micros;
  wire.degraded = response.degraded;
  wire.quarantined = response.quarantined;
  wire.containing_views = std::move(response.containing_views);
  wire.unverified_views = std::move(response.unverified_views);
  if (response.quarantined) {
    wire.status = WireStatus::kQuarantined;
    wire.payload = "quarantined by the degradation circuit breaker";
  } else if (!response.status.ok()) {
    wire.status = response.status.code() == util::StatusCode::kDeadlineExceeded
                      ? WireStatus::kDeadlineExceeded
                      : WireStatus::kInternal;
    wire.payload = std::string(response.status.message());
  }
  return wire;
}

}  // namespace

/// One accepted connection.  All fields are touched only by the I/O thread.
struct NetServer::Connection {
  int fd = -1;
  std::string in;   // unconsumed bytes read off the socket
  std::string out;  // encoded responses not yet written
};

/// One parsed probe waiting in its signature group's accumulation window.
struct NetServer::PendingProbe {
  std::uint64_t conn_id = 0;
  std::uint64_t wire_id = 0;
  service::ProbeRequest request;
};

struct NetServer::Group {
  std::vector<PendingProbe> pending;
  /// Started when the group's first request arrives; the window is measured
  /// from here, so a trickle of arrivals cannot postpone the flush forever.
  util::Timer oldest;
};

struct NetServer::Completion {
  std::uint64_t conn_id = 0;
  WireResponse response;
};

NetServer::NetServer(service::ContainmentService* service,
                     const ServerOptions& options)
    : service_(service),
      metrics_(service->mutable_metrics()),
      options_(options) {}

NetServer::~NetServer() { Shutdown(); }

util::Status NetServer::Start() {
  RDFC_CHECK(!started_);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return util::Status::Internal("socket() failed");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return util::Status::InvalidArgument("unparseable bind address: " +
                                         options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return util::Status::Internal("bind failed: " +
                                  std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    return util::Status::Internal("listen failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    return util::Status::Internal("getsockname failed");
  }
  port_ = ntohs(bound.sin_port);
  util::Status nonblocking = SetNonBlocking(listen_fd_);
  if (!nonblocking.ok()) return nonblocking;

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) return util::Status::Internal("pipe failed");
  wake_read_fd_ = pipe_fds[0];
  nonblocking = SetNonBlocking(wake_read_fd_);
  if (!nonblocking.ok()) return nonblocking;
  {
    util::MutexLock lock(&completion_mu_);
    wake_write_fd_ = pipe_fds[1];
    nonblocking = SetNonBlocking(wake_write_fd_);
  }
  if (!nonblocking.ok()) return nonblocking;

  util::ThreadPool::Options pool_options;
  pool_options.num_threads = 1;
  pool_options.queue_capacity = 1;
  io_pool_ = std::make_unique<util::ThreadPool>(pool_options);
  started_ = true;
  return io_pool_->TrySubmit([this](std::size_t) { Loop(); });
}

void NetServer::Shutdown() {
  if (!started_) {
    stopped_.store(true, std::memory_order_release);
    return;
  }
  shutdown_requested_.store(true, std::memory_order_release);
  Wake();
  io_pool_->Shutdown();  // joins the I/O loop (which closes connections)
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_read_fd_ >= 0) {
    ::close(wake_read_fd_);
    wake_read_fd_ = -1;
  }
  {
    // Closed under the completion mutex so a straggling worker callback can
    // never write into a recycled fd number.
    util::MutexLock lock(&completion_mu_);
    if (wake_write_fd_ >= 0) {
      ::close(wake_write_fd_);
      wake_write_fd_ = -1;
    }
  }
}

void NetServer::Wake() {
  util::MutexLock lock(&completion_mu_);
  if (wake_write_fd_ >= 0) {
    const char byte = 'w';
    // A full pipe already guarantees a pending wakeup; errors are moot.
    (void)!::write(wake_write_fd_, &byte, 1);
  }
}

void NetServer::Loop() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per fds[] entry (0 = none)
  util::Timer drain_timer;
  bool drain_observed = false;

  while (true) {
    const bool draining = shutdown_requested_.load(std::memory_order_acquire);
    if (draining && !drain_observed) {
      drain_observed = true;
      drain_timer.Restart();
    }
    FlushDueGroups(/*flush_all=*/draining);
    DrainCompletions();

    if (draining) {
      const bool flushed =
          std::all_of(connections_.begin(), connections_.end(),
                      [](const auto& e) { return e.second.out.empty(); });
      const bool force = drain_timer.ElapsedMicros() > 5e6;  // wedged client
      if ((groups_.empty() && in_flight_ == 0 && flushed) || force) break;
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    const bool accepting =
        !draining && connections_.size() < options_.max_connections;
    if (accepting) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (const auto& [conn_id, conn] : connections_) {
      short events = draining ? 0 : POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      fd_conn.push_back(conn_id);
    }

    int timeout_ms = draining ? 5 : 100;
    const double due = NextFlushDueMicros();
    if (due >= 0.0) {
      timeout_ms = std::min<int>(
          timeout_ms, std::max<int>(1, static_cast<int>(due / 1000.0) + 1));
    }
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;  // poll itself failed: give up

    // Wake pipe: drain the bytes; the completions themselves are popped at
    // the top of the next iteration (and right here, for write latency).
    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    DrainCompletions();

    std::size_t index = 1;
    if (accepting) {
      if (fds[index].revents & POLLIN) {
        while (connections_.size() < options_.max_connections) {
          const int fd = ::accept(listen_fd_, nullptr, nullptr);
          if (fd < 0) break;
          if (!SetNonBlocking(fd).ok()) {
            ::close(fd);
            continue;
          }
          const std::uint64_t conn_id = next_conn_id_++;
          Connection conn;
          conn.fd = fd;
          connections_.emplace(conn_id, std::move(conn));
          metrics_->RecordConnectionOpened();
        }
      }
      ++index;
    }

    for (; index < fds.size(); ++index) {
      const std::uint64_t conn_id = fd_conn[index];
      auto it = connections_.find(conn_id);
      if (it == connections_.end()) continue;  // closed earlier this pass
      Connection& conn = it->second;

      if (fds[index].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        CloseConnection(conn_id, /*protocol_error=*/false);
        continue;
      }
      if (fds[index].revents & POLLIN) {
        bool peer_closed = false;
        char buf[64 * 1024];
        while (true) {
          const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            metrics_->AddNetBytesIn(static_cast<std::uint64_t>(n));
            continue;
          }
          if (n == 0) peer_closed = true;
          break;  // EOF or EAGAIN
        }
        // Extract every complete frame buffered so far.
        bool closed = false;
        while (conn.in.size() >= kFramePrefixBytes) {
          const std::uint32_t len = PeekFrameLength(conn.in);
          if (len > options_.max_frame_bytes) {
            CloseConnection(conn_id, /*protocol_error=*/true);
            closed = true;
            break;
          }
          if (conn.in.size() < kFramePrefixBytes + len) break;
          const std::string_view payload(conn.in.data() + kFramePrefixBytes,
                                         len);
          HandleFrame(conn_id, payload);
          if (connections_.find(conn_id) == connections_.end()) {
            closed = true;  // the frame was a protocol error
            break;
          }
          conn.in.erase(0, kFramePrefixBytes + len);
        }
        if (closed) continue;
        if (peer_closed) {
          CloseConnection(conn_id, /*protocol_error=*/false);
          continue;
        }
      }
      if ((fds[index].revents & POLLOUT) || !conn.out.empty()) {
        while (!conn.out.empty()) {
          const ssize_t n =
              ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
          if (n > 0) {
            metrics_->AddNetBytesOut(static_cast<std::uint64_t>(n));
            conn.out.erase(0, static_cast<std::size_t>(n));
            continue;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          CloseConnection(conn_id, /*protocol_error=*/false);
          break;
        }
      }
    }
  }

  // Drained (or forced): close everything still open.
  for (auto& [conn_id, conn] : connections_) {
    ::close(conn.fd);
    metrics_->RecordConnectionClosed();
  }
  connections_.clear();
  stopped_.store(true, std::memory_order_release);
}

void NetServer::HandleFrame(std::uint64_t conn_id, std::string_view payload) {
  WireRequest request;
  const util::Status decoded = DecodeRequest(payload, &request);
  if (!decoded.ok()) {
    // Garbled framing: nothing sane can follow on this byte stream, so the
    // connection (and only this connection) is closed.
    CloseConnection(conn_id, /*protocol_error=*/true);
    return;
  }
  switch (request.opcode) {
    case Opcode::kPing: {
      WireResponse response;
      response.id = request.id;
      RespondNow(conn_id, response);
      return;
    }
    case Opcode::kStats: {
      WireResponse response;
      response.id = request.id;
      response.payload = service_->Metrics().ToJson();
      RespondNow(conn_id, response);
      return;
    }
    case Opcode::kHealth: {
      // Answered inline on the I/O thread, like kPing: getting ANY response
      // proves liveness even while startup recovery holds the mutation lock.
      // The payload reports readiness separately, so orchestration can wait
      // for `ready` without killing a process that is merely replaying.
      WireResponse response;
      response.id = request.id;
      response.snapshot_version = service_->current_version();
      const bool recovering = service_->recovering();
      const index::JournalStats journal = service_->manager().journal_stats();
      std::string json;
      json += "{\"ready\":";
      json += recovering ? "false" : "true";
      json += ",\"recovering\":";
      json += recovering ? "true" : "false";
      json += ",\"journal_enabled\":";
      json += service_->manager().journal_enabled() ? "true" : "false";
      json += ",\"replayed_records\":";
      json += std::to_string(journal.records_replayed);
      json += ",\"replayed_ops\":";
      json += std::to_string(journal.ops_replayed);
      json += ",\"last_sequence\":";
      json += std::to_string(journal.last_sequence);
      json += ",\"truncated_bytes\":";
      json += std::to_string(journal.truncated_bytes);
      json += ",\"degraded\":";
      json += journal.degraded ? "true" : "false";
      json += "}";
      response.payload = std::move(json);
      RespondNow(conn_id, response);
      return;
    }
    case Opcode::kShutdown: {
      WireResponse response;
      response.id = request.id;
      if (!options_.allow_remote_shutdown) {
        response.status = WireStatus::kInvalidArgument;
        response.payload = "remote shutdown disabled";
        RespondNow(conn_id, response);
        return;
      }
      RespondNow(conn_id, response);
      shutdown_requested_.store(true, std::memory_order_release);
      return;
    }
    case Opcode::kProbe:
      HandleProbe(conn_id, std::move(request));
      return;
  }
}

void NetServer::HandleProbe(std::uint64_t conn_id, WireRequest request) {
  if (shutdown_requested_.load(std::memory_order_acquire)) {
    WireResponse response;
    response.id = request.id;
    response.status = WireStatus::kShuttingDown;
    RespondNow(conn_id, response);
    return;
  }
  // The deadline anchors at receipt: it covers the batching window, queue
  // wait, and probe compute (via ProbeBudget) — everything the server adds.
  util::Result<query::BgpQuery> parsed = service_->Parse(request.query);
  if (!parsed.ok()) {
    WireResponse response;
    response.id = request.id;
    response.status = WireStatus::kInvalidArgument;
    response.payload = std::string(parsed.status().message());
    RespondNow(conn_id, response);
    return;
  }
  PendingProbe pending;
  pending.conn_id = conn_id;
  pending.wire_id = request.id;
  pending.request.query = std::move(parsed).value();
  if (request.deadline_ms > 0) {
    pending.request.deadline = std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(request.deadline_ms);
  }
  pending.request.simulated_io_micros =
      static_cast<double>(request.simulated_io_micros);

  const std::uint64_t signature =
      query::AnchorSignature(pending.request.query, *service_->mutable_dict());
  Group& group = groups_[signature];
  if (group.pending.empty()) group.oldest.Restart();
  group.pending.push_back(std::move(pending));
  if (options_.batch_window_micros <= 0.0 || options_.max_batch <= 1 ||
      group.pending.size() >= options_.max_batch) {
    FlushGroup(signature);
  }
}

double NetServer::NextFlushDueMicros() const {
  double due = -1.0;
  for (const auto& [signature, group] : groups_) {
    const double remaining =
        options_.batch_window_micros - group.oldest.ElapsedMicros();
    if (due < 0.0 || remaining < due) due = remaining;
  }
  return due < 0.0 ? due : std::max(due, 0.0);
}

void NetServer::FlushDueGroups(bool flush_all) {
  std::vector<std::uint64_t> due;
  for (const auto& [signature, group] : groups_) {
    if (flush_all ||
        group.oldest.ElapsedMicros() >= options_.batch_window_micros) {
      due.push_back(signature);
    }
  }
  for (const std::uint64_t signature : due) FlushGroup(signature);
}

void NetServer::FlushGroup(std::uint64_t signature) {
  const auto it = groups_.find(signature);
  if (it == groups_.end()) return;
  Group group = std::move(it->second);
  groups_.erase(it);

  const double wait_micros = group.oldest.ElapsedMicros();
  struct Meta {
    std::uint64_t conn_id;
    std::uint64_t wire_id;
  };
  auto metas = std::make_shared<std::vector<Meta>>();
  std::vector<service::ProbeRequest> requests;
  metas->reserve(group.pending.size());
  requests.reserve(group.pending.size());
  for (PendingProbe& pending : group.pending) {
    metas->push_back({pending.conn_id, pending.wire_id});
    // The group key IS the shard routing key: pass it down so the service
    // skips recomputing AnchorSignature per request (latency hint only —
    // shard selection stays sound regardless of the value).
    pending.request.anchor_signature = signature;
    pending.request.has_anchor_signature = true;
    requests.push_back(std::move(pending.request));
  }
  const std::size_t size = requests.size();

  const util::Status admitted = service_->SubmitBatch(
      std::move(requests),
      // Runs on a service worker: hand the response to the I/O thread, which
      // owns every socket.
      [this, metas](std::size_t index, service::ProbeResponse response) {
        Completion completion;
        completion.conn_id = (*metas)[index].conn_id;
        completion.response =
            ToWire((*metas)[index].wire_id, std::move(response));
        {
          util::MutexLock lock(&completion_mu_);
          completions_.push_back(std::move(completion));
          if (wake_write_fd_ >= 0) {
            const char byte = 'w';
            (void)!::write(wake_write_fd_, &byte, 1);
          }
        }
      },
      wait_micros);
  if (!admitted.ok()) {
    // All-or-nothing shed: the whole group bounces and every member gets the
    // same machine-readable reason, straight from the I/O thread.
    const WireStatus status =
        admitted.code() == util::StatusCode::kResourceExhausted
            ? WireStatus::kResourceExhausted
            : WireStatus::kShuttingDown;
    for (const Meta& meta : *metas) {
      WireResponse response;
      response.id = meta.wire_id;
      response.status = status;
      response.payload = std::string(admitted.message());
      RespondNow(meta.conn_id, response);
    }
    return;
  }
  in_flight_ += size;
}

void NetServer::RespondNow(std::uint64_t conn_id,
                           const WireResponse& response) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  EncodeResponse(response, &conn.out);
  // Write eagerly; whatever the socket will not take waits for POLLOUT.
  while (!conn.out.empty()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      metrics_->AddNetBytesOut(static_cast<std::uint64_t>(n));
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn_id, /*protocol_error=*/false);
    break;
  }
}

void NetServer::DrainCompletions() {
  std::vector<Completion> ready;
  {
    util::MutexLock lock(&completion_mu_);
    ready.swap(completions_);
  }
  for (Completion& completion : ready) {
    RDFC_CHECK(in_flight_ > 0);
    --in_flight_;
    // A response for a connection that died in the meantime is dropped —
    // the probe's work is already recorded in the service metrics.
    RespondNow(completion.conn_id, completion.response);
  }
}

void NetServer::CloseConnection(std::uint64_t conn_id, bool protocol_error) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  if (protocol_error) metrics_->RecordProtocolError();
  ::close(it->second.fd);
  connections_.erase(it);
  metrics_->RecordConnectionClosed();
}

}  // namespace net
}  // namespace rdfc
