#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.h"
#include "util/macros.h"
#include "util/status.h"

namespace rdfc {
namespace net {

/// Minimal framed-TCP client for NetServer: one connection, blocking
/// request/response by default, with an optional nonblocking pipelined mode
/// for the open-loop load generator (queue frames, flush what the socket
/// takes, collect whatever responses have arrived).
///
/// Not thread-safe; one Client per thread/connection.
class Client {
 public:
  Client() = default;
  ~Client();  // Close()
  RDFC_DISALLOW_COPY_AND_ASSIGN(Client);

  /// Connects (blocking) to host:port.  `recv_timeout_micros` bounds every
  /// blocking Receive so a wedged server fails the call instead of hanging
  /// the client forever (0 = no timeout).
  [[nodiscard]] util::Status Connect(const std::string& host,
                                     std::uint16_t port,
                                     double recv_timeout_micros = 10e6);
  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // ------------------------------------------------------------------
  // Blocking round trips
  // ------------------------------------------------------------------

  /// Sends one request frame and blocks for its response.
  [[nodiscard]] util::Result<WireResponse> Call(const WireRequest& request);

  /// Containment probe round trip (deadline_ms = 0 means none).
  [[nodiscard]] util::Result<WireResponse> Probe(
      std::string_view query, std::uint32_t deadline_ms = 0,
      std::uint32_t simulated_io_micros = 0);
  /// Metrics snapshot; the JSON lands in WireResponse::payload.
  [[nodiscard]] util::Result<WireResponse> Stats();
  [[nodiscard]] util::Result<WireResponse> Ping();
  /// Liveness/readiness probe; the readiness JSON (`ready`, `recovering`,
  /// journal replay counters) lands in WireResponse::payload.
  [[nodiscard]] util::Result<WireResponse> Health();
  /// Asks the server to drain and exit (needs ServerOptions::
  /// allow_remote_shutdown).
  [[nodiscard]] util::Result<WireResponse> RequestShutdown();

  /// Writes raw bytes with NO framing discipline — the abuse hook the
  /// protocol-error tests and the CI smoke use to send oversized or garbled
  /// frames.
  [[nodiscard]] util::Status SendRaw(std::string_view bytes);

  /// Blocks for the next response frame (use after SendRaw or to collect
  /// pipelined responses one at a time).
  [[nodiscard]] util::Result<WireResponse> Receive();

  // ------------------------------------------------------------------
  // Nonblocking pipelined mode (open-loop load generation)
  // ------------------------------------------------------------------

  [[nodiscard]] util::Status SetNonBlocking();

  /// Queues a request frame in the userspace send buffer (no syscall).
  void QueueRequest(const WireRequest& request);
  /// Writes as much queued data as the socket accepts right now.
  [[nodiscard]] util::Status FlushQueued();
  bool has_queued() const { return !out_.empty(); }

  /// Reads whatever is available without blocking and appends every
  /// complete response frame to `out`.  Returns an error only on connection
  /// failure or a garbled frame.
  [[nodiscard]] util::Status ReadAvailable(std::vector<WireResponse>* out);

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  [[nodiscard]] util::Status SendAll(std::string_view bytes);
  /// Extracts one complete frame from in_ if present.
  bool TryExtractFrame(WireResponse* out, util::Status* error);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string in_;   // bytes received, not yet consumed
  std::string out_;  // queued frames (nonblocking mode)
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace net
}  // namespace rdfc
