#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace rdfc {
namespace net {

namespace {

/// Client-side sanity bound on response frames; the server's stats JSON is
/// the largest legitimate payload and stays far under this.
constexpr std::uint32_t kMaxResponseFrameBytes = 64u << 20;

}  // namespace

Client::~Client() { Close(); }

util::Status Client::Connect(const std::string& host, std::uint16_t port,
                             double recv_timeout_micros) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return util::Status::Internal("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return util::Status::InvalidArgument("unparseable host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Close();
    return util::Status::Internal("connect failed: " +
                                  std::string(std::strerror(errno)));
  }
  if (recv_timeout_micros > 0.0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(recv_timeout_micros / 1e6);
    tv.tv_usec = static_cast<suseconds_t>(
        static_cast<std::int64_t>(recv_timeout_micros) % 1000000);
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return util::Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.clear();
  out_.clear();
}

util::Status Client::SendAll(std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Status::Internal("send failed: " +
                                    std::string(std::strerror(errno)));
    }
    bytes_sent_ += static_cast<std::uint64_t>(n);
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return util::Status::OK();
}

util::Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return util::Status::InvalidArgument("not connected");
  return SendAll(bytes);
}

bool Client::TryExtractFrame(WireResponse* out, util::Status* error) {
  if (in_.size() < kFramePrefixBytes) return false;
  const std::uint32_t len = PeekFrameLength(in_);
  if (len > kMaxResponseFrameBytes) {
    *error = util::Status::ParseError("response frame exceeds sanity bound");
    return false;
  }
  if (in_.size() < kFramePrefixBytes + len) return false;
  const util::Status decoded =
      DecodeResponse(std::string_view(in_.data() + kFramePrefixBytes, len), out);
  if (!decoded.ok()) {
    *error = decoded;
    return false;
  }
  in_.erase(0, kFramePrefixBytes + len);
  return true;
}

util::Result<WireResponse> Client::Receive() {
  if (fd_ < 0) return util::Status::InvalidArgument("not connected");
  while (true) {
    WireResponse response;
    util::Status error = util::Status::OK();
    if (TryExtractFrame(&response, &error)) return response;
    if (!error.ok()) return error;
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return util::Status::Internal("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return util::Status::DeadlineExceeded("receive timed out");
      }
      return util::Status::Internal("recv failed: " +
                                    std::string(std::strerror(errno)));
    }
    in_.append(buf, static_cast<std::size_t>(n));
    bytes_received_ += static_cast<std::uint64_t>(n);
  }
}

util::Result<WireResponse> Client::Call(const WireRequest& request) {
  if (fd_ < 0) return util::Status::InvalidArgument("not connected");
  std::string frame;
  EncodeRequest(request, &frame);
  RDFC_RETURN_NOT_OK(SendAll(frame));
  return Receive();
}

util::Result<WireResponse> Client::Probe(std::string_view query,
                                         std::uint32_t deadline_ms,
                                         std::uint32_t simulated_io_micros) {
  WireRequest request;
  request.opcode = Opcode::kProbe;
  request.id = next_id_++;
  request.deadline_ms = deadline_ms;
  request.simulated_io_micros = simulated_io_micros;
  request.query = std::string(query);
  return Call(request);
}

util::Result<WireResponse> Client::Stats() {
  WireRequest request;
  request.opcode = Opcode::kStats;
  request.id = next_id_++;
  return Call(request);
}

util::Result<WireResponse> Client::Ping() {
  WireRequest request;
  request.opcode = Opcode::kPing;
  request.id = next_id_++;
  return Call(request);
}

util::Result<WireResponse> Client::Health() {
  WireRequest request;
  request.opcode = Opcode::kHealth;
  request.id = next_id_++;
  return Call(request);
}

util::Result<WireResponse> Client::RequestShutdown() {
  WireRequest request;
  request.opcode = Opcode::kShutdown;
  request.id = next_id_++;
  return Call(request);
}

util::Status Client::SetNonBlocking() {
  if (fd_ < 0) return util::Status::InvalidArgument("not connected");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return util::Status::Internal("fcntl(O_NONBLOCK) failed");
  }
  return util::Status::OK();
}

void Client::QueueRequest(const WireRequest& request) {
  EncodeRequest(request, &out_);
}

util::Status Client::FlushQueued() {
  while (!out_.empty()) {
    const ssize_t n = ::send(fd_, out_.data(), out_.size(), MSG_NOSIGNAL);
    if (n > 0) {
      bytes_sent_ += static_cast<std::uint64_t>(n);
      out_.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return util::Status::OK();
    return util::Status::Internal("send failed: " +
                                  std::string(std::strerror(errno)));
  }
  return util::Status::OK();
}

util::Status Client::ReadAvailable(std::vector<WireResponse>* out) {
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.append(buf, static_cast<std::size_t>(n));
      bytes_received_ += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n == 0) return util::Status::Internal("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return util::Status::Internal("recv failed: " +
                                  std::string(std::strerror(errno)));
  }
  while (true) {
    WireResponse response;
    util::Status error = util::Status::OK();
    if (!TryExtractFrame(&response, &error)) {
      return error;  // OK when we simply need more bytes
    }
    out->push_back(std::move(response));
  }
}

}  // namespace net
}  // namespace rdfc
